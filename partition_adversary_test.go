package peats

import (
	"fmt"
	"testing"

	"peats/internal/bft"
	"peats/internal/policy"
	"peats/internal/wire"
)

// partitionKeys returns one key owning an arity-2 tuple in group 0 and
// one owning an arity-2 tuple in group 1 of a two-group topology (the
// routing rule hashes arity and first field, so the probe must use the
// arity the tests use).
func partitionKeys(t *testing.T, pc *PartitionedCluster) (keyA, keyB string) {
	t.Helper()
	for i := 0; i < 64 && (keyA == "" || keyB == ""); i++ {
		k := fmt.Sprintf("k%d", i)
		switch pc.Topology.RouteEntry(T(Str(k), Int(0))) {
		case 0:
			if keyA == "" {
				keyA = k
			}
		case 1:
			if keyB == "" {
				keyB = k
			}
		}
	}
	if keyA == "" || keyB == "" {
		t.Fatal("could not find keys for both groups")
	}
	return keyA, keyB
}

// prepareAt runs the prepare round of a cross-partition transaction at
// one group by hand and returns the group's BFT-agreed vote with its
// certificate.
func prepareAt(t *testing.T, c *bft.Client, prep wire.TxPrepare) (wire.TxOutcome, wire.VoteCert) {
	t.Helper()
	ctx := partitionCtx(t)
	raw, cert, err := c.InvokeCert(ctx, wire.EncodeTxPrepare(prep))
	if err != nil {
		t.Fatalf("prepare at %s: %v", c.Group, err)
	}
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("prepare outcome at %s: %v", c.Group, err)
	}
	return o, cert
}

// deliver sends a decision to one group and returns the group's agreed
// answer — the recorded transaction state after the delivery attempt.
func deliver(t *testing.T, c *bft.Client, dec wire.TxDecision) wire.TxOutcome {
	t.Helper()
	raw, err := c.Invoke(partitionCtx(t), wire.EncodeTxDecision(dec))
	if err != nil {
		t.Fatalf("decision at %s: %v", c.Group, err)
	}
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("decision outcome at %s: %v", c.Group, err)
	}
	return o
}

// statusAt queries one group's agreed record of a transaction.
func statusAt(t *testing.T, c *bft.Client, txID string) wire.TxOutcome {
	t.Helper()
	raw, _, err := c.InvokeCert(partitionCtx(t), wire.EncodeTxStatus(wire.TxStatus{TxID: txID}))
	if err != nil {
		t.Fatalf("status at %s: %v", c.Group, err)
	}
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("status outcome at %s: %v", c.Group, err)
	}
	return o
}

// TestByzantineCoordinatorCannotDivergeOutcomes drives the
// cross-partition protocol with a Byzantine coordinator that tries to
// commit a transaction at one group and abort the same transaction at
// the other. Both groups voted YES, so every abort attempt lacks the
// required justification — a certificate of some participant's NO vote
// — and must bounce off the group's BFT-agreed validation, whatever
// forgery it carries. Recovery then converges both groups on commit.
// Groups run at f=1, so the certificates are real 3-signature quorums.
func TestByzantineCoordinatorCannotDivergeOutcomes(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{1, 1}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	keyA, keyB := partitionKeys(t, pc)
	c0 := pc.Groups[0].Client("mallory")
	c1 := pc.Groups[1].Client("mallory")

	const txID = "mallory:1"
	parts := []string{"g0", "g1"}
	o0, cert0 := prepareAt(t, c0, wire.TxPrepare{
		TxID: txID, Participants: parts,
		Ops: []wire.SpaceOp{{Op: policy.OpOut, Entry: T(Str(keyA), Int(1))}},
	})
	o1, cert1 := prepareAt(t, c1, wire.TxPrepare{
		TxID: txID, Participants: parts,
		Ops: []wire.SpaceOp{{Op: policy.OpOut, Entry: T(Str(keyB), Int(2))}},
	})
	if o0.State != wire.TxVoteYes || o1.State != wire.TxVoteYes {
		t.Fatalf("votes %d/%d, want YES/YES", o0.State, o1.State)
	}

	// Equivocation: a justified COMMIT at group 0...
	if o := deliver(t, c0, wire.TxDecision{TxID: txID, Commit: true,
		Certs: []wire.VoteCert{cert0, cert1}}); o.State != wire.TxCommitted {
		t.Fatalf("justified commit rejected at g0: state %d", o.State)
	}

	// ...and every abort forgery the coordinator can assemble at group 1.
	forged := cert1
	forged.Outcome = wire.EncodeTxOutcome(wire.TxOutcome{TxID: txID, State: wire.TxVoteNo})
	abortAttempts := []wire.TxDecision{
		{TxID: txID},                                        // no evidence at all
		{TxID: txID, Certs: []wire.VoteCert{cert0, cert1}},  // YES votes justify no abort
		{TxID: txID, Certs: []wire.VoteCert{forged}},        // NO outcome under YES signatures
	}
	for i, dec := range abortAttempts {
		if o := deliver(t, c1, dec); o.State != wire.TxVoteYes {
			t.Fatalf("abort forgery %d moved g1 to state %d", i, o.State)
		}
	}
	// A commit with incomplete evidence must bounce too: the missing
	// participant could have voted NO.
	if o := deliver(t, c1, wire.TxDecision{TxID: txID, Commit: true,
		Certs: []wire.VoteCert{cert1}}); o.State != wire.TxVoteYes {
		t.Fatalf("under-justified commit moved g1 to state %d", o.State)
	}

	// Any party can now finish the transaction; the unique justified
	// decision is commit.
	part, err := pc.Space("recoverer")
	if err != nil {
		t.Fatal(err)
	}
	committed, err := part.Recover(partitionCtx(t), txID, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !committed {
		t.Fatal("recovery aborted a transaction already committed at g0")
	}
	if s0, s1 := statusAt(t, c0, txID), statusAt(t, c1, txID); s0.State != wire.TxCommitted ||
		s1.State != wire.TxCommitted {
		t.Fatalf("final states %d/%d diverge from committed", s0.State, s1.State)
	}
	// Both halves of the transaction are visible.
	ctx := partitionCtx(t)
	if _, ok, err := part.Rdp(ctx, T(Str(keyA), Int(1))); err != nil || !ok {
		t.Fatalf("g0 half missing: %v %v", ok, err)
	}
	if _, ok, err := part.Rdp(ctx, T(Str(keyB), Int(2))); err != nil || !ok {
		t.Fatalf("g1 half missing: %v %v", ok, err)
	}
}

// TestByzantineCoordinatorCannotCommitVetoedTx is the dual: one group
// votes NO, so no forgery lets the coordinator commit anywhere, and
// recovery converges both groups on abort with no residue.
func TestByzantineCoordinatorCannotCommitVetoedTx(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{1, 1}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	keyA, keyB := partitionKeys(t, pc)
	c0 := pc.Groups[0].Client("mallory")
	c1 := pc.Groups[1].Client("mallory")

	const txID = "mallory:2"
	parts := []string{"g0", "g1"}
	o0, cert0 := prepareAt(t, c0, wire.TxPrepare{
		TxID: txID, Participants: parts,
		Ops: []wire.SpaceOp{{Op: policy.OpOut, Entry: T(Str(keyA), Str("doomed"))}},
	})
	// Group 1 votes NO: its slice needs a tuple that does not exist.
	o1, cert1 := prepareAt(t, c1, wire.TxPrepare{
		TxID: txID, Participants: parts,
		Ops: []wire.SpaceOp{{Op: policy.OpInp, Template: T(Str(keyB), Str("absent-tuple"))}},
	})
	if o0.State != wire.TxVoteYes || o1.State != wire.TxVoteNo {
		t.Fatalf("votes %d/%d, want YES/NO", o0.State, o1.State)
	}

	forged := cert1
	forged.Outcome = wire.EncodeTxOutcome(wire.TxOutcome{TxID: txID, State: wire.TxVoteYes})
	commitAttempts := []wire.TxDecision{
		{TxID: txID, Commit: true, Certs: []wire.VoteCert{cert0}},         // g1's vote omitted
		{TxID: txID, Commit: true, Certs: []wire.VoteCert{cert0, cert1}},  // carries the NO vote
		{TxID: txID, Commit: true, Certs: []wire.VoteCert{cert0, forged}}, // forged YES for g1
	}
	for i, dec := range commitAttempts {
		if o := deliver(t, c0, dec); o.State != wire.TxVoteYes {
			t.Fatalf("commit forgery %d moved g0 to state %d", i, o.State)
		}
	}

	part, err := pc.Space("recoverer")
	if err != nil {
		t.Fatal(err)
	}
	committed, err := part.Recover(partitionCtx(t), txID, parts)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("recovery committed a vetoed transaction")
	}
	if s0, s1 := statusAt(t, c0, txID), statusAt(t, c1, txID); s0.State != wire.TxAborted ||
		s1.State != wire.TxAborted {
		t.Fatalf("final states %d/%d diverge from aborted", s0.State, s1.State)
	}
	// The aborted transaction left no residue: its reservation at g0 is
	// released, so the tuple is absent and the space fully writable.
	part2, err := pc.Space("observer")
	if err != nil {
		t.Fatal(err)
	}
	ctx := partitionCtx(t)
	if _, ok, _ := part2.Rdp(ctx, T(Str(keyA), Str("doomed"))); ok {
		t.Fatal("vetoed transaction's out leaked into g0")
	}
	if err := part2.Out(ctx, T(Str(keyA), Str("doomed"))); err != nil {
		t.Fatalf("space not writable after abort: %v", err)
	}
}

// TestRecoverUnknownTxPinsAbort checks the termination rule: a
// transaction no participant has heard of (a coordinator that crashed
// before any prepare landed) recovers to abort, and the pin holds
// against a late prepare replay.
func TestRecoverUnknownTxPinsAbort(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{0, 0}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	keyA, _ := partitionKeys(t, pc)
	part, err := pc.Space("recoverer")
	if err != nil {
		t.Fatal(err)
	}
	const txID = "ghost:1"
	committed, err := part.Recover(partitionCtx(t), txID, []string{"g0", "g1"})
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("recovered an unknown transaction to commit")
	}
	// A prepare arriving after the pin must observe the abort, not vote.
	c0 := pc.Groups[0].Client("tardy")
	o, _ := prepareAt(t, c0, wire.TxPrepare{
		TxID: txID, Participants: []string{"g0", "g1"},
		Ops: []wire.SpaceOp{{Op: policy.OpOut, Entry: T(Str(keyA), Int(9))}},
	})
	if o.State != wire.TxAborted {
		t.Fatalf("late prepare got state %d, want the abort pin", o.State)
	}
	if _, ok, _ := part.Rdp(partitionCtx(t), T(Str(keyA), Int(9))); ok {
		t.Fatal("late prepare's out leaked")
	}
}

// TestPartitionDuplicatePrepareStable checks prepare idempotence: a
// retransmitted prepare returns the recorded vote byte-for-byte, so
// certificates assembled from different transmissions are compatible.
func TestPartitionDuplicatePrepareStable(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{0, 0}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	keyA, _ := partitionKeys(t, pc)
	c0 := pc.Groups[0].Client("dup")
	prep := wire.TxPrepare{
		TxID: "dup:1", Participants: []string{"g0", "g1"},
		Ops: []wire.SpaceOp{{Op: policy.OpOut, Entry: T(Str(keyA), Int(3))}},
	}
	o1, _ := prepareAt(t, c0, prep)
	o2, _ := prepareAt(t, c0, prep)
	if o1.State != o2.State || len(o1.Results) != len(o2.Results) {
		t.Fatalf("duplicate prepare diverged: %+v vs %+v", o1, o2)
	}
	// The reservation stays parked: the tuple is invisible to reads
	// until a decision lands.
	part, err := pc.Space("reader")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := part.Rdp(partitionCtx(t), T(Str(keyA), Int(3))); ok {
		t.Fatal("undecided reservation visible to reads")
	}
}
