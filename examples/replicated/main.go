// Replicated PEATS (paper Fig. 2): four BFT replicas — one of which
// lies about every result — serve a policy-enforced tuple space to
// clients that coordinate through strong binary consensus.
//
// The example shows the full stack working end to end: PBFT-style
// ordering, per-replica reference monitors, client-side f+1 voting that
// masks the corrupt replica, and the Fig. 4 policy stopping a Byzantine
// *client* as well.
//
// Run with: go run ./examples/replicated
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"peats"
	"peats/internal/bft"
	"peats/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicated:", err)
		os.Exit(1)
	}
}

func run() error {
	const f = 1 // tolerated faulty replicas → n = 4
	procs := []peats.ProcessID{"p0", "p1", "p2", "p3"}
	pol := consensus.StrongPolicy(procs, 1, []int64{0, 1})

	// Build the replica group: three honest services, one that corrupts
	// every reply it sends to clients.
	services := []bft.Service{
		bft.NewSpaceService(pol),
		bft.NewSpaceService(pol),
		bft.NewCorruptService(bft.NewSpaceService(pol)),
		bft.NewSpaceService(pol),
	}
	cluster, err := bft.NewCluster(f, services)
	if err != nil {
		return err
	}
	defer cluster.Stop()
	fmt.Println("started 4 replicas (r2 corrupts every reply it sends)")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A Byzantine client (authenticated as p3) attacks through the
	// replicated interface; the reference monitor at every correct
	// replica denies it.
	evil := peats.ClusterSpace(cluster, "p3")
	err = evil.Out(ctx, peats.T(peats.Str("PROPOSE"), peats.Str("p0"), peats.Int(1)))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("p3 impersonating p0: denied by the replicated monitor")
	} else if err == nil {
		return errors.New("monitor failed to stop impersonation")
	}

	// The three correct processes run strong binary consensus over the
	// replicated space — the same algorithm code as over a local space.
	var wg sync.WaitGroup
	decisions := make([]int64, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := procs[i]
			ts := peats.ClusterSpace(cluster, me)
			c, err := consensus.NewStrong(ts, consensus.StrongConfig{
				Self: me, Procs: procs, T: 1, Domain: []int64{0, 1},
				PollInterval: 5 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			decisions[i], errs[i] = c.Propose(ctx, int64(i%2))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("p%d: %w", i, err)
		}
	}
	for i, d := range decisions {
		fmt.Printf("p%d decided %d\n", i, d)
	}
	if decisions[0] != decisions[1] || decisions[1] != decisions[2] {
		return errors.New("agreement violated")
	}
	fmt.Println("strong consensus over the replicated PEATS ✓ (corrupt replica outvoted)")
	return nil
}
