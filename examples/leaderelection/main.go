// Leader election among Byzantine processes using default multivalued
// consensus (paper §5.4) with optimal resilience n = 3t+1.
//
// Seven processes (t = 2 tolerated faults) each nominate a leader by
// proposing its index. One Byzantine process nominates itself and also
// tries to force the ⊥ outcome with a fabricated justification; one
// process crashes silently. The Fig. 5 access policy makes the forgery
// impossible, and the five remaining correct processes elect the same
// leader.
//
// Run with: go run ./examples/leaderelection
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"peats"
	"peats/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leaderelection:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n = 7
		t = 2
	)
	procs := make([]peats.ProcessID, n)
	for i := range procs {
		procs[i] = peats.ProcessID(fmt.Sprintf("node%d", i))
	}
	s := peats.NewSpace(consensus.DefaultPolicy(procs, t))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The Byzantine node6 tries to decide ⊥ before anyone proposed.
	evil := s.Handle(procs[6])
	_, _, err := evil.Cas(ctx,
		peats.T(peats.Str("DECISION"), peats.Formal("d"), peats.Any()),
		peats.T(peats.Str("DECISION"), consensus.Bottom(),
			consensus.JustificationField(consensus.Justification{})))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("node6's fabricated ⊥ decision: denied (Fig. 5 Rcas)")
	} else if err == nil {
		return errors.New("policy failed to stop the forged ⊥")
	}

	// Nodes 0-4 are correct and all nominate node2 (say, by highest
	// uptime); node5 has crashed; node6 nominates itself.
	votes := map[int]int64{0: 2, 1: 2, 2: 2, 3: 2, 4: 2, 6: 6}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	elected := make(map[peats.ProcessID]peats.Field)
	for i, vote := range votes {
		wg.Add(1)
		go func(i int, vote int64) {
			defer wg.Done()
			me := procs[i]
			c, err := consensus.NewDefault(s.Handle(me), consensus.DefaultConfig{
				Self: me, Procs: procs, T: t, PollInterval: time.Millisecond,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", me, err)
				return
			}
			d, err := c.Propose(ctx, vote)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", me, err)
				return
			}
			mu.Lock()
			elected[me] = d
			mu.Unlock()
		}(i, vote)
	}
	wg.Wait()

	var first peats.Field
	for _, id := range procs {
		d, ok := elected[id]
		if !ok {
			continue // crashed or errored
		}
		fmt.Printf("%s elected: %v\n", id, d)
		if first.IsZero() {
			first = d
		} else if !d.Equal(first) {
			return fmt.Errorf("agreement violated: %v vs %v", d, first)
		}
	}
	if consensus.IsBottom(first) {
		fmt.Println("outcome: ⊥ (legitimately justified split) — retry with new nominations")
		return nil
	}
	leader, _ := first.IntValue()
	if leader == 6 {
		return errors.New("validity violated: the Byzantine self-nomination won")
	}
	fmt.Printf("outcome: node%d is the leader ✓ (nominated by ≥ t+1 processes)\n", leader)
	return nil
}
