// Atomic queue-to-queue tuple transfer over a replicated PEATS: the
// ops-as-values Submit API executes a consume-and-republish pair as one
// atomic, monitor-vetted unit — one agreement round, one critical
// section at every replica — so competing workers can never double-claim
// a task or lose one in flight.
//
// Three workers race over a backlog of tasks. Each picks a candidate
// with a fast-path read, then submits
//
//	Submit(InpOp(<"pending", task>), OutOp(<"active", task, worker>))
//
// If another worker consumed the task first, the InpOp misses and the
// whole unit aborts (peats.ErrAborted) with no effect — the OutOp never
// happens — and the worker simply retries on the next candidate.
//
// Run with: go run ./examples/atomictransfer
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"peats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atomictransfer:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := peats.NewLocalCluster(1, peats.AllowAll(), peats.WithShards(4))
	if err != nil {
		return err
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Seed the pending queue.
	const tasks = 6
	producer := peats.ClusterSpace(cluster, "producer")
	for i := 0; i < tasks; i++ {
		task := fmt.Sprintf("task-%d", i)
		if err := producer.Out(ctx, peats.T(peats.Str("pending"), peats.Str(task))); err != nil {
			return err
		}
	}

	// Workers claim tasks with atomic transfers.
	var wg sync.WaitGroup
	var mu sync.Mutex
	claimed := map[string]string{} // task → worker
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			ts := peats.ClusterSpace(cluster, peats.ProcessID(worker),
				peats.WithPollInterval(2*time.Millisecond))
			for {
				// Find a candidate on the read-only fast path.
				cand, ok, err := ts.Rdp(ctx, peats.T(peats.Str("pending"), peats.Formal("t")))
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return // backlog drained
				}
				name, _ := cand.Field(1).StrValue()
				// The atomic transfer: consume from pending AND publish to
				// active, or do neither.
				_, err = ts.Submit(ctx,
					peats.InpOp(cand),
					peats.OutOp(peats.T(peats.Str("active"), peats.Str(name), peats.Str(worker))),
				)
				switch {
				case err == nil:
					mu.Lock()
					claimed[name] = worker
					mu.Unlock()
				case errors.Is(err, peats.ErrAborted):
					// Another worker won this task; try the next candidate.
				default:
					errs <- err
					return
				}
			}
		}(fmt.Sprintf("worker-%d", w))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// Every task moved exactly once: the pending queue is empty and the
	// active queue holds one tuple per task.
	reader := peats.ClusterSpace(cluster, "reader")
	pending, err := reader.RdAll(ctx, peats.T(peats.Str("pending"), peats.Any()))
	if err != nil {
		return err
	}
	active, err := reader.RdAll(ctx, peats.T(peats.Str("active"), peats.Any(), peats.Any()))
	if err != nil {
		return err
	}
	fmt.Printf("pending left: %d, active: %d (want 0 and %d)\n", len(pending), len(active), tasks)

	names := make([]string, 0, len(claimed))
	for name := range claimed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s moved atomically by %s\n", name, claimed[name])
	}
	if len(pending) != 0 || len(active) != tasks || len(claimed) != tasks {
		return fmt.Errorf("transfer invariant violated")
	}
	fmt.Println("every task transferred exactly once — no double claims, none lost")
	return nil
}
