// Quickstart: a local PEATS, the Fig. 3 access policy, and wait-free
// weak consensus among eight processes — three of which are Byzantine
// and try (unsuccessfully) to subvert the object.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"peats"
	"peats/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()

	// A PEATS protected by the weak-consensus policy (paper Fig. 3):
	// the only allowed operation is cas of a DECISION tuple.
	s := peats.NewSpace(consensus.WeakPolicy())

	// Byzantine processes attack the raw space first.
	evil := s.Handle("mallory")
	if err := evil.Out(ctx, peats.T(peats.Str("DECISION"), peats.Int(666))); err != nil {
		if !errors.Is(err, peats.ErrDenied) {
			return err
		}
		fmt.Println("mallory's forged decision: denied by the reference monitor")
	}
	if _, _, err := evil.Inp(ctx, peats.T(peats.Any(), peats.Any())); errors.Is(err, peats.ErrDenied) {
		fmt.Println("mallory's attempt to erase the decision: denied")
	}

	// Eight processes concurrently propose their own values; the weak
	// consensus object is wait-free and uniform, so nobody needs to
	// know n.
	var wg sync.WaitGroup
	decisions := make([]peats.Field, 8)
	for i := range decisions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := peats.ProcessID(fmt.Sprintf("p%d", i))
			c := consensus.NewWeak(s.Handle(me))
			d, err := c.Propose(ctx, peats.Int(int64(100+i)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", me, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()

	for i, d := range decisions {
		fmt.Printf("p%d decided %v\n", i, d)
	}
	for i := 1; i < len(decisions); i++ {
		if !decisions[i].Equal(decisions[0]) {
			return fmt.Errorf("agreement violated: %v vs %v", decisions[i], decisions[0])
		}
	}
	fmt.Println("agreement: all processes decided the same value ✓")
	return nil
}
