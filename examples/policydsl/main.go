// Policy-language demo: a shared task board whose access policy is
// written as text (the "generic policy enforcer" of paper §4) and
// compiled at startup.
//
// The board's rules: registered workers post tasks under their own
// name, anyone may browse, a worker may claim a task by moving it to a
// CLAIM tuple — but only one claim per task, and nobody can claim in
// another worker's name or delete someone else's claim.
//
// Run with: go run ./examples/policydsl
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"peats"
	"peats/internal/policylang"
)

// boardPolicy is the complete access policy, as data. Compare with the
// paper's Figs. 1-8: same shape, machine-checked.
const boardPolicy = `
# Anyone may browse the board.
Rbrowse: allow rdp

# Registered workers post tasks under their own name, one tuple per
# task id: <TASK, id, owner, description>.
Rpost: allow out <"TASK", int, @invoker, str>
       when invoker in {ada, grace, edsger}
       and not exists <"TASK", $e1, *, *>

# Claiming task id inserts <CLAIM, id, claimer> — only if the task
# exists, only once, and only in the claimer's own name.
Rclaim: allow cas <"CLAIM", int, formal> -> <"CLAIM", int, @invoker>
        when exists <"TASK", $e1, *, *>

# A claimer may withdraw only its own claim.
Rdrop: allow inp <"CLAIM", int, @invoker>
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policydsl:", err)
		os.Exit(1)
	}
}

func run() error {
	pol, err := policylang.Compile(boardPolicy)
	if err != nil {
		return fmt.Errorf("compile policy: %w", err)
	}
	s := peats.NewSpace(pol)
	ctx := context.Background()

	ada := s.Handle("ada")
	grace := s.Handle("grace")
	mallory := s.Handle("mallory")

	// Ada posts two tasks.
	for id, desc := range map[int64]string{1: "write the report", 2: "review the patch"} {
		if err := ada.Out(ctx, peats.T(peats.Str("TASK"), peats.Int(id), peats.Str("ada"), peats.Str(desc))); err != nil {
			return err
		}
		fmt.Printf("ada posted task %d: %s\n", id, desc)
	}

	// Mallory (unregistered) cannot post; nobody can re-post task 1.
	err = mallory.Out(ctx, peats.T(peats.Str("TASK"), peats.Int(3), peats.Str("mallory"), peats.Str("pwn")))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("mallory's post: denied (not registered)")
	}
	err = grace.Out(ctx, peats.T(peats.Str("TASK"), peats.Int(1), peats.Str("grace"), peats.Str("dup")))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("grace re-posting task 1: denied (task ids are unique)")
	}

	// Grace claims task 1; a second claim on the same task fails.
	ins, _, err := grace.Cas(ctx,
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Formal("who")),
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Str("grace")))
	if err != nil || !ins {
		return fmt.Errorf("grace's claim: ins=%v err=%w", ins, err)
	}
	fmt.Println("grace claimed task 1")
	ins, holder, err := ada.Cas(ctx,
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Formal("who")),
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Str("ada")))
	if err != nil {
		return err
	}
	if !ins {
		who, _ := holder.Field(2).StrValue()
		fmt.Printf("ada's claim on task 1: already claimed by %s\n", who)
	}

	// Claims on nonexistent tasks and forged claims are denied.
	_, _, err = grace.Cas(ctx,
		peats.T(peats.Str("CLAIM"), peats.Int(99), peats.Formal("who")),
		peats.T(peats.Str("CLAIM"), peats.Int(99), peats.Str("grace")))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("claim on nonexistent task 99: denied")
	}
	_, _, err = mallory.Inp(ctx, peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Str("grace")))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("mallory deleting grace's claim: denied")
	}

	// Grace finishes and withdraws her claim; ada can now take it.
	if _, ok, err := grace.Inp(ctx, peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Str("grace"))); err != nil || !ok {
		return fmt.Errorf("grace withdrawing claim: %v %w", ok, err)
	}
	ins, _, err = ada.Cas(ctx,
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Formal("who")),
		peats.T(peats.Str("CLAIM"), peats.Int(1), peats.Str("ada")))
	if err != nil || !ins {
		return fmt.Errorf("ada's second claim: ins=%v err=%w", ins, err)
	}
	fmt.Println("grace released task 1; ada claimed it ✓")
	return nil
}
