// Universal construction demo (paper §6): the wait-free construction of
// Algorithm 4 emulates a linearizable FIFO work queue shared by
// Byzantine processes.
//
// Three producers enqueue jobs while a flood of contending invocations
// runs; the helping mechanism guarantees nobody starves. A Byzantine
// process tries to reorder the queue by threading at a stale position
// and by withdrawing someone else's announcement — both denied by the
// Fig. 8 access policy.
//
// Run with: go run ./examples/universalqueue
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"peats"
	"peats/internal/universal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "universalqueue:", err)
		os.Exit(1)
	}
}

func run() error {
	procs := []peats.ProcessID{"w0", "w1", "w2", "consumer"}
	s := peats.NewSpace(universal.WaitFreePolicy(procs))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Byzantine interference through the raw space.
	evil := s.Handle("w2")
	_, _, err := evil.Cas(ctx,
		peats.T(peats.Str("SEQ"), peats.Int(40), peats.Formal("x")),
		peats.T(peats.Str("SEQ"), peats.Int(40), peats.Bytes([]byte("junk"))))
	if errors.Is(err, peats.ErrDenied) {
		fmt.Println("w2 threading at a gap: denied (list stays contiguous)")
	} else if err == nil {
		return errors.New("policy failed to keep the list contiguous")
	}
	if _, _, err := evil.Inp(ctx, peats.T(peats.Str("ANN"), peats.Int(0), peats.Any())); errors.Is(err, peats.ErrDenied) {
		fmt.Println("w2 withdrawing w0's announcement: denied")
	}

	// Three producers enqueue 5 jobs each, concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := procs[w]
			q, err := universal.NewWaitFree(s.Handle(me), universal.QueueType{}, me, procs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", me, err)
				return
			}
			for j := 0; j < 5; j++ {
				job := int64(w*100 + j)
				if _, err := q.Invoke(ctx, universal.Enqueue(job)); err != nil {
					fmt.Fprintf(os.Stderr, "%s: enqueue: %v\n", me, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The consumer drains the queue through its own replica of the
	// emulated object; FIFO order per producer is preserved.
	q, err := universal.NewWaitFree(s.Handle("consumer"), universal.QueueType{}, "consumer", procs)
	if err != nil {
		return err
	}
	drained := 0
	lastPerProducer := map[int64]int64{0: -1, 1: -1, 2: -1}
	for {
		r, err := q.Invoke(ctx, universal.Dequeue())
		if err != nil {
			return err
		}
		if universal.ReplyEmpty(r) {
			break
		}
		v, ok := universal.ReplyValue(r)
		if !ok {
			return errors.New("bad dequeue reply")
		}
		producer, seq := v/100, v%100
		if seq <= lastPerProducer[producer] {
			return fmt.Errorf("FIFO violated for producer %d: %d after %d",
				producer, seq, lastPerProducer[producer])
		}
		lastPerProducer[producer] = seq
		fmt.Printf("consumed job %d (producer w%d)\n", v, producer)
		drained++
	}
	if drained != 15 {
		return fmt.Errorf("drained %d jobs, want 15", drained)
	}
	fmt.Println("15 jobs, FIFO per producer, wait-free under contention ✓")
	return nil
}
