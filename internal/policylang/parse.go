package policylang

import (
	"strconv"

	"peats/internal/policy"
)

// AST types. A parsed policy is a list of rules; Compile turns them
// into a policy.Policy.

type ruleAST struct {
	name    string
	line    int
	op      policy.Op
	tmplPat *tuplePat // reads and cas
	entPat  *tuplePat // out and cas
	guard   exprAST   // nil means unconditional
}

// tuplePat constrains one tuple argument field by field.
type tuplePat struct {
	fields []fieldPat
	line   int
}

type fieldKind uint8

const (
	fLitString fieldKind = iota + 1
	fLitInt
	fLitBool
	fAnyValue  // * — any defined value
	fTypeInt   // int
	fTypeStr   // str
	fTypeBool  // bool
	fTypeBytes // bytes
	fFormal    // formal — must be a formal field
	fInvoker   // @invoker — string equal to the invoker
	fRefEntry  // $e<i> — copy of entry field i (guard tuples only)
	fRefTmpl   // $t<i> — copy of template field i (guard tuples only)
)

type fieldPat struct {
	kind fieldKind
	s    string
	i    int64
	b    bool
	ref  int
	line int
}

// Guard expression AST.
type exprAST interface{ isExpr() }

type exprTrue struct{}

type exprNot struct{ x exprAST }

type exprAnd struct{ l, r exprAST }

type exprOr struct{ l, r exprAST }

type exprExists struct{ pat *tuplePat }

type exprCount struct {
	pat  *tuplePat
	cmp  tokenKind // tokGE, tokLE, tokEQ
	n    int64
	line int
}

type exprInvokerIn struct{ ids []string }

type exprNative struct {
	name string
	line int
}

func (exprTrue) isExpr()      {}
func (exprNot) isExpr()       {}
func (exprAnd) isExpr()       {}
func (exprOr) isExpr()        {}
func (exprExists) isExpr()    {}
func (exprCount) isExpr()     {}
func (exprInvokerIn) isExpr() {}
func (exprNative) isExpr()    {}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errf(t.line, "expected %v, got %v %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

// parse consumes the whole token stream into rule ASTs.
func parse(toks []token) ([]ruleAST, error) {
	p := &parser{toks: toks}
	var rules []ruleAST
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			return rules, nil
		}
		r, err := p.parseRule(len(rules))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
}

var opNames = map[string]policy.Op{
	"out": policy.OpOut, "rd": policy.OpRd, "rdp": policy.OpRdp,
	"in": policy.OpIn, "inp": policy.OpInp, "cas": policy.OpCas,
	"rdall": policy.OpRdAll,
}

func (p *parser) parseRule(index int) (ruleAST, error) {
	var r ruleAST
	t := p.next()
	r.line = t.line

	// Optional "Name:" prefix.
	if t.kind == tokIdent && t.text != "allow" && p.peek().kind == tokColon {
		r.name = t.text
		p.next() // colon
		t = p.next()
	}
	if t.kind != tokIdent || t.text != "allow" {
		return r, errf(t.line, "expected 'allow', got %q", t.text)
	}
	if r.name == "" {
		r.name = "rule-" + strconv.Itoa(index+1)
	}

	opTok, err := p.expect(tokIdent)
	if err != nil {
		return r, err
	}
	op, ok := opNames[opTok.text]
	if !ok {
		return r, errf(opTok.line, "unknown operation %q", opTok.text)
	}
	r.op = op

	// Optional argument pattern(s).
	if p.peek().kind == tokLAngle {
		pat, err := p.parseTuplePat(false)
		if err != nil {
			return r, err
		}
		switch op {
		case policy.OpOut:
			r.entPat = pat
		case policy.OpCas:
			r.tmplPat = pat
			if _, err := p.expect(tokArrow); err != nil {
				return r, err
			}
			ent, err := p.parseTuplePat(false)
			if err != nil {
				return r, err
			}
			r.entPat = ent
		default:
			r.tmplPat = pat
		}
	} else if op == policy.OpCas {
		// cas either has both patterns or none.
		if p.peek().kind == tokArrow {
			return r, errf(p.peek().line, "cas pattern must be '<tmpl> -> <entry>'")
		}
	}

	// Optional guard.
	if t := p.peek(); t.kind == tokIdent && t.text == "when" {
		p.next()
		g, err := p.parseExpr()
		if err != nil {
			return r, err
		}
		r.guard = g
	}

	switch p.peek().kind {
	case tokNewline:
		p.next()
	case tokEOF:
	default:
		return r, errf(p.peek().line, "unexpected %v %q after rule", p.peek().kind, p.peek().text)
	}
	return r, nil
}

// parseTuplePat parses <field, field, ...>. Guard patterns (inGuard)
// additionally accept $e<i>/$t<i> references.
func (p *parser) parseTuplePat(inGuard bool) (*tuplePat, error) {
	open, err := p.expect(tokLAngle)
	if err != nil {
		return nil, err
	}
	pat := &tuplePat{line: open.line}
	for {
		f, err := p.parseFieldPat(inGuard)
		if err != nil {
			return nil, err
		}
		pat.fields = append(pat.fields, f)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRAngle:
			return pat, nil
		default:
			return nil, errf(t.line, "expected ',' or '>' in tuple, got %v %q", t.kind, t.text)
		}
	}
}

func (p *parser) parseFieldPat(inGuard bool) (fieldPat, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return fieldPat{kind: fLitString, s: t.text, line: t.line}, nil
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return fieldPat{}, errf(t.line, "bad integer %q", t.text)
		}
		return fieldPat{kind: fLitInt, i: v, line: t.line}, nil
	case tokStar:
		return fieldPat{kind: fAnyValue, line: t.line}, nil
	case tokAt:
		id, err := p.expect(tokIdent)
		if err != nil {
			return fieldPat{}, err
		}
		if id.text != "invoker" {
			return fieldPat{}, errf(id.line, "unknown reference @%s (only @invoker)", id.text)
		}
		return fieldPat{kind: fInvoker, line: t.line}, nil
	case tokDollar:
		if !inGuard {
			return fieldPat{}, errf(t.line, "$-references are only allowed in guard tuples")
		}
		id, err := p.expect(tokIdent)
		if err != nil {
			return fieldPat{}, err
		}
		if len(id.text) < 2 || (id.text[0] != 'e' && id.text[0] != 't') {
			return fieldPat{}, errf(id.line, "bad reference $%s (want $e<i> or $t<i>)", id.text)
		}
		idx, err := strconv.Atoi(id.text[1:])
		if err != nil || idx < 0 {
			return fieldPat{}, errf(id.line, "bad reference index in $%s", id.text)
		}
		kind := fRefEntry
		if id.text[0] == 't' {
			kind = fRefTmpl
		}
		return fieldPat{kind: kind, ref: idx, line: t.line}, nil
	case tokIdent:
		switch t.text {
		case "true", "false":
			return fieldPat{kind: fLitBool, b: t.text == "true", line: t.line}, nil
		case "int":
			return fieldPat{kind: fTypeInt, line: t.line}, nil
		case "str":
			return fieldPat{kind: fTypeStr, line: t.line}, nil
		case "bool":
			return fieldPat{kind: fTypeBool, line: t.line}, nil
		case "bytes":
			return fieldPat{kind: fTypeBytes, line: t.line}, nil
		case "formal":
			return fieldPat{kind: fFormal, line: t.line}, nil
		default:
			return fieldPat{}, errf(t.line, "unknown field pattern %q", t.text)
		}
	default:
		return fieldPat{}, errf(t.line, "unexpected %v %q in tuple pattern", t.kind, t.text)
	}
}

// parseExpr parses guards with precedence not > and > or.
func (p *parser) parseExpr() (exprAST, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = exprOr{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (exprAST, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = exprAnd{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (exprAST, error) {
	if t := p.peek(); t.kind == tokIdent && t.text == "not" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return exprNot{x: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (exprAST, error) {
	t := p.next()
	switch {
	case t.kind == tokLParen:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokIdent && t.text == "true":
		return exprTrue{}, nil
	case t.kind == tokIdent && t.text == "exists":
		pat, err := p.parseTuplePat(true)
		if err != nil {
			return nil, err
		}
		return exprExists{pat: pat}, nil
	case t.kind == tokIdent && t.text == "count":
		pat, err := p.parseTuplePat(true)
		if err != nil {
			return nil, err
		}
		cmp := p.next()
		switch cmp.kind {
		case tokGE, tokLE, tokEQ:
		default:
			return nil, errf(cmp.line, "count needs '>=', '<=' or '==', got %q", cmp.text)
		}
		num, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil {
			return nil, errf(num.line, "bad count bound %q", num.text)
		}
		return exprCount{pat: pat, cmp: cmp.kind, n: n, line: t.line}, nil
	case t.kind == tokIdent && t.text == "native":
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return exprNative{name: id.text, line: t.line}, nil
	case t.kind == tokIdent && t.text == "invoker":
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if kw.text != "in" {
			return nil, errf(kw.line, "expected 'in' after 'invoker'")
		}
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		var ids []string
		for {
			id := p.next()
			switch id.kind {
			case tokIdent, tokString, tokInt:
				ids = append(ids, id.text)
			case tokRBrace:
				return exprInvokerIn{ids: ids}, nil
			default:
				return nil, errf(id.line, "unexpected %v in identity set", id.kind)
			}
			if p.peek().kind == tokComma {
				p.next()
			}
		}
	default:
		return nil, errf(t.line, "unexpected %v %q in guard", t.kind, t.text)
	}
}
