package policylang

import (
	"context"
	"errors"
	"strings"
	"testing"

	"peats/internal/consensus"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

func inv(p policy.ProcessID, op policy.Op, tmpl, entry tuple.Tuple) policy.Invocation {
	return policy.Invocation{Invoker: p, Op: op, Template: tmpl, Entry: entry}
}

func TestCompileWeakConsensusPolicy(t *testing.T) {
	// The Fig. 3 policy, in the DSL, must behave identically to the
	// hand-built consensus.WeakPolicy on a probe of invocations.
	src := `
# Fig. 3 — weak consensus
Rcas: allow cas <"DECISION", formal> -> <"DECISION", *>
`
	dsl, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	native := consensus.WeakPolicy()

	st := space.New()
	probes := []policy.Invocation{
		inv("p1", policy.OpCas,
			tuple.T(tuple.Str("DECISION"), tuple.Formal("d")),
			tuple.T(tuple.Str("DECISION"), tuple.Int(7))),
		inv("p1", policy.OpCas, // non-formal template
			tuple.T(tuple.Str("DECISION"), tuple.Int(1)),
			tuple.T(tuple.Str("DECISION"), tuple.Int(7))),
		inv("p1", policy.OpCas, // wrong tag
			tuple.T(tuple.Str("X"), tuple.Formal("d")),
			tuple.T(tuple.Str("DECISION"), tuple.Int(7))),
		inv("p1", policy.OpCas, // wrong arity
			tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
			tuple.T(tuple.Str("DECISION"), tuple.Int(7), tuple.Int(1))),
		inv("p1", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("DECISION"), tuple.Int(7))),
		inv("p1", policy.OpInp, tuple.T(tuple.Any(), tuple.Any()), tuple.Tuple{}),
		inv("p1", policy.OpRdp, tuple.T(tuple.Any(), tuple.Any()), tuple.Tuple{}),
	}
	for i, probe := range probes {
		if got, want := dsl.Allows(probe, st), native.Allows(probe, st); got != want {
			t.Errorf("probe %d (%s): dsl=%v native=%v", i, probe, got, want)
		}
	}
}

func TestCompiledWeakPolicyRunsConsensus(t *testing.T) {
	// End to end: Algorithm 1 over a space protected by the DSL policy.
	pol := MustCompile(`Rcas: allow cas <"DECISION", formal> -> <"DECISION", *>`)
	s := peats.New(pol)
	ctx := context.Background()
	d, err := consensus.NewWeak(s.Handle("p1")).Propose(ctx, tuple.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.IntValue(); v != 5 {
		t.Errorf("decided %v", d)
	}
	d2, err := consensus.NewWeak(s.Handle("p2")).Propose(ctx, tuple.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Equal(d) {
		t.Error("agreement violated under DSL policy")
	}
}

func TestFig1RegisterPolicyInDSL(t *testing.T) {
	// Fig. 1's ACL part (the value-greater-than-current part needs a
	// native predicate — the documented escape hatch).
	greater := policy.Check(func(in policy.Invocation, st policy.StateView) bool {
		v, ok := in.Entry.Field(1).IntValue()
		if !ok {
			return false
		}
		cur, found := st.Rdp(tuple.T(tuple.Str("REG"), tuple.Any()))
		if !found {
			return true
		}
		c, _ := cur.Field(1).IntValue()
		return v > c
	})
	pol, err := CompileWith(`
Rread:  allow rdp <"REG", *>
Rwrite: allow out <"REG", int>
        when invoker in {p1, p2, p3} and native greater
`, Options{Extra: map[string]policy.Predicate{"greater": greater}})
	if err != nil {
		t.Fatal(err)
	}

	st := space.New()
	w := func(p policy.ProcessID, v int64) bool {
		i := inv(p, policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("REG"), tuple.Int(v)))
		if !pol.Allows(i, st) {
			return false
		}
		st.Inp(tuple.T(tuple.Str("REG"), tuple.Any()))
		if err := st.Out(i.Entry); err != nil {
			t.Fatal(err)
		}
		return true
	}
	if !w("p1", 5) || w("p4", 9) || w("p2", 3) || !w("p3", 8) {
		t.Error("Fig. 1 semantics broken in DSL")
	}
	if !pol.Allows(inv("anyone", policy.OpRdp, tuple.T(tuple.Str("REG"), tuple.Any()), tuple.Tuple{}), st) {
		t.Error("read denied")
	}
}

func TestLockFreePolicyInDSL(t *testing.T) {
	// Fig. 7 without the pos(template)==pos(entry) cross-argument check,
	// which needs a native predicate.
	samePos := policy.Check(func(in policy.Invocation, _ policy.StateView) bool {
		tp, ok1 := in.Template.Field(1).IntValue()
		ep, ok2 := in.Entry.Field(1).IntValue()
		return ok1 && ok2 && tp == ep && ep >= 1
	})
	pol, err := CompileWith(`
Rcas: allow cas <"SEQ", int, formal> -> <"SEQ", int, bytes>
      when native samepos and (exists <"SEQ", $e1, *> or count <"SEQ", *, *> == 0)
`, Options{Extra: map[string]policy.Predicate{"samepos": samePos}})
	if err != nil {
		t.Fatal(err)
	}
	_ = pol
	// Note: the contiguity condition proper needs pos−1 arithmetic, which
	// stays native; this test only checks the language composes.
}

func TestGuardReferences(t *testing.T) {
	// exists <"PROPOSE", $e1, *>: the guard tuple copies entry field 1.
	pol := MustCompile(`
Rout: allow out <"PROPOSE", @invoker, int>
      when not exists <"PROPOSE", $e1, *>
Rrdp: allow rdp
`)
	st := space.New()
	first := inv("p1", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(4)))
	if !pol.Allows(first, st) {
		t.Fatal("first proposal denied")
	}
	if err := st.Out(first.Entry); err != nil {
		t.Fatal(err)
	}
	// Second proposal by the same process: denied by the exists guard.
	second := inv("p1", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(9)))
	if pol.Allows(second, st) {
		t.Error("double proposal allowed")
	}
	// Impersonation: @invoker mismatch.
	forged := inv("p2", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(9)))
	if pol.Allows(forged, st) {
		t.Error("impersonation allowed")
	}
	// Another process proposing is fine.
	other := inv("p2", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p2"), tuple.Int(9)))
	if !pol.Allows(other, st) {
		t.Error("other process denied")
	}
	// Non-int value: type constraint.
	bad := inv("p3", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), tuple.Str("one")))
	if pol.Allows(bad, st) {
		t.Error("non-int proposal allowed")
	}
}

func TestCountGuard(t *testing.T) {
	pol := MustCompile(`
Rcas: allow cas <"D", formal> -> <"D", int>
      when count <"P", *, $e1> >= 2
`)
	st := space.New()
	cas := inv("p", policy.OpCas,
		tuple.T(tuple.Str("D"), tuple.Formal("d")),
		tuple.T(tuple.Str("D"), tuple.Int(7)))
	if pol.Allows(cas, st) {
		t.Error("cas allowed with zero support")
	}
	mustOut := func(tu tuple.Tuple) {
		if err := st.Out(tu); err != nil {
			t.Fatal(err)
		}
	}
	mustOut(tuple.T(tuple.Str("P"), tuple.Str("a"), tuple.Int(7)))
	if pol.Allows(cas, st) {
		t.Error("cas allowed with one supporter")
	}
	mustOut(tuple.T(tuple.Str("P"), tuple.Str("b"), tuple.Int(7)))
	if !pol.Allows(cas, st) {
		t.Error("cas denied with two supporters")
	}
	// Support for a DIFFERENT value must not help.
	cas9 := inv("p", policy.OpCas,
		tuple.T(tuple.Str("D"), tuple.Formal("d")),
		tuple.T(tuple.Str("D"), tuple.Int(9)))
	if pol.Allows(cas9, st) {
		t.Error("cas allowed with support for another value")
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	pol := MustCompile(`
a: allow out <"A"> when count <"X", *> <= 1
b: allow out <"B"> when count <"X", *> == 2 or invoker in {root}
c: allow out <"C"> when not (exists <"X", 1> and exists <"X", 2>)
`)
	st := space.New()
	outA := inv("p", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("A")))
	outB := inv("p", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("B")))
	outBroot := inv("root", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("B")))
	outC := inv("p", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Str("C")))

	if !pol.Allows(outA, st) || pol.Allows(outB, st) || !pol.Allows(outBroot, st) || !pol.Allows(outC, st) {
		t.Error("initial state evaluation wrong")
	}
	mustOut := func(tu tuple.Tuple) {
		if err := st.Out(tu); err != nil {
			t.Fatal(err)
		}
	}
	mustOut(tuple.T(tuple.Str("X"), tuple.Int(1)))
	mustOut(tuple.T(tuple.Str("X"), tuple.Int(2)))
	if pol.Allows(outA, st) {
		t.Error("A allowed with 2 X tuples (<= 1)")
	}
	if !pol.Allows(outB, st) {
		t.Error("B denied with exactly 2 X tuples")
	}
	if pol.Allows(outC, st) {
		t.Error("C allowed although both X tuples exist")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"gibberish", "frobnicate", "expected 'allow'"},
		{"bad op", "allow munge", "unknown operation"},
		{"unterminated string", `allow out <"abc`, "unterminated string"},
		{"unterminated tuple", `allow out <"a", 1`, "expected ',' or '>'"},
		{"cas missing entry", `allow cas <"a"> when true`, "expected '->'"},
		{"bad field", `allow out <wibble>`, "unknown field pattern"},
		{"ref outside guard", `allow out <$e1>`, "only allowed in guard"},
		{"bad ref", `allow out <"a"> when exists <$q1>`, "bad reference"},
		{"bad at", `allow out <@self>`, "only @invoker"},
		{"count bad cmp", `allow out <"a"> when count <"x"> > 1`, "count needs"},
		{"missing native", `allow out <"a"> when native nope`, "not provided"},
		{"single equals", `allow out <"a"> when count <"x"> = 1`, "unexpected '='"},
		{"trailing junk", `allow rdp } `, "unexpected"},
		{"invoker missing in", `allow out <"a"> when invoker within {x}`, "expected 'in'"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile(tt.src)
			if err == nil {
				t.Fatalf("no error for %q", tt.src)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error is %T, want *ParseError", err)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad input")
		}
	}()
	MustCompile("not a policy")
}

func TestRuleNamesAndDefaults(t *testing.T) {
	pol := MustCompile(`
Rone: allow rdp
allow inp
`)
	rules := pol.Rules()
	if len(rules) != 2 {
		t.Fatalf("%d rules", len(rules))
	}
	if rules[0].Name != "Rone" {
		t.Errorf("rule 0 name %q", rules[0].Name)
	}
	if rules[1].Name != "rule-2" {
		t.Errorf("rule 1 name %q", rules[1].Name)
	}
}

func TestMultilineRulesAndComments(t *testing.T) {
	pol, err := Compile(`
# leading comment

Rout: allow out <"A",
                 @invoker,
                 int>   # trailing comment
      when invoker in {p1, p2}
      and not exists <"A", $e1, *>

allow rdp
`)
	if err != nil {
		t.Fatal(err)
	}
	st := space.New()
	ok := inv("p1", policy.OpOut, tuple.Tuple{},
		tuple.T(tuple.Str("A"), tuple.Str("p1"), tuple.Int(1)))
	if !pol.Allows(ok, st) {
		t.Error("multiline rule broken")
	}
}

func TestBoolAndBytesPatterns(t *testing.T) {
	pol := MustCompile(`
a: allow out <"F", true>
b: allow out <"G", bool>
c: allow out <"H", bytes>
d: allow out <"I", 42>
`)
	st := space.New()
	cases := []struct {
		entry tuple.Tuple
		want  bool
	}{
		{tuple.T(tuple.Str("F"), tuple.Bool(true)), true},
		{tuple.T(tuple.Str("F"), tuple.Bool(false)), false},
		{tuple.T(tuple.Str("G"), tuple.Bool(false)), true},
		{tuple.T(tuple.Str("G"), tuple.Int(0)), false},
		{tuple.T(tuple.Str("H"), tuple.Bytes([]byte{1})), true},
		{tuple.T(tuple.Str("H"), tuple.Str("x")), false},
		{tuple.T(tuple.Str("I"), tuple.Int(42)), true},
		{tuple.T(tuple.Str("I"), tuple.Int(43)), false},
	}
	for i, c := range cases {
		got := pol.Allows(inv("p", policy.OpOut, tuple.Tuple{}, c.entry), st)
		if got != c.want {
			t.Errorf("case %d (%v): got %v", i, c.entry, got)
		}
	}
}

func TestNegativeIntLiteral(t *testing.T) {
	pol := MustCompile(`a: allow out <-5>`)
	st := space.New()
	if !pol.Allows(inv("p", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Int(-5))), st) {
		t.Error("negative literal broken")
	}
	if pol.Allows(inv("p", policy.OpOut, tuple.Tuple{}, tuple.T(tuple.Int(5))), st) {
		t.Error("sign ignored")
	}
}

func TestRdAllRule(t *testing.T) {
	pol := MustCompile(`
Rbulk: allow rdall <"LOG", *>
`)
	st := space.New()
	if !pol.Allows(inv("p", policy.OpRdAll, tuple.T(tuple.Str("LOG"), tuple.Any()), tuple.Tuple{}), st) {
		t.Error("rdall rule not matched")
	}
	if pol.Allows(inv("p", policy.OpRdAll, tuple.T(tuple.Str("SECRET"), tuple.Any()), tuple.Tuple{}), st) {
		t.Error("rdall allowed on wrong tag")
	}
	if pol.Allows(inv("p", policy.OpRdp, tuple.T(tuple.Str("LOG"), tuple.Any()), tuple.Tuple{}), st) {
		t.Error("rdp allowed by an rdall rule")
	}
}
