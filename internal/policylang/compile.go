package policylang

import (
	"fmt"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// Options tweak compilation.
type Options struct {
	// Extra makes named native predicates available to rules via
	// "when native <name>" guards — the escape hatch for conditions the
	// language cannot express (e.g. Fig. 4's ∀q ∈ S justification
	// check). Nil predicates are rejected.
	Extra map[string]policy.Predicate
}

// Compile parses and compiles a policy source text.
func Compile(src string) (policy.Policy, error) {
	return CompileWith(src, Options{})
}

// CompileWith is Compile with options.
func CompileWith(src string, opts Options) (policy.Policy, error) {
	toks, err := lex(src)
	if err != nil {
		return policy.Policy{}, err
	}
	asts, err := parse(toks)
	if err != nil {
		return policy.Policy{}, err
	}
	rules := make([]policy.Rule, 0, len(asts))
	for _, ast := range asts {
		r, err := compileRule(ast, opts)
		if err != nil {
			return policy.Policy{}, err
		}
		rules = append(rules, r)
	}
	return policy.New(rules...), nil
}

// MustCompile is Compile that panics on error, for policies embedded as
// program constants.
func MustCompile(src string) policy.Policy {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func compileRule(ast ruleAST, opts Options) (policy.Rule, error) {
	var preds []policy.Predicate
	if ast.tmplPat != nil {
		p, err := compilePat(ast.tmplPat, argTemplate, opts)
		if err != nil {
			return policy.Rule{}, err
		}
		preds = append(preds, p)
	}
	if ast.entPat != nil {
		p, err := compilePat(ast.entPat, argEntry, opts)
		if err != nil {
			return policy.Rule{}, err
		}
		preds = append(preds, p)
	}
	if ast.guard != nil {
		g, err := compileExpr(ast.guard, opts)
		if err != nil {
			return policy.Rule{}, err
		}
		preds = append(preds, g)
	}
	var when policy.Predicate
	switch len(preds) {
	case 0:
		when = policy.Always
	case 1:
		when = preds[0]
	default:
		when = policy.And(preds...)
	}
	return policy.Rule{Name: ast.name, Op: ast.op, When: when}, nil
}

type argSelector uint8

const (
	argTemplate argSelector = iota + 1
	argEntry
)

func (a argSelector) pick(inv policy.Invocation) tuple.Tuple {
	if a == argEntry {
		return inv.Entry
	}
	return inv.Template
}

// compilePat turns an argument pattern into a predicate requiring the
// selected argument to have the pattern's arity and satisfy every field
// constraint.
func compilePat(pat *tuplePat, sel argSelector, opts Options) (policy.Predicate, error) {
	checks := make([]func(inv policy.Invocation, f tuple.Field) bool, len(pat.fields))
	for i, fp := range pat.fields {
		check, err := compileFieldCheck(fp)
		if err != nil {
			return nil, err
		}
		checks[i] = check
	}
	arity := len(pat.fields)
	return func(inv policy.Invocation, _ policy.StateView) bool {
		arg := sel.pick(inv)
		if arg.Arity() != arity {
			return false
		}
		for i, check := range checks {
			if !check(inv, arg.Field(i)) {
				return false
			}
		}
		return true
	}, nil
}

func compileFieldCheck(fp fieldPat) (func(policy.Invocation, tuple.Field) bool, error) {
	switch fp.kind {
	case fLitString:
		want := tuple.Str(fp.s)
		return func(_ policy.Invocation, f tuple.Field) bool { return f.Equal(want) }, nil
	case fLitInt:
		want := tuple.Int(fp.i)
		return func(_ policy.Invocation, f tuple.Field) bool { return f.Equal(want) }, nil
	case fLitBool:
		want := tuple.Bool(fp.b)
		return func(_ policy.Invocation, f tuple.Field) bool { return f.Equal(want) }, nil
	case fAnyValue:
		return func(_ policy.Invocation, f tuple.Field) bool { return !f.IsZero() }, nil
	case fTypeInt:
		return kindCheck(tuple.KindInt), nil
	case fTypeStr:
		return kindCheck(tuple.KindString), nil
	case fTypeBool:
		return kindCheck(tuple.KindBool), nil
	case fTypeBytes:
		return kindCheck(tuple.KindBytes), nil
	case fFormal:
		return func(_ policy.Invocation, f tuple.Field) bool { return f.IsFormal() }, nil
	case fInvoker:
		return func(inv policy.Invocation, f tuple.Field) bool {
			s, ok := f.StrValue()
			return ok && policy.ProcessID(s) == inv.Invoker
		}, nil
	case fRefEntry, fRefTmpl:
		return nil, errf(fp.line, "$-references are only allowed in guard tuples")
	default:
		return nil, errf(fp.line, "internal: unknown field pattern kind %d", fp.kind)
	}
}

func kindCheck(k tuple.Kind) func(policy.Invocation, tuple.Field) bool {
	return func(_ policy.Invocation, f tuple.Field) bool { return f.Kind() == k }
}

// buildGuardTemplate materialises a guard tuple pattern against a
// concrete invocation, producing the template to query the space with.
// It fails (allowing the guard to evaluate that field as unmatched) if
// a reference points outside the referenced argument or a constraint
// cannot be represented as a template field.
func buildGuardTemplate(pat *tuplePat, inv policy.Invocation) (tuple.Tuple, bool) {
	fields := make([]tuple.Field, len(pat.fields))
	for i, fp := range pat.fields {
		switch fp.kind {
		case fLitString:
			fields[i] = tuple.Str(fp.s)
		case fLitInt:
			fields[i] = tuple.Int(fp.i)
		case fLitBool:
			fields[i] = tuple.Bool(fp.b)
		case fAnyValue:
			fields[i] = tuple.Any()
		case fInvoker:
			fields[i] = tuple.Str(string(inv.Invoker))
		case fRefEntry:
			f := inv.Entry.Field(fp.ref)
			if f.IsZero() || !f.IsValue() {
				return tuple.Tuple{}, false
			}
			fields[i] = f
		case fRefTmpl:
			f := inv.Template.Field(fp.ref)
			if f.IsZero() || !f.IsValue() {
				return tuple.Tuple{}, false
			}
			fields[i] = f
		case fTypeInt, fTypeStr, fTypeBool, fTypeBytes, fFormal:
			// Type constraints cannot be expressed as a space template;
			// treat them as wildcards for the state query.
			fields[i] = tuple.Any()
		default:
			return tuple.Tuple{}, false
		}
	}
	return tuple.T(fields...), true
}

func compileExpr(e exprAST, opts Options) (policy.Predicate, error) {
	switch e := e.(type) {
	case exprTrue:
		return policy.Always, nil
	case exprNot:
		x, err := compileExpr(e.x, opts)
		if err != nil {
			return nil, err
		}
		return policy.Not(x), nil
	case exprAnd:
		l, err := compileExpr(e.l, opts)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.r, opts)
		if err != nil {
			return nil, err
		}
		return policy.And(l, r), nil
	case exprOr:
		l, err := compileExpr(e.l, opts)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.r, opts)
		if err != nil {
			return nil, err
		}
		return policy.Or(l, r), nil
	case exprExists:
		pat := e.pat
		return policy.ExistsFn(func(inv policy.Invocation) (tuple.Tuple, bool) {
			return buildGuardTemplate(pat, inv)
		}), nil
	case exprCount:
		pat := e.pat
		cmp := e.cmp
		n := int(e.n)
		return policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			tmpl, ok := buildGuardTemplate(pat, inv)
			if !ok {
				return false
			}
			c := st.CountMatching(tmpl)
			switch cmp {
			case tokGE:
				return c >= n
			case tokLE:
				return c <= n
			default:
				return c == n
			}
		}), nil
	case exprNative:
		pred, ok := opts.Extra[e.name]
		if !ok || pred == nil {
			return nil, errf(e.line, "native predicate %q is not provided", e.name)
		}
		return pred, nil
	case exprInvokerIn:
		ids := make([]policy.ProcessID, len(e.ids))
		for i, s := range e.ids {
			ids[i] = policy.ProcessID(s)
		}
		return policy.InvokerIn(ids...), nil
	default:
		return nil, fmt.Errorf("policy: internal: unknown expression %T", e)
	}
}
