// Package policylang implements a small declarative language for PEATS
// access policies, playing the role of the "more generic policy
// enforcer system" the paper points to (§4, citing law-governed
// interaction). Policies are written as allow-rules in a syntax close
// to the paper's figures and compiled to policy.Policy values:
//
//	# Fig. 3 — weak consensus
//	Rcas: allow cas <"DECISION", formal> -> <"DECISION", *>
//
//	# Fig. 4 (Rout) — one in-domain proposal per process
//	Rout: allow out <"PROPOSE", @invoker, int>
//	      when not exists <"PROPOSE", $e1, *>
//
// Rule anatomy: an optional name, "allow", the operation, a pattern for
// its argument(s) (entry for out, template for the reads, template ->
// entry for cas), and an optional "when" guard over the space state and
// the invoker. Everything a rule does not explicitly allow stays denied
// (the engine's fail-safe default).
//
// Pattern fields: literals ("s", 42, true), * (any defined value), the
// type constraints int/str/bool/bytes, formal (a formal field — only
// meaningful in templates), and @invoker (a string equal to the
// invoking process). Guard tuples may additionally use $e<i> and $t<i>
// to reference field i (0-based) of the entry or template argument.
//
// The language covers Figs. 1, 3 and 7 exactly and the per-field parts
// of Figs. 4, 5 and 8; quantified set checks (∀q ∈ S ...) still need a
// native predicate, which Compile accepts through the Extra hook.
package policylang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokInt
	tokLAngle  // <
	tokRAngle  // >
	tokComma   // ,
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokArrow   // ->
	tokColon   // :
	tokStar    // *
	tokAt      // @
	tokDollar  // $
	tokGE      // >=
	tokLE      // <=
	tokEQ      // ==
	tokNewline // statement separator
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokComma:
		return "','"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokArrow:
		return "'->'"
	case tokColon:
		return "':'"
	case tokStar:
		return "'*'"
	case tokAt:
		return "'@'"
	case tokDollar:
		return "'$'"
	case tokGE:
		return "'>='"
	case tokLE:
		return "'<='"
	case tokEQ:
		return "'=='"
	case tokNewline:
		return "newline"
	default:
		return fmt.Sprintf("token(%d)", k)
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// ParseError reports a syntax or compilation error with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("policy: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex splits src into tokens. Newlines separate statements (a rule may
// continue on the next line after "when", "and", "or", "," or "->",
// which the lexer handles by suppressing the newline token after a
// continuation token).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokenKind, text string) { toks = append(toks, token{kind: k, text: text, line: line}) }
	lastContinues := func() bool {
		for j := len(toks) - 1; j >= 0; j-- {
			t := toks[j]
			if t.kind == tokNewline {
				return true // blank region: suppress duplicates
			}
			switch t.kind {
			case tokComma, tokArrow, tokLParen, tokLBrace, tokLAngle:
				return true
			case tokIdent:
				switch t.text {
				case "when", "and", "or", "not", "allow":
					return true
				}
				return false
			default:
				return false
			}
		}
		return true // leading newlines
	}

	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			if !lastContinues() {
				emit(tokNewline, "\n")
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, errf(line, "unterminated string")
				}
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, errf(line, "unterminated string")
			}
			emit(tokString, sb.String())
			i = j + 1
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokLE, "<=")
				i += 2
			} else {
				emit(tokLAngle, "<")
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokGE, ">=")
				i += 2
			} else {
				emit(tokRAngle, ">")
				i++
			}
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(tokEQ, "==")
				i += 2
			} else {
				return nil, errf(line, "unexpected '='; comparisons use '=='")
			}
		case c == '-':
			if i+1 < len(src) && src[i+1] == '>' {
				emit(tokArrow, "->")
				i += 2
			} else if i+1 < len(src) && isDigit(src[i+1]) {
				j := i + 1
				for j < len(src) && isDigit(src[j]) {
					j++
				}
				emit(tokInt, src[i:j])
				i = j
			} else {
				return nil, errf(line, "unexpected '-'")
			}
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '{':
			emit(tokLBrace, "{")
			i++
		case c == '}':
			emit(tokRBrace, "}")
			i++
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == ':':
			emit(tokColon, ":")
			i++
		case c == '*':
			emit(tokStar, "*")
			i++
		case c == '@':
			emit(tokAt, "@")
			i++
		case c == '$':
			emit(tokDollar, "$")
			i++
		case isDigit(c):
			j := i
			for j < len(src) && isDigit(src[j]) {
				j++
			}
			emit(tokInt, src[i:j])
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		default:
			return nil, errf(line, "unexpected character %q", c)
		}
	}
	emit(tokEOF, "")
	return joinContinuations(toks), nil
}

// joinContinuations removes statement-separating newlines when the next
// line visibly continues the rule (starts with when/and/or/not-in-rule
// keywords or '->'), so guards may be written under the rule head.
func joinContinuations(toks []token) []token {
	out := toks[:0]
	for i, t := range toks {
		if t.kind == tokNewline && i+1 < len(toks) {
			next := toks[i+1]
			if next.kind == tokArrow {
				continue
			}
			if next.kind == tokIdent {
				switch next.text {
				case "when", "and", "or":
					continue
				}
			}
		}
		out = append(out, t)
	}
	return out
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
