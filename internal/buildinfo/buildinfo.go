// Package buildinfo reads the module version and VCS revision baked
// into the binary by the Go toolchain (runtime/debug.ReadBuildInfo),
// backing the -version flag on every binary and the peats_build_info
// metric.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit, with "+dirty" appended when the
	// working tree was modified; "unknown" outside a VCS checkout.
	Revision string `json:"revision"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// Read extracts the build identity. It never fails: binaries built
// without module support report unknowns.
func Read() Info {
	info := Info{Version: "unknown", Revision: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		info.Revision = rev
	}
	return info
}

// String renders the standard one-line -version output.
func (i Info) String() string {
	return fmt.Sprintf("peats %s (%s, %s)", i.Version, i.Revision, i.Go)
}

// Print writes "<binary>: <info>" for a -version flag handler.
func Print(binary string) {
	fmt.Printf("%s: %s\n", binary, Read())
}
