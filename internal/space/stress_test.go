package space

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peats/internal/tuple"
)

// TestShardedWaiterStress is a bounded randomized stress test of the
// sharded concurrency architecture: blocking rd/in waiters (keyed and
// wildcard-first, so single-shard and multi-shard registrations),
// fast-path DoRead readers, and scoped ordered writers all run
// concurrently, under -race in CI.
//
// Correctness properties asserted:
//   - no lost wakeups: every produced job is eventually consumed even
//     though consumers park before producers insert;
//   - no double consumption: every job value is consumed exactly once
//     (jobs are unique, so a duplicate means one tuple served two
//     destructive waiters);
//   - conservation: consumed + remaining = produced.
func TestShardedWaiterStress(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, err := NewSharded(EngineIndexed, shards)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			const (
				producers   = 4
				jobsPerProd = 200
				consumers   = 8
				readers     = 4
			)
			total := producers * jobsPerProd

			var (
				wg       sync.WaitGroup
				consumed atomic.Int64
				mu       sync.Mutex
				seen     = make(map[int64]bool, total)
			)
			record := func(got tuple.Tuple) {
				v, _ := got.Field(1).IntValue()
				mu.Lock()
				defer mu.Unlock()
				if seen[v] {
					t.Errorf("job %d consumed twice", v)
				}
				seen[v] = true
			}

			// Consumers: blocking destructive reads, half keyed, half
			// wildcard-first (registered on every shard). They keep
			// consuming until the space reports all jobs taken.
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					tmpl := tuple.T(tuple.Str("JOB"), tuple.Any())
					if c%2 == 1 {
						tmpl = tuple.T(tuple.Any(), tuple.Any())
					}
					for consumed.Load() < int64(total) {
						cctx, ccancel := context.WithTimeout(ctx, 50*time.Millisecond)
						got, err := s.In(cctx, tmpl)
						ccancel()
						if err != nil {
							continue // timed out because the space drained
						}
						record(got)
						consumed.Add(1)
					}
				}(c)
			}

			// Producers: ordered writes through scoped transactions (the
			// replica execution path) and plain Outs.
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < jobsPerProd; i++ {
						e := tuple.T(tuple.Str("JOB"), tuple.Int(int64(p*jobsPerProd+i)))
						if i%2 == 0 {
							if err := s.Out(e); err != nil {
								t.Error(err)
								return
							}
							continue
						}
						var ws ShardSet
						ws.Add(s.EntryShard(e))
						s.DoScoped(ws, func(tx *Tx) {
							if err := tx.Out(e); err != nil {
								t.Error(err)
							}
						})
					}
				}(p)
			}

			// Fast-path readers: shared-lock sections mixing Rdp, RdAll
			// and Count, plus blocking rds that are eventually cancelled.
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					keyed := tuple.T(tuple.Str("JOB"), tuple.Any())
					wild := tuple.T(tuple.Any(), tuple.Any())
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.DoRead(func(tx *Tx) {
							tx.Rdp(keyed)
							if n := tx.CountMatching(wild); n < 0 {
								t.Error("negative count")
							}
							tx.RdAll(keyed)
						})
						rctx, rcancel := context.WithTimeout(ctx, time.Millisecond)
						_, _ = s.Rd(rctx, keyed)
						rcancel()
					}
				}(r)
			}

			// Wait for every job to be consumed; the 30s ctx bounds a
			// lost-wakeup hang into a test failure instead.
			for consumed.Load() < int64(total) {
				if ctx.Err() != nil {
					t.Fatalf("lost wakeup: %d/%d jobs consumed before timeout",
						consumed.Load(), total)
				}
				time.Sleep(time.Millisecond)
			}
			close(stop)
			wg.Wait()

			if got := consumed.Load(); got != int64(total) {
				t.Errorf("consumed %d jobs, want %d", got, total)
			}
			if n := s.CountMatching(tuple.T(tuple.Str("JOB"), tuple.Any())); n != 0 {
				t.Errorf("%d jobs left in space after full consumption", n)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(seen) != total {
				t.Errorf("saw %d distinct jobs, want %d", len(seen), total)
			}
		})
	}
}

// TestScopedWriteOutsideSetPanics pins the DoScoped safety check: a
// mutation routed to a shard outside the declared write set is a
// caller bug and must panic rather than mutate under a shared lock.
func TestScopedWriteOutsideSetPanics(t *testing.T) {
	s, err := NewSharded(EngineIndexed, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := tuple.T(tuple.Str("a"), tuple.Int(1))
	var other int
	for i := 0; i < 8; i++ {
		if i != s.EntryShard(a) {
			other = i
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Out outside the write set did not panic")
		}
	}()
	var ws ShardSet
	ws.Add(other)
	s.DoScoped(ws, func(tx *Tx) { _ = tx.Out(a) })
}

// TestDoReadMutationPanics pins that the read-only fast path cannot
// mutate: DoRead transactions have an empty write set.
func TestDoReadMutationPanics(t *testing.T) {
	s, err := NewSharded(EngineIndexed, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Out inside DoRead did not panic")
		}
	}()
	s.DoRead(func(tx *Tx) { _ = tx.Out(tuple.T(tuple.Str("x"))) })
}
