package space

import "peats/internal/tuple"

// SliceStore is the reference storage engine: insertion order is the
// physical order of a flat slice, and every lookup is a linear scan.
// It is deliberately the simplest possible realisation of the Store
// determinism contract; the indexed engine is tested for observational
// equivalence against it.
type SliceStore struct {
	recs []SeqTuple
}

var _ Store = (*SliceStore)(nil)

// NewSliceStore returns an empty slice store.
func NewSliceStore() *SliceStore {
	return &SliceStore{}
}

// Engine implements Store.
func (s *SliceStore) Engine() Engine { return EngineSlice }

// Insert implements Store.
func (s *SliceStore) Insert(t tuple.Tuple, seq uint64) {
	s.recs = append(s.recs, SeqTuple{Seq: seq, T: t})
}

// InsertBatch implements Store.
func (s *SliceStore) InsertBatch(ts []SeqTuple) {
	s.recs = append(s.recs, ts...)
}

// Find implements Store.
func (s *SliceStore) Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, uint64, bool) {
	for i, r := range s.recs {
		if tuple.Matches(r.T, tmpl) {
			if remove {
				s.recs = append(s.recs[:i], s.recs[i+1:]...)
			}
			return r.T, r.Seq, true
		}
	}
	return tuple.Tuple{}, 0, false
}

// FindAll implements Store.
func (s *SliceStore) FindAll(tmpl tuple.Tuple) []SeqTuple {
	var out []SeqTuple
	for _, r := range s.recs {
		if tuple.Matches(r.T, tmpl) {
			out = append(out, r)
		}
	}
	return out
}

// Count implements Store.
func (s *SliceStore) Count(tmpl tuple.Tuple) int {
	n := 0
	for _, r := range s.recs {
		if tuple.Matches(r.T, tmpl) {
			n++
		}
	}
	return n
}

// Len implements Store.
func (s *SliceStore) Len() int { return len(s.recs) }

// ForEach implements Store.
func (s *SliceStore) ForEach(fn func(t tuple.Tuple, seq uint64) bool) {
	for _, r := range s.recs {
		if !fn(r.T, r.Seq) {
			return
		}
	}
}

// Iter implements Store.
func (s *SliceStore) Iter() func() (SeqTuple, bool) {
	i := 0
	return func() (SeqTuple, bool) {
		if i >= len(s.recs) {
			return SeqTuple{}, false
		}
		r := s.recs[i]
		i++
		return r, true
	}
}

// Snapshot implements Store.
func (s *SliceStore) Snapshot() []SeqTuple {
	cp := make([]SeqTuple, len(s.recs))
	copy(cp, s.recs)
	return cp
}

// Reset implements Store.
func (s *SliceStore) Reset() { s.recs = s.recs[:0] }
