package space

import "peats/internal/tuple"

// SliceStore is the reference storage engine: insertion order is the
// physical order of a flat slice, and every lookup is a linear scan.
// It is deliberately the simplest possible realisation of the Store
// determinism contract; the indexed engine is tested for observational
// equivalence against it.
type SliceStore struct {
	tuples []tuple.Tuple
}

var _ Store = (*SliceStore)(nil)

// NewSliceStore returns an empty slice store.
func NewSliceStore() *SliceStore {
	return &SliceStore{}
}

// Engine implements Store.
func (s *SliceStore) Engine() Engine { return EngineSlice }

// Insert implements Store.
func (s *SliceStore) Insert(t tuple.Tuple) {
	s.tuples = append(s.tuples, t)
}

// InsertBatch implements Store.
func (s *SliceStore) InsertBatch(ts []tuple.Tuple) {
	s.tuples = append(s.tuples, ts...)
}

// Find implements Store.
func (s *SliceStore) Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, bool) {
	for i, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			if remove {
				s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
			}
			return t, true
		}
	}
	return tuple.Tuple{}, false
}

// FindAll implements Store.
func (s *SliceStore) FindAll(tmpl tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			out = append(out, t)
		}
	}
	return out
}

// Count implements Store.
func (s *SliceStore) Count(tmpl tuple.Tuple) int {
	n := 0
	for _, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			n++
		}
	}
	return n
}

// Len implements Store.
func (s *SliceStore) Len() int { return len(s.tuples) }

// ForEach implements Store.
func (s *SliceStore) ForEach(fn func(tuple.Tuple) bool) {
	for _, t := range s.tuples {
		if !fn(t) {
			return
		}
	}
}

// Snapshot implements Store.
func (s *SliceStore) Snapshot() []tuple.Tuple {
	cp := make([]tuple.Tuple, len(s.tuples))
	copy(cp, s.tuples)
	return cp
}

// Reset implements Store.
func (s *SliceStore) Reset() { s.tuples = s.tuples[:0] }
