package space

import (
	"peats/internal/tuple"
)

// Staged is a deferred-update view of the space inside an open critical
// section: operations observe the real contents plus an overlay of the
// mutations staged so far, and nothing touches the stores until Commit.
// Dropping a Staged without committing discards every staged effect —
// which is how atomic multi-operation submissions abort without an undo
// log.
//
// Observational contract: a Staged fed a sequence of operations and
// then committed is indistinguishable from applying the same operations
// directly to the Tx one by one. In particular, matches are selected in
// insertion order with staged inserts ordered after every stored tuple
// (they would receive larger sequence numbers), and a staged removal
// hides exactly the tuple a direct execution would have consumed.
//
// Like the Tx it wraps, a Staged is single-threaded and only valid
// during the critical-section callback. Commit requires the shards the
// staged mutations touch to be in the transaction's write set; a
// Staged that only ever read commits nothing and is safe under DoRead.
type Staged struct {
	tx *Tx
	// inserts holds the entries staged for insertion, in operation
	// order — the order they will be stamped with fresh sequence
	// numbers on commit.
	inserts []tuple.Tuple
	// removed holds the stored tuples consumed by staged destructive
	// reads, in consumption order; removedSeqs indexes their sequence
	// numbers so reads skip them.
	removed     []SeqTuple
	removedSeqs map[uint64]struct{}

	// frozen hides stored tuples reserved by in-doubt cross-partition
	// transactions (Freeze): they are invisible to matching, counting
	// and iteration exactly like staged removals, but are not effects —
	// Commit neither consumes nor journals them. frozenSeqs indexes
	// their sequence numbers.
	frozen     []SeqTuple
	frozenSeqs map[uint64]struct{}

	// base, when non-nil, stacks this view on a tentative-execution
	// overlay (Tx.StageOn): matches are selected stored tuples first,
	// then the overlay's unconsumed inserts, then this view's own
	// staged inserts — exactly the order a direct execution of the
	// overlay's units followed by this transaction would produce.
	base *Overlay
	// takes records every consumption — stored or overlay insert — in
	// order, for folding into the overlay; baseTaken lists the overlay
	// inserts consumed (marked eagerly), for un-marking on abort.
	takes     []overlayRemoval
	baseTaken []*OverlayInsert
}

// Stage opens a deferred-update view over the transaction.
func (tx *Tx) Stage() *Staged {
	return &Staged{tx: tx}
}

// StageOn opens a deferred-update view stacked on a tentative overlay:
// the view observes committed state as modified by the overlay's
// units, and its effects are destined for the overlay (CommitTentative)
// rather than the stores. The overlay must belong to the transaction's
// space, and the caller needs no write locks — tentative execution
// never touches the stores.
func (tx *Tx) StageOn(ov *Overlay) *Staged {
	if ov.s != tx.s {
		panic("space: StageOn with an overlay of another space")
	}
	return &Staged{tx: tx, base: ov}
}

// Freeze hides the given stored tuples from this view for its whole
// lifetime. The partitioned deployment uses it to mask the
// reservations of prepared-but-undecided cross-partition transactions:
// a reserved tuple behaves as already consumed until the transaction's
// decision arrives, so no concurrent operation can steal a commit's
// removal target. Frozen tuples are not staged effects — Commit leaves
// them in place.
func (st *Staged) Freeze(rs []SeqTuple) {
	if len(rs) == 0 {
		return
	}
	if st.frozenSeqs == nil {
		st.frozenSeqs = make(map[uint64]struct{}, len(rs))
	}
	for _, r := range rs {
		if _, ok := st.frozenSeqs[r.Seq]; ok {
			continue
		}
		st.frozenSeqs[r.Seq] = struct{}{}
		st.frozen = append(st.frozen, r)
	}
}

// Seed loads previously captured effects into an empty staged unit, so
// a reservation parked outside any critical section can be applied
// later with the usual Commit path (value-addressed removals, fresh
// insert sequence numbers). The staged view takes ownership of the
// slices.
func (st *Staged) Seed(removed []SeqTuple, inserts []tuple.Tuple) {
	if len(st.removed) != 0 || len(st.inserts) != 0 {
		panic("space: Seed on a non-empty staged unit")
	}
	st.removed = removed
	st.removedSeqs = make(map[uint64]struct{}, len(removed))
	for _, r := range removed {
		st.removedSeqs[r.Seq] = struct{}{}
	}
	st.inserts = inserts
}

// overlayClean reports whether no mutation has been staged and no base
// overlay shadows the stores, enabling the direct store fast paths.
func (st *Staged) overlayClean() bool {
	return len(st.inserts) == 0 && len(st.removed) == 0 && len(st.frozen) == 0 &&
		(st.base == nil || st.base.Empty())
}

// hiddenStored reports whether either this view or its base overlay
// hides the stored tuple with the given sequence number.
func (st *Staged) hiddenStored() bool {
	return len(st.removedSeqs) > 0 || len(st.frozenSeqs) > 0 ||
		(st.base != nil && len(st.base.hidden) > 0)
}

func (st *Staged) isRemoved(seq uint64) bool {
	if _, ok := st.removedSeqs[seq]; ok {
		return true
	}
	if _, ok := st.frozenSeqs[seq]; ok {
		return true
	}
	return st.base != nil && st.base.hiddenSeq(seq)
}

// peekStored returns the earliest stored (non-staged-removed) match for
// tmpl across the shards it routes to.
func (st *Staged) peekStored(tmpl tuple.Tuple) (SeqTuple, bool) {
	s := st.tx.s
	if !st.hiddenStored() {
		// No staged removals: the store's own first match is the answer.
		if idx, keyed := s.TemplateShard(tmpl); keyed || len(s.shards) == 1 {
			t, seq, ok := s.shards[idx].store.Find(tmpl, false)
			return SeqTuple{Seq: seq, T: t}, ok
		}
		var (
			best  SeqTuple
			found bool
		)
		for _, sh := range s.shards {
			if t, seq, ok := sh.store.Find(tmpl, false); ok && (!found || seq < best.Seq) {
				best, found = SeqTuple{Seq: seq, T: t}, true
			}
		}
		return best, found
	}
	// Staged removals hide tuples: scan each routed shard's matches in
	// order for the first survivor, then take the earliest across shards.
	shards := s.shards
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		shards = s.shards[idx : idx+1]
	}
	var (
		best  SeqTuple
		found bool
	)
	for _, sh := range shards {
		for _, cand := range sh.store.FindAll(tmpl) {
			if st.isRemoved(cand.Seq) {
				continue
			}
			if !found || cand.Seq < best.Seq {
				best, found = cand, true
			}
			break // per-shard lists are seq-sorted: first survivor is the shard's best
		}
	}
	return best, found
}

// find returns the first match for tmpl in the staged view — stored
// tuples first (they precede every staged insert in insertion order),
// then the base overlay's unconsumed inserts, then staged inserts in
// staging order — consuming it when remove is true.
func (st *Staged) find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, bool) {
	if cand, ok := st.peekStored(tmpl); ok {
		if remove {
			if st.removedSeqs == nil {
				st.removedSeqs = make(map[uint64]struct{}, 1)
			}
			st.removedSeqs[cand.Seq] = struct{}{}
			st.removed = append(st.removed, cand)
			if st.base != nil {
				st.takes = append(st.takes, overlayRemoval{stored: cand})
			}
		}
		return cand.T, true
	}
	if st.base != nil {
		var hit *OverlayInsert
		st.base.eachVisibleInsert(func(ins *OverlayInsert) bool {
			if tuple.Matches(ins.T, tmpl) {
				hit = ins
				return false
			}
			return true
		})
		if hit != nil {
			if remove {
				// Mark eagerly so later finds in this transaction skip
				// it; AbortTentative un-marks via baseTaken.
				hit.consumed = true
				st.baseTaken = append(st.baseTaken, hit)
				st.takes = append(st.takes, overlayRemoval{base: hit})
			}
			return hit.T, true
		}
	}
	for i, p := range st.inserts {
		if tuple.Matches(p, tmpl) {
			if remove {
				st.inserts = append(st.inserts[:i], st.inserts[i+1:]...)
			}
			return p, true
		}
	}
	return tuple.Tuple{}, false
}

// Out stages the insertion of entry t.
func (st *Staged) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return ErrNotEntry
	}
	st.inserts = append(st.inserts, t)
	return nil
}

// Rdp returns the first tuple matching tmpl in the staged view.
func (st *Staged) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	return st.find(tmpl, false)
}

// Inp removes and returns the first tuple matching tmpl in the staged
// view. Removal of a stored tuple is staged; removal of a staged insert
// simply un-stages it.
func (st *Staged) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	return st.find(tmpl, true)
}

// Cas performs the conditional atomic swap against the staged view.
func (st *Staged) Cas(tmpl, t tuple.Tuple) (bool, tuple.Tuple, error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, ErrNotEntry
	}
	if m, ok := st.find(tmpl, false); ok {
		return false, m, nil
	}
	st.inserts = append(st.inserts, t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every tuple matching tmpl in the staged view, in
// insertion order (staged inserts last, in staging order).
func (st *Staged) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	s := st.tx.s
	var stored []SeqTuple
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		stored = s.shards[idx].store.FindAll(tmpl)
	} else {
		stored = s.mergeLocked(func(sto Store) []SeqTuple { return sto.FindAll(tmpl) })
	}
	var out []tuple.Tuple
	for _, cand := range stored {
		if !st.isRemoved(cand.Seq) {
			out = append(out, cand.T)
		}
	}
	if st.base != nil {
		st.base.eachVisibleInsert(func(ins *OverlayInsert) bool {
			if tuple.Matches(ins.T, tmpl) {
				out = append(out, ins.T)
			}
			return true
		})
	}
	for _, p := range st.inserts {
		if tuple.Matches(p, tmpl) {
			out = append(out, p)
		}
	}
	return out
}

// Len returns the number of tuples in the staged view.
func (st *Staged) Len() int {
	n := st.tx.Len() - len(st.removed) - len(st.frozen) + len(st.inserts)
	if st.base != nil {
		n -= len(st.base.hidden)
		st.base.eachVisibleInsert(func(*OverlayInsert) bool { n++; return true })
	}
	return n
}

// CountMatching returns how many tuples match tmpl in the staged view.
// It implements policy.StateView, so the reference monitor vets each
// operation of a transaction against the state its predecessors
// produced.
func (st *Staged) CountMatching(tmpl tuple.Tuple) int {
	n := st.tx.CountMatching(tmpl)
	if st.base != nil {
		for _, t := range st.base.hidden {
			if tuple.Matches(t, tmpl) {
				n--
			}
		}
		st.base.eachVisibleInsert(func(ins *OverlayInsert) bool {
			if tuple.Matches(ins.T, tmpl) {
				n++
			}
			return true
		})
	}
	for _, r := range st.removed {
		if tuple.Matches(r.T, tmpl) {
			n--
		}
	}
	for _, r := range st.frozen {
		if tuple.Matches(r.T, tmpl) {
			n--
		}
	}
	for _, p := range st.inserts {
		if tuple.Matches(p, tmpl) {
			n++
		}
	}
	return n
}

// ForEach visits the tuples of the staged view in insertion order until
// fn returns false (policy.StateView).
func (st *Staged) ForEach(fn func(tuple.Tuple) bool) {
	if st.overlayClean() {
		st.tx.s.forEachLocked(fn)
		return
	}
	stopped := false
	st.tx.s.forEachSeqLocked(func(cand SeqTuple) bool {
		if st.isRemoved(cand.Seq) {
			return true
		}
		if !fn(cand.T) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	if st.base != nil {
		st.base.eachVisibleInsert(func(ins *OverlayInsert) bool {
			if !fn(ins.T) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for _, p := range st.inserts {
		if !fn(p) {
			return
		}
	}
}

// Effects returns the net mutations the overlay holds: the stored
// tuples staged for removal (in consumption order) and the entries
// staged for insertion (in staging order) — exactly what Commit is
// about to apply, in the order it applies them. The replication
// substrate journals these per executed unit to build incremental
// checkpoints; removals are value-addressed downstream (see
// wire.Delta), which the Commit determinism argument below justifies.
// The returned slices alias the overlay and are only valid until
// Commit.
func (st *Staged) Effects() (removed []SeqTuple, inserted []tuple.Tuple) {
	return st.removed, st.inserts
}

// Commit applies the staged mutations to the space: consumed stored
// tuples are removed and staged inserts are stamped with fresh sequence
// numbers (waking matching waiters), in staging order. Every touched
// shard must be in the transaction's write set. A Staged is spent after
// Commit.
func (st *Staged) Commit() {
	if st.base != nil {
		panic("space: Commit on an overlay-stacked Staged (use CommitTentative)")
	}
	s := st.tx.s
	for _, r := range st.removed {
		// An entry used as a template matches exactly its own value, and
		// identical tuples are consumed in ascending sequence order both
		// here and in the staged view, so Find removes precisely the
		// tuple the overlay consumed.
		sh := st.tx.writableShard(s.EntryShard(r.T))
		if _, _, ok := sh.store.Find(r.T, true); !ok {
			panic("space: staged removal lost its target")
		}
	}
	for _, t := range st.inserts {
		s.insertLocked(st.tx.writableShard(s.EntryShard(t)), t)
	}
	st.removed, st.removedSeqs, st.inserts = nil, nil, nil
}

// CommitTentative folds the staged effects into the base overlay's
// open unit instead of the stores: this transaction's consumptions and
// insertions become part of the tentative state later transactions of
// the same or following units observe, and nothing touches the stores
// until the unit promotes. The Staged is spent afterwards.
func (st *Staged) CommitTentative() {
	if st.base == nil {
		panic("space: CommitTentative without an overlay base")
	}
	st.base.fold(st.takes, st.inserts)
	st.takes, st.baseTaken, st.inserts = nil, nil, nil
	st.removed, st.removedSeqs = nil, nil
}

// AbortTentative discards the staged effects, un-marking the overlay
// inserts this transaction had eagerly consumed so they stay visible.
// The Staged is spent afterwards.
func (st *Staged) AbortTentative() {
	for _, ins := range st.baseTaken {
		ins.consumed = false
	}
	st.takes, st.baseTaken, st.inserts = nil, nil, nil
	st.removed, st.removedSeqs = nil, nil
}
