package space

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"peats/internal/tuple"
)

// stagedSpace builds a sharded space preloaded with the given entries.
func stagedSpace(t *testing.T, e Engine, shards int, entries ...tuple.Tuple) *Space {
	t.Helper()
	s, err := NewSharded(e, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range entries {
		if err := s.Out(entry); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func allShards() ShardSet {
	var ws ShardSet
	ws.AddAll()
	return ws
}

// TestStagedOverlaySemantics pins the deferred-update view: staged
// inserts are visible to later ops, staged removals hide stored tuples,
// and nothing touches the store before Commit.
func TestStagedOverlaySemantics(t *testing.T) {
	ka := tuple.T(tuple.Str("K"), tuple.Int(1))
	kb := tuple.T(tuple.Str("K"), tuple.Int(2))
	kc := tuple.T(tuple.Str("K"), tuple.Int(3))
	anyK := tuple.T(tuple.Str("K"), tuple.Any())

	s := stagedSpace(t, EngineIndexed, 4, ka, kb)
	s.DoScoped(allShards(), func(tx *Tx) {
		st := tx.Stage()
		// Stored tuples first, in insertion order.
		if got, ok := st.Rdp(anyK); !ok || !got.Equal(ka) {
			t.Fatalf("Rdp = %v %v, want %v", got, ok, ka)
		}
		// Staged insert becomes visible, after stored tuples.
		if err := st.Out(kc); err != nil {
			t.Fatal(err)
		}
		if got := st.RdAll(anyK); len(got) != 3 || !got[2].Equal(kc) {
			t.Fatalf("RdAll with staged insert = %v", got)
		}
		if st.CountMatching(anyK) != 3 {
			t.Fatalf("CountMatching = %d, want 3", st.CountMatching(anyK))
		}
		// Staged removal hides the earliest stored match...
		if got, ok := st.Inp(anyK); !ok || !got.Equal(ka) {
			t.Fatalf("Inp = %v %v, want %v", got, ok, ka)
		}
		if got, ok := st.Rdp(anyK); !ok || !got.Equal(kb) {
			t.Fatalf("Rdp after staged removal = %v %v, want %v", got, ok, kb)
		}
		// ... and ForEach skips it while still showing the staged insert.
		var seen []tuple.Tuple
		st.ForEach(func(u tuple.Tuple) bool { seen = append(seen, u); return true })
		if len(seen) != 2 || !seen[0].Equal(kb) || !seen[1].Equal(kc) {
			t.Fatalf("ForEach = %v", seen)
		}
		if st.Len() != 2 {
			t.Fatalf("Len = %d, want 2", st.Len())
		}
		// Consuming a staged insert un-stages it.
		if got, ok := st.Inp(tuple.T(tuple.Str("K"), tuple.Int(3))); !ok || !got.Equal(kc) {
			t.Fatalf("Inp staged insert = %v %v", got, ok)
		}
		// The store itself is untouched so far.
		if tx.Len() != 2 {
			t.Fatalf("store mutated before commit: len %d", tx.Len())
		}
		st.Commit()
	})
	// After commit: ka consumed, kb remains, kc was staged then consumed.
	left := s.Snapshot()
	if len(left) != 1 || !left[0].Equal(kb) {
		t.Fatalf("post-commit contents = %v, want [%v]", left, kb)
	}
}

// TestStagedDropDiscardsEffects: a Staged dropped without Commit leaves
// the space bit-identical — the abort path of atomic submissions.
func TestStagedDropDiscardsEffects(t *testing.T) {
	for _, e := range Engines() {
		for _, shards := range []int{1, 4} {
			a := tuple.T(tuple.Str("A"), tuple.Int(1))
			b := tuple.T(tuple.Str("B"), tuple.Int(2))
			s := stagedSpace(t, e, shards, a, b)
			before := s.Snapshot()
			s.DoScoped(allShards(), func(tx *Tx) {
				st := tx.Stage()
				if _, ok := st.Inp(tuple.T(tuple.Str("A"), tuple.Any())); !ok {
					t.Fatal("staged inp missed")
				}
				if err := st.Out(tuple.T(tuple.Str("C"), tuple.Int(3))); err != nil {
					t.Fatal(err)
				}
				// No Commit: everything staged must vanish.
			})
			if !reflect.DeepEqual(before, s.Snapshot()) {
				t.Fatalf("%s/%d shards: abort mutated the space: %v -> %v",
					e, shards, before, s.Snapshot())
			}
		}
	}
}

// TestStagedIdenticalTuplesConsumeInOrder: identical stored tuples are
// consumed in ascending insertion order through the staged view, so the
// commit-time by-value removal deletes exactly the overlay's choice.
func TestStagedIdenticalTuplesConsumeInOrder(t *testing.T) {
	dup := tuple.T(tuple.Str("D"))
	marker := tuple.T(tuple.Str("M"))
	// Insertion order: dup, marker, dup.
	s := stagedSpace(t, EngineIndexed, 4, dup, marker, dup)
	s.DoScoped(allShards(), func(tx *Tx) {
		st := tx.Stage()
		if _, ok := st.Inp(tuple.T(tuple.Str("D"))); !ok {
			t.Fatal("first dup not found")
		}
		st.Commit()
	})
	// The FIRST dup must be gone: insertion order is now marker, dup.
	snap := s.Snapshot()
	if len(snap) != 2 || !snap[0].Equal(marker) || !snap[1].Equal(dup) {
		t.Fatalf("post-commit order = %v, want [%v %v]", snap, marker, dup)
	}
}

// TestStagedCommitWakesWaiters: entries committed from a staged unit
// reach parked blocking readers exactly like direct Out.
func TestStagedCommitWakesWaiters(t *testing.T) {
	s := stagedSpace(t, EngineIndexed, 4)
	got := make(chan tuple.Tuple, 1)
	go func() {
		u, err := s.Rd(t.Context(), tuple.T(tuple.Str("W"), tuple.Any()))
		if err != nil {
			t.Error(err)
		}
		got <- u
	}()
	entry := tuple.T(tuple.Str("W"), tuple.Int(9))
	for {
		// Retry until the waiter is registered and served.
		s.DoScoped(allShards(), func(tx *Tx) {
			st := tx.Stage()
			if err := st.Out(entry); err != nil {
				t.Error(err)
			}
			st.Commit()
		})
		select {
		case u := <-got:
			if !u.Equal(entry) {
				t.Fatalf("waiter got %v", u)
			}
			return
		default:
			// The waiter may not have parked yet and the entry may have
			// been stored; consume it and retry.
			if _, ok := s.Inp(tuple.T(tuple.Str("W"), tuple.Any())); !ok {
				// Delivered to the waiter; loop to the select.
				u := <-got
				if !u.Equal(entry) {
					t.Fatalf("waiter got %v", u)
				}
				return
			}
		}
	}
}

// randTupleFor returns a random entry from a small domain, so staged
// and direct executions collide often.
func randTupleFor(r *rand.Rand) tuple.Tuple {
	tags := []string{"A", "B", "C"}
	return tuple.T(
		tuple.Str(tags[r.Intn(len(tags))]),
		tuple.Int(int64(r.Intn(3))),
	)
}

func randTemplateFor(r *rand.Rand) tuple.Tuple {
	if r.Intn(3) == 0 { // wildcard-first: crosses shards
		return tuple.T(tuple.Any(), tuple.Int(int64(r.Intn(3))))
	}
	u := randTupleFor(r)
	if r.Intn(2) == 0 {
		return tuple.T(u.Field(0), tuple.Any())
	}
	return u
}

// TestStagedMatchesDirectExecution is the staged-layer parity property:
// a committed staged unit is indistinguishable from applying the same
// operations directly to the transaction, op by op — per-op outcomes
// and final contents alike — on both engines at several shard counts.
func TestStagedMatchesDirectExecution(t *testing.T) {
	for _, e := range Engines() {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/%d", e, shards), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(42 + shards)))
				direct, err := NewSharded(e, shards)
				if err != nil {
					t.Fatal(err)
				}
				staged, err := NewSharded(e, shards)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 60; round++ {
					n := 1 + r.Intn(6)
					type opRec struct {
						kind       int
						tmpl, prev tuple.Tuple
					}
					ops := make([]opRec, n)
					for i := range ops {
						ops[i] = opRec{kind: r.Intn(5), tmpl: randTemplateFor(r), prev: randTupleFor(r)}
					}
					var directOut, stagedOut []string
					direct.DoScoped(allShards(), func(tx *Tx) {
						for _, op := range ops {
							directOut = append(directOut, applyDirect(tx, op.kind, op.tmpl, op.prev))
						}
					})
					staged.DoScoped(allShards(), func(tx *Tx) {
						st := tx.Stage()
						for _, op := range ops {
							stagedOut = append(stagedOut, applyStagedOp(st, op.kind, op.tmpl, op.prev))
						}
						st.Commit()
					})
					if !reflect.DeepEqual(directOut, stagedOut) {
						t.Fatalf("round %d: outcomes diverge\ndirect: %v\nstaged: %v",
							round, directOut, stagedOut)
					}
					a, b := direct.Snapshot(), staged.Snapshot()
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("round %d: contents diverge\ndirect: %v\nstaged: %v", round, a, b)
					}
				}
			})
		}
	}
}

func applyDirect(tx *Tx, kind int, tmpl, entry tuple.Tuple) string {
	switch kind {
	case 0:
		return fmt.Sprint("out:", tx.Out(entry))
	case 1:
		u, ok := tx.Rdp(tmpl)
		return fmt.Sprint("rdp:", u, ok)
	case 2:
		u, ok := tx.Inp(tmpl)
		return fmt.Sprint("inp:", u, ok)
	case 3:
		ins, m, err := tx.Cas(tmpl, entry)
		return fmt.Sprint("cas:", ins, m, err)
	default:
		return fmt.Sprint("rdall:", tx.RdAll(tmpl))
	}
}

func applyStagedOp(st *Staged, kind int, tmpl, entry tuple.Tuple) string {
	switch kind {
	case 0:
		return fmt.Sprint("out:", st.Out(entry))
	case 1:
		u, ok := st.Rdp(tmpl)
		return fmt.Sprint("rdp:", u, ok)
	case 2:
		u, ok := st.Inp(tmpl)
		return fmt.Sprint("inp:", u, ok)
	case 3:
		ins, m, err := st.Cas(tmpl, entry)
		return fmt.Sprint("cas:", ins, m, err)
	default:
		return fmt.Sprint("rdall:", st.RdAll(tmpl))
	}
}
