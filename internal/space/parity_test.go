package space

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peats/internal/tuple"
)

// bgCtx returns a context that outlives any reasonable test step but
// cannot hang a broken run forever.
func bgCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// parityGen produces random tuples and templates over a small domain so
// that matches, misses, key collisions within an arity, and wildcard /
// formal first fields are all frequent. Everything derives from a
// seeded rand.Rand, so failures reproduce by seed.
type parityGen struct {
	rng *rand.Rand
}

func (g *parityGen) field(defined bool) tuple.Field {
	if !defined {
		if g.rng.Intn(2) == 0 {
			return tuple.Any()
		}
		return tuple.Formal(fmt.Sprintf("v%d", g.rng.Intn(3)))
	}
	switch g.rng.Intn(4) {
	case 0:
		return tuple.Int(int64(g.rng.Intn(4)))
	case 1:
		return tuple.Str(string(rune('A' + g.rng.Intn(3))))
	case 2:
		return tuple.Bool(g.rng.Intn(2) == 0)
	default:
		return tuple.Bytes([]byte{byte(g.rng.Intn(3))})
	}
}

// entry returns a fully defined tuple of arity 1..3.
func (g *parityGen) entry() tuple.Tuple {
	arity := 1 + g.rng.Intn(3)
	fields := make([]tuple.Field, arity)
	for i := range fields {
		fields[i] = g.field(true)
	}
	return tuple.T(fields...)
}

// template returns a tuple of arity 1..3 with each field independently
// defined or undefined — including templates with an undefined first
// field, which exercise the indexed store's arity-scan path.
func (g *parityGen) template() tuple.Tuple {
	arity := 1 + g.rng.Intn(3)
	fields := make([]tuple.Field, arity)
	for i := range fields {
		fields[i] = g.field(g.rng.Intn(3) != 0)
	}
	return tuple.T(fields...)
}

// TestStoreParity drives the slice store and the indexed store with the
// same randomized operation sequence and requires identical results at
// every step — same found/not-found, same tuple (so same match order),
// same lengths, and identical snapshots. This is the determinism-parity
// property the SMR substrate depends on: either engine must realise the
// same deterministic state machine.
func TestStoreParity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &parityGen{rng: rand.New(rand.NewSource(seed))}
			ref := NewSliceStore()
			idx := NewIndexedStore()

			check := func(step int, what string, a, b tuple.Tuple, aok, bok bool) {
				t.Helper()
				if aok != bok {
					t.Fatalf("step %d %s: slice ok=%v indexed ok=%v", step, what, aok, bok)
				}
				if aok && !a.Equal(b) {
					t.Fatalf("step %d %s: slice %v indexed %v (match order diverged)", step, what, a, b)
				}
			}
			checkSnapshots := func(step int) {
				t.Helper()
				sa, sb := ref.Snapshot(), idx.Snapshot()
				if len(sa) != len(sb) {
					t.Fatalf("step %d: snapshot lens %d vs %d", step, len(sa), len(sb))
				}
				for i := range sa {
					if !sa[i].Equal(sb[i]) {
						t.Fatalf("step %d: snapshot[%d] %v vs %v", step, i, sa[i], sb[i])
					}
				}
			}

			const steps = 3000
			for i := 0; i < steps; i++ {
				switch op := g.rng.Intn(10); {
				case op < 3: // out
					e := g.entry()
					ref.Insert(e)
					idx.Insert(e)
				case op < 5: // rdp
					tmpl := g.template()
					a, aok := ref.Find(tmpl, false)
					b, bok := idx.Find(tmpl, false)
					check(i, "rdp", a, b, aok, bok)
				case op < 8: // inp
					tmpl := g.template()
					a, aok := ref.Find(tmpl, true)
					b, bok := idx.Find(tmpl, true)
					check(i, "inp", a, b, aok, bok)
				case op < 9: // cas
					tmpl, e := g.template(), g.entry()
					a, aok := ref.Find(tmpl, false)
					b, bok := idx.Find(tmpl, false)
					check(i, "cas-read", a, b, aok, bok)
					if !aok {
						ref.Insert(e)
						idx.Insert(e)
					}
				default: // rdall + count, occasionally snapshot/restore
					tmpl := g.template()
					as, bs := ref.FindAll(tmpl), idx.FindAll(tmpl)
					if len(as) != len(bs) {
						t.Fatalf("step %d rdall: %d vs %d matches", i, len(as), len(bs))
					}
					for j := range as {
						if !as[j].Equal(bs[j]) {
							t.Fatalf("step %d rdall[%d]: %v vs %v", i, j, as[j], bs[j])
						}
					}
					if ref.Count(tmpl) != idx.Count(tmpl) {
						t.Fatalf("step %d: counts diverge", i)
					}
					if g.rng.Intn(20) == 0 {
						// Snapshot one engine, restore into both: state must
						// converge regardless of which engine sourced it.
						snap := idx.Snapshot()
						ref.Reset()
						idx.Reset()
						for _, e := range snap {
							ref.Insert(e)
							idx.Insert(e)
						}
					}
				}
				if ref.Len() != idx.Len() {
					t.Fatalf("step %d: len %d vs %d", i, ref.Len(), idx.Len())
				}
			}
			checkSnapshots(steps)
		})
	}
}

// TestSpaceParityAcrossEngines runs the same operation sequence through
// two full Spaces (waiter plumbing included) built on different engines
// and compares every result — the end-to-end version of TestStoreParity.
func TestSpaceParityAcrossEngines(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		g := &parityGen{rng: rand.New(rand.NewSource(seed))}
		a := NewWithStore(NewSliceStore())
		b := NewWithStore(NewIndexedStore())

		for i := 0; i < 1500; i++ {
			switch g.rng.Intn(5) {
			case 0:
				e := g.entry()
				if err1, err2 := a.Out(e), b.Out(e); (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d step %d: out errs diverge", seed, i)
				}
			case 1:
				tmpl := g.template()
				ta, oka := a.Rdp(tmpl)
				tb, okb := b.Rdp(tmpl)
				if oka != okb || (oka && !ta.Equal(tb)) {
					t.Fatalf("seed %d step %d rdp: %v/%v vs %v/%v", seed, i, ta, oka, tb, okb)
				}
			case 2:
				tmpl := g.template()
				ta, oka := a.Inp(tmpl)
				tb, okb := b.Inp(tmpl)
				if oka != okb || (oka && !ta.Equal(tb)) {
					t.Fatalf("seed %d step %d inp: %v/%v vs %v/%v", seed, i, ta, oka, tb, okb)
				}
			case 3:
				tmpl, e := g.template(), g.entry()
				insA, mA, _ := a.Cas(tmpl, e)
				insB, mB, _ := b.Cas(tmpl, e)
				if insA != insB || !mA.Equal(mB) {
					t.Fatalf("seed %d step %d cas: %v/%v vs %v/%v", seed, i, insA, mA, insB, mB)
				}
			case 4:
				if g.rng.Intn(10) == 0 {
					snap := a.Snapshot()
					a.Restore(snap)
					b.Restore(snap)
				}
			}
			if a.Len() != b.Len() {
				t.Fatalf("seed %d step %d: len %d vs %d", seed, i, a.Len(), b.Len())
			}
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		if len(sa) != len(sb) {
			t.Fatalf("seed %d: final snapshots differ in length", seed)
		}
		for i := range sa {
			if !sa[i].Equal(sb[i]) {
				t.Fatalf("seed %d: final snapshot[%d] %v vs %v", seed, i, sa[i], sb[i])
			}
		}
	}
}

// TestIndexedStoreQueueCompaction hammers the out/in queue pattern on a
// single key — the worst case for tombstone accumulation — and checks
// the store neither leaks dead records without bound nor loses order.
func TestIndexedStoreQueueCompaction(t *testing.T) {
	s := NewIndexedStore()
	tmpl := tuple.T(tuple.Str("Q"), tuple.Any())
	for i := 0; i < 10000; i++ {
		s.Insert(tuple.T(tuple.Str("Q"), tuple.Int(int64(i))))
		got, ok := s.Find(tmpl, true)
		if !ok {
			t.Fatalf("iteration %d: queue empty", i)
		}
		if v, _ := got.Field(1).IntValue(); v != int64(i) {
			t.Fatalf("iteration %d: got %v, want FIFO order", i, got)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d, want 0", s.Len())
	}
	if len(s.order) > 2*compactMin {
		t.Errorf("order retains %d records after drain; compaction not keeping up", len(s.order))
	}
}

// TestIndexedStoreRestoresNonEntries checks a Restore carrying a
// non-entry tuple (possible only via a hostile snapshot) is stored
// verbatim and inert under matching, exactly like the slice store.
func TestIndexedStoreRestoresNonEntries(t *testing.T) {
	bad := tuple.T(tuple.Any(), tuple.Int(1))
	ref, idx := NewSliceStore(), NewIndexedStore()
	for _, st := range []Store{ref, idx} {
		st.Insert(bad)
		st.Insert(tuple.T(tuple.Str("ok")))
		if st.Len() != 2 {
			t.Fatalf("%s: len = %d, want 2 (verbatim storage)", st.Engine(), st.Len())
		}
		if _, ok := st.Find(tuple.T(tuple.Any(), tuple.Any()), false); ok {
			t.Errorf("%s: stored template matched a template", st.Engine())
		}
		if snap := st.Snapshot(); len(snap) != 2 || !snap[0].Equal(bad) {
			t.Errorf("%s: snapshot dropped or reordered non-entry", st.Engine())
		}
	}
}

// TestWaiterIndexLeakFree checks that served and cancelled waiters are
// removed from the arity index immediately (satellite: the old
// compaction could retain served slots indefinitely).
func TestWaiterIndexLeakFree(t *testing.T) {
	s := New()
	probe := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, list := range s.waiters {
			n += len(list)
		}
		return n
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := s.In(bgCtx(t), tuple.T(tuple.Str("W"), tuple.Any())); err != nil {
				t.Error(err)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		for s.Len() != 0 || probe() == 0 { // wait until the reader is parked
			time.Sleep(50 * time.Microsecond)
		}
		if err := s.Out(tuple.T(tuple.Str("W"), tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if n := probe(); n != 0 {
		t.Errorf("%d waiters retained after all were served", n)
	}
}
