package space

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peats/internal/tuple"
)

// seedFlag offsets every randomized parity sweep's seed range:
//
//	go test ./internal/space -seed 424242
//
// explores a fresh slice of the operation-sequence space, and a failure
// anywhere prints the exact seed (base + offset) to replay. The zero
// default keeps CI runs deterministic.
var seedFlag = flag.Int64("seed", 0, "base offset added to every randomized parity-suite seed")

// suiteSeeds logs and returns the seed range [lo+*seedFlag, hi+*seedFlag)
// a randomized suite will sweep.
func suiteSeeds(t *testing.T, lo, hi int64) (int64, int64) {
	t.Helper()
	lo, hi = lo+*seedFlag, hi+*seedFlag
	t.Logf("seeds [%d,%d) — replay any failure with -seed (offset %d)", lo, hi, *seedFlag)
	return lo, hi
}

// bgCtx returns a context that outlives any reasonable test step but
// cannot hang a broken run forever.
func bgCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// parityGen produces random tuples and templates over a small domain so
// that matches, misses, key collisions within an arity, and wildcard /
// formal first fields are all frequent. Everything derives from a
// seeded rand.Rand, so failures reproduce by seed.
type parityGen struct {
	rng *rand.Rand
}

func (g *parityGen) field(defined bool) tuple.Field {
	if !defined {
		if g.rng.Intn(2) == 0 {
			return tuple.Any()
		}
		return tuple.Formal(fmt.Sprintf("v%d", g.rng.Intn(3)))
	}
	switch g.rng.Intn(4) {
	case 0:
		return tuple.Int(int64(g.rng.Intn(4)))
	case 1:
		return tuple.Str(string(rune('A' + g.rng.Intn(3))))
	case 2:
		return tuple.Bool(g.rng.Intn(2) == 0)
	default:
		return tuple.Bytes([]byte{byte(g.rng.Intn(3))})
	}
}

// entry returns a fully defined tuple of arity 1..3.
func (g *parityGen) entry() tuple.Tuple {
	arity := 1 + g.rng.Intn(3)
	fields := make([]tuple.Field, arity)
	for i := range fields {
		fields[i] = g.field(true)
	}
	return tuple.T(fields...)
}

// template returns a tuple of arity 1..3 with each field independently
// defined or undefined — including templates with an undefined first
// field, which exercise the indexed store's arity-scan path and the
// sharded space's merge path.
func (g *parityGen) template() tuple.Tuple {
	arity := 1 + g.rng.Intn(3)
	fields := make([]tuple.Field, arity)
	for i := range fields {
		fields[i] = g.field(g.rng.Intn(3) != 0)
	}
	return tuple.T(fields...)
}

// TestStoreParity drives the slice store and the indexed store with the
// same randomized operation sequence — including InsertBatch and Count
// — and requires identical results at every step: same found/not-found,
// same tuple (so same match order), same sequence numbers, same counts,
// and identical snapshots. This is the determinism-parity property the
// SMR substrate depends on: either engine must realise the same
// deterministic state machine.
func TestStoreParity(t *testing.T) {
	lo, hi := suiteSeeds(t, 0, 20)
	for seed := lo; seed < hi; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &parityGen{rng: rand.New(rand.NewSource(seed))}
			ref := NewSliceStore()
			idx := NewIndexedStore()
			seq := uint64(0)

			check := func(step int, what string, a, b tuple.Tuple, as, bs uint64, aok, bok bool) {
				t.Helper()
				if aok != bok {
					t.Fatalf("step %d %s: slice ok=%v indexed ok=%v", step, what, aok, bok)
				}
				if aok && (!a.Equal(b) || as != bs) {
					t.Fatalf("step %d %s: slice %v@%d indexed %v@%d (match order diverged)",
						step, what, a, as, b, bs)
				}
			}
			checkSnapshots := func(step int) {
				t.Helper()
				sa, sb := ref.Snapshot(), idx.Snapshot()
				if len(sa) != len(sb) {
					t.Fatalf("step %d: snapshot lens %d vs %d", step, len(sa), len(sb))
				}
				for i := range sa {
					if sa[i].Seq != sb[i].Seq || !sa[i].T.Equal(sb[i].T) {
						t.Fatalf("step %d: snapshot[%d] %v vs %v", step, i, sa[i], sb[i])
					}
				}
			}

			const steps = 3000
			for i := 0; i < steps; i++ {
				switch op := g.rng.Intn(12); {
				case op < 3: // out
					e := g.entry()
					seq++
					ref.Insert(e, seq)
					idx.Insert(e, seq)
				case op < 5: // rdp
					tmpl := g.template()
					a, as, aok := ref.Find(tmpl, false)
					b, bs, bok := idx.Find(tmpl, false)
					check(i, "rdp", a, b, as, bs, aok, bok)
				case op < 8: // inp
					tmpl := g.template()
					a, as, aok := ref.Find(tmpl, true)
					b, bs, bok := idx.Find(tmpl, true)
					check(i, "inp", a, b, as, bs, aok, bok)
				case op < 9: // cas
					tmpl, e := g.template(), g.entry()
					a, as, aok := ref.Find(tmpl, false)
					b, bs, bok := idx.Find(tmpl, false)
					check(i, "cas-read", a, b, as, bs, aok, bok)
					if !aok {
						seq++
						ref.Insert(e, seq)
						idx.Insert(e, seq)
					}
				case op < 10: // insertbatch: a burst of entries in one call
					n := 1 + g.rng.Intn(5)
					batch := make([]SeqTuple, n)
					for j := range batch {
						seq++
						batch[j] = SeqTuple{Seq: seq, T: g.entry()}
					}
					ref.InsertBatch(batch)
					idx.InsertBatch(batch)
				case op < 11: // count
					tmpl := g.template()
					if ref.Count(tmpl) != idx.Count(tmpl) {
						t.Fatalf("step %d: counts diverge (%d vs %d)",
							i, ref.Count(tmpl), idx.Count(tmpl))
					}
				default: // rdall, occasionally snapshot/restore
					tmpl := g.template()
					as, bs := ref.FindAll(tmpl), idx.FindAll(tmpl)
					if len(as) != len(bs) {
						t.Fatalf("step %d rdall: %d vs %d matches", i, len(as), len(bs))
					}
					for j := range as {
						if as[j].Seq != bs[j].Seq || !as[j].T.Equal(bs[j].T) {
							t.Fatalf("step %d rdall[%d]: %v vs %v", i, j, as[j], bs[j])
						}
					}
					if g.rng.Intn(20) == 0 {
						// Snapshot one engine, InsertBatch-restore into both:
						// state must converge regardless of which engine
						// sourced it.
						snap := idx.Snapshot()
						ref.Reset()
						idx.Reset()
						restamped := make([]SeqTuple, len(snap))
						for j, st := range snap {
							seq++
							restamped[j] = SeqTuple{Seq: seq, T: st.T}
						}
						ref.InsertBatch(restamped)
						idx.InsertBatch(restamped)
					}
				}
				if ref.Len() != idx.Len() {
					t.Fatalf("step %d: len %d vs %d", i, ref.Len(), idx.Len())
				}
			}
			checkSnapshots(steps)
		})
	}
}

// shardCounts are the shard configurations the space-level parity
// suites sweep; shards=1 is required to match the unsharded engine
// exactly, the larger counts pin the merge-by-sequence paths.
var shardCounts = []int{1, 4, 16}

// driveSpacePair runs the same randomized operation sequence through
// spaces a and b and fails on the first observable divergence. It is
// the end-to-end determinism-parity property: any two spaces —
// different engines, different shard counts — must realise the same
// deterministic state machine.
func driveSpacePair(t *testing.T, seed int64, steps int, a, b *Space) {
	t.Helper()
	g := &parityGen{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < steps; i++ {
		switch g.rng.Intn(8) {
		case 0, 1:
			e := g.entry()
			if err1, err2 := a.Out(e), b.Out(e); (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d step %d: out errs diverge", seed, i)
			}
		case 2:
			tmpl := g.template()
			ta, oka := a.Rdp(tmpl)
			tb, okb := b.Rdp(tmpl)
			if oka != okb || (oka && !ta.Equal(tb)) {
				t.Fatalf("seed %d step %d rdp: %v/%v vs %v/%v", seed, i, ta, oka, tb, okb)
			}
		case 3:
			tmpl := g.template()
			ta, oka := a.Inp(tmpl)
			tb, okb := b.Inp(tmpl)
			if oka != okb || (oka && !ta.Equal(tb)) {
				t.Fatalf("seed %d step %d inp: %v/%v vs %v/%v", seed, i, ta, oka, tb, okb)
			}
		case 4:
			tmpl, e := g.template(), g.entry()
			insA, mA, _ := a.Cas(tmpl, e)
			insB, mB, _ := b.Cas(tmpl, e)
			if insA != insB || !mA.Equal(mB) {
				t.Fatalf("seed %d step %d cas: %v/%v vs %v/%v", seed, i, insA, mA, insB, mB)
			}
		case 5:
			tmpl := g.template()
			la, lb := a.RdAll(tmpl), b.RdAll(tmpl)
			if len(la) != len(lb) {
				t.Fatalf("seed %d step %d rdall: %d vs %d matches", seed, i, len(la), len(lb))
			}
			for j := range la {
				if !la[j].Equal(lb[j]) {
					t.Fatalf("seed %d step %d rdall[%d]: %v vs %v", seed, i, j, la[j], lb[j])
				}
			}
		case 6:
			tmpl := g.template()
			if ca, cb := a.CountMatching(tmpl), b.CountMatching(tmpl); ca != cb {
				t.Fatalf("seed %d step %d count: %d vs %d", seed, i, ca, cb)
			}
		case 7:
			if g.rng.Intn(10) == 0 {
				snap := a.Snapshot()
				a.Restore(snap)
				b.Restore(snap)
			} else {
				// ForEach iteration order must agree too.
				var fa, fb []tuple.Tuple
				a.ForEach(func(t tuple.Tuple) bool { fa = append(fa, t); return len(fa) < 10 })
				b.ForEach(func(t tuple.Tuple) bool { fb = append(fb, t); return len(fb) < 10 })
				if len(fa) != len(fb) {
					t.Fatalf("seed %d step %d foreach: %d vs %d visits", seed, i, len(fa), len(fb))
				}
				for j := range fa {
					if !fa[j].Equal(fb[j]) {
						t.Fatalf("seed %d step %d foreach[%d]: %v vs %v", seed, i, j, fa[j], fb[j])
					}
				}
			}
		}
		if a.Len() != b.Len() {
			t.Fatalf("seed %d step %d: len %d vs %d", seed, i, a.Len(), b.Len())
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("seed %d: final snapshots differ in length", seed)
	}
	for i := range sa {
		if !sa[i].Equal(sb[i]) {
			t.Fatalf("seed %d: final snapshot[%d] %v vs %v", seed, i, sa[i], sb[i])
		}
	}
}

// TestSpaceParityAcrossEngines runs the same operation sequence through
// two full Spaces (waiter plumbing included) built on different engines
// and compares every result — the end-to-end version of TestStoreParity.
func TestSpaceParityAcrossEngines(t *testing.T) {
	lo, hi := suiteSeeds(t, 100, 110)
	for seed := lo; seed < hi; seed++ {
		driveSpacePair(t, seed, 1500,
			NewWithStore(NewSliceStore()),
			NewWithStore(NewIndexedStore()))
	}
}

// TestSpaceParityAcrossShardCounts holds a sharded space — at every
// swept shard count and on both engines — observationally equivalent
// to the single-shard slice-store reference: the determinism contract
// the SMR substrate needs from the sharded core.
func TestSpaceParityAcrossShardCounts(t *testing.T) {
	for _, engine := range Engines() {
		for _, n := range shardCounts {
			engine, n := engine, n
			t.Run(fmt.Sprintf("%s/shards=%d", engine, n), func(t *testing.T) {
				lo, hi := suiteSeeds(t, 200, 206)
				for seed := lo; seed < hi; seed++ {
					ref := NewWithStore(NewSliceStore())
					sharded, err := NewSharded(engine, n)
					if err != nil {
						t.Fatal(err)
					}
					driveSpacePair(t, seed, 1200, ref, sharded)
				}
			})
		}
	}
}

// TestSingleShardMatchesUnsharded pins shards=1 to the exact behaviour
// of the unsharded constructor: same engine, same routing (everything
// on shard 0), same results — so turning the shard knob down to 1 is
// bit-identical to never having it.
func TestSingleShardMatchesUnsharded(t *testing.T) {
	lo, hi := suiteSeeds(t, 300, 306)
	for seed := lo; seed < hi; seed++ {
		unsharded := NewWithStore(NewIndexedStore())
		single, err := NewSharded(EngineIndexed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if single.Shards() != 1 || unsharded.Shards() != 1 {
			t.Fatalf("shard counts %d/%d, want 1/1", single.Shards(), unsharded.Shards())
		}
		driveSpacePair(t, seed, 1500, unsharded, single)
	}
}

// TestShardRoutingConsistency checks the routing invariant the sharded
// design rests on: a keyed template routes to the same shard as every
// entry it can match.
func TestShardRoutingConsistency(t *testing.T) {
	s, err := NewSharded(EngineIndexed, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := &parityGen{rng: rand.New(rand.NewSource(42))}
	for i := 0; i < 2000; i++ {
		e := g.entry()
		tmpl := g.template()
		if !tuple.Matches(e, tmpl) {
			continue
		}
		if idx, keyed := s.TemplateShard(tmpl); keyed && idx != s.EntryShard(e) {
			t.Fatalf("entry %v routes to shard %d but matching keyed template %v to %d",
				e, s.EntryShard(e), tmpl, idx)
		}
	}
}

// TestIndexedStoreQueueCompaction hammers the out/in queue pattern on a
// single key — the worst case for tombstone accumulation — and checks
// the store neither leaks dead records without bound nor loses order.
func TestIndexedStoreQueueCompaction(t *testing.T) {
	s := NewIndexedStore()
	tmpl := tuple.T(tuple.Str("Q"), tuple.Any())
	for i := 0; i < 10000; i++ {
		s.Insert(tuple.T(tuple.Str("Q"), tuple.Int(int64(i))), uint64(i+1))
		got, _, ok := s.Find(tmpl, true)
		if !ok {
			t.Fatalf("iteration %d: queue empty", i)
		}
		if v, _ := got.Field(1).IntValue(); v != int64(i) {
			t.Fatalf("iteration %d: got %v, want FIFO order", i, got)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d, want 0", s.Len())
	}
	if len(s.order) > 2*compactMin {
		t.Errorf("order retains %d records after drain; compaction not keeping up", len(s.order))
	}
}

// TestIndexedStoreRestoresNonEntries checks a Restore carrying a
// non-entry tuple (possible only via a hostile snapshot) is stored
// verbatim and inert under matching, exactly like the slice store.
func TestIndexedStoreRestoresNonEntries(t *testing.T) {
	bad := tuple.T(tuple.Any(), tuple.Int(1))
	ref, idx := NewSliceStore(), NewIndexedStore()
	for _, st := range []Store{ref, idx} {
		st.Insert(bad, 1)
		st.Insert(tuple.T(tuple.Str("ok")), 2)
		if st.Len() != 2 {
			t.Fatalf("%s: len = %d, want 2 (verbatim storage)", st.Engine(), st.Len())
		}
		if _, _, ok := st.Find(tuple.T(tuple.Any(), tuple.Any()), false); ok {
			t.Errorf("%s: stored template matched a template", st.Engine())
		}
		if snap := st.Snapshot(); len(snap) != 2 || !snap[0].T.Equal(bad) {
			t.Errorf("%s: snapshot dropped or reordered non-entry", st.Engine())
		}
	}
}

// waiterCount sums parked waiter registrations across every shard.
func waiterCount(s *Space) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, list := range sh.waiters {
			n += len(list)
		}
		sh.mu.Unlock()
	}
	return n
}

// TestWaiterIndexLeakFree checks that served and cancelled waiters are
// removed from the shard indexes promptly (a served multi-shard waiter
// deregisters its remaining registrations right after delivery).
func TestWaiterIndexLeakFree(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, err := NewSharded(EngineIndexed, shards)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 50; i++ {
					// Alternate keyed and wildcard-first templates so both
					// single-shard and all-shard registrations are exercised.
					tmpl := tuple.T(tuple.Str("W"), tuple.Any())
					if i%2 == 1 {
						tmpl = tuple.T(tuple.Any(), tuple.Any())
					}
					if _, err := s.In(bgCtx(t), tmpl); err != nil {
						t.Error(err)
					}
				}
			}()
			for i := 0; i < 50; i++ {
				for s.Len() != 0 || waiterCount(s) == 0 { // wait until the reader is parked
					time.Sleep(50 * time.Microsecond)
				}
				if err := s.Out(tuple.T(tuple.Str("W"), tuple.Int(int64(i)))); err != nil {
					t.Fatal(err)
				}
			}
			<-done
			deadline := time.Now().Add(2 * time.Second)
			for waiterCount(s) != 0 && time.Now().Before(deadline) {
				time.Sleep(50 * time.Microsecond)
			}
			if n := waiterCount(s); n != 0 {
				t.Errorf("%d waiters retained after all were served", n)
			}
		})
	}
}
