// The durable engine's parity suite lives in the external test package
// so it can import package durable (which imports space); it drives
// the same randomized operation sequences as the in-memory engines'
// suites, through the exported test hook.
package space_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"peats/internal/durable"
	"peats/internal/space"
)

// newDurableSpace opens a DB under dir and builds an n-shard space on
// it, installing whatever the directory holds.
func newDurableSpace(t *testing.T, dir string, n int, opts durable.Options) (*space.Space, *durable.DB) {
	t.Helper()
	opts.Dir = dir
	db, err := durable.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := space.NewShardedFactory(n, func(int) (space.Store, error) { return db.NewStore(), nil })
	if err != nil {
		t.Fatal(err)
	}
	db.StartLoad()
	if err := sp.Install(db.Recovered().Tuples); err != nil {
		t.Fatal(err)
	}
	db.EndLoad()
	return sp, db
}

// TestSpaceParityDurableEngine holds the durable engine — against a
// temp data directory, with segment rotation and auto-compaction live
// mid-run — observationally identical to the single-shard slice-store
// reference at every swept shard count, exactly like the in-memory
// engines. After each run the directory is reopened and the recovered
// state must equal the reference's final snapshot: the write-ahead log
// is part of the determinism contract, not just a best-effort backup.
func TestSpaceParityDurableEngine(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			for seed := int64(400); seed < 404; seed++ {
				ref := space.NewWithStore(space.NewSliceStore())
				dir := filepath.Join(t.TempDir(), fmt.Sprintf("seed%d", seed))
				// Small segments and an aggressive auto-compaction
				// threshold so rotation and compaction fire during the
				// run, under SyncNever to keep the suite fast.
				sp, db := newDurableSpace(t, dir, n, durable.Options{
					Sync:             durable.SyncNever,
					SegmentBytes:     4 << 10,
					AutoCompactBytes: 16 << 10,
				})
				space.DriveSpacePair(t, seed, 800, ref, sp)
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				reopened, db2 := newDurableSpace(t, dir, n, durable.Options{Sync: durable.SyncNever})
				want, got := ref.Snapshot(), reopened.Snapshot()
				if len(want) != len(got) {
					t.Fatalf("seed %d: recovered %d tuples, reference holds %d", seed, len(got), len(want))
				}
				for i := range want {
					if !want[i].Equal(got[i]) {
						t.Fatalf("seed %d: recovered[%d] = %v, want %v", seed, i, got[i], want[i])
					}
				}
				db2.Close()
			}
		})
	}
}
