package space

import (
	"fmt"
	"math/rand"
	"testing"

	"peats/internal/tuple"
)

// ovView opens a read-only overlay-stacked view, runs fn, and discards
// the staged effects — the way assertions peek at the tentative state.
func ovView(s *Space, ov *Overlay, fn func(st *Staged)) {
	s.DoRead(func(tx *Tx) { fn(tx.StageOn(ov)) })
}

// tentTx runs one transaction tentatively against the overlay's open
// unit: ops get applied through fn, and the effects fold on success.
func tentTx(s *Space, ov *Overlay, fn func(st *Staged) bool) {
	s.DoRead(func(tx *Tx) {
		st := tx.StageOn(ov)
		if fn(st) {
			st.CommitTentative()
		} else {
			st.AbortTentative()
		}
	})
}

func tv(k string, v int64) tuple.Tuple { return tuple.T(tuple.Str(k), tuple.Int(v)) }
func tmplAny(k string) tuple.Tuple     { return tuple.T(tuple.Str(k), tuple.Any()) }

// TestOverlayCrossUnitConsumption pins the stacking semantics: a later
// tentative unit consumes an earlier unit's insert; the view hides it,
// promotion of the producer materialises it hidden, and promotion of
// the consumer removes it from the stores.
func TestOverlayCrossUnitConsumption(t *testing.T) {
	s := New()
	if err := s.Out(tv("base", 0)); err != nil {
		t.Fatal(err)
	}
	ov := s.NewOverlay()

	// Unit 1 inserts X.
	ov.BeginUnit(1)
	tentTx(s, ov, func(st *Staged) bool { return st.Out(tv("X", 1)) == nil })
	ov.EndUnit()

	// Unit 2 consumes X (an overlay insert, not a stored tuple).
	ov.BeginUnit(2)
	tentTx(s, ov, func(st *Staged) bool {
		got, ok := st.Inp(tmplAny("X"))
		if !ok {
			t.Error("unit 2 missed the tentative insert")
			return false
		}
		if v, _ := got.Field(1).IntValue(); v != 1 {
			t.Errorf("unit 2 consumed %v", got)
		}
		return true
	})
	ov.EndUnit()

	// Tentative view: X is gone, base remains.
	ovView(s, ov, func(st *Staged) {
		if _, ok := st.Rdp(tmplAny("X")); ok {
			t.Error("consumed tentative insert still visible")
		}
		if st.Len() != 1 {
			t.Errorf("tentative Len = %d, want 1", st.Len())
		}
	})

	// Promote unit 1: X reaches the stores but stays hidden (its
	// consumer is still tentative), and the stores must show it.
	eff := ov.PromoteBottom()
	if len(eff) != 1 || len(eff[0].Inserted) != 1 {
		t.Fatalf("unit 1 effects = %+v", eff)
	}
	if n := s.CountMatching(tmplAny("X")); n != 1 {
		t.Errorf("store after producer promotion: %d X, want 1", n)
	}
	ovView(s, ov, func(st *Staged) {
		if _, ok := st.Rdp(tmplAny("X")); ok {
			t.Error("promoted-but-consumed tuple leaked into the view")
		}
		if n := st.CountMatching(tmplAny("X")); n != 0 {
			t.Errorf("tentative CountMatching(X) = %d, want 0", n)
		}
	})

	// Promote unit 2: the removal lands.
	eff = ov.PromoteBottom()
	if len(eff) != 1 || len(eff[0].Removed) != 1 {
		t.Fatalf("unit 2 effects = %+v", eff)
	}
	if n := s.CountMatching(tmplAny("X")); n != 0 {
		t.Errorf("store after consumer promotion: %d X, want 0", n)
	}
	if !ov.Empty() {
		t.Error("overlay not empty after full promotion")
	}
}

// TestOverlayRollbackRestoresVisibility pins the rollback semantics the
// view-change path relies on: dropping tentative units un-hides the
// stored tuples they consumed, un-consumes surviving units' inserts,
// and — when the producer already promoted — returns the tuple to
// committed visibility, all without touching the stores.
func TestOverlayRollbackRestoresVisibility(t *testing.T) {
	s := New()
	if err := s.Out(tv("K", 7)); err != nil {
		t.Fatal(err)
	}
	ov := s.NewOverlay()

	// Unit 1: insert A. Unit 2: consume the stored K and unit 1's A.
	ov.BeginUnit(1)
	tentTx(s, ov, func(st *Staged) bool { return st.Out(tv("A", 1)) == nil })
	ov.EndUnit()
	ov.BeginUnit(2)
	tentTx(s, ov, func(st *Staged) bool {
		if _, ok := st.Inp(tmplAny("K")); !ok {
			return false
		}
		_, ok := st.Inp(tmplAny("A"))
		return ok
	})
	ov.EndUnit()

	// Drop unit 2 only: K and A become visible again.
	ov.Rollback(1)
	ovView(s, ov, func(st *Staged) {
		if _, ok := st.Rdp(tmplAny("K")); !ok {
			t.Error("rolled-back consumption left K hidden")
		}
		if _, ok := st.Rdp(tmplAny("A")); !ok {
			t.Error("rolled-back consumption left unit 1's insert consumed")
		}
	})
	if s.Len() != 1 {
		t.Errorf("rollback touched the stores: Len = %d, want 1", s.Len())
	}

	// Re-run unit 2, promote unit 1, then drop unit 2 after its
	// producer promoted: A must return to committed visibility.
	ov.BeginUnit(2)
	tentTx(s, ov, func(st *Staged) bool {
		_, ok := st.Inp(tmplAny("A"))
		return ok
	})
	ov.EndUnit()
	ov.PromoteBottom() // unit 1: A stored, hidden (consumer tentative)
	ovView(s, ov, func(st *Staged) {
		if _, ok := st.Rdp(tmplAny("A")); ok {
			t.Error("A visible while its consumer is tentative")
		}
	})
	ov.Rollback(0)
	ovView(s, ov, func(st *Staged) {
		if _, ok := st.Rdp(tmplAny("A")); !ok {
			t.Error("A not restored to visibility after consumer rollback")
		}
	})
	if n := s.CountMatching(tmplAny("A")); n != 1 {
		t.Errorf("store lost the promoted A: count = %d", n)
	}
	if !ov.Empty() {
		t.Error("overlay not empty after Rollback(0) with everything promoted")
	}
}

// TestOverlayViewOrdering pins the match order of the stacked view:
// stored tuples (by sequence), then overlay inserts (unit then staging
// order), then the transaction's own staged inserts.
func TestOverlayViewOrdering(t *testing.T) {
	s := New()
	s.Out(tv("Q", 0))
	ov := s.NewOverlay()
	ov.BeginUnit(1)
	tentTx(s, ov, func(st *Staged) bool { return st.Out(tv("Q", 1)) == nil })
	ov.EndUnit()
	ov.BeginUnit(2)
	tentTx(s, ov, func(st *Staged) bool { return st.Out(tv("Q", 2)) == nil })
	ov.EndUnit()

	ovView(s, ov, func(st *Staged) {
		if err := st.Out(tv("Q", 3)); err != nil {
			t.Fatal(err)
		}
		all := st.RdAll(tmplAny("Q"))
		if len(all) != 4 {
			t.Fatalf("RdAll = %d tuples, want 4", len(all))
		}
		for i, tu := range all {
			if v, _ := tu.Field(1).IntValue(); v != int64(i) {
				t.Errorf("position %d holds %v (order broken)", i, tu)
			}
		}
		var seen []int64
		st.ForEach(func(tu tuple.Tuple) bool {
			v, _ := tu.Field(1).IntValue()
			seen = append(seen, v)
			return true
		})
		if fmt.Sprint(seen) != "[0 1 2 3]" {
			t.Errorf("ForEach order = %v", seen)
		}
		// Consumption follows the same order.
		for want := int64(0); want < 4; want++ {
			got, ok := st.Inp(tmplAny("Q"))
			if !ok {
				t.Fatalf("Inp #%d missed", want)
			}
			if v, _ := got.Field(1).IntValue(); v != want {
				t.Errorf("Inp #%d consumed %v", want, got)
			}
		}
	})
}

// ovOp is one randomized operation of the equivalence harness.
type ovOp struct {
	kind        int // 0 out, 1 inp, 2 cas, 3 rdp, 4 rdall
	tmpl, entry tuple.Tuple
}

// applyOvOps executes ops against a staged view, returning a result
// transcript and ok=false when an inp miss aborts the transaction
// (multi-op submission semantics).
func applyOvOps(st *Staged, ops []ovOp) (string, bool) {
	out := ""
	for _, op := range ops {
		switch op.kind {
		case 0:
			st.Out(op.entry)
			out += "out;"
		case 1:
			got, ok := st.Inp(op.tmpl)
			out += fmt.Sprintf("inp(%v,%v);", got, ok)
			if !ok && len(ops) > 1 {
				return out, false
			}
		case 2:
			ins, m, _ := st.Cas(op.tmpl, op.entry)
			out += fmt.Sprintf("cas(%v,%v);", ins, m)
		case 3:
			got, ok := st.Rdp(op.tmpl)
			out += fmt.Sprintf("rdp(%v,%v);", got, ok)
		case 4:
			out += fmt.Sprintf("rdall(%v);n=%d;len=%d;", st.RdAll(op.tmpl), st.CountMatching(op.tmpl), st.Len())
		}
	}
	return out, true
}

// TestOverlayPromotionEquivalentToDirectExecution is the randomized
// acceptance property of tentative execution: a stream of units
// executed into the overlay — with promotions and rollbacks interleaved
// at random — yields, unit by promoted unit, byte-identical result
// transcripts, journal effects and final contents to a twin space that
// executes each unit directly at its commit point. Exercised across
// engines and shard counts, since replicas may be configured unevenly.
func TestOverlayPromotionEquivalentToDirectExecution(t *testing.T) {
	type pendingUnit struct {
		txs     [][]ovOp // op lists per transaction
		results []string // tentative transcripts, aborts included
		ok      []bool
	}
	for _, eng := range Engines() {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/%d", eng, shards), func(t *testing.T) {
				tent, err := NewSharded(eng, shards)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := NewSharded(eng, shards)
				if err != nil {
					t.Fatal(err)
				}
				ov := tent.NewOverlay()
				rng := rand.New(rand.NewSource(42))
				entry := func() tuple.Tuple {
					return tv(string(rune('A'+rng.Intn(3))), int64(rng.Intn(4)))
				}
				tmpl := func() tuple.Tuple {
					if rng.Intn(3) == 0 {
						return tuple.T(tuple.Any(), tuple.Int(int64(rng.Intn(4))))
					}
					return entry()
				}
				randTx := func() []ovOp {
					n := 1 + rng.Intn(4)
					ops := make([]ovOp, n)
					for i := range ops {
						ops[i] = ovOp{kind: rng.Intn(5), tmpl: tmpl(), entry: entry()}
					}
					return ops
				}

				var pending []pendingUnit
				nextTag := uint64(1)
				for step := 0; step < 600; step++ {
					switch r := rng.Intn(10); {
					case r < 6: // new tentative unit
						u := pendingUnit{txs: make([][]ovOp, 1+rng.Intn(3))}
						ov.BeginUnit(nextTag)
						nextTag++
						for i := range u.txs {
							u.txs[i] = randTx()
							tent.DoRead(func(tx *Tx) {
								st := tx.StageOn(ov)
								res, ok := applyOvOps(st, u.txs[i])
								u.results = append(u.results, res)
								u.ok = append(u.ok, ok)
								if ok {
									st.CommitTentative()
								} else {
									st.AbortTentative()
								}
							})
						}
						ov.EndUnit()
						pending = append(pending, u)
					case r < 9: // promote the bottom unit; twin executes directly
						if len(pending) == 0 {
							continue
						}
						u := pending[0]
						pending = pending[1:]
						eff := ov.PromoteBottom()
						effIdx := 0
						for i, ops := range u.txs {
							var dres string
							var dok bool
							var drem []SeqTuple
							var dins []tuple.Tuple
							direct.Do(func(tx *Tx) {
								st := tx.Stage()
								dres, dok = applyOvOps(st, ops)
								if dok {
									r, ins := st.Effects()
									drem, dins = append([]SeqTuple(nil), r...), append([]tuple.Tuple(nil), ins...)
									st.Commit()
								}
							})
							if dres != u.results[i] || dok != u.ok[i] {
								t.Fatalf("step %d tx %d: tentative %q/%v, direct %q/%v",
									step, i, u.results[i], u.ok[i], dres, dok)
							}
							if !dok {
								continue // aborted: no effect group was folded
							}
							e := eff[effIdx]
							effIdx++
							if fmt.Sprint(stripSeqs(drem)) != fmt.Sprint(e.Removed) ||
								fmt.Sprint(dins) != fmt.Sprint(e.Inserted) {
								t.Fatalf("step %d tx %d: journal effects diverge:\n tentative -%v +%v\n direct    -%v +%v",
									step, i, e.Removed, e.Inserted, stripSeqs(drem), dins)
							}
						}
						if effIdx != len(eff) {
							t.Fatalf("step %d: %d effect groups, %d committed txs", step, len(eff), effIdx)
						}
					default: // drop a tentative suffix (the view-change path)
						if len(pending) == 0 {
							continue
						}
						keep := rng.Intn(len(pending) + 1)
						ov.Rollback(keep)
						pending = pending[:keep]
					}
				}
				ov.Rollback(0)
				pending = nil
				gotSnap, wantSnap := tent.Snapshot(), direct.Snapshot()
				if fmt.Sprint(gotSnap) != fmt.Sprint(wantSnap) {
					t.Fatalf("final contents diverge:\n tentative %v\n direct    %v", gotSnap, wantSnap)
				}
				if !ov.Empty() {
					t.Error("overlay not empty at the end")
				}
			})
		}
	}
}
