package space

import (
	"fmt"

	"peats/internal/tuple"
)

// Engine names a tuple-store implementation selectable at space
// construction time.
type Engine string

const (
	// EngineSlice is the reference store: a flat slice scanned linearly.
	// It is the executable specification of the match semantics and the
	// baseline the indexed engine is property-tested against.
	EngineSlice Engine = "slice"
	// EngineIndexed is the production store: tuples bucketed by arity and
	// hashed on their first field, with insertion order preserved through
	// monotonic sequence numbers.
	EngineIndexed Engine = "indexed"
)

// DefaultEngine is the engine used when none is specified.
const DefaultEngine = EngineIndexed

// Store is the storage engine behind a Space: an ordered multiset of
// entries with template matching. A Store is not safe for concurrent
// use; the owning Space serialises access under its mutex.
//
// Determinism contract: the space is the shared object of a BFT
// state-machine-replication substrate (paper §4), so every method must
// be a pure function of the sequence of Insert/Find(remove)/Reset calls
// applied so far. In particular, Find and FindAll must select matches
// in insertion order, and ForEach and Snapshot must iterate in
// insertion order — regardless of how the engine organises tuples
// internally. Two stores (of any engine) fed the same call sequence
// must return identical results.
type Store interface {
	// Engine identifies the implementation, for reporting.
	Engine() Engine
	// Insert adds entry t after every tuple already stored.
	Insert(t tuple.Tuple)
	// InsertBatch adds every tuple of ts in order, equivalent to
	// calling Insert on each but letting the engine amortize index
	// building — the hot path of Restore and checkpoint installs,
	// where whole snapshots arrive at once.
	InsertBatch(ts []tuple.Tuple)
	// Find returns the first tuple in insertion order matching tmpl,
	// removing it when remove is true.
	Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, bool)
	// FindAll returns every stored tuple matching tmpl, in insertion
	// order (nil when none match).
	FindAll(tmpl tuple.Tuple) []tuple.Tuple
	// Count returns the number of stored tuples matching tmpl.
	Count(tmpl tuple.Tuple) int
	// Len returns the number of stored tuples.
	Len() int
	// ForEach visits stored tuples in insertion order until fn returns
	// false.
	ForEach(fn func(tuple.Tuple) bool)
	// Snapshot returns a copy of the contents in insertion order.
	Snapshot() []tuple.Tuple
	// Reset discards every stored tuple.
	Reset()
}

// NewStore returns a fresh store for the named engine. The empty engine
// selects DefaultEngine.
func NewStore(e Engine) (Store, error) {
	switch e {
	case "":
		return NewStore(DefaultEngine)
	case EngineSlice:
		return NewSliceStore(), nil
	case EngineIndexed:
		return NewIndexedStore(), nil
	default:
		return nil, fmt.Errorf("space: unknown store engine %q", e)
	}
}

// Engines lists the selectable engines.
func Engines() []Engine { return []Engine{EngineSlice, EngineIndexed} }
