package space

import (
	"fmt"

	"peats/internal/tuple"
)

// Engine names a tuple-store implementation selectable at space
// construction time.
type Engine string

const (
	// EngineSlice is the reference store: a flat slice scanned linearly.
	// It is the executable specification of the match semantics and the
	// baseline the indexed engine is property-tested against.
	EngineSlice Engine = "slice"
	// EngineIndexed is the production store: tuples bucketed by arity and
	// hashed on their first field, with insertion order preserved through
	// the space-assigned sequence numbers.
	EngineIndexed Engine = "indexed"
	// EngineDurable is the persistent store: an indexed store wrapped by
	// the write-ahead log of package durable, which persists every
	// mutation and recovers the contents across process crashes. It
	// needs a data directory, so it cannot be built by NewStore — open a
	// durable.DB and construct the space with NewShardedFactory (or let
	// peats.WithDataDir / peats-server -store durable do both).
	EngineDurable Engine = "durable"
)

// DefaultEngine is the engine used when none is specified.
const DefaultEngine = EngineIndexed

// SeqTuple pairs a stored tuple with the space-wide insertion sequence
// number it was stamped with. The sequence number totally orders
// insertions across every shard of a space, so per-shard results merge
// back into one insertion order.
type SeqTuple struct {
	Seq uint64
	T   tuple.Tuple
}

// Store is the storage engine behind one shard of a Space: an ordered
// multiset of entries with template matching. A Store is not safe for
// concurrent mutation; the owning shard serialises writers under its
// lock.
//
// Determinism contract: the space is the shared object of a BFT
// state-machine-replication substrate (paper §4), so every method must
// be a pure function of the sequence of Insert/Find(remove)/Reset calls
// applied so far. Insertion order is the order of the externally
// assigned sequence numbers (strictly increasing per store); Find and
// FindAll must select matches in that order, and ForEach and Snapshot
// must iterate in it — regardless of how the engine organises tuples
// internally. Two stores (of any engine) fed the same call sequence
// must return identical results.
//
// Concurrency contract: Find with remove=false, FindAll, Count, Len,
// ForEach and Snapshot must not mutate any internal state, not even
// for caching or compaction — the sharded space runs them under shared
// (read) locks, concurrently with each other.
type Store interface {
	// Engine identifies the implementation, for reporting.
	Engine() Engine
	// Insert adds entry t with the given sequence number, which is
	// strictly greater than every sequence number already stored.
	Insert(t tuple.Tuple, seq uint64)
	// InsertBatch adds every tuple of ts in order, equivalent to
	// calling Insert on each but letting the engine amortize index
	// building — the hot path of Restore and checkpoint installs,
	// where whole snapshots arrive at once. Sequence numbers in ts are
	// strictly increasing.
	InsertBatch(ts []SeqTuple)
	// Find returns the first tuple in insertion order matching tmpl and
	// its sequence number, removing it when remove is true. With
	// remove=false the call must not mutate the store.
	Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, uint64, bool)
	// FindAll returns every stored tuple matching tmpl, in insertion
	// order with sequence numbers (nil when none match).
	FindAll(tmpl tuple.Tuple) []SeqTuple
	// Count returns the number of stored tuples matching tmpl.
	Count(tmpl tuple.Tuple) int
	// Len returns the number of stored tuples.
	Len() int
	// ForEach visits stored tuples in insertion order until fn returns
	// false.
	ForEach(fn func(t tuple.Tuple, seq uint64) bool)
	// Iter returns a cursor over the stored tuples in insertion order:
	// each call yields the next tuple, with ok=false at the end. The
	// cursor must not mutate the store (it may run under a shared
	// lock) and is only valid while the store is unmodified — the
	// sharded space uses one cursor per shard to merge iteration by
	// sequence number without materialising the contents.
	Iter() func() (SeqTuple, bool)
	// Snapshot returns a copy of the contents in insertion order.
	Snapshot() []SeqTuple
	// Reset discards every stored tuple.
	Reset()
}

// NewStore returns a fresh store for the named engine. The empty engine
// selects DefaultEngine.
func NewStore(e Engine) (Store, error) {
	switch e {
	case "":
		return NewStore(DefaultEngine)
	case EngineSlice:
		return NewSliceStore(), nil
	case EngineIndexed:
		return NewIndexedStore(), nil
	case EngineDurable:
		return nil, fmt.Errorf("space: the durable engine needs a data directory (open a durable.DB and use NewShardedFactory)")
	default:
		return nil, fmt.Errorf("space: unknown store engine %q", e)
	}
}

// Engines lists the self-contained in-memory engines NewStore can
// build. The durable engine is deliberately absent: it exists only
// bound to a data directory.
func Engines() []Engine { return []Engine{EngineSlice, EngineIndexed} }
