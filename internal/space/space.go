// Package space implements a linearizable augmented tuple space.
//
// The space provides the three LINDA operations out (write), rd
// (non-destructive read) and in (destructive read), their non-blocking
// variants rdp and inp, and the conditional atomic swap cas(t̄, t) of
// Segall and Bakken-Schlichting: atomically, "if reading template t̄
// fails, insert entry t". cas gives the space consensus number n, which
// makes it a universal object.
//
// All operations take effect atomically under a single mutex, which
// directly yields linearizability: the linearization point of every
// operation is its critical section. Matching scans tuples in insertion
// order, so the space is a deterministic state machine — a requirement
// for the BFT state-machine-replication substrate (paper §4).
package space

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"peats/internal/tuple"
)

// ErrNotEntry is returned when out or cas is given a tuple with
// undefined fields where an entry is required.
var ErrNotEntry = errors.New("space: tuple is not an entry")

// Space is a linearizable augmented tuple space. The zero value is
// ready to use.
type Space struct {
	mu      sync.Mutex
	tuples  []tuple.Tuple // insertion order; deterministic match order
	waiters []*waiter     // registration order; nil slots were served or cancelled
}

// waiter is a parked blocking rd/in call.
type waiter struct {
	tmpl    tuple.Tuple
	remove  bool // in (true) vs rd (false)
	matched chan tuple.Tuple
}

// New returns an empty space.
func New() *Space {
	return &Space{}
}

// Len returns the number of tuples currently stored.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tuples)
}

// BitSize returns the total payload bits stored, for the memory
// accounting experiments.
func (s *Space) BitSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, t := range s.tuples {
		total += t.BitSize()
	}
	return total
}

// Out inserts entry t into the space, waking any waiter whose template
// matches it.
func (s *Space) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(t)
	return nil
}

// insertLocked adds t and delivers it to matching waiters, in
// registration order. All matching non-destructive (rd) waiters observe
// the tuple; the first matching destructive (in) waiter consumes it, in
// which case the tuple is never stored.
func (s *Space) insertLocked(t tuple.Tuple) {
	consumed := false
	for i, w := range s.waiters {
		if w == nil || !tuple.Matches(t, w.tmpl) {
			continue
		}
		if w.remove {
			if consumed {
				continue
			}
			consumed = true
		}
		s.waiters[i] = nil
		w.matched <- t
	}
	s.compactWaitersLocked()
	if !consumed {
		s.tuples = append(s.tuples, t)
	}
}

// compactWaitersLocked drops trailing and, when mostly empty, interior
// nil slots so the waiter list does not grow without bound.
func (s *Space) compactWaitersLocked() {
	live := 0
	for _, w := range s.waiters {
		if w != nil {
			live++
		}
	}
	if live*2 >= len(s.waiters) {
		return
	}
	kept := make([]*waiter, 0, live)
	for _, w := range s.waiters {
		if w != nil {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
}

// Rdp performs a non-blocking non-destructive read: it returns the first
// tuple (in insertion order) matching template tmpl, or ok=false if none
// matches.
func (s *Space) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findLocked(tmpl, false)
}

// Inp performs a non-blocking destructive read: like Rdp but the matched
// tuple is removed from the space.
func (s *Space) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.findLocked(tmpl, true)
}

func (s *Space) findLocked(tmpl tuple.Tuple, remove bool) (tuple.Tuple, bool) {
	for i, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			if remove {
				s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
			}
			return t, true
		}
	}
	return tuple.Tuple{}, false
}

// Rd performs a blocking non-destructive read: it waits until a tuple
// matching tmpl is present and returns it. It returns ctx.Err() if the
// context is cancelled first.
func (s *Space) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, false)
}

// In performs a blocking destructive read: it waits until a tuple
// matching tmpl is present, removes it, and returns it.
func (s *Space) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, true)
}

func (s *Space) blocking(ctx context.Context, tmpl tuple.Tuple, remove bool) (tuple.Tuple, error) {
	s.mu.Lock()
	if t, ok := s.findLocked(tmpl, remove); ok {
		s.mu.Unlock()
		return t, nil
	}
	w := &waiter{tmpl: tmpl, remove: remove, matched: make(chan tuple.Tuple, 1)}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case t := <-w.matched:
		return t, nil
	case <-ctx.Done():
		s.mu.Lock()
		delivered := true
		for i, q := range s.waiters {
			if q == w {
				s.waiters[i] = nil
				delivered = false
				break
			}
		}
		s.mu.Unlock()
		if delivered {
			// A concurrent insert already handed us a tuple. Honour it so
			// a destructive read never discards the consumed tuple.
			return <-w.matched, nil
		}
		return tuple.Tuple{}, ctx.Err()
	}
}

// Cas performs the conditional atomic swap cas(t̄, t): atomically, if no
// tuple matches template tmpl, insert entry t and return inserted=true.
// Otherwise return inserted=false together with the first matching tuple,
// whose fields satisfy tmpl's formal fields (the paper's algorithms read
// the decision value through them).
func (s *Space) Cas(tmpl, t tuple.Tuple) (inserted bool, matched tuple.Tuple, err error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.findLocked(tmpl, false); ok {
		return false, m, nil
	}
	s.insertLocked(t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every stored tuple matching tmpl, in insertion order —
// the bulk non-destructive read of the DepSpace line (copy-collect).
func (s *Space) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rdAllLocked(s, tmpl)
}

func rdAllLocked(s *Space, tmpl tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			out = append(out, t)
		}
	}
	return out
}

// Snapshot returns a copy of the space contents in insertion order, for
// checkpointing in the replication substrate.
func (s *Space) Snapshot() []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]tuple.Tuple, len(s.tuples))
	copy(cp, s.tuples)
	return cp
}

// Restore replaces the space contents with the given tuples (in order),
// discarding the current contents. Waiters are re-evaluated against the
// restored tuples.
func (s *Space) Restore(tuples []tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tuples = s.tuples[:0]
	for _, t := range tuples {
		s.insertLocked(t)
	}
}

// ForEach calls fn for every stored tuple in insertion order while
// holding the space lock; fn must not call back into the space. It is
// used by policy predicates that quantify over the whole state (e.g. the
// default-consensus ⊥ justification rule). Iteration stops when fn
// returns false.
func (s *Space) ForEach(fn func(tuple.Tuple) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tuples {
		if !fn(t) {
			return
		}
	}
}

// CountMatching returns the number of stored tuples matching tmpl.
func (s *Space) CountMatching(tmpl tuple.Tuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.tuples {
		if tuple.Matches(t, tmpl) {
			n++
		}
	}
	return n
}
