// Package space implements a linearizable augmented tuple space.
//
// The space provides the three LINDA operations out (write), rd
// (non-destructive read) and in (destructive read), their non-blocking
// variants rdp and inp, and the conditional atomic swap cas(t̄, t) of
// Segall and Bakken-Schlichting: atomically, "if reading template t̄
// fails, insert entry t". cas gives the space consensus number n, which
// makes it a universal object.
//
// All operations take effect atomically under a single mutex, which
// directly yields linearizability: the linearization point of every
// operation is its critical section. Matching always selects tuples in
// insertion order, so the space is a deterministic state machine — a
// requirement for the BFT state-machine-replication substrate
// (paper §4).
//
// # Storage engines
//
// Tuple storage is pluggable behind the Store interface. Two engines
// are provided: the slice store (EngineSlice), a linear-scan reference
// model, and the indexed store (EngineIndexed, the default), which
// buckets tuples by arity and hashes on the first defined field while
// preserving insertion-order match semantics through monotonic sequence
// numbers. Both engines are observationally equivalent by construction
// and by property test (see parity_test.go); the choice only affects
// performance. New selects the default engine; NewWithEngine and
// NewWithStore select explicitly.
//
// Blocked rd/in callers are parked on waiters indexed by template
// arity, so an insert only consults waiters that could possibly match.
package space

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"peats/internal/tuple"
)

// ErrNotEntry is returned when out or cas is given a tuple with
// undefined fields where an entry is required.
var ErrNotEntry = errors.New("space: tuple is not an entry")

// Space is a linearizable augmented tuple space backed by a pluggable
// Store engine.
type Space struct {
	mu      sync.Mutex
	store   Store
	waiters map[int][]*waiter // template arity → registration order
}

// waiter is a parked blocking rd/in call.
type waiter struct {
	tmpl    tuple.Tuple
	remove  bool // in (true) vs rd (false)
	matched chan tuple.Tuple
}

// New returns an empty space backed by the default store engine.
func New() *Space {
	return NewWithStore(NewIndexedStore())
}

// NewWithEngine returns an empty space backed by the named engine.
func NewWithEngine(e Engine) (*Space, error) {
	st, err := NewStore(e)
	if err != nil {
		return nil, err
	}
	return NewWithStore(st), nil
}

// NewWithStore returns an empty space backed by the given store. The
// store must not be shared with another space or touched directly
// afterwards.
func NewWithStore(st Store) *Space {
	return &Space{store: st, waiters: make(map[int][]*waiter)}
}

// Engine returns the engine of the backing store.
func (s *Space) Engine() Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Engine()
}

// Len returns the number of tuples currently stored.
func (s *Space) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Len()
}

// BitSize returns the total payload bits stored, for the memory
// accounting experiments.
func (s *Space) BitSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	s.store.ForEach(func(t tuple.Tuple) bool {
		total += t.BitSize()
		return true
	})
	return total
}

// Out inserts entry t into the space, waking any waiter whose template
// matches it.
func (s *Space) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(t)
	return nil
}

// insertLocked adds t, first offering it to matching waiters in
// registration order. All matching non-destructive (rd) waiters observe
// the tuple; the first matching destructive (in) waiter consumes it, in
// which case the tuple is never stored.
func (s *Space) insertLocked(t tuple.Tuple) {
	if s.deliverLocked(t) {
		return
	}
	s.store.Insert(t)
}

// deliverLocked hands t to parked waiters of the matching arity, in
// registration order, removing every served waiter from the index.
// It reports whether a destructive waiter consumed the tuple.
func (s *Space) deliverLocked(t tuple.Tuple) (consumed bool) {
	arity := t.Arity()
	list := s.waiters[arity]
	if len(list) == 0 {
		return false
	}
	kept := list[:0]
	for _, w := range list {
		if !tuple.Matches(t, w.tmpl) || (w.remove && consumed) {
			kept = append(kept, w)
			continue
		}
		if w.remove {
			consumed = true
		}
		w.matched <- t
	}
	s.setWaitersLocked(arity, kept)
	return consumed
}

// setWaitersLocked stores the waiter list for an arity, dropping the
// bucket entirely when it empties so served waiters never linger.
func (s *Space) setWaitersLocked(arity int, list []*waiter) {
	if len(list) == 0 {
		delete(s.waiters, arity)
		return
	}
	s.waiters[arity] = list
}

// Rdp performs a non-blocking non-destructive read: it returns the first
// tuple (in insertion order) matching template tmpl, or ok=false if none
// matches.
func (s *Space) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Find(tmpl, false)
}

// Inp performs a non-blocking destructive read: like Rdp but the matched
// tuple is removed from the space.
func (s *Space) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Find(tmpl, true)
}

// Rd performs a blocking non-destructive read: it waits until a tuple
// matching tmpl is present and returns it. It returns ctx.Err() if the
// context is cancelled first.
func (s *Space) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, false)
}

// In performs a blocking destructive read: it waits until a tuple
// matching tmpl is present, removes it, and returns it.
func (s *Space) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, true)
}

func (s *Space) blocking(ctx context.Context, tmpl tuple.Tuple, remove bool) (tuple.Tuple, error) {
	s.mu.Lock()
	if t, ok := s.store.Find(tmpl, remove); ok {
		s.mu.Unlock()
		return t, nil
	}
	arity := tmpl.Arity()
	w := &waiter{tmpl: tmpl, remove: remove, matched: make(chan tuple.Tuple, 1)}
	s.waiters[arity] = append(s.waiters[arity], w)
	s.mu.Unlock()

	select {
	case t := <-w.matched:
		return t, nil
	case <-ctx.Done():
		s.mu.Lock()
		delivered := true
		list := s.waiters[arity]
		for i, q := range list {
			if q == w {
				s.setWaitersLocked(arity, append(list[:i], list[i+1:]...))
				delivered = false
				break
			}
		}
		s.mu.Unlock()
		if delivered {
			// A concurrent insert already handed us a tuple. Honour it so
			// a destructive read never discards the consumed tuple.
			return <-w.matched, nil
		}
		return tuple.Tuple{}, ctx.Err()
	}
}

// Cas performs the conditional atomic swap cas(t̄, t): atomically, if no
// tuple matches template tmpl, insert entry t and return inserted=true.
// Otherwise return inserted=false together with the first matching tuple,
// whose fields satisfy tmpl's formal fields (the paper's algorithms read
// the decision value through them).
func (s *Space) Cas(tmpl, t tuple.Tuple) (inserted bool, matched tuple.Tuple, err error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.store.Find(tmpl, false); ok {
		return false, m, nil
	}
	s.insertLocked(t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every stored tuple matching tmpl, in insertion order —
// the bulk non-destructive read of the DepSpace line (copy-collect).
func (s *Space) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.FindAll(tmpl)
}

// Snapshot returns a copy of the space contents in insertion order, for
// checkpointing in the replication substrate.
func (s *Space) Snapshot() []tuple.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Snapshot()
}

// Restore atomically replaces the space contents with the given tuples
// (in order), discarding the current contents.
//
// Restore semantics are deliberately two-phased so a replica installing
// a checkpoint reaches exactly the snapshot state first: the store is
// reset and every tuple installed verbatim, and only then are parked
// waiters re-evaluated against the restored contents, in registration
// order, with normal rd/in semantics (a served destructive waiter
// removes its match). On a replica the service executes only
// non-blocking operations, so no waiters exist and the restored state
// is bit-identical to the snapshot.
func (s *Space) Restore(tuples []tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Reset()
	s.store.InsertBatch(tuples)
	s.wakeWaitersLocked()
}

// Reset discards the space contents without waking or discarding
// waiters: parked rd/in calls stay parked until a later insert or
// Restore satisfies them, or their context ends.
func (s *Space) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Reset()
}

// wakeWaitersLocked re-evaluates every parked waiter against the store,
// in registration order per arity (arity classes are independent: a
// waiter can only match tuples of its template's arity). Served waiters
// are removed from the index.
func (s *Space) wakeWaitersLocked() {
	for arity, list := range s.waiters {
		kept := list[:0]
		for _, w := range list {
			if t, ok := s.store.Find(w.tmpl, w.remove); ok {
				w.matched <- t
				continue
			}
			kept = append(kept, w)
		}
		s.setWaitersLocked(arity, kept)
	}
}

// ForEach calls fn for every stored tuple in insertion order while
// holding the space lock; fn must not call back into the space. It is
// used by policy predicates that quantify over the whole state (e.g. the
// default-consensus ⊥ justification rule). Iteration stops when fn
// returns false.
func (s *Space) ForEach(fn func(tuple.Tuple) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.ForEach(fn)
}

// CountMatching returns the number of stored tuples matching tmpl.
func (s *Space) CountMatching(tmpl tuple.Tuple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Count(tmpl)
}
