// Package space implements a linearizable augmented tuple space.
//
// The space provides the three LINDA operations out (write), rd
// (non-destructive read) and in (destructive read), their non-blocking
// variants rdp and inp, and the conditional atomic swap cas(t̄, t) of
// Segall and Bakken-Schlichting: atomically, "if reading template t̄
// fails, insert entry t". cas gives the space consensus number n, which
// makes it a universal object.
//
// # Sharded concurrency architecture
//
// The space is partitioned into N shards (1 ≤ N ≤ MaxShards), each
// owning its own Store instance, its own sync.RWMutex, and its own
// waiter registrations. A tuple routes to a shard by a hash of its
// arity and the canonical key of its first field; a template whose
// first field is defined routes the same way (any entry it can match
// shares that arity and key, hence that shard), while a template whose
// first field is undefined consults every shard and merges.
//
// Every operation still takes effect atomically — its critical section
// holds the locks of every shard it can observe or mutate, acquired in
// ascending shard order (deadlock-free by lock hierarchy) — which
// directly yields linearizability exactly as the old single-mutex
// design did. What changes is the granularity: operations on different
// shards, and read-only operations on any shard, proceed in parallel.
//
// Determinism is preserved through a space-wide monotonic sequence
// number stamped on every insert. Per-shard stores keep their records
// seq-sorted, and cross-shard results (Find on wildcard-first
// templates, FindAll, ForEach, Snapshot) merge by sequence number, so
// a sharded space fed the same call sequence is observationally
// identical to the single-shard — and ultimately the flat-slice
// reference — space. That equivalence is correctness, not style: the
// space is the deterministic state machine of the BFT
// state-machine-replication substrate (paper §4), and it is pinned by
// the randomized parity suite in parity_test.go at several shard
// counts.
//
// # Storage engines
//
// Tuple storage is pluggable behind the Store interface. Two engines
// are provided: the slice store (EngineSlice), a linear-scan reference
// model, and the indexed store (EngineIndexed, the default), which
// buckets tuples by arity and hashes on the first defined field. New
// selects the default engine with one shard; NewWithEngine,
// NewWithStore and NewSharded select explicitly.
//
// Blocked rd/in callers are parked on waiters indexed by template
// arity on the shard(s) their template routes to, so an insert only
// consults waiters that could possibly match. A wildcard-first
// template registers on every shard; the first delivery wins the
// waiter's claim and the remaining registrations are dropped.
package space

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"peats/internal/metrics"
	"peats/internal/tuple"
)

// ErrNotEntry is returned when out or cas is given a tuple with
// undefined fields where an entry is required.
var ErrNotEntry = errors.New("space: tuple is not an entry")

// MaxShards bounds the shard count so shard sets fit a 64-bit mask.
const MaxShards = 64

// Space is a linearizable augmented tuple space partitioned into
// shards, each backed by its own pluggable Store engine instance.
type Space struct {
	seq    atomic.Uint64 // space-wide insertion sequence number
	reg    atomic.Uint64 // waiter registration order, for Restore wakes
	engine Engine
	shards []*shard

	// blockedWaiters counts parked blocking rd/in calls; maintained
	// unconditionally (one atomic add per park and unpark) so the
	// gauge needs no lock at scrape time.
	blockedWaiters atomic.Int64
	// Lock-class counters, nil until EnableMetrics; nil handles no-op.
	mDo       *metrics.Counter
	mDoRead   *metrics.Counter
	mDoScoped *metrics.Counter
}

// shard is one partition: a store plus the waiters whose templates
// route here. Both are guarded by mu; pure reads take it shared.
type shard struct {
	mu      sync.RWMutex
	store   Store
	waiters map[int][]*waiter // template arity → registration order
}

// waiter is a parked blocking rd/in call. A waiter registered on
// several shards (wildcard-first template) is served at most once:
// deliverers race on the claimed flag, and the loser leaves the tuple
// alone. The owner claims it itself to cancel.
type waiter struct {
	tmpl    tuple.Tuple
	remove  bool   // in (true) vs rd (false)
	reg     uint64 // global registration order
	claimed atomic.Bool
	matched chan tuple.Tuple // buffered 1; sent by the claiming deliverer
}

// New returns an empty single-shard space backed by the default store
// engine.
func New() *Space {
	return NewWithStore(NewIndexedStore())
}

// NewWithEngine returns an empty single-shard space backed by the named
// engine.
func NewWithEngine(e Engine) (*Space, error) {
	return NewSharded(e, 1)
}

// NewSharded returns an empty space with n shards, each backed by its
// own store of the named engine. n must be in [1, MaxShards]. A
// sharded space is observationally identical to a single-shard one;
// the shard count only affects how much of the space concurrent
// operations lock.
func NewSharded(e Engine, n int) (*Space, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("space: shard count %d out of range [1, %d]", n, MaxShards)
	}
	shards := make([]*shard, n)
	for i := range shards {
		st, err := NewStore(e)
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{store: st, waiters: make(map[int][]*waiter)}
	}
	sp := &Space{shards: shards, engine: shards[0].store.Engine()}
	return sp, nil
}

// NewWithStore returns an empty single-shard space backed by the given
// store. The store must not be shared with another space or touched
// directly afterwards.
func NewWithStore(st Store) *Space {
	return &Space{
		engine: st.Engine(),
		shards: []*shard{{store: st, waiters: make(map[int][]*waiter)}},
	}
}

// NewShardedFactory returns an empty space with n shards whose stores
// come from mk (called once per shard, in shard order). It is the
// construction hook for engines NewStore cannot build on its own —
// the durable engine hands out stores bound to one shared write-ahead
// log this way. The stores must be fresh and not shared with another
// space.
func NewShardedFactory(n int, mk func(shard int) (Store, error)) (*Space, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("space: shard count %d out of range [1, %d]", n, MaxShards)
	}
	shards := make([]*shard, n)
	for i := range shards {
		st, err := mk(i)
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{store: st, waiters: make(map[int][]*waiter)}
	}
	return &Space{shards: shards, engine: shards[0].store.Engine()}, nil
}

// Install is the crash-recovery hook: it loads recovered records into
// an empty space verbatim, preserving their original sequence numbers,
// and advances the space-wide sequence counter past them. Unlike
// Restore — which re-stamps a snapshot with fresh numbers — Install
// keeps the numbering a write-ahead log recorded, so log records that
// address tuples by sequence number stay meaningful across restarts.
// recs must be seq-sorted (the order a recovery produces); the space
// must not have been used yet.
func (s *Space) Install(recs []SeqTuple) error {
	s.lockAll()
	defer s.unlockAll()
	if s.lenLocked() != 0 || s.seq.Load() != 0 {
		return errors.New("space: Install on a non-empty space")
	}
	per := make([][]SeqTuple, len(s.shards))
	var maxSeq uint64
	for _, r := range recs {
		if r.Seq <= maxSeq {
			return fmt.Errorf("space: Install records not strictly seq-sorted at %d", r.Seq)
		}
		maxSeq = r.Seq
		i := s.EntryShard(r.T)
		per[i] = append(per[i], r)
	}
	for i, sh := range s.shards {
		sh.store.InsertBatch(per[i])
	}
	s.seq.Store(maxSeq)
	return nil
}

// Engine returns the engine of the backing stores.
func (s *Space) Engine() Engine { return s.engine }

// Shards returns the number of shards the space is partitioned into.
func (s *Space) Shards() int { return len(s.shards) }

// RouteIndex routes an (arity, first-field key) pair to one of n
// buckets with an FNV-1a hash — stable across processes, so every
// replica of a cluster routes identically. It is the canonical
// placement rule of the system, shared by the intra-process shard
// layer and the multi-group partitioned deployment: both split the
// tuple space along the same function, at different scales.
func RouteIndex(arity int, key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	h = (h ^ uint32(arity)) * 16777619
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// RouteEntry returns the bucket among n that entry t routes to.
func RouteEntry(t tuple.Tuple, n int) int {
	key, _ := t.Field(0).MatchKey()
	return RouteIndex(t.Arity(), key, n)
}

// RouteTemplate returns the single bucket among n that can hold
// matches for tmpl and keyed=true when tmpl's first field is defined;
// keyed=false means every bucket must be consulted.
func RouteTemplate(tmpl tuple.Tuple, n int) (int, bool) {
	if key, ok := tmpl.Field(0).MatchKey(); ok {
		return RouteIndex(tmpl.Arity(), key, n), true
	}
	return 0, false
}

// shardIndex routes an (arity, first-field key) pair to a shard.
func (s *Space) shardIndex(arity int, key string) int {
	return RouteIndex(arity, key, len(s.shards))
}

// EntryShard returns the shard index entry t routes to: a hash of its
// arity and first-field key. Non-entries (possible only via hostile
// snapshots) route by arity alone; they can never match a template, so
// any deterministic placement works.
func (s *Space) EntryShard(t tuple.Tuple) int {
	key, _ := t.Field(0).MatchKey()
	return s.shardIndex(t.Arity(), key)
}

// TemplateShard returns the single shard that holds every possible
// match for tmpl and keyed=true when tmpl's first field is defined
// (any matching entry shares its arity and first-field key). It
// returns keyed=false when the first field is a wildcard or formal, in
// which case every shard must be consulted.
func (s *Space) TemplateShard(tmpl tuple.Tuple) (int, bool) {
	if key, ok := tmpl.Field(0).MatchKey(); ok {
		return s.shardIndex(tmpl.Arity(), key), true
	}
	return 0, false
}

// Lock-order discipline: every multi-shard critical section acquires
// shard locks in ascending index order, mixing write and read modes
// freely. Any wait-for cycle would need some goroutine to wait on an
// index no greater than one it holds, which ascending acquisition
// forbids — so the space is deadlock-free by hierarchy.

func (s *Space) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Space) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

func (s *Space) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Space) runlockAll() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}

// Len returns the number of tuples currently stored.
func (s *Space) Len() int {
	s.rlockAll()
	defer s.runlockAll()
	return s.lenLocked()
}

func (s *Space) lenLocked() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.store.Len()
	}
	return n
}

// BitSize returns the total payload bits stored, for the memory
// accounting experiments.
func (s *Space) BitSize() int {
	s.rlockAll()
	defer s.runlockAll()
	total := 0
	for _, sh := range s.shards {
		sh.store.ForEach(func(t tuple.Tuple, _ uint64) bool {
			total += t.BitSize()
			return true
		})
	}
	return total
}

// Out inserts entry t into the space, waking any waiter whose template
// matches it. Only t's shard is locked.
func (s *Space) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	sh := s.shards[s.EntryShard(t)]
	sh.mu.Lock()
	s.insertLocked(sh, t)
	sh.mu.Unlock()
	return nil
}

// insertLocked adds t to sh (which must be write-locked), first
// offering it to matching waiters registered there.
func (s *Space) insertLocked(sh *shard, t tuple.Tuple) {
	if sh.deliver(t) {
		return
	}
	sh.store.Insert(t, s.seq.Add(1))
}

// deliver hands t to parked waiters of the matching arity, in
// registration order, removing every served (or stale) waiter from the
// shard's index. It reports whether a destructive waiter consumed the
// tuple. The caller holds sh.mu exclusively.
//
// All matching non-destructive (rd) waiters observe the tuple; the
// first matching destructive (in) waiter consumes it, in which case
// the tuple is never stored. Waiters registered on several shards are
// guarded by their claimed flag: only the winner of the claim is
// served here, and a waiter already claimed elsewhere (or cancelled)
// is dropped from the list.
func (sh *shard) deliver(t tuple.Tuple) (consumed bool) {
	arity := t.Arity()
	list := sh.waiters[arity]
	if len(list) == 0 {
		return false
	}
	kept := list[:0]
	for _, w := range list {
		if w.claimed.Load() {
			continue // served on another shard, or cancelled: drop
		}
		if !tuple.Matches(t, w.tmpl) || (w.remove && consumed) {
			kept = append(kept, w)
			continue
		}
		if !w.claimed.CompareAndSwap(false, true) {
			continue // lost the claim race while we looked: drop
		}
		if w.remove {
			consumed = true
		}
		w.matched <- t
	}
	sh.setWaiters(arity, kept)
	return consumed
}

// setWaiters stores the waiter list for an arity, dropping the bucket
// entirely when it empties so served waiters never linger.
func (sh *shard) setWaiters(arity int, list []*waiter) {
	if len(list) == 0 {
		delete(sh.waiters, arity)
		return
	}
	sh.waiters[arity] = list
}

// peekLocked returns the earliest match for tmpl across every shard the
// template routes to, by merged sequence number, without removing it.
// The caller holds (at least) read locks on those shards.
func (s *Space) peekLocked(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if idx, keyed := s.TemplateShard(tmpl); keyed || len(s.shards) == 1 {
		t, _, ok := s.shards[idx].store.Find(tmpl, false)
		return t, ok
	}
	var (
		bestT   tuple.Tuple
		bestSeq uint64
		found   bool
	)
	for _, sh := range s.shards {
		if t, seq, ok := sh.store.Find(tmpl, false); ok && (!found || seq < bestSeq) {
			bestT, bestSeq, found = t, seq, true
		}
	}
	return bestT, found
}

// takeLocked removes and returns the earliest match for tmpl across
// every shard the template routes to. The caller holds write locks on
// those shards.
func (s *Space) takeLocked(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if idx, keyed := s.TemplateShard(tmpl); keyed || len(s.shards) == 1 {
		t, _, ok := s.shards[idx].store.Find(tmpl, true)
		return t, ok
	}
	best, found := -1, false
	var bestSeq uint64
	for i, sh := range s.shards {
		if _, seq, ok := sh.store.Find(tmpl, false); ok && (!found || seq < bestSeq) {
			best, bestSeq, found = i, seq, true
		}
	}
	if !found {
		return tuple.Tuple{}, false
	}
	t, _, _ := s.shards[best].store.Find(tmpl, true)
	return t, true
}

// Rdp performs a non-blocking non-destructive read: it returns the first
// tuple (in insertion order) matching template tmpl, or ok=false if none
// matches. A keyed template takes one shard's read lock; a
// wildcard-first template takes every shard's.
func (s *Space) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		sh := s.shards[idx]
		sh.mu.RLock()
		t, _, ok := sh.store.Find(tmpl, false)
		sh.mu.RUnlock()
		return t, ok
	}
	s.rlockAll()
	defer s.runlockAll()
	return s.peekLocked(tmpl)
}

// Inp performs a non-blocking destructive read: like Rdp but the matched
// tuple is removed from the space.
func (s *Space) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		sh := s.shards[idx]
		sh.mu.Lock()
		t, _, ok := sh.store.Find(tmpl, true)
		sh.mu.Unlock()
		return t, ok
	}
	s.lockAll()
	defer s.unlockAll()
	return s.takeLocked(tmpl)
}

// Rd performs a blocking non-destructive read: it waits until a tuple
// matching tmpl is present and returns it. It returns ctx.Err() if the
// context is cancelled first.
func (s *Space) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, false)
}

// In performs a blocking destructive read: it waits until a tuple
// matching tmpl is present, removes it, and returns it.
func (s *Space) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.blocking(ctx, tmpl, true)
}

func (s *Space) blocking(ctx context.Context, tmpl tuple.Tuple, remove bool) (tuple.Tuple, error) {
	idx, keyed := s.TemplateShard(tmpl)
	// A non-destructive waiter registered on several shards treats
	// delivery as a wake hint and re-reads the earliest match by
	// space-wide insertion order: the delivering insert may have raced
	// with an insert on another shard that drew a smaller sequence
	// number, and handing over the delivered tuple directly would let
	// the rd observe the later tuple while Rdp observes the earlier
	// one — a non-linearizable pair. Destructive waiters keep the
	// direct handoff: the consumed tuple was never stored, so no other
	// observation can contradict its position.
	hintOnly := !keyed && !remove && len(s.shards) > 1
	for {
		w := &waiter{
			tmpl:    tmpl,
			remove:  remove,
			reg:     s.reg.Add(1),
			matched: make(chan tuple.Tuple, 1),
		}
		// Check-and-register atomically under the locks of every shard
		// the template routes to: a matching insert either happened
		// before (we find it now) or serialises after our registration
		// on its shard.
		if keyed {
			sh := s.shards[idx]
			sh.mu.Lock()
			if t, _, ok := sh.store.Find(tmpl, remove); ok {
				sh.mu.Unlock()
				return t, nil
			}
			sh.waiters[tmpl.Arity()] = append(sh.waiters[tmpl.Arity()], w)
			sh.mu.Unlock()
			s.blockedWaiters.Add(1)
		} else {
			s.lockAll()
			var (
				t  tuple.Tuple
				ok bool
			)
			if remove {
				t, ok = s.takeLocked(tmpl)
			} else {
				t, ok = s.peekLocked(tmpl)
			}
			if ok {
				s.unlockAll()
				return t, nil
			}
			for _, sh := range s.shards {
				sh.waiters[tmpl.Arity()] = append(sh.waiters[tmpl.Arity()], w)
			}
			s.unlockAll()
			s.blockedWaiters.Add(1)
		}

		var (
			t         tuple.Tuple
			delivered bool
			cancelled bool
		)
		select {
		case t = <-w.matched:
			delivered = true
		case <-ctx.Done():
			cancelled = true
			if w.claimed.CompareAndSwap(false, true) {
				s.deregister(w)
				return tuple.Tuple{}, ctx.Err()
			}
			// A deliverer won the claim concurrently and has sent (or
			// is about to send) a tuple. Honour it so a destructive
			// read never discards the consumed tuple.
			t = <-w.matched
			delivered = true
		}
		s.deregister(w)
		if delivered && !hintOnly {
			return t, nil
		}
		// Woken: return the current earliest match, which may differ
		// from the delivered tuple or be gone already (consumed by a
		// concurrent destructive read) — then park again.
		s.rlockAll()
		first, ok := s.peekLocked(tmpl)
		s.runlockAll()
		if ok {
			return first, nil
		}
		if cancelled {
			return tuple.Tuple{}, ctx.Err()
		}
	}
}

// deregister drops w's remaining registrations — the shards where a
// delivery or sweep has not already removed it. Removal is idempotent.
func (s *Space) deregister(w *waiter) {
	s.blockedWaiters.Add(-1)
	shards := s.shards
	if idx, keyed := s.TemplateShard(w.tmpl); keyed {
		shards = s.shards[idx : idx+1]
	}
	arity := w.tmpl.Arity()
	for _, sh := range shards {
		sh.mu.Lock()
		list := sh.waiters[arity]
		for i, q := range list {
			if q == w {
				sh.setWaiters(arity, append(list[:i], list[i+1:]...))
				break
			}
		}
		sh.mu.Unlock()
	}
}

// Cas performs the conditional atomic swap cas(t̄, t): atomically, if no
// tuple matches template tmpl, insert entry t and return inserted=true.
// Otherwise return inserted=false together with the first matching tuple,
// whose fields satisfy tmpl's formal fields (the paper's algorithms read
// the decision value through them). A keyed template locks at most two
// shards (the template's and the entry's); a wildcard-first template
// locks all.
func (s *Space) Cas(tmpl, t tuple.Tuple) (inserted bool, matched tuple.Tuple, err error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, fmt.Errorf("%w: %v", ErrNotEntry, t)
	}
	ei := s.EntryShard(t)
	if ti, keyed := s.TemplateShard(tmpl); keyed {
		lo, hi := ti, ei
		if lo > hi {
			lo, hi = hi, lo
		}
		s.shards[lo].mu.Lock()
		if lo != hi {
			s.shards[hi].mu.Lock()
		}
		defer func() {
			if lo != hi {
				s.shards[hi].mu.Unlock()
			}
			s.shards[lo].mu.Unlock()
		}()
		if m, _, ok := s.shards[ti].store.Find(tmpl, false); ok {
			return false, m, nil
		}
		s.insertLocked(s.shards[ei], t)
		return true, tuple.Tuple{}, nil
	}
	s.lockAll()
	defer s.unlockAll()
	if m, ok := s.peekLocked(tmpl); ok {
		return false, m, nil
	}
	s.insertLocked(s.shards[ei], t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every stored tuple matching tmpl, in insertion order —
// the bulk non-destructive read of the DepSpace line (copy-collect).
func (s *Space) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		sh := s.shards[idx]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return stripSeqs(sh.store.FindAll(tmpl))
	}
	s.rlockAll()
	defer s.runlockAll()
	return stripSeqs(s.mergeLocked(func(st Store) []SeqTuple { return st.FindAll(tmpl) }))
}

// mergeLocked collects per-shard seq-sorted lists and k-way-merges
// them into one insertion-order list (each input is already sorted, so
// no re-sort). The caller holds (at least) read locks on every shard.
func (s *Space) mergeLocked(collect func(Store) []SeqTuple) []SeqTuple {
	if len(s.shards) == 1 {
		return collect(s.shards[0].store)
	}
	lists := make([][]SeqTuple, 0, len(s.shards))
	total := 0
	for _, sh := range s.shards {
		if l := collect(sh.store); len(l) > 0 {
			lists = append(lists, l)
			total += len(l)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	out := make([]SeqTuple, 0, total)
	for len(lists) > 0 {
		best := 0
		for i := 1; i < len(lists); i++ {
			if lists[i][0].Seq < lists[best][0].Seq {
				best = i
			}
		}
		out = append(out, lists[best][0])
		if lists[best] = lists[best][1:]; len(lists[best]) == 0 {
			lists = append(lists[:best], lists[best+1:]...)
		}
	}
	return out
}

// stripSeqs projects a merged list back to bare tuples (nil in, nil
// out, preserving the RdAll no-match contract).
func stripSeqs(sts []SeqTuple) []tuple.Tuple {
	if sts == nil {
		return nil
	}
	out := make([]tuple.Tuple, len(sts))
	for i, st := range sts {
		out[i] = st.T
	}
	return out
}

// Snapshot returns a copy of the space contents in insertion order, for
// checkpointing in the replication substrate.
func (s *Space) Snapshot() []tuple.Tuple {
	s.rlockAll()
	defer s.runlockAll()
	return stripSeqs(s.mergeLocked(func(st Store) []SeqTuple { return st.Snapshot() }))
}

// Restore atomically replaces the space contents with the given tuples
// (in order), discarding the current contents.
//
// Restore semantics are deliberately two-phased so a replica installing
// a checkpoint reaches exactly the snapshot state first: every store is
// reset and every tuple installed verbatim (stamped with fresh,
// increasing sequence numbers, so snapshot order is the new insertion
// order), and only then are parked waiters re-evaluated against the
// restored contents, in registration order, with normal rd/in semantics
// (a served destructive waiter removes its match). On a replica the
// service executes only non-blocking operations, so no waiters exist
// and the restored state is bit-identical to the snapshot.
func (s *Space) Restore(tuples []tuple.Tuple) {
	s.lockAll()
	defer s.unlockAll()
	for _, sh := range s.shards {
		sh.store.Reset()
	}
	per := make([][]SeqTuple, len(s.shards))
	for _, t := range tuples {
		i := s.EntryShard(t)
		per[i] = append(per[i], SeqTuple{Seq: s.seq.Add(1), T: t})
	}
	for i, sh := range s.shards {
		sh.store.InsertBatch(per[i])
	}
	s.wakeWaitersLocked()
}

// Reset discards the space contents without waking or discarding
// waiters: parked rd/in calls stay parked until a later insert or
// Restore satisfies them, or their context ends.
func (s *Space) Reset() {
	s.lockAll()
	defer s.unlockAll()
	for _, sh := range s.shards {
		sh.store.Reset()
	}
}

// wakeWaitersLocked re-evaluates every parked waiter against the stores
// in global registration order and sweeps served, cancelled and stale
// registrations from every shard. The caller holds all write locks.
func (s *Space) wakeWaitersLocked() {
	var all []*waiter
	seen := make(map[*waiter]bool)
	for _, sh := range s.shards {
		for _, list := range sh.waiters {
			for _, w := range list {
				if !seen[w] {
					seen[w] = true
					all = append(all, w)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].reg < all[j].reg })
	for _, w := range all {
		if w.claimed.Load() {
			continue
		}
		// Peek before claiming: a claim must only be taken when a match
		// exists, because an unclaimed waiter may be cancelled by its
		// owner at any moment and an already-removed tuple would have
		// no recipient.
		if _, ok := s.peekLocked(w.tmpl); !ok {
			continue
		}
		if !w.claimed.CompareAndSwap(false, true) {
			continue // owner cancelled between peek and claim
		}
		var t tuple.Tuple
		if w.remove {
			t, _ = s.takeLocked(w.tmpl)
		} else {
			t, _ = s.peekLocked(w.tmpl)
		}
		w.matched <- t
	}
	// Sweep claimed waiters out of every shard list so served waiters
	// never linger in the index.
	for _, sh := range s.shards {
		for arity, list := range sh.waiters {
			kept := list[:0]
			for _, w := range list {
				if !w.claimed.Load() {
					kept = append(kept, w)
				}
			}
			sh.setWaiters(arity, kept)
		}
	}
}

// ForEach calls fn for every stored tuple in insertion order while
// holding every shard's read lock; fn must not call back into the
// space. It is used by policy predicates that quantify over the whole
// state (e.g. the default-consensus ⊥ justification rule). Iteration
// stops when fn returns false. On a multi-shard space the iteration
// works over a merged copy of the shard snapshots.
func (s *Space) ForEach(fn func(tuple.Tuple) bool) {
	s.rlockAll()
	defer s.runlockAll()
	s.forEachLocked(fn)
}

func (s *Space) forEachLocked(fn func(tuple.Tuple) bool) {
	s.forEachSeqLocked(func(st SeqTuple) bool { return fn(st.T) })
}

// forEachSeqLocked visits stored tuples with their sequence numbers in
// insertion order until fn returns false. The caller holds (at least)
// read locks on every shard.
func (s *Space) forEachSeqLocked(fn func(SeqTuple) bool) {
	if len(s.shards) == 1 {
		s.shards[0].store.ForEach(func(t tuple.Tuple, seq uint64) bool {
			return fn(SeqTuple{Seq: seq, T: t})
		})
		return
	}
	// Merge-iterate one cursor per shard by sequence number — no
	// materialisation, so state-quantifying policy predicates keep an
	// allocation-free ForEach on sharded spaces too.
	next := make([]func() (SeqTuple, bool), len(s.shards))
	heads := make([]SeqTuple, len(s.shards))
	live := make([]bool, len(s.shards))
	for i, sh := range s.shards {
		next[i] = sh.store.Iter()
		heads[i], live[i] = next[i]()
	}
	for {
		best := -1
		for i := range heads {
			if live[i] && (best < 0 || heads[i].Seq < heads[best].Seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if !fn(heads[best]) {
			return
		}
		heads[best], live[best] = next[best]()
	}
}

// CountMatching returns the number of stored tuples matching tmpl.
func (s *Space) CountMatching(tmpl tuple.Tuple) int {
	if idx, keyed := s.TemplateShard(tmpl); keyed {
		sh := s.shards[idx]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.store.Count(tmpl)
	}
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for _, sh := range s.shards {
		n += sh.store.Count(tmpl)
	}
	return n
}
