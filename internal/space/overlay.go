package space

import (
	"peats/internal/tuple"
)

// Overlay is a stack of tentatively executed units layered over the
// committed contents of a space. The replication substrate executes an
// agreement batch into the overlay as soon as the batch is *prepared*
// (Castro–Liskov tentative execution), answers clients from the
// tentative state, and only applies the unit to the real stores —
// PromoteBottom — once the commit quorum lands. A view change that
// drops prepared batches discards their overlay segments (Rollback)
// without the stores ever having seen them, so no undo log is needed:
// the overlay *is* the undo log, by never being applied.
//
// Each unit is a segment; each segment holds one effect group per
// atomic fold (one client transaction), preserving the per-transaction
// effect order a direct execution would have journaled. Tuples inserted
// by one tentative unit may be consumed by a later one; such
// cross-segment consumption is tracked by pointer so promotion and
// rollback resolve it exactly.
//
// Ownership: an Overlay is single-threaded — only the replica event
// loop touches it. Tentative execution reads committed state through a
// Staged opened with Tx.StageOn under (at least) read locks; the
// overlay bookkeeping itself needs no locks. PromoteBottom opens its
// own scoped write section.
type Overlay struct {
	s *Space
	// hidden maps the sequence numbers of stored tuples the tentative
	// view must not observe — stored tuples consumed by a tentative
	// unit, plus promoted inserts whose tentative consumer has not
	// promoted yet — to their values (the value is needed to answer
	// CountMatching without touching the stores).
	hidden map[uint64]tuple.Tuple
	segs   []*overlaySeg
	open   bool // the top segment is open for folding
}

// overlaySeg is the net effect of one tentative unit (agreement batch).
type overlaySeg struct {
	tag    uint64
	groups []effectGroup
}

// effectGroup is the net effect of one atomic fold — one client
// transaction — in the order a direct execution journals it: removals
// in consumption order, then inserts in staging order.
type effectGroup struct {
	removals []overlayRemoval
	inserts  []*OverlayInsert
}

// overlayRemoval is one tentatively consumed tuple: either a stored
// (committed) tuple, identified by its sequence number, or an insert of
// an earlier tentative unit, identified by pointer.
type overlayRemoval struct {
	stored SeqTuple
	base   *OverlayInsert // non-nil: consumed an earlier tentative insert
}

// value returns the consumed tuple's value.
func (r overlayRemoval) value() tuple.Tuple {
	if r.base != nil {
		return r.base.T
	}
	return r.stored.T
}

// OverlayInsert is one tentatively inserted entry. Later tentative
// units consume it by marking it; promotion materialises it in the
// stores, recording the sequence number it received so a marked
// consumer can remove exactly it when that consumer promotes.
type OverlayInsert struct {
	T           tuple.Tuple
	consumed    bool
	promoted    bool
	promotedSeq uint64
}

// UnitEffects is the journalled effect of one effect group, value
// addressed the way wire.DeltaOp needs it — what PromoteBottom returns
// so the replication service appends the same incremental-checkpoint
// journal entries a direct execution would have.
type UnitEffects struct {
	Removed  []tuple.Tuple
	Inserted []tuple.Tuple
}

// NewOverlay returns an empty overlay over the space.
func (s *Space) NewOverlay() *Overlay {
	return &Overlay{s: s, hidden: make(map[uint64]tuple.Tuple)}
}

// Depth returns the number of tentative units stacked.
func (ov *Overlay) Depth() int { return len(ov.segs) }

// Empty reports whether the overlay holds no tentative state: the
// tentative view coincides with the committed contents.
func (ov *Overlay) Empty() bool { return len(ov.segs) == 0 && len(ov.hidden) == 0 }

// BeginUnit opens a new top segment for the tentative unit tagged tag
// (the agreement sequence number, for diagnostics). Every fold until
// EndUnit lands in this segment.
func (ov *Overlay) BeginUnit(tag uint64) {
	if ov.open {
		panic("space: overlay BeginUnit with a unit already open")
	}
	ov.segs = append(ov.segs, &overlaySeg{tag: tag})
	ov.open = true
}

// EndUnit closes the open segment. A segment with no folds is kept: a
// batch of denied or read-only transactions still occupies its
// sequence number and promotes as a no-op.
func (ov *Overlay) EndUnit() {
	if !ov.open {
		panic("space: overlay EndUnit without BeginUnit")
	}
	ov.open = false
}

// hiddenSeq reports whether the stored tuple with the given sequence
// number is hidden from the tentative view.
func (ov *Overlay) hiddenSeq(seq uint64) bool {
	_, ok := ov.hidden[seq]
	return ok
}

// eachVisibleInsert visits the overlay's unconsumed tentative inserts
// in unit then staging order — the order they follow every stored tuple
// in the tentative view — until fn returns false.
func (ov *Overlay) eachVisibleInsert(fn func(*OverlayInsert) bool) {
	for _, seg := range ov.segs {
		for _, g := range seg.groups {
			for _, ins := range g.inserts {
				if ins.consumed {
					continue
				}
				if !fn(ins) {
					return
				}
			}
		}
	}
}

// fold appends one transaction's staged effects to the open segment.
// The staged view recorded consumption of stored tuples in st.takes and
// marked consumed overlay inserts eagerly, so folding is pure
// bookkeeping; the hidden index gains the stored tuples this
// transaction consumed.
func (ov *Overlay) fold(takes []overlayRemoval, inserts []tuple.Tuple) {
	if !ov.open {
		panic("space: overlay fold without an open unit")
	}
	seg := ov.segs[len(ov.segs)-1]
	g := effectGroup{removals: takes}
	for _, r := range takes {
		if r.base == nil {
			ov.hidden[r.stored.Seq] = r.stored.T
		}
	}
	g.inserts = make([]*OverlayInsert, len(inserts))
	for i, t := range inserts {
		g.inserts[i] = &OverlayInsert{T: t}
	}
	seg.groups = append(seg.groups, g)
}

// PromoteBottom applies the oldest tentative unit to the real stores
// and pops it: the unit's commit quorum landed, so its effects become
// committed state, group by group in the order a direct execution
// would have applied them. Removals are value-addressed — the same
// ascending-sequence determinism argument as Staged.Commit guarantees
// each removes exactly the tuple the tentative view consumed. An
// insert already consumed by a still-tentative later unit is stored
// without waiter delivery and stays hidden from the tentative view
// until its consumer promotes and removes it.
//
// It returns one UnitEffects per group for the incremental-checkpoint
// journal. Store mutations run inside a scoped write section, so a
// durable engine journals the whole unit into whatever WAL frame the
// caller has open.
func (ov *Overlay) PromoteBottom() []UnitEffects {
	if ov.open {
		panic("space: PromoteBottom with a tentative unit open")
	}
	if len(ov.segs) == 0 {
		panic("space: PromoteBottom on an empty overlay")
	}
	seg := ov.segs[0]
	s := ov.s
	var ws ShardSet
	for _, g := range seg.groups {
		for _, r := range g.removals {
			ws.Add(s.EntryShard(r.value()))
		}
		for _, ins := range g.inserts {
			ws.Add(s.EntryShard(ins.T))
		}
	}
	out := make([]UnitEffects, 0, len(seg.groups))
	apply := func(tx *Tx) {
		for _, g := range seg.groups {
			var eff UnitEffects
			for _, r := range g.removals {
				t := r.value()
				var seq uint64
				if r.base != nil {
					// Units promote strictly in order, so a consumed
					// earlier insert has been materialised by now.
					if !r.base.promoted {
						panic("space: tentative removal of an unpromoted insert")
					}
					seq = r.base.promotedSeq
				} else {
					seq = r.stored.Seq
				}
				sh := tx.writableShard(s.EntryShard(t))
				if _, _, ok := sh.store.Find(t, true); !ok {
					panic("space: tentative removal lost its target")
				}
				delete(ov.hidden, seq)
				eff.Removed = append(eff.Removed, t)
			}
			for _, ins := range g.inserts {
				sh := tx.writableShard(s.EntryShard(ins.T))
				if ins.consumed {
					// The consumer already answered with this tuple;
					// delivering it to a waiter now would spend it twice.
					// (Replica-owned spaces have no waiters — this is
					// belt and braces.)
					seq := s.seq.Add(1)
					sh.store.Insert(ins.T, seq)
					ins.promoted, ins.promotedSeq = true, seq
					ov.hidden[seq] = ins.T
				} else {
					s.insertLocked(sh, ins.T)
					ins.promoted = true
				}
				eff.Inserted = append(eff.Inserted, ins.T)
			}
			out = append(out, eff)
		}
	}
	s.DoScoped(ws, apply)
	ov.segs = ov.segs[1:]
	return out
}

// Rollback discards every tentative unit above the first keep segments
// (Rollback(0) drops them all): consumed stored tuples become visible
// again, consumed inserts of surviving units are un-consumed, and
// promoted-but-consumed tuples return to committed visibility. The
// real stores are untouched — that is the point.
func (ov *Overlay) Rollback(keep int) {
	if ov.open {
		panic("space: Rollback with a tentative unit open")
	}
	if keep < 0 || keep > len(ov.segs) {
		panic("space: Rollback keep out of range")
	}
	for _, seg := range ov.segs[keep:] {
		for _, g := range seg.groups {
			for _, r := range g.removals {
				switch {
				case r.base == nil:
					delete(ov.hidden, r.stored.Seq)
				case r.base.promoted:
					delete(ov.hidden, r.base.promotedSeq)
				default:
					r.base.consumed = false
				}
			}
		}
	}
	ov.segs = ov.segs[:keep]
}
