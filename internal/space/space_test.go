package space

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"peats/internal/tuple"
)

func TestOutRdpInp(t *testing.T) {
	s := New()
	if err := s.Out(tuple.T(tuple.Str("A"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Out(tuple.T(tuple.Str("A"), tuple.Int(2))); err != nil {
		t.Fatal(err)
	}

	// rdp returns the first matching tuple in insertion order, without
	// removing it.
	got, ok := s.Rdp(tuple.T(tuple.Str("A"), tuple.Formal("v")))
	if !ok {
		t.Fatal("rdp found nothing")
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Errorf("rdp returned %v, want first inserted", got)
	}
	if s.Len() != 2 {
		t.Errorf("rdp removed a tuple: len=%d", s.Len())
	}

	// inp removes.
	got, ok = s.Inp(tuple.T(tuple.Str("A"), tuple.Any()))
	if !ok {
		t.Fatal("inp found nothing")
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Errorf("inp returned %v, want first inserted", got)
	}
	if s.Len() != 1 {
		t.Errorf("inp did not remove: len=%d", s.Len())
	}

	// No match.
	if _, ok := s.Rdp(tuple.T(tuple.Str("B"), tuple.Any())); ok {
		t.Error("rdp matched wrong tag")
	}
	if _, ok := s.Inp(tuple.T(tuple.Str("B"), tuple.Any())); ok {
		t.Error("inp matched wrong tag")
	}
}

func TestOutRejectsTemplates(t *testing.T) {
	s := New()
	err := s.Out(tuple.T(tuple.Str("A"), tuple.Any()))
	if !errors.Is(err, ErrNotEntry) {
		t.Errorf("Out(template) err = %v, want ErrNotEntry", err)
	}
	err = s.Out(tuple.T(tuple.Str("A"), tuple.Formal("x")))
	if !errors.Is(err, ErrNotEntry) {
		t.Errorf("Out(formal template) err = %v, want ErrNotEntry", err)
	}
}

func TestCasInsertsWhenNoMatch(t *testing.T) {
	s := New()
	tmpl := tuple.T(tuple.Str("DECISION"), tuple.Formal("d"))
	entry := tuple.T(tuple.Str("DECISION"), tuple.Int(7))

	ins, matched, err := s.Cas(tmpl, entry)
	if err != nil {
		t.Fatal(err)
	}
	if !ins {
		t.Fatal("first cas should insert")
	}
	if !matched.IsZero() {
		t.Errorf("matched should be zero on insert, got %v", matched)
	}

	// Second cas fails and returns the stored tuple (binding the formal).
	ins, matched, err = s.Cas(tmpl, tuple.T(tuple.Str("DECISION"), tuple.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	if ins {
		t.Fatal("second cas must not insert")
	}
	if v, _ := matched.Field(1).IntValue(); v != 7 {
		t.Errorf("cas matched %v, want first decision", matched)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestCasRejectsTemplateEntry(t *testing.T) {
	s := New()
	_, _, err := s.Cas(tuple.T(tuple.Any()), tuple.T(tuple.Formal("x")))
	if !errors.Is(err, ErrNotEntry) {
		t.Errorf("err = %v, want ErrNotEntry", err)
	}
}

func TestCasOnlyOneWinnerUnderContention(t *testing.T) {
	s := New()
	tmpl := tuple.T(tuple.Str("D"), tuple.Formal("d"))
	const procs = 32
	wins := make(chan int64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			ins, _, err := s.Cas(tmpl, tuple.T(tuple.Str("D"), tuple.Int(v)))
			if err != nil {
				t.Error(err)
				return
			}
			if ins {
				wins <- v
			}
		}(int64(i))
	}
	wg.Wait()
	close(wins)
	var winners []int64
	for v := range wins {
		winners = append(winners, v)
	}
	if len(winners) != 1 {
		t.Fatalf("got %d cas winners, want exactly 1", len(winners))
	}
	got, ok := s.Rdp(tmpl)
	if !ok {
		t.Fatal("no decision tuple")
	}
	if v, _ := got.Field(1).IntValue(); v != winners[0] {
		t.Errorf("stored %v, want winner %d", got, winners[0])
	}
}

func TestBlockingRdWakesOnOut(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	done := make(chan tuple.Tuple, 1)
	go func() {
		got, err := s.Rd(ctx, tuple.T(tuple.Str("X"), tuple.Formal("v")))
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()

	time.Sleep(10 * time.Millisecond)
	if err := s.Out(tuple.T(tuple.Str("X"), tuple.Int(5))); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if v, _ := got.Field(1).IntValue(); v != 5 {
		t.Errorf("rd got %v", got)
	}
	// rd is non-destructive: tuple still stored.
	if s.Len() != 1 {
		t.Errorf("len = %d after rd, want 1", s.Len())
	}
}

func TestBlockingInConsumesExactlyOnce(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const readers = 8
	results := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			_, err := s.In(ctx, tuple.T(tuple.Str("JOB"), tuple.Any()))
			results <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	// Insert exactly 3 jobs: exactly 3 readers complete.
	for i := 0; i < 3; i++ {
		if err := s.Out(tuple.T(tuple.Str("JOB"), tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	okCount := 0
	for i := 0; i < 3; i++ {
		if err := <-results; err == nil {
			okCount++
		}
	}
	if okCount != 3 {
		t.Errorf("%d readers completed, want 3", okCount)
	}
	if s.Len() != 0 {
		t.Errorf("len = %d, want 0 (all jobs consumed)", s.Len())
	}
	cancel()
	for i := 0; i < readers-3; i++ {
		if err := <-results; err == nil {
			t.Error("extra reader completed without a tuple")
		}
	}
}

func TestBlockingRdMultipleReadersAllSee(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const readers = 5
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Rd(ctx, tuple.T(tuple.Str("E"), tuple.Any()))
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Out(tuple.T(tuple.Str("E"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("rd reader: %v", err)
		}
	}
}

func TestBlockingCancellation(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.In(ctx, tuple.T(tuple.Str("NEVER")))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The cancelled waiter must not consume later tuples.
	if err := s.Out(tuple.T(tuple.Str("NEVER"))); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("cancelled waiter consumed a tuple; len=%d", s.Len())
	}
}

func TestBlockingInReturnsImmediatelyWhenPresent(t *testing.T) {
	s := New()
	if err := s.Out(tuple.T(tuple.Str("Y"), tuple.Int(3))); err != nil {
		t.Fatal(err)
	}
	got, err := s.In(context.Background(), tuple.T(tuple.Str("Y"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Field(1).IntValue(); v != 3 {
		t.Errorf("in got %v", got)
	}
	if s.Len() != 0 {
		t.Error("in did not remove tuple")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.Out(tuple.T(tuple.Str("S"), tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot len = %d", len(snap))
	}

	s2 := New()
	if err := s2.Out(tuple.T(tuple.Str("OLD"))); err != nil {
		t.Fatal(err)
	}
	s2.Restore(snap)
	if s2.Len() != 5 {
		t.Errorf("restored len = %d, want 5", s2.Len())
	}
	if _, ok := s2.Rdp(tuple.T(tuple.Str("OLD"))); ok {
		t.Error("restore kept old contents")
	}
	// Insertion order preserved: rdp finds Int(0) first.
	got, _ := s2.Rdp(tuple.T(tuple.Str("S"), tuple.Any()))
	if v, _ := got.Field(1).IntValue(); v != 0 {
		t.Errorf("restore broke insertion order: first = %v", got)
	}

	// Snapshot is a copy: mutating it does not affect the space.
	snap[0] = tuple.T(tuple.Str("HACK"))
	if _, ok := s2.Rdp(tuple.T(tuple.Str("HACK"))); ok {
		t.Error("snapshot aliases internal storage")
	}
}

func TestRestoreWakesWaiters(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.Rd(ctx, tuple.T(tuple.Str("R")))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Restore([]tuple.Tuple{tuple.T(tuple.Str("R"))})
	if err := <-done; err != nil {
		t.Errorf("waiter not woken by Restore: %v", err)
	}
}

func TestForEachAndCountMatching(t *testing.T) {
	s := New()
	for i := 0; i < 4; i++ {
		tag := "A"
		if i%2 == 1 {
			tag = "B"
		}
		if err := s.Out(tuple.T(tuple.Str(tag), tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.CountMatching(tuple.T(tuple.Str("A"), tuple.Any())); n != 2 {
		t.Errorf("CountMatching(A) = %d, want 2", n)
	}
	seen := 0
	s.ForEach(func(tuple.Tuple) bool { seen++; return true })
	if seen != 4 {
		t.Errorf("ForEach visited %d, want 4", seen)
	}
	seen = 0
	s.ForEach(func(tuple.Tuple) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("ForEach early stop visited %d, want 1", seen)
	}
}

func TestBitSize(t *testing.T) {
	s := New()
	if s.BitSize() != 0 {
		t.Error("empty space has nonzero BitSize")
	}
	if err := s.Out(tuple.T(tuple.Bool(true), tuple.Int(7))); err != nil {
		t.Fatal(err)
	}
	if got := s.BitSize(); got != 5 {
		t.Errorf("BitSize = %d, want 5", got)
	}
}

func TestDeterministicMatchOrderAfterRemovals(t *testing.T) {
	// The space must behave as a deterministic state machine: two spaces
	// receiving the same operation sequence return identical results.
	ops := func(s *Space) []string {
		var log []string
		record := func(t tuple.Tuple, ok bool) {
			log = append(log, fmt.Sprintf("%v/%v", t, ok))
		}
		_ = s.Out(tuple.T(tuple.Str("K"), tuple.Int(1)))
		_ = s.Out(tuple.T(tuple.Str("K"), tuple.Int(2)))
		_ = s.Out(tuple.T(tuple.Str("K"), tuple.Int(3)))
		record(s.Inp(tuple.T(tuple.Str("K"), tuple.Any())))
		record(s.Rdp(tuple.T(tuple.Str("K"), tuple.Any())))
		ins, m, _ := s.Cas(tuple.T(tuple.Str("K"), tuple.Formal("x")), tuple.T(tuple.Str("K"), tuple.Int(9)))
		log = append(log, fmt.Sprintf("%v/%v", ins, m))
		record(s.Inp(tuple.T(tuple.Str("K"), tuple.Any())))
		return log
	}
	a, b := ops(New()), ops(New())
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("divergence at step %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSpaceProperty_OutThenInpRoundTrips(t *testing.T) {
	f := func(vals []int64) bool {
		s := New()
		for _, v := range vals {
			if err := s.Out(tuple.T(tuple.Str("P"), tuple.Int(v))); err != nil {
				return false
			}
		}
		// inp drains in insertion order.
		for _, v := range vals {
			got, ok := s.Inp(tuple.T(tuple.Str("P"), tuple.Any()))
			if !ok {
				return false
			}
			if g, _ := got.Field(1).IntValue(); g != v {
				return false
			}
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpaceProperty_CasIdempotentLoser(t *testing.T) {
	// After a successful cas, any number of further cas calls with the
	// same template return the same matched tuple and never insert.
	f := func(first int64, rest []int64) bool {
		s := New()
		tmpl := tuple.T(tuple.Str("D"), tuple.Formal("d"))
		ins, _, err := s.Cas(tmpl, tuple.T(tuple.Str("D"), tuple.Int(first)))
		if err != nil || !ins {
			return false
		}
		for _, v := range rest {
			ins, m, err := s.Cas(tmpl, tuple.T(tuple.Str("D"), tuple.Int(v)))
			if err != nil || ins {
				return false
			}
			if g, _ := m.Field(1).IntValue(); g != first {
				return false
			}
		}
		return s.Len() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixedOpsRace(t *testing.T) {
	// Exercise all operations concurrently under the race detector.
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = s.Out(tuple.T(tuple.Str("M"), tuple.Int(id), tuple.Int(int64(j))))
				s.Rdp(tuple.T(tuple.Str("M"), tuple.Any(), tuple.Any()))
				s.Inp(tuple.T(tuple.Str("M"), tuple.Int(id), tuple.Any()))
				_, _, _ = s.Cas(tuple.T(tuple.Str("C"), tuple.Formal("x")),
					tuple.T(tuple.Str("C"), tuple.Int(id)))
			}
		}(int64(i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			_, _ = s.Rd(ctx, tuple.T(tuple.Str("M"), tuple.Any(), tuple.Any()))
		}
	}()
	wg.Wait()
}

func TestRdAll(t *testing.T) {
	s := New()
	for i := int64(0); i < 5; i++ {
		tag := "A"
		if i%2 == 1 {
			tag = "B"
		}
		if err := s.Out(tuple.T(tuple.Str(tag), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	all := s.RdAll(tuple.T(tuple.Str("A"), tuple.Any()))
	if len(all) != 3 {
		t.Fatalf("RdAll(A) returned %d tuples, want 3", len(all))
	}
	// Insertion order preserved.
	for i, want := range []int64{0, 2, 4} {
		if v, _ := all[i].Field(1).IntValue(); v != want {
			t.Errorf("tuple %d = %v, want value %d", i, all[i], want)
		}
	}
	// Non-destructive.
	if s.Len() != 5 {
		t.Errorf("RdAll removed tuples: len=%d", s.Len())
	}
	if got := s.RdAll(tuple.T(tuple.Str("C"), tuple.Any())); got != nil {
		t.Errorf("RdAll with no matches = %v, want nil", got)
	}
}

// TestModelEquivalence drives the space and a naive reference model with
// the same random operation stream and requires identical observable
// behaviour — a model-based check of the sequential semantics.
func TestModelEquivalence(t *testing.T) {
	type model struct{ tuples []tuple.Tuple }
	findModel := func(m *model, tmpl tuple.Tuple, remove bool) (tuple.Tuple, bool) {
		for i, e := range m.tuples {
			if tuple.Matches(e, tmpl) {
				if remove {
					m.tuples = append(m.tuples[:i], m.tuples[i+1:]...)
				}
				return e, true
			}
		}
		return tuple.Tuple{}, false
	}

	f := func(ops []uint8, vals []int64) bool {
		s := New()
		m := &model{}
		vi := 0
		nextVal := func() int64 {
			if len(vals) == 0 {
				return 0
			}
			v := vals[vi%len(vals)]
			vi++
			return v % 4 // small domain to force matches
		}
		for _, op := range ops {
			v := nextVal()
			entry := tuple.T(tuple.Str("K"), tuple.Int(v))
			tmpl := tuple.T(tuple.Str("K"), tuple.Int(v))
			switch op % 4 {
			case 0:
				if err := s.Out(entry); err != nil {
					return false
				}
				m.tuples = append(m.tuples, entry)
			case 1:
				got, ok := s.Rdp(tmpl)
				want, wok := findModel(m, tmpl, false)
				if ok != wok || (ok && !got.Equal(want)) {
					return false
				}
			case 2:
				got, ok := s.Inp(tmpl)
				want, wok := findModel(m, tmpl, true)
				if ok != wok || (ok && !got.Equal(want)) {
					return false
				}
			case 3:
				ins, matched, err := s.Cas(tmpl, entry)
				if err != nil {
					return false
				}
				want, wok := findModel(m, tmpl, false)
				if ins == wok {
					return false // cas inserts iff the model had no match
				}
				if !ins && !matched.Equal(want) {
					return false
				}
				if ins {
					m.tuples = append(m.tuples, entry)
				}
			}
			if s.Len() != len(m.tuples) {
				return false
			}
		}
		// Final states identical.
		snap := s.Snapshot()
		for i := range snap {
			if !snap[i].Equal(m.tuples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
