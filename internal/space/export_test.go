package space

// Test-only exports, so sibling external test packages (space_test)
// can reuse the parity machinery against engines that live outside
// this package — the durable engine's parity suite drives real spaces
// through DriveSpacePair without duplicating the generator.
var DriveSpacePair = driveSpacePair
