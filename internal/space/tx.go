package space

import (
	"fmt"

	"peats/internal/tuple"
)

// ShardSet is a set of shard indices, used to scope a transaction's
// write locks. The zero value is empty (a pure-read transaction).
type ShardSet struct {
	mask uint64
}

// Add includes shard i in the set.
func (ss *ShardSet) Add(i int) { ss.mask |= 1 << uint(i) }

// AddAll includes every shard.
func (ss *ShardSet) AddAll() { ss.mask = ^uint64(0) }

// Has reports whether shard i is in the set.
func (ss ShardSet) Has(i int) bool { return ss.mask&(1<<uint(i)) != 0 }

// Empty reports whether no shard is in the set.
func (ss ShardSet) Empty() bool { return ss.mask == 0 }

// Tx is a view of the space inside an atomic section opened with Do,
// DoScoped or DoRead. It exposes the non-blocking operations without
// re-acquiring locks, so a caller can evaluate a policy predicate and
// execute the guarded operation as one indivisible step — exactly what
// the replicated realisation gets for free from sequential execution.
//
// A Tx is only valid during the callback; retaining it is a bug.
type Tx struct {
	s        *Space
	writable ShardSet
}

// Do runs fn while holding every shard's write lock — the
// whole-space critical section. fn must not call methods on the Space
// itself (only on the Tx) and must not block.
func (s *Space) Do(fn func(tx *Tx)) {
	s.mDo.Inc()
	s.lockAll()
	defer s.unlockAll()
	var all ShardSet
	all.AddAll()
	fn(&Tx{s: s, writable: all})
}

// DoRead runs fn while holding every shard's read lock: fn sees an
// atomic snapshot of the whole space and runs concurrently with other
// DoRead sections and with single-shard operations elsewhere. The Tx's
// mutating methods panic — this is the read-only fast path of the
// replication substrate.
func (s *Space) DoRead(fn func(tx *Tx)) {
	s.mDoRead.Inc()
	s.rlockAll()
	defer s.runlockAll()
	fn(&Tx{s: s})
}

// DoScoped runs fn holding write locks on the shards in writes and
// read locks on every other shard (acquired in ascending order, so
// scoped sections never deadlock). fn observes an atomic snapshot of
// the whole space but may only mutate the shards in writes; it runs
// concurrently with scoped sections writing disjoint shards and with
// DoRead sections not touching its write shards.
//
// Callers compute writes from the operations they are about to
// execute (EntryShard/TemplateShard); a mutation outside the declared
// set is a caller bug and panics.
func (s *Space) DoScoped(writes ShardSet, fn func(tx *Tx)) {
	s.mDoScoped.Inc()
	for i, sh := range s.shards {
		if writes.Has(i) {
			sh.mu.Lock()
		} else {
			sh.mu.RLock()
		}
	}
	defer func() {
		for i, sh := range s.shards {
			if writes.Has(i) {
				sh.mu.Unlock()
			} else {
				sh.mu.RUnlock()
			}
		}
	}()
	fn(&Tx{s: s, writable: writes})
}

// writableShard returns the shard at index i, panicking if the
// transaction did not write-lock it.
func (tx *Tx) writableShard(i int) *shard {
	if !tx.writable.Has(i) {
		panic(fmt.Sprintf("space: write to shard %d outside transaction write set", i))
	}
	return tx.s.shards[i]
}

// Out inserts entry t (see Space.Out). The entry's shard must be in
// the transaction's write set.
func (tx *Tx) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return ErrNotEntry
	}
	tx.s.insertLocked(tx.writableShard(tx.s.EntryShard(t)), t)
	return nil
}

// Rdp returns the first tuple matching tmpl (see Space.Rdp).
func (tx *Tx) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	return tx.s.peekLocked(tmpl)
}

// Inp removes and returns the first tuple matching tmpl (see
// Space.Inp). The shards tmpl routes to must be in the write set.
func (tx *Tx) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if idx, keyed := tx.s.TemplateShard(tmpl); keyed {
		t, _, ok := tx.writableShard(idx).store.Find(tmpl, true)
		return t, ok
	}
	if t, ok := tx.s.peekLocked(tmpl); !ok {
		return t, false
	}
	// A wildcard-first destructive read may remove from any shard, so
	// the whole set must have been declared writable.
	for i := range tx.s.shards {
		tx.writableShard(i)
	}
	return tx.s.takeLocked(tmpl)
}

// Cas performs the conditional atomic swap (see Space.Cas). The
// entry's shard must be in the write set; the template peek reads any
// shard.
func (tx *Tx) Cas(tmpl, t tuple.Tuple) (bool, tuple.Tuple, error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, ErrNotEntry
	}
	if m, ok := tx.s.peekLocked(tmpl); ok {
		return false, m, nil
	}
	tx.s.insertLocked(tx.writableShard(tx.s.EntryShard(t)), t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every stored tuple matching tmpl (see Space.RdAll).
func (tx *Tx) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	if idx, keyed := tx.s.TemplateShard(tmpl); keyed {
		return stripSeqs(tx.s.shards[idx].store.FindAll(tmpl))
	}
	return stripSeqs(tx.s.mergeLocked(func(st Store) []SeqTuple { return st.FindAll(tmpl) }))
}

// Len returns the number of stored tuples.
func (tx *Tx) Len() int { return tx.s.lenLocked() }

// CountMatching returns how many stored tuples match tmpl.
func (tx *Tx) CountMatching(tmpl tuple.Tuple) int {
	if idx, keyed := tx.s.TemplateShard(tmpl); keyed {
		return tx.s.shards[idx].store.Count(tmpl)
	}
	n := 0
	for _, sh := range tx.s.shards {
		n += sh.store.Count(tmpl)
	}
	return n
}

// ForEach visits stored tuples in insertion order until fn returns false.
func (tx *Tx) ForEach(fn func(tuple.Tuple) bool) {
	tx.s.forEachLocked(fn)
}
