package space

import "peats/internal/tuple"

// Tx is a view of the space inside an atomic section opened with Do.
// It exposes the non-blocking operations without re-acquiring the lock,
// so a caller can evaluate a policy predicate and execute the guarded
// operation as one indivisible step — exactly what the replicated
// realisation gets for free from sequential execution.
//
// A Tx is only valid during the Do callback; retaining it is a bug.
type Tx struct {
	s *Space
}

// Do runs fn while holding the space lock. fn must not call methods on
// the Space itself (only on the Tx) and must not block.
func (s *Space) Do(fn func(tx *Tx)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&Tx{s: s})
}

// Out inserts entry t (see Space.Out).
func (tx *Tx) Out(t tuple.Tuple) error {
	if !t.IsEntry() {
		return ErrNotEntry
	}
	tx.s.insertLocked(t)
	return nil
}

// Rdp returns the first tuple matching tmpl (see Space.Rdp).
func (tx *Tx) Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	return tx.s.store.Find(tmpl, false)
}

// Inp removes and returns the first tuple matching tmpl (see Space.Inp).
func (tx *Tx) Inp(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	return tx.s.store.Find(tmpl, true)
}

// Cas performs the conditional atomic swap (see Space.Cas).
func (tx *Tx) Cas(tmpl, t tuple.Tuple) (bool, tuple.Tuple, error) {
	if !t.IsEntry() {
		return false, tuple.Tuple{}, ErrNotEntry
	}
	if m, ok := tx.s.store.Find(tmpl, false); ok {
		return false, m, nil
	}
	tx.s.insertLocked(t)
	return true, tuple.Tuple{}, nil
}

// RdAll returns every stored tuple matching tmpl (see Space.RdAll).
func (tx *Tx) RdAll(tmpl tuple.Tuple) []tuple.Tuple {
	return tx.s.store.FindAll(tmpl)
}

// Len returns the number of stored tuples.
func (tx *Tx) Len() int { return tx.s.store.Len() }

// CountMatching returns how many stored tuples match tmpl.
func (tx *Tx) CountMatching(tmpl tuple.Tuple) int {
	return tx.s.store.Count(tmpl)
}

// ForEach visits stored tuples in insertion order until fn returns false.
func (tx *Tx) ForEach(fn func(tuple.Tuple) bool) {
	tx.s.store.ForEach(fn)
}
