package space_test

import (
	"fmt"
	"testing"

	"peats/internal/bench"
	"peats/internal/space"
	"peats/internal/tuple"
)

// Store benchmarks: slice vs indexed at 10 / 100 / 10k resident tuples
// with mixed arities, reporting ns/op for rdp, inp and cas. The probed
// template carries a defined first field (the tag), the shape every
// consensus object in this repository uses.
//
//	go test ./internal/space -bench=BenchmarkStore -benchmem

func storeEngines() []struct {
	name string
	mk   func() space.Store
} {
	return []struct {
		name string
		mk   func() space.Store
	}{
		{"slice", func() space.Store { return space.NewSliceStore() }},
		{"indexed", func() space.Store { return space.NewIndexedStore() }},
	}
}

var storeSizes = []int{10, 100, 10000}

func BenchmarkStoreRdp(b *testing.B) {
	tmpl := tuple.T(tuple.Str("needle"), tuple.Any())
	for _, eng := range storeEngines() {
		for _, size := range storeSizes {
			b.Run(fmt.Sprintf("%s/n=%d", eng.name, size), func(b *testing.B) {
				st := eng.mk()
				bench.StoreFill(st, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, ok := st.Find(tmpl, false); !ok {
						b.Fatal("needle not found")
					}
				}
			})
		}
	}
}

func BenchmarkStoreInp(b *testing.B) {
	tmpl := tuple.T(tuple.Str("needle"), tuple.Any())
	entry := tuple.T(tuple.Str("needle"), tuple.Int(0))
	for _, eng := range storeEngines() {
		for _, size := range storeSizes {
			b.Run(fmt.Sprintf("%s/n=%d", eng.name, size), func(b *testing.B) {
				st := eng.mk()
				seq := bench.StoreFill(st, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, ok := st.Find(tmpl, true); !ok {
						b.Fatal("needle not found")
					}
					st.Insert(entry, seq)
					seq++
				}
			})
		}
	}
}

func BenchmarkStoreCas(b *testing.B) {
	// cas on an absent tuple: the read always misses (full candidate
	// scan) and the insert runs every iteration; inp cleans up to keep
	// the resident size stable.
	tmpl := tuple.T(tuple.Str("absent"), tuple.Any())
	entry := tuple.T(tuple.Str("absent"), tuple.Int(1))
	for _, eng := range storeEngines() {
		for _, size := range storeSizes {
			b.Run(fmt.Sprintf("%s/n=%d", eng.name, size), func(b *testing.B) {
				st := eng.mk()
				seq := bench.StoreFill(st, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, ok := st.Find(tmpl, false); !ok {
						st.Insert(entry, seq)
						seq++
					}
					if _, _, ok := st.Find(tmpl, true); !ok {
						b.Fatal("cas entry vanished")
					}
				}
			})
		}
	}
}

// BenchmarkStoreInsertBatch compares installing a 10k-tuple snapshot
// via per-tuple Insert against one InsertBatch call — the Restore /
// checkpoint-install path.
func BenchmarkStoreInsertBatch(b *testing.B) {
	const n = 10000
	tuples := make([]space.SeqTuple, n)
	for i := range tuples {
		tuples[i] = space.SeqTuple{
			Seq: uint64(i + 1),
			T:   tuple.T(tuple.Str(fmt.Sprintf("tag%d", i%17)), tuple.Int(int64(i))),
		}
	}
	for _, eng := range storeEngines() {
		b.Run(eng.name+"/insert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := eng.mk()
				for _, st2 := range tuples {
					st.Insert(st2.T, st2.Seq)
				}
			}
		})
		b.Run(eng.name+"/insertbatch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := eng.mk()
				st.InsertBatch(tuples)
			}
		})
	}
}

// TestInsertBatchEquivalent holds InsertBatch to the Store contract:
// observationally identical to per-tuple Insert on both engines.
func TestInsertBatchEquivalent(t *testing.T) {
	tuples := make([]space.SeqTuple, 200)
	for i := range tuples {
		tuples[i] = space.SeqTuple{
			Seq: uint64(i + 2),
			T:   tuple.T(tuple.Str(fmt.Sprintf("tag%d", i%7)), tuple.Int(int64(i))),
		}
	}
	for _, eng := range storeEngines() {
		one, batch := eng.mk(), eng.mk()
		one.Insert(tuple.T(tuple.Str("pre")), 1)
		batch.Insert(tuple.T(tuple.Str("pre")), 1)
		for _, tu := range tuples {
			one.Insert(tu.T, tu.Seq)
		}
		batch.InsertBatch(tuples)
		if one.Len() != batch.Len() {
			t.Fatalf("%s: Len %d vs %d", eng.name, one.Len(), batch.Len())
		}
		a, b := one.Snapshot(), batch.Snapshot()
		for i := range a {
			if a[i].Seq != b[i].Seq || a[i].T.String() != b[i].T.String() {
				t.Fatalf("%s: snapshot diverges at %d: %v vs %v", eng.name, i, a[i], b[i])
			}
		}
		tmpl := tuple.T(tuple.Str("tag3"), tuple.Any())
		g1, s1, ok1 := one.Find(tmpl, true)
		g2, s2, ok2 := batch.Find(tmpl, true)
		if ok1 != ok2 || s1 != s2 || g1.String() != g2.String() {
			t.Fatalf("%s: Find diverges: %v/%v vs %v/%v", eng.name, g1, ok1, g2, ok2)
		}
	}
}

// TestIndexedSpeedupAtScale is the acceptance check for the engine: at
// 10k resident tuples the indexed store must beat the slice store by at
// least 5x on rdp and inp of a keyed template. It uses testing.Benchmark
// so the claim is enforced by `go test`, not just observable via -bench.
func TestIndexedSpeedupAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 10000
	tmpl := tuple.T(tuple.Str("needle"), tuple.Any())
	entry := tuple.T(tuple.Str("needle"), tuple.Int(0))

	measure := func(mk func() space.Store, remove bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			st := mk()
			seq := bench.StoreFill(st, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := st.Find(tmpl, remove); !ok {
					b.Fatal("needle not found")
				}
				if remove {
					st.Insert(entry, seq)
					seq++
				}
			}
		})
		return float64(res.NsPerOp())
	}

	for _, op := range []struct {
		name   string
		remove bool
	}{{"rdp", false}, {"inp", true}} {
		slice := measure(func() space.Store { return space.NewSliceStore() }, op.remove)
		indexed := measure(func() space.Store { return space.NewIndexedStore() }, op.remove)
		speedup := slice / indexed
		t.Logf("%s at n=%d: slice %.0f ns/op, indexed %.0f ns/op, speedup %.1fx",
			op.name, n, slice, indexed, speedup)
		if speedup < 5 {
			t.Errorf("%s speedup %.1fx, want ≥ 5x", op.name, speedup)
		}
	}
}
