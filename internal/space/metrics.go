package space

import (
	"strconv"

	"peats/internal/metrics"
)

// EnableMetrics registers the space's metric series: live tuple counts
// (total and per shard), parked blocking callers, and transaction lock
// acquisitions by class. Call before serving traffic; gauge functions
// read only atomics or take shard read locks, so scrapes never change
// what a transaction observes. A nil registry is a no-op.
func (s *Space) EnableMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	const lockHelp = "Transaction lock acquisitions by class (whole_write = Do, whole_read = DoRead, scoped_write = DoScoped)."
	cls := func(c string) []metrics.Label {
		return append(append([]metrics.Label(nil), labels...), metrics.L("class", c))
	}
	s.mDo = reg.Counter("peats_space_lock_acquisitions_total", lockHelp, cls("whole_write")...)
	s.mDoRead = reg.Counter("peats_space_lock_acquisitions_total", lockHelp, cls("whole_read")...)
	s.mDoScoped = reg.Counter("peats_space_lock_acquisitions_total", lockHelp, cls("scoped_write")...)

	reg.GaugeFunc("peats_space_tuples",
		"Live tuples across all shards.",
		func() float64 { return float64(s.Len()) }, labels...)
	reg.GaugeFunc("peats_space_blocked_waiters",
		"Blocking rd/in calls currently parked on a template.",
		func() float64 { return float64(s.blockedWaiters.Load()) }, labels...)
	for i := range s.shards {
		sh := s.shards[i]
		shardLabels := append(append([]metrics.Label(nil), labels...),
			metrics.L("shard", strconv.Itoa(i)))
		reg.GaugeFunc("peats_space_shard_tuples",
			"Live tuples in one shard.",
			func() float64 {
				sh.mu.RLock()
				n := sh.store.Len()
				sh.mu.RUnlock()
				return float64(n)
			}, shardLabels...)
	}
}
