package space

import "peats/internal/tuple"

// IndexedStore is the production storage engine. Tuples are bucketed by
// arity and, within an arity, hashed on the canonical key of their
// first field, so the common template shapes — a defined tag field
// followed by wildcards or formals, as used by every consensus object
// and universal construction in this repository — match in O(bucket)
// instead of O(space).
//
// Insertion order is preserved through the space-assigned sequence
// numbers: each record carries the seq it was inserted with, and every
// index list is append-only and therefore seq-sorted. A lookup scans
// exactly one candidate list in seq order, so the first full match it
// encounters is the first match in insertion order — the same tuple the
// reference SliceStore returns. Key collisions only add skipped
// candidates, never reordered ones, so the determinism contract of
// Store holds and the space remains a deterministic state machine for
// the BFT substrate.
//
// Removal marks records dead in place (O(1)) and the store compacts
// all index structures once at least half the records are dead, keeping
// amortised cost per operation constant. Removal scans additionally
// trim dead records from the head of the list they walked, so
// queue-like workloads (out/in on one key) do not accumulate tombstones
// in their hot list. Pure reads (Find with remove=false, FindAll,
// Count, ForEach, Snapshot) never mutate anything — the Store
// concurrency contract — so the sharded space can run them under
// shared locks.
type IndexedStore struct {
	live    int
	order   []*irec // global insertion (seq) order; may contain dead records
	buckets map[int]*arityBucket
}

// irec is one stored tuple plus its bookkeeping. The same record is
// shared by the global order list and the per-arity index lists, so
// marking it dead is visible everywhere at once.
type irec struct {
	seq  uint64
	t    tuple.Tuple
	dead bool
}

// arityBucket indexes the records of one arity.
type arityBucket struct {
	live  int
	all   []*irec            // seq order; for templates with an undefined first field
	byKey map[string][]*irec // first-field key → seq order
}

var _ Store = (*IndexedStore)(nil)

// compactMin is the order-list length below which compaction is not
// worth the rebuild.
const compactMin = 32

// NewIndexedStore returns an empty indexed store.
func NewIndexedStore() *IndexedStore {
	return &IndexedStore{buckets: make(map[int]*arityBucket)}
}

// Engine implements Store.
func (s *IndexedStore) Engine() Engine { return EngineIndexed }

// Insert implements Store.
func (s *IndexedStore) Insert(t tuple.Tuple, seq uint64) {
	r := &irec{seq: seq, t: t}
	s.order = append(s.order, r)
	s.index(r)
	s.live++
}

// InsertBatch implements Store. Records for the whole batch share one
// backing allocation and the order list grows once, so index building
// on large snapshots (Restore, checkpoint install) is amortized across
// the batch instead of paying per-tuple allocation and growth.
func (s *IndexedStore) InsertBatch(ts []SeqTuple) {
	if len(ts) == 0 {
		return
	}
	recs := make([]irec, len(ts))
	if need := len(s.order) + len(ts); cap(s.order) < need {
		grown := make([]*irec, len(s.order), need)
		copy(grown, s.order)
		s.order = grown
	}
	for i, st := range ts {
		r := &recs[i]
		r.seq = st.Seq
		r.t = st.T
		s.order = append(s.order, r)
		s.index(r)
	}
	s.live += len(ts)
}

// index files r into its arity bucket. Tuples whose first field is
// undefined (non-entries installed by Restore) get no key entry; they
// can never match a template, so keyed lookups may skip them.
func (s *IndexedStore) index(r *irec) {
	arity := r.t.Arity()
	b := s.buckets[arity]
	if b == nil {
		b = &arityBucket{byKey: make(map[string][]*irec)}
		s.buckets[arity] = b
	}
	b.all = append(b.all, r)
	if key, ok := r.t.Field(0).MatchKey(); ok {
		b.byKey[key] = append(b.byKey[key], r)
	}
	b.live++
}

// candidates returns the one index list that holds every possible match
// for tmpl, in seq order: the first-field key list when the template's
// first field is defined, the whole arity bucket otherwise.
func (s *IndexedStore) candidates(tmpl tuple.Tuple) (b *arityBucket, list []*irec, key string, keyed bool) {
	b = s.buckets[tmpl.Arity()]
	if b == nil || b.live == 0 {
		return nil, nil, "", false
	}
	if key, ok := tmpl.Field(0).MatchKey(); ok {
		return b, b.byKey[key], key, true
	}
	return b, b.all, "", false
}

// Find implements Store. The remove=false path is a pure scan — no
// trimming, no compaction — per the Store concurrency contract.
func (s *IndexedStore) Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, uint64, bool) {
	b, list, key, keyed := s.candidates(tmpl)
	if b == nil {
		return tuple.Tuple{}, 0, false
	}
	if !remove {
		for _, r := range list {
			if !r.dead && tuple.Matches(r.t, tmpl) {
				return r.t, r.seq, true
			}
		}
		return tuple.Tuple{}, 0, false
	}
	kept, t, seq, ok := s.remove(list, tmpl)
	if keyed {
		if len(kept) == 0 {
			delete(b.byKey, key)
		} else {
			b.byKey[key] = kept
		}
	} else {
		b.all = kept
	}
	if ok {
		s.maybeCompact()
	}
	return t, seq, ok
}

// remove walks list in seq order for the first record matching tmpl and
// marks it dead. It returns the list with any contiguous dead head
// trimmed off.
func (s *IndexedStore) remove(list []*irec, tmpl tuple.Tuple) (kept []*irec, t tuple.Tuple, seq uint64, ok bool) {
	head := 0
	for i, r := range list {
		if r.dead {
			if i == head {
				head++
			}
			continue
		}
		if !tuple.Matches(r.t, tmpl) {
			continue
		}
		t, seq = r.t, r.seq
		r.dead = true
		// Release the tuple immediately: records can share a
		// batch-allocated backing array (InsertBatch), so a dead
		// record must not pin its payload until the whole batch
		// compacts away.
		r.t = tuple.Tuple{}
		s.live--
		s.buckets[t.Arity()].live--
		if i == head {
			head++
		}
		return list[head:], t, seq, true
	}
	return list[head:], tuple.Tuple{}, 0, false
}

// FindAll implements Store.
func (s *IndexedStore) FindAll(tmpl tuple.Tuple) []SeqTuple {
	_, list, _, _ := s.candidates(tmpl)
	var out []SeqTuple
	for _, r := range list {
		if !r.dead && tuple.Matches(r.t, tmpl) {
			out = append(out, SeqTuple{Seq: r.seq, T: r.t})
		}
	}
	return out
}

// Count implements Store.
func (s *IndexedStore) Count(tmpl tuple.Tuple) int {
	_, list, _, _ := s.candidates(tmpl)
	n := 0
	for _, r := range list {
		if !r.dead && tuple.Matches(r.t, tmpl) {
			n++
		}
	}
	return n
}

// Len implements Store.
func (s *IndexedStore) Len() int { return s.live }

// ForEach implements Store.
func (s *IndexedStore) ForEach(fn func(t tuple.Tuple, seq uint64) bool) {
	for _, r := range s.order {
		if r.dead {
			continue
		}
		if !fn(r.t, r.seq) {
			return
		}
	}
}

// Iter implements Store.
func (s *IndexedStore) Iter() func() (SeqTuple, bool) {
	i := 0
	return func() (SeqTuple, bool) {
		for i < len(s.order) {
			r := s.order[i]
			i++
			if !r.dead {
				return SeqTuple{Seq: r.seq, T: r.t}, true
			}
		}
		return SeqTuple{}, false
	}
}

// Snapshot implements Store.
func (s *IndexedStore) Snapshot() []SeqTuple {
	cp := make([]SeqTuple, 0, s.live)
	for _, r := range s.order {
		if !r.dead {
			cp = append(cp, SeqTuple{Seq: r.seq, T: r.t})
		}
	}
	return cp
}

// Reset implements Store.
func (s *IndexedStore) Reset() {
	s.live = 0
	s.order = nil
	s.buckets = make(map[int]*arityBucket)
}

// maybeCompact rebuilds every index structure without the dead records
// once they outnumber the live ones. Relative seq order is preserved,
// so observable behaviour is unchanged.
func (s *IndexedStore) maybeCompact() {
	if len(s.order) < compactMin || s.live*2 >= len(s.order) {
		return
	}
	order := make([]*irec, 0, s.live)
	for _, r := range s.order {
		if !r.dead {
			order = append(order, r)
		}
	}
	s.order = order
	s.buckets = make(map[int]*arityBucket)
	for _, r := range order {
		s.index(r)
	}
}
