package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Partitioned deployments split the tuple space across M independent
// BFT groups. Cross-partition submissions run a two-phase protocol: the
// coordinator (an untrusted client) sends each participant group a
// TxPrepare carrying that group's slice of the transaction, collects
// BFT-agreed votes, and delivers a TxDecision justified by vote
// certificates. Every message here is carried as the Op payload of an
// ordinary agreed request, so the prepare/abort decision of each group
// is itself the output of its BFT agreement.
//
// The payload tags live above the policy op-code range and beside
// spaceTxTag (0xF5) so a one-byte peek classifies any submission.
const (
	txPrepareTag  = 0xF6
	txDecisionTag = 0xF7
	txStatusTag   = 0xF8
)

// Transaction outcome states carried in TxOutcome.State.
const (
	// TxVoteYes: the group executed its slice successfully and holds a
	// reservation; it will commit iff shown an all-YES certificate set.
	TxVoteYes = 1
	// TxVoteNo: the group's slice aborted (denial, inp miss, malformed);
	// the transaction is pinned aborted at this group.
	TxVoteNo = 2
	// TxCommitted / TxAborted: a decision has been applied.
	TxCommitted = 3
	TxAborted   = 4
)

// Bounds on variable-length partition message fields.
const (
	// MaxTxParticipants bounds the participant list of one transaction.
	MaxTxParticipants = 1 << 8
	// MaxTxID bounds the transaction identifier length.
	MaxTxID = 1 << 7
	// MaxCertSigs bounds the attestation list of one vote certificate.
	MaxCertSigs = 1 << 8
)

// IsPartitionOp reports whether b is a partition 2PC payload
// (TxPrepare, TxDecision or TxStatus).
func IsPartitionOp(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	switch b[0] {
	case txPrepareTag, txDecisionTag, txStatusTag:
		return true
	}
	return false
}

// IsTxPrepare reports whether b encodes a TxPrepare.
func IsTxPrepare(b []byte) bool { return len(b) > 0 && b[0] == txPrepareTag }

// IsTxDecision reports whether b encodes a TxDecision.
func IsTxDecision(b []byte) bool { return len(b) > 0 && b[0] == txDecisionTag }

// IsTxStatus reports whether b encodes a TxStatus.
func IsTxStatus(b []byte) bool { return len(b) > 0 && b[0] == txStatusTag }

// TxPrepare asks one group to vote on its slice of a cross-partition
// transaction. Participants is the full (sorted) group list so every
// participant learns, through agreement, who else must vote YES before
// a commit certificate can exist.
type TxPrepare struct {
	TxID         string
	Participants []string
	Ops          []SpaceOp
}

// EncodeTxPrepare encodes a prepare payload.
func EncodeTxPrepare(p TxPrepare) []byte {
	w := NewWriter()
	w.Byte(txPrepareTag)
	w.String(p.TxID)
	w.Uvarint(uint64(len(p.Participants)))
	for _, g := range p.Participants {
		w.String(g)
	}
	w.Uvarint(uint64(len(p.Ops)))
	for _, op := range p.Ops {
		appendSpaceOp(w, op)
	}
	return w.Data()
}

// DecodeTxPrepare decodes a prepare payload.
func DecodeTxPrepare(b []byte) (TxPrepare, error) {
	r := NewReader(b)
	if r.Byte() != txPrepareTag {
		return TxPrepare{}, errors.New("wire: not a tx-prepare payload")
	}
	var p TxPrepare
	p.TxID = r.String()
	if len(p.TxID) == 0 || len(p.TxID) > MaxTxID {
		return TxPrepare{}, fmt.Errorf("wire: tx id length %d out of range", len(p.TxID))
	}
	ng := r.Uvarint()
	if r.Err() == nil && (ng == 0 || ng > MaxTxParticipants) {
		return TxPrepare{}, fmt.Errorf("wire: %d tx participants out of range", ng)
	}
	for i := uint64(0); i < ng && r.Err() == nil; i++ {
		p.Participants = append(p.Participants, r.String())
	}
	no := r.Uvarint()
	if r.Err() == nil && (no == 0 || no > MaxTxOps) {
		return TxPrepare{}, fmt.Errorf("wire: %d tx ops out of range", no)
	}
	for i := uint64(0); i < no && r.Err() == nil; i++ {
		op, err := readSpaceOp(r)
		if err != nil {
			return TxPrepare{}, err
		}
		p.Ops = append(p.Ops, op)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return TxPrepare{}, err
	}
	return p, nil
}

// TxOutcome is the agreed result of every partition 2PC payload: the
// vote of a prepare, the recorded state answered by a status query, and
// the post-state of a decision. For YES votes Results carries the
// slice's per-op results so the coordinator can assemble the client's
// reply without a second round.
type TxOutcome struct {
	TxID         string
	State        uint8
	Participants []string
	Results      []SpaceResult
}

// EncodeTxOutcome encodes an outcome. The encoding is canonical: equal
// outcomes encode to equal bytes, which both reply voting and vote
// certificates rely on.
func EncodeTxOutcome(o TxOutcome) []byte {
	w := NewWriter()
	w.String(o.TxID)
	w.Byte(o.State)
	w.Uvarint(uint64(len(o.Participants)))
	for _, g := range o.Participants {
		w.String(g)
	}
	w.Uvarint(uint64(len(o.Results)))
	for _, res := range o.Results {
		appendSpaceResult(w, res)
	}
	return w.Data()
}

// DecodeTxOutcome decodes an outcome.
func DecodeTxOutcome(b []byte) (TxOutcome, error) {
	r := NewReader(b)
	var o TxOutcome
	o.TxID = r.String()
	if len(o.TxID) == 0 || len(o.TxID) > MaxTxID {
		return TxOutcome{}, fmt.Errorf("wire: tx id length %d out of range", len(o.TxID))
	}
	o.State = r.Byte()
	if r.Err() == nil {
		switch o.State {
		case TxVoteYes, TxVoteNo, TxCommitted, TxAborted:
		default:
			return TxOutcome{}, fmt.Errorf("wire: unknown tx state %d", o.State)
		}
	}
	ng := r.Uvarint()
	if r.Err() == nil && ng > MaxTxParticipants {
		return TxOutcome{}, fmt.Errorf("wire: %d tx participants out of range", ng)
	}
	for i := uint64(0); i < ng && r.Err() == nil; i++ {
		o.Participants = append(o.Participants, r.String())
	}
	nr := r.Uvarint()
	if r.Err() == nil && nr > MaxTxOps {
		return TxOutcome{}, fmt.Errorf("wire: %d tx results out of range", nr)
	}
	for i := uint64(0); i < nr && r.Err() == nil; i++ {
		res, err := readSpaceResult(r)
		if err != nil {
			return TxOutcome{}, err
		}
		o.Results = append(o.Results, res)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return TxOutcome{}, err
	}
	return o, nil
}

// Attestation is one replica's signature over an attest payload.
type Attestation struct {
	Replica string
	Sig     []byte
}

// VoteCert is transferable evidence that a group agreed on an outcome:
// the outcome's encoded bytes plus attestations from 2f+1 of the
// group's replicas. Groups verify certificates against the deployment
// topology, so an untrusted coordinator cannot forge another group's
// vote.
type VoteCert struct {
	Group   string
	Outcome []byte
	Atts    []Attestation
}

func appendVoteCert(w *Writer, c VoteCert) {
	w.String(c.Group)
	w.Bytes(c.Outcome)
	w.Uvarint(uint64(len(c.Atts)))
	for _, a := range c.Atts {
		w.String(a.Replica)
		w.Bytes(a.Sig)
	}
}

func readVoteCert(r *Reader) (VoteCert, error) {
	var c VoteCert
	c.Group = r.String()
	c.Outcome = r.Bytes()
	na := r.Uvarint()
	if r.Err() == nil && na > MaxCertSigs {
		return VoteCert{}, fmt.Errorf("wire: %d cert attestations out of range", na)
	}
	for i := uint64(0); i < na && r.Err() == nil; i++ {
		var a Attestation
		a.Replica = r.String()
		a.Sig = r.Bytes()
		c.Atts = append(c.Atts, a)
	}
	if err := r.Err(); err != nil {
		return VoteCert{}, err
	}
	return c, nil
}

// TxDecision delivers the coordinator's commit/abort decision together
// with the vote certificates that justify it. A commit must prove every
// participant voted YES; an abort must prove some participant voted NO
// (or was pinned aborted). Each group re-validates the justification
// under agreement and ignores unjustified decisions, so conflicting
// decisions sent by a Byzantine coordinator cannot diverge outcomes.
type TxDecision struct {
	TxID   string
	Commit bool
	Certs  []VoteCert
}

// EncodeTxDecision encodes a decision payload.
func EncodeTxDecision(d TxDecision) []byte {
	w := NewWriter()
	w.Byte(txDecisionTag)
	w.String(d.TxID)
	w.Bool(d.Commit)
	w.Uvarint(uint64(len(d.Certs)))
	for _, c := range d.Certs {
		appendVoteCert(w, c)
	}
	return w.Data()
}

// DecodeTxDecision decodes a decision payload.
func DecodeTxDecision(b []byte) (TxDecision, error) {
	r := NewReader(b)
	if r.Byte() != txDecisionTag {
		return TxDecision{}, errors.New("wire: not a tx-decision payload")
	}
	var d TxDecision
	d.TxID = r.String()
	if len(d.TxID) == 0 || len(d.TxID) > MaxTxID {
		return TxDecision{}, fmt.Errorf("wire: tx id length %d out of range", len(d.TxID))
	}
	d.Commit = r.Bool()
	nc := r.Uvarint()
	if r.Err() == nil && nc > MaxTxParticipants {
		return TxDecision{}, fmt.Errorf("wire: %d decision certs out of range", nc)
	}
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		c, err := readVoteCert(r)
		if err != nil {
			return TxDecision{}, err
		}
		d.Certs = append(d.Certs, c)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return TxDecision{}, err
	}
	return d, nil
}

// TxStatus queries a group's agreed record of a transaction. Unknown
// transactions are pinned aborted by the query itself (presumed abort),
// which gives crashed-coordinator recovery a terminating protocol: once
// every participant has answered, the answers determine the unique
// valid decision.
type TxStatus struct {
	TxID string
}

// EncodeTxStatus encodes a status payload.
func EncodeTxStatus(s TxStatus) []byte {
	w := NewWriter()
	w.Byte(txStatusTag)
	w.String(s.TxID)
	return w.Data()
}

// DecodeTxStatus decodes a status payload.
func DecodeTxStatus(b []byte) (TxStatus, error) {
	r := NewReader(b)
	if r.Byte() != txStatusTag {
		return TxStatus{}, errors.New("wire: not a tx-status payload")
	}
	var s TxStatus
	s.TxID = r.String()
	if len(s.TxID) == 0 || len(s.TxID) > MaxTxID {
		return TxStatus{}, fmt.Errorf("wire: tx id length %d out of range", len(s.TxID))
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return TxStatus{}, err
	}
	return s, nil
}

// attestDomain separates attestation signatures from any other use of
// the replicas' signing keys.
var attestDomain = []byte("peats-attest\x00")

// AttestPayload is the byte string a replica signs to attest that its
// group agreed on result bytes: a domain tag, the group identity and
// the result digest. Binding the group prevents replaying an
// attestation from one group against another.
func AttestPayload(group string, result []byte) []byte {
	sum := sha256.Sum256(result)
	p := make([]byte, 0, len(attestDomain)+10+len(group)+len(sum))
	p = append(p, attestDomain...)
	p = binary.AppendUvarint(p, uint64(len(group)))
	p = append(p, group...)
	p = append(p, sum[:]...)
	return p
}
