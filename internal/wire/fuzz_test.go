package wire

import (
	"testing"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// The decoders face bytes from Byzantine clients and replicas: they may
// reject, but must never panic or hang. Each fuzz target also
// round-trips whatever decodes successfully, pinning that accepted
// inputs re-encode to an equivalent value.

func FuzzDecodeSpaceOp(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	for _, op := range sampleOps() {
		f.Add(EncodeSpaceOp(op))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		op, err := DecodeSpaceOp(b)
		if err != nil {
			return
		}
		back, err := DecodeSpaceOp(EncodeSpaceOp(op))
		if err != nil {
			t.Fatalf("re-decode of accepted op failed: %v", err)
		}
		if back.Op != op.Op || !back.Template.Equal(op.Template) || !back.Entry.Equal(op.Entry) {
			t.Fatalf("round trip diverged: %+v != %+v", back, op)
		}
	})
}

func FuzzDecodeSpaceTx(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF5})
	f.Add([]byte{0xF5, 0x02, 0x01})
	f.Add(EncodeSpaceTx(SpaceTx{Ops: sampleOps()}))
	f.Add(EncodeSpaceTx(SpaceTx{Ops: []SpaceOp{
		{Op: policy.OpOut, Entry: tuple.T(tuple.Bytes([]byte{0, 1, 2}))},
	}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		tx, err := DecodeSpaceTx(b)
		if err != nil {
			return
		}
		if len(tx.Ops) == 0 || len(tx.Ops) > MaxTxOps {
			t.Fatalf("accepted tx with %d ops", len(tx.Ops))
		}
		if _, err := DecodeSpaceTx(EncodeSpaceTx(tx)); err != nil {
			t.Fatalf("re-decode of accepted tx failed: %v", err)
		}
	})
}

func FuzzDecodeSpaceResult(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	f.Add(EncodeSpaceResult(SpaceResult{Status: StatusOK, Found: true,
		Tuple: tuple.T(tuple.Str("A"), tuple.Int(1))}))
	f.Add(EncodeSpaceResult(SpaceResult{Status: StatusDenied, Detail: "d"}))
	f.Add(EncodeSpaceResults([]SpaceResult{
		{Status: StatusOK}, {Status: StatusSkipped},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		// Both the scalar and the vector decoder must be total on
		// arbitrary bytes.
		if res, err := DecodeSpaceResult(b); err == nil {
			if _, err := DecodeSpaceResult(EncodeSpaceResult(res)); err != nil {
				t.Fatalf("re-decode of accepted result failed: %v", err)
			}
		}
		if rs, err := DecodeSpaceResults(b); err == nil {
			if _, err := DecodeSpaceResults(EncodeSpaceResults(rs)); err != nil {
				t.Fatalf("re-decode of accepted vector failed: %v", err)
			}
		}
	})
}
