package wire

import (
	"errors"
	"testing"
	"testing/quick"

	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(300)
	w.Varint(-42)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Tuple(tuple.T(tuple.Str("X"), tuple.Int(9), tuple.Formal("v")))

	r := NewReader(w.Data())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -42 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	tu := r.Tuple()
	if !tu.Equal(tuple.T(tuple.Str("X"), tuple.Int(9), tuple.Formal("v"))) {
		t.Errorf("Tuple = %v", tu)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter()
	w.String("abcdef")
	data := w.Data()

	r := NewReader(data[:3])
	_ = r.String()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", r.Err())
	}

	// Error sticks: later reads return zero values without panicking.
	if r.Byte() != 0 || r.Uvarint() != 0 || r.String() != "" {
		t.Error("reads after error should return zero values")
	}

	// Trailing bytes detected.
	r2 := NewReader(append(data, 0xff))
	_ = r2.String()
	r2.ExpectEOF()
	if r2.Err() == nil {
		t.Error("trailing bytes not detected")
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r := NewReader(nil)
	_ = r.Byte()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Error("reading from empty input should fail")
	}
}

func TestBytesIsCopy(t *testing.T) {
	w := NewWriter()
	w.Bytes([]byte{9, 9})
	data := w.Data()
	r := NewReader(data)
	got := r.Bytes()
	got[0] = 1
	r2 := NewReader(data)
	if r2.Bytes()[0] != 9 {
		t.Error("Bytes aliased the input buffer")
	}
}

func TestSpaceOpRoundTrip(t *testing.T) {
	ops := []SpaceOp{
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Op: policy.OpRdp, Template: tuple.T(tuple.Str("A"), tuple.Any())},
		{Op: policy.OpInp, Template: tuple.T(tuple.Str("A"), tuple.Formal("x"))},
		{Op: policy.OpCas,
			Template: tuple.T(tuple.Str("D"), tuple.Formal("d")),
			Entry:    tuple.T(tuple.Str("D"), tuple.Int(5))},
	}
	for _, op := range ops {
		got, err := DecodeSpaceOp(EncodeSpaceOp(op))
		if err != nil {
			t.Fatalf("%v: %v", op.Op, err)
		}
		if got.Op != op.Op || !got.Template.Equal(op.Template) || !got.Entry.Equal(op.Entry) {
			t.Errorf("round trip mismatch: %+v vs %+v", got, op)
		}
	}
}

func TestSpaceOpRejectsUnsupported(t *testing.T) {
	// Blocking ops do not travel on the wire.
	for _, op := range []policy.Op{policy.OpRd, policy.OpIn, policy.Op(99)} {
		enc := EncodeSpaceOp(SpaceOp{Op: op})
		if _, err := DecodeSpaceOp(enc); err == nil {
			t.Errorf("op %v accepted", op)
		}
	}
	if _, err := DecodeSpaceOp([]byte{}); err == nil {
		t.Error("empty op accepted")
	}
	if _, err := DecodeSpaceOp([]byte{byte(policy.OpOut)}); err == nil {
		t.Error("truncated op accepted")
	}
}

func TestSpaceResultRoundTrip(t *testing.T) {
	results := []SpaceResult{
		{Status: StatusOK, Inserted: true},
		{Status: StatusOK, Found: true, Tuple: tuple.T(tuple.Str("X"), tuple.Int(3))},
		{Status: StatusDenied, Detail: "policy violation: Rcas"},
		{Status: StatusError, Detail: "malformed"},
	}
	for _, res := range results {
		got, err := DecodeSpaceResult(EncodeSpaceResult(res))
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != res.Status || got.Inserted != res.Inserted ||
			got.Found != res.Found || !got.Tuple.Equal(res.Tuple) || got.Detail != res.Detail {
			t.Errorf("round trip mismatch: %+v vs %+v", got, res)
		}
	}
}

func TestSpaceResultRejectsBadStatus(t *testing.T) {
	enc := EncodeSpaceResult(SpaceResult{Status: Status(99)})
	if _, err := DecodeSpaceResult(enc); err == nil {
		t.Error("bad status accepted")
	}
	if _, err := DecodeSpaceResult(nil); err == nil {
		t.Error("empty result accepted")
	}
}

func TestSpaceResultCanonical(t *testing.T) {
	// Equal results encode identically — the property client voting
	// depends on.
	a := EncodeSpaceResult(SpaceResult{Status: StatusOK, Found: true,
		Tuple: tuple.T(tuple.Str("T"), tuple.Int(1))})
	b := EncodeSpaceResult(SpaceResult{Status: StatusOK, Found: true,
		Tuple: tuple.T(tuple.Str("T"), tuple.Int(1))})
	if string(a) != string(b) {
		t.Error("equal results encode differently")
	}
}

func TestWireProperty(t *testing.T) {
	f := func(u uint64, v int64, s string, bs []byte) bool {
		w := NewWriter()
		w.Uvarint(u)
		w.Varint(v)
		w.String(s)
		w.Bytes(bs)
		r := NewReader(w.Data())
		gu, gv, gs, gb := r.Uvarint(), r.Varint(), r.String(), r.Bytes()
		r.ExpectEOF()
		return r.Err() == nil && gu == u && gv == v && gs == s && string(gb) == string(bs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
