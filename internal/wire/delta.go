package wire

import (
	"fmt"

	"peats/internal/tuple"
)

// Delta is an incremental checkpoint: the ordered list of state-machine
// mutations executed since the previous checkpoint. Replicas of the
// replication substrate produce identical deltas for identical executed
// sequences (the space is a deterministic state machine), so a delta
// both extends the chained checkpoint digest and, applied to the
// previous checkpoint's state, reproduces the next one — which is what
// lets checkpointing cost O(changes) instead of O(space).
//
// Tuple mutations are value-addressed, not sequence-addressed: a
// removal names the removed tuple itself, and applying it removes the
// first stored tuple equal to that value (entries used as templates
// match exactly their own value, and identical tuples are consumed in
// ascending insertion order — the same rule the staged executor uses).
// That keeps deltas replica-independent: space-internal sequence
// numbers may differ across replicas after a state transfer, but
// insertion order, and therefore value-addressed application, never
// does.
//
// Partitioned deployments additionally journal 2PC *events* — a
// reservation parked by a YES prepare, a commit/abort decision, an
// aborted pin from a status probe — so the pending and decided
// transaction tables stay expressible incrementally instead of forcing
// a full snapshot per partition operation. Events replay through the
// same table transitions the source execution performed, in the same
// order relative to the tuple mutations, which reproduces both the
// tables and the reservation freezes exactly.
type Delta struct {
	Ops []DeltaOp
}

// DeltaOp kinds. Insert and Remove keep the values the legacy boolean
// encoding used (a remove flag written as one byte), so pre-partition
// deltas decode unchanged.
const (
	DeltaInsert  = 0 // insert tuple T
	DeltaRemove  = 1 // remove first stored tuple equal to T
	DeltaReserve = 2 // park a prepared transaction's reservation
	DeltaDecide  = 3 // apply a justified decision to a pending transaction
	DeltaPin     = 4 // pin an unknown transaction aborted (presumed abort)
)

// DeltaOp is one mutation of a delta. Kind selects which fields are
// meaningful: Insert/Remove carry T; Reserve carries TxID, Parts,
// Removed (by value), Inserts, and the stored YES outcome bytes;
// Decide carries TxID and Commit; Pin carries TxID.
type DeltaOp struct {
	Kind    uint8
	T       tuple.Tuple
	TxID    string
	Parts   []string
	Removed []tuple.Tuple
	Inserts []tuple.Tuple
	Outcome []byte
	Commit  bool
}

// MaxDeltaOps bounds decoded delta lengths so a malformed or hostile
// delta cannot force huge allocations. A checkpoint interval is at
// most window (1024) batches of at most maxBatch requests, but honest
// deltas are far smaller; the bound only needs to stop abuse.
const MaxDeltaOps = 1 << 20

// EncodeDelta returns the canonical encoding of d. Equal logical deltas
// encode to equal bytes — the chained checkpoint digest depends on it.
func EncodeDelta(d Delta) []byte {
	w := NewWriter()
	w.Uvarint(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		w.Byte(op.Kind)
		switch op.Kind {
		case DeltaInsert, DeltaRemove:
			w.Tuple(op.T)
		case DeltaReserve:
			w.String(op.TxID)
			w.Uvarint(uint64(len(op.Parts)))
			for _, g := range op.Parts {
				w.String(g)
			}
			w.Uvarint(uint64(len(op.Removed)))
			for _, t := range op.Removed {
				w.Tuple(t)
			}
			w.Uvarint(uint64(len(op.Inserts)))
			for _, t := range op.Inserts {
				w.Tuple(t)
			}
			w.Bytes(op.Outcome)
		case DeltaDecide:
			w.String(op.TxID)
			w.Bool(op.Commit)
		case DeltaPin:
			w.String(op.TxID)
		default:
			panic(fmt.Sprintf("wire: encoding delta op of unknown kind %d", op.Kind))
		}
	}
	return w.Data()
}

// DecodeDelta parses an encoded delta. Like every wire decoder it faces
// bytes from possibly Byzantine peers: it may reject, but must never
// panic or over-allocate.
func DecodeDelta(b []byte) (Delta, error) {
	r := NewReader(b)
	count := r.Uvarint()
	if count > MaxDeltaOps {
		return Delta{}, fmt.Errorf("decode delta: %d ops", count)
	}
	var d Delta
	if count > 0 && r.Err() == nil {
		d.Ops = make([]DeltaOp, 0, min(count, 1024))
		for i := uint64(0); i < count; i++ {
			op, err := decodeDeltaOp(r)
			if err != nil {
				return Delta{}, fmt.Errorf("decode delta: op %d: %w", i, err)
			}
			if r.Err() != nil {
				break
			}
			d.Ops = append(d.Ops, op)
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Delta{}, fmt.Errorf("decode delta: %w", err)
	}
	return d, nil
}

// decodeDeltaOp reads one op. Structural bound violations are returned
// as errors; byte-level truncation surfaces through the reader's error
// state instead.
func decodeDeltaOp(r *Reader) (DeltaOp, error) {
	op := DeltaOp{Kind: r.Byte()}
	switch op.Kind {
	case DeltaInsert, DeltaRemove:
		op.T = r.Tuple()
	case DeltaReserve:
		op.TxID = r.String()
		if r.Err() == nil && (op.TxID == "" || len(op.TxID) > MaxTxID) {
			return DeltaOp{}, fmt.Errorf("reserve txID of %d bytes", len(op.TxID))
		}
		ng := r.Uvarint()
		if r.Err() == nil && (ng == 0 || ng > MaxTxParticipants) {
			return DeltaOp{}, fmt.Errorf("reserve with %d participants", ng)
		}
		for j := uint64(0); j < ng && r.Err() == nil; j++ {
			op.Parts = append(op.Parts, r.String())
		}
		nr := r.Uvarint()
		if r.Err() == nil && nr > MaxTxOps {
			return DeltaOp{}, fmt.Errorf("reserve with %d removals", nr)
		}
		for j := uint64(0); j < nr && r.Err() == nil; j++ {
			op.Removed = append(op.Removed, r.Tuple())
		}
		ni := r.Uvarint()
		if r.Err() == nil && ni > MaxTxOps {
			return DeltaOp{}, fmt.Errorf("reserve with %d inserts", ni)
		}
		for j := uint64(0); j < ni && r.Err() == nil; j++ {
			op.Inserts = append(op.Inserts, r.Tuple())
		}
		op.Outcome = r.Bytes()
	case DeltaDecide:
		op.TxID = r.String()
		if r.Err() == nil && (op.TxID == "" || len(op.TxID) > MaxTxID) {
			return DeltaOp{}, fmt.Errorf("decide txID of %d bytes", len(op.TxID))
		}
		op.Commit = r.Bool()
	case DeltaPin:
		op.TxID = r.String()
		if r.Err() == nil && (op.TxID == "" || len(op.TxID) > MaxTxID) {
			return DeltaOp{}, fmt.Errorf("pin txID of %d bytes", len(op.TxID))
		}
	default:
		return DeltaOp{}, fmt.Errorf("unknown kind %d", op.Kind)
	}
	return op, nil
}
