package wire

import (
	"fmt"

	"peats/internal/tuple"
)

// Delta is an incremental checkpoint: the ordered list of tuple-space
// mutations executed since the previous checkpoint. Replicas of the
// replication substrate produce identical deltas for identical executed
// sequences (the space is a deterministic state machine), so a delta
// both extends the chained checkpoint digest and, applied to the
// previous checkpoint's state, reproduces the next one — which is what
// lets checkpointing cost O(changes) instead of O(space).
//
// Mutations are value-addressed, not sequence-addressed: a removal
// names the removed tuple itself, and applying it removes the first
// stored tuple equal to that value (entries used as templates match
// exactly their own value, and identical tuples are consumed in
// ascending insertion order — the same rule the staged executor uses).
// That keeps deltas replica-independent: space-internal sequence
// numbers may differ across replicas after a state transfer, but
// insertion order, and therefore value-addressed application, never
// does.
type Delta struct {
	Ops []DeltaOp
}

// DeltaOp is one mutation of a delta: the insertion or removal of a
// tuple value.
type DeltaOp struct {
	Remove bool
	T      tuple.Tuple
}

// MaxDeltaOps bounds decoded delta lengths so a malformed or hostile
// delta cannot force huge allocations. A checkpoint interval is at
// most window (1024) batches of at most maxBatch requests, but honest
// deltas are far smaller; the bound only needs to stop abuse.
const MaxDeltaOps = 1 << 20

// EncodeDelta returns the canonical encoding of d. Equal logical deltas
// encode to equal bytes — the chained checkpoint digest depends on it.
func EncodeDelta(d Delta) []byte {
	w := NewWriter()
	w.Uvarint(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		w.Bool(op.Remove)
		w.Tuple(op.T)
	}
	return w.Data()
}

// DecodeDelta parses an encoded delta. Like every wire decoder it faces
// bytes from possibly Byzantine peers: it may reject, but must never
// panic or over-allocate.
func DecodeDelta(b []byte) (Delta, error) {
	r := NewReader(b)
	count := r.Uvarint()
	if count > MaxDeltaOps {
		return Delta{}, fmt.Errorf("decode delta: %d ops", count)
	}
	var d Delta
	if count > 0 && r.Err() == nil {
		d.Ops = make([]DeltaOp, 0, min(count, 1024))
		for i := uint64(0); i < count; i++ {
			op := DeltaOp{Remove: r.Bool()}
			op.T = r.Tuple()
			if r.Err() != nil {
				break
			}
			d.Ops = append(d.Ops, op)
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Delta{}, fmt.Errorf("decode delta: %w", err)
	}
	return d, nil
}
