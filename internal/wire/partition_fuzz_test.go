package wire

import (
	"testing"
)

// Partition 2PC payloads arrive from untrusted coordinators and are fed
// straight into agreed execution, so their decoders must be total:
// reject freely, never panic or hang, and round-trip whatever they
// accept.

func FuzzDecodeTxPrepare(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF6})
	f.Add([]byte{0xF6, 0x01, 'x'})
	f.Add(EncodeTxPrepare(TxPrepare{
		TxID:         "tx-1",
		Participants: []string{"g0", "g1"},
		Ops:          sampleOps(),
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodeTxPrepare(b)
		if err != nil {
			return
		}
		if len(p.TxID) == 0 || len(p.Participants) == 0 || len(p.Ops) == 0 {
			t.Fatalf("accepted empty prepare: %+v", p)
		}
		back, err := DecodeTxPrepare(EncodeTxPrepare(p))
		if err != nil {
			t.Fatalf("re-decode of accepted prepare failed: %v", err)
		}
		if back.TxID != p.TxID || len(back.Participants) != len(p.Participants) || len(back.Ops) != len(p.Ops) {
			t.Fatalf("round trip diverged: %+v != %+v", back, p)
		}
	})
}

func FuzzDecodeTxDecision(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF7})
	f.Add([]byte{0xF7, 0x01, 'x', 0x01, 0x01})
	f.Add(EncodeTxDecision(TxDecision{
		TxID:   "tx-1",
		Commit: true,
		Certs: []VoteCert{{
			Group:   "g0",
			Outcome: EncodeTxOutcome(TxOutcome{TxID: "tx-1", State: TxVoteYes}),
			Atts:    []Attestation{{Replica: "r0", Sig: []byte{1, 2, 3}}},
		}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeTxDecision(b)
		if err != nil {
			return
		}
		back, err := DecodeTxDecision(EncodeTxDecision(d))
		if err != nil {
			t.Fatalf("re-decode of accepted decision failed: %v", err)
		}
		if back.TxID != d.TxID || back.Commit != d.Commit || len(back.Certs) != len(d.Certs) {
			t.Fatalf("round trip diverged: %+v != %+v", back, d)
		}
	})
}

func FuzzDecodeTxStatus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xF8})
	f.Add(EncodeTxStatus(TxStatus{TxID: "tx-1"}))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeTxStatus(b)
		if err != nil {
			return
		}
		back, err := DecodeTxStatus(EncodeTxStatus(s))
		if err != nil || back.TxID != s.TxID {
			t.Fatalf("round trip diverged: %+v / %v", back, err)
		}
	})
}

func FuzzDecodeTxOutcome(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 'x', 0x01, 0x00, 0x00})
	f.Add(EncodeTxOutcome(TxOutcome{
		TxID:         "tx-1",
		State:        TxVoteYes,
		Participants: []string{"g0", "g1"},
		Results:      []SpaceResult{{Status: StatusOK, Inserted: true}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		o, err := DecodeTxOutcome(b)
		if err != nil {
			return
		}
		back, err := DecodeTxOutcome(EncodeTxOutcome(o))
		if err != nil {
			t.Fatalf("re-decode of accepted outcome failed: %v", err)
		}
		if back.TxID != o.TxID || back.State != o.State ||
			len(back.Participants) != len(o.Participants) || len(back.Results) != len(o.Results) {
			t.Fatalf("round trip diverged: %+v != %+v", back, o)
		}
	})
}
