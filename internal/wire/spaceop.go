package wire

import (
	"fmt"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// SpaceOp is one tuple-space operation shipped to the replicated PEATS.
// Blocking rd/in are realised client-side by polling rdp/inp, so only
// the non-blocking operations and cas travel on the wire (the DEPSPACE
// realisation does the same).
type SpaceOp struct {
	Op       policy.Op
	Template tuple.Tuple // rdp/inp/cas
	Entry    tuple.Tuple // out/cas
}

// EncodeSpaceOp returns the canonical encoding of op.
func EncodeSpaceOp(op SpaceOp) []byte {
	w := NewWriter()
	w.Byte(byte(op.Op))
	w.Tuple(op.Template)
	w.Tuple(op.Entry)
	return w.Data()
}

// DecodeSpaceOp parses an encoded operation.
func DecodeSpaceOp(b []byte) (SpaceOp, error) {
	r := NewReader(b)
	op := SpaceOp{Op: policy.Op(r.Byte())}
	op.Template = r.Tuple()
	op.Entry = r.Tuple()
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return SpaceOp{}, fmt.Errorf("decode space op: %w", err)
	}
	switch op.Op {
	case policy.OpOut, policy.OpRdp, policy.OpInp, policy.OpCas, policy.OpRdAll:
	default:
		return SpaceOp{}, fmt.Errorf("decode space op: unsupported op %v", op.Op)
	}
	return op, nil
}

// Status of an executed space operation.
type Status uint8

// Space-operation statuses.
const (
	StatusOK     Status = iota + 1 // executed
	StatusDenied                   // rejected by the reference monitor
	StatusError                    // malformed operation
)

// SpaceResult is the deterministic outcome of a SpaceOp, produced
// identically by every correct replica.
type SpaceResult struct {
	Status   Status
	Inserted bool          // cas: entry was inserted
	Found    bool          // rdp/inp: a tuple matched
	Tuple    tuple.Tuple   // matched tuple, when Found or failed cas
	Tuples   []tuple.Tuple // rdAll: every matching tuple
	Detail   string        // denial/error detail
}

// EncodeSpaceResult returns the canonical encoding of res.
func EncodeSpaceResult(res SpaceResult) []byte {
	w := NewWriter()
	w.Byte(byte(res.Status))
	w.Bool(res.Inserted)
	w.Bool(res.Found)
	w.Tuple(res.Tuple)
	w.Uvarint(uint64(len(res.Tuples)))
	for _, t := range res.Tuples {
		w.Tuple(t)
	}
	w.String(res.Detail)
	return w.Data()
}

// DecodeSpaceResult parses an encoded result.
func DecodeSpaceResult(b []byte) (SpaceResult, error) {
	r := NewReader(b)
	res := SpaceResult{Status: Status(r.Byte())}
	res.Inserted = r.Bool()
	res.Found = r.Bool()
	res.Tuple = r.Tuple()
	count := r.Uvarint()
	if count > 1<<20 {
		return SpaceResult{}, fmt.Errorf("decode space result: %d tuples", count)
	}
	for i := uint64(0); i < count; i++ {
		res.Tuples = append(res.Tuples, r.Tuple())
	}
	res.Detail = r.String()
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return SpaceResult{}, fmt.Errorf("decode space result: %w", err)
	}
	if res.Status < StatusOK || res.Status > StatusError {
		return SpaceResult{}, fmt.Errorf("decode space result: bad status %d", res.Status)
	}
	return res, nil
}
