package wire

import (
	"fmt"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// SpaceOp is one tuple-space operation shipped to the replicated PEATS.
// Blocking rd/in are realised client-side by polling rdp/inp, so only
// the non-blocking operations and cas travel on the wire (the DEPSPACE
// realisation does the same).
type SpaceOp struct {
	Op       policy.Op
	Template tuple.Tuple // rdp/inp/cas
	Entry    tuple.Tuple // out/cas
}

// EncodeSpaceOp returns the canonical encoding of op.
func EncodeSpaceOp(op SpaceOp) []byte {
	w := NewWriter()
	appendSpaceOp(w, op)
	return w.Data()
}

func appendSpaceOp(w *Writer, op SpaceOp) {
	w.Byte(byte(op.Op))
	w.Tuple(op.Template)
	w.Tuple(op.Entry)
}

// readSpaceOp parses one operation body (no EOF check, so the caller
// can read several in sequence).
func readSpaceOp(r *Reader) (SpaceOp, error) {
	op := SpaceOp{Op: policy.Op(r.Byte())}
	op.Template = r.Tuple()
	op.Entry = r.Tuple()
	if err := r.Err(); err != nil {
		return SpaceOp{}, err
	}
	switch op.Op {
	case policy.OpOut, policy.OpRdp, policy.OpInp, policy.OpCas, policy.OpRdAll:
	default:
		return SpaceOp{}, fmt.Errorf("unsupported op %v", op.Op)
	}
	return op, nil
}

// DecodeSpaceOp parses an encoded operation.
func DecodeSpaceOp(b []byte) (SpaceOp, error) {
	r := NewReader(b)
	op, err := readSpaceOp(r)
	if err != nil {
		return SpaceOp{}, fmt.Errorf("decode space op: %w", err)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return SpaceOp{}, fmt.Errorf("decode space op: %w", err)
	}
	return op, nil
}

// spaceTxTag is the leading byte of an encoded SpaceTx. It is disjoint
// from every policy.Op value, so a request payload self-describes as a
// single operation or a transaction.
const spaceTxTag = 0xF5

// MaxTxOps bounds the operations decoded per transaction, so a
// Byzantine client cannot force huge allocations on every replica.
const MaxTxOps = 1 << 10

// SpaceTx is an ordered list of tuple-space operations submitted for
// execution as one atomic unit: every replica decodes the list, vets
// each operation through the reference monitor against the state the
// preceding operations produced, and executes the whole list in one
// space critical section, replying with one SpaceResult per operation.
type SpaceTx struct {
	Ops []SpaceOp
}

// EncodeSpaceTx returns the canonical encoding of tx.
func EncodeSpaceTx(tx SpaceTx) []byte {
	w := NewWriter()
	w.Byte(spaceTxTag)
	w.Uvarint(uint64(len(tx.Ops)))
	for _, op := range tx.Ops {
		appendSpaceOp(w, op)
	}
	return w.Data()
}

// IsSpaceTx reports whether b carries an encoded SpaceTx (as opposed to
// a single SpaceOp).
func IsSpaceTx(b []byte) bool {
	return len(b) > 0 && b[0] == spaceTxTag
}

// DecodeSpaceTx parses an encoded transaction.
func DecodeSpaceTx(b []byte) (SpaceTx, error) {
	r := NewReader(b)
	if r.Byte() != spaceTxTag {
		return SpaceTx{}, fmt.Errorf("decode space tx: missing tag")
	}
	count := r.Uvarint()
	if count == 0 {
		if err := r.Err(); err != nil {
			return SpaceTx{}, fmt.Errorf("decode space tx: %w", err)
		}
		return SpaceTx{}, fmt.Errorf("decode space tx: empty transaction")
	}
	if count > MaxTxOps {
		return SpaceTx{}, fmt.Errorf("decode space tx: %d ops", count)
	}
	tx := SpaceTx{Ops: make([]SpaceOp, 0, count)}
	for i := uint64(0); i < count; i++ {
		op, err := readSpaceOp(r)
		if err != nil {
			return SpaceTx{}, fmt.Errorf("decode space tx: op %d: %w", i, err)
		}
		tx.Ops = append(tx.Ops, op)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return SpaceTx{}, fmt.Errorf("decode space tx: %w", err)
	}
	return tx, nil
}

// Status of an executed space operation.
type Status uint8

// Space-operation statuses.
const (
	StatusOK      Status = iota + 1 // executed
	StatusDenied                    // rejected by the reference monitor
	StatusError                     // malformed operation
	StatusSkipped                   // not executed: an earlier op aborted the transaction
)

// SpaceResult is the deterministic outcome of a SpaceOp, produced
// identically by every correct replica.
type SpaceResult struct {
	Status   Status
	Inserted bool          // cas: entry was inserted
	Found    bool          // rdp/inp: a tuple matched
	Tuple    tuple.Tuple   // matched tuple, when Found or failed cas
	Tuples   []tuple.Tuple // rdAll: every matching tuple
	Detail   string        // denial/error detail
}

// EncodeSpaceResult returns the canonical encoding of res.
func EncodeSpaceResult(res SpaceResult) []byte {
	w := NewWriter()
	appendSpaceResult(w, res)
	return w.Data()
}

func appendSpaceResult(w *Writer, res SpaceResult) {
	w.Byte(byte(res.Status))
	w.Bool(res.Inserted)
	w.Bool(res.Found)
	w.Tuple(res.Tuple)
	w.Uvarint(uint64(len(res.Tuples)))
	for _, t := range res.Tuples {
		w.Tuple(t)
	}
	w.String(res.Detail)
}

// readSpaceResult parses one result body (no EOF check).
func readSpaceResult(r *Reader) (SpaceResult, error) {
	res := SpaceResult{Status: Status(r.Byte())}
	res.Inserted = r.Bool()
	res.Found = r.Bool()
	res.Tuple = r.Tuple()
	count := r.Uvarint()
	if count > 1<<20 {
		return SpaceResult{}, fmt.Errorf("%d tuples", count)
	}
	for i := uint64(0); i < count; i++ {
		res.Tuples = append(res.Tuples, r.Tuple())
	}
	res.Detail = r.String()
	if err := r.Err(); err != nil {
		return SpaceResult{}, err
	}
	if res.Status < StatusOK || res.Status > StatusSkipped {
		return SpaceResult{}, fmt.Errorf("bad status %d", res.Status)
	}
	return res, nil
}

// DecodeSpaceResult parses an encoded result.
func DecodeSpaceResult(b []byte) (SpaceResult, error) {
	r := NewReader(b)
	res, err := readSpaceResult(r)
	if err != nil {
		return SpaceResult{}, fmt.Errorf("decode space result: %w", err)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return SpaceResult{}, fmt.Errorf("decode space result: %w", err)
	}
	return res, nil
}

// EncodeSpaceResults returns the canonical encoding of a transaction's
// per-operation result vector.
func EncodeSpaceResults(rs []SpaceResult) []byte {
	w := NewWriter()
	w.Uvarint(uint64(len(rs)))
	for _, res := range rs {
		appendSpaceResult(w, res)
	}
	return w.Data()
}

// DecodeSpaceResults parses an encoded result vector.
func DecodeSpaceResults(b []byte) ([]SpaceResult, error) {
	r := NewReader(b)
	count := r.Uvarint()
	if count > MaxTxOps {
		return nil, fmt.Errorf("decode space results: %d results", count)
	}
	rs := make([]SpaceResult, 0, count)
	for i := uint64(0); i < count; i++ {
		res, err := readSpaceResult(r)
		if err != nil {
			return nil, fmt.Errorf("decode space results: result %d: %w", i, err)
		}
		rs = append(rs, res)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode space results: %w", err)
	}
	return rs, nil
}
