package wire

import (
	"testing"

	"peats/internal/tuple"
)

func sampleDelta() Delta {
	return Delta{Ops: []DeltaOp{
		{T: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Remove: true, T: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{T: tuple.T(tuple.Bytes([]byte{0, 1, 2}))},
		{T: tuple.T(tuple.Bool(true), tuple.Str("x"), tuple.Int(-9))},
	}}
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, d := range []Delta{{}, sampleDelta()} {
		got, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got.Ops) != len(d.Ops) {
			t.Fatalf("ops %d, want %d", len(got.Ops), len(d.Ops))
		}
		for i := range d.Ops {
			if got.Ops[i].Remove != d.Ops[i].Remove || !got.Ops[i].T.Equal(d.Ops[i].T) {
				t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], d.Ops[i])
			}
		}
	}
}

func TestDeltaDeterministicEncoding(t *testing.T) {
	d := sampleDelta()
	a, b := EncodeDelta(d), EncodeDelta(d)
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeDeltaRejects(t *testing.T) {
	cases := [][]byte{
		{0x02},                                   // truncated ops
		{0xff, 0xff, 0xff, 0xff, 0x7f},           // absurd count
		append(EncodeDelta(sampleDelta()), 0x00), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeDelta(b); err == nil {
			t.Errorf("case %d: accepted malformed delta", i)
		}
	}
}

func FuzzDecodeDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(EncodeDelta(sampleDelta()))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelta(b)
		if err != nil {
			return
		}
		if uint64(len(d.Ops)) > MaxDeltaOps {
			t.Fatalf("accepted delta with %d ops", len(d.Ops))
		}
		back, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
		if len(back.Ops) != len(d.Ops) {
			t.Fatalf("round trip diverged: %d != %d ops", len(back.Ops), len(d.Ops))
		}
		for i := range d.Ops {
			if back.Ops[i].Remove != d.Ops[i].Remove || !back.Ops[i].T.Equal(d.Ops[i].T) {
				t.Fatalf("round trip diverged at op %d", i)
			}
		}
	})
}
