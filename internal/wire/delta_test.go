package wire

import (
	"bytes"
	"testing"

	"peats/internal/tuple"
)

func sampleDelta() Delta {
	return Delta{Ops: []DeltaOp{
		{Kind: DeltaInsert, T: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Kind: DeltaRemove, T: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Kind: DeltaInsert, T: tuple.T(tuple.Bytes([]byte{0, 1, 2}))},
		{Kind: DeltaInsert, T: tuple.T(tuple.Bool(true), tuple.Str("x"), tuple.Int(-9))},
		{
			Kind: DeltaReserve, TxID: "c1:7:aa", Parts: []string{"g0", "g1"},
			Removed: []tuple.Tuple{tuple.T(tuple.Str("A"), tuple.Int(1))},
			Inserts: []tuple.Tuple{tuple.T(tuple.Str("B"))},
			Outcome: []byte{0xf7, 0x01, 0x02},
		},
		{Kind: DeltaReserve, TxID: "c2:1:bb", Parts: []string{"g0"}},
		{Kind: DeltaDecide, TxID: "c1:7:aa", Commit: true},
		{Kind: DeltaDecide, TxID: "c2:1:bb"},
		{Kind: DeltaPin, TxID: "ghost:9:cc"},
	}}
}

func deltaOpsEqual(a, b DeltaOp) bool {
	if a.Kind != b.Kind || !a.T.Equal(b.T) || a.TxID != b.TxID || a.Commit != b.Commit {
		return false
	}
	if len(a.Parts) != len(b.Parts) || !bytes.Equal(a.Outcome, b.Outcome) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	if len(a.Removed) != len(b.Removed) || len(a.Inserts) != len(b.Inserts) {
		return false
	}
	for i := range a.Removed {
		if !a.Removed[i].Equal(b.Removed[i]) {
			return false
		}
	}
	for i := range a.Inserts {
		if !a.Inserts[i].Equal(b.Inserts[i]) {
			return false
		}
	}
	return true
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, d := range []Delta{{}, sampleDelta()} {
		got, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got.Ops) != len(d.Ops) {
			t.Fatalf("ops %d, want %d", len(got.Ops), len(d.Ops))
		}
		for i := range d.Ops {
			if !deltaOpsEqual(got.Ops[i], d.Ops[i]) {
				t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], d.Ops[i])
			}
		}
	}
}

func TestDeltaDeterministicEncoding(t *testing.T) {
	d := sampleDelta()
	a, b := EncodeDelta(d), EncodeDelta(d)
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecodeDeltaRejects(t *testing.T) {
	cases := [][]byte{
		{0x02},                                   // truncated ops
		{0xff, 0xff, 0xff, 0xff, 0x7f},           // absurd count
		append(EncodeDelta(sampleDelta()), 0x00), // trailing bytes
		{0x01, 0x05},                             // unknown op kind
		{0x01, DeltaPin, 0x00},                   // pin with empty txID
		{0x01, DeltaDecide, 0x01, 'x'},           // decide truncated before flag
		{0x01, DeltaReserve, 0x01, 'x', 0x00},    // reserve with zero participants
	}
	for i, b := range cases {
		if _, err := DecodeDelta(b); err == nil {
			t.Errorf("case %d: accepted malformed delta", i)
		}
	}
}

func FuzzDecodeDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(EncodeDelta(sampleDelta()))
	f.Add(EncodeDelta(Delta{Ops: []DeltaOp{{Kind: DeltaPin, TxID: "a:1:ff"}}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelta(b)
		if err != nil {
			return
		}
		if uint64(len(d.Ops)) > MaxDeltaOps {
			t.Fatalf("accepted delta with %d ops", len(d.Ops))
		}
		back, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
		if len(back.Ops) != len(d.Ops) {
			t.Fatalf("round trip diverged: %d != %d ops", len(back.Ops), len(d.Ops))
		}
		for i := range d.Ops {
			if !deltaOpsEqual(back.Ops[i], d.Ops[i]) {
				t.Fatalf("round trip diverged at op %d", i)
			}
		}
	})
}
