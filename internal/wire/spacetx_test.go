package wire

import (
	"testing"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// sameResult compares results semantically: a decoded zero tuple has an
// empty (non-nil) field slice, so struct equality is too strict.
func sameResult(a, b SpaceResult) bool {
	if a.Status != b.Status || a.Inserted != b.Inserted || a.Found != b.Found ||
		a.Detail != b.Detail || !a.Tuple.Equal(b.Tuple) || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return false
		}
	}
	return true
}

func sampleOps() []SpaceOp {
	return []SpaceOp{
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Op: policy.OpRdp, Template: tuple.T(tuple.Str("A"), tuple.Formal("v"))},
		{Op: policy.OpInp, Template: tuple.T(tuple.Any(), tuple.Int(2))},
		{Op: policy.OpCas,
			Template: tuple.T(tuple.Str("D"), tuple.Any()),
			Entry:    tuple.T(tuple.Str("D"), tuple.Bool(true))},
		{Op: policy.OpRdAll, Template: tuple.T(tuple.Str("A"), tuple.Any())},
	}
}

func TestSpaceTxRoundTrip(t *testing.T) {
	tx := SpaceTx{Ops: sampleOps()}
	b := EncodeSpaceTx(tx)
	if !IsSpaceTx(b) {
		t.Fatal("encoded tx not recognised")
	}
	got, err := DecodeSpaceTx(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tx.Ops) {
		t.Fatalf("%d ops, want %d", len(got.Ops), len(tx.Ops))
	}
	for i := range tx.Ops {
		if got.Ops[i].Op != tx.Ops[i].Op ||
			!got.Ops[i].Template.Equal(tx.Ops[i].Template) ||
			!got.Ops[i].Entry.Equal(tx.Ops[i].Entry) {
			t.Errorf("op %d: %+v != %+v", i, got.Ops[i], tx.Ops[i])
		}
	}
	// A single-op encoding must NOT look like a tx.
	if IsSpaceTx(EncodeSpaceOp(sampleOps()[0])) {
		t.Error("single op misidentified as tx")
	}
}

func TestSpaceTxDecodeRejections(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"tag only":      {0xF5},
		"zero ops":      {0xF5, 0x00},
		"huge count":    {0xF5, 0xFF, 0xFF, 0xFF, 0x7F},
		"truncated op":  append([]byte{0xF5, 0x01}, 0x01),
		"bad op code":   EncodeSpaceTx(SpaceTx{Ops: []SpaceOp{{Op: policy.OpRd}}}),
		"trailing junk": append(EncodeSpaceTx(SpaceTx{Ops: sampleOps()[:1]}), 0xAA),
	}
	for name, b := range cases {
		if _, err := DecodeSpaceTx(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

func TestSpaceResultsRoundTrip(t *testing.T) {
	rs := []SpaceResult{
		{Status: StatusOK, Found: true, Tuple: tuple.T(tuple.Str("A"), tuple.Int(1))},
		{Status: StatusOK, Inserted: true},
		{Status: StatusOK, Found: true, Tuples: []tuple.Tuple{
			tuple.T(tuple.Int(1)), tuple.T(tuple.Int(2)),
		}},
		{Status: StatusDenied, Detail: "p: inp(<*>) [tx 4/5]"},
		{Status: StatusSkipped},
	}
	got, err := DecodeSpaceResults(EncodeSpaceResults(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("%d results, want %d", len(got), len(rs))
	}
	for i := range rs {
		if !sameResult(got[i], rs[i]) {
			t.Errorf("result %d: %+v != %+v", i, got[i], rs[i])
		}
	}
	// Empty vectors survive too (not produced by replicas, but the
	// codec must be total on its own output).
	if got, err := DecodeSpaceResults(EncodeSpaceResults(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty vector: %v %v", got, err)
	}
}

func TestSpaceResultStatusValidation(t *testing.T) {
	bad := EncodeSpaceResult(SpaceResult{Status: Status(9)})
	if _, err := DecodeSpaceResult(bad); err == nil {
		t.Error("status 9 accepted")
	}
	if _, err := DecodeSpaceResult(EncodeSpaceResult(SpaceResult{Status: StatusSkipped})); err != nil {
		t.Errorf("skipped status rejected: %v", err)
	}
}
