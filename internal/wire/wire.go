// Package wire provides the deterministic binary encoding shared by the
// replication substrate: low-level writer/reader primitives plus the
// encoding of tuple-space operations and their results.
//
// Determinism matters twice: request digests identify operations across
// replicas, and clients vote on reply bytes — equal logical values must
// encode to equal byte strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"peats/internal/tuple"
)

// ErrTruncated is returned when decoding runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// Writer accumulates a length-delimited binary message.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer. The buffer is presized for the
// protocol's typical small messages, so the append chain of a message
// encode usually costs one allocation instead of a growth ladder.
func NewWriter() *Writer { return &Writer{buf: make([]byte, 0, 128)} }

// Data returns the accumulated bytes.
func (w *Writer) Data() []byte { return w.buf }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Tuple appends a tuple in its canonical encoding.
func (w *Writer) Tuple(t tuple.Tuple) { w.buf = tuple.Append(w.buf, t) }

// Reader consumes a binary message produced by Writer. The first
// decoding error sticks; check Err once after reading all fields.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// ExpectEOF records an error if unread bytes remain.
func (r *Reader) ExpectEOF() {
	if r.err == nil && r.off != len(r.buf) {
		r.err = fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad uvarint", ErrTruncated))
		return 0
	}
	r.off += n
	return u
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad varint", ErrTruncated))
		return 0
	}
	r.off += n
	return v
}

// BytesView reads a length-prefixed byte string without copying.
func (r *Reader) BytesView() []byte {
	l := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.off) < l {
		r.fail(fmt.Errorf("%w: byte string", ErrTruncated))
		return nil
	}
	b := r.buf[r.off : r.off+int(l)]
	r.off += int(l)
	return b
}

// Bytes reads a length-prefixed byte string into a fresh slice.
func (r *Reader) Bytes() []byte {
	v := r.BytesView()
	if v == nil {
		return nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.BytesView()) }

// Tuple reads a canonical tuple.
func (r *Reader) Tuple() tuple.Tuple {
	if r.err != nil {
		return tuple.Tuple{}
	}
	t, n, err := tuple.Decode(r.buf[r.off:])
	if err != nil {
		r.fail(err)
		return tuple.Tuple{}
	}
	r.off += n
	return t
}
