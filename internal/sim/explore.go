package sim

import (
	"sync"
	"sync/atomic"
)

// RunSeed builds and runs one seed of a canned schedule family.
func RunSeed(name string, seed int64) (Result, error) {
	sched, err := Canned(name, seed)
	if err != nil {
		return Result{}, err
	}
	return Run(sched), nil
}

// Sweep runs seeds [start, start+count) of the named family across the
// given number of workers and returns the failures (each run is fully
// self-contained, so parallelism is across runs, never within one)
// plus the total loop events fired. An unknown family name surfaces as
// a single failed Result.
func Sweep(name string, start int64, count, workers int) ([]Result, uint64) {
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	var (
		next     atomic.Int64
		events   atomic.Uint64
		mu       sync.Mutex
		failures []Result
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(count) {
					return
				}
				res, err := RunSeed(name, start+i)
				if err != nil {
					res = Result{Schedule: Schedule{Name: name, Seed: start + i}, Err: err}
				}
				events.Add(res.Events)
				if res.Failed() {
					mu.Lock()
					failures = append(failures, res)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return failures, events.Load()
}

func (s Schedule) clone() Schedule {
	c := s
	c.Partitions = append([]Partition(nil), s.Partitions...)
	c.Crashes = append([]Crash(nil), s.Crashes...)
	return c
}

// Minimize greedily shrinks a failing schedule: it zeroes fault
// dimensions and removes scripted events one at a time, keeping every
// simplification under which the failure (deterministically) persists.
// The result is the smallest schedule this descent finds that still
// fails — the starting point for debugging a seed.
func Minimize(s Schedule) Schedule {
	if !Run(s).Failed() {
		return s
	}
	cur := s.clone()
	try := func(mut func(*Schedule)) bool {
		cand := cur.clone()
		mut(&cand)
		if Run(cand).Failed() {
			cur = cand
			return true
		}
		return false
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		if cur.NumByzantine > 0 {
			changed = try(func(c *Schedule) { c.NumByzantine = 0 }) || changed
		}
		for i := len(cur.Crashes) - 1; i >= 0; i-- {
			i := i
			changed = try(func(c *Schedule) {
				c.Crashes = append(c.Crashes[:i:i], c.Crashes[i+1:]...)
			}) || changed
		}
		for i := len(cur.Partitions) - 1; i >= 0; i-- {
			i := i
			changed = try(func(c *Schedule) {
				c.Partitions = append(c.Partitions[:i:i], c.Partitions[i+1:]...)
			}) || changed
		}
		if cur.DropProb > 0 {
			changed = try(func(c *Schedule) { c.DropProb = 0 }) || changed
		}
		if cur.ReorderProb > 0 {
			changed = try(func(c *Schedule) { c.ReorderProb, c.ReorderMax = 0, 0 }) || changed
		}
		if cur.DelayMax > cur.DelayMin {
			changed = try(func(c *Schedule) { c.DelayMax = c.DelayMin }) || changed
		}
		if !changed {
			break
		}
	}
	return cur
}
