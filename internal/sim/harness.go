package sim

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"peats/internal/auth"
	"peats/internal/bft"
	"peats/internal/durable"
	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// Result is one simulated run's outcome. Trace and StateDigest are the
// determinism witnesses: a (schedule, seed) pair must reproduce both
// byte for byte.
type Result struct {
	Schedule    Schedule
	Trace       [32]byte // digest of every observable network/fault event
	StateDigest [32]byte // converged replica state digest
	Executed    uint64   // committed batches at convergence
	Events      uint64   // loop events fired
	Err         error    // nil = all standing invariants held
}

// Failed reports whether the run violated an invariant (or never
// converged).
func (r Result) Failed() bool { return r.Err != nil }

// Run executes one schedule to completion and checks the standing
// invariants. The "twopc" schedule runs the two-group 2PC scenario;
// everything else runs a single 4-replica group.
func Run(sched Schedule) Result {
	if sched.Name == "twopc" {
		return runTwoPC(sched)
	}
	return runSingle(sched)
}

// grace is how long past the horizon a run may take to converge before
// it is declared a liveness failure (virtual time, costs nothing).
const grace = 60 * time.Second

// node is one replica slot of the simulated group, tracking the
// current incarnation (nil while crashed).
type node struct {
	id   string
	rep  *bft.Replica
	svc  *bft.SpaceService
	dir  string // durable data dir; "" = in-memory service
	down bool
}

// harness runs a single 4-replica group under one schedule.
type harness struct {
	sched Schedule
	loop  *Loop
	net   *Net
	nodes []*node

	// krs holds each replica's keyring; clients install their pairwise
	// keys here, and restarted incarnations keep theirs (the keys
	// re-derive from the deployment master, as in a real restart).
	krs map[string]*auth.Keyring

	// ckpts merges every incarnation's checkpoint digests; a seq with
	// two digests is an agreement-safety violation.
	ckpts map[uint64][32]byte
	err   error
}

func (h *harness) fail(format string, args ...any) {
	if h.err == nil {
		h.err = fmt.Errorf(format, args...)
	}
}

// buildService creates a node's service: in-memory, or durable over
// the node's data dir (reopened across crash-restarts).
func (h *harness) buildService(nd *node) (*bft.SpaceService, error) {
	if nd.dir == "" {
		return bft.NewSpaceService(policy.AllowAll()), nil
	}
	// SyncNever: fsync scheduling belongs to real time, and the graceful
	// crash model closes the WAL cleanly anyway (torn-tail recovery is
	// covered by the durable package's own tests).
	db, err := durable.Open(durable.Options{Dir: nd.dir, Sync: durable.SyncNever})
	if err != nil {
		return nil, err
	}
	return bft.NewDurableSpaceService(policy.AllowAll(), db, 1)
}

func (h *harness) replicaIDs() []string {
	ids := make([]string, len(h.nodes))
	for i, nd := range h.nodes {
		ids[i] = nd.id
	}
	return ids
}

// startReplica builds and starts nd's replica incarnation in driven
// mode, wiring its inbound handler into the network.
func (h *harness) startReplica(nd *node) error {
	svc, err := h.buildService(nd)
	if err != nil {
		return err
	}
	var lg *log.Logger
	if simDebug {
		lg = log.New(os.Stderr, nd.id+" ", 0)
	}
	rep, err := bft.NewReplica(bft.ReplicaConfig{
		ID:        nd.id,
		Replicas:  h.replicaIDs(),
		F:         1,
		Transport: h.net.Endpoint(nd.id),
		Service:   svc,
		Logger:    lg,
		// Small checkpoint interval so state transfer and checkpoint
		// agreement are exercised within a short horizon. CompactEvery 1
		// makes every checkpoint a full-state digest — a pure function of
		// the replicated state, which the cross-replica agreement
		// invariant compares (delta-chained digests legitimately dissent
		// until the next re-base, so they cannot be compared directly).
		CheckpointInterval:    4,
		CompactEvery:          1,
		KeepCheckpointHistory: true,
		ViewChangeTimeout:     150 * time.Millisecond,
		BatchSize:             4,
		Keyring:               h.krs[nd.id],
		Clock:                 h.loop.Clock(),
	})
	if err != nil {
		svc.Close()
		return err
	}
	nd.svc, nd.rep = svc, rep
	rep.StartDriven()
	h.net.Register(nd.id, rep.Deliver)
	h.net.SetDown(nd.id, false)
	nd.down = false
	return nil
}

// harvest folds one incarnation's checkpoint digests into the run-wide
// agreement table.
func (h *harness) harvest(nd *node) {
	for seq, d := range nd.rep.CheckpointDigests() {
		if prev, ok := h.ckpts[seq]; ok && prev != d {
			h.fail("checkpoint disagreement at seq %d: %x vs %x (replica %s)", seq, prev, d, nd.id)
		}
		h.ckpts[seq] = d
	}
}

// crash stops a node: timers disarmed, durable engine closed cleanly,
// network slot marked down. In-flight messages toward it are dropped.
func (h *harness) crash(nd *node) {
	if nd.down {
		return
	}
	h.harvest(nd)
	nd.rep.Stop()
	nd.svc.Close()
	h.net.Register(nd.id, nil)
	h.net.SetDown(nd.id, true)
	nd.rep, nd.svc = nil, nil
	nd.down = true
}

func (h *harness) restart(nd *node) {
	if !nd.down {
		return
	}
	if err := h.startReplica(nd); err != nil {
		h.fail("restart %s: %v", nd.id, err)
	}
}

func (h *harness) upNodes() []*node {
	up := make([]*node, 0, len(h.nodes))
	for _, nd := range h.nodes {
		if !nd.down {
			up = append(up, nd)
		}
	}
	return up
}

// converged reports whether every live replica has reached the same
// committed execution point with byte-identical state and no tentative
// overlay in flight.
func (h *harness) converged() bool {
	up := h.upNodes()
	if len(up) == 0 {
		return false
	}
	ref := up[0]
	refDigest := ref.rep.StateDigest()
	for _, nd := range up {
		if nd.svc.TentativeDepth() != 0 {
			return false
		}
		if nd.rep.Executed() != ref.rep.Executed() || nd.rep.StateDigest() != refDigest {
			return false
		}
	}
	return true
}

// workload is one client's scripted op sequence: unique out-tuples
// keyed (client, reqID), so the at-most-once invariant is a tuple
// count.
type workload struct {
	c    *client
	ops  int
	next int
}

func clientTuple(id string, reqID int) tuple.Tuple {
	return tuple.T(tuple.Str(id), tuple.Int(int64(reqID)))
}

func outOp(id string, reqID int) []byte {
	return wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut, Entry: clientTuple(id, reqID)})
}

func (w *workload) pump() {
	if w.next > w.ops || !w.c.idle() {
		return
	}
	n := w.next
	w.next++
	w.c.submit(outOp(w.c.id, n))
}

func (w *workload) done() bool { return w.next > w.ops && w.c.idle() }

func runSingle(sched Schedule) Result {
	res := Result{Schedule: sched}
	loop := NewLoop()
	rng := rand.New(rand.NewSource(sched.Seed))
	h := &harness{
		sched: sched,
		loop:  loop,
		net:   NewNet(loop, rng, &sched),
		ckpts: make(map[uint64][32]byte),
	}
	const n = 4
	var tmp string
	if len(sched.Crashes) > 0 {
		// Crash-restarts reopen real durable data dirs; everything else
		// stays in memory.
		var err error
		tmp, err = os.MkdirTemp("", "peats-sim-")
		if err != nil {
			res.Err = err
			return res
		}
		defer os.RemoveAll(tmp)
	}
	for i := 0; i < n; i++ {
		nd := &node{id: fmt.Sprintf("r%d", i)}
		if tmp != "" {
			nd.dir = filepath.Join(tmp, nd.id)
		}
		h.nodes = append(h.nodes, nd)
	}
	h.krs = makeKeyrings(h.replicaIDs())
	for _, nd := range h.nodes {
		if err := h.startReplica(nd); err != nil {
			res.Err = err
			return res
		}
	}
	// Byzantine replicas are taken from the end of the group so the
	// initial primary stays honest (the fault model bounds them by f).
	// A crash-restarted replica forgets its protocol log (only executed
	// state is in the WAL), which makes it faulty until it catches up —
	// so when the schedule also crashes someone, the Byzantine replica
	// must BE a crash victim, or the run would exceed f total faults
	// and no protocol could keep its guarantees.
	for k := 0; k < sched.NumByzantine && k < 1; k++ {
		byz := h.nodes[n-1-k]
		if len(sched.Crashes) > 0 {
			byz = h.nodes[sched.Crashes[0].Replica%n]
		}
		h.net.SetByzantine(byz.id, true)
	}

	// Workload: two clients racing short op chains through the faults.
	var loads []*workload
	for i := 0; i < 2; i++ {
		c := newClient(fmt.Sprintf("c%d", i), h.net, loop, h.replicaIDs(), 1, h.krs)
		w := &workload{c: c, ops: 6, next: 1}
		c.onResult = func(uint64, []byte) { w.pump() }
		loads = append(loads, w)
		start := time.Duration(10+5*i) * time.Millisecond
		loop.After(start, w.pump)
	}

	// Script the declared faults.
	for _, p := range sched.Partitions {
		minority := make([]string, 0, len(p.Minority))
		for _, idx := range p.Minority {
			minority = append(minority, h.nodes[idx%n].id)
		}
		loop.After(p.At, func() { h.net.Partition(minority) })
		loop.After(p.HealAt, h.net.Heal)
	}
	for _, c := range sched.Crashes {
		nd := h.nodes[c.Replica%n]
		loop.After(c.At, func() { h.crash(nd) })
		if c.RestartAt > 0 {
			loop.After(c.RestartAt, func() { h.restart(nd) })
		}
	}

	loop.RunUntil(epoch.Add(sched.Horizon))

	// Recovery phase: faults off, partitions healed, crashed-forever
	// nodes stay down (≤ f of them). The prober keeps committing fresh
	// operations so post-restart replicas see new checkpoints and can
	// state-transfer past anything the fault window destroyed.
	h.net.Quiesce()
	h.net.Heal()
	prober := newClient("prober", h.net, loop, h.replicaIDs(), 1, h.krs)
	probes := 0
	prober.onResult = func(uint64, []byte) {}
	deadline := epoch.Add(sched.Horizon + grace)
	for h.err == nil {
		allDone := true
		for _, w := range loads {
			w.pump() // restart a stalled chain (e.g. submitted into a dead moment)
			if !w.done() {
				allDone = false
			}
		}
		if allDone && prober.idle() && h.converged() {
			break
		}
		if loop.Now().After(deadline) {
			h.fail("no convergence within %v past the horizon (liveness)", grace)
			if simDebug {
				for _, nd := range h.nodes {
					if nd.down {
						println("DBG", nd.id, "down")
						continue
					}
					d := nd.rep.StateDigest()
					println("DBG", nd.id, "view", int(nd.rep.View()), "executed", int(nd.rep.Executed()),
						"tentative", nd.svc.TentativeDepth(), "digest", fmt.Sprintf("%x", d[:4]))
				}
				for _, w := range loads {
					println("DBG client", w.c.id, "next", w.next, "idle", w.c.idle(), "acked", len(w.c.Acked))
				}
				println("DBG prober idle", prober.idle(), "probes", probes)
			}
			break
		}
		if prober.idle() {
			probes++
			prober.submit(outOp("prober", probes))
		}
		loop.RunUntil(loop.Now().Add(50 * time.Millisecond))
	}

	// Invariants over the converged state.
	up := h.upNodes()
	if h.err == nil && len(up) > 0 {
		for _, nd := range up {
			h.harvest(nd)
		}
		sp := up[0].svc.Space()
		checkOnce := func(id string, acked map[uint64]bool, hi int) {
			for r := 1; r <= hi; r++ {
				cnt := sp.CountMatching(clientTuple(id, r))
				if acked[uint64(r)] && cnt != 1 {
					h.fail("at-most-once: client %s req %d stored %d times, want 1", id, r, cnt)
				} else if !acked[uint64(r)] && cnt > 1 {
					h.fail("at-most-once: client %s req %d stored %d times, want ≤1", id, r, cnt)
				}
			}
		}
		for _, w := range loads {
			checkOnce(w.c.id, w.c.Acked, w.ops)
		}
		checkOnce("prober", prober.Acked, probes)
		res.StateDigest = up[0].rep.StateDigest()
		res.Executed = up[0].rep.Executed()
	}
	for _, nd := range up {
		nd.rep.Stop()
		nd.svc.Close()
	}
	res.Trace = loop.TraceDigest()
	res.Events = loop.Events()
	res.Err = h.err
	return res
}
