package sim

import (
	"crypto/ed25519"
	"math/bits"
	"sort"
	"time"

	"peats/internal/auth"
	"peats/internal/bft"
	"peats/internal/transport"
	"peats/internal/vclock"
	"peats/internal/wire"
)

// retxInterval is how often a sim client rebroadcasts its unanswered
// request (virtual time).
const retxInterval = 100 * time.Millisecond

// simKeyMaster seeds the deterministic pairwise MAC keys of every
// simulated deployment. Client authenticators matter here: a replica
// that missed the original request (drop, partition, crash) can only
// vouch for it in a re-proposed batch via its authenticator, exactly
// as in a real deployment.
var simKeyMaster = []byte("peats-sim-key-master")

// makeKeyrings derives the replica keyrings of one group; newClient
// installs each client's pairwise keys into them, mirroring the
// trusted setup bft.Cluster performs.
func makeKeyrings(ids []string) map[string]*auth.Keyring {
	m := make(map[string]*auth.Keyring, len(ids))
	for _, id := range ids {
		m[id] = auth.NewKeyringFromMaster(simKeyMaster, id, ids)
	}
	return m
}

// client is an event-driven BFT client: the blocking bft.Client owns a
// goroutine and selects on real channels, so the simulator drives this
// reimplementation of its voting rules (2f+1 byte-identical replies,
// tentative and committed camps tallied separately) entirely from loop
// events. One operation is in flight at a time, as the model requires.
type client struct {
	id       string
	net      *Net
	replicas []string
	indexes  map[string]int
	f        int
	group    string
	kr       *auth.Keyring

	reqID    uint64
	current  []byte // encoded op in flight; nil = idle
	payload  []byte // marshalled request, rebroadcast on retransmit
	certMode bool   // current request wants a vote certificate
	camps    map[string]uint64
	tcamps   map[string]uint64
	retx     vclock.Timer

	// onResult is invoked on the loop thread when the in-flight
	// operation is accepted.
	onResult func(reqID uint64, result []byte)

	// Certificate mode (the InvokeCert acceptance rule): only committed
	// replies carrying a valid attestation count, and acceptance yields
	// a transferable vote certificate. Used by the 2PC coordinator.
	attestKeys map[string]ed25519.PublicKey
	atts       map[string]map[string][]byte // result → replica → verified signature
	onCert     func(reqID uint64, result []byte, cert wire.VoteCert)

	// Acked tracks which request IDs completed, for the at-most-once
	// invariant.
	Acked map[uint64]bool
}

func newClient(id string, net *Net, loop *Loop, replicas []string, f int, krs map[string]*auth.Keyring) *client {
	c := &client{
		id: id, net: net, replicas: replicas, f: f,
		kr:      auth.NewKeyringFromMaster(simKeyMaster, id, replicas),
		indexes: make(map[string]int, len(replicas)),
		camps:   make(map[string]uint64),
		tcamps:  make(map[string]uint64),
		Acked:   make(map[uint64]bool),
	}
	for i, rid := range replicas {
		c.indexes[rid] = i
		if kr, ok := krs[rid]; ok {
			kr.SetKey(id, auth.DeriveKey(simKeyMaster, rid, id))
		}
	}
	self := c
	c.retx = loop.Clock().NewTimer(func() { self.retransmit() })
	net.Register(id, c.deliver)
	return c
}

// submit puts one operation in flight. The caller must be idle.
func (c *client) submit(op []byte) {
	c.certMode = false
	c.start(op)
}

// submitCert puts one operation in flight under the certificate
// acceptance rule; onCert fires on acceptance instead of onResult.
func (c *client) submitCert(op []byte) {
	c.certMode = true
	c.atts = make(map[string]map[string][]byte)
	c.start(op)
}

func (c *client) start(op []byte) {
	c.reqID++
	c.current = op
	req := bft.Request{Client: c.id, ReqID: c.reqID, Op: op, Group: c.group}
	d := req.Digest()
	req.Auth = make([][]byte, len(c.replicas))
	for i, rid := range c.replicas {
		mac, err := c.kr.MAC(rid, d[:])
		if err != nil {
			panic("sim: mac request: " + err.Error())
		}
		req.Auth[i] = mac
	}
	payload, err := bft.Marshal(req)
	if err != nil {
		panic("sim: marshal request: " + err.Error())
	}
	c.payload = payload
	clear(c.camps)
	clear(c.tcamps)
	c.broadcast()
	c.retx.Reset(retxInterval)
}

func (c *client) broadcast() {
	ep := c.net.Endpoint(c.id)
	for _, rid := range c.replicas {
		_ = ep.SendClass(rid, c.payload, transport.ClassRequest)
	}
}

func (c *client) retransmit() {
	if c.current == nil {
		return
	}
	c.broadcast()
	c.retx.Reset(retxInterval)
}

func (c *client) idle() bool { return c.current == nil }

// deliver processes one inbound message: replies vote per the client
// acceptance rule, everything else is ignored.
func (c *client) deliver(m transport.Inbound) {
	if c.current == nil {
		return
	}
	msg, err := bft.Unmarshal(m.Payload)
	if err != nil {
		return // Byzantine mutation or noise
	}
	rep, ok := msg.(bft.Reply)
	if !ok || rep.Replica != m.From || rep.Client != c.id || rep.ReqID != c.reqID || rep.ReadOnly {
		return
	}
	idx, ok := c.indexes[rep.Replica]
	if !ok {
		return
	}
	if c.certMode {
		c.deliverCert(rep)
		return
	}
	camps := c.camps
	if rep.Tentative {
		camps = c.tcamps
	}
	camps[string(rep.Result)] |= 1 << uint(idx)
	if bits.OnesCount64(camps[string(rep.Result)]) >= 2*c.f+1 {
		result := rep.Result
		id := c.reqID
		c.current = nil
		c.payload = nil
		c.retx.Stop()
		c.Acked[id] = true
		if c.onResult != nil {
			c.onResult(id, result)
		}
	}
}

// deliverCert is the certificate-mode half of deliver: committed
// replies with valid attestation signatures accumulate until 2f+1
// distinct replicas back one result, which then forms a vote
// certificate (mirroring bft.Client.InvokeCert).
func (c *client) deliverCert(rep bft.Reply) {
	if rep.Tentative {
		return // only committed results are attested
	}
	pub, ok := c.attestKeys[rep.Replica]
	if !ok || len(rep.Attest) != ed25519.SignatureSize ||
		!ed25519.Verify(pub, wire.AttestPayload(c.group, rep.Result), rep.Attest) {
		return
	}
	camp := c.atts[string(rep.Result)]
	if camp == nil {
		camp = make(map[string][]byte)
		c.atts[string(rep.Result)] = camp
	}
	camp[rep.Replica] = rep.Attest
	if len(camp) < 2*c.f+1 {
		return
	}
	cert := wire.VoteCert{Group: c.group, Outcome: rep.Result}
	ids := make([]string, 0, len(camp))
	for id := range camp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cert.Atts = append(cert.Atts, wire.Attestation{Replica: id, Sig: camp[id]})
	}
	result := rep.Result
	id := c.reqID
	c.current = nil
	c.payload = nil
	c.retx.Stop()
	c.Acked[id] = true
	if c.onCert != nil {
		c.onCert(id, result, cert)
	}
}

// decodeOutcome parses a reply result as a transaction outcome; used by
// the 2PC scenario.
func decodeOutcome(result []byte) (wire.TxOutcome, bool) {
	o, err := wire.DecodeTxOutcome(result)
	if err != nil {
		return wire.TxOutcome{}, false
	}
	return o, true
}
