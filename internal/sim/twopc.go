package sim

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"time"

	"log"
	"os"

	"peats/internal/auth"

	"peats/internal/bft"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// The "twopc" scenario: two BFT groups on one simulated network, a
// client-coordinator driving cross-group transactions through the
// partition 2PC, a seeded coordinator crash mid-protocol (before any
// decision, or after delivering a decision to only one group), and an
// independent recovery client finishing the job from the groups'
// agreed records. Invariants: both groups decide every transaction the
// same way, a commit is justified by universal YES votes, and tuple
// effects land exactly once or not at all.

// simAttestMaster seeds the deterministic attestation keys of the
// simulated deployment (bft.AttestKeyFor).
var simAttestMaster = []byte("peats-sim-attest-master")

var simDebug = false

// simTx is one scripted cross-group transaction: an optional inp on a
// g0-owned tuple (either a previous transaction's out — present iff
// that one committed — or a ghost tuple that never existed, forcing a
// NO vote), plus one out per group.
type simTx struct {
	id      string
	hasInp  bool
	inp     tuple.Tuple
	inpKey  string
	outs    [2]tuple.Tuple
	outKeys [2]string

	predicted bool // model: must this commit?
	decided   bool
	committed bool
}

// ownedTuple finds a tuple the canonical routing rule assigns to group
// gi, by varying the first field.
func ownedTuple(gi int, tag string, k int) (tuple.Tuple, string) {
	for j := 0; ; j++ {
		key := fmt.Sprintf("%s~%d", tag, j)
		t := tuple.T(tuple.Str(key), tuple.Int(int64(k)))
		if space.RouteEntry(t, 2) == gi {
			return t, key
		}
	}
}

// group is one simulated BFT group of 4 replicas.
type group struct {
	id   string
	ids  []string
	reps []*bft.Replica
	svcs []*bft.SpaceService
}

func (g *group) converged() bool {
	ref := g.reps[0].StateDigest()
	for i, rep := range g.reps {
		if g.svcs[i].TentativeDepth() != 0 {
			return false
		}
		if rep.Executed() != g.reps[0].Executed() || rep.StateDigest() != ref {
			return false
		}
	}
	return true
}

// coordinator is the event-driven 2PC driver: one sim client per
// participant group, advancing a transaction list and injecting the
// scripted crash.
type coordinator struct {
	loop *Loop
	fail func(format string, args ...any)

	gc  [2]*client // coordinator's per-group clients
	rc  [2]*client // recovery client's per-group clients
	txs []*simTx
	k   int

	crashTx   int // transaction at which the coordinator crashes
	crashMode int // 0 = before any decision; 1 = after one group's decision
	crashed   bool

	votes    [2]wire.TxOutcome
	certs    [2]wire.VoteCert
	gotVotes int
	gotDecs  int
	done     bool
}

func (co *coordinator) tx() *simTx { return co.txs[co.k] }

// start launches transaction k's prepares (or finishes the run).
func (co *coordinator) start() {
	if simDebug { println("start tx", co.k) }
	if co.k >= len(co.txs) {
		co.done = true
		return
	}
	tx := co.tx()
	co.gotVotes = 0
	parts := []string{"g0", "g1"} // already sorted
	for gi := 0; gi < 2; gi++ {
		var ops []wire.SpaceOp
		if gi == 0 && tx.hasInp {
			ops = append(ops, wire.SpaceOp{Op: policy.OpInp, Template: tx.inp})
		}
		ops = append(ops, wire.SpaceOp{Op: policy.OpOut, Entry: tx.outs[gi]})
		payload := wire.EncodeTxPrepare(wire.TxPrepare{TxID: tx.id, Participants: parts, Ops: ops})
		gi := gi
		co.gc[gi].onCert = func(_ uint64, result []byte, cert wire.VoteCert) {
			co.onVote(gi, result, cert)
		}
		co.gc[gi].submitCert(payload)
	}
}

func (co *coordinator) onVote(gi int, result []byte, cert wire.VoteCert) {
	o, ok := decodeOutcome(result)
	if !ok {
		co.fail("tx %s: group g%d returned a malformed prepare outcome", co.tx().id, gi)
		return
	}
	if simDebug { println("vote", gi, "state", int(o.State), "tx", co.k) }
	co.votes[gi], co.certs[gi] = o, cert
	co.gotVotes++
	if co.gotVotes < 2 {
		return
	}
	allYes := co.votes[0].State == wire.TxVoteYes && co.votes[1].State == wire.TxVoteYes
	dec := wire.TxDecision{TxID: co.tx().id, Commit: allYes}
	for gi := 0; gi < 2; gi++ {
		if allYes || co.votes[gi].State != wire.TxVoteYes {
			dec.Certs = append(dec.Certs, co.certs[gi])
		}
	}
	if co.k == co.crashTx && !co.crashed {
		// The coordinator dies here, leaving the transaction in doubt.
		co.crashed = true
		if co.crashMode == 1 {
			// One group learns the decision before the crash.
			co.deliverTo(co.gc[0], 0, dec, allYes, func(int) {})
		}
		co.loop.After(400*time.Millisecond, co.recover)
		return
	}
	co.decide(co.gc, dec, allYes)
}

// deliverTo sends a decision to one group through the given client and
// verifies the group lands in the decided state.
func (co *coordinator) deliverTo(cl *client, gi int, dec wire.TxDecision, commit bool, then func(gi int)) {
	want := uint8(wire.TxAborted)
	if commit {
		want = wire.TxCommitted
	}
	tx := co.tx()
	cl.onResult = func(_ uint64, result []byte) {
		o, ok := decodeOutcome(result)
		if !ok {
			co.fail("tx %s: group g%d returned a malformed decision outcome", tx.id, gi)
			return
		}
		if o.State != want {
			co.fail("tx %s: group g%d reports state %d after a justified decision, want %d",
				tx.id, gi, o.State, want)
			return
		}
		if simDebug { println("decision ok", gi, "tx", co.k) }
		then(gi)
	}
	cl.submit(wire.EncodeTxDecision(dec))
}

// decide delivers a decision to both groups through the given clients
// and advances to the next transaction once both confirm.
func (co *coordinator) decide(through [2]*client, dec wire.TxDecision, commit bool) {
	co.gotDecs = 0
	for gi := 0; gi < 2; gi++ {
		co.deliverTo(through[gi], gi, dec, commit, func(int) {
			co.gotDecs++
			if co.gotDecs == 2 {
				tx := co.tx()
				tx.decided, tx.committed = true, commit
				if commit != tx.predicted {
					co.fail("tx %s: outcome %v, but the vote model predicts %v",
						tx.id, commit, tx.predicted)
				}
				co.k++
				co.start()
			}
		})
	}
}

// recover is the independent recovery client (partition.Space.Recover
// semantics): status-probe every participant — pinning the transaction
// aborted where unknown — and deliver the unique justified decision.
func (co *coordinator) recover() {
	if simDebug { println("recover tx", co.k) }
	tx := co.tx()
	statusOp := wire.EncodeTxStatus(wire.TxStatus{TxID: tx.id})
	got := 0
	var outs [2]wire.TxOutcome
	var certs [2]wire.VoteCert
	for gi := 0; gi < 2; gi++ {
		gi := gi
		co.rc[gi].onCert = func(_ uint64, result []byte, cert wire.VoteCert) {
			o, ok := decodeOutcome(result)
			if !ok {
				co.fail("tx %s: group g%d returned a malformed status outcome", tx.id, gi)
				return
			}
			outs[gi], certs[gi] = o, cert
			got++
			if got < 2 {
				return
			}
			allYes, committed := true, false
			for _, o := range outs {
				switch o.State {
				case wire.TxVoteYes:
				case wire.TxCommitted:
					committed = true
				default:
					allYes = false
				}
			}
			if committed && !allYes {
				// Impossible under the protocol: commit requires universal
				// YES evidence, which forecloses every justified abort.
				co.fail("tx %s: participants disagree on a decided transaction", tx.id)
				return
			}
			dec := wire.TxDecision{TxID: tx.id, Commit: allYes}
			for gj := 0; gj < 2; gj++ {
				if allYes || (outs[gj].State != wire.TxVoteYes && outs[gj].State != wire.TxCommitted) {
					dec.Certs = append(dec.Certs, certs[gj])
				}
			}
			co.decide(co.rc, dec, allYes)
		}
		co.rc[gi].submitCert(statusOp)
	}
}

func runTwoPC(sched Schedule) Result {
	res := Result{Schedule: sched}
	loop := NewLoop()
	rng := rand.New(rand.NewSource(sched.Seed))
	net := NewNet(loop, rng, &sched)
	var err error
	fail := func(format string, args ...any) {
		if err == nil {
			err = fmt.Errorf(format, args...)
		}
	}

	// Trusted setup: both groups' attestation directory and MAC keyrings.
	dir := make(bft.Directory, 2)
	var groupKrs []map[string]*auth.Keyring
	var groups [2]*group
	for gi := 0; gi < 2; gi++ {
		g := &group{id: fmt.Sprintf("g%d", gi)}
		for i := 0; i < 4; i++ {
			g.ids = append(g.ids, fmt.Sprintf("%sr%d", g.id, i))
		}
		keys := make(map[string]ed25519.PublicKey, 4)
		for _, id := range g.ids {
			keys[id] = bft.AttestKeyFor(simAttestMaster, g.id, id).Public().(ed25519.PublicKey)
		}
		dir[g.id] = bft.GroupKeys{F: 1, Keys: keys}
		groups[gi] = g
	}
	for _, g := range groups {
		krs := makeKeyrings(g.ids)
		groupKrs = append(groupKrs, krs)
		for _, id := range g.ids {
			svc := bft.NewSpaceService(policy.AllowAll())
			svc.EnablePartition(g.id, dir)
			var lg *log.Logger
			if simDebug {
				lg = log.New(os.Stderr, "", 0)
			}
			rep, rerr := bft.NewReplica(bft.ReplicaConfig{
				Logger:                lg,
				ID:                    id,
				Replicas:              g.ids,
				F:                     1,
				Transport:             net.Endpoint(id),
				Service:               svc,
				CheckpointInterval:    4,
				CompactEvery:          1,
				KeepCheckpointHistory: true,
				ViewChangeTimeout:     150 * time.Millisecond,
				BatchSize:             4,
				Group:                 g.id,
				AttestKey:             bft.AttestKeyFor(simAttestMaster, g.id, id),
				Keyring:               krs[id],
				Clock:                 loop.Clock(),
			})
			if rerr != nil {
				res.Err = rerr
				return res
			}
			g.svcs = append(g.svcs, svc)
			g.reps = append(g.reps, rep)
			rep.StartDriven()
			net.Register(id, rep.Deliver)
		}
	}

	// Script the transactions against a local effect model, so the
	// outcome of every vote is predictable: an inp on a committed
	// predecessor's tuple votes YES (and consumes it); an inp on a
	// ghost tuple votes NO and aborts the transaction.
	scriptRNG := rand.New(rand.NewSource(sched.Seed ^ 0x2bc0de))
	const numTx = 4
	present := make(map[string]bool)
	txs := make([]*simTx, 0, numTx)
	for k := 0; k < numTx; k++ {
		tx := &simTx{id: fmt.Sprintf("simtx-%d-%d", sched.Seed, k)}
		tx.outs[0], tx.outKeys[0] = ownedTuple(0, fmt.Sprintf("t%d-a", k), k)
		tx.outs[1], tx.outKeys[1] = ownedTuple(1, fmt.Sprintf("t%d-b", k), k)
		if k > 0 && scriptRNG.Intn(2) == 1 {
			tx.hasInp = true
			if scriptRNG.Intn(2) == 0 {
				prev := txs[k-1]
				tx.inp, tx.inpKey = prev.outs[0], prev.outKeys[0]
			} else {
				tx.inp, tx.inpKey = ownedTuple(0, fmt.Sprintf("ghost%d", k), k)
			}
		}
		tx.predicted = !tx.hasInp || present[tx.inpKey]
		if tx.predicted {
			if tx.hasInp {
				present[tx.inpKey] = false
			}
			present[tx.outKeys[0]], present[tx.outKeys[1]] = true, true
		}
		txs = append(txs, tx)
	}

	co := &coordinator{
		loop: loop, fail: fail, txs: txs,
		crashTx:   scriptRNG.Intn(numTx),
		crashMode: scriptRNG.Intn(2),
	}
	for gi := 0; gi < 2; gi++ {
		g := groups[gi]
		co.gc[gi] = newClient("coord-"+g.id, net, loop, g.ids, 1, groupKrs[gi])
		co.gc[gi].group = g.id
		co.gc[gi].attestKeys = dir[g.id].Keys
		co.rc[gi] = newClient("rec-"+g.id, net, loop, g.ids, 1, groupKrs[gi])
		co.rc[gi].group = g.id
		co.rc[gi].attestKeys = dir[g.id].Keys
	}
	loop.After(20*time.Millisecond, co.start)

	loop.RunUntil(epoch.Add(sched.Horizon))
	net.Quiesce()
	net.Heal()

	// Probers keep each group committing fresh operations so lagging
	// replicas see new checkpoints while the run converges.
	var probers [2]*client
	probes := [2]int{}
	for gi := 0; gi < 2; gi++ {
		g := groups[gi]
		probers[gi] = newClient("probe-"+g.id, net, loop, g.ids, 1, groupKrs[gi])
		probers[gi].group = g.id
		probers[gi].onResult = func(uint64, []byte) {}
	}
	deadline := epoch.Add(sched.Horizon + grace)
	for err == nil {
		if co.done && probers[0].idle() && probers[1].idle() &&
			groups[0].converged() && groups[1].converged() {
			break
		}
		if loop.Now().After(deadline) {
			if simDebug {
				for gi, g := range groups {
					for i, rep := range g.reps {
						println("g", gi, "r", i, "view", int(rep.View()), "executed", int(rep.Executed()))
					}
					println("g", gi, "converged", g.converged())
				}
				println("done", co.done, "rc0 idle", co.rc[0].idle(), "rc1 idle", co.rc[1].idle())
			}
			fail("2pc run not done within %v past the horizon (liveness, %d/%d txs decided)",
				grace, co.k, len(txs))
			break
		}
		for gi := 0; gi < 2; gi++ {
			if probers[gi].idle() {
				probes[gi]++
				probers[gi].submit(outOp("probe-"+groups[gi].id, probes[gi]))
			}
		}
		loop.RunUntil(loop.Now().Add(50 * time.Millisecond))
	}

	if err == nil {
		// Effect invariants: replay the decided outcomes; every tuple is
		// present exactly where the replay says it is, in its owning
		// group, exactly once or not at all.
		final := make(map[string]bool)
		for _, tx := range txs {
			if !tx.decided {
				fail("tx %s never decided", tx.id)
			}
			if tx.committed {
				if tx.hasInp {
					final[tx.inpKey] = false
				}
				final[tx.outKeys[0]], final[tx.outKeys[1]] = true, true
			}
		}
		for _, tx := range txs {
			for gi := 0; gi < 2; gi++ {
				want := 0
				if final[tx.outKeys[gi]] {
					want = 1
				}
				if got := groups[gi].svcs[0].Space().CountMatching(tx.outs[gi]); got != want {
					fail("tx %s: tuple %s present %d times in g%d, want %d",
						tx.id, tx.outKeys[gi], got, gi, want)
				}
			}
		}
	}
	if err == nil {
		res.StateDigest = groups[0].reps[0].StateDigest()
		res.Executed = groups[0].reps[0].Executed() + groups[1].reps[0].Executed()
	}
	for _, g := range groups {
		for i, rep := range g.reps {
			rep.Stop()
			g.svcs[i].Close()
		}
	}
	res.Trace = loop.TraceDigest()
	res.Events = loop.Events()
	res.Err = err
	return res
}
