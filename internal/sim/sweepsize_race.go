//go:build race

package sim

// Under the race detector each simulated run costs roughly 6× its
// native time, so the default sweeps shrink to keep `go test -race`
// inside its usual budget. PEATS_SIM_SEEDS still overrides.
const defaultSweepSeeds = 60
