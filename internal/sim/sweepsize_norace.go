//go:build !race

package sim

// defaultSweepSeeds is the per-family seed count the go-test sweeps run
// when PEATS_SIM_SEEDS is unset: five families at this depth is a
// ≥1000-schedule adversarial sweep per `go test ./internal/sim`, sized
// to finish in seconds of wall clock. The explorer CLI and CI go
// deeper.
const defaultSweepSeeds = 200
