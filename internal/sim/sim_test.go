package sim

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// sweepSeeds is the per-family seed count for the scenario sweeps:
// defaultSweepSeeds (build-tag sized for the race detector) unless
// PEATS_SIM_SEEDS overrides — CI and soak runs raise it to thousands.
func sweepSeeds() int {
	if v := os.Getenv("PEATS_SIM_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return defaultSweepSeeds
}

// TestDeterministicReplay pins the property the whole explorer rests
// on: the same (schedule, seed) pair reproduces the identical run —
// byte-identical event trace, final state digest, executed count and
// event count — so a failing seed from a sweep replays exactly.
func TestDeterministicReplay(t *testing.T) {
	for _, name := range CannedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := RunSeed(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSeed(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			if a.Trace != b.Trace {
				t.Errorf("trace diverged across replays: %x vs %x", a.Trace, b.Trace)
			}
			if a.StateDigest != b.StateDigest {
				t.Errorf("state digest diverged: %x vs %x", a.StateDigest, b.StateDigest)
			}
			if a.Executed != b.Executed || a.Events != b.Events {
				t.Errorf("replay drift: executed %d/%d events %d/%d",
					a.Executed, b.Executed, a.Events, b.Events)
			}
			if a.Failed() != b.Failed() {
				t.Errorf("verdict diverged: %v vs %v", a.Err, b.Err)
			}
		})
	}
}

// sweepFamily drives one canned schedule family across sweepSeeds()
// consecutive seeds and fails with the exact seed, full schedule and
// greedily minimized schedule for anything that breaks an invariant.
func sweepFamily(t *testing.T, name string) {
	n := sweepSeeds()
	fails, events := Sweep(name, 1, n, runtime.NumCPU())
	t.Logf("%s: %d seeds, %d loop events, %d failures (replay: peats-sim -schedule %s -replay <seed>)",
		name, n, events, len(fails), name)
	for i, f := range fails {
		if i == 3 {
			t.Errorf("... and %d more failing seeds", len(fails)-3)
			break
		}
		min := Minimize(f.Schedule)
		t.Errorf("seed %d: %v\n  schedule:  %s\n  minimized: %s",
			f.Schedule.Seed, f.Err, f.Schedule, min)
	}
}

// The four scenario suites below are the sim-schedule ports of the
// real-time cluster tests (view-change mid-batch, partition heal,
// crash-during-state-transfer, coordinator crash mid-2PC): instead of
// one hand-built interleaving per run they sweep hundreds to thousands
// of seeded adversarial interleavings per family, under virtual time.

func TestViewChangeStormSchedules(t *testing.T)   { sweepFamily(t, "viewstorm") }
func TestPartitionHealRaceSchedules(t *testing.T) { sweepFamily(t, "partition") }
func TestCrashDuringStateTransfer(t *testing.T)   { sweepFamily(t, "crashrestart") }
func TestCoordinatorCrashMid2PC(t *testing.T)     { sweepFamily(t, "twopc") }
func TestMixedFaultSchedules(t *testing.T)        { sweepFamily(t, "mixed") }

// TestMinimizeStripsIrrelevantFaults pins the schedule minimizer.
// Crashing two replicas forever destroys the 2f+1 quorum, a liveness
// failure no heal can cure; the drop, reorder, partition and Byzantine
// dimensions are irrelevant to it. The minimizer must keep both
// crashes (removing either restores quorum) and strip everything else.
func TestMinimizeStripsIrrelevantFaults(t *testing.T) {
	s := Schedule{
		Name:        "minpin",
		Seed:        1,
		DropProb:    0.2,
		ReorderProb: 0.2,
		ReorderMax:  20 * time.Millisecond,
		DelayMin:    time.Millisecond,
		DelayMax:    3 * time.Millisecond,
		Horizon:     200 * time.Millisecond,
		Partitions: []Partition{
			{At: 50 * time.Millisecond, HealAt: 100 * time.Millisecond, Minority: []int{0}},
		},
		Crashes: []Crash{
			{Replica: 1, At: 5 * time.Millisecond},
			{Replica: 2, At: 10 * time.Millisecond},
		},
		NumByzantine: 1,
	}
	if !Run(s).Failed() {
		t.Fatal("losing two of four replicas forever should be a liveness failure")
	}
	m := Minimize(s)
	if len(m.Crashes) != 2 {
		t.Errorf("minimizer dropped a crash the failure depends on: %s", m)
	}
	if m.DropProb != 0 || m.ReorderProb != 0 || len(m.Partitions) != 0 || m.NumByzantine != 0 {
		t.Errorf("minimizer kept irrelevant faults: %s", m)
	}
	if !Run(m).Failed() {
		t.Error("minimized schedule no longer fails")
	}
}
