package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Schedule is a declarative fault script plus the seed of the RNG that
// drives its stochastic half. A (Schedule, seed) pair fully determines
// a run: replaying the same value reproduces the identical event trace
// byte for byte.
type Schedule struct {
	Name string // canned-schedule name; "twopc" selects the two-group scenario
	Seed int64

	// Stochastic network faults, applied per message until the horizon.
	DropProb    float64       // probability a message is silently dropped
	DelayMin    time.Duration // per-message delivery delay, uniform in [min,max]
	DelayMax    time.Duration
	ReorderProb float64       // probability of an extra delay, overtaking later sends
	ReorderMax  time.Duration // bound of the extra reorder delay

	// Scripted faults.
	Partitions []Partition
	Crashes    []Crash
	// NumByzantine replicas (≤ f, taken from the end of the group so
	// the initial primary stays honest in most runs) have their
	// outbound messages randomly mutated in flight.
	NumByzantine int

	// Horizon is when fault injection stops; the run then heals
	// everything and drives the cluster until the standing invariants
	// can be checked (or the convergence grace expires — a liveness
	// failure).
	Horizon time.Duration
}

// Partition isolates a minority of replica indexes from the rest
// between At and HealAt.
type Partition struct {
	At, HealAt time.Duration
	Minority   []int
}

// Crash stops a replica at At, closing its durable engine; RestartAt
// (0 = never) reopens the same data dir and rejoins it as a fresh
// process that must recover its state.
type Crash struct {
	Replica   int
	At        time.Duration
	RestartAt time.Duration
}

// String renders the schedule compactly for failure reports.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d drop=%.3f delay=[%s,%s]", s.Name, s.Seed, s.DropProb, s.DelayMin, s.DelayMax)
	if s.ReorderProb > 0 {
		fmt.Fprintf(&b, " reorder=%.2f/%s", s.ReorderProb, s.ReorderMax)
	}
	for _, p := range s.Partitions {
		fmt.Fprintf(&b, " part{%v @%s..%s}", p.Minority, p.At, p.HealAt)
	}
	for _, c := range s.Crashes {
		if c.RestartAt > 0 {
			fmt.Fprintf(&b, " crash{r%d @%s..%s}", c.Replica, c.At, c.RestartAt)
		} else {
			fmt.Fprintf(&b, " crash{r%d @%s}", c.Replica, c.At)
		}
	}
	if s.NumByzantine > 0 {
		fmt.Fprintf(&b, " byz=%d", s.NumByzantine)
	}
	fmt.Fprintf(&b, " horizon=%s", s.Horizon)
	return b.String()
}

// CannedNames lists the built-in schedule families, in the order the
// explorer sweeps them.
func CannedNames() []string {
	return []string{"viewstorm", "partition", "crashrestart", "twopc", "mixed"}
}

// Canned builds one seed's instance of a named schedule family. The
// seed both parameterizes the script (fault times, victims) and seeds
// the run's stochastic faults, so consecutive seeds explore genuinely
// different scenarios.
func Canned(name string, seed int64) (Schedule, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5c4ed))
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
	}
	s := Schedule{
		Name:     name,
		Seed:     seed,
		DelayMin: 1 * time.Millisecond,
		DelayMax: ms(3, 12),
		Horizon:  2 * time.Second,
	}
	switch name {
	case "viewstorm":
		// Heavy loss and reordering around a sluggish primary: the
		// view-change machinery runs constantly (timeouts here are a few
		// hundred ms of virtual time).
		s.DropProb = 0.05 + 0.20*rng.Float64()
		s.ReorderProb = 0.25
		s.ReorderMax = ms(50, 250)
	case "partition":
		// One or two minority partitions with heals racing the workload.
		s.DropProb = 0.02 * rng.Float64()
		s.ReorderProb = 0.10
		s.ReorderMax = ms(20, 80)
		cuts := 1 + rng.Intn(2)
		for i := 0; i < cuts; i++ {
			at := ms(100, 900)
			s.Partitions = append(s.Partitions, Partition{
				At: at, HealAt: at + ms(100, 600), Minority: []int{rng.Intn(4)},
			})
		}
	case "crashrestart":
		// Crash-restart with durable recovery, racing state transfer: the
		// victim is down long enough to fall behind a checkpoint.
		s.DropProb = 0.02 * rng.Float64()
		s.ReorderProb = 0.10
		s.ReorderMax = ms(10, 60)
		at := ms(100, 700)
		s.Crashes = append(s.Crashes, Crash{
			Replica: rng.Intn(4), At: at, RestartAt: at + ms(200, 900),
		})
		if rng.Intn(2) == 0 {
			// A second, possibly overlapping crash of a different replica.
			victim := rng.Intn(4)
			if victim == s.Crashes[0].Replica {
				victim = (victim + 1) % 4
			}
			at2 := ms(100, 900)
			s.Crashes = append(s.Crashes, Crash{Replica: victim, At: at2, RestartAt: at2 + ms(200, 700)})
		}
	case "twopc":
		// Cross-group transactions under loss, with the coordinator
		// crashing mid-protocol and a recovery client finishing the job.
		s.DropProb = 0.03 + 0.07*rng.Float64()
		s.ReorderProb = 0.15
		s.ReorderMax = ms(20, 100)
		s.Horizon = 3 * time.Second
	case "mixed":
		// Everything at once, within the fault model: loss, reorder, one
		// partition, one crash-restart, one Byzantine replica.
		s.DropProb = 0.02 + 0.08*rng.Float64()
		s.ReorderProb = 0.20
		s.ReorderMax = ms(20, 150)
		at := ms(100, 800)
		s.Partitions = append(s.Partitions, Partition{
			At: at, HealAt: at + ms(100, 500), Minority: []int{rng.Intn(4)},
		})
		cAt := ms(100, 900)
		s.Crashes = append(s.Crashes, Crash{Replica: rng.Intn(4), At: cAt, RestartAt: cAt + ms(200, 800)})
		s.NumByzantine = 1
	default:
		return Schedule{}, fmt.Errorf("sim: unknown schedule %q (have %v)", name, CannedNames())
	}
	s.normalize()
	return s, nil
}

// normalize clamps scripted events inside the horizon and orders them,
// so the harness can schedule them directly.
func (s *Schedule) normalize() {
	clamp := func(d time.Duration) time.Duration {
		if d > s.Horizon {
			return s.Horizon
		}
		return d
	}
	for i := range s.Partitions {
		s.Partitions[i].At = clamp(s.Partitions[i].At)
		s.Partitions[i].HealAt = clamp(s.Partitions[i].HealAt)
	}
	for i := range s.Crashes {
		s.Crashes[i].At = clamp(s.Crashes[i].At)
		if s.Crashes[i].RestartAt > 0 {
			s.Crashes[i].RestartAt = clamp(s.Crashes[i].RestartAt)
		}
	}
	sort.SliceStable(s.Partitions, func(i, j int) bool { return s.Partitions[i].At < s.Partitions[j].At })
	sort.SliceStable(s.Crashes, func(i, j int) bool { return s.Crashes[i].At < s.Crashes[j].At })
	if s.DelayMax < s.DelayMin {
		s.DelayMax = s.DelayMin
	}
}
