package sim

import (
	"math/rand"
	"time"

	"peats/internal/transport"
)

// Net is the simulated network: a routing table whose links apply the
// schedule's stochastic faults (drop, delay, reorder), the current
// partition map, per-node down flags, and Byzantine outbound mutation.
// Every routing decision draws from the run's single seeded RNG on the
// loop thread, so the whole network is deterministic.
type Net struct {
	loop  *Loop
	rng   *rand.Rand
	sched *Schedule
	slots map[string]*nodeSlot

	// faults gates the stochastic and Byzantine machinery; the harness
	// clears it at the horizon so the convergence phase runs on a clean
	// network.
	faults bool
}

type nodeSlot struct {
	id      string
	handler func(transport.Inbound)
	down    bool
	part    int // partition cell; cells differing → link cut
	byz     bool
}

// NewNet builds a network over the loop, driven by the schedule's
// stochastic knobs and the shared run RNG.
func NewNet(loop *Loop, rng *rand.Rand, sched *Schedule) *Net {
	return &Net{loop: loop, rng: rng, sched: sched, slots: make(map[string]*nodeSlot), faults: true}
}

// Endpoint returns id's transport handle, creating its slot.
func (n *Net) Endpoint(id string) *Endpoint {
	if _, ok := n.slots[id]; !ok {
		n.slots[id] = &nodeSlot{id: id}
	}
	return &Endpoint{n: n, id: id}
}

// Register installs id's inbound handler (nil detaches it). Driven
// replicas and sim clients receive messages through this, never
// through Inbox.
func (n *Net) Register(id string, h func(transport.Inbound)) {
	n.Endpoint(id) // ensure the slot exists
	n.slots[id].handler = h
}

// SetDown marks a node crashed (true) or back up (false). Messages in
// flight toward a down node are discarded at delivery time.
func (n *Net) SetDown(id string, down bool) {
	n.Endpoint(id)
	n.slots[id].down = down
	label := "up"
	if down {
		label = "down"
	}
	n.loop.traceEvent(label, id, "", nil)
}

// SetByzantine marks a node's outbound messages for random mutation.
func (n *Net) SetByzantine(id string, on bool) {
	n.Endpoint(id)
	n.slots[id].byz = on
}

// Partition places each listed node in partition cell 1, everyone else
// in cell 0; links across cells are cut. Nodes not listed anywhere
// (clients) stay in cell 0 with the majority.
func (n *Net) Partition(minority []string) {
	for _, s := range n.slots {
		s.part = 0
	}
	for _, id := range minority {
		n.Endpoint(id)
		n.slots[id].part = 1
	}
	n.loop.traceEvent("partition", "", "", []byte(joinIDs(minority)))
}

// Heal removes every partition.
func (n *Net) Heal() {
	for _, s := range n.slots {
		s.part = 0
	}
	n.loop.traceEvent("heal", "", "", nil)
}

// Quiesce turns off the stochastic and Byzantine fault machinery (the
// convergence phase after the horizon); scripted state (partitions,
// down nodes) is the harness's business.
func (n *Net) Quiesce() {
	n.faults = false
	for _, s := range n.slots {
		s.byz = false
	}
}

func joinIDs(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += id
	}
	return out
}

// route is every link's send path.
func (n *Net) route(from, to string, payload []byte) error {
	src, ok := n.slots[from]
	if !ok {
		return transport.ErrUnknownPeer
	}
	dst, ok := n.slots[to]
	if !ok {
		return transport.ErrUnknownPeer
	}
	if src.down {
		return transport.ErrClosed
	}
	// Partition and stochastic loss are decided at send time; a cut or
	// dropped message is simply gone (the protocol's retransmission
	// machinery owns recovery).
	if src.part != dst.part {
		return nil
	}
	if n.faults && n.sched.DropProb > 0 && n.rng.Float64() < n.sched.DropProb {
		return nil
	}
	// Byzantine mutation: flip a few bytes of a copy. The replica-level
	// fault model tolerates f such replicas; receivers must reject or
	// out-vote whatever this produces.
	if n.faults && src.byz {
		mutated := make([]byte, len(payload))
		copy(mutated, payload)
		for i, flips := 0, 1+n.rng.Intn(3); i < flips && len(mutated) > 0; i++ {
			mutated[n.rng.Intn(len(mutated))] ^= byte(1 + n.rng.Intn(255))
		}
		payload = mutated
	}
	delay := n.sched.DelayMin
	if span := n.sched.DelayMax - n.sched.DelayMin; span > 0 {
		delay += time.Duration(n.rng.Int63n(int64(span) + 1))
	}
	if n.faults && n.sched.ReorderProb > 0 && n.rng.Float64() < n.sched.ReorderProb &&
		n.sched.ReorderMax > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.sched.ReorderMax) + 1))
	}
	n.loop.After(delay, func() {
		d := n.slots[to]
		if d == nil || d.down || d.handler == nil {
			return
		}
		n.loop.traceEvent("msg", from, to, payload)
		d.handler(transport.Inbound{From: from, Payload: payload})
	})
	return nil
}

// Endpoint implements transport.Transport over the simulated network.
// Inbox is never used (all parties are driven via Register handlers),
// so it returns nil — a driven replica's run loop is never started.
type Endpoint struct {
	n  *Net
	id string
}

var _ transport.Transport = (*Endpoint)(nil)

func (e *Endpoint) Self() string { return e.id }

func (e *Endpoint) Send(to string, payload []byte) error {
	return e.n.route(e.id, to, payload)
}

func (e *Endpoint) SendClass(to string, payload []byte, _ transport.Class) error {
	return e.n.route(e.id, to, payload)
}

func (e *Endpoint) Inbox() <-chan transport.Inbound { return nil }

func (e *Endpoint) Close() error { return nil }
