// Package sim is a deterministic cluster simulator: it runs whole
// multi-replica (and multi-group) PEATS deployments on a
// single-threaded event loop under virtual time, with a seeded fault
// schedule injecting message drops, delays, reorders, partitions,
// crash-restarts, and Byzantine message mutations. One seed fully
// determines a run — same seed, same schedule, byte-identical event
// trace and final state — so a failure found by sweeping thousands of
// seeds replays exactly under `peats-sim -replay`.
//
// The design follows goXRPLd's csf harness: a simulated clock owns all
// scheduling (replicas run in driven mode with virtual timers; see
// bft.Replica.StartDriven), and the network is a routing table applied
// at send time, so every run is a pure function of (schedule, seed).
package sim

import (
	"container/heap"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"time"

	"peats/internal/vclock"
)

// epoch is the fixed virtual-time origin of every run. A constant (not
// wall time) so virtual timestamps — and therefore trace digests — are
// identical across runs and machines.
var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback. Events at equal times fire in
// scheduling order (seq), which is what makes the heap deterministic.
type event struct {
	at   time.Time
	seq  uint64
	fire func()
	dead bool // cancelled; skipped when popped
	idx  int  // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Loop is the single-threaded virtual-time event loop. Everything in a
// simulation — message deliveries, protocol timers, fault-script
// events — runs as loop events; nothing else may touch simulated
// state.
type Loop struct {
	now    time.Time
	heap   eventHeap
	seq    uint64
	fired  uint64
	trace  hash.Hash
	tbuf   []byte
}

// NewLoop returns a loop positioned at the virtual epoch.
func NewLoop() *Loop {
	return &Loop{now: epoch, trace: sha256.New()}
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Time { return l.now }

// Events returns how many events have fired so far.
func (l *Loop) Events() uint64 { return l.fired }

// After schedules fire to run d from now (clamped to now for d ≤ 0) and
// returns a handle for cancellation.
func (l *Loop) After(d time.Duration, fire func()) *event {
	if d < 0 {
		d = 0
	}
	l.seq++
	e := &event{at: l.now.Add(d), seq: l.seq, fire: fire}
	heap.Push(&l.heap, e)
	return e
}

func (l *Loop) cancel(e *event) {
	if e != nil {
		e.dead = true
	}
}

// Step fires the next pending event, advancing virtual time to it. It
// reports false when no events remain.
func (l *Loop) Step() bool {
	for len(l.heap) > 0 {
		e := heap.Pop(&l.heap).(*event)
		if e.dead {
			continue
		}
		l.now = e.at
		l.fired++
		e.fire()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would lie after
// t (or the queue drains), then advances the clock to exactly t.
func (l *Loop) RunUntil(t time.Time) {
	for len(l.heap) > 0 {
		// Peek; dead events are popped and discarded without advancing.
		e := l.heap[0]
		if e.dead {
			heap.Pop(&l.heap)
			continue
		}
		if e.at.After(t) {
			break
		}
		heap.Pop(&l.heap)
		l.now = e.at
		l.fired++
		e.fire()
	}
	if l.now.Before(t) {
		l.now = t
	}
}

// traceEvent folds one observable event into the running trace digest.
// The digest commits to virtual time, the label, and the payload, so
// two runs with identical digests delivered the same bytes at the same
// virtual instants in the same order.
func (l *Loop) traceEvent(label string, a, b string, payload []byte) {
	l.tbuf = l.tbuf[:0]
	l.tbuf = binary.BigEndian.AppendUint64(l.tbuf, uint64(l.now.Sub(epoch)))
	l.tbuf = append(l.tbuf, label...)
	l.tbuf = append(l.tbuf, 0)
	l.tbuf = append(l.tbuf, a...)
	l.tbuf = append(l.tbuf, 0)
	l.tbuf = append(l.tbuf, b...)
	l.tbuf = append(l.tbuf, 0)
	l.trace.Write(l.tbuf)
	l.trace.Write(payload)
}

// TraceDigest returns the digest of every observable event so far.
func (l *Loop) TraceDigest() [32]byte {
	var d [32]byte
	l.trace.Sum(d[:0])
	return d
}

// ---- vclock.Clock over the loop ----

// Clock returns a vclock.Clock driven by the loop: timers fire their
// callbacks synchronously as loop events, and C() is nil (it never
// delivers), which is the virtual half of the vclock contract.
func (l *Loop) Clock() vclock.Clock { return simClock{l: l} }

type simClock struct{ l *Loop }

func (c simClock) Now() time.Time { return c.l.now }

func (c simClock) NewTimer(fire func()) vclock.Timer {
	return &simTimer{l: c.l, fire: fire}
}

func (c simClock) NewTicker(d time.Duration, fire func()) vclock.Ticker {
	t := &simTicker{l: c.l, fire: fire, d: d}
	t.arm()
	return t
}

type simTimer struct {
	l    *Loop
	fire func()
	ev   *event
}

func (t *simTimer) C() <-chan time.Time { return nil }

func (t *simTimer) Reset(d time.Duration) {
	t.l.cancel(t.ev)
	self := t
	t.ev = t.l.After(d, func() {
		self.ev = nil
		if self.fire != nil {
			self.fire()
		}
	})
}

func (t *simTimer) Stop() bool {
	pending := t.ev != nil && !t.ev.dead
	t.l.cancel(t.ev)
	t.ev = nil
	return pending
}

type simTicker struct {
	l    *Loop
	fire func()
	d    time.Duration
	ev   *event
	dead bool
}

func (t *simTicker) C() <-chan time.Time { return nil }

func (t *simTicker) arm() {
	self := t
	t.ev = t.l.After(t.d, func() {
		if self.dead {
			return
		}
		self.arm()
		if self.fire != nil {
			self.fire()
		}
	})
}

func (t *simTicker) Reset(d time.Duration) {
	t.d = d
	t.dead = false
	t.l.cancel(t.ev)
	t.arm()
}

func (t *simTicker) Stop() {
	t.dead = true
	t.l.cancel(t.ev)
	t.ev = nil
}
