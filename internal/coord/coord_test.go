package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestLockMutualExclusion(t *testing.T) {
	s := peats.New(LockPolicy())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A shared counter incremented non-atomically under the lock: with
	// mutual exclusion there are no lost updates.
	var counter int
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := policy.ProcessID(fmt.Sprintf("w%d", w))
			l := NewLock(s.Handle(me), me, "counter")
			l.Poll = 100 * time.Microsecond
			for i := 0; i < perWorker; i++ {
				if err := l.Acquire(ctx); err != nil {
					t.Error(err)
					return
				}
				counter++
				if err := l.Release(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*perWorker {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", counter, workers*perWorker)
	}
}

func TestLockCannotBeStolenOrForgedRelease(t *testing.T) {
	s := peats.New(LockPolicy())
	ctx := context.Background()

	alice := NewLock(s.Handle("alice"), "alice", "L")
	ok, _, err := alice.TryAcquire(ctx)
	if err != nil || !ok {
		t.Fatalf("acquire: %v %v", ok, err)
	}

	evil := s.Handle("mallory")
	// Cannot withdraw alice's holder tuple.
	_, _, err = evil.Inp(ctx, tuple.T(tuple.Str("LOCK"), tuple.Str("L"), tuple.Str("alice")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("steal err = %v, want denial", err)
	}
	// Cannot acquire in alice's name.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("LOCK"), tuple.Str("M"), tuple.Formal("h")),
		tuple.T(tuple.Str("LOCK"), tuple.Str("M"), tuple.Str("alice")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("impersonated acquire err = %v, want denial", err)
	}
	// Cannot cross-probe: template lock M, entry lock L.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("LOCK"), tuple.Str("M"), tuple.Formal("h")),
		tuple.T(tuple.Str("LOCK"), tuple.Str("L"), tuple.Str("mallory")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("cross-lock cas err = %v, want denial", err)
	}
	// Releasing a lock mallory does not hold reports ErrNotHeld.
	m := NewLock(s.Handle("mallory"), "mallory", "other")
	if err := m.Release(ctx); !errors.Is(err, ErrNotHeld) {
		t.Errorf("release err = %v, want ErrNotHeld", err)
	}
	// The busy lock reports its holder.
	bob := NewLock(s.Handle("bob"), "bob", "L")
	ok, holder, err := bob.TryAcquire(ctx)
	if err != nil || ok {
		t.Fatalf("bob acquired a held lock: %v %v", ok, err)
	}
	if holder != "alice" {
		t.Errorf("holder = %q, want alice", holder)
	}
	// After release, bob can take it.
	if err := alice.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := bob.TryAcquire(ctx); !ok {
		t.Error("bob cannot acquire released lock")
	}
}

func TestLockAcquireTimeout(t *testing.T) {
	s := peats.New(LockPolicy())
	ctx := context.Background()
	a := NewLock(s.Handle("a"), "a", "L")
	if ok, _, _ := a.TryAcquire(ctx); !ok {
		t.Fatal("setup")
	}
	b := NewLock(s.Handle("b"), "b", "L")
	b.Poll = 100 * time.Microsecond
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if err := b.Acquire(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline", err)
	}
}

func TestElector(t *testing.T) {
	s := peats.New(ElectorPolicy())
	ctx := context.Background()

	// Concurrent self-nominations: exactly one leader, all agree.
	const candidates = 10
	leaders := make([]policy.ProcessID, candidates)
	var wg sync.WaitGroup
	for i := 0; i < candidates; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := policy.ProcessID(fmt.Sprintf("n%d", i))
			e := NewElector(s.Handle(me), me)
			l, err := e.Elect(ctx, 1)
			if err != nil {
				t.Error(err)
				return
			}
			leaders[i] = l
		}(i)
	}
	wg.Wait()
	for i := 1; i < candidates; i++ {
		if leaders[i] != leaders[0] {
			t.Fatalf("disagreement: %v vs %v", leaders[i], leaders[0])
		}
	}

	// The leader is observable without nominating.
	obs := NewElector(s.Handle("observer"), "observer")
	who, ok, err := obs.Leader(ctx, 1)
	if err != nil || !ok || who != leaders[0] {
		t.Errorf("Leader = %v %v %v", who, ok, err)
	}
	// A new epoch elects independently.
	if _, ok, _ := obs.Leader(ctx, 2); ok {
		t.Error("epoch 2 has a leader already")
	}
}

func TestElectorPolicyStopsForgery(t *testing.T) {
	s := peats.New(ElectorPolicy())
	ctx := context.Background()
	evil := s.Handle("mallory")

	// Nominating someone else.
	_, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("LEADER"), tuple.Int(1), tuple.Formal("w")),
		tuple.T(tuple.Str("LEADER"), tuple.Int(1), tuple.Str("victim")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("forged nomination err = %v, want denial", err)
	}
	// Deposing a leader (no inp rule at all).
	e := NewElector(s.Handle("honest"), "honest")
	if _, err := e.Elect(ctx, 1); err != nil {
		t.Fatal(err)
	}
	_, _, err = evil.Inp(ctx, tuple.T(tuple.Str("LEADER"), tuple.Int(1), tuple.Any()))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("depose err = %v, want denial", err)
	}
	// Byzantine self-nomination is legal (weak validity): mallory may
	// win a FRESH epoch, but cannot override epoch 1.
	who, err := NewElector(evil, "mallory").Elect(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if who != "honest" {
		t.Errorf("epoch 1 leader changed to %v", who)
	}
}

func TestBarrierQuorum(t *testing.T) {
	procs := []policy.ProcessID{"p0", "p1", "p2", "p3"}
	s := peats.New(BarrierPolicy(procs))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Quorum 3 of 4: the barrier opens with one silent process.
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := NewBarrier(s.Handle(procs[i]), procs[i], procs, 3)
			b.Poll = 100 * time.Microsecond
			if err := b.ArriveAndAwait(ctx, 1); err != nil {
				t.Errorf("%s: %v", procs[i], err)
				return
			}
			<-release
			if err := b.ArriveAndAwait(ctx, 2); err != nil {
				t.Errorf("%s phase 2: %v", procs[i], err)
			}
		}(i)
	}
	close(release)
	wg.Wait()
}

func TestBarrierBlocksBelowQuorum(t *testing.T) {
	procs := []policy.ProcessID{"p0", "p1", "p2"}
	s := peats.New(BarrierPolicy(procs))
	b := NewBarrier(s.Handle(procs[0]), procs[0], procs, 0) // full quorum
	b.Poll = 100 * time.Microsecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := b.ArriveAndAwait(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline (alone at a full barrier)", err)
	}
}

func TestBarrierPolicyStopsFakeQuorum(t *testing.T) {
	procs := []policy.ProcessID{"p0", "p1", "p2"}
	s := peats.New(BarrierPolicy(procs))
	ctx := context.Background()
	evil := s.Handle(procs[2])

	// Arriving in someone else's name.
	err := evil.Out(ctx, tuple.T(tuple.Str("ARRIVE"), tuple.Int(1), tuple.Str("p0")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("forged arrival err = %v, want denial", err)
	}
	// Arriving twice at the same phase.
	if err := evil.Out(ctx, tuple.T(tuple.Str("ARRIVE"), tuple.Int(1), tuple.Str("p2"))); err != nil {
		t.Fatal(err)
	}
	err = evil.Out(ctx, tuple.T(tuple.Str("ARRIVE"), tuple.Int(1), tuple.Str("p2")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("double arrival err = %v, want denial", err)
	}
	// Outsiders cannot arrive.
	err = s.Handle("outsider").Out(ctx, tuple.T(tuple.Str("ARRIVE"), tuple.Int(1), tuple.Str("outsider")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("outsider arrival err = %v, want denial", err)
	}
	// Different phase is a fresh arrival slot.
	if err := evil.Out(ctx, tuple.T(tuple.Str("ARRIVE"), tuple.Int(2), tuple.Str("p2"))); err != nil {
		t.Errorf("phase 2 arrival denied: %v", err)
	}
}

func TestMergePolicies(t *testing.T) {
	// One space serving locks and elections simultaneously.
	pol := Merge(LockPolicy(), ElectorPolicy())
	s := peats.New(pol)
	ctx := context.Background()

	l := NewLock(s.Handle("p1"), "p1", "jobs")
	if ok, _, err := l.TryAcquire(ctx); err != nil || !ok {
		t.Fatalf("lock via merged policy: %v %v", ok, err)
	}
	e := NewElector(s.Handle("p1"), "p1")
	if _, err := e.Elect(ctx, 1); err != nil {
		t.Fatalf("elect via merged policy: %v", err)
	}
	// Still deny-by-default for everything else.
	if err := s.Handle("p1").Out(ctx, tuple.T(tuple.Str("RANDOM"))); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("unrelated out err = %v, want denial", err)
	}
}

func TestCoordOverReplicatedSpace(t *testing.T) {
	// The abstractions run unchanged over the BFT-replicated space.
	if testing.Short() {
		t.Skip("replicated coordination is slow")
	}
	clusterTest(t)
}
