// Package coord builds the coordination abstractions the paper's
// introduction motivates — mutual exclusion, leader election, barriers —
// on top of a policy-enforced tuple space, so an open and untrusted set
// of processes can coordinate through a small dependable service
// (paper §8: "coordination of nontrusted processes in practical
// systems").
//
// Every abstraction comes with the access policy that keeps Byzantine
// processes from subverting it: a process cannot release a lock it does
// not hold, cannot arrive twice at a barrier, and cannot crown itself
// leader for an epoch that already has one.
package coord

import (
	"context"
	"errors"
	"fmt"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// ErrNotHeld is returned when releasing a lock the caller does not hold.
var ErrNotHeld = errors.New("coord: lock not held by caller")

const (
	tagLock   = "LOCK"
	tagLeader = "LEADER"
	tagArrive = "ARRIVE"
)

// Lock is a Byzantine-safe spin lock: the lock is held by process p iff
// the tuple <LOCK, name, p> is in the space. Acquire races a cas;
// Release withdraws the holder tuple, which the policy allows only to
// the holder itself. A Byzantine process can at worst hold the lock and
// never release it — the policy makes stealing and forged releases
// impossible, but (as with any mutual exclusion under Byzantine
// failures) termination requires the holder to cooperate.
type Lock struct {
	ts   peats.TupleSpace
	self policy.ProcessID
	name string
	// Poll paces Acquire's retry loop (default 1ms).
	Poll time.Duration
}

// NewLock returns process self's handle on the named lock.
func NewLock(ts peats.TupleSpace, self policy.ProcessID, name string) *Lock {
	return &Lock{ts: ts, self: self, name: name, Poll: time.Millisecond}
}

// TryAcquire attempts to take the lock without blocking. It returns
// true on success and, on failure, the current holder.
func (l *Lock) TryAcquire(ctx context.Context) (bool, policy.ProcessID, error) {
	inserted, matched, err := l.ts.Cas(ctx,
		tuple.T(tuple.Str(tagLock), tuple.Str(l.name), tuple.Formal("holder")),
		tuple.T(tuple.Str(tagLock), tuple.Str(l.name), tuple.Str(string(l.self))))
	if err != nil {
		return false, "", fmt.Errorf("lock %q: %w", l.name, err)
	}
	if inserted {
		return true, l.self, nil
	}
	holder, _ := matched.Field(2).StrValue()
	return false, policy.ProcessID(holder), nil
}

// Acquire blocks (polling) until the lock is taken or ctx expires.
func (l *Lock) Acquire(ctx context.Context) error {
	poll := l.Poll
	if poll <= 0 {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		ok, _, err := l.TryAcquire(ctx)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("lock %q: %w", l.name, ctx.Err())
		case <-ticker.C:
		}
	}
}

// Release frees the lock. Only the holder's release passes the policy.
func (l *Lock) Release(ctx context.Context) error {
	_, ok, err := l.ts.Inp(ctx,
		tuple.T(tuple.Str(tagLock), tuple.Str(l.name), tuple.Str(string(l.self))))
	if err != nil {
		return fmt.Errorf("lock %q: %w", l.name, err)
	}
	if !ok {
		return fmt.Errorf("lock %q: %w", l.name, ErrNotHeld)
	}
	return nil
}

// LockPolicy is the access policy for spaces serving locks:
//
//	Rcas: a process may take a free lock only in its own name;
//	Rinp: a process may withdraw only <LOCK, *, itself> — so releases
//	      cannot be forged and the lock cannot be stolen.
func LockPolicy() policy.Policy {
	return policy.New(
		policy.Rule{Name: "Rcas", Op: policy.OpCas, When: policy.And(
			policy.TemplateArity(3),
			policy.TemplateField(0, tuple.Str(tagLock)),
			policy.TemplateFieldFormal(2),
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str(tagLock)),
			policy.EntryFieldIsInvoker(2),
			// Lock name must match between template and entry, or a
			// Byzantine process could take lock A by probing lock B.
			policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
				return inv.Template.Field(1).Equal(inv.Entry.Field(1))
			}),
		)},
		policy.Rule{Name: "Rinp", Op: policy.OpInp, When: policy.And(
			policy.TemplateArity(3),
			policy.TemplateField(0, tuple.Str(tagLock)),
			policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
				s, ok := inv.Template.Field(2).StrValue()
				return ok && policy.ProcessID(s) == inv.Invoker
			}),
		)},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.And(
			policy.TemplateArity(3),
			policy.TemplateField(0, tuple.Str(tagLock)),
		)},
	)
}

// Elector elects one leader per epoch with the wait-free weak-consensus
// pattern: the first cas of <LEADER, epoch, candidate> wins, everyone
// else adopts the winner. Candidates must nominate themselves, so a
// Byzantine process can win an election (leader election cannot exclude
// faulty candidates without strong consensus) but cannot install a
// leader under another process's name or depose an elected one.
type Elector struct {
	ts   peats.TupleSpace
	self policy.ProcessID
}

// NewElector returns process self's handle on the election object.
func NewElector(ts peats.TupleSpace, self policy.ProcessID) *Elector {
	return &Elector{ts: ts, self: self}
}

// Elect nominates self for the epoch and returns the elected leader.
func (e *Elector) Elect(ctx context.Context, epoch int64) (policy.ProcessID, error) {
	inserted, matched, err := e.ts.Cas(ctx,
		tuple.T(tuple.Str(tagLeader), tuple.Int(epoch), tuple.Formal("who")),
		tuple.T(tuple.Str(tagLeader), tuple.Int(epoch), tuple.Str(string(e.self))))
	if err != nil {
		return "", fmt.Errorf("elect epoch %d: %w", epoch, err)
	}
	if inserted {
		return e.self, nil
	}
	who, _ := matched.Field(2).StrValue()
	return policy.ProcessID(who), nil
}

// Leader returns the epoch's leader, if elected.
func (e *Elector) Leader(ctx context.Context, epoch int64) (policy.ProcessID, bool, error) {
	t, ok, err := e.ts.Rdp(ctx,
		tuple.T(tuple.Str(tagLeader), tuple.Int(epoch), tuple.Formal("who")))
	if err != nil || !ok {
		return "", false, err
	}
	who, _ := t.Field(2).StrValue()
	return policy.ProcessID(who), true, nil
}

// ElectorPolicy allows only self-nominations via cas and open reads;
// LEADER tuples are permanent (no in/inp), so elected leaders cannot be
// deposed within an epoch.
func ElectorPolicy() policy.Policy {
	return policy.New(
		policy.Rule{Name: "Rcas", Op: policy.OpCas, When: policy.And(
			policy.TemplateArity(3),
			policy.TemplateField(0, tuple.Str(tagLeader)),
			policy.TemplateFieldFormal(2),
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str(tagLeader)),
			policy.EntryFieldIsInvoker(2),
			policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
				return inv.Template.Field(1).Equal(inv.Entry.Field(1))
			}),
		)},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rrd", Op: policy.OpRd, When: policy.Always},
	)
}

// Barrier synchronises a known group: each process arrives once per
// phase; Await returns when at least quorum processes have arrived.
// With quorum = n−t the barrier is t-threshold (it tolerates t silent
// processes); the policy stops Byzantine members from arriving twice or
// in someone else's name, so they cannot fake quorum.
type Barrier struct {
	ts     peats.TupleSpace
	self   policy.ProcessID
	procs  []policy.ProcessID
	quorum int
	// Poll paces Await (default 1ms).
	Poll time.Duration
}

// NewBarrier returns process self's handle on the group barrier.
// quorum ≤ 0 defaults to len(procs).
func NewBarrier(ts peats.TupleSpace, self policy.ProcessID, procs []policy.ProcessID, quorum int) *Barrier {
	if quorum <= 0 || quorum > len(procs) {
		quorum = len(procs)
	}
	cp := make([]policy.ProcessID, len(procs))
	copy(cp, procs)
	return &Barrier{ts: ts, self: self, procs: cp, quorum: quorum, Poll: time.Millisecond}
}

// Arrive registers this process at the phase.
func (b *Barrier) Arrive(ctx context.Context, phase int64) error {
	err := b.ts.Out(ctx,
		tuple.T(tuple.Str(tagArrive), tuple.Int(phase), tuple.Str(string(b.self))))
	if err != nil {
		return fmt.Errorf("barrier phase %d: %w", phase, err)
	}
	return nil
}

// Await blocks until quorum processes have arrived at the phase.
func (b *Barrier) Await(ctx context.Context, phase int64) error {
	poll := b.Poll
	if poll <= 0 {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	seen := make(map[policy.ProcessID]struct{}, len(b.procs))
	for {
		for _, p := range b.procs {
			if _, ok := seen[p]; ok {
				continue
			}
			_, ok, err := b.ts.Rdp(ctx,
				tuple.T(tuple.Str(tagArrive), tuple.Int(phase), tuple.Str(string(p))))
			if err != nil {
				return fmt.Errorf("barrier phase %d: %w", phase, err)
			}
			if ok {
				seen[p] = struct{}{}
			}
		}
		if len(seen) >= b.quorum {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("barrier phase %d: %w", phase, ctx.Err())
		case <-ticker.C:
		}
	}
}

// ArriveAndAwait is Arrive followed by Await.
func (b *Barrier) ArriveAndAwait(ctx context.Context, phase int64) error {
	if err := b.Arrive(ctx, phase); err != nil {
		return err
	}
	return b.Await(ctx, phase)
}

// BarrierPolicy restricts arrivals to the group, one per phase per
// process, in the arriver's own name; ARRIVE tuples are permanent.
func BarrierPolicy(procs []policy.ProcessID) policy.Policy {
	member := make(map[policy.ProcessID]struct{}, len(procs))
	for _, p := range procs {
		member[p] = struct{}{}
	}
	return policy.New(
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: policy.And(
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str(tagArrive)),
			policy.EntryFieldIsInvoker(2),
			policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
				if _, ok := member[inv.Invoker]; !ok {
					return false
				}
				if _, isInt := inv.Entry.Field(1).IntValue(); !isInt {
					return false
				}
				_, dup := st.Rdp(tuple.T(tuple.Str(tagArrive), inv.Entry.Field(1), inv.Entry.Field(2)))
				return !dup
			}),
		)},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
	)
}

// Merge combines policies serving several abstractions on one space
// (rule order is preserved; deny-by-default still applies).
func Merge(pols ...policy.Policy) policy.Policy {
	var rules []policy.Rule
	for _, p := range pols {
		rules = append(rules, p.Rules()...)
	}
	return policy.New(rules...)
}
