package coord

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/bft"
	"peats/internal/policy"
)

// clusterTest exercises Lock and Elector over a 4-replica BFT cluster
// with one corrupt replica — the full Fig. 2 stack under the
// coordination abstractions.
func clusterTest(t *testing.T) {
	t.Helper()
	pol := Merge(LockPolicy(), ElectorPolicy())
	services := []bft.Service{
		bft.NewSpaceService(pol),
		bft.NewSpaceService(pol),
		bft.NewCorruptService(bft.NewSpaceService(pol)),
		bft.NewSpaceService(pol),
	}
	cl, err := bft.NewCluster(1, services)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Mutual exclusion across replicated clients.
	var counter int
	const workers, perWorker = 3, 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := policy.ProcessID(fmt.Sprintf("w%d", w))
			ts := bft.NewRemoteSpace(cl.Client(string(me)))
			l := NewLock(ts, me, "shared")
			l.Poll = 2 * time.Millisecond
			for i := 0; i < perWorker; i++ {
				if err := l.Acquire(ctx); err != nil {
					t.Error(err)
					return
				}
				counter++
				if err := l.Release(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*perWorker {
		t.Errorf("counter = %d, want %d", counter, workers*perWorker)
	}

	// Election across replicated clients.
	leaders := make([]policy.ProcessID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := policy.ProcessID(fmt.Sprintf("w%d", w))
			ts := bft.NewRemoteSpace(cl.Client(string(me) + "-e"))
			// Note: the elector's identity is the client transport id.
			e := NewElector(ts, policy.ProcessID(string(me)+"-e"))
			l, err := e.Elect(ctx, 7)
			if err != nil {
				t.Error(err)
				return
			}
			leaders[w] = l
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if leaders[w] != leaders[0] {
			t.Fatalf("election disagreement: %v vs %v", leaders[w], leaders[0])
		}
	}
}
