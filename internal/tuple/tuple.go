// Package tuple implements the tuple model of the LINDA coordination
// language as used by policy-enforced augmented tuple spaces (PEATS).
//
// A tuple is a finite sequence of typed fields. A tuple in which every
// field holds a defined value is an entry; a tuple with one or more
// undefined fields (wildcards or formal fields) is a template. An entry e
// and a template t match, written m(e, t), iff they have the same arity
// and every defined field of t equals the corresponding field of e.
// Formal fields (written ?v in the paper) additionally bind the matched
// value to a variable name, which callers retrieve through Bindings.
package tuple

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the type of a defined field value.
type Kind uint8

// Field value kinds. KindNone is reserved for undefined (wildcard or
// formal) fields, which carry no value.
const (
	KindNone Kind = iota
	KindInt
	KindString
	KindBool
	KindBytes
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindBytes:
		return "bytes"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// fieldMode distinguishes defined values from the two undefined forms.
type fieldMode uint8

const (
	modeValue fieldMode = iota + 1
	modeWildcard
	modeFormal
)

// Field is a single position of a tuple: a defined value, the wildcard
// "*" (any value), or a formal field "?name" that binds on match.
// The zero Field is invalid; construct fields with Int, Str, Bool,
// Bytes, Any, or Formal.
type Field struct {
	mode fieldMode
	kind Kind
	i    int64
	s    string // string value, or formal-field variable name
	b    []byte
}

// Int returns a defined int64 field.
func Int(v int64) Field { return Field{mode: modeValue, kind: KindInt, i: v} }

// Str returns a defined string field.
func Str(v string) Field { return Field{mode: modeValue, kind: KindString, s: v} }

// Bool returns a defined boolean field.
func Bool(v bool) Field {
	var i int64
	if v {
		i = 1
	}
	return Field{mode: modeValue, kind: KindBool, i: i}
}

// Bytes returns a defined byte-slice field. The slice is copied so later
// mutation by the caller cannot alter tuples already stored in a space.
func Bytes(v []byte) Field {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Field{mode: modeValue, kind: KindBytes, b: cp}
}

// Any returns the wildcard field "*", matching any defined value.
func Any() Field { return Field{mode: modeWildcard} }

// Formal returns the formal field "?name". It matches any defined value
// and binds the matched value to name in the match Bindings.
func Formal(name string) Field { return Field{mode: modeFormal, s: name} }

// IsValue reports whether the field holds a defined value.
func (f Field) IsValue() bool { return f.mode == modeValue }

// IsWildcard reports whether the field is the wildcard "*".
func (f Field) IsWildcard() bool { return f.mode == modeWildcard }

// IsFormal reports whether the field is a formal field "?name".
func (f Field) IsFormal() bool { return f.mode == modeFormal }

// IsZero reports whether the field is the invalid zero Field.
func (f Field) IsZero() bool { return f.mode == 0 }

// Kind returns the kind of a defined field, or KindNone for wildcard and
// formal fields.
func (f Field) Kind() Kind {
	if f.mode != modeValue {
		return KindNone
	}
	return f.kind
}

// Name returns the variable name of a formal field, or "" otherwise.
func (f Field) Name() string {
	if f.mode != modeFormal {
		return ""
	}
	return f.s
}

// IntValue returns the int64 value of a KindInt field.
// The second result is false if the field is not a defined int.
func (f Field) IntValue() (int64, bool) {
	if f.mode != modeValue || f.kind != KindInt {
		return 0, false
	}
	return f.i, true
}

// StrValue returns the string value of a KindString field.
func (f Field) StrValue() (string, bool) {
	if f.mode != modeValue || f.kind != KindString {
		return "", false
	}
	return f.s, true
}

// BoolValue returns the value of a KindBool field.
func (f Field) BoolValue() (bool, bool) {
	if f.mode != modeValue || f.kind != KindBool {
		return false, false
	}
	return f.i != 0, true
}

// BytesValue returns a copy of the value of a KindBytes field.
func (f Field) BytesValue() ([]byte, bool) {
	if f.mode != modeValue || f.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(f.b))
	copy(cp, f.b)
	return cp, true
}

// Equal reports whether two fields are identical: same mode, and for
// defined values same kind and value; formal fields compare by name.
func (f Field) Equal(g Field) bool {
	if f.mode != g.mode {
		return false
	}
	switch f.mode {
	case modeWildcard:
		return true
	case modeFormal:
		return f.s == g.s
	case modeValue:
		if f.kind != g.kind {
			return false
		}
		switch f.kind {
		case KindInt, KindBool:
			return f.i == g.i
		case KindString:
			return f.s == g.s
		case KindBytes:
			return string(f.b) == string(g.b)
		}
	}
	return false
}

// String renders the field in the paper's notation: values verbatim,
// wildcards as "*", formal fields as "?name".
func (f Field) String() string {
	switch f.mode {
	case modeWildcard:
		return "*"
	case modeFormal:
		return "?" + f.s
	case modeValue:
		switch f.kind {
		case KindInt:
			return strconv.FormatInt(f.i, 10)
		case KindString:
			return strconv.Quote(f.s)
		case KindBool:
			return strconv.FormatBool(f.i != 0)
		case KindBytes:
			return fmt.Sprintf("0x%x", f.b)
		}
	}
	return "<invalid>"
}

// MatchKey returns a canonical key for a defined field value: two
// defined fields are Equal iff their keys are equal, so the key can
// index hash buckets without weakening match semantics. It returns
// ok=false for wildcard and formal fields, which have no value to key.
func (f Field) MatchKey() (string, bool) {
	if f.mode != modeValue {
		return "", false
	}
	switch f.kind {
	case KindInt, KindBool:
		var buf [9]byte
		buf[0] = byte(f.kind)
		binary.BigEndian.PutUint64(buf[1:], uint64(f.i))
		return string(buf[:]), true
	case KindString:
		return string([]byte{byte(f.kind)}) + f.s, true
	case KindBytes:
		return string([]byte{byte(f.kind)}) + string(f.b), true
	}
	return "", false
}

// BitSize returns the number of bits of payload the field occupies,
// used by the memory-accounting experiments (E1). Undefined fields
// occupy zero payload bits.
func (f Field) BitSize() int {
	if f.mode != modeValue {
		return 0
	}
	switch f.kind {
	case KindBool:
		return 1
	case KindInt:
		// Minimal two's-complement width of the value, at least 1 bit.
		v := f.i
		if v < 0 {
			v = ^v
		}
		bits := 1
		for v > 0 {
			bits++
			v >>= 1
		}
		return bits
	case KindString:
		return 8 * len(f.s)
	case KindBytes:
		return 8 * len(f.b)
	}
	return 0
}

// Tuple is an immutable sequence of fields; it represents either an
// entry or a template depending on whether all fields are defined.
type Tuple struct {
	fields []Field
}

// T constructs a tuple from the given fields.
func T(fields ...Field) Tuple {
	cp := make([]Field, len(fields))
	copy(cp, fields)
	return Tuple{fields: cp}
}

// Arity returns the number of fields.
func (t Tuple) Arity() int { return len(t.fields) }

// Field returns the i-th field. It returns the zero Field if i is out
// of range, so policy predicates can probe positions safely.
func (t Tuple) Field(i int) Field {
	if i < 0 || i >= len(t.fields) {
		return Field{}
	}
	return t.fields[i]
}

// Fields returns a copy of the field sequence.
func (t Tuple) Fields() []Field {
	cp := make([]Field, len(t.fields))
	copy(cp, t.fields)
	return cp
}

// IsZero reports whether the tuple is the zero Tuple (no fields).
func (t Tuple) IsZero() bool { return len(t.fields) == 0 }

// IsEntry reports whether every field is a defined value.
func (t Tuple) IsEntry() bool {
	for _, f := range t.fields {
		if !f.IsValue() {
			return false
		}
	}
	return len(t.fields) > 0
}

// IsTemplate reports whether the tuple has at least one undefined field.
func (t Tuple) IsTemplate() bool { return len(t.fields) > 0 && !t.IsEntry() }

// Equal reports field-by-field equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t.fields) != len(u.fields) {
		return false
	}
	for i := range t.fields {
		if !t.fields[i].Equal(u.fields[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as ⟨f1, f2, ...⟩.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString("<")
	for i, f := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteString(">")
	return b.String()
}

// BitSize returns the total payload bits of the tuple's defined fields.
func (t Tuple) BitSize() int {
	total := 0
	for _, f := range t.fields {
		total += f.BitSize()
	}
	return total
}

// Bindings maps formal-field variable names to the values they matched.
type Bindings map[string]Field

// Match implements the matching predicate m(e, t) of the paper: the
// entry e matches template t iff they have the same arity and every
// defined field of t equals the corresponding field of e. Wildcards
// match any value; formal fields match any value and bind it.
//
// The returned Bindings holds one entry per formal field of t (nil when
// t has none). Match returns false if e is not an entry.
func Match(e, t Tuple) (Bindings, bool) {
	if !e.IsEntry() || len(e.fields) != len(t.fields) {
		return nil, false
	}
	var binds Bindings
	for i, tf := range t.fields {
		ef := e.fields[i]
		switch {
		case tf.IsWildcard():
			// any value matches
		case tf.IsFormal():
			if binds == nil {
				binds = make(Bindings)
			}
			binds[tf.s] = ef
		default:
			if !tf.Equal(ef) {
				return nil, false
			}
		}
	}
	return binds, true
}

// Matches reports whether entry e matches template t, discarding bindings.
func Matches(e, t Tuple) bool {
	_, ok := Match(e, t)
	return ok
}
