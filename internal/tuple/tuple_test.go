package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFieldConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		f    Field
		kind Kind
		str  string
	}{
		{"int", Int(42), KindInt, "42"},
		{"negative int", Int(-7), KindInt, "-7"},
		{"string", Str("hello"), KindString, `"hello"`},
		{"bool true", Bool(true), KindBool, "true"},
		{"bool false", Bool(false), KindBool, "false"},
		{"bytes", Bytes([]byte{0xab, 0xcd}), KindBytes, "0xabcd"},
		{"wildcard", Any(), KindNone, "*"},
		{"formal", Formal("v"), KindNone, "?v"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.f.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestFieldValueAccessors(t *testing.T) {
	if v, ok := Int(99).IntValue(); !ok || v != 99 {
		t.Errorf("IntValue = %d, %v", v, ok)
	}
	if _, ok := Str("x").IntValue(); ok {
		t.Error("IntValue on string field should fail")
	}
	if v, ok := Str("abc").StrValue(); !ok || v != "abc" {
		t.Errorf("StrValue = %q, %v", v, ok)
	}
	if v, ok := Bool(true).BoolValue(); !ok || !v {
		t.Errorf("BoolValue = %v, %v", v, ok)
	}
	if v, ok := Bytes([]byte{1, 2}).BytesValue(); !ok || len(v) != 2 {
		t.Errorf("BytesValue = %v, %v", v, ok)
	}
	if _, ok := Any().StrValue(); ok {
		t.Error("StrValue on wildcard should fail")
	}
	if Formal("x").Name() != "x" {
		t.Error("Name of formal field")
	}
	if Int(1).Name() != "" {
		t.Error("Name of value field should be empty")
	}
}

func TestBytesFieldIsCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	f := Bytes(src)
	src[0] = 99
	got, _ := f.BytesValue()
	if got[0] != 1 {
		t.Error("Bytes field aliased caller's slice")
	}
	// Returned slice must also be a copy.
	got[1] = 77
	got2, _ := f.BytesValue()
	if got2[1] != 2 {
		t.Error("BytesValue returned aliased slice")
	}
}

func TestFieldEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Field
		want bool
	}{
		{"equal ints", Int(1), Int(1), true},
		{"unequal ints", Int(1), Int(2), false},
		{"equal strings", Str("a"), Str("a"), true},
		{"unequal strings", Str("a"), Str("b"), false},
		{"int vs string", Int(1), Str("1"), false},
		{"bool vs int", Bool(true), Int(1), false},
		{"wildcards", Any(), Any(), true},
		{"formals same name", Formal("x"), Formal("x"), true},
		{"formals diff name", Formal("x"), Formal("y"), false},
		{"wildcard vs formal", Any(), Formal("x"), false},
		{"value vs wildcard", Int(1), Any(), false},
		{"equal bytes", Bytes([]byte{1}), Bytes([]byte{1}), true},
		{"unequal bytes", Bytes([]byte{1}), Bytes([]byte{2}), false},
		{"zero fields", Field{}, Field{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTupleEntryTemplate(t *testing.T) {
	entry := T(Str("PROPOSE"), Int(3), Int(1))
	tmpl := T(Str("PROPOSE"), Int(3), Formal("v"))
	wild := T(Str("PROPOSE"), Any(), Any())

	if !entry.IsEntry() || entry.IsTemplate() {
		t.Error("entry classification")
	}
	if tmpl.IsEntry() || !tmpl.IsTemplate() {
		t.Error("template classification")
	}
	if wild.IsEntry() || !wild.IsTemplate() {
		t.Error("wildcard template classification")
	}
	var zero Tuple
	if zero.IsEntry() || zero.IsTemplate() || !zero.IsZero() {
		t.Error("zero tuple classification")
	}
	if entry.Arity() != 3 {
		t.Errorf("Arity = %d", entry.Arity())
	}
}

func TestTupleFieldOutOfRange(t *testing.T) {
	tu := T(Int(1))
	if !tu.Field(-1).IsZero() || !tu.Field(1).IsZero() {
		t.Error("out-of-range Field should be zero")
	}
	if tu.Field(0).IsZero() {
		t.Error("in-range Field should not be zero")
	}
}

func TestMatch(t *testing.T) {
	entry := T(Str("PROPOSE"), Int(3), Int(1))
	tests := []struct {
		name  string
		tmpl  Tuple
		want  bool
		binds map[string]Field
	}{
		{"exact", T(Str("PROPOSE"), Int(3), Int(1)), true, nil},
		{"formal binds", T(Str("PROPOSE"), Int(3), Formal("v")), true,
			map[string]Field{"v": Int(1)}},
		{"wildcards", T(Str("PROPOSE"), Any(), Any()), true, nil},
		{"two formals", T(Str("PROPOSE"), Formal("p"), Formal("v")), true,
			map[string]Field{"p": Int(3), "v": Int(1)}},
		{"wrong tag", T(Str("DECISION"), Int(3), Int(1)), false, nil},
		{"wrong arity", T(Str("PROPOSE"), Int(3)), false, nil},
		{"wrong value", T(Str("PROPOSE"), Int(3), Int(0)), false, nil},
		{"wrong type", T(Str("PROPOSE"), Int(3), Str("1")), false, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			binds, ok := Match(entry, tt.tmpl)
			if ok != tt.want {
				t.Fatalf("Match = %v, want %v", ok, tt.want)
			}
			for name, want := range tt.binds {
				if got, ok := binds[name]; !ok || !got.Equal(want) {
					t.Errorf("binding %q = %v, want %v", name, got, want)
				}
			}
			if len(binds) != len(tt.binds) {
				t.Errorf("got %d bindings, want %d", len(binds), len(tt.binds))
			}
		})
	}
}

func TestMatchRejectsTemplateAsEntry(t *testing.T) {
	tmpl := T(Str("X"), Any())
	if Matches(tmpl, T(Str("X"), Any())) {
		t.Error("a template must not match as an entry")
	}
}

func TestTupleEqual(t *testing.T) {
	a := T(Str("SEQ"), Int(1), Bytes([]byte{9}))
	b := T(Str("SEQ"), Int(1), Bytes([]byte{9}))
	c := T(Str("SEQ"), Int(2), Bytes([]byte{9}))
	if !a.Equal(b) {
		t.Error("equal tuples")
	}
	if a.Equal(c) {
		t.Error("unequal tuples")
	}
	if a.Equal(T(Str("SEQ"), Int(1))) {
		t.Error("different arity")
	}
}

func TestTupleString(t *testing.T) {
	tu := T(Str("DECISION"), Formal("d"), Any(), Int(5))
	want := `<"DECISION", ?d, *, 5>`
	if got := tu.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTupleFieldsIsCopy(t *testing.T) {
	tu := T(Int(1), Int(2))
	fs := tu.Fields()
	fs[0] = Int(99)
	if v, _ := tu.Field(0).IntValue(); v != 1 {
		t.Error("Fields() aliased internal slice")
	}
}

func TestBitSize(t *testing.T) {
	tests := []struct {
		name string
		f    Field
		want int
	}{
		{"bool", Bool(true), 1},
		{"zero int", Int(0), 1},
		{"one", Int(1), 2},
		{"seven", Int(7), 4},
		{"eight", Int(8), 5},
		{"negative", Int(-8), 4},
		{"string", Str("ab"), 16},
		{"bytes", Bytes([]byte{1, 2, 3}), 24},
		{"wildcard", Any(), 0},
		{"formal", Formal("v"), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.BitSize(); got != tt.want {
				t.Errorf("BitSize = %d, want %d", got, tt.want)
			}
		})
	}
	tu := T(Bool(true), Int(7))
	if got := tu.BitSize(); got != 5 {
		t.Errorf("tuple BitSize = %d, want 5", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tuples := []Tuple{
		T(),
		T(Int(0)),
		T(Int(math.MaxInt64), Int(math.MinInt64)),
		T(Str(""), Str("hello"), Bool(true), Bool(false)),
		T(Bytes(nil), Bytes([]byte{0, 255})),
		T(Any(), Formal("x"), Int(-1)),
		T(Str("DECISION"), Formal("d"), Any()),
	}
	for _, tu := range tuples {
		enc := Encode(tu)
		dec, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", tu, err)
		}
		if n != len(enc) {
			t.Errorf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if !dec.Equal(tu) {
			t.Errorf("round trip: got %v, want %v", dec, tu)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	a := Encode(T(Str("x"), Int(5)))
	b := Encode(T(Str("x"), Int(5)))
	if string(a) != string(b) {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},             // arity 1, no field
		{0x01, 0xff},       // unknown mode
		{0x01, 0x01},       // value field, missing kind
		{0x01, 0x01, 0xee}, // unknown kind
		{0x01, 0x01, byte(KindString), 0x05, 'a'}, // truncated string
		{0x01, 0x03, 0x10, 'a'},                   // truncated formal name
		{0x01, 0x01, byte(KindBool)},              // truncated bool
		{0x01, 0x01, byte(KindBytes), 0x02, 0x01}, // truncated bytes
		{0x02, 0x01, byte(KindInt), 0x00},         // second field missing
		{0x01, 0x01, byte(KindInt), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, // overlong varint
	}
	for i, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Errorf("case %d: expected decode error for % x", i, c)
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(i int64, s string, bs []byte, b bool, name string) bool {
		tu := T(Int(i), Str(s), Bytes(bs), Bool(b), Formal(name), Any())
		dec, n, err := Decode(Encode(tu))
		return err == nil && n == len(Encode(tu)) && dec.Equal(tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchIsDeterministicProperty(t *testing.T) {
	// Matching an entry against itself always succeeds; matching against
	// a template with wildcards in every position succeeds too.
	f := func(i int64, s string) bool {
		e := T(Int(i), Str(s))
		if !Matches(e, e) {
			return false
		}
		return Matches(e, T(Any(), Any())) && Matches(e, T(Formal("a"), Formal("b")))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
