package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Deterministic binary encoding for fields and tuples.
//
// The encoding is self-delimiting and canonical: equal tuples always
// produce identical byte strings, which the BFT substrate relies on for
// request digests and reply voting.
//
// Layout:
//
//	field  := mode:uint8 payload
//	payload(value)    := kind:uint8 data
//	payload(wildcard) := (empty)
//	payload(formal)   := len:uvarint name-bytes
//	data(int)    := zigzag-uvarint
//	data(string) := len:uvarint bytes
//	data(bool)   := uint8 (0 or 1)
//	data(bytes)  := len:uvarint bytes
//	tuple  := arity:uvarint field*

// ErrBadEncoding is returned when decoding malformed tuple bytes.
var ErrBadEncoding = errors.New("tuple: bad encoding")

// AppendField appends the canonical encoding of f to dst.
func AppendField(dst []byte, f Field) []byte {
	dst = append(dst, byte(f.mode))
	switch f.mode {
	case modeWildcard:
	case modeFormal:
		dst = binary.AppendUvarint(dst, uint64(len(f.s)))
		dst = append(dst, f.s...)
	case modeValue:
		dst = append(dst, byte(f.kind))
		switch f.kind {
		case KindInt:
			dst = binary.AppendUvarint(dst, zigzag(f.i))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(f.s)))
			dst = append(dst, f.s...)
		case KindBool:
			dst = append(dst, byte(f.i))
		case KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(f.b)))
			dst = append(dst, f.b...)
		}
	}
	return dst
}

// Append appends the canonical encoding of t to dst.
func Append(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.fields)))
	for _, f := range t.fields {
		dst = AppendField(dst, f)
	}
	return dst
}

// Encode returns the canonical encoding of t.
func Encode(t Tuple) []byte { return Append(nil, t) }

// DecodeField decodes one field from b, returning the field and the
// number of bytes consumed.
func DecodeField(b []byte) (Field, int, error) {
	if len(b) == 0 {
		return Field{}, 0, fmt.Errorf("%w: empty field", ErrBadEncoding)
	}
	mode := fieldMode(b[0])
	n := 1
	switch mode {
	case modeWildcard:
		return Field{mode: modeWildcard}, n, nil
	case modeFormal:
		s, m, err := decodeString(b[n:])
		if err != nil {
			return Field{}, 0, err
		}
		return Field{mode: modeFormal, s: s}, n + m, nil
	case modeValue:
		if len(b) < n+1 {
			return Field{}, 0, fmt.Errorf("%w: truncated kind", ErrBadEncoding)
		}
		kind := Kind(b[n])
		n++
		switch kind {
		case KindInt:
			u, m := binary.Uvarint(b[n:])
			if m <= 0 {
				return Field{}, 0, fmt.Errorf("%w: bad int", ErrBadEncoding)
			}
			return Field{mode: modeValue, kind: KindInt, i: unzigzag(u)}, n + m, nil
		case KindString:
			s, m, err := decodeString(b[n:])
			if err != nil {
				return Field{}, 0, err
			}
			return Field{mode: modeValue, kind: KindString, s: s}, n + m, nil
		case KindBool:
			if len(b) < n+1 {
				return Field{}, 0, fmt.Errorf("%w: truncated bool", ErrBadEncoding)
			}
			var v int64
			if b[n] != 0 {
				v = 1
			}
			return Field{mode: modeValue, kind: KindBool, i: v}, n + 1, nil
		case KindBytes:
			s, m, err := decodeString(b[n:])
			if err != nil {
				return Field{}, 0, err
			}
			return Field{mode: modeValue, kind: KindBytes, b: []byte(s)}, n + m, nil
		default:
			return Field{}, 0, fmt.Errorf("%w: unknown kind %d", ErrBadEncoding, kind)
		}
	default:
		return Field{}, 0, fmt.Errorf("%w: unknown mode %d", ErrBadEncoding, mode)
	}
}

// Decode decodes one tuple from b, returning the tuple and the number of
// bytes consumed.
func Decode(b []byte) (Tuple, int, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return Tuple{}, 0, fmt.Errorf("%w: bad arity", ErrBadEncoding)
	}
	if arity > math.MaxInt32 {
		return Tuple{}, 0, fmt.Errorf("%w: arity %d too large", ErrBadEncoding, arity)
	}
	fields := make([]Field, 0, arity)
	for i := uint64(0); i < arity; i++ {
		f, m, err := DecodeField(b[n:])
		if err != nil {
			return Tuple{}, 0, err
		}
		fields = append(fields, f)
		n += m
	}
	return Tuple{fields: fields}, n, nil
}

func decodeString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, fmt.Errorf("%w: bad length", ErrBadEncoding)
	}
	if uint64(len(b)-n) < l {
		return "", 0, fmt.Errorf("%w: truncated string", ErrBadEncoding)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
