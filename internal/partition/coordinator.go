package partition

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/wire"
)

// Cross-partition submissions run a two-phase commit whose coordinator
// is the client itself — an untrusted party. Safety never rests on the
// coordinator:
//
//   - Each participant group's prepare vote is BFT-agreed and executed
//     against its own state; a YES parks the group's slice of effects
//     as a reservation, invisible to every other operation.
//   - The coordinator can only *transport* decisions, not invent them:
//     a group applies COMMIT only with vote certificates (2f+1 replica
//     attestations over the agreed vote bytes) proving every
//     participant voted YES on the same participant set, and ABORT
//     only with a certificate proving some participant voted NO or is
//     pinned aborted. Conflicting decisions sent to different groups
//     cannot both carry valid justification, so outcomes never
//     diverge.
//   - A coordinator that crashes mid-protocol leaves transactions
//     prepared; any party can finish them with Recover, which queries
//     the participants' agreed records (pinning still-unknown
//     transactions aborted, so the protocol terminates) and delivers
//     the unique justified decision.
//
// Interrupted Submit calls (context cancellation, crash) may therefore
// leave a transaction in doubt at some groups; its reserved tuples stay
// invisible until Recover delivers the decision.

// prepReply is one group's prepare or status answer.
type prepReply struct {
	outcome wire.TxOutcome
	cert    wire.VoteCert
	err     error
}

// invokeCertAll invokes op on every listed group concurrently and
// decodes the replies as transaction outcomes with certificates.
func (s *Space) invokeCertAll(ctx context.Context, idxs []int, mkOp func(gi int) []byte) []prepReply {
	replies := make([]prepReply, len(idxs))
	var wg sync.WaitGroup
	for k, gi := range idxs {
		wg.Add(1)
		go func(k, gi int) {
			defer wg.Done()
			raw, cert, err := s.groups[gi].client.InvokeCert(ctx, mkOp(gi))
			if err != nil {
				replies[k].err = err
				return
			}
			o, err := wire.DecodeTxOutcome(raw)
			if err != nil {
				replies[k].err = fmt.Errorf("partition: group %q: %w", s.groups[gi].id, err)
				return
			}
			replies[k] = prepReply{outcome: o, cert: cert}
		}(k, gi)
	}
	wg.Wait()
	return replies
}

// decide delivers a decision to every listed group and verifies each
// lands in the wanted final state.
func (s *Space) decide(ctx context.Context, idxs []int, dec wire.TxDecision, want uint8) error {
	payload := wire.EncodeTxDecision(dec)
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for k, gi := range idxs {
		wg.Add(1)
		go func(k, gi int) {
			defer wg.Done()
			raw, err := s.groups[gi].client.Invoke(ctx, payload)
			if err != nil {
				errs[k] = err
				return
			}
			o, err := wire.DecodeTxOutcome(raw)
			if err != nil {
				errs[k] = fmt.Errorf("partition: group %q: %w", s.groups[gi].id, err)
				return
			}
			if o.State != want {
				errs[k] = fmt.Errorf("partition: group %q reports transaction state %d, want %d",
					s.groups[gi].id, o.State, want)
			}
		}(k, gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// submitCross runs a multi-group submission as a two-phase commit.
func (s *Space) submitCross(ctx context.Context, ops []peats.Op, routes []int) ([]peats.Result, error) {
	if len(ops) > wire.MaxTxOps {
		return nil, fmt.Errorf("peats: submission of %d ops exceeds the %d-op wire bound",
			len(ops), wire.MaxTxOps)
	}
	// Slice the submission per owning group, keeping each op's original
	// index: within a group order is preserved, and ops of different
	// groups touch disjoint key slices, so the per-group executions
	// compose to exactly the single-space execution order.
	perGroup := make(map[int][]int) // group index → original op indices
	var idxs []int
	for i, gi := range routes {
		if _, seen := perGroup[gi]; !seen {
			idxs = append(idxs, gi)
		}
		perGroup[gi] = append(perGroup[gi], i)
	}
	sort.Ints(idxs)
	parts := make([]string, len(idxs))
	for k, gi := range idxs {
		parts[k] = s.groups[gi].id
	}
	sort.Strings(parts)
	// Transaction IDs must be unpredictable, not just unique: any
	// authenticated party may status-probe an unknown ID and thereby pin
	// it aborted (presumed abort, required for coordinator recovery to
	// terminate). With guessable IDs a rival could pre-pin this client's
	// next transactions aborted — a targeted denial of service — so each
	// ID carries a fresh random nonce alongside the readable sequence.
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("partition: tx nonce: %w", err)
	}
	s.txSeq++
	txID := fmt.Sprintf("%s:%d:%x", s.id, s.txSeq, nonce)

	replies := s.invokeCertAll(ctx, idxs, func(gi int) []byte {
		sliced := make([]peats.Op, len(perGroup[gi]))
		for k, oi := range perGroup[gi] {
			sliced[k] = ops[oi]
		}
		return wire.EncodeTxPrepare(wire.TxPrepare{
			TxID: txID, Participants: parts, Ops: toWireOps(sliced),
		})
	})
	for _, r := range replies {
		if r.err != nil {
			return nil, r.err
		}
	}

	allYes := true
	for _, r := range replies {
		if r.outcome.State != wire.TxVoteYes {
			allYes = false
		}
	}
	if allYes {
		dec := wire.TxDecision{TxID: txID, Commit: true}
		for _, r := range replies {
			dec.Certs = append(dec.Certs, r.cert)
		}
		if err := s.decide(ctx, idxs, dec, wire.TxCommitted); err != nil {
			return nil, err
		}
		merged := make([]wire.SpaceResult, len(ops))
		for k, gi := range idxs {
			if len(replies[k].outcome.Results) != len(perGroup[gi]) {
				return nil, fmt.Errorf("partition: group %q returned %d results for %d ops",
					s.groups[gi].id, len(replies[k].outcome.Results), len(perGroup[gi]))
			}
			for j, oi := range perGroup[gi] {
				merged[oi] = replies[k].outcome.Results[j]
			}
		}
		return liftResults(ops, merged)
	}

	// Some group voted NO (or the transaction was already pinned
	// aborted there): abort everywhere, justified by the negative
	// votes' certificates.
	dec := wire.TxDecision{TxID: txID}
	for _, r := range replies {
		if r.outcome.State != wire.TxVoteYes {
			dec.Certs = append(dec.Certs, r.cert)
		}
	}
	if err := s.decide(ctx, idxs, dec, wire.TxAborted); err != nil {
		return nil, err
	}
	return s.mergeAborted(ops, idxs, perGroup, replies)
}

// mergeAborted reconstructs the single-space outcome of an aborted
// submission: the earliest aborting operation (by original index)
// decides the unit's fate, every operation after it reports Skipped,
// and the prefix keeps the results the groups computed — identical to
// what a single group executing the whole unit would have returned,
// because operations of different groups touch disjoint key slices.
func (s *Space) mergeAborted(
	ops []peats.Op, idxs []int, perGroup map[int][]int, replies []prepReply,
) ([]peats.Result, error) {
	abortIdx := len(ops)
	var abortRes wire.SpaceResult
	for k, gi := range idxs {
		o := replies[k].outcome
		if o.State == wire.TxVoteYes {
			continue
		}
		orig := perGroup[gi]
		if len(o.Results) != len(orig) {
			// The group aborted without per-op results (a pinned or
			// duplicate transaction): charge the abort to its first op.
			if orig[0] < abortIdx {
				abortIdx = orig[0]
				abortRes = wire.SpaceResult{Status: wire.StatusError,
					Detail: fmt.Sprintf("transaction aborted at group %s", s.groups[gi].id)}
			}
			continue
		}
		for j, sr := range o.Results {
			aborting := sr.Status == wire.StatusDenied || sr.Status == wire.StatusError ||
				(ops[orig[j]].Code == policy.OpInp && sr.Status == wire.StatusOK && !sr.Found)
			if aborting {
				if orig[j] < abortIdx {
					abortIdx = orig[j]
					abortRes = sr
				}
				break
			}
		}
	}
	if abortIdx == len(ops) {
		return nil, errors.New("partition: aborted transaction with no aborting operation")
	}
	merged := make([]wire.SpaceResult, len(ops))
	for k, gi := range idxs {
		o := replies[k].outcome
		for j, oi := range perGroup[gi] {
			if j < len(o.Results) && oi < abortIdx {
				merged[oi] = o.Results[j]
			} else if oi != abortIdx {
				merged[oi] = wire.SpaceResult{Status: wire.StatusSkipped}
			}
		}
	}
	merged[abortIdx] = abortRes
	return liftResults(ops, merged)
}

// liftResults converts a merged result vector to client results with
// the exact error semantics of the single-group submission path:
// denial surfaces as DeniedError with the executed prefix, an inp miss
// or a skip as ErrAborted.
func liftResults(ops []peats.Op, merged []wire.SpaceResult) ([]peats.Result, error) {
	results := make([]peats.Result, 0, len(ops))
	for i, sr := range merged {
		switch sr.Status {
		case wire.StatusOK:
		case wire.StatusDenied:
			return results, &peats.DeniedError{Detail: sr.Detail}
		case wire.StatusSkipped:
			return results, fmt.Errorf("%w: op %d skipped", peats.ErrAborted, i)
		default:
			return results, errors.New("peats service: " + sr.Detail)
		}
		results = append(results, peats.NewResult(ops[i], sr.Found, sr.Inserted, sr.Tuple, sr.Tuples))
		if ops[i].Code == policy.OpInp && !sr.Found {
			return results, fmt.Errorf("%w: op %d (inp %v) found no match",
				peats.ErrAborted, i, ops[i].Template)
		}
	}
	return results, nil
}

// Recover finishes an in-doubt cross-partition transaction on behalf
// of a crashed (or Byzantine) coordinator: it queries every
// participant group's agreed record — pinning the transaction aborted
// wherever it is unknown, so the protocol terminates — and delivers
// the unique decision those records justify. It returns whether the
// transaction committed. Any number of recoverers may race; decisions
// are idempotent and certificate validation makes the outcome unique.
func (s *Space) Recover(ctx context.Context, txID string, participants []string) (bool, error) {
	idxs := make([]int, 0, len(participants))
	for _, id := range participants {
		found := false
		for gi := range s.groups {
			if s.groups[gi].id == id {
				idxs = append(idxs, gi)
				found = true
				break
			}
		}
		if !found {
			return false, fmt.Errorf("partition: unknown participant group %q", id)
		}
	}
	statusOp := wire.EncodeTxStatus(wire.TxStatus{TxID: txID})
	replies := s.invokeCertAll(ctx, idxs, func(int) []byte { return statusOp })
	for _, r := range replies {
		if r.err != nil {
			return false, r.err
		}
	}
	allYes := true
	committed := false
	for _, r := range replies {
		switch r.outcome.State {
		case wire.TxVoteYes:
		case wire.TxCommitted:
			committed = true
		default:
			allYes = false
		}
	}
	if committed && !allYes {
		// Impossible under the protocol: commit requires universal YES
		// evidence, which forecloses every justified abort.
		return false, errors.New("partition: participants disagree on a decided transaction")
	}
	dec := wire.TxDecision{TxID: txID, Commit: allYes}
	want := uint8(wire.TxAborted)
	if allYes {
		want = wire.TxCommitted
		for _, r := range replies {
			dec.Certs = append(dec.Certs, r.cert)
		}
	} else {
		for _, r := range replies {
			if r.outcome.State != wire.TxVoteYes && r.outcome.State != wire.TxCommitted {
				dec.Certs = append(dec.Certs, r.cert)
			}
		}
	}
	if err := s.decide(ctx, idxs, dec, want); err != nil {
		return false, err
	}
	return allYes, nil
}
