// Package partition realises the partitioned multi-group deployment:
// M independent BFT replica groups, each owning the slice of the tuple
// key space the canonical FNV-1a(arity, first-field) routing rule
// assigns to it, with a client-side router that sends every
// single-partition submission straight to its owning group (zero added
// round trips) and drives cross-partition submissions through a
// BFT-agreed two-phase commit whose coordinator — the client — is
// untrusted.
package partition

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"

	"peats/internal/bft"
	"peats/internal/space"
	"peats/internal/tuple"
)

// ReplicaSpec names one replica of a group and, in a networked
// deployment, its listen address.
type ReplicaSpec struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// GroupSpec describes one replica group: its identity, fault bound and
// members (3F+1 of them).
type GroupSpec struct {
	ID       string        `json:"id"`
	F        int           `json:"f"`
	Replicas []ReplicaSpec `json:"replicas"`
}

// Topology describes a partitioned deployment. The order of Groups is
// canonical: group i owns the tuples the routing rule maps to index i,
// so every client and every server must use the same ordering (the
// topology file is part of the trusted setup, like the key material).
type Topology struct {
	Groups []GroupSpec `json:"groups"`
}

// Validate checks structural sanity: at least one group, unique group
// and replica identities, and 3F+1 replicas per group.
func (t *Topology) Validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("partition: topology has no groups")
	}
	seen := make(map[string]struct{}, len(t.Groups))
	for _, g := range t.Groups {
		if g.ID == "" {
			return fmt.Errorf("partition: group with empty id")
		}
		if _, dup := seen[g.ID]; dup {
			return fmt.Errorf("partition: duplicate group id %q", g.ID)
		}
		seen[g.ID] = struct{}{}
		if g.F < 0 {
			return fmt.Errorf("partition: group %q with negative f", g.ID)
		}
		if len(g.Replicas) != 3*g.F+1 {
			return fmt.Errorf("partition: group %q has %d replicas, need %d for f=%d",
				g.ID, len(g.Replicas), 3*g.F+1, g.F)
		}
		rseen := make(map[string]struct{}, len(g.Replicas))
		for _, r := range g.Replicas {
			if r.ID == "" {
				return fmt.Errorf("partition: group %q has a replica with empty id", g.ID)
			}
			if _, dup := rseen[r.ID]; dup {
				return fmt.Errorf("partition: group %q has duplicate replica id %q", g.ID, r.ID)
			}
			rseen[r.ID] = struct{}{}
		}
	}
	return nil
}

// Group returns the spec of the named group.
func (t *Topology) Group(id string) (GroupSpec, bool) {
	for _, g := range t.Groups {
		if g.ID == id {
			return g, true
		}
	}
	return GroupSpec{}, false
}

// GroupIDs returns the group identities in canonical order.
func (t *Topology) GroupIDs() []string {
	ids := make([]string, len(t.Groups))
	for i, g := range t.Groups {
		ids[i] = g.ID
	}
	return ids
}

// Directory derives the deployment's attestation directory from the
// attestation master secret: topology files carry no public keys, any
// holder of the master reconstructs them (bft.AttestKeyFor).
func (t *Topology) Directory(attestMaster []byte) bft.Directory {
	dir := make(bft.Directory, len(t.Groups))
	for _, g := range t.Groups {
		keys := make(map[string]ed25519.PublicKey, len(g.Replicas))
		for _, r := range g.Replicas {
			keys[r.ID] = bft.AttestKeyFor(attestMaster, g.ID, r.ID).Public().(ed25519.PublicKey)
		}
		dir[g.ID] = bft.GroupKeys{F: g.F, Keys: keys}
	}
	return dir
}

// RouteEntry returns the index of the group owning the entry, per the
// canonical FNV-1a(arity, first-field) rule — the same rule the
// space's shard router uses, so the partition map is stable and
// documented in one place.
func (t *Topology) RouteEntry(entry tuple.Tuple) int {
	return space.RouteEntry(entry, len(t.Groups))
}

// RouteTemplate returns the owning group index for a template whose
// first field is concrete, or ok=false for a wildcard-first template
// (which matches in every group and must fan out).
func (t *Topology) RouteTemplate(tmpl tuple.Tuple) (int, bool) {
	return space.RouteTemplate(tmpl, len(t.Groups))
}

// ParseTopology decodes and validates a JSON topology description.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("partition: parse topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopology reads a JSON topology description from a file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	return ParseTopology(data)
}
