package partition

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"peats/internal/bft"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/vclock"
	"peats/internal/wire"
)

// Group is one replica group's client-side handle: its identity in the
// topology and a BFT client connected to its replicas. The client must
// carry the group identity and attestation keys (bft.Cluster.Client
// provisions both when the cluster was built WithGroupIdentity), or
// cross-partition transactions cannot assemble vote certificates.
type Group struct {
	ID     string
	Client *bft.Client
}

// Space implements peats.TupleSpace over a partitioned deployment. It
// routes every operation to its owning group by the canonical
// FNV-1a(arity, first-field) rule:
//
//   - A submission whose operations all route to one group is
//     forwarded to that group's replicated space unchanged — the
//     common case costs exactly what a single-group deployment costs,
//     which is what lets M groups scale aggregate write throughput.
//   - A submission spanning several groups runs as a BFT-agreed
//     two-phase commit (see coordinator.go): atomic and isolated, at
//     the cost of one prepare and one decision round.
//   - A single wildcard-first read fans out to every group and merges
//     group-major: RdAll concatenates the per-group match lists in
//     canonical group order, Rdp returns the first group's match. A
//     wildcard Inp locates a match with a fan-out read, then consumes
//     that exact tuple from its owning group.
//
// Cross-partition submissions and wildcard Inp require every operation
// to carry a concrete first field (an op that routes nowhere cannot be
// part of an atomic multi-group unit); Cas additionally requires its
// template to route to its entry's group, since the swap must be
// atomic and a partitioned space cannot match in one group and insert
// in another atomically.
//
// Like the single-group handles, a Space issues one submission at a
// time per handle.
type Space struct {
	groups []groupHandle
	id     string // client process identity, shared by every group client
	txSeq  uint64 // per-handle transaction counter; txIDs are id-scoped

	// PollInterval / PollMaxInterval tune the blocking rd/in polling
	// loops, as on bft.RemoteSpace.
	PollInterval    time.Duration
	PollMaxInterval time.Duration
	// Clock supplies the polling timer; nil means real time.
	Clock vclock.Clock
}

type groupHandle struct {
	id     string
	client *bft.Client
	remote *bft.RemoteSpace
}

var _ peats.TupleSpace = (*Space)(nil)

// NewSpace builds a partitioned space handle over per-group clients,
// in canonical topology order. Every client must authenticate as the
// same process identity — the reference monitors of all groups must
// see one principal.
func NewSpace(groups []Group) (*Space, error) {
	if len(groups) == 0 {
		return nil, errors.New("partition: no groups")
	}
	s := &Space{id: groups[0].Client.ID()}
	for _, g := range groups {
		if g.Client.ID() != s.id {
			return nil, fmt.Errorf("partition: group %q client identity %q != %q",
				g.ID, g.Client.ID(), s.id)
		}
		if g.Client.Group != g.ID {
			return nil, fmt.Errorf("partition: group %q client is bound to group %q",
				g.ID, g.Client.Group)
		}
		s.groups = append(s.groups, groupHandle{
			id: g.ID, client: g.Client, remote: bft.NewRemoteSpace(g.Client),
		})
	}
	return s, nil
}

// ID returns the authenticated process identity.
func (s *Space) ID() policy.ProcessID { return policy.ProcessID(s.id) }

// routeOp returns the owning group index of one operation, or ok=false
// for a wildcard-first template.
func (s *Space) routeOp(op peats.Op) (int, bool) {
	switch op.Code {
	case policy.OpOut:
		return space.RouteEntry(op.Entry, len(s.groups)), true
	case policy.OpCas:
		return space.RouteEntry(op.Entry, len(s.groups)), true
	default:
		return space.RouteTemplate(op.Template, len(s.groups))
	}
}

// Submit implements peats.TupleSpace with the routing contract above.
func (s *Space) Submit(ctx context.Context, ops ...peats.Op) ([]peats.Result, error) {
	if len(ops) == 0 {
		return nil, errors.New("peats: empty submission")
	}
	routes := make([]int, len(ops))
	single := true
	for i, op := range ops {
		if op.Code == policy.OpCas {
			gi, ok := space.RouteTemplate(op.Template, len(s.groups))
			if !ok || gi != space.RouteEntry(op.Entry, len(s.groups)) {
				return nil, errors.New(
					"partition: cas template must route to the entry's partition")
			}
		}
		gi, ok := s.routeOp(op)
		if !ok {
			if len(ops) != 1 {
				return nil, errors.New(
					"partition: wildcard-first templates cannot join multi-op submissions")
			}
			return s.submitWildcard(ctx, ops[0])
		}
		routes[i] = gi
		single = single && gi == routes[0]
	}
	if single {
		// Every op owned by one group: forward unchanged. Same wire
		// forms, same fast paths, zero added round trips.
		return s.groups[routes[0]].remote.Submit(ctx, ops...)
	}
	return s.submitCross(ctx, ops, routes)
}

// submitWildcard serves a single wildcard-first read by fanning out.
func (s *Space) submitWildcard(ctx context.Context, op peats.Op) ([]peats.Result, error) {
	switch op.Code {
	case policy.OpRdAll:
		var all []tuple.Tuple
		for i := range s.groups {
			part, err := s.groups[i].remote.RdAll(ctx, op.Template)
			if err != nil {
				return nil, err
			}
			// Group-major merge: canonical group order, each group's
			// matches in its own sequence order.
			all = append(all, part...)
		}
		return []peats.Result{peats.NewResult(op, len(all) > 0, false, tuple.Tuple{}, all)}, nil
	case policy.OpRdp:
		for i := range s.groups {
			t, found, err := s.groups[i].remote.Rdp(ctx, op.Template)
			if err != nil {
				return nil, err
			}
			if found {
				return []peats.Result{peats.NewResult(op, true, false, t, nil)}, nil
			}
		}
		return []peats.Result{peats.NewResult(op, false, false, tuple.Tuple{}, nil)}, nil
	case policy.OpInp:
		t, found, err := s.wildcardInp(ctx, op.Template)
		if err != nil {
			return nil, err
		}
		res := peats.NewResult(op, found, false, t, nil)
		if !found {
			return []peats.Result{res}, fmt.Errorf(
				"%w: inp %v found no match", peats.ErrAborted, op.Template)
		}
		return []peats.Result{res}, nil
	case policy.OpOut, policy.OpCas:
		// Unreachable: entries always route.
		return nil, errors.New("partition: unroutable mutating operation")
	default:
		return nil, fmt.Errorf("peats: op %v cannot be submitted", op.Code)
	}
}

// wildcardInp consumes a match for a wildcard-first template: locate a
// candidate with a non-destructive fan-out read, then consume that
// exact tuple from its owning group (an entry used as a template
// matches only its own value). A candidate stolen by a concurrent
// consumer just moves the scan on; the not-found answer is only given
// after a full pass finds no candidate anywhere.
func (s *Space) wildcardInp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	for i := range s.groups {
		for {
			cand, found, err := s.groups[i].remote.Rdp(ctx, tmpl)
			if err != nil {
				return tuple.Tuple{}, false, err
			}
			if !found {
				break // this group is empty of matches; next group
			}
			got, ok, err := s.groups[i].remote.Inp(ctx, cand)
			if err != nil {
				if errors.Is(err, peats.ErrAborted) {
					continue // candidate raced away; rescan this group
				}
				return tuple.Tuple{}, false, err
			}
			if ok {
				return got, true, nil
			}
		}
	}
	return tuple.Tuple{}, false, nil
}

// Out implements peats.TupleSpace.
func (s *Space) Out(ctx context.Context, entry tuple.Tuple) error {
	_, err := s.Submit(ctx, peats.OutOp(entry))
	return err
}

// Rdp implements peats.TupleSpace.
func (s *Space) Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.Submit(ctx, peats.RdpOp(tmpl))
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// Inp implements peats.TupleSpace.
func (s *Space) Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.Submit(ctx, peats.InpOp(tmpl))
	if err != nil {
		if errors.Is(err, peats.ErrAborted) && len(res) == 1 && !res[0].Found {
			return tuple.Tuple{}, false, nil
		}
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// RdAll implements peats.TupleSpace.
func (s *Space) RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error) {
	res, err := s.Submit(ctx, peats.RdAllOp(tmpl))
	if err != nil {
		return nil, err
	}
	return res[0].Tuples, nil
}

// Cas implements peats.TupleSpace.
func (s *Space) Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error) {
	res, err := s.Submit(ctx, peats.CasOp(tmpl, entry))
	if err != nil {
		return false, tuple.Tuple{}, err
	}
	return res[0].Inserted, res[0].Tuple, nil
}

// Rd implements peats.TupleSpace by polling Rdp.
func (s *Space) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Rdp)
}

// In implements peats.TupleSpace by polling Inp.
func (s *Space) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Inp)
}

func (s *Space) poll(
	ctx context.Context,
	tmpl tuple.Tuple,
	op func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error),
) (tuple.Tuple, error) {
	floor := s.PollInterval
	if floor <= 0 {
		floor = 5 * time.Millisecond
	}
	max := s.PollMaxInterval
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if max < floor {
		max = floor
	}
	clock := s.Clock
	if clock == nil {
		clock = vclock.Real()
	}
	timer := clock.NewTimer(nil)
	defer timer.Stop()
	delay := floor
	for {
		t, ok, err := op(ctx, tmpl)
		if err != nil {
			return tuple.Tuple{}, err
		}
		if ok {
			return t, nil
		}
		jittered := delay + time.Duration(rand.Int63n(int64(delay/2)+1))
		if jittered > max {
			jittered = max
		}
		timer.Reset(jittered)
		select {
		case <-ctx.Done():
			return tuple.Tuple{}, ctx.Err()
		case <-timer.C():
		}
		if delay < max {
			delay *= 2
		}
	}
}

// toWireOps lifts a peats op slice to the wire form.
func toWireOps(ops []peats.Op) []wire.SpaceOp {
	wops := make([]wire.SpaceOp, len(ops))
	for i, op := range ops {
		wops[i] = wire.SpaceOp{Op: op.Code, Template: op.Template, Entry: op.Entry}
	}
	return wops
}
