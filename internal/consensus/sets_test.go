package consensus

import (
	"testing"
	"testing/quick"

	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestPIDSetRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   []policy.ProcessID
		want []policy.ProcessID
	}{
		{"empty", nil, []policy.ProcessID{}},
		{"single", []policy.ProcessID{"p1"}, []policy.ProcessID{"p1"}},
		{"sorted", []policy.ProcessID{"a", "b"}, []policy.ProcessID{"a", "b"}},
		{"unsorted input canonicalised", []policy.ProcessID{"c", "a", "b"},
			[]policy.ProcessID{"a", "b", "c"}},
		{"duplicates removed", []policy.ProcessID{"x", "x", "y"},
			[]policy.ProcessID{"x", "y"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := PIDSetField(tt.in)
			got, err := DecodePIDSetField(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestDecodePIDSetRejectsNonCanonical(t *testing.T) {
	// Hand-craft an unsorted encoding: count=2, "b", "a".
	raw := []byte{2, 1, 'b', 1, 'a'}
	if _, err := DecodePIDSetField(tuple.Bytes(raw)); err == nil {
		t.Error("unsorted set accepted")
	}
	// Duplicated: "a", "a".
	raw = []byte{2, 1, 'a', 1, 'a'}
	if _, err := DecodePIDSetField(tuple.Bytes(raw)); err == nil {
		t.Error("duplicated set accepted")
	}
	// Truncated.
	raw = []byte{2, 1, 'a'}
	if _, err := DecodePIDSetField(tuple.Bytes(raw)); err == nil {
		t.Error("truncated set accepted")
	}
	// Trailing junk.
	raw = []byte{1, 1, 'a', 0xff}
	if _, err := DecodePIDSetField(tuple.Bytes(raw)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Wrong field type.
	if _, err := DecodePIDSetField(tuple.Int(1)); err == nil {
		t.Error("int field accepted as pid set")
	}
}

func TestJustificationRoundTrip(t *testing.T) {
	j := Justification{Sets: map[int64][]policy.ProcessID{
		1:  {"p1", "p2"},
		-5: {"p3"},
		7:  {},
	}}
	got, err := DecodeJustificationField(JustificationField(j))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(got.Sets))
	}
	if len(got.Sets[1]) != 2 || got.Sets[1][0] != "p1" || got.Sets[1][1] != "p2" {
		t.Errorf("set[1] = %v", got.Sets[1])
	}
	if len(got.Sets[-5]) != 1 || got.Sets[-5][0] != "p3" {
		t.Errorf("set[-5] = %v", got.Sets[-5])
	}
	if len(got.Sets[7]) != 0 {
		t.Errorf("set[7] = %v", got.Sets[7])
	}
}

func TestJustificationCanonicalEncoding(t *testing.T) {
	a := JustificationField(Justification{Sets: map[int64][]policy.ProcessID{
		1: {"b", "a"}, 2: {"c"},
	}})
	b := JustificationField(Justification{Sets: map[int64][]policy.ProcessID{
		2: {"c"}, 1: {"a", "b"},
	}})
	ab, _ := a.BytesValue()
	bb, _ := b.BytesValue()
	if string(ab) != string(bb) {
		t.Error("justification encoding is not canonical")
	}
}

func TestDecodeJustificationRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{},                        // empty
		{1},                       // missing value
		{1, 2},                    // missing set
		{1, 2, 2, 1, 'b', 1, 'a'}, // non-canonical inner set
		{2, 2, 0, 2, 0},           // duplicate/descending values (1,1)... zigzag(1)=2
		{1, 2, 0, 0xaa},           // trailing bytes
	}
	for i, c := range cases {
		if _, err := DecodeJustificationField(tuple.Bytes(c)); err == nil {
			t.Errorf("case %d: malformed justification % x accepted", i, c)
		}
	}
	if _, err := DecodeJustificationField(tuple.Str("x")); err == nil {
		t.Error("string field accepted as justification")
	}
}

func TestPIDSetProperty(t *testing.T) {
	f := func(names []string) bool {
		pids := make([]policy.ProcessID, len(names))
		for i, s := range names {
			pids[i] = policy.ProcessID(s)
		}
		got, err := DecodePIDSetField(PIDSetField(pids))
		if err != nil {
			return false
		}
		// Result is sorted and duplicate-free.
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		// Every input appears.
		set := make(map[policy.ProcessID]bool)
		for _, p := range got {
			set[p] = true
		}
		for _, p := range pids {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
