package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func pids(n int) []policy.ProcessID {
	ps := make([]policy.ProcessID, n)
	for i := range ps {
		ps[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
	}
	return ps
}

// runStrong runs strong consensus with the given proposals on the
// correct processes (indices present in proposals) and returns their
// decisions. Byzantine indices simply do not participate (silent).
func runStrong(t *testing.T, n, ft int, domain []int64, proposals map[int]int64) map[int]int64 {
	t.Helper()
	procs := pids(n)
	s := peats.New(StrongPolicy(procs, ft, domain))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	decided := make(map[int]int64, len(proposals))
	var wg sync.WaitGroup
	for i, v := range proposals {
		wg.Add(1)
		go func(i int, v int64) {
			defer wg.Done()
			c, err := NewStrong(s.Handle(procs[i]), StrongConfig{
				Self: procs[i], Procs: procs, T: ft, Domain: domain,
				PollInterval: 100 * time.Microsecond,
			})
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			d, err := c.Propose(ctx, v)
			if err != nil {
				t.Errorf("p%d propose: %v", i, err)
				return
			}
			mu.Lock()
			decided[i] = d
			mu.Unlock()
		}(i, v)
	}
	wg.Wait()
	return decided
}

func TestStrongBinaryAllSameValue(t *testing.T) {
	// n=4, t=1, everyone proposes 1: the decision must be 1 (strong
	// validity even allows no other outcome).
	proposals := map[int]int64{0: 1, 1: 1, 2: 1, 3: 1}
	decided := runStrong(t, 4, 1, []int64{0, 1}, proposals)
	if len(decided) != 4 {
		t.Fatalf("%d processes decided, want 4", len(decided))
	}
	for i, d := range decided {
		if d != 1 {
			t.Errorf("p%d decided %d, want 1", i, d)
		}
	}
}

func TestStrongBinaryMixedValues(t *testing.T) {
	// n=4, t=1, split 2/2: agreement on a value proposed by ≥ t+1
	// processes, hence by at least one correct process.
	proposals := map[int]int64{0: 0, 1: 0, 2: 1, 3: 1}
	decided := runStrong(t, 4, 1, []int64{0, 1}, proposals)
	var first int64 = -1
	for i, d := range decided {
		if first == -1 {
			first = d
		}
		if d != first {
			t.Errorf("p%d decided %d, others %d (agreement violated)", i, d, first)
		}
	}
	if first != 0 && first != 1 {
		t.Errorf("decided %d, not a proposed value", first)
	}
}

func TestStrongBinaryWithSilentFaults(t *testing.T) {
	// n=4, t=1: one process stays silent; the n−t = 3 correct processes
	// must still terminate (t-threshold).
	proposals := map[int]int64{0: 1, 1: 1, 2: 0} // p3 silent
	decided := runStrong(t, 4, 1, []int64{0, 1}, proposals)
	if len(decided) != 3 {
		t.Fatalf("%d processes decided, want 3", len(decided))
	}
	var first int64 = -1
	for _, d := range decided {
		if first == -1 {
			first = d
		} else if d != first {
			t.Error("agreement violated")
		}
	}
	// 1 was proposed by 2 = t+1 processes, 0 by only one, so strong
	// validity forces 1.
	if first != 1 {
		t.Errorf("decided %d, want 1 (only value with t+1 proposers)", first)
	}
}

func TestStrongByzantineCannotForceOwnValue(t *testing.T) {
	// n=4, t=1: all three correct processes propose 0. The Byzantine
	// process proposes 1 and attempts to commit a forged decision. The
	// policy rejects the forgeries; the decision must be 0.
	procs := pids(4)
	domain := []int64{0, 1}
	s := peats.New(StrongPolicy(procs, 1, domain))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	evil := s.Handle(procs[3])
	// The Byzantine process proposes 1 (legal, but only 1 proposer).
	if err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	// Forgery 1: decision justified by itself only (|S| < t+1).
	_, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str("DECISION"), tuple.Int(1), PIDSetField([]policy.ProcessID{"p3"})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("under-justified cas err = %v, want denial", err)
	}
	// Forgery 2: claims p0 proposed 1 (it did not).
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str("DECISION"), tuple.Int(1), PIDSetField([]policy.ProcessID{"p0", "p3"})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("false-justification cas err = %v, want denial", err)
	}
	// Forgery 3: proposes a second time with a different value.
	err = evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), tuple.Int(0)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("double proposal err = %v, want denial", err)
	}
	// Forgery 4: proposes in another process's name.
	err = evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p0"), tuple.Int(1)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("impersonation err = %v, want denial", err)
	}
	// Forgery 5: out-of-domain proposal via a fresh Byzantine identity
	// outside the participant set.
	err = s.Handle("intruder").Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("intruder"), tuple.Int(0)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("outsider proposal err = %v, want denial", err)
	}

	// Correct processes decide 0 despite the interference.
	var wg sync.WaitGroup
	decisions := make([]int64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := NewStrong(s.Handle(procs[i]), StrongConfig{
				Self: procs[i], Procs: procs, T: 1, Domain: domain,
				PollInterval: 100 * time.Microsecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			d, err := c.Propose(ctx, 0)
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if d != 0 {
			t.Errorf("p%d decided %d, want 0 (strong validity)", i, d)
		}
	}
}

func TestStrongLargerSystem(t *testing.T) {
	// n=7, t=2, one silent fault, values split 3/3 among responders.
	proposals := map[int]int64{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1} // p6 silent
	decided := runStrong(t, 7, 2, []int64{0, 1}, proposals)
	if len(decided) != 6 {
		t.Fatalf("%d decided, want 6", len(decided))
	}
	var first int64 = -1
	for _, d := range decided {
		if first == -1 {
			first = d
		} else if d != first {
			t.Fatal("agreement violated")
		}
	}
}

func TestStrongKValued(t *testing.T) {
	// k=3 values, t=1 needs n ≥ (k+1)t+1 = 5.
	domain := []int64{10, 20, 30}
	proposals := map[int]int64{0: 10, 1: 10, 2: 20, 3: 30, 4: 20}
	decided := runStrong(t, 5, 1, domain, proposals)
	var first int64 = -1
	for _, d := range decided {
		if first == -1 {
			first = d
		} else if d != first {
			t.Fatal("agreement violated")
		}
	}
	// Both 10 and 20 reach t+1 = 2 proposers; 30 cannot be decided.
	if first != 10 && first != 20 {
		t.Errorf("decided %d, want a value with t+1 proposers", first)
	}
}

func TestStrongResilienceBoundEnforced(t *testing.T) {
	// Theorem 3/4: n = (k+1)t is insufficient; the constructor refuses.
	s := peats.New(StrongPolicy(pids(3), 1, []int64{0, 1}))
	_, err := NewStrongBinary(s.Handle("p0"), "p0", pids(3), 1)
	if err == nil {
		t.Error("n=3t accepted for binary consensus")
	}
	// Exactly 3t+1 is accepted.
	if _, err := NewStrongBinary(s.Handle("p0"), "p0", pids(4), 1); err != nil {
		t.Errorf("n=3t+1 rejected: %v", err)
	}
	// k=3, t=1: n=4 < 5 refused.
	_, err = NewStrong(s.Handle("p0"), StrongConfig{
		Self: "p0", Procs: pids(4), T: 1, Domain: []int64{1, 2, 3},
	})
	if err == nil {
		t.Error("n=(k+1)t accepted for 3-valued consensus")
	}
	// Domain of one value is not consensus.
	_, err = NewStrong(s.Handle("p0"), StrongConfig{
		Self: "p0", Procs: pids(4), T: 1, Domain: []int64{1},
	})
	if err == nil {
		t.Error("singleton domain accepted")
	}
}

func TestStrongBelowBoundDoesNotTerminate(t *testing.T) {
	// E2: at n = 3t the algorithm cannot gather t+1 matching proposals
	// when values split evenly and t processes stay silent — the Theorem
	// 4 execution. Build the object bypassing the constructor check.
	procs := pids(3) // n = 3, t = 1
	domain := []int64{0, 1}
	s := peats.New(StrongPolicy(procs, 1, domain))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			c := &Strong{
				ts: s.Handle(procs[i]), self: procs[i], procs: procs,
				t: 1, domain: domain, poll: 100 * time.Microsecond,
			}
			_, err := c.Propose(ctx, int64(i)) // p0→0, p1→1, p2 silent
			results <- err
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("expected non-termination (deadline), got %v", err)
		}
	}
}

func TestStrongProposalOutsideDomainRejected(t *testing.T) {
	procs := pids(4)
	s := peats.New(StrongPolicy(procs, 1, []int64{0, 1}))
	c, err := NewStrongBinary(s.Handle("p0"), "p0", procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Propose(context.Background(), 7); err == nil {
		t.Error("out-of-domain proposal accepted locally")
	}
	// And the policy also blocks it at the space.
	err = s.Handle("p1").Out(context.Background(),
		tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(7)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("out-of-domain out err = %v, want denial", err)
	}
}

func TestStrongMemoryFootprint(t *testing.T) {
	// E1 sanity: after a full n=4, t=1 run the space holds n PROPOSE
	// tuples and 1 DECISION tuple, and the bit count is of order
	// O((n+t)·log n) — orders of magnitude below the sticky-bit bound.
	procs := pids(4)
	s := peats.New(StrongPolicy(procs, 1, []int64{0, 1}))
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _ := NewStrong(s.Handle(procs[i]), StrongConfig{
				Self: procs[i], Procs: procs, T: 1, Domain: []int64{0, 1},
				PollInterval: 100 * time.Microsecond,
			})
			if _, err := c.Propose(ctx, int64(i%2)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Inner().Len(); got != 5 {
		t.Errorf("space holds %d tuples, want n+1 = 5", got)
	}
	// Paper formula for reference: n(⌈log n⌉+1)+(1+(t+1)⌈log n⌉) = 17
	// bits of algorithm payload at n=4, t=1. Our representation stores
	// identities as strings so it is larger, but must stay far below the
	// sticky-bit count (n+1)·C(2t+1,t) = 15 bits only at t=1 — the gap
	// explodes at larger t (footnote 4: 1,764 vs 68 at t=4). Just check
	// the space is small in absolute terms.
	if bits := s.Inner().BitSize(); bits > 2000 {
		t.Errorf("space uses %d bits, unexpectedly large", bits)
	}
}

func TestStrongOpCounts(t *testing.T) {
	procs := pids(4)
	s := peats.New(StrongPolicy(procs, 1, []int64{0, 1}))
	ctx := context.Background()
	var wg sync.WaitGroup
	objs := make([]*Strong, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _ := NewStrong(s.Handle(procs[i]), StrongConfig{
				Self: procs[i], Procs: procs, T: 1, Domain: []int64{0, 1},
				PollInterval: 100 * time.Microsecond,
			})
			objs[i] = c
			if _, err := c.Propose(ctx, 1); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i, c := range objs {
		out, rdp, cas := c.OpCounts()
		if out != 1 || cas != 1 {
			t.Errorf("p%d: out=%d cas=%d, want 1/1", i, out, cas)
		}
		if rdp < 1 {
			t.Errorf("p%d: rdp=%d, want ≥ 1", i, rdp)
		}
	}
}

func TestStrongKValuedByzantineValueInjection(t *testing.T) {
	// k=3, t=1, n=5: the Byzantine process proposes a third value to
	// split the vote, but the four correct processes propose 10 and 20
	// with 10 held by t+1 of them; the decision must be 10 or 20, never
	// the Byzantine 30.
	domain := []int64{10, 20, 30}
	procs := pids(5)
	s := peats.New(StrongPolicy(procs, 1, domain))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Byzantine p4 proposes 30 immediately.
	evil := s.Handle(procs[4])
	if err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p4"), tuple.Int(30))); err != nil {
		t.Fatal(err)
	}
	// And tries to decide it with a self-made justification (needs t+1=2).
	_, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str("DECISION"), tuple.Int(30), PIDSetField([]policy.ProcessID{"p4"})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Fatalf("under-justified decision err = %v, want denial", err)
	}

	proposals := map[int]int64{0: 10, 1: 10, 2: 20, 3: 20}
	var wg sync.WaitGroup
	decisions := make([]int64, 4)
	for i, v := range proposals {
		wg.Add(1)
		go func(i int, v int64) {
			defer wg.Done()
			c, err := NewStrong(s.Handle(procs[i]), StrongConfig{
				Self: procs[i], Procs: procs, T: 1, Domain: domain,
				PollInterval: 100 * time.Microsecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			d, err := c.Propose(ctx, v)
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i, v)
	}
	wg.Wait()
	for i := 1; i < 4; i++ {
		if decisions[i] != decisions[0] {
			t.Fatalf("disagreement: %v", decisions)
		}
	}
	if decisions[0] == 30 {
		t.Error("Byzantine value decided despite lacking t+1 proposers")
	}
}
