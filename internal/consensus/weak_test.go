package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestWeakAgreementSequential(t *testing.T) {
	s := peats.New(WeakPolicy())
	ctx := context.Background()

	first := NewWeak(s.Handle("p1"))
	d1, err := first.Propose(ctx, tuple.Int(42))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d1.IntValue(); v != 42 {
		t.Errorf("first proposer decided %v, want own value", d1)
	}
	for i := 2; i <= 5; i++ {
		c := NewWeak(s.Handle(policy.ProcessID(fmt.Sprintf("p%d", i))))
		d, err := c.Propose(ctx, tuple.Int(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Equal(d1) {
			t.Errorf("p%d decided %v, want %v (agreement)", i, d, d1)
		}
	}
}

func TestWeakAgreementConcurrent(t *testing.T) {
	// Wait-freedom and agreement under heavy contention; also uniform:
	// no process knows n.
	s := peats.New(WeakPolicy())
	const procs = 32
	decisions := make([]tuple.Field, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := policy.ProcessID(fmt.Sprintf("p%d", i))
			c := NewWeak(s.Handle(id))
			d, err := c.Propose(context.Background(), tuple.Int(int64(i)))
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()

	// Agreement: all equal. Validity: the value was proposed by someone.
	for i := 1; i < procs; i++ {
		if !decisions[i].Equal(decisions[0]) {
			t.Fatalf("p%d decided %v, p0 decided %v", i, decisions[i], decisions[0])
		}
	}
	v, ok := decisions[0].IntValue()
	if !ok || v < 0 || v >= procs {
		t.Errorf("decision %v was never proposed", decisions[0])
	}
}

func TestWeakMultivalued(t *testing.T) {
	// The weak object accepts arbitrary value kinds.
	s := peats.New(WeakPolicy())
	c := NewWeak(s.Handle("p1"))
	d, err := c.Propose(context.Background(), tuple.Str("leader=p1"))
	if err != nil {
		t.Fatal(err)
	}
	if sv, _ := d.StrValue(); sv != "leader=p1" {
		t.Errorf("decided %v", d)
	}
}

func TestWeakRejectsUndefinedProposal(t *testing.T) {
	s := peats.New(WeakPolicy())
	c := NewWeak(s.Handle("p1"))
	if _, err := c.Propose(context.Background(), tuple.Any()); err == nil {
		t.Error("proposing a wildcard should fail")
	}
	if _, err := c.Propose(context.Background(), tuple.Formal("v")); err == nil {
		t.Error("proposing a formal field should fail")
	}
}

func TestWeakPolicyBlocksByzantineInterference(t *testing.T) {
	// A Byzantine process cannot subvert the object through raw access:
	// Fig. 3 allows only the well-formed cas.
	s := peats.New(WeakPolicy())
	evil := s.Handle("byz")
	ctx := context.Background()

	// Cannot insert a decision directly.
	if err := evil.Out(ctx, tuple.T(tuple.Str("DECISION"), tuple.Int(666))); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("out err = %v, want denial", err)
	}
	// Cannot remove the decision (no in/inp rule).
	if _, _, err := evil.Inp(ctx, tuple.T(tuple.Str("DECISION"), tuple.Any())); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("inp err = %v, want denial", err)
	}
	// Cannot cas with a non-formal template (would allow a second
	// decision tuple).
	_, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Int(1)),
		tuple.T(tuple.Str("DECISION"), tuple.Int(666)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("bad cas err = %v, want denial", err)
	}
	// Cannot cas a wrong-arity decision.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str("DECISION"), tuple.Int(666), tuple.Int(0)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("wrong arity cas err = %v, want denial", err)
	}

	// The object still works for correct processes, and the Byzantine
	// process's own *well-formed* proposal is acceptable (weak validity
	// permits deciding a faulty process's value).
	good := NewWeak(s.Handle("p1"))
	if _, err := good.Propose(ctx, tuple.Int(1)); err != nil {
		t.Fatalf("correct process blocked: %v", err)
	}
}

func TestWeakDecisionPersists(t *testing.T) {
	// Attie's observation (§7): consensus needs a persistent object. The
	// policy makes the DECISION tuple unremovable, so late processes
	// always see it.
	s := peats.New(WeakPolicy())
	ctx := context.Background()
	if _, err := NewWeak(s.Handle("p1")).Propose(ctx, tuple.Int(9)); err != nil {
		t.Fatal(err)
	}
	// Many late arrivals, all see 9.
	for i := 0; i < 10; i++ {
		d, err := NewWeak(s.Handle(policy.ProcessID(fmt.Sprintf("late%d", i)))).
			Propose(ctx, tuple.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := d.IntValue(); v != 9 {
			t.Errorf("late%d decided %v, want 9", i, d)
		}
	}
	if got := s.Inner().Len(); got != 1 {
		t.Errorf("space holds %d tuples, want exactly 1 decision", got)
	}
}
