package consensus

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/tuple"
)

func TestTwoProcessSequential(t *testing.T) {
	s := NewTwoProcessSpace("a", "b")
	ctx := context.Background()

	ca := NewTwoProcess(s.Handle("a"), "a", "b")
	cb := NewTwoProcess(s.Handle("b"), "b", "a")

	da, err := ca.Propose(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if da != 10 {
		t.Errorf("first proposer decided %d, want own value", da)
	}
	db, err := cb.Propose(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	if db != 10 {
		t.Errorf("second proposer decided %d, want 10", db)
	}
}

func TestTwoProcessConcurrentAgreement(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewTwoProcessSpace("a", "b")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)

		var da, db int64
		var ea, eb error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			da, ea = NewTwoProcess(s.Handle("a"), "a", "b").Propose(ctx, 1)
		}()
		go func() {
			defer wg.Done()
			db, eb = NewTwoProcess(s.Handle("b"), "b", "a").Propose(ctx, 2)
		}()
		wg.Wait()
		cancel()
		if ea != nil || eb != nil {
			t.Fatalf("round %d: %v / %v", round, ea, eb)
		}
		if da != db {
			t.Fatalf("round %d: disagreement %d vs %d", round, da, db)
		}
		if da != 1 && da != 2 {
			t.Fatalf("round %d: decided unproposed value %d", round, da)
		}
	}
}

func TestTwoProcessPolicyConstraints(t *testing.T) {
	s := NewTwoProcessSpace("a", "b")
	ctx := context.Background()
	ha := s.Handle("a")

	// No cas at all on this space (plain tuple space has no cas).
	_, _, err := ha.Cas(ctx, tuple.T(tuple.Any()), tuple.T(tuple.Str("X")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("cas err = %v, want denial", err)
	}
	// A third process cannot join.
	_, _, err = s.Handle("c").Inp(ctx, tuple.T(tuple.Str("TOKEN")))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("outsider inp err = %v, want denial", err)
	}
	// A process cannot publish twice (would let it change its vote).
	if err := ha.Out(ctx, tuple.T(tuple.Str("VAL"), tuple.Str("a"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	err = ha.Out(ctx, tuple.T(tuple.Str("VAL"), tuple.Str("a"), tuple.Int(2)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("double publish err = %v, want denial", err)
	}
	// Cannot steal the peer's identity.
	err = ha.Out(ctx, tuple.T(tuple.Str("VAL"), tuple.Str("b"), tuple.Int(9)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("impersonation err = %v, want denial", err)
	}
}
