package consensus

import (
	"context"
	"fmt"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// bottomMarker is the string value representing the default value ⊥ in
// a DECISION tuple. Proposals carry int values, so ⊥ can never collide
// with a proposal (the Rout rule forbids proposing it outright).
const bottomMarker = "⊥" // ⊥

// Bottom is the default decision value ⊥ of default multivalued
// consensus: decided when no value gathered t+1 proposals among the
// first n−t observed.
func Bottom() tuple.Field { return tuple.Str(bottomMarker) }

// IsBottom reports whether a decision field is ⊥.
func IsBottom(f tuple.Field) bool {
	s, ok := f.StrValue()
	return ok && s == bottomMarker
}

// Default is the paper's §5.4 default multivalued consensus object:
// optimal resilience n ≥ 3t+1 with arbitrary (multivalued) proposals, at
// the cost of a weakened validity — the object may decide ⊥ when the
// proposals are too split, but only with a verifiable justification.
type Default struct {
	ts    peats.TupleSpace
	self  policy.ProcessID
	procs []policy.ProcessID
	t     int
	poll  time.Duration
}

// DefaultConfig configures a default multivalued consensus object.
type DefaultConfig struct {
	Self         policy.ProcessID
	Procs        []policy.ProcessID
	T            int
	PollInterval time.Duration
}

// NewDefault returns a default consensus object over ts, which should be
// protected by DefaultPolicy with matching parameters. It enforces the
// optimal resilience bound n ≥ 3t+1.
func NewDefault(ts peats.TupleSpace, cfg DefaultConfig) (*Default, error) {
	if n := len(cfg.Procs); n < 3*cfg.T+1 {
		return nil, fmt.Errorf("consensus: n=%d processes cannot tolerate t=%d faults (need n ≥ %d)",
			n, cfg.T, 3*cfg.T+1)
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}
	procs := make([]policy.ProcessID, len(cfg.Procs))
	copy(procs, cfg.Procs)
	return &Default{ts: ts, self: cfg.Self, procs: procs, t: cfg.T, poll: poll}, nil
}

// Propose submits value v and returns the consensus value, which is
// either a value proposed by a correct process or Bottom(). The object
// is t-threshold.
func (d *Default) Propose(ctx context.Context, v int64) (tuple.Field, error) {
	err := d.ts.Out(ctx, tuple.T(tuple.Str(tagPropose), tuple.Str(string(d.self)), tuple.Int(v)))
	if err != nil {
		return tuple.Field{}, fmt.Errorf("default consensus: announce: %w", err)
	}

	n := len(d.procs)
	sets := make(map[int64][]policy.ProcessID)
	read := make(map[policy.ProcessID]struct{}, n)
	var commit tuple.Field
	var just tuple.Field
	for commit.IsZero() {
		for _, pj := range d.procs {
			if _, done := read[pj]; done {
				continue
			}
			t, found, err := d.ts.Rdp(ctx, tuple.T(tuple.Str(tagPropose), tuple.Str(string(pj)), tuple.Formal("v")))
			if err != nil {
				return tuple.Field{}, fmt.Errorf("default consensus: read proposals: %w", err)
			}
			if !found {
				continue
			}
			pv, isInt := t.Field(2).IntValue()
			if !isInt {
				continue
			}
			read[pj] = struct{}{}
			sets[pv] = append(sets[pv], pj)
			if len(sets[pv]) >= d.t+1 {
				commit = tuple.Int(pv)
				just = PIDSetField(sets[pv][:d.t+1])
				break
			}
		}
		if !commit.IsZero() {
			break
		}
		// After reading n−t proposals with no value at t+1, decide ⊥
		// justified by every set collected so far (each ≤ t by
		// construction of the loop above).
		if len(read) >= n-d.t {
			commit = Bottom()
			just = JustificationField(Justification{Sets: sets})
			break
		}
		select {
		case <-ctx.Done():
			return tuple.Field{}, fmt.Errorf("default consensus: %w", ctx.Err())
		case <-time.After(d.poll):
		}
	}

	inserted, matched, err := d.ts.Cas(ctx,
		tuple.T(tuple.Str(tagDecision), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str(tagDecision), commit, just))
	if err != nil {
		return tuple.Field{}, fmt.Errorf("default consensus: commit: %w", err)
	}
	if inserted {
		return commit, nil
	}
	dec := matched.Field(1)
	if !dec.IsValue() {
		return tuple.Field{}, fmt.Errorf("default consensus: malformed decision tuple %v", matched)
	}
	return dec, nil
}

// DefaultPolicy is the access policy of Fig. 5. It extends the strong
// policy in two ways: proposals must differ from ⊥ (trivially true here
// since proposals are ints and ⊥ is a string), and a DECISION with value
// ⊥ must be justified by a set of sets {Sv} such that
//
//  1. ∪Sv contains at least n−t distinct participants,
//  2. no Sv has more than t processes, and
//  3. every q ∈ Sv corresponds to a <PROPOSE, q, v> tuple in the space.
//
// A DECISION with value v ≠ ⊥ requires the strong justification: t+1
// proposers of v.
func DefaultPolicy(procs []policy.ProcessID, t int) policy.Policy {
	n := len(procs)
	member := make(map[policy.ProcessID]struct{}, n)
	for _, p := range procs {
		member[p] = struct{}{}
	}

	rout := policy.And(
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagPropose)),
		policy.EntryFieldIsInvoker(1),
		policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
			_, ok := member[inv.Invoker]
			if !ok {
				return false
			}
			// Rule Rout of Fig. 5: the proposed value must not be ⊥.
			if IsBottom(inv.Entry.Field(2)) {
				return false
			}
			_, isInt := inv.Entry.Field(2).IntValue()
			return isInt
		}),
		policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			_, dup := st.Rdp(tuple.T(tuple.Str(tagPropose), inv.Entry.Field(1), tuple.Any()))
			return !dup
		}),
	)

	validValueDecision := func(inv policy.Invocation, st policy.StateView) bool {
		set, err := DecodePIDSetField(inv.Entry.Field(2))
		if err != nil || len(set) < t+1 {
			return false
		}
		for _, q := range set {
			if _, ok := member[q]; !ok {
				return false
			}
			tmpl := tuple.T(tuple.Str(tagPropose), tuple.Str(string(q)), inv.Entry.Field(1))
			if _, ok := st.Rdp(tmpl); !ok {
				return false
			}
		}
		return true
	}

	validBottomDecision := func(inv policy.Invocation, st policy.StateView) bool {
		just, err := DecodeJustificationField(inv.Entry.Field(2))
		if err != nil {
			return false
		}
		union := make(map[policy.ProcessID]struct{})
		for v, set := range just.Sets {
			// Condition 2: no set larger than t.
			if len(set) > t {
				return false
			}
			for _, q := range set {
				if _, ok := member[q]; !ok {
					return false
				}
				// Condition 3: every claimed proposal exists.
				tmpl := tuple.T(tuple.Str(tagPropose), tuple.Str(string(q)), tuple.Int(v))
				if _, ok := st.Rdp(tmpl); !ok {
					return false
				}
				union[q] = struct{}{}
			}
		}
		// Condition 1: at least n−t proposals observed.
		return len(union) >= n-t
	}

	rcas := policy.And(
		policy.TemplateArity(3),
		policy.TemplateField(0, tuple.Str(tagDecision)),
		policy.TemplateFieldFormal(1),
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagDecision)),
		policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			if IsBottom(inv.Entry.Field(1)) {
				return validBottomDecision(inv, st)
			}
			if _, isInt := inv.Entry.Field(1).IntValue(); !isInt {
				return false
			}
			return validValueDecision(inv, st)
		}),
	)

	return policy.New(
		policy.Rule{Name: "Rrd", Op: policy.OpRd, When: policy.Always},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: rout},
		policy.Rule{Name: "Rcas", Op: policy.OpCas, When: rcas},
	)
}
