package consensus

import (
	"context"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// Tuple tags used by the consensus algorithms.
const (
	tagDecision = "DECISION"
	tagPropose  = "PROPOSE"
)

// Weak is the paper's Algorithm 1: a wait-free, uniform, multivalued
// weak Byzantine consensus object. A process proposes by attempting
//
//	cas(<DECISION, ?d>, <DECISION, v>)
//
// The first cas inserts its proposal as the decision; every later cas
// fails and reads the decision through the formal field ?d.
type Weak struct {
	ts peats.TupleSpace
}

// NewWeak returns a weak consensus object over ts. The space should be
// protected by WeakPolicy.
func NewWeak(ts peats.TupleSpace) *Weak {
	return &Weak{ts: ts}
}

// Propose submits value v and returns the consensus value. It is
// wait-free: it always returns after a single cas, regardless of how
// many other processes have failed.
func (w *Weak) Propose(ctx context.Context, v tuple.Field) (tuple.Field, error) {
	if !v.IsValue() {
		return tuple.Field{}, fmt.Errorf("consensus: proposal must be a defined value, got %v", v)
	}
	inserted, matched, err := w.ts.Cas(ctx,
		tuple.T(tuple.Str(tagDecision), tuple.Formal("d")),
		tuple.T(tuple.Str(tagDecision), v))
	if err != nil {
		return tuple.Field{}, fmt.Errorf("weak consensus: %w", err)
	}
	if inserted {
		return v, nil
	}
	return matched.Field(1), nil
}

// WeakPolicy is the access policy of Fig. 3: the only operation allowed
// on the space is cas of a two-field DECISION tuple whose template has a
// formal second field. Because in/inp are denied, at most one DECISION
// tuple can ever exist, which makes the space a persistent object.
func WeakPolicy() policy.Policy {
	return policy.New(policy.Rule{
		Name: "Rcas",
		Op:   policy.OpCas,
		When: policy.And(
			policy.TemplateArity(2),
			policy.TemplateField(0, tuple.Str(tagDecision)),
			policy.TemplateFieldFormal(1),
			policy.EntryArity(2),
			policy.EntryField(0, tuple.Str(tagDecision)),
		),
	})
}
