package consensus

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// runDefault runs default consensus; proposals maps process index to
// value, absent indices stay silent.
func runDefault(t *testing.T, n, ft int, proposals map[int]int64) map[int]tuple.Field {
	t.Helper()
	procs := pids(n)
	s := peats.New(DefaultPolicy(procs, ft))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	decided := make(map[int]tuple.Field, len(proposals))
	var wg sync.WaitGroup
	for i, v := range proposals {
		wg.Add(1)
		go func(i int, v int64) {
			defer wg.Done()
			c, err := NewDefault(s.Handle(procs[i]), DefaultConfig{
				Self: procs[i], Procs: procs, T: ft,
				PollInterval: 100 * time.Microsecond,
			})
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			d, err := c.Propose(ctx, v)
			if err != nil {
				t.Errorf("p%d propose: %v", i, err)
				return
			}
			mu.Lock()
			decided[i] = d
			mu.Unlock()
		}(i, v)
	}
	wg.Wait()
	return decided
}

func TestDefaultUnanimousDecidesValue(t *testing.T) {
	// Validity condition 1: all correct processes propose v ⇒ v decided.
	proposals := map[int]int64{0: 5, 1: 5, 2: 5, 3: 5}
	decided := runDefault(t, 4, 1, proposals)
	if len(decided) != 4 {
		t.Fatalf("%d decided, want 4", len(decided))
	}
	for i, d := range decided {
		if v, ok := d.IntValue(); !ok || v != 5 {
			t.Errorf("p%d decided %v, want 5", i, d)
		}
	}
}

func TestDefaultSplitMayDecideBottom(t *testing.T) {
	// n=4, t=1, four distinct values: no value can gather t+1 = 2
	// proposers, so every process must decide ⊥.
	proposals := map[int]int64{0: 1, 1: 2, 2: 3, 3: 4}
	decided := runDefault(t, 4, 1, proposals)
	if len(decided) != 4 {
		t.Fatalf("%d decided, want 4", len(decided))
	}
	for i, d := range decided {
		if !IsBottom(d) {
			t.Errorf("p%d decided %v, want ⊥", i, d)
		}
	}
}

func TestDefaultAgreementMixed(t *testing.T) {
	// n=7, t=2: 12 proposed thrice (≥ t+1), rest split. Either 12 or ⊥
	// can legally win the race, but everyone agrees.
	proposals := map[int]int64{0: 12, 1: 12, 2: 12, 3: 4, 4: 5, 5: 6, 6: 7}
	decided := runDefault(t, 7, 2, proposals)
	var first tuple.Field
	for i, d := range decided {
		if first.IsZero() {
			first = d
			continue
		}
		if !d.Equal(first) {
			t.Errorf("p%d decided %v, others %v", i, d, first)
		}
	}
	if !IsBottom(first) {
		if v, _ := first.IntValue(); v != 12 {
			t.Errorf("decided %v, want 12 or ⊥", first)
		}
	}
}

func TestDefaultByzantineCannotForceBottom(t *testing.T) {
	// All 3 correct processes (n=4, t=1) propose 5; the Byzantine
	// process tries to push a ⊥ decision with a bogus justification.
	// Every attempt must be denied, and the decision must be 5.
	procs := pids(4)
	s := peats.New(DefaultPolicy(procs, 1))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	evil := s.Handle(procs[3])

	decTmpl := tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any())

	// Attempt 1: ⊥ with an empty justification (union < n−t).
	_, _, err := evil.Cas(ctx, decTmpl,
		tuple.T(tuple.Str("DECISION"), Bottom(), JustificationField(Justification{})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("empty justification err = %v, want denial", err)
	}

	// Attempt 2: ⊥ claiming proposals that do not exist.
	fake := Justification{Sets: map[int64][]policy.ProcessID{
		1: {"p0"}, 2: {"p1"}, 3: {"p2"},
	}}
	_, _, err = evil.Cas(ctx, decTmpl,
		tuple.T(tuple.Str("DECISION"), Bottom(), JustificationField(fake)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("fabricated justification err = %v, want denial", err)
	}

	// Attempt 3: proposing ⊥ itself is forbidden by Rout. ⊥ is a string
	// so it is rejected as a proposal value outright.
	err = evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), Bottom()))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("⊥ proposal err = %v, want denial", err)
	}

	// Now the correct processes run; the evil process also proposes a
	// legal value 9 to try splitting.
	if err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), tuple.Int(9))); err != nil {
		t.Fatal(err)
	}
	// Attempt 4: with its own proposal in place, evil claims a split:
	// {5:{p0}, 9:{p3}} — union is only 2 < n−t = 3. Denied.
	// (It cannot do better: it cannot wait for all three correct
	// proposals and still show every set ≤ t, since 5 will have 3 > t.)
	var wg sync.WaitGroup
	decisions := make([]tuple.Field, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _ := NewDefault(s.Handle(procs[i]), DefaultConfig{
				Self: procs[i], Procs: procs, T: 1,
				PollInterval: 100 * time.Microsecond,
			})
			d, err := c.Propose(ctx, 5)
			if err != nil {
				t.Errorf("p%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if v, ok := d.IntValue(); !ok || v != 5 {
			t.Errorf("p%d decided %v, want 5", i, d)
		}
	}
}

func TestDefaultBottomJustificationChecked(t *testing.T) {
	// A legitimate ⊥ decision must carry sets each ≤ t whose union is
	// ≥ n−t, with every claimed proposal present. Craft the state by
	// hand and probe the policy boundary cases directly.
	procs := pids(4)
	ft := 1
	s := peats.New(DefaultPolicy(procs, ft))
	ctx := context.Background()

	// Three distinct proposals (n−t = 3 observed, no value at t+1).
	for i := 0; i < 3; i++ {
		h := s.Handle(procs[i])
		err := h.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str(string(procs[i])), tuple.Int(int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
	}
	decTmpl := tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any())

	// A set larger than t invalidates the justification even if true.
	tooBig := Justification{Sets: map[int64][]policy.ProcessID{
		1: {"p0", "p1"}, // claims two proposers of 1 — |S| > t and also false
		2: {"p1"},
		3: {"p2"},
	}}
	_, _, err := s.Handle("p0").Cas(ctx, decTmpl,
		tuple.T(tuple.Str("DECISION"), Bottom(), JustificationField(tooBig)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("oversized set err = %v, want denial", err)
	}

	// The correct justification is accepted.
	good := Justification{Sets: map[int64][]policy.ProcessID{
		1: {"p0"}, 2: {"p1"}, 3: {"p2"},
	}}
	ins, _, err := s.Handle("p0").Cas(ctx, decTmpl,
		tuple.T(tuple.Str("DECISION"), Bottom(), JustificationField(good)))
	if err != nil || !ins {
		t.Errorf("valid ⊥ decision rejected: ins=%v err=%v", ins, err)
	}
}

func TestDefaultResilienceBound(t *testing.T) {
	s := peats.New(DefaultPolicy(pids(3), 1))
	_, err := NewDefault(s.Handle("p0"), DefaultConfig{Self: "p0", Procs: pids(3), T: 1})
	if err == nil {
		t.Error("n=3t accepted for default consensus")
	}
	if _, err := NewDefault(s.Handle("p0"), DefaultConfig{Self: "p0", Procs: pids(4), T: 1}); err != nil {
		t.Errorf("n=3t+1 rejected: %v", err)
	}
}

func TestBottomHelpers(t *testing.T) {
	if !IsBottom(Bottom()) {
		t.Error("IsBottom(Bottom()) = false")
	}
	if IsBottom(tuple.Int(0)) || IsBottom(tuple.Str("x")) || IsBottom(tuple.Any()) {
		t.Error("IsBottom true for non-bottom field")
	}
}
