package consensus

import (
	"context"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// TwoProcess demonstrates the §2.3 claim that a *plain* tuple space
// (without cas) has consensus number exactly 2: two processes can reach
// wait-free consensus using only out/inp/rdp, by racing to withdraw a
// single pre-loaded TOKEN tuple.
//
// The winner of the inp race decides its own value; the loser finds the
// token gone and adopts the winner's published value. With three or more
// processes the scheme breaks (the loser cannot tell which of the other
// processes won first), matching the consensus-number-2 bound.
type TwoProcess struct {
	ts   peats.TupleSpace
	self policy.ProcessID
	peer policy.ProcessID
}

const tagToken = "TOKEN"

// NewTwoProcessSpace builds the shared PEATS for a two-process consensus
// instance: the space is pre-loaded with the TOKEN tuple and protected
// by a policy allowing each process one VAL announcement and one token
// withdrawal, with no cas at all.
func NewTwoProcessSpace(p1, p2 policy.ProcessID) *peats.Space {
	inner := space.New()
	// Pre-loading happens before the object is shared, so it bypasses
	// the policy by construction (it is part of the initial state).
	if err := inner.Out(tuple.T(tuple.Str(tagToken))); err != nil {
		panic(err) // unreachable: the token is a valid entry
	}
	pol := policy.New(
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: policy.And(
			policy.InvokerIn(p1, p2),
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str("VAL")),
			policy.EntryFieldIsInvoker(1),
			policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
				_, dup := st.Rdp(tuple.T(tuple.Str("VAL"), inv.Entry.Field(1), tuple.Any()))
				return !dup
			}),
		)},
		policy.Rule{Name: "Rinp", Op: policy.OpInp, When: policy.And(
			policy.InvokerIn(p1, p2),
			policy.TemplateArity(1),
			policy.TemplateField(0, tuple.Str(tagToken)),
		)},
	)
	return peats.Wrap(inner, pol)
}

// NewTwoProcess returns the consensus object for one of the two
// processes. ts must be a handle on a space built by NewTwoProcessSpace.
func NewTwoProcess(ts peats.TupleSpace, self, peer policy.ProcessID) *TwoProcess {
	return &TwoProcess{ts: ts, self: self, peer: peer}
}

// Propose submits v and returns the consensus value. Wait-free for two
// processes.
func (c *TwoProcess) Propose(ctx context.Context, v int64) (int64, error) {
	// Publish own value first so the loser can always find the winner's.
	err := c.ts.Out(ctx, tuple.T(tuple.Str("VAL"), tuple.Str(string(c.self)), tuple.Int(v)))
	if err != nil {
		return 0, fmt.Errorf("two-process consensus: publish: %w", err)
	}
	// Race for the token.
	_, won, err := c.ts.Inp(ctx, tuple.T(tuple.Str(tagToken)))
	if err != nil {
		return 0, fmt.Errorf("two-process consensus: token: %w", err)
	}
	if won {
		return v, nil
	}
	// Lost: the peer must already have published its value (it publishes
	// before taking the token).
	peerVal, err := peats.PollRd(ctx, c.ts, tuple.T(tuple.Str("VAL"), tuple.Str(string(c.peer)), tuple.Formal("v")), 0)
	if err != nil {
		return 0, fmt.Errorf("two-process consensus: read winner: %w", err)
	}
	pv, ok := peerVal.Field(2).IntValue()
	if !ok {
		return 0, fmt.Errorf("two-process consensus: malformed value tuple %v", peerVal)
	}
	return pv, nil
}
