// Package consensus implements the paper's consensus objects over a
// PEATS (§5): weak consensus (Alg. 1), strong consensus (Alg. 2,
// generalised to k values per §5.3), and default multivalued consensus
// (§5.4), together with the access policies of Figs. 3, 4 and 5 that
// make them tolerate Byzantine processes.
package consensus

import (
	"encoding/binary"
	"fmt"
	"sort"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// encodePIDs returns the canonical encoding of a set of process
// identifiers: sorted, deduplicated, length-prefixed. Canonical form
// matters because the justification travels inside a tuple field that
// replicas compare bytewise.
func encodePIDs(pids []policy.ProcessID) []byte {
	set := make([]string, 0, len(pids))
	seen := make(map[string]struct{}, len(pids))
	for _, p := range pids {
		s := string(p)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		set = append(set, s)
	}
	sort.Strings(set)
	out := binary.AppendUvarint(nil, uint64(len(set)))
	for _, s := range set {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

// decodePIDs parses an encoded process-id set, rejecting non-canonical
// encodings (unsorted or duplicated elements) so a Byzantine process
// cannot inflate a justification.
func decodePIDs(b []byte) ([]policy.ProcessID, int, error) {
	n, consumed := binary.Uvarint(b)
	if consumed <= 0 {
		return nil, 0, fmt.Errorf("pid set: bad count")
	}
	pids := make([]policy.ProcessID, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b[consumed:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("pid set: bad length")
		}
		consumed += m
		if uint64(len(b)-consumed) < l {
			return nil, 0, fmt.Errorf("pid set: truncated")
		}
		s := string(b[consumed : consumed+int(l)])
		consumed += int(l)
		if i > 0 && s <= prev {
			return nil, 0, fmt.Errorf("pid set: not canonical")
		}
		prev = s
		pids = append(pids, policy.ProcessID(s))
	}
	return pids, consumed, nil
}

// PIDSetField packs a set of process ids into a bytes tuple field.
func PIDSetField(pids []policy.ProcessID) tuple.Field {
	return tuple.Bytes(encodePIDs(pids))
}

// DecodePIDSetField unpacks a PIDSetField.
func DecodePIDSetField(f tuple.Field) ([]policy.ProcessID, error) {
	b, ok := f.BytesValue()
	if !ok {
		return nil, fmt.Errorf("pid set: field is not bytes")
	}
	pids, n, err := decodePIDs(b)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("pid set: trailing bytes")
	}
	return pids, nil
}

// Justification is the set-of-sets a process must exhibit to decide ⊥
// in default consensus: for each value, the processes it read proposing
// that value (paper §5.4, Fig. 5 rule Rcas).
type Justification struct {
	// Sets maps each proposed value to the set of proposers observed.
	Sets map[int64][]policy.ProcessID
}

// encode returns the canonical encoding: values ascending, each with its
// canonical pid set.
func (j Justification) encode() []byte {
	vals := make([]int64, 0, len(j.Sets))
	for v := range j.Sets {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	out := binary.AppendUvarint(nil, uint64(len(vals)))
	for _, v := range vals {
		out = binary.AppendUvarint(out, zigzag(v))
		out = append(out, encodePIDs(j.Sets[v])...)
	}
	return out
}

// JustificationField packs a justification into a bytes tuple field.
func JustificationField(j Justification) tuple.Field {
	return tuple.Bytes(j.encode())
}

// DecodeJustificationField unpacks a JustificationField, enforcing
// canonical form.
func DecodeJustificationField(f tuple.Field) (Justification, error) {
	b, ok := f.BytesValue()
	if !ok {
		return Justification{}, fmt.Errorf("justification: field is not bytes")
	}
	n, consumed := binary.Uvarint(b)
	if consumed <= 0 {
		return Justification{}, fmt.Errorf("justification: bad count")
	}
	j := Justification{Sets: make(map[int64][]policy.ProcessID, n)}
	var prev int64
	for i := uint64(0); i < n; i++ {
		u, m := binary.Uvarint(b[consumed:])
		if m <= 0 {
			return Justification{}, fmt.Errorf("justification: bad value")
		}
		consumed += m
		v := unzigzag(u)
		if i > 0 && v <= prev {
			return Justification{}, fmt.Errorf("justification: not canonical")
		}
		prev = v
		pids, m2, err := decodePIDs(b[consumed:])
		if err != nil {
			return Justification{}, err
		}
		consumed += m2
		j.Sets[v] = pids
	}
	if consumed != len(b) {
		return Justification{}, fmt.Errorf("justification: trailing bytes")
	}
	return j, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
