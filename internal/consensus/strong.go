package consensus

import (
	"context"
	"fmt"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// Strong is the paper's Algorithm 2: a t-threshold strong Byzantine
// consensus object, generalised from binary to k-valued per §5.3.
//
// Each process first publishes its proposal as a <PROPOSE, p, v> tuple,
// then repeatedly reads the other processes' proposals until some value
// has been proposed by at least t+1 processes — hence by at least one
// correct process. It then commits that value with
//
//	cas(<DECISION, ?d, *>, <DECISION, v, Sv>)
//
// where Sv is the justifying set of t+1 proposers, which the access
// policy (Fig. 4) verifies against the PROPOSE tuples in the space.
//
// Resilience: n ≥ 3t+1 for binary consensus (optimal, Cor. 1) and
// n ≥ (k+1)t+1 for k values (Thms. 3-4).
type Strong struct {
	ts     peats.TupleSpace
	self   policy.ProcessID
	procs  []policy.ProcessID
	t      int
	domain []int64
	poll   time.Duration

	// opsOut, opsRdp, opsCas count the shared-memory operations issued
	// by the last Propose, for the operation-count experiments (E8).
	opsOut, opsRdp, opsCas int
}

// StrongConfig configures a strong consensus object.
type StrongConfig struct {
	// Self is this process's authenticated identity.
	Self policy.ProcessID
	// Procs is the full set of participating processes (the algorithm is
	// not uniform: every process must know every other, §5.2).
	Procs []policy.ProcessID
	// T is the maximum number of Byzantine processes tolerated.
	T int
	// Domain is the set of proposable values V. len(Domain) == 2 gives
	// the paper's binary object.
	Domain []int64
	// PollInterval is the delay between read rounds while waiting for
	// t+1 matching proposals. Defaults to 1ms.
	PollInterval time.Duration
}

// NewStrong returns a strong consensus object over ts, which should be
// protected by StrongPolicy with matching parameters. It returns an
// error if the configuration violates the resilience bound
// n ≥ (k+1)t+1 of Theorem 3.
func NewStrong(ts peats.TupleSpace, cfg StrongConfig) (*Strong, error) {
	n, k := len(cfg.Procs), len(cfg.Domain)
	if k < 2 {
		return nil, fmt.Errorf("consensus: domain needs at least 2 values, got %d", k)
	}
	if need := (k+1)*cfg.T + 1; n < need {
		return nil, fmt.Errorf("consensus: n=%d processes cannot tolerate t=%d faults with k=%d values (need n ≥ %d)",
			n, cfg.T, k, need)
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}
	procs := make([]policy.ProcessID, len(cfg.Procs))
	copy(procs, cfg.Procs)
	domain := make([]int64, len(cfg.Domain))
	copy(domain, cfg.Domain)
	return &Strong{
		ts: ts, self: cfg.Self, procs: procs, t: cfg.T,
		domain: domain, poll: poll,
	}, nil
}

// NewStrongUnchecked builds a strong consensus object without the
// resilience-bound validation. It exists for the lower-bound
// experiments (E2/E3), which deliberately run below n = (k+1)t+1 to
// demonstrate non-termination; production code should use NewStrong.
func NewStrongUnchecked(ts peats.TupleSpace, cfg StrongConfig) *Strong {
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}
	procs := make([]policy.ProcessID, len(cfg.Procs))
	copy(procs, cfg.Procs)
	domain := make([]int64, len(cfg.Domain))
	copy(domain, cfg.Domain)
	return &Strong{
		ts: ts, self: cfg.Self, procs: procs, t: cfg.T,
		domain: domain, poll: poll,
	}
}

// NewStrongBinary returns the paper's binary object (Domain = {0, 1}).
func NewStrongBinary(ts peats.TupleSpace, self policy.ProcessID, procs []policy.ProcessID, t int) (*Strong, error) {
	return NewStrong(ts, StrongConfig{Self: self, Procs: procs, T: t, Domain: []int64{0, 1}})
}

// OpCounts returns the (out, rdp, cas) operation counts of the last
// Propose call.
func (s *Strong) OpCounts() (out, rdp, cas int) { return s.opsOut, s.opsRdp, s.opsCas }

// Propose submits value v and returns the consensus value. The object is
// t-threshold: termination is guaranteed when at least n−t correct
// processes invoke Propose. The call honours ctx cancellation, returning
// ctx.Err() if no value gathers t+1 proposals in time.
func (s *Strong) Propose(ctx context.Context, v int64) (int64, error) {
	if !s.inDomain(v) {
		return 0, fmt.Errorf("consensus: proposal %d outside domain %v", v, s.domain)
	}
	s.opsOut, s.opsRdp, s.opsCas = 0, 0, 0

	// Line 2: announce the proposal.
	s.opsOut++
	err := s.ts.Out(ctx, tuple.T(tuple.Str(tagPropose), tuple.Str(string(s.self)), tuple.Int(v)))
	if err != nil {
		return 0, fmt.Errorf("strong consensus: announce: %w", err)
	}

	// Lines 3-11: collect proposals until some value has t+1 proposers.
	sets := make(map[int64][]policy.ProcessID, len(s.domain))
	read := make(map[policy.ProcessID]struct{}, len(s.procs))
	commit, ok := int64(0), false
	for !ok {
		for _, pj := range s.procs {
			if _, done := read[pj]; done {
				continue
			}
			s.opsRdp++
			t, found, err := s.ts.Rdp(ctx, tuple.T(tuple.Str(tagPropose), tuple.Str(string(pj)), tuple.Formal("v")))
			if err != nil {
				return 0, fmt.Errorf("strong consensus: read proposals: %w", err)
			}
			if !found {
				continue
			}
			pv, isInt := t.Field(2).IntValue()
			if !isInt {
				continue
			}
			read[pj] = struct{}{}
			sets[pv] = append(sets[pv], pj)
			if len(sets[pv]) >= s.t+1 {
				commit, ok = pv, true
				break
			}
		}
		if ok {
			break
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("strong consensus: %w", ctx.Err())
		case <-time.After(s.poll):
		}
	}

	// Lines 12-15: commit the justified value; read the decision if
	// another process committed first.
	s.opsCas++
	inserted, matched, err := s.ts.Cas(ctx,
		tuple.T(tuple.Str(tagDecision), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str(tagDecision), tuple.Int(commit), PIDSetField(sets[commit][:s.t+1])))
	if err != nil {
		return 0, fmt.Errorf("strong consensus: commit: %w", err)
	}
	if inserted {
		return commit, nil
	}
	d, isInt := matched.Field(1).IntValue()
	if !isInt {
		return 0, fmt.Errorf("strong consensus: malformed decision tuple %v", matched)
	}
	return d, nil
}

func (s *Strong) inDomain(v int64) bool {
	for _, d := range s.domain {
		if d == v {
			return true
		}
	}
	return false
}

// StrongPolicy is the access policy of Fig. 4, parameterised by the
// process set, the fault bound t and the value domain:
//
//	Rrd:  any process may read any tuple (rd/rdp);
//	Rout: p may insert <PROPOSE, p, v> once, with v in the domain;
//	Rcas: cas(<DECISION, x, *>, <DECISION, v, S>) requires formal(x),
//	      S a canonical set of ≥ t+1 distinct participants, and
//	      <PROPOSE, q, v> in the space for every q ∈ S.
//
// These rules are what constrain Byzantine processes: a faulty process
// cannot propose twice, cannot forge another's proposal, and cannot
// commit a value that t+1 processes did not propose.
func StrongPolicy(procs []policy.ProcessID, t int, domain []int64) policy.Policy {
	inDomain := func(f tuple.Field) bool {
		v, ok := f.IntValue()
		if !ok {
			return false
		}
		for _, d := range domain {
			if d == v {
				return true
			}
		}
		return false
	}
	member := make(map[policy.ProcessID]struct{}, len(procs))
	for _, p := range procs {
		member[p] = struct{}{}
	}

	rout := policy.And(
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagPropose)),
		policy.EntryFieldIsInvoker(1),
		policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
			_, ok := member[inv.Invoker]
			return ok && inDomain(inv.Entry.Field(2))
		}),
		// Only one PROPOSE entry per process.
		policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			_, dup := st.Rdp(tuple.T(tuple.Str(tagPropose), inv.Entry.Field(1), tuple.Any()))
			return !dup
		}),
	)

	rcas := policy.And(
		policy.TemplateArity(3),
		policy.TemplateField(0, tuple.Str(tagDecision)),
		policy.TemplateFieldFormal(1),
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagDecision)),
		policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			if !inDomain(inv.Entry.Field(1)) {
				return false
			}
			set, err := DecodePIDSetField(inv.Entry.Field(2))
			if err != nil || len(set) < t+1 {
				return false
			}
			for _, q := range set {
				if _, ok := member[q]; !ok {
					return false
				}
				tmpl := tuple.T(tuple.Str(tagPropose), tuple.Str(string(q)), inv.Entry.Field(1))
				if _, ok := st.Rdp(tmpl); !ok {
					return false
				}
			}
			return true
		}),
	)

	return policy.New(
		policy.Rule{Name: "Rrd", Op: policy.OpRd, When: policy.Always},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: rout},
		policy.Rule{Name: "Rcas", Op: policy.OpCas, When: rcas},
	)
}
