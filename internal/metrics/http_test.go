package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestHandlerFormats(t *testing.T) {
	r := New()
	r.Counter("c_total", "C.").Add(7)
	h := r.Histogram("h", "H.", []float64{1})
	h.Observe(2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "c_total 7") {
		t.Errorf("text body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("JSON body does not parse: %v\n%s", err, body)
	}
	if len(snap.Families) != 2 {
		t.Errorf("got %d families, want 2", len(snap.Families))
	}
}

func TestStatusHandler(t *testing.T) {
	srv := httptest.NewServer(StatusHandler(func() any {
		return map[string]int{"executed": 9}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"executed": 9`) {
		t.Errorf("status body = %s", body)
	}
}

// TestEndpointGoroutineLeak serves a burst of scrapes and asserts the
// process returns to its goroutine baseline once the server closes —
// the scrape path must not park goroutines behind registry locks.
func TestEndpointGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		r := New()
		for i := 0; i < 16; i++ {
			r.Counter(fmt.Sprintf("c%d_total", i), "C.").Add(uint64(i))
			r.Histogram(fmt.Sprintf("h%d", i), "H.", DurationBuckets).Observe(float64(i))
		}
		srv := httptest.NewServer(Handler(r))
		defer srv.Close()
		for i := 0; i < 50; i++ {
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
