package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests.", L("replica", "r0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	// Same name+labels resolves to the same series; different labels a
	// new one. Handles are cheap wrappers, so compare through the state.
	again := r.Counter("requests_total", "Requests.", L("replica", "r0"))
	again.Inc()
	if c.Value() != 6 || again.Value() != 6 {
		t.Errorf("same name+labels did not share state: %d %d", c.Value(), again.Value())
	}
	other := r.Counter("requests_total", "Requests.", L("replica", "r1"))
	other.Inc()
	if c.Value() != 6 || other.Value() != 1 {
		t.Errorf("series values crossed: %d %d", c.Value(), other.Value())
	}
}

func TestNilHandlesNoop(t *testing.T) {
	// Instrumented code holds nil handles when no registry is wired;
	// every operation must be a safe no-op.
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles reported values")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry returned non-nil handles")
	}
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("x", "", func() float64 { return 1 })
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("metric", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("metric", "help")
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "Latency.", ExpBuckets(0.001, 2, 10))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) / 1000) // 0 .. 0.099, uniform
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.02 || p50 > 0.09 {
		t.Errorf("p50 = %v, want ~0.05 within bucket resolution", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	// An observation beyond the last bound lands in +Inf; the quantile
	// falls back to the highest finite bound rather than inventing a value.
	h2 := r.Histogram("spike_seconds", "Spike.", []float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("open-bucket quantile = %v, want 2", q)
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	// Counters, gauges, and histograms hammered from many goroutines
	// while snapshots and Prometheus renders run concurrently: the race
	// detector is the real assertion, monotone totals the functional one.
	r := New()
	c := r.Counter("ops_total", "Ops.")
	g := r.Gauge("depth", "Depth.")
	h := r.Histogram("size", "Size.", SizeBuckets)
	const workers, perWorker = 8, 5000
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		last := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for _, f := range snap.Families {
				if f.Name == "ops_total" {
					v := uint64(f.Series[0].Value)
					if v < last {
						t.Errorf("counter went backwards: %d -> %d", last, v)
						return
					}
					last = v
				}
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 64))
			}
		}()
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("ops_total = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

func TestPrometheusText(t *testing.T) {
	r := New()
	r.Counter("peats_ops_total", "Ordered ops.", L("replica", "r0")).Add(3)
	r.Gauge("peats_depth", `Queue "depth" \ with escapes`, L("lane", "bulk")).Set(2.5)
	h := r.Histogram("peats_lat", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	r.GaugeFunc("peats_up", "Always 1.", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE peats_ops_total counter",
		`peats_ops_total{replica="r0"} 3`,
		"# TYPE peats_depth gauge",
		`peats_depth{lane="bulk"} 2.5`,
		`Queue "depth" \\ with escapes`,
		"# TYPE peats_lat histogram",
		`peats_lat_bucket{le="0.1"} 1`,
		`peats_lat_bucket{le="+Inf"} 2`,
		"peats_lat_count 2",
		"peats_up 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// Deterministic: two renders of the same registry are identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c_total", "C.").Add(2)
	h := r.Histogram("h", "H.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(99) // lands in +Inf — must survive encoding/json
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Errorf("marshalled snapshot missing +Inf bucket: %s", data)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, f := range back.Families {
		if f.Name != "h" {
			continue
		}
		bs := f.Series[0].Buckets
		last := bs[len(bs)-1]
		if !math.IsInf(last.LE, 1) || last.CumCount != 2 {
			t.Errorf("round-tripped +Inf bucket = %+v", last)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}
