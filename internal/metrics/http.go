package metrics

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry over HTTP: Prometheus text format by
// default, the JSON Snapshot with ?format=json (what peats-admin
// consumes). Scrapes only read atomics, so they never perturb the
// instrumented replica.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StatusHandler serves fn's return value as indented JSON — the
// /status endpoint. fn runs per request and must be safe to call
// concurrently with the serving subsystems (read mirrors, not
// loop-owned state).
func StatusHandler(fn func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fn()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
