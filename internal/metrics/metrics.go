// Package metrics is a dependency-free, allocation-conscious metrics
// registry for the replicated PEATS: atomic counters, gauges, and
// fixed-bucket histograms, snapshotted into Prometheus text format or
// JSON without perturbing the instrumented subsystems.
//
// Design constraints, in order:
//
//   - The agreement hot path must pay only a few uncontended atomic
//     adds per batch. Handles are plain pointers resolved once at
//     registration; Observe/Add/Inc never allocate, never lock the
//     registry, and are nil-safe — a subsystem built without a
//     registry holds nil handles and every operation compiles down to
//     a single branch.
//   - Snapshots are read-only over atomics (plus caller-supplied
//     gauge functions that must themselves only read atomics or take
//     shared locks), so scraping a live replica can never change what
//     the replica would execute, vote, or digest. Nothing in this
//     package is part of checkpoint state.
//   - Deterministic output: families sort by name, series by label
//     set, so two scrapes of identical state render identical bytes.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one constant name/value pair attached to a series at
// registration. Labels are constant for the life of the series —
// there is no dynamic label API, which keeps lookup off the hot path.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds metric families. The zero value is not usable; a nil
// *Registry is: every registration on it returns a nil handle whose
// operations no-op, so instrumentation can be threaded unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series // by canonical label key
}

// series is one labeled instance of a family. Exactly one of the
// value groups is live, per the family kind.
type series struct {
	labels []Label

	bits atomic.Uint64  // counter: integer count; gauge: float64 bits
	fn   func() float64 // functional counter/gauge; nil for owned values
	hist *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalises a label set (sorted by key) for lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// getOrCreate returns the series for (name, labels), creating family
// and series as needed. Registering the same name under a different
// kind is a programming error and panics — silently splitting a name
// across kinds would corrupt the exposition format.
func (r *Registry) getOrCreate(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series, 1)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	ls := sortedLabels(labels)
	key := labelKey(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		f.series[key] = s
	}
	return s
}

// ---- Counter ----

// Counter is a monotonically non-decreasing integer. A nil Counter
// no-ops.
type Counter struct{ s *series }

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.getOrCreate(name, help, KindCounter, labels)}
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — for subsystems that already keep their own atomic
// counters (the TCP transport's load counters). fn must be safe to
// call concurrently and should only read atomics or take shared locks.
// The first registration of a (name, labels) series wins.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.getOrCreate(name, help, KindCounter, labels)
	r.mu.Lock()
	if s.fn == nil {
		s.fn = fn
	}
	r.mu.Unlock()
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.s.bits.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.s.bits.Load()
}

// ---- Gauge ----

// Gauge is a float64 that can go up and down. A nil Gauge no-ops.
type Gauge struct{ s *series }

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.getOrCreate(name, help, KindGauge, labels)}
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time. Same contract as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.getOrCreate(name, help, KindGauge, labels)
	r.mu.Lock()
	if s.fn == nil {
		s.fn = fn
	}
	r.mu.Unlock()
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; gauges are off the hottest
// paths).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// ---- Histogram ----

// Histogram counts observations into fixed buckets. Observe is a
// bucket scan plus two atomic adds and one CAS — no locks, no
// allocation. A nil Histogram no-ops.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Histogram registers (or finds) a histogram series with the given
// bucket upper bounds (ascending; the +Inf bucket is implicit). The
// bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getOrCreate(name, help, KindHistogram, labels)
	r.mu.Lock()
	if s.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	h := s.hist
	r.mu.Unlock()
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshotHist reads one consistent-enough view of the histogram.
// Buckets and count are read independently of concurrent Observes; a
// scrape racing an observation may be off by the in-flight one, which
// the exposition model permits.
func (h *Histogram) snapshot() ([]Bucket, uint64, float64) {
	buckets := make([]Bucket, len(h.bounds)+1)
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		buckets[i] = Bucket{LE: le, CumCount: cum}
	}
	return buckets, cum, math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) from bucket counts by
// linear interpolation within the containing bucket — the same
// estimate Prometheus's histogram_quantile computes server-side.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	buckets, total, _ := h.snapshot()
	return bucketQuantile(q, buckets, total)
}

func bucketQuantile(q float64, buckets []Bucket, total uint64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.CumCount) < rank {
			continue
		}
		if math.IsInf(b.LE, 1) {
			// Open-ended top bucket: the lower bound is the best estimate.
			if i == 0 {
				return 0
			}
			return buckets[i-1].LE
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = buckets[i-1].LE, buckets[i-1].CumCount
		}
		inBucket := b.CumCount - loCount
		if inBucket == 0 {
			return b.LE
		}
		return lo + (b.LE-lo)*((rank-float64(loCount))/float64(inBucket))
	}
	return buckets[len(buckets)-1].LE
}

// ---- Bucket helpers ----

// ExpBuckets returns n exponential bucket bounds starting at start,
// each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are latency bounds in seconds, 50µs to ~13s.
var DurationBuckets = ExpBuckets(50e-6, 2, 18)

// SizeBuckets are small-cardinality size bounds (batch fill, group
// commit window): 1, 2, 4, ... 1024.
var SizeBuckets = ExpBuckets(1, 2, 11)

// ---- Snapshot ----

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	LE       float64 `json:"le"`
	CumCount uint64  `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket
// survives encoding/json (which rejects non-finite float64s).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.LE), b.CumCount)), nil
}

// UnmarshalJSON is the inverse, for consumers of the JSON snapshot
// (the peats-admin CLI).
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch raw.LE {
	case "+Inf":
		b.LE = math.Inf(1)
	case "-Inf":
		b.LE = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("metrics: bad bucket bound %q", raw.LE)
		}
		b.LE = v
	}
	b.CumCount = raw.Count
	return nil
}

// SeriesSnapshot is one series' point-in-time value.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64   `json:"obs,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	P50     float64  `json:"p50,omitempty"`
	P95     float64  `json:"p95,omitempty"`
	P99     float64  `json:"p99,omitempty"`

	key string // canonical label key, for sorting
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a full registry dump, ordered by family name.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every family. Safe to call concurrently with
// updates; it never blocks writers (the registry lock guards only the
// family maps, which writers touch only at registration).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Copy the series lists under the lock; values are read after it.
	type famSeries struct {
		f  *family
		ss []*series
		ks []string
	}
	all := make([]famSeries, len(fams))
	for i, f := range fams {
		fs := famSeries{f: f}
		for k, s := range f.series {
			fs.ks = append(fs.ks, k)
			fs.ss = append(fs.ss, s)
		}
		all[i] = fs
	}
	r.mu.Unlock()

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(all))}
	for _, fs := range all {
		out := FamilySnapshot{Name: fs.f.name, Help: fs.f.help, Kind: fs.f.kind.String()}
		for i, s := range fs.ss {
			ss := SeriesSnapshot{key: fs.ks[i]}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch fs.f.kind {
			case KindHistogram:
				if s.hist != nil {
					ss.Buckets, ss.Count, ss.Sum = s.hist.snapshot()
					ss.P50 = bucketQuantile(0.50, ss.Buckets, ss.Count)
					ss.P95 = bucketQuantile(0.95, ss.Buckets, ss.Count)
					ss.P99 = bucketQuantile(0.99, ss.Buckets, ss.Count)
				}
			case KindCounter:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = float64(s.bits.Load())
				}
			default:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = math.Float64frombits(s.bits.Load())
				}
			}
			out.Series = append(out.Series, ss)
		}
		sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].key < out.Series[j].key })
		snap.Families = append(snap.Families, out)
	}
	sort.Slice(snap.Families, func(i, j int) bool { return snap.Families[i].Name < snap.Families[j].Name })
	return snap
}
