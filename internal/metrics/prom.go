package metrics

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// histograms as cumulative _bucket/_sum/_count series. Families render
// sorted by name, series by label set, so identical state renders
// identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, f := range snap.Families {
		b.Reset()
		if f.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind)
		b.WriteByte('\n')
		for _, s := range f.Series {
			if f.Kind == "histogram" {
				writeHistogram(&b, f.Name, s)
				continue
			}
			b.WriteString(f.Name)
			writeLabels(&b, s.Labels, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(b *strings.Builder, name string, s SeriesSnapshot) {
	for _, bk := range s.Buckets {
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.Labels, "le", bk.LE)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(bk.CumCount, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.Labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.Labels, "", 0)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.Count, 10))
	b.WriteByte('\n')
}

// writeLabels renders a label block; leKey, when non-empty, appends the
// histogram "le" label with the given bound.
func writeLabels(b *strings.Builder, labels map[string]string, leKey string, le float64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	first := true
	// Deterministic order.
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortStrings is sort.Strings without dragging sort's interface
// machinery into the per-series path (label sets are tiny).
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
