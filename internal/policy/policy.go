// Package policy implements fine-grained access policies and the
// reference monitor of the Policy-Enforced Object (PEO) model.
//
// A policy is a set of rules. Each rule has an invocation pattern (the
// operation it governs) and a logical expression — a predicate over the
// three pieces of information the paper's reference monitor may inspect:
//
//  1. the invoker process identifier;
//  2. the operation and its arguments;
//  3. the current state of the protected object.
//
// An invocation is allowed iff at least one rule for its operation is
// satisfied. Following the principle of fail-safe defaults (Saltzer &
// Schroeder), an invocation that fits no rule is denied.
//
// The Go predicates play the role of the paper's PROLOG-style rule
// bodies; the transliterations of the paper's figures live next to the
// algorithms that use them (packages consensus and universal).
package policy

import (
	"fmt"
	"strings"

	"peats/internal/tuple"
)

// ProcessID identifies an authenticated process invoking operations on a
// protected object. The model assumes a malicious process cannot
// impersonate a correct one; the transport layer realises this with
// per-process authenticated channels.
type ProcessID string

// Op enumerates the operations of the augmented tuple space.
type Op uint8

// Tuple-space operations subject to policy enforcement.
const (
	OpOut Op = iota + 1
	OpRd
	OpRdp
	OpIn
	OpInp
	OpCas
	// OpRdAll is the bulk non-destructive read of every matching tuple
	// (DepSpace's copy-collect) — an extension beyond the paper's six
	// operations, governed by policies like any other.
	OpRdAll
)

// String returns the paper's name for the operation.
func (o Op) String() string {
	switch o {
	case OpOut:
		return "out"
	case OpRd:
		return "rd"
	case OpRdp:
		return "rdp"
	case OpIn:
		return "in"
	case OpInp:
		return "inp"
	case OpCas:
		return "cas"
	case OpRdAll:
		return "rdAll"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Invocation is one attempted operation, as seen by the reference
// monitor before execution.
type Invocation struct {
	Invoker ProcessID
	Op      Op
	// Template is the template argument of rd/rdp/in/inp/cas.
	// It is the zero Tuple for out.
	Template tuple.Tuple
	// Entry is the entry argument of out and cas. It is the zero Tuple
	// for the read operations.
	Entry tuple.Tuple
	// TxIndex and TxLen locate the invocation inside a multi-operation
	// submission (an atomic transaction of TxLen operations vetted one
	// by one, in order, each against the state its predecessors
	// produced): TxIndex is the operation's 0-based position. Solo
	// invocations carry TxLen ≤ 1, so predicates that ignore these
	// fields behave exactly as before transactions existed.
	TxIndex int
	TxLen   int
}

// InTx reports whether the invocation is part of a multi-operation
// transaction.
func (inv Invocation) InTx() bool { return inv.TxLen > 1 }

// String renders the invocation for diagnostics and audit logs.
func (inv Invocation) String() string {
	var args []string
	if !inv.Template.IsZero() {
		args = append(args, inv.Template.String())
	}
	if !inv.Entry.IsZero() {
		args = append(args, inv.Entry.String())
	}
	base := fmt.Sprintf("%s: %s(%s)", inv.Invoker, inv.Op, strings.Join(args, ", "))
	if inv.InTx() {
		return fmt.Sprintf("%s [tx %d/%d]", base, inv.TxIndex+1, inv.TxLen)
	}
	return base
}

// StateView is the read-only view of the protected object's state that
// rule predicates may inspect. It is implemented by *space.Space.
type StateView interface {
	// Rdp returns the first tuple matching tmpl, if any.
	Rdp(tmpl tuple.Tuple) (tuple.Tuple, bool)
	// CountMatching returns how many stored tuples match tmpl.
	CountMatching(tmpl tuple.Tuple) int
	// ForEach visits every stored tuple until fn returns false.
	ForEach(fn func(tuple.Tuple) bool)
}

// Predicate is the logical expression of a rule: it decides whether a
// particular invocation may execute given the object's current state.
// Predicates must be deterministic and must not mutate state.
type Predicate func(inv Invocation, st StateView) bool

// Rule associates an invocation pattern (operation) with a predicate.
// Name identifies the rule in diagnostics (e.g. "Rcas").
type Rule struct {
	Name string
	Op   Op
	When Predicate
}

// Policy is an ordered set of rules with deny-by-default semantics.
// The zero Policy denies everything.
type Policy struct {
	rules []Rule
}

// New returns a policy composed of the given rules.
func New(rules ...Rule) Policy {
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	return Policy{rules: cp}
}

// Rules returns a copy of the policy's rules.
func (p Policy) Rules() []Rule {
	cp := make([]Rule, len(p.rules))
	copy(cp, p.rules)
	return cp
}

// Decision records the outcome of a reference-monitor check.
type Decision struct {
	Allowed bool
	// Rule is the name of the rule that allowed the invocation, or ""
	// when denied.
	Rule string
}

// Evaluate applies the monitor to an invocation: the invocation is
// allowed iff some rule for its operation is satisfied. Invocations
// matching no rule are denied (fail-safe default).
func (p Policy) Evaluate(inv Invocation, st StateView) Decision {
	for _, r := range p.rules {
		if r.Op != inv.Op {
			continue
		}
		if r.When == nil || r.When(inv, st) {
			return Decision{Allowed: true, Rule: r.Name}
		}
	}
	return Decision{}
}

// Allows reports whether the policy permits the invocation.
func (p Policy) Allows(inv Invocation, st StateView) bool {
	return p.Evaluate(inv, st).Allowed
}

// AllowAll returns the permissive policy used by unprotected spaces:
// every operation is allowed unconditionally.
func AllowAll() Policy {
	ops := []Op{OpOut, OpRd, OpRdp, OpIn, OpInp, OpCas, OpRdAll}
	rules := make([]Rule, 0, len(ops))
	for _, op := range ops {
		rules = append(rules, Rule{Name: "allow-" + op.String(), Op: op})
	}
	return New(rules...)
}
