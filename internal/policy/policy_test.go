package policy

import (
	"strings"
	"testing"

	"peats/internal/space"
	"peats/internal/tuple"
)

func inv(p ProcessID, op Op, tmpl, entry tuple.Tuple) Invocation {
	return Invocation{Invoker: p, Op: op, Template: tmpl, Entry: entry}
}

func TestZeroPolicyDeniesEverything(t *testing.T) {
	var p Policy
	st := space.New()
	for _, op := range []Op{OpOut, OpRd, OpRdp, OpIn, OpInp, OpCas} {
		if p.Allows(inv("p1", op, tuple.T(tuple.Any()), tuple.T(tuple.Int(1))), st) {
			t.Errorf("zero policy allowed %v", op)
		}
	}
}

func TestFailSafeDefault(t *testing.T) {
	// A policy with only an out rule denies every other operation.
	p := New(Rule{Name: "Rout", Op: OpOut, When: Always})
	st := space.New()
	if !p.Allows(inv("p1", OpOut, tuple.Tuple{}, tuple.T(tuple.Int(1))), st) {
		t.Error("out should be allowed")
	}
	for _, op := range []Op{OpRd, OpRdp, OpIn, OpInp, OpCas} {
		if p.Allows(inv("p1", op, tuple.T(tuple.Any()), tuple.Tuple{}), st) {
			t.Errorf("%v should be denied by fail-safe default", op)
		}
	}
}

func TestNilWhenMeansUnconditional(t *testing.T) {
	p := New(Rule{Name: "r", Op: OpRdp})
	if !p.Allows(inv("p", OpRdp, tuple.T(tuple.Any()), tuple.Tuple{}), space.New()) {
		t.Error("rule with nil When should allow")
	}
}

func TestEvaluateReportsRuleName(t *testing.T) {
	p := New(
		Rule{Name: "strict", Op: OpOut, When: InvokerIn("p1")},
		Rule{Name: "loose", Op: OpOut, When: Always},
	)
	st := space.New()
	d := p.Evaluate(inv("p1", OpOut, tuple.Tuple{}, tuple.T(tuple.Int(1))), st)
	if !d.Allowed || d.Rule != "strict" {
		t.Errorf("decision = %+v, want strict", d)
	}
	d = p.Evaluate(inv("p9", OpOut, tuple.Tuple{}, tuple.T(tuple.Int(1))), st)
	if !d.Allowed || d.Rule != "loose" {
		t.Errorf("decision = %+v, want loose", d)
	}
}

func TestAllowAll(t *testing.T) {
	p := AllowAll()
	st := space.New()
	for _, op := range []Op{OpOut, OpRd, OpRdp, OpIn, OpInp, OpCas} {
		if !p.Allows(inv("anyone", op, tuple.T(tuple.Any()), tuple.T(tuple.Int(1))), st) {
			t.Errorf("AllowAll denied %v", op)
		}
	}
}

// TestFigure1RegisterPolicy transliterates the paper's Fig. 1: a numeric
// register (modelled as a <REG, v> tuple) where anyone may read but only
// p1, p2, p3 may write, and only values greater than the current one.
func TestFigure1RegisterPolicy(t *testing.T) {
	regTmpl := tuple.T(tuple.Str("REG"), tuple.Any())
	greaterThanCurrent := Check(func(in Invocation, st StateView) bool {
		v, ok := in.Entry.Field(1).IntValue()
		if !ok {
			return false
		}
		cur, found := st.Rdp(regTmpl)
		if !found {
			return true // no value yet: any first write allowed
		}
		c, _ := cur.Field(1).IntValue()
		return v > c
	})
	pol := New(
		Rule{Name: "Rread", Op: OpRdp, When: Always},
		Rule{Name: "Rwrite", Op: OpOut, When: And(
			InvokerIn("p1", "p2", "p3"),
			EntryArity(2),
			EntryField(0, tuple.Str("REG")),
			greaterThanCurrent,
		)},
	)

	st := space.New()
	write := func(p ProcessID, v int64) bool {
		in := inv(p, OpOut, tuple.Tuple{}, tuple.T(tuple.Str("REG"), tuple.Int(v)))
		if !pol.Allows(in, st) {
			return false
		}
		// Simulate the register: replace the current value.
		st.Inp(regTmpl)
		if err := st.Out(in.Entry); err != nil {
			t.Fatal(err)
		}
		return true
	}

	if !write("p1", 5) {
		t.Error("first write by p1 denied")
	}
	if write("p4", 10) {
		t.Error("write by p4 allowed (not in ACL)")
	}
	if write("p2", 5) {
		t.Error("non-increasing write allowed")
	}
	if write("p2", 3) {
		t.Error("decreasing write allowed")
	}
	if !write("p3", 6) {
		t.Error("increasing write by p3 denied")
	}
	if !pol.Allows(inv("p9", OpRdp, regTmpl, tuple.Tuple{}), st) {
		t.Error("read denied")
	}
}

func TestCombinators(t *testing.T) {
	st := space.New()
	i := inv("p1", OpOut, tuple.Tuple{}, tuple.T(tuple.Str("X")))
	tr := Predicate(Always)
	fa := Not(Always)

	tests := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"And empty", And(), true},
		{"And all true", And(tr, tr), true},
		{"And one false", And(tr, fa), false},
		{"Or empty", Or(), false},
		{"Or one true", Or(fa, tr), true},
		{"Or all false", Or(fa, fa), false},
		{"Not true", Not(tr), false},
		{"Not false", Not(fa), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p(i, st); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAndShortCircuits(t *testing.T) {
	called := false
	spy := Check(func(Invocation, StateView) bool { called = true; return true })
	p := And(Not(Always), spy)
	if p(Invocation{}, space.New()) {
		t.Error("And should be false")
	}
	if called {
		t.Error("And did not short-circuit")
	}
}

func TestInvocationArgumentPredicates(t *testing.T) {
	st := space.New()
	entry := tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(1))
	tmpl := tuple.T(tuple.Str("DECISION"), tuple.Formal("d"))
	i := inv("p1", OpCas, tmpl, entry)

	tests := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"EntryArity ok", EntryArity(3), true},
		{"EntryArity wrong", EntryArity(2), false},
		{"TemplateArity ok", TemplateArity(2), true},
		{"TemplateArity wrong", TemplateArity(3), false},
		{"EntryField ok", EntryField(0, tuple.Str("PROPOSE")), true},
		{"EntryField wrong", EntryField(0, tuple.Str("DECISION")), false},
		{"TemplateField ok", TemplateField(0, tuple.Str("DECISION")), true},
		{"TemplateFieldFormal ok", TemplateFieldFormal(1), true},
		{"TemplateFieldFormal not formal", TemplateFieldFormal(0), false},
		{"TemplateFieldFormal out of range", TemplateFieldFormal(5), false},
		{"EntryFieldIsInvoker ok", EntryFieldIsInvoker(1), true},
		{"EntryFieldIsInvoker wrong field", EntryFieldIsInvoker(0), false},
		{"EntryFieldIsInvoker non-string", EntryFieldIsInvoker(2), false},
		{"InvokerIn yes", InvokerIn("p1", "p2"), true},
		{"InvokerIn no", InvokerIn("p2", "p3"), false},
		{"InvokerIn empty", InvokerIn(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p(i, st); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStatePredicates(t *testing.T) {
	st := space.New()
	if err := st.Out(tuple.T(tuple.Str("PROPOSE"), tuple.Str("p1"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := st.Out(tuple.T(tuple.Str("PROPOSE"), tuple.Str("p2"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}

	i := inv("p1", OpCas,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d")),
		tuple.T(tuple.Str("DECISION"), tuple.Int(1)))

	if !Exists(tuple.T(tuple.Str("PROPOSE"), tuple.Any(), tuple.Any()))(i, st) {
		t.Error("Exists false for present tuple")
	}
	if Exists(tuple.T(tuple.Str("DECISION"), tuple.Any()))(i, st) {
		t.Error("Exists true for absent tuple")
	}
	if !NotExists(tuple.T(tuple.Str("DECISION"), tuple.Any()))(i, st) {
		t.Error("NotExists false for absent tuple")
	}

	buildProposal := func(in Invocation) (tuple.Tuple, bool) {
		v := in.Entry.Field(1)
		if !v.IsValue() {
			return tuple.Tuple{}, false
		}
		return tuple.T(tuple.Str("PROPOSE"), tuple.Any(), v), true
	}
	if !CountAtLeast(2, buildProposal)(i, st) {
		t.Error("CountAtLeast(2) false with 2 proposals")
	}
	if CountAtLeast(3, buildProposal)(i, st) {
		t.Error("CountAtLeast(3) true with 2 proposals")
	}
	bad := func(Invocation) (tuple.Tuple, bool) { return tuple.Tuple{}, false }
	if CountAtLeast(0, bad)(i, st) {
		t.Error("CountAtLeast with failing builder should be false")
	}
	if ExistsFn(bad)(i, st) {
		t.Error("ExistsFn with failing builder should be false")
	}
	if !ExistsFn(buildProposal)(i, st) {
		t.Error("ExistsFn false for present tuple")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{
		OpOut: "out", OpRd: "rd", OpRdp: "rdp",
		OpIn: "in", OpInp: "inp", OpCas: "cas", Op(99): "op(99)",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestInvocationString(t *testing.T) {
	i := inv("p1", OpCas,
		tuple.T(tuple.Str("D"), tuple.Formal("d")),
		tuple.T(tuple.Str("D"), tuple.Int(1)))
	s := i.String()
	for _, want := range []string{"p1", "cas", "?d", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Invocation.String() = %q missing %q", s, want)
		}
	}
	o := inv("p2", OpOut, tuple.Tuple{}, tuple.T(tuple.Int(3)))
	if s := o.String(); !strings.Contains(s, "out(<3>)") {
		t.Errorf("out rendering = %q", s)
	}
}

func TestRulesReturnsCopy(t *testing.T) {
	p := New(Rule{Name: "a", Op: OpOut})
	rs := p.Rules()
	rs[0].Name = "mutated"
	if p.Rules()[0].Name != "a" {
		t.Error("Rules() exposed internal slice")
	}
}
