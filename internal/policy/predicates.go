package policy

import "peats/internal/tuple"

// Combinators for building rule predicates. These mirror the connectives
// and atoms of the paper's PROLOG-style rule bodies (conjunction,
// disjunction, negation, existential quantification over the space, and
// tests on invocation arguments).

// And is satisfied when every predicate is satisfied. And() is true.
func And(ps ...Predicate) Predicate {
	return func(inv Invocation, st StateView) bool {
		for _, p := range ps {
			if !p(inv, st) {
				return false
			}
		}
		return true
	}
}

// Or is satisfied when at least one predicate is satisfied. Or() is false.
func Or(ps ...Predicate) Predicate {
	return func(inv Invocation, st StateView) bool {
		for _, p := range ps {
			if p(inv, st) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(inv Invocation, st StateView) bool { return !p(inv, st) }
}

// Always is satisfied by every invocation.
func Always(Invocation, StateView) bool { return true }

// InvokerIn is satisfied when the invoker is one of the listed
// processes — the paper's ACL-as-a-special-case-of-policy (§3, Fig. 1).
func InvokerIn(ids ...ProcessID) Predicate {
	set := make(map[ProcessID]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return func(inv Invocation, _ StateView) bool {
		_, ok := set[inv.Invoker]
		return ok
	}
}

// EntryArity requires the entry argument to have exactly n fields.
func EntryArity(n int) Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.Entry.Arity() == n }
}

// TemplateArity requires the template argument to have exactly n fields.
func TemplateArity(n int) Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.Template.Arity() == n }
}

// EntryField requires field i of the entry argument to equal f.
func EntryField(i int, f tuple.Field) Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.Entry.Field(i).Equal(f) }
}

// TemplateField requires field i of the template argument to equal f.
func TemplateField(i int, f tuple.Field) Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.Template.Field(i).Equal(f) }
}

// TemplateFieldFormal requires field i of the template to be a formal
// field (the paper's formal(x) predicate, e.g. in Figs. 3 and 4).
func TemplateFieldFormal(i int) Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.Template.Field(i).IsFormal() }
}

// EntryFieldIsInvoker requires field i of the entry to be the invoker's
// identifier — e.g. Fig. 4's Rout: out(<PROPOSE, p, *>) invoked by p.
func EntryFieldIsInvoker(i int) Predicate {
	return func(inv Invocation, _ StateView) bool {
		s, ok := inv.Entry.Field(i).StrValue()
		return ok && ProcessID(s) == inv.Invoker
	}
}

// InTx is satisfied when the invocation arrives as part of a
// multi-operation transaction (Submit with more than one op). Rules can
// combine it with Not to confine an operation to solo invocations, or
// require it for operations only meaningful inside an atomic unit.
func InTx() Predicate {
	return func(inv Invocation, _ StateView) bool { return inv.InTx() }
}

// Exists is satisfied when some stored tuple matches tmpl
// (∃y: <...> ∈ TS in the paper's rules).
func Exists(tmpl tuple.Tuple) Predicate {
	return func(_ Invocation, st StateView) bool {
		_, ok := st.Rdp(tmpl)
		return ok
	}
}

// NotExists is satisfied when no stored tuple matches tmpl.
func NotExists(tmpl tuple.Tuple) Predicate {
	return Not(Exists(tmpl))
}

// ExistsFn builds the template from the invocation before testing
// existence, for rules whose quantified tuple depends on the arguments
// (e.g. Fig. 7: ∃y: <SEQ, pos−1, y> ∈ TS where pos comes from the cas).
func ExistsFn(build func(inv Invocation) (tuple.Tuple, bool)) Predicate {
	return func(inv Invocation, st StateView) bool {
		tmpl, ok := build(inv)
		if !ok {
			return false
		}
		_, found := st.Rdp(tmpl)
		return found
	}
}

// CountAtLeast is satisfied when at least n stored tuples match the
// template built from the invocation (e.g. Fig. 4's "v appears in
// proposals of at least t+1 processes").
func CountAtLeast(n int, build func(inv Invocation) (tuple.Tuple, bool)) Predicate {
	return func(inv Invocation, st StateView) bool {
		tmpl, ok := build(inv)
		if !ok {
			return false
		}
		return st.CountMatching(tmpl) >= n
	}
}

// Check wraps an arbitrary deterministic function as a predicate, for
// rule bodies that do not decompose into the combinators above (e.g. the
// set-of-sets justification of the default-consensus Rcas, Fig. 5).
func Check(fn func(inv Invocation, st StateView) bool) Predicate { return fn }
