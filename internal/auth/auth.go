// Package auth implements authenticated point-to-point channels for the
// replicated PEATS substrate.
//
// The PEO model assumes a malicious process cannot impersonate a
// correct one when invoking operations (paper §2.1); the feasibility
// section suggests standard channel technology (IPSec/SSL). This
// package substitutes HMAC-SHA256 message authentication over pairwise
// symmetric keys: each pair of nodes shares a key, every frame carries a
// MAC, and receivers drop frames whose MAC does not verify — which is
// exactly the property the reference monitor needs.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"sort"
	"sync"
)

// KeySize is the size in bytes of pairwise keys and MACs.
const KeySize = 32

// Key is a pairwise symmetric key.
type Key [KeySize]byte

// ErrUnknownPeer is returned when signing or verifying against a peer
// with no shared key.
var ErrUnknownPeer = errors.New("auth: no key shared with peer")

// GenerateKey returns a fresh random key.
func GenerateKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("auth: generate key: %w", err)
	}
	return k, nil
}

// DeriveKey deterministically derives the pairwise key for nodes a and b
// from a master secret, independent of argument order. Deployments with
// a trusted setup phase use it to provision all pairs from one secret;
// tests use it for reproducibility.
func DeriveKey(master []byte, a, b string) Key {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte("peats-pairwise-key\x00"))
	mac.Write([]byte(lo))
	mac.Write([]byte{0})
	mac.Write([]byte(hi))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// Keyring holds one node's shared keys with its peers. It is safe for
// concurrent use.
type Keyring struct {
	self string
	mu   sync.RWMutex
	keys map[string]Key
	// macs caches one reusable HMAC instance per peer: crypto/hmac
	// restores its precomputed inner/outer pad states on Reset, so an
	// amortized MAC costs two compression runs with no per-call key
	// schedule or wrapper allocation. MAC computation is per-request
	// work on the replication hot path (request authenticator
	// vectors), so this matters.
	macs map[string]*peerMAC
}

// peerMAC is a mutex-guarded reusable HMAC-SHA256 instance for one
// pairwise key.
type peerMAC struct {
	mu      sync.Mutex
	h       hash.Hash
	scratch [KeySize]byte // verify-side sum buffer, reused under mu
}

func newPeerMAC(k Key) *peerMAC {
	return &peerMAC{h: hmac.New(sha256.New, k[:])}
}

func (p *peerMAC) mac(msg []byte) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.h.Reset()
	p.h.Write(msg)
	return p.h.Sum(make([]byte, 0, KeySize))
}

// macAppend appends the MAC of msg to dst without allocating beyond
// dst's growth.
func (p *peerMAC) macAppend(dst, msg []byte) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.h.Reset()
	p.h.Write(msg)
	return p.h.Sum(dst)
}

// verify checks a MAC without allocating.
func (p *peerMAC) verify(msg, mac []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.h.Reset()
	p.h.Write(msg)
	return hmac.Equal(p.h.Sum(p.scratch[:0]), mac)
}

// NewKeyring returns an empty keyring for the given node identity.
func NewKeyring(self string) *Keyring {
	return &Keyring{self: self, keys: make(map[string]Key), macs: make(map[string]*peerMAC)}
}

// NewKeyringFromMaster returns a keyring pre-provisioned with derived
// pairwise keys for every listed peer.
func NewKeyringFromMaster(master []byte, self string, peers []string) *Keyring {
	kr := NewKeyring(self)
	for _, p := range peers {
		if p == self {
			continue
		}
		kr.SetKey(p, DeriveKey(master, self, p))
	}
	return kr
}

// Self returns the identity the keyring belongs to.
func (kr *Keyring) Self() string { return kr.self }

// SetKey installs the shared key for a peer.
func (kr *Keyring) SetKey(peer string, k Key) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	kr.keys[peer] = k
	kr.macs[peer] = newPeerMAC(k)
}

// Peers returns the identities the keyring has keys for, sorted.
func (kr *Keyring) Peers() []string {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	ps := make([]string, 0, len(kr.keys))
	for p := range kr.keys {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// MAC computes the authenticator for msg on the channel to peer.
func (kr *Keyring) MAC(peer string, msg []byte) ([]byte, error) {
	kr.mu.RLock()
	pm := kr.macs[peer]
	kr.mu.RUnlock()
	if pm == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, peer)
	}
	return pm.mac(msg), nil
}

// AppendMAC appends the authenticator for msg on the channel to peer
// onto dst and returns the extended slice — the allocation-free form of
// MAC for callers that seal into a reused buffer (the TCP transport's
// coalescing writer seals every outbound frame this way).
func (kr *Keyring) AppendMAC(peer string, dst, msg []byte) ([]byte, error) {
	kr.mu.RLock()
	pm := kr.macs[peer]
	kr.mu.RUnlock()
	if pm == nil {
		return dst, fmt.Errorf("%w: %q", ErrUnknownPeer, peer)
	}
	return pm.macAppend(dst, msg), nil
}

// Verify checks the authenticator for msg on the channel from peer.
// It returns false for unknown peers and for invalid MACs.
func (kr *Keyring) Verify(peer string, msg, mac []byte) bool {
	kr.mu.RLock()
	pm := kr.macs[peer]
	kr.mu.RUnlock()
	if pm == nil {
		return false
	}
	return pm.verify(msg, mac)
}

// Digest returns the SHA-256 digest of b. Protocol messages are
// identified by digests so replicas can vote on them compactly.
func Digest(b []byte) [32]byte { return sha256.Sum256(b) }
