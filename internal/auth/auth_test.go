package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func TestDeriveKeySymmetric(t *testing.T) {
	master := []byte("master-secret")
	if DeriveKey(master, "a", "b") != DeriveKey(master, "b", "a") {
		t.Error("derived key depends on argument order")
	}
	if DeriveKey(master, "a", "b") == DeriveKey(master, "a", "c") {
		t.Error("distinct pairs share a key")
	}
	if DeriveKey(master, "a", "b") == DeriveKey([]byte("other"), "a", "b") {
		t.Error("distinct masters share a key")
	}
	// Separator matters: ("ab","c") must differ from ("a","bc").
	if DeriveKey(master, "ab", "c") == DeriveKey(master, "a", "bc") {
		t.Error("ambiguous pair encoding")
	}
}

func TestMACAndVerify(t *testing.T) {
	master := []byte("m")
	peers := []string{"r0", "r1", "r2"}
	kr0 := NewKeyringFromMaster(master, "r0", peers)
	kr1 := NewKeyringFromMaster(master, "r1", peers)

	msg := []byte("pre-prepare v=0 n=1")
	mac, err := kr0.MAC("r1", msg)
	if err != nil {
		t.Fatal(err)
	}
	if !kr1.Verify("r0", msg, mac) {
		t.Error("valid MAC rejected")
	}
	// Tampered message.
	bad := append([]byte{}, msg...)
	bad[0] ^= 1
	if kr1.Verify("r0", bad, mac) {
		t.Error("tampered message accepted")
	}
	// Tampered MAC.
	badMac := append([]byte{}, mac...)
	badMac[0] ^= 1
	if kr1.Verify("r0", msg, badMac) {
		t.Error("tampered MAC accepted")
	}
	// Wrong claimed sender: r2's key differs.
	if kr1.Verify("r2", msg, mac) {
		t.Error("impersonation accepted")
	}
}

func TestUnknownPeer(t *testing.T) {
	kr := NewKeyring("solo")
	if _, err := kr.MAC("ghost", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
	if kr.Verify("ghost", []byte("x"), make([]byte, 32)) {
		t.Error("verify against unknown peer succeeded")
	}
}

func TestKeyringPeersAndSelf(t *testing.T) {
	kr := NewKeyringFromMaster([]byte("m"), "b", []string{"c", "a", "b"})
	if kr.Self() != "b" {
		t.Errorf("Self = %q", kr.Self())
	}
	ps := kr.Peers()
	if len(ps) != 2 || ps[0] != "a" || ps[1] != "c" {
		t.Errorf("Peers = %v (self must be excluded, sorted)", ps)
	}
}

func TestGenerateKeyDistinct(t *testing.T) {
	a, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two generated keys are equal")
	}
}

func TestMACProperty(t *testing.T) {
	master := []byte("m")
	kr1 := NewKeyringFromMaster(master, "x", []string{"y"})
	kr2 := NewKeyringFromMaster(master, "y", []string{"x"})
	f := func(msg []byte) bool {
		mac, err := kr1.MAC("y", msg)
		if err != nil {
			return false
		}
		return kr2.Verify("x", msg, mac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDigestStable(t *testing.T) {
	if Digest([]byte("a")) != Digest([]byte("a")) {
		t.Error("digest not deterministic")
	}
	if Digest([]byte("a")) == Digest([]byte("b")) {
		t.Error("digest collision on trivial input")
	}
}

func TestPadCachedMACMatchesHMAC(t *testing.T) {
	// The pad-state fast path must be bit-identical to crypto/hmac —
	// TCP frames and request authenticators from old and new nodes
	// interoperate.
	kr := NewKeyring("a")
	k := DeriveKey([]byte("m"), "a", "b")
	kr.SetKey("b", k)
	for _, msg := range [][]byte{nil, {}, []byte("x"), make([]byte, 31), make([]byte, 32), make([]byte, 200)} {
		got, err := kr.MAC("b", msg)
		if err != nil {
			t.Fatal(err)
		}
		m := hmac.New(sha256.New, k[:])
		m.Write(msg)
		want := m.Sum(nil)
		if !hmac.Equal(got, want) {
			t.Fatalf("MAC(%d bytes) diverges from crypto/hmac", len(msg))
		}
		if !kr.Verify("b", msg, want) {
			t.Fatalf("Verify rejects the canonical HMAC for %d bytes", len(msg))
		}
	}
}
