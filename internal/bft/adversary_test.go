package bft

import (
	"context"
	"io"
	"log"
	"os"
	"testing"
	"time"

	"peats/internal/policy"
	"peats/internal/transport"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// testLogger keeps protocol diagnostics quiet by default; set
// PEATS_BFT_LOG=1 to stream them during debugging.
var testLogger = func() *log.Logger {
	if os.Getenv("PEATS_BFT_LOG") != "" {
		return log.New(os.Stderr, "", log.Lmicroseconds)
	}
	return log.New(io.Discard, "", 0)
}()

// fakePrimary drives replica r0's transport endpoint by hand, playing a
// Byzantine primary at the protocol level (equivocation, garbage,
// selective silence) — attacks a corrupt Service cannot express.
type fakePrimary struct {
	tr    transport.Transport
	stop  chan struct{}
	done  chan struct{}
	react func(fp *fakePrimary, m transport.Inbound)
}

func startFakePrimary(net *transport.Network, id string, react func(fp *fakePrimary, m transport.Inbound)) *fakePrimary {
	fp := &fakePrimary{
		tr:    net.Endpoint(id),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		react: react,
	}
	go func() {
		defer close(fp.done)
		for {
			select {
			case <-fp.stop:
				return
			case m := <-fp.tr.Inbox():
				fp.react(fp, m)
			}
		}
	}()
	return fp
}

func (fp *fakePrimary) halt() {
	close(fp.stop)
	<-fp.done
}

func (fp *fakePrimary) send(t *testing.T, to string, msg any) {
	t.Helper()
	payload, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	_ = fp.tr.Send(to, payload)
}

// startBackups launches replicas r1..r3 (r0's slot is the adversary's).
func startBackups(t *testing.T, net *transport.Network, ids []string, vcTimeout time.Duration) []*Replica {
	t.Helper()
	var reps []*Replica
	for _, id := range ids[1:] {
		rep, err := NewReplica(ReplicaConfig{
			ID: id, Replicas: ids, F: 1,
			Transport:         net.Endpoint(id),
			Service:           NewSpaceService(policy.AllowAll()),
			ViewChangeTimeout: vcTimeout,
			Logger:            testLogger,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		reps = append(reps, rep)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return reps
}

func TestEquivocatingPrimaryTriggersViewChange(t *testing.T) {
	// The fake primary answers every client request by sending
	// CONFLICTING pre-prepares for the same sequence number: the real
	// request to r1, a forged one to r2 and r3. No prepare quorum can
	// form on either digest... unless the forged branch wins among
	// r2/r3 — but the forged "request" fails the digest check. Either
	// way the request cannot commit in view 0, the backups' timers fire,
	// and the system recovers in view 1.
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)
	startBackups(t, net, ids, 150*time.Millisecond)

	fp := startFakePrimary(net, "r0", func(fp *fakePrimary, m transport.Inbound) {
		msg, err := Unmarshal(m.Payload)
		if err != nil {
			return
		}
		req, ok := msg.(Request)
		if !ok {
			return // ignore votes; stay silent in the view change
		}
		honest := PrePrepare{View: 0, Seq: 1, Digest: req.Digest(), Req: req}
		forged := req
		forged.Op = append([]byte{0xff}, forged.Op...)
		lie := PrePrepare{View: 0, Seq: 1, Digest: forged.Digest(), Req: forged}
		fp.send(t, "r1", honest)
		fp.send(t, "r2", lie)
		fp.send(t, "r3", lie)
	})
	defer fp.halt()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts := NewRemoteSpace(NewClient(net.Endpoint("c"), ids, 1))
	if err := ts.Out(ctx, tuple.T(tuple.Str("SURVIVED"))); err != nil {
		t.Fatalf("request never committed despite view change: %v", err)
	}
	if _, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("SURVIVED"))); err != nil || !ok {
		t.Fatalf("state lost: %v %v", ok, err)
	}
}

func TestDirectEquivocationDetected(t *testing.T) {
	// Sending two different pre-prepares for the same (view, seq) to the
	// SAME backup trips the explicit equivocation check: the backup
	// starts a view change on its own, without waiting for a timer.
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)
	reps := startBackups(t, net, ids, time.Hour) // timers out of the picture

	fp := startFakePrimary(net, "r0", func(*fakePrimary, transport.Inbound) {})
	defer fp.halt()

	reqA := Request{Client: "c", ReqID: 1, Op: []byte{1}}
	reqB := Request{Client: "c", ReqID: 1, Op: []byte{2}}
	fp.send(t, "r1", PrePrepare{View: 0, Seq: 1, Digest: reqA.Digest(), Req: reqA})
	fp.send(t, "r1", PrePrepare{View: 0, Seq: 1, Digest: reqB.Digest(), Req: reqB})

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reps[0].View() >= 1 { // reps[0] is r1
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("r1 never left view 0 after observing equivocation (view=%d)", reps[0].View())
}

func TestGarbageFloodIgnored(t *testing.T) {
	// A Byzantine replica floods peers with malformed frames and forged
	// votes; the group keeps serving.
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)

	// r0..r2 honest; r3 is the flooder this time, so the honest primary
	// keeps working.
	var reps []*Replica
	for _, id := range ids[:3] {
		rep, err := NewReplica(ReplicaConfig{
			ID: id, Replicas: ids, F: 1,
			Transport: net.Endpoint(id),
			Service:   NewSpaceService(policy.AllowAll()),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		reps = append(reps, rep)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	flooder := net.Endpoint("r3")
	stop := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		forged, _ := Marshal(Prepare{View: 0, Seq: 1, Digest: [32]byte{1}, Replica: "r1"}) // claims r1!
		junk := []byte{0xde, 0xad, 0xbe, 0xef}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = flooder.Send(ids[i%3], junk)
			_ = flooder.Send(ids[i%3], forged)
			if i%100 == 99 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	t.Cleanup(func() { close(stop); <-floodDone })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts := NewRemoteSpace(NewClient(net.Endpoint("c"), ids, 1))
	for i := int64(0); i < 10; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("F"), tuple.Int(i))); err != nil {
			t.Fatalf("out %d under flood: %v", i, err)
		}
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	// 15% uniform loss on every link: retransmissions and quorum slack
	// must still drive requests through.
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}, WithSeed(99), WithViewChangeTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	for _, a := range append([]string{"c"}, cl.IDs...) {
		for _, b := range append([]string{"c"}, cl.IDs...) {
			if a != b {
				cl.Net.SetLink(a, b, 0.15, 0)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cli := cl.Client("c")
	cli.RetransmitInterval = 30 * time.Millisecond
	ts := NewRemoteSpace(cli)
	for i := int64(0); i < 8; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("LOSSY"), tuple.Int(i))); err != nil {
			t.Fatalf("out %d: %v", i, err)
		}
	}
	got, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("LOSSY"), tuple.Int(7)))
	if err != nil || !ok {
		t.Fatalf("rdp: %v %v %v", got, ok, err)
	}
}

// TestByzantinePrimaryEquivocatesOnBatchContents: the fake primary
// proposes the SAME two client requests under the same sequence number
// but in different orders to different backups — the batch digests
// differ, no quorum can form on either, and the group must recover via
// view change with both requests executing exactly once.
func TestByzantinePrimaryEquivocatesOnBatchContents(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)
	startBackups(t, net, ids, 200*time.Millisecond)

	// Two well-formed clients (one outstanding request each): the
	// adversarial reordering below must not trip per-client
	// at-most-once suppression.
	c1, c2 := net.Endpoint("c1"), net.Endpoint("c2")
	req1 := Request{Client: "c1", ReqID: 1, Op: wire.EncodeSpaceOp(wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("EQ"), tuple.Int(1))})}
	req2 := Request{Client: "c2", ReqID: 1, Op: wire.EncodeSpaceOp(wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("EQ"), tuple.Int(2))})}
	send := func(from *transport.Endpoint, msg any, to ...string) {
		payload, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range to {
			_ = from.Send(id, payload)
		}
	}
	// The clients broadcast their requests (no keyring on this path),
	// so every backup holds first-hand copies and can vouch.
	send(c1, req1, "r1", "r2", "r3")
	send(c2, req2, "r1", "r2", "r3")

	fp := startFakePrimary(net, "r0", func(fp *fakePrimary, m transport.Inbound) {
		msg, err := Unmarshal(m.Payload)
		if err != nil {
			return
		}
		if _, ok := msg.(Request); !ok {
			return // silent in the view change
		}
		ab := []Request{req1, req2}
		ba := []Request{req2, req1}
		fp.send(t, "r1", Batch{View: 0, Seq: 1, Digest: BatchDigest(ab), Reqs: ab})
		fp.send(t, "r2", Batch{View: 0, Seq: 1, Digest: BatchDigest(ba), Reqs: ba})
		fp.send(t, "r3", Batch{View: 0, Seq: 1, Digest: BatchDigest(ba), Reqs: ba})
	})
	defer fp.halt()
	// Trigger the equivocation (requests reach r0 too).
	send(c1, req1, "r0")
	send(c2, req2, "r0")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reader := NewRemoteSpace(NewClient(net.Endpoint("reader"), ids, 1))
	// Both requests must eventually commit (under the new view) …
	for _, want := range []int64{1, 2} {
		if _, err := reader.Rd(ctx, tuple.T(tuple.Str("EQ"), tuple.Int(want))); err != nil {
			t.Fatalf("request %d never executed after batch equivocation: %v", want, err)
		}
	}
	// … and exactly once each.
	all, err := reader.RdAll(ctx, tuple.T(tuple.Str("EQ"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("%d EQ tuples, want 2 (lost or double execution): %v", len(all), all)
	}
}

// TestByzantinePrimaryEquivocatesOnTxContents extends the
// batch-content-equivocation adversary to transaction payloads: the
// requests the primary reorders are atomic multi-op SpaceTx units. The
// group must survive via view change with each transaction executing
// atomically, exactly once — neither fork's ordering may leak partial
// transaction effects.
func TestByzantinePrimaryEquivocatesOnTxContents(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)
	startBackups(t, net, ids, 200*time.Millisecond)

	txPayload := func(tag string, vals ...int64) []byte {
		ops := make([]wire.SpaceOp, len(vals))
		for i, v := range vals {
			ops[i] = wire.SpaceOp{Op: policy.OpOut,
				Entry: tuple.T(tuple.Str(tag), tuple.Int(v))}
		}
		return wire.EncodeSpaceTx(wire.SpaceTx{Ops: ops})
	}
	c1, c2 := net.Endpoint("t1"), net.Endpoint("t2")
	req1 := Request{Client: "t1", ReqID: 1, Op: txPayload("TX1", 1, 2)}
	req2 := Request{Client: "t2", ReqID: 1, Op: txPayload("TX2", 3, 4)}
	send := func(from *transport.Endpoint, msg any, to ...string) {
		payload, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range to {
			_ = from.Send(id, payload)
		}
	}
	send(c1, req1, "r1", "r2", "r3")
	send(c2, req2, "r1", "r2", "r3")

	fp := startFakePrimary(net, "r0", func(fp *fakePrimary, m transport.Inbound) {
		msg, err := Unmarshal(m.Payload)
		if err != nil {
			return
		}
		if _, ok := msg.(Request); !ok {
			return // silent in the view change
		}
		ab := []Request{req1, req2}
		ba := []Request{req2, req1}
		fp.send(t, "r1", Batch{View: 0, Seq: 1, Digest: BatchDigest(ab), Reqs: ab})
		fp.send(t, "r2", Batch{View: 0, Seq: 1, Digest: BatchDigest(ba), Reqs: ba})
		fp.send(t, "r3", Batch{View: 0, Seq: 1, Digest: BatchDigest(ba), Reqs: ba})
	})
	defer fp.halt()
	send(c1, req1, "r0")
	send(c2, req2, "r0")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reader := NewRemoteSpace(NewClient(net.Endpoint("reader"), ids, 1))
	// Both transactions must commit whole (under the new view) …
	for _, want := range []struct {
		tag string
		v   int64
	}{{"TX1", 1}, {"TX1", 2}, {"TX2", 3}, {"TX2", 4}} {
		if _, err := reader.Rd(ctx, tuple.T(tuple.Str(want.tag), tuple.Int(want.v))); err != nil {
			t.Fatalf("tx tuple <%s,%d> never appeared after equivocation: %v", want.tag, want.v, err)
		}
	}
	// … and each exactly once: 4 tuples total, no partial or double
	// transaction execution.
	for _, tag := range []string{"TX1", "TX2"} {
		all, err := reader.RdAll(ctx, tuple.T(tuple.Str(tag), tuple.Any()))
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 2 {
			t.Errorf("%s: %d tuples, want 2 (partial or double tx execution): %v", tag, len(all), all)
		}
	}
}

// TestViewChangeMidBatchPreservesDigest: a batch prepared in view 0 at
// only part of the group (so it cannot commit) must be re-proposed in
// view 1 under the SAME digest, and every request in it must execute
// exactly once.
func TestViewChangeMidBatchPreservesDigest(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)
	startBackups(t, net, ids, 200*time.Millisecond)

	client := net.Endpoint("c")
	req1 := Request{Client: "c", ReqID: 1, Op: wire.EncodeSpaceOp(wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("VC"), tuple.Int(1))})}
	req2 := Request{Client: "c", ReqID: 2, Op: wire.EncodeSpaceOp(wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("VC"), tuple.Int(2))})}
	for _, req := range []Request{req1, req2} {
		payload, err := Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids[1:] {
			_ = client.Send(id, payload)
		}
	}

	newViews := make(chan NewView, 4)
	fp := startFakePrimary(net, "r0", func(fp *fakePrimary, m transport.Inbound) {
		msg, err := Unmarshal(m.Payload)
		if err != nil {
			return
		}
		if nv, ok := msg.(NewView); ok {
			newViews <- nv
		}
	})
	defer fp.halt()

	// Propose the batch to r1 and r2 only: both reach a prepare quorum
	// (the pre-prepare carries the primary's implicit vote) but the
	// commit quorum of 3 cannot form — the batch is stuck prepared when
	// the view-change timers fire.
	reqs := []Request{req1, req2}
	batch := Batch{View: 0, Seq: 1, Digest: BatchDigest(reqs), Reqs: reqs}
	fp.send(t, "r1", batch)
	fp.send(t, "r2", batch)

	// The NEW-VIEW from the view-1 primary (r1) must re-propose the
	// prepared batch under its original digest.
	select {
	case nv := <-newViews:
		if nv.View != 1 {
			t.Fatalf("NEW-VIEW for view %d, want 1", nv.View)
		}
		found := false
		for _, b := range nv.Batches {
			if b.Seq == 1 {
				found = true
				if b.Digest != batch.Digest {
					t.Errorf("batch re-proposed under digest %x, want %x", b.Digest[:4], batch.Digest[:4])
				}
				if len(b.Reqs) != 2 {
					t.Errorf("re-proposed batch has %d requests, want 2", len(b.Reqs))
				}
			}
		}
		if !found {
			t.Error("NEW-VIEW does not re-propose the prepared batch")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("no NEW-VIEW observed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reader := NewRemoteSpace(NewClient(net.Endpoint("reader"), ids, 1))
	for _, want := range []int64{1, 2} {
		if _, err := reader.Rd(ctx, tuple.T(tuple.Str("VC"), tuple.Int(want))); err != nil {
			t.Fatalf("request %d lost across the view change: %v", want, err)
		}
	}
	all, err := reader.RdAll(ctx, tuple.T(tuple.Str("VC"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("%d VC tuples, want 2 (lost or double execution): %v", len(all), all)
	}
}

func TestByzantineClientCannotImpersonateViaProtocol(t *testing.T) {
	// A Byzantine CLIENT submits a request claiming another client's
	// identity; replicas verify the transport-authenticated sender and
	// drop it, so the victim's at-most-once state is untouched.
	pol := policy.New(policy.Rule{Name: "Rout", Op: policy.OpOut, When: policy.EntryFieldIsInvoker(0)})
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Forge a request with Client = "victim" sent from "mallory".
	mallory := cl.Net.Endpoint("mallory")
	op := wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut,
		Entry: tuple.T(tuple.Str("victim"), tuple.Int(666))})
	forged, err := Marshal(Request{Client: "victim", ReqID: 1, Op: op})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cl.IDs {
		_ = mallory.Send(id, forged)
	}
	time.Sleep(200 * time.Millisecond)

	// The victim's own first request must execute as ReqID 1 — proving
	// the forged one never reached its client record — and the forged
	// tuple must not exist.
	ts := NewRemoteSpace(cl.Client("victim"))
	if err := ts.Out(ctx, tuple.T(tuple.Str("victim"), tuple.Int(1))); err != nil {
		t.Fatalf("victim blocked: %v", err)
	}
	if _, ok, _ := ts.Rdp(ctx, tuple.T(tuple.Str("victim"), tuple.Int(666))); ok {
		t.Error("forged operation executed")
	}
}
