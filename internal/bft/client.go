package bft

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"

	"peats/internal/auth"
	"peats/internal/metrics"
	"peats/internal/transport"
	"peats/internal/vclock"
	"peats/internal/wire"
)

// Client invokes operations on the replicated service.
//
// Ordered operations are sent to the presumed primary first (when the
// client holds pairwise keys, so it can attach the authenticator vector
// backups need to vouch for primary-relayed requests) and broadcast to
// every replica only on retransmission — the happy path costs one
// message instead of n. Without keys the client broadcasts from the
// start, as the backups can then only vouch for first-hand copies.
//
// An ordered result is accepted once 2f+1 distinct replicas report
// byte-identical results. f+1 would suffice for correctness of the
// result itself, but the stronger threshold is what makes the
// read-only optimization linearizable (Castro-Liskov §4.1): a write
// accepted at 2f+1 has executed at ≥ f+1 correct replicas, and any
// 2f+1 read-only quorum contains ≥ f+1 correct repliers, so the two
// sets intersect in a correct replica whose read reflects the write.
//
// Read-only operations take the unordered fast path: the client
// broadcasts a READ-ONLY message, replicas execute it against current
// committed state, and the client accepts once 2f+1 distinct replicas
// report byte-identical read-only replies. If the quorum cannot form
// (replies conflict or time out), the client falls back to the
// ordered path.
//
// A Client issues one operation at a time (the model's well-formedness
// assumption); Invoke is not safe for concurrent use.
type Client struct {
	id       string
	tr       transport.Transport
	replicas []string
	f        int
	reqID    uint64
	view     uint64 // highest view observed in replies: primary guess
	// RetransmitInterval is how often an unanswered request is resent
	// (asynchronous networks may drop it). Defaults to 100ms.
	RetransmitInterval time.Duration
	// ReadOnlyFallback is how long a read-only invocation waits for a
	// 2f+1 matching-reply quorum before falling back to the ordered
	// path. Defaults to 50ms.
	ReadOnlyFallback time.Duration
	// Keyring optionally holds the client's pairwise keys with every
	// replica; it enables the authenticator vector and the primary-first
	// send pattern.
	Keyring *auth.Keyring
	// AcceptTentative lets ordered invocations return on 2f+1 matching
	// TENTATIVE replies — one protocol round before the commit quorum.
	// Safe because 2f+1 tentative replies prove the batch prepared at
	// 2f+1 replicas, so every view-change quorum intersects that set in
	// a correct replica carrying the batch forward under the same
	// digest. When the tentative vote never forms (replicas with
	// tentative execution disabled, or a view change in flight), the
	// committed replies decide as usual — no timeout needed.
	AcceptTentative bool
	// Group, in a partitioned deployment, is the identity of the replica
	// group this client handle talks to. It is stamped into every
	// ordered request (part of the MAC'd digest), so replicas of other
	// groups drop requests a faulty router misdelivers.
	Group string
	// AttestKeys holds the group replicas' attestation public keys,
	// enabling InvokeCert to assemble transferable vote certificates.
	AttestKeys map[string]ed25519.PublicKey
	// Clock supplies the retransmission ticker and read-only fallback
	// timer; nil means real time.
	Clock vclock.Clock

	retx    vclock.Ticker // reusable retransmission ticker
	roTimer vclock.Timer  // reusable read-only fallback timer

	indexes map[string]int // replica id → group index
	votes   voteBox        // reusable per-invocation vote tally
	tvotes  voteBox        // tentative-reply camp, tallied separately
	views   []uint64       // per-invocation reported views, by replica index
	seen    uint64         // bitmask of replicas that reported a view
}

// voteBox tallies byte-identical replies per distinct result, with
// voters as replica-index bitmasks. It is reused across invocations so
// the reply hot path allocates nothing per operation.
type voteBox struct {
	results []string
	voters  []uint64
}

func (v *voteBox) reset() {
	v.results = v.results[:0]
	v.voters = v.voters[:0]
}

// add records one replica's vote and returns the number of distinct
// replicas now backing that result.
func (v *voteBox) add(result []byte, replica int) int {
	bit := uint64(1) << uint(replica)
	for i, res := range v.results {
		if res == string(result) {
			v.voters[i] |= bit
			return bits.OnesCount64(v.voters[i])
		}
	}
	v.results = append(v.results, string(result))
	v.voters = append(v.voters, bit)
	return 1
}

// best returns the size of the largest camp.
func (v *voteBox) best() int {
	best := 0
	for _, m := range v.voters {
		if c := bits.OnesCount64(m); c > best {
			best = c
		}
	}
	return best
}

// noteView records one replica's claimed view for this invocation.
func (c *Client) noteView(idx int, view uint64) {
	if c.views == nil {
		c.views = make([]uint64, len(c.replicas))
	}
	c.views[idx] = view
	c.seen |= 1 << uint(idx)
}

// adoptView advances the primary guess to the highest view at least
// f+1 distinct replicas reported this invocation — a single (possibly
// Byzantine) reply must not be able to wedge the guess at a bogus
// view, which would cost every future invocation the retransmission
// round before reaching the real primary.
func (c *Client) adoptView() {
	var reported []uint64
	for i := range c.replicas {
		if c.seen&(1<<uint(i)) != 0 {
			reported = append(reported, c.views[i])
		}
	}
	if len(reported) < c.f+1 {
		return
	}
	sort.Slice(reported, func(i, j int) bool { return reported[i] > reported[j] })
	// reported[f] is backed by f+1 replicas, at least one correct.
	if v := reported[c.f]; v > c.view {
		c.view = v
	}
}

// NewClient returns a client for the given replica group. The transport
// identity is the client's authenticated process identity.
func NewClient(tr transport.Transport, replicas []string, f int) *Client {
	cp := make([]string, len(replicas))
	copy(cp, replicas)
	indexes := make(map[string]int, len(cp))
	for i, id := range cp {
		indexes[id] = i
	}
	return &Client{
		id: tr.Self(), tr: tr, replicas: cp, f: f,
		indexes:            indexes,
		RetransmitInterval: 100 * time.Millisecond,
		ReadOnlyFallback:   50 * time.Millisecond,
	}
}

func (c *Client) clock() vclock.Clock {
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c.Clock
}

// armRetx starts (or restarts) the reusable retransmission ticker.
func (c *Client) armRetx() {
	if c.retx == nil {
		c.retx = c.clock().NewTicker(c.RetransmitInterval, nil)
	} else {
		c.retx.Reset(c.RetransmitInterval)
	}
}

// ID returns the client's authenticated identity.
func (c *Client) ID() string { return c.id }

// primaryGuess returns the presumed primary of the highest view the
// client has observed.
func (c *Client) primaryGuess() string {
	return c.replicas[c.view%uint64(len(c.replicas))]
}

// authVector computes the per-replica authenticator vector for req, or
// nil when the client lacks a key for any replica.
func (c *Client) authVector(req Request) [][]byte {
	if c.Keyring == nil {
		return nil
	}
	d := req.Digest()
	vec := make([][]byte, len(c.replicas))
	for i, id := range c.replicas {
		mac, err := c.Keyring.MAC(id, d[:])
		if err != nil {
			return nil
		}
		vec[i] = mac
	}
	return vec
}

// Invoke submits op for ordered execution and returns the voted result.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.reqID++
	req := Request{Client: c.id, ReqID: c.reqID, Op: op, Group: c.Group}
	req.Auth = c.authVector(req)
	return c.invokeOrdered(ctx, req)
}

// InvokeCert submits op for ordered execution and returns, along with
// the voted result, a vote certificate: 2f+1 distinct replicas'
// attestation signatures over the result. The certificate is
// transferable evidence — any party holding the deployment directory
// can verify that this group's agreement produced exactly these bytes,
// which is how a cross-partition coordinator proves one group's
// prepare vote to another group. Acceptance is gated on valid
// signatures, not just matching results, so the returned certificate
// always verifies.
func (c *Client) InvokeCert(ctx context.Context, op []byte) ([]byte, wire.VoteCert, error) {
	c.reqID++
	req := Request{Client: c.id, ReqID: c.reqID, Op: op, Group: c.Group}
	req.Auth = c.authVector(req)
	payload, err := Marshal(req)
	if err != nil {
		return nil, wire.VoteCert{}, fmt.Errorf("bft client: %w", err)
	}
	broadcast := func() {
		for _, id := range c.replicas {
			_ = c.tr.SendClass(id, payload, transport.ClassRequest)
		}
	}
	if req.Auth != nil {
		_ = c.tr.SendClass(c.primaryGuess(), payload, transport.ClassRequest)
	} else {
		broadcast()
	}

	// result bytes → replica id → verified attestation signature.
	atts := make(map[string]map[string][]byte)
	c.seen = 0
	c.armRetx()
	defer c.retx.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, wire.VoteCert{}, fmt.Errorf("bft client: %w", ctx.Err())
		case <-c.retx.C():
			broadcast()
		case m, ok := <-c.tr.Inbox():
			if !ok {
				return nil, wire.VoteCert{}, fmt.Errorf("bft client: transport closed")
			}
			rep, ok := c.replyFor(m, req.ReqID)
			if !ok || rep.ReadOnly || rep.Tentative {
				continue // only committed replies carry attestations
			}
			idx := c.indexes[rep.Replica]
			c.noteView(idx, rep.View)
			pub, ok := c.AttestKeys[rep.Replica]
			if !ok || len(rep.Attest) != ed25519.SignatureSize ||
				!ed25519.Verify(pub, wire.AttestPayload(c.Group, rep.Result), rep.Attest) {
				continue // no valid attestation: useless for a certificate
			}
			camp := atts[string(rep.Result)]
			if camp == nil {
				camp = make(map[string][]byte)
				atts[string(rep.Result)] = camp
			}
			camp[rep.Replica] = rep.Attest
			if len(camp) >= 2*c.f+1 {
				c.adoptView()
				cert := wire.VoteCert{Group: c.Group, Outcome: rep.Result}
				ids := make([]string, 0, len(camp))
				for id := range camp {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, id := range ids {
					cert.Atts = append(cert.Atts, wire.Attestation{Replica: id, Sig: camp[id]})
				}
				return rep.Result, cert, nil
			}
		}
	}
}

func (c *Client) invokeOrdered(ctx context.Context, req Request) ([]byte, error) {
	payload, err := Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("bft client: %w", err)
	}

	broadcast := func() {
		for _, id := range c.replicas {
			// Best effort: the asynchronous model tolerates loss and the
			// retransmission loop recovers.
			_ = c.tr.SendClass(id, payload, transport.ClassRequest)
		}
	}
	if req.Auth != nil {
		// Happy path: the primary relays the request inside its batch,
		// and the authenticator vector lets backups vouch for it.
		_ = c.tr.SendClass(c.primaryGuess(), payload, transport.ClassRequest)
	} else {
		broadcast()
	}

	c.votes.reset()
	c.tvotes.reset()
	c.seen = 0
	c.armRetx()
	defer c.retx.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bft client: %w", ctx.Err())
		case <-c.retx.C():
			broadcast()
		case m, ok := <-c.tr.Inbox():
			if !ok {
				return nil, fmt.Errorf("bft client: transport closed")
			}
			rep, ok := c.replyFor(m, req.ReqID)
			if !ok || rep.ReadOnly {
				continue // read-only replies never count toward an ordered vote
			}
			idx := c.indexes[rep.Replica]
			c.noteView(idx, rep.View)
			if rep.Tentative {
				// Tentative and committed replies vote in separate camps:
				// a replica may legitimately send both for one request.
				if c.AcceptTentative && c.tvotes.add(rep.Result, idx) >= 2*c.f+1 {
					c.adoptView()
					return rep.Result, nil
				}
				continue
			}
			if c.votes.add(rep.Result, idx) >= 2*c.f+1 {
				c.adoptView()
				return rep.Result, nil
			}
		}
	}
}

// InvokeBatch pipelines several independent ordered operations: all are
// submitted at once under consecutive request IDs, so the primary can
// pack them into a single agreement batch and the whole set costs one
// protocol round instead of len(ops). Results are returned in op order.
// It fails or succeeds as a whole — on context cancellation no per-op
// results are reported, mirroring Invoke.
//
// The operations must be independent: they may execute in any relative
// order within the batch the primary forms. As with Invoke, the client
// issues one InvokeBatch at a time.
func (c *Client) InvokeBatch(ctx context.Context, ops [][]byte) ([][]byte, error) {
	switch len(ops) {
	case 0:
		return nil, nil
	case 1:
		res, err := c.Invoke(ctx, ops[0])
		if err != nil {
			return nil, err
		}
		return [][]byte{res}, nil
	}

	firstID := c.reqID + 1
	c.reqID += uint64(len(ops))
	payloads := make([][]byte, len(ops))
	authed := true
	for i, op := range ops {
		req := Request{Client: c.id, ReqID: firstID + uint64(i), Op: op, Group: c.Group}
		req.Auth = c.authVector(req)
		authed = authed && req.Auth != nil
		p, err := Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("bft client: %w", err)
		}
		payloads[i] = p
	}

	results := make([][]byte, len(ops))
	done := make([]bool, len(ops))
	remaining := len(ops)
	// Per-request vote boxes: replies for different request IDs must
	// never pool votes.
	votes := make([]voteBox, len(ops))
	tvotes := make([]voteBox, len(ops))

	send := func(retransmit bool) {
		for i, p := range payloads {
			if done[i] {
				continue
			}
			if authed && !retransmit {
				_ = c.tr.SendClass(c.primaryGuess(), p, transport.ClassRequest)
			} else {
				for _, id := range c.replicas {
					_ = c.tr.SendClass(id, p, transport.ClassRequest)
				}
			}
		}
	}
	send(false)

	c.seen = 0
	c.armRetx()
	defer c.retx.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bft client: %w", ctx.Err())
		case <-c.retx.C():
			send(true)
		case m, ok := <-c.tr.Inbox():
			if !ok {
				return nil, fmt.Errorf("bft client: transport closed")
			}
			rep, ok := c.batchReplyFor(m, firstID, uint64(len(ops)))
			if !ok || rep.ReadOnly {
				continue
			}
			k := int(rep.ReqID - firstID)
			if done[k] {
				continue
			}
			idx := c.indexes[rep.Replica]
			c.noteView(idx, rep.View)
			box := &votes[k]
			if rep.Tentative {
				if !c.AcceptTentative {
					continue
				}
				box = &tvotes[k]
			}
			if box.add(rep.Result, idx) >= 2*c.f+1 {
				results[k] = rep.Result
				done[k] = true
				if remaining--; remaining == 0 {
					c.adoptView()
					return results, nil
				}
			}
		}
	}
}

// batchReplyFor validates an inbound message as a reply to one of the
// current pipelined requests.
func (c *Client) batchReplyFor(m transport.Inbound, firstID, n uint64) (Reply, bool) {
	msg, err := Unmarshal(m.Payload)
	if err != nil {
		return Reply{}, false
	}
	rep, ok := msg.(Reply)
	if !ok || rep.Replica != m.From || rep.Client != c.id {
		return Reply{}, false
	}
	if rep.ReqID < firstID || rep.ReqID >= firstID+n {
		return Reply{}, false // stale reply from an earlier invocation
	}
	if !c.isReplica(m.From) {
		return Reply{}, false
	}
	return rep, true
}

// InvokeReadOnly submits a non-mutating op on the read-only fast path,
// falling back to ordered execution if no quorum forms.
func (c *Client) InvokeReadOnly(ctx context.Context, op []byte) ([]byte, error) {
	c.reqID++
	ro := ReadOnly{Client: c.id, ReqID: c.reqID, Op: op}
	payload, err := Marshal(ro)
	if err != nil {
		return nil, fmt.Errorf("bft client: %w", err)
	}
	for _, id := range c.replicas {
		_ = c.tr.SendClass(id, payload, transport.ClassRequest)
	}

	fallback := c.ReadOnlyFallback
	if fallback <= 0 {
		fallback = 50 * time.Millisecond
	}
	if c.roTimer == nil {
		c.roTimer = c.clock().NewTimer(nil)
	} else if !c.roTimer.Stop() {
		select {
		case <-c.roTimer.C():
		default:
		}
	}
	c.roTimer.Reset(fallback)
	deadline := c.roTimer
	defer deadline.Stop()

	n := len(c.replicas)
	need := 2*c.f + 1
	c.votes.reset()
	c.seen = 0
	var replied uint64
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bft client: %w", ctx.Err())
		case <-deadline.C():
			return c.orderedFallback(ctx, op)
		case m, ok := <-c.tr.Inbox():
			if !ok {
				return nil, fmt.Errorf("bft client: transport closed")
			}
			rep, ok := c.replyFor(m, ro.ReqID)
			if !ok || !rep.ReadOnly {
				continue
			}
			idx := c.indexes[rep.Replica]
			replied |= 1 << uint(idx)
			c.noteView(idx, rep.View)
			if c.votes.add(rep.Result, idx) >= need {
				c.adoptView()
				return rep.Result, nil
			}
			// Fall back as soon as a quorum is impossible: even if every
			// silent replica joined the largest camp it would not reach
			// 2f+1 matching replies.
			if c.votes.best()+(n-bits.OnesCount64(replied)) < need {
				return c.orderedFallback(ctx, op)
			}
		}
	}
}

// orderedFallback re-submits the operation on the ordered path under
// the same request ID (replicas never recorded the read-only attempt,
// so at-most-once bookkeeping is untouched).
func (c *Client) orderedFallback(ctx context.Context, op []byte) ([]byte, error) {
	req := Request{Client: c.id, ReqID: c.reqID, Op: op, Group: c.Group}
	req.Auth = c.authVector(req)
	return c.invokeOrdered(ctx, req)
}

// replyFor validates an inbound message as a reply to the current
// request from a genuine replica.
func (c *Client) replyFor(m transport.Inbound, reqID uint64) (Reply, bool) {
	msg, err := Unmarshal(m.Payload)
	if err != nil {
		return Reply{}, false
	}
	rep, ok := msg.(Reply)
	if !ok || rep.Replica != m.From || rep.ReqID != reqID || rep.Client != c.id {
		return Reply{}, false // stale or foreign message
	}
	if !c.isReplica(m.From) {
		return Reply{}, false
	}
	return rep, true
}

func (c *Client) isReplica(id string) bool {
	for _, rid := range c.replicas {
		if rid == id {
			return true
		}
	}
	return false
}

// clusterMaster is the deterministic master secret in-process clusters
// derive pairwise client-replica keys from. The in-process network
// already enforces sender identity; the keys only feed the request
// authenticator vectors, mirroring a real deployment's trusted setup.
var clusterMaster = []byte("peats-inproc-cluster")

// Cluster is a convenience harness bundling n replicas over an
// in-process network, used by tests, benchmarks and examples.
type Cluster struct {
	Net      *transport.Network
	Replicas []*Replica
	IDs      []string
	F        int

	keyrings map[string]*auth.Keyring // replica id → its keyring
	services []Service                // closed (where closeable) on Stop

	group        string // partitioned deployments: this cluster's group identity
	attestMaster []byte

	mu      sync.Mutex
	nextCli int
}

// ClusterOption tweaks cluster construction.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	checkpointInterval uint64
	compactEvery       int
	keepCpHistory      bool
	vcTimeout          time.Duration
	seed               int64
	batchSize          int
	batchDelay         time.Duration
	disableTentative   bool
	group              string
	attestMaster       []byte
	metrics            *metrics.Registry
	eventSink          EventSink
}

// WithCheckpointInterval sets the replicas' checkpoint interval.
func WithCheckpointInterval(k uint64) ClusterOption {
	return func(c *clusterConfig) { c.checkpointInterval = k }
}

// WithCompactEvery sets how many checkpoints pass between full state
// snapshots (ReplicaConfig.CompactEvery): the checkpoints in between
// publish chained deltas.
func WithCompactEvery(k int) ClusterOption {
	return func(c *clusterConfig) { c.compactEvery = k }
}

// WithCheckpointHistory makes every replica retain its published
// checkpoint digests for inspection (tests).
func WithCheckpointHistory() ClusterOption {
	return func(c *clusterConfig) { c.keepCpHistory = true }
}

// WithViewChangeTimeout sets the replicas' view-change timeout.
func WithViewChangeTimeout(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.vcTimeout = d }
}

// WithSeed sets the network fault-injection seed.
func WithSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.seed = seed }
}

// WithBatchSize sets the replicas' maximum agreement batch size.
func WithBatchSize(n int) ClusterOption {
	return func(c *clusterConfig) { c.batchSize = n }
}

// WithBatchDelay sets how long the primary holds a non-full batch open
// while earlier batches are in flight.
func WithBatchDelay(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.batchDelay = d }
}

// WithTentativeExecution toggles replica-side tentative execution
// (default on for services that support it). Pass false to make every
// replica execute and reply only at the commit quorum — the baseline
// the latency benchmarks compare against.
func WithTentativeExecution(on bool) ClusterOption {
	return func(c *clusterConfig) { c.disableTentative = !on }
}

// WithMetrics instruments every replica of the cluster into one
// shared registry; series are distinguished by the replica label. The
// replicated parity and race tests use it to scrape while the cluster
// runs.
func WithMetrics(reg *metrics.Registry) ClusterOption {
	return func(c *clusterConfig) { c.metrics = reg }
}

// WithEventSink subscribes one sink to every replica's protocol
// events. Events arrive on each replica's event loop concurrently, so
// the sink must synchronise internally.
func WithEventSink(sink EventSink) ClusterOption {
	return func(c *clusterConfig) { c.eventSink = sink }
}

// WithGroupIdentity marks the cluster as one group of a partitioned
// deployment: every replica is configured with the group identity
// (requests MAC-bind to it and misrouted ones are dropped) and an
// attestation signing key derived from the deployment's attestation
// master secret, and clients are provisioned to verify attestations
// and assemble vote certificates (InvokeCert).
func WithGroupIdentity(group string, attestMaster []byte) ClusterOption {
	return func(c *clusterConfig) { c.group, c.attestMaster = group, attestMaster }
}

// NewCluster starts n = 3f+1 replicas of the given services (one per
// replica, so Byzantine tests can hand a corrupt service to some of
// them) over a fresh in-process network. services[i] may be nil to skip
// starting replica i (a crashed replica).
func NewCluster(f int, services []Service, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{checkpointInterval: 64, vcTimeout: 500 * time.Millisecond, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	n := 3*f + 1
	if len(services) != n {
		return nil, fmt.Errorf("bft: need %d services for f=%d, got %d", n, f, len(services))
	}
	net := transport.NewNetwork(cfg.seed)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%d", i)
	}
	cl := &Cluster{
		Net: net, IDs: ids, F: f,
		keyrings: make(map[string]*auth.Keyring), services: services,
		group: cfg.group, attestMaster: cfg.attestMaster,
	}
	for _, id := range ids {
		cl.keyrings[id] = auth.NewKeyringFromMaster(clusterMaster, id, ids)
	}
	for i, svc := range services {
		if svc == nil {
			continue
		}
		var attestKey ed25519.PrivateKey
		if cfg.group != "" {
			attestKey = AttestKeyFor(cfg.attestMaster, cfg.group, ids[i])
		}
		rep, err := NewReplica(ReplicaConfig{
			ID:                    ids[i],
			Replicas:              ids,
			F:                     f,
			Transport:             net.Endpoint(ids[i]),
			Service:               svc,
			Group:                 cfg.group,
			AttestKey:             attestKey,
			CheckpointInterval:    cfg.checkpointInterval,
			CompactEvery:          cfg.compactEvery,
			KeepCheckpointHistory: cfg.keepCpHistory,
			ViewChangeTimeout:     cfg.vcTimeout,
			BatchSize:             cfg.batchSize,
			BatchDelay:            cfg.batchDelay,
			DisableTentative:      cfg.disableTentative,
			Keyring:               cl.keyrings[ids[i]],
			Metrics:               cfg.metrics,
			EventSink:             cfg.eventSink,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		rep.Start()
		cl.Replicas = append(cl.Replicas, rep)
	}
	return cl, nil
}

// Client returns a new client with a unique identity on the cluster's
// network, provisioned with pairwise keys at every replica (the
// in-process stand-in for a real deployment's key setup).
func (c *Cluster) Client(id string) *Client {
	if id == "" {
		c.mu.Lock()
		c.nextCli++
		id = fmt.Sprintf("client%d", c.nextCli)
		c.mu.Unlock()
	}
	for _, rid := range c.IDs {
		if id == rid {
			// The in-proc network keys endpoints by identity: a client
			// reusing a replica id would share the replica's inbox and
			// silently steal its protocol messages.
			panic(fmt.Sprintf("bft: client id %q collides with a replica id", id))
		}
	}
	for rid, kr := range c.keyrings {
		kr.SetKey(id, auth.DeriveKey(clusterMaster, rid, id))
	}
	cli := NewClient(c.Net.Endpoint(id), c.IDs, c.F)
	cli.Keyring = auth.NewKeyringFromMaster(clusterMaster, id, c.IDs)
	if c.group != "" {
		cli.Group = c.group
		cli.AttestKeys = make(map[string]ed25519.PublicKey, len(c.IDs))
		for _, rid := range c.IDs {
			cli.AttestKeys[rid] = AttestKeyFor(c.attestMaster, c.group, rid).Public().(ed25519.PublicKey)
		}
	}
	return cli
}

// Stop shuts down all replicas and the network, then closes every
// closeable service (a durable service flushes and closes its
// write-ahead log here).
func (c *Cluster) Stop() {
	for _, r := range c.Replicas {
		r.Stop()
	}
	c.Net.Close()
	for _, svc := range c.services {
		if closer, ok := svc.(io.Closer); ok {
			closer.Close()
		}
	}
}
