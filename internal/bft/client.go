package bft

import (
	"context"
	"fmt"
	"sync"
	"time"

	"peats/internal/transport"
)

// Client invokes operations on the replicated service. It broadcasts
// each request to every replica and accepts a result once f+1 distinct
// replicas report byte-identical results — with at most f faulty
// replicas, at least one of the f+1 is correct, so the result is the
// one produced by the correct state machine.
//
// A Client issues one operation at a time (the model's well-formedness
// assumption); Invoke is not safe for concurrent use.
type Client struct {
	id       string
	tr       transport.Transport
	replicas []string
	f        int
	reqID    uint64
	// RetransmitInterval is how often an unanswered request is resent
	// (asynchronous networks may drop it). Defaults to 100ms.
	RetransmitInterval time.Duration
}

// NewClient returns a client for the given replica group. The transport
// identity is the client's authenticated process identity.
func NewClient(tr transport.Transport, replicas []string, f int) *Client {
	cp := make([]string, len(replicas))
	copy(cp, replicas)
	return &Client{
		id: tr.Self(), tr: tr, replicas: cp, f: f,
		RetransmitInterval: 100 * time.Millisecond,
	}
}

// ID returns the client's authenticated identity.
func (c *Client) ID() string { return c.id }

// Invoke submits op for ordered execution and returns the voted result.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	c.reqID++
	req := Request{Client: c.id, ReqID: c.reqID, Op: op}
	payload, err := Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("bft client: %w", err)
	}

	send := func() {
		for _, id := range c.replicas {
			// Best effort: the asynchronous model tolerates loss and the
			// retransmission loop recovers.
			_ = c.tr.Send(id, payload)
		}
	}
	send()

	votes := make(map[string]map[string]struct{}) // result → replicas
	ticker := time.NewTicker(c.RetransmitInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bft client: %w", ctx.Err())
		case <-ticker.C:
			send()
		case m, ok := <-c.tr.Inbox():
			if !ok {
				return nil, fmt.Errorf("bft client: transport closed")
			}
			msg, err := Unmarshal(m.Payload)
			if err != nil {
				continue
			}
			rep, ok := msg.(Reply)
			if !ok || rep.Replica != m.From || rep.ReqID != c.reqID || rep.Client != c.id {
				continue // stale or foreign message
			}
			if !c.isReplica(m.From) {
				continue
			}
			key := string(rep.Result)
			if votes[key] == nil {
				votes[key] = make(map[string]struct{})
			}
			votes[key][rep.Replica] = struct{}{}
			if len(votes[key]) >= c.f+1 {
				return rep.Result, nil
			}
		}
	}
}

func (c *Client) isReplica(id string) bool {
	for _, rid := range c.replicas {
		if rid == id {
			return true
		}
	}
	return false
}

// Cluster is a convenience harness bundling n replicas over an
// in-process network, used by tests, benchmarks and examples.
type Cluster struct {
	Net      *transport.Network
	Replicas []*Replica
	IDs      []string
	F        int

	mu      sync.Mutex
	nextCli int
}

// ClusterOption tweaks cluster construction.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	checkpointInterval uint64
	vcTimeout          time.Duration
	seed               int64
}

// WithCheckpointInterval sets the replicas' checkpoint interval.
func WithCheckpointInterval(k uint64) ClusterOption {
	return func(c *clusterConfig) { c.checkpointInterval = k }
}

// WithViewChangeTimeout sets the replicas' view-change timeout.
func WithViewChangeTimeout(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.vcTimeout = d }
}

// WithSeed sets the network fault-injection seed.
func WithSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.seed = seed }
}

// NewCluster starts n = 3f+1 replicas of the given services (one per
// replica, so Byzantine tests can hand a corrupt service to some of
// them) over a fresh in-process network. services[i] may be nil to skip
// starting replica i (a crashed replica).
func NewCluster(f int, services []Service, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{checkpointInterval: 64, vcTimeout: 500 * time.Millisecond, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	n := 3*f + 1
	if len(services) != n {
		return nil, fmt.Errorf("bft: need %d services for f=%d, got %d", n, f, len(services))
	}
	net := transport.NewNetwork(cfg.seed)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%d", i)
	}
	cl := &Cluster{Net: net, IDs: ids, F: f}
	for i, svc := range services {
		if svc == nil {
			continue
		}
		rep, err := NewReplica(ReplicaConfig{
			ID:                 ids[i],
			Replicas:           ids,
			F:                  f,
			Transport:          net.Endpoint(ids[i]),
			Service:            svc,
			CheckpointInterval: cfg.checkpointInterval,
			ViewChangeTimeout:  cfg.vcTimeout,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		rep.Start()
		cl.Replicas = append(cl.Replicas, rep)
	}
	return cl, nil
}

// Client returns a new client with a unique identity on the cluster's
// network.
func (c *Cluster) Client(id string) *Client {
	if id == "" {
		c.mu.Lock()
		c.nextCli++
		id = fmt.Sprintf("client%d", c.nextCli)
		c.mu.Unlock()
	}
	return NewClient(c.Net.Endpoint(id), c.IDs, c.F)
}

// Stop shuts down all replicas and the network.
func (c *Cluster) Stop() {
	for _, r := range c.Replicas {
		r.Stop()
	}
	c.Net.Close()
}
