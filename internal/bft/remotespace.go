package bft

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/vclock"
	"peats/internal/wire"
)

// RemoteSpace is the client-side view of the replicated PEATS: it
// implements peats.TupleSpace by shipping operations through the BFT
// client, so the consensus algorithms and universal constructions run
// unchanged over the replicated realisation (Fig. 2).
//
// Submit ships a multi-operation unit as one wire.SpaceTx under a
// single request (one digest, one agreement round): every replica
// executes the whole list in one space critical section and replies
// with a per-op result vector, so a k-op transaction costs one round
// trip instead of k. A single-op submission travels in the legacy
// single-operation wire form — the two are executed by the same staged
// path at the replicas.
//
// Blocking rd/in are realised by polling their non-blocking variants,
// as in DEPSPACE, with jittered exponential backoff between misses
// (floor PollInterval, cap PollMaxInterval).
//
// Non-mutating requests (rd, rdp, rdAll, and submissions composed
// entirely of read-only ops) take the read-only fast path by default:
// replicas answer from current committed state without ordering and the
// client accepts a 2f+1 byte-identical vote, falling back to ordered
// execution when the vote cannot form. Set OrderedReads to force every
// read through total ordering.
type RemoteSpace struct {
	c *Client
	// PollInterval is the initial (floor) delay of the rd/in polling
	// loops (default 5ms). Each consecutive miss doubles the delay, with
	// jitter, up to PollMaxInterval.
	PollInterval time.Duration
	// PollMaxInterval caps the rd/in polling backoff (default 100ms, and
	// never below PollInterval).
	PollMaxInterval time.Duration
	// OrderedReads disables the read-only fast path.
	OrderedReads bool
	// TentativeWrites accepts 2f+1 matching tentative replies for
	// mutating submissions, cutting the commit round off the latency
	// path (default on; see Client.AcceptTentative for why this is
	// safe). TentativeReads does the same for ordered reads — reads
	// forced through ordering by OrderedReads or by read-only vote
	// failure; the read-only fast path itself never replies
	// tentatively.
	TentativeWrites bool
	TentativeReads  bool

	pending []*PendingSubmit // submissions buffered by SubmitAsync
}

var _ peats.TupleSpace = (*RemoteSpace)(nil)

// NewRemoteSpace wraps a BFT client as a tuple space handle. The
// process identity seen by the reference monitor is the client's
// transport identity.
func NewRemoteSpace(c *Client) *RemoteSpace {
	return &RemoteSpace{
		c:               c,
		PollInterval:    5 * time.Millisecond,
		TentativeWrites: true,
		TentativeReads:  true,
	}
}

// ID returns the authenticated process identity of the underlying
// client.
func (s *RemoteSpace) ID() policy.ProcessID { return policy.ProcessID(s.c.ID()) }

func (s *RemoteSpace) invoke(ctx context.Context, op wire.SpaceOp) (wire.SpaceResult, error) {
	return s.invokeVia(ctx, op, s.c.Invoke)
}

// invokeRO ships a non-mutating operation over the read-only fast path
// (unless disabled); the client falls back to ordering on vote failure.
func (s *RemoteSpace) invokeRO(ctx context.Context, op wire.SpaceOp) (wire.SpaceResult, error) {
	if s.OrderedReads {
		return s.invoke(ctx, op)
	}
	return s.invokeVia(ctx, op, s.c.InvokeReadOnly)
}

func (s *RemoteSpace) invokeVia(
	ctx context.Context,
	op wire.SpaceOp,
	call func(context.Context, []byte) ([]byte, error),
) (wire.SpaceResult, error) {
	raw, err := call(ctx, wire.EncodeSpaceOp(op))
	if err != nil {
		return wire.SpaceResult{}, err
	}
	res, err := wire.DecodeSpaceResult(raw)
	if err != nil {
		return wire.SpaceResult{}, fmt.Errorf("replicated space: %w", err)
	}
	if err := resultToError(res); err != nil {
		return wire.SpaceResult{}, err
	}
	return res, nil
}

// Submit implements peats.TupleSpace over the replicated realisation.
// The ops travel as one request and execute as one atomic unit at every
// replica, with the same abort semantics as the local Handle: denial
// (ErrDenied with the monitor's detail), malformed arguments, or an
// InpOp miss (ErrAborted) leave the space untouched, and the returned
// results cover the attempted prefix. A submission of only read-only
// ops is eligible for the read-only fast path.
func (s *RemoteSpace) Submit(ctx context.Context, ops ...peats.Op) ([]peats.Result, error) {
	wops, readOnly, err := validateSubmission(ops)
	if err != nil {
		return nil, err
	}
	// The knob is re-applied on every invocation: the shared client may
	// serve several RemoteSpace handles with different settings.
	if readOnly {
		s.c.AcceptTentative = s.TentativeReads
	} else {
		s.c.AcceptTentative = s.TentativeWrites
	}
	if len(ops) == 1 {
		// A one-op unit travels in the legacy wire form (and is executed
		// by the same staged path at the replicas).
		var (
			res wire.SpaceResult
			err error
		)
		if readOnly {
			res, err = s.invokeRO(ctx, wops[0])
		} else {
			res, err = s.invoke(ctx, wops[0])
		}
		if err != nil {
			return nil, err
		}
		return []peats.Result{toResult(ops[0], res)}, nil
	}

	call := s.c.Invoke
	if readOnly && !s.OrderedReads {
		call = s.c.InvokeReadOnly
	}
	raw, err := call(ctx, wire.EncodeSpaceTx(wire.SpaceTx{Ops: wops}))
	if err != nil {
		return nil, err
	}
	return decodeSubmission(ops, raw)
}

// validateSubmission checks a Submit op list and lifts it to the wire
// form, reporting whether the whole unit is read-only.
func validateSubmission(ops []peats.Op) ([]wire.SpaceOp, bool, error) {
	if len(ops) == 0 {
		return nil, false, errors.New("peats: empty submission")
	}
	if len(ops) > wire.MaxTxOps {
		return nil, false, fmt.Errorf("peats: submission of %d ops exceeds the %d-op wire bound",
			len(ops), wire.MaxTxOps)
	}
	wops := make([]wire.SpaceOp, len(ops))
	readOnly := true
	for i, op := range ops {
		switch op.Code {
		case policy.OpOut, policy.OpRdp, policy.OpInp, policy.OpCas, policy.OpRdAll:
		default:
			return nil, false, fmt.Errorf("peats: op %v cannot be submitted", op.Code)
		}
		readOnly = readOnly && op.ReadOnly()
		wops[i] = wire.SpaceOp{Op: op.Code, Template: op.Template, Entry: op.Entry}
	}
	return wops, readOnly, nil
}

// decodeSubmission lifts a replica result vector into client results,
// with the same abort semantics as the local Handle.
func decodeSubmission(ops []peats.Op, raw []byte) ([]peats.Result, error) {
	vec, err := wire.DecodeSpaceResults(raw)
	if err != nil {
		return nil, fmt.Errorf("replicated space: %w", err)
	}
	if len(vec) != len(ops) {
		return nil, fmt.Errorf("replicated space: %d results for %d ops", len(vec), len(ops))
	}
	results := make([]peats.Result, 0, len(ops))
	for i, sr := range vec {
		switch sr.Status {
		case wire.StatusOK:
		case wire.StatusDenied:
			return results, &peats.DeniedError{Detail: sr.Detail}
		case wire.StatusSkipped:
			// Unreachable for vectors produced by correct replicas: the
			// aborting op before it already ended the loop.
			return results, fmt.Errorf("%w: op %d skipped", peats.ErrAborted, i)
		default:
			return results, errors.New("peats service: " + sr.Detail)
		}
		results = append(results, toResult(ops[i], sr))
		if ops[i].Code == policy.OpInp && !sr.Found {
			return results, fmt.Errorf("%w: op %d (inp %v) found no match",
				peats.ErrAborted, i, ops[i].Template)
		}
	}
	return results, nil
}

// PendingSubmit is a submission buffered by SubmitAsync; its results
// become available after the next Flush.
type PendingSubmit struct {
	ops     []peats.Op
	wops    []wire.SpaceOp
	results []peats.Result
	err     error
	flushed bool
}

// Results returns the submission's outcome. Calling it before the
// flush reports an error.
func (p *PendingSubmit) Results() ([]peats.Result, error) {
	if !p.flushed && p.err == nil {
		return nil, errors.New("peats: submission not flushed")
	}
	return p.results, p.err
}

// SubmitAsync buffers a submission for the next Flush instead of
// invoking it immediately. Buffered submissions are pipelined: Flush
// ships them under consecutive request IDs in one send, so the primary
// packs them into a single agreement batch and k independent Submits
// cost one protocol round instead of k.
//
// The buffered submissions must be independent of each other — they
// may execute in any relative order within the agreement batch.
// Validation errors surface on the returned handle at Flush time.
func (s *RemoteSpace) SubmitAsync(ops ...peats.Op) *PendingSubmit {
	p := &PendingSubmit{ops: ops}
	p.wops, _, p.err = validateSubmission(ops)
	s.pending = append(s.pending, p)
	return p
}

// Flush ships every buffered submission in one pipelined round and
// resolves their handles. It returns the first transport-level error;
// per-submission outcomes (denials, aborts) are reported only through
// the handles.
func (s *RemoteSpace) Flush(ctx context.Context) error {
	pend := s.pending
	s.pending = nil
	live := pend[:0]
	for _, p := range pend {
		if p.err == nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	// Pipelined submissions always travel ordered: the read-only fast
	// path answers from per-replica current state, which is pointless to
	// batch (and mixing paths would break the single-batch packing).
	s.c.AcceptTentative = s.TentativeWrites
	payloads := make([][]byte, len(live))
	for i, p := range live {
		if len(p.wops) == 1 {
			payloads[i] = wire.EncodeSpaceOp(p.wops[0])
		} else {
			payloads[i] = wire.EncodeSpaceTx(wire.SpaceTx{Ops: p.wops})
		}
	}
	raws, err := s.c.InvokeBatch(ctx, payloads)
	if err != nil {
		for _, p := range live {
			p.err = err
		}
		return err
	}
	for i, p := range live {
		p.flushed = true
		if len(p.ops) == 1 {
			res, rerr := wire.DecodeSpaceResult(raws[i])
			if rerr != nil {
				p.err = fmt.Errorf("replicated space: %w", rerr)
				continue
			}
			if rerr := resultToError(res); rerr != nil {
				p.err = rerr
				continue
			}
			p.results = []peats.Result{toResult(p.ops[0], res)}
			continue
		}
		p.results, p.err = decodeSubmission(p.ops, raws[i])
	}
	return nil
}

// toResult lifts a wire result into the client-facing form, deriving
// formal-field bindings from the op's template.
func toResult(op peats.Op, sr wire.SpaceResult) peats.Result {
	return peats.NewResult(op, sr.Found, sr.Inserted, sr.Tuple, sr.Tuples)
}

// Out implements peats.TupleSpace.
func (s *RemoteSpace) Out(ctx context.Context, entry tuple.Tuple) error {
	_, err := s.Submit(ctx, peats.OutOp(entry))
	return err
}

// Rdp implements peats.TupleSpace.
func (s *RemoteSpace) Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.Submit(ctx, peats.RdpOp(tmpl))
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// Inp implements peats.TupleSpace.
func (s *RemoteSpace) Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.Submit(ctx, peats.InpOp(tmpl))
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// RdAll implements peats.TupleSpace.
func (s *RemoteSpace) RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error) {
	res, err := s.Submit(ctx, peats.RdAllOp(tmpl))
	if err != nil {
		return nil, err
	}
	return res[0].Tuples, nil
}

// Cas implements peats.TupleSpace.
func (s *RemoteSpace) Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error) {
	res, err := s.Submit(ctx, peats.CasOp(tmpl, entry))
	if err != nil {
		return false, tuple.Tuple{}, err
	}
	return res[0].Inserted, res[0].Tuple, nil
}

// Rd implements peats.TupleSpace by polling Rdp.
func (s *RemoteSpace) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Rdp)
}

// In implements peats.TupleSpace by polling Inp.
func (s *RemoteSpace) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Inp)
}

// pollDelay returns the delay before the attempt-th retry of a polling
// loop: floor·2^attempt with uniform jitter of up to half the base,
// never below floor and never above max. The jitter decorrelates
// clients that missed the same tuple, so a wake-up does not produce a
// synchronized thundering herd; once the backoff saturates the cap the
// jitter headroom is gone and the delay sits exactly at max.
func pollDelay(floor, max time.Duration, attempt int) time.Duration {
	base := floor
	for i := 0; i < attempt && base < max; i++ {
		base *= 2
	}
	if base > max {
		base = max
	}
	headroom := base / 2
	if base+headroom > max {
		headroom = max - base
	}
	return base + time.Duration(rand.Int63n(int64(headroom)+1))
}

func (s *RemoteSpace) poll(
	ctx context.Context,
	tmpl tuple.Tuple,
	op func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error),
) (tuple.Tuple, error) {
	floor := s.PollInterval
	if floor <= 0 {
		floor = 5 * time.Millisecond
	}
	max := s.PollMaxInterval
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	if max < floor {
		max = floor
	}
	clock := vclock.Real()
	if s.c != nil { // poll-shape tests run without a client
		clock = s.c.clock()
	}
	timer := clock.NewTimer(nil)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		t, ok, err := op(ctx, tmpl)
		if err != nil {
			return tuple.Tuple{}, err
		}
		if ok {
			return t, nil
		}
		timer.Reset(pollDelay(floor, max, attempt))
		select {
		case <-ctx.Done():
			return tuple.Tuple{}, ctx.Err()
		case <-timer.C():
		}
	}
}
