package bft

import (
	"context"
	"fmt"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// RemoteSpace is the client-side view of the replicated PEATS: it
// implements peats.TupleSpace by shipping operations through the BFT
// client, so the consensus algorithms and universal constructions run
// unchanged over the replicated realisation (Fig. 2).
//
// Blocking rd/in are realised by polling their non-blocking variants,
// as in DEPSPACE.
//
// Non-mutating operations (rd, rdp, rdAll) take the read-only fast
// path by default: replicas answer from current committed state
// without ordering and the client accepts a 2f+1 byte-identical vote,
// falling back to ordered execution when the vote cannot form. Set
// OrderedReads to force every read through total ordering.
type RemoteSpace struct {
	c *Client
	// PollInterval paces the rd/in polling loops (default 5ms).
	PollInterval time.Duration
	// OrderedReads disables the read-only fast path.
	OrderedReads bool
}

var _ peats.TupleSpace = (*RemoteSpace)(nil)

// NewRemoteSpace wraps a BFT client as a tuple space handle. The
// process identity seen by the reference monitor is the client's
// transport identity.
func NewRemoteSpace(c *Client) *RemoteSpace {
	return &RemoteSpace{c: c, PollInterval: 5 * time.Millisecond}
}

// ID returns the authenticated process identity of the underlying
// client.
func (s *RemoteSpace) ID() policy.ProcessID { return policy.ProcessID(s.c.ID()) }

func (s *RemoteSpace) invoke(ctx context.Context, op wire.SpaceOp) (wire.SpaceResult, error) {
	return s.invokeVia(ctx, op, s.c.Invoke)
}

// invokeRO ships a non-mutating operation over the read-only fast path
// (unless disabled); the client falls back to ordering on vote failure.
func (s *RemoteSpace) invokeRO(ctx context.Context, op wire.SpaceOp) (wire.SpaceResult, error) {
	if s.OrderedReads {
		return s.invoke(ctx, op)
	}
	return s.invokeVia(ctx, op, s.c.InvokeReadOnly)
}

func (s *RemoteSpace) invokeVia(
	ctx context.Context,
	op wire.SpaceOp,
	call func(context.Context, []byte) ([]byte, error),
) (wire.SpaceResult, error) {
	raw, err := call(ctx, wire.EncodeSpaceOp(op))
	if err != nil {
		return wire.SpaceResult{}, err
	}
	res, err := wire.DecodeSpaceResult(raw)
	if err != nil {
		return wire.SpaceResult{}, fmt.Errorf("replicated space: %w", err)
	}
	if err := resultToError(res); err != nil {
		return wire.SpaceResult{}, err
	}
	return res, nil
}

// Out implements peats.TupleSpace.
func (s *RemoteSpace) Out(ctx context.Context, entry tuple.Tuple) error {
	_, err := s.invoke(ctx, wire.SpaceOp{Op: policy.OpOut, Entry: entry})
	return err
}

// Rdp implements peats.TupleSpace.
func (s *RemoteSpace) Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.invokeRO(ctx, wire.SpaceOp{Op: policy.OpRdp, Template: tmpl})
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res.Tuple, res.Found, nil
}

// Inp implements peats.TupleSpace.
func (s *RemoteSpace) Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := s.invoke(ctx, wire.SpaceOp{Op: policy.OpInp, Template: tmpl})
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res.Tuple, res.Found, nil
}

// RdAll implements peats.TupleSpace.
func (s *RemoteSpace) RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error) {
	res, err := s.invokeRO(ctx, wire.SpaceOp{Op: policy.OpRdAll, Template: tmpl})
	if err != nil {
		return nil, err
	}
	return res.Tuples, nil
}

// Cas implements peats.TupleSpace.
func (s *RemoteSpace) Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error) {
	res, err := s.invoke(ctx, wire.SpaceOp{Op: policy.OpCas, Template: tmpl, Entry: entry})
	if err != nil {
		return false, tuple.Tuple{}, err
	}
	return res.Inserted, res.Tuple, nil
}

// Rd implements peats.TupleSpace by polling Rdp.
func (s *RemoteSpace) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Rdp)
}

// In implements peats.TupleSpace by polling Inp.
func (s *RemoteSpace) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	return s.poll(ctx, tmpl, s.Inp)
}

func (s *RemoteSpace) poll(
	ctx context.Context,
	tmpl tuple.Tuple,
	op func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error),
) (tuple.Tuple, error) {
	interval := s.PollInterval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		t, ok, err := op(ctx, tmpl)
		if err != nil {
			return tuple.Tuple{}, err
		}
		if ok {
			return t, nil
		}
		select {
		case <-ctx.Done():
			return tuple.Tuple{}, ctx.Err()
		case <-ticker.C:
		}
	}
}
