package bft

// Protocol event tracing: a lightweight structured hook the sim
// harness, tests, and diagnostics subscribe to. Events fire on the
// replica event loop (never from the read-only pool), so a sink
// observes one replica's protocol history in exact execution order;
// sinks shared across replicas must synchronise internally. A sink
// must be fast and must never call back into the replica — it runs
// inside the event loop's critical path.

// EventType names one protocol event class.
type EventType string

const (
	// EventBatchProposed fires at the primary when it broadcasts a
	// batch proposal. N is the batch fill (request count).
	EventBatchProposed EventType = "batch_proposed"
	// EventBatchAccepted fires when a replica accepts a verified batch
	// proposal into its log. N is the batch fill.
	EventBatchAccepted EventType = "batch_accepted"
	// EventPrepared fires when a batch reaches the local prepare quorum
	// (the replica casts its commit vote).
	EventPrepared EventType = "prepared"
	// EventExecuted fires when a committed batch is applied to the
	// service. N is the batch fill.
	EventExecuted EventType = "executed"
	// EventTentativeExecuted fires when a prepared batch executes into
	// the tentative overlay, one round before commit.
	EventTentativeExecuted EventType = "tentative_executed"
	// EventTentativePromoted fires when a tentative unit's commit
	// quorum lands and its overlay applies to real state.
	EventTentativePromoted EventType = "tentative_promoted"
	// EventTentativeRollback fires when the unpromoted overlay stack is
	// discarded (view change or state transfer). N is the number of
	// units discarded.
	EventTentativeRollback EventType = "tentative_rollback"
	// EventViewChangeStart fires when the replica abandons its view and
	// broadcasts a VIEW-CHANGE. Seq is unused; View is the target view.
	EventViewChangeStart EventType = "view_change_start"
	// EventViewInstalled fires when a view installs (NEW-VIEW processed
	// or quorum-adopted). View is the installed view.
	EventViewInstalled EventType = "view_installed"
	// EventCheckpoint fires when the replica publishes a checkpoint at
	// Seq. N is 1 for a full snapshot, 0 for a chained delta.
	EventCheckpoint EventType = "checkpoint"
	// EventStateTransferInstalled fires when a verified state pack
	// replaces local state at Seq.
	EventStateTransferInstalled EventType = "state_transfer_installed"
)

// Event is one structured protocol event.
type Event struct {
	// Replica is the emitting replica's identity.
	Replica string
	// Type is the event class.
	Type EventType
	// View and Seq locate the event in the protocol; Seq is 0 for
	// events without a sequence (view changes).
	View uint64
	Seq  uint64
	// N is a per-type small quantity (batch fill, units rolled back,
	// full-vs-delta flag); see the EventType docs.
	N int
}

// EventSink receives protocol events. See the package comment on
// events.go for the threading contract.
type EventSink func(Event)

// emit delivers one event to the configured sink, if any. Call only
// from the event loop (or before Start / after Stop).
func (r *Replica) emit(t EventType, seq uint64, n int) {
	if r.cfg.EventSink == nil {
		return
	}
	r.cfg.EventSink(Event{Replica: r.cfg.ID, Type: t, View: r.view, Seq: seq, N: n})
}
