package bft

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"testing"

	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// testTopology is a two-group directory whose attestation keys the test
// holds, so it can forge any certificate an honest deployment could
// produce (one replica per group, F=0, so one signature is a quorum).
type testTopology struct {
	master []byte
	dir    Directory
}

func newTestTopology(groups ...string) testTopology {
	tp := testTopology{master: []byte("partition-state-test-master"), dir: Directory{}}
	for _, g := range groups {
		priv := AttestKeyFor(tp.master, g, "r0")
		tp.dir[g] = GroupKeys{F: 0, Keys: map[string]ed25519.PublicKey{
			"r0": priv.Public().(ed25519.PublicKey),
		}}
	}
	return tp
}

// cert wraps outcome bytes in a quorum certificate of the named group.
func (tp testTopology) cert(group string, outcome []byte) wire.VoteCert {
	priv := AttestKeyFor(tp.master, group, "r0")
	return wire.VoteCert{Group: group, Outcome: outcome, Atts: []wire.Attestation{
		{Replica: "r0", Sig: ed25519.Sign(priv, wire.AttestPayload(group, outcome))},
	}}
}

// prepareTx runs a prepare through ordered execution and returns the
// raw reply (usable as certificate outcome bytes) plus its decoding.
func prepareTx(t *testing.T, svc *SpaceService, client, txID string, parts []string, ops []wire.SpaceOp) ([]byte, wire.TxOutcome) {
	t.Helper()
	raw := svc.Execute(client, wire.EncodeTxPrepare(wire.TxPrepare{
		TxID: txID, Participants: parts, Ops: ops,
	}))
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("prepare %s: %v", txID, err)
	}
	return raw, o
}

func decideTx(t *testing.T, svc *SpaceService, d wire.TxDecision) wire.TxOutcome {
	t.Helper()
	raw := svc.Execute("anyone", wire.EncodeTxDecision(d))
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("decision %s: %v", d.TxID, err)
	}
	return o
}

func statusTx(t *testing.T, svc *SpaceService, txID string) wire.TxOutcome {
	t.Helper()
	raw := svc.Execute("anyone", wire.EncodeTxStatus(wire.TxStatus{TxID: txID}))
	o, err := wire.DecodeTxOutcome(raw)
	if err != nil {
		t.Fatalf("status %s: %v", txID, err)
	}
	return o
}

// TestReservationCommitRebindsEqualValues is the regression for the
// copy-stealing bug: two transactions reserve equal-valued tuples, and
// the one prepared *second* commits first. Its value-addressed commit
// consumes the earliest stored copy — the one the first reservation's
// frozen sequence named. Without re-binding, the first transaction is
// left freezing a dead sequence while its surviving copy sits exposed:
// an ordinary inp steals it and the first transaction's justified
// commit panics the replica. With re-binding, the survivor stays
// frozen and both commits land.
func TestReservationCommitRebindsEqualValues(t *testing.T) {
	tp := newTestTopology("g0")
	svc := NewSpaceService(policy.AllowAll())
	svc.EnablePartition("g0", tp.dir)

	v := tuple.T(tuple.Str("A"), tuple.Int(1))
	for i := 0; i < 2; i++ {
		if res := execOp(t, svc, "c1", wire.SpaceOp{Op: policy.OpOut, Entry: v}); res.Status != wire.StatusOK {
			t.Fatalf("out %d: %+v", i, res)
		}
	}
	inpV := []wire.SpaceOp{{Op: policy.OpInp, Template: v}}

	_, o1 := prepareTx(t, svc, "c1", "c1:1:aa", []string{"g0"}, inpV)
	if o1.State != wire.TxVoteYes {
		t.Fatalf("t1 vote: %+v", o1)
	}
	raw2, o2 := prepareTx(t, svc, "c2", "c2:1:bb", []string{"g0"}, inpV)
	if o2.State != wire.TxVoteYes {
		t.Fatalf("t2 vote: %+v", o2)
	}

	// Commit the second transaction first: inverse decision order.
	if o := decideTx(t, svc, wire.TxDecision{
		TxID: "c2:1:bb", Commit: true, Certs: []wire.VoteCert{tp.cert("g0", raw2)},
	}); o.State != wire.TxCommitted {
		t.Fatalf("t2 commit: %+v", o)
	}

	// The surviving copy belongs to t1's reservation: an ordinary inp
	// must not see it. Pre-fix it was exposed and stolen here.
	if res := execOp(t, svc, "c3", wire.SpaceOp{Op: policy.OpInp, Template: v}); res.Found {
		t.Fatal("ordinary inp stole a reserved copy")
	}

	// t1's justified commit must land on the re-bound copy. Pre-fix this
	// panicked: "space: staged removal lost its target". The stored YES
	// outcome is refetched via status — byte-identical to the prepare
	// reply, per the status contract — and wrapped in a certificate.
	raw1 := svc.Execute("anyone", wire.EncodeTxStatus(wire.TxStatus{TxID: "c1:1:aa"}))
	if o := decideTx(t, svc, wire.TxDecision{
		TxID: "c1:1:aa", Commit: true, Certs: []wire.VoteCert{tp.cert("g0", raw1)},
	}); o.State != wire.TxCommitted {
		t.Fatalf("t1 commit: %+v", o)
	}
	if n := svc.Space().Len(); n != 0 {
		t.Fatalf("space holds %d tuples after both commits, want 0", n)
	}
}

// TestDecidedTableGC bounds the decided table under status-probe spam:
// aborted pins are evicted oldest-first once they exceed
// maxAbortedDecided, committed records are never evicted, and an
// evicted ID still answers aborted when re-probed (presumed abort makes
// eviction invisible).
func TestDecidedTableGC(t *testing.T) {
	tp := newTestTopology("g0")
	svc := NewSpaceService(policy.AllowAll())
	svc.EnablePartition("g0", tp.dir)

	v := tuple.T(tuple.Str("K"), tuple.Int(7))
	if res := execOp(t, svc, "c1", wire.SpaceOp{Op: policy.OpOut, Entry: v}); res.Status != wire.StatusOK {
		t.Fatalf("out: %+v", res)
	}
	rawP, oP := prepareTx(t, svc, "c1", "c1:1:aa", []string{"g0"},
		[]wire.SpaceOp{{Op: policy.OpInp, Template: v}})
	if oP.State != wire.TxVoteYes {
		t.Fatalf("prepare: %+v", oP)
	}
	if o := decideTx(t, svc, wire.TxDecision{
		TxID: "c1:1:aa", Commit: true, Certs: []wire.VoteCert{tp.cert("g0", rawP)},
	}); o.State != wire.TxCommitted {
		t.Fatalf("commit: %+v", o)
	}

	spam := maxAbortedDecided + maxAbortedDecided/2
	for i := 0; i < spam; i++ {
		statusTx(t, svc, fmt.Sprintf("spam:%d:ff", i))
	}
	if n := len(svc.ptx.decided); n > maxAbortedDecided+1 {
		t.Fatalf("decided table holds %d entries, want ≤ %d", n, maxAbortedDecided+1)
	}
	if svc.ptx.aborted > maxAbortedDecided {
		t.Fatalf("aborted census %d exceeds the bound", svc.ptx.aborted)
	}
	// The committed record survives eviction.
	if o := statusTx(t, svc, "c1:1:aa"); o.State != wire.TxCommitted {
		t.Fatalf("committed record evicted: %+v", o)
	}
	// The oldest spam pin was evicted; a re-probe pins it aborted again
	// with the identical answer.
	if _, ok := svc.ptx.decided["spam:0:ff"]; ok {
		t.Fatal("oldest aborted pin was not evicted")
	}
	if o := statusTx(t, svc, "spam:0:ff"); o.State != wire.TxAborted {
		t.Fatalf("re-probed evicted pin: %+v", o)
	}
}

// TestPartitionDeltaMirror drives a source service through every
// partition event kind interleaved with ordinary mutations, ships its
// incremental checkpoint deltas to a mirror, and requires the mirror's
// snapshot — stores, pending table, decided table, stamps — to be
// byte-identical to the source's. This is exactly the contract chained
// delta checkpoints rest on; before partition events were journaled,
// any partition op forced a full snapshot instead.
func TestPartitionDeltaMirror(t *testing.T) {
	tp := newTestTopology("g0", "g1")
	src := NewSpaceService(policy.AllowAll())
	src.EnablePartition("g0", tp.dir)
	mir := NewSpaceService(policy.AllowAll())
	mir.EnablePartition("g0", tp.dir)

	ship := func(step string) {
		t.Helper()
		blob, ok := src.CheckpointDelta()
		if !ok {
			t.Fatalf("%s: source journal broken — partition ops should journal events", step)
		}
		if err := mir.ApplyDelta(blob); err != nil {
			t.Fatalf("%s: apply delta: %v", step, err)
		}
		mir.ResetJournal()
	}

	v := tuple.T(tuple.Str("A"), tuple.Int(1))
	w := tuple.T(tuple.Str("B"), tuple.Int(2))
	for i := 0; i < 3; i++ {
		execOp(t, src, "c1", wire.SpaceOp{Op: policy.OpOut, Entry: v})
	}
	execOp(t, src, "c1", wire.SpaceOp{Op: policy.OpOut, Entry: w})

	// t1 reserves a copy of v with g1 as co-participant (so a forged g1
	// record can later justify its abort).
	_, o1 := prepareTx(t, src, "c1", "c1:1:aa", []string{"g0", "g1"},
		[]wire.SpaceOp{{Op: policy.OpInp, Template: v}})
	if o1.State != wire.TxVoteYes {
		t.Fatalf("t1 vote: %+v", o1)
	}
	// An ordinary inp between the prepares must consume a free copy on
	// the mirror too — the freeze-aware part of delta application.
	if res := execOp(t, src, "c2", wire.SpaceOp{Op: policy.OpInp, Template: v}); !res.Found {
		t.Fatalf("ordinary inp: %+v", res)
	}
	ship("first interval")

	raw2, o2 := prepareTx(t, src, "c2", "c2:1:bb", []string{"g0"},
		[]wire.SpaceOp{{Op: policy.OpInp, Template: v}})
	if o2.State != wire.TxVoteYes {
		t.Fatalf("t2 vote: %+v", o2)
	}
	// Committing t2 consumes the earliest stored copy and re-binds t1.
	if o := decideTx(t, src, wire.TxDecision{
		TxID: "c2:1:bb", Commit: true, Certs: []wire.VoteCert{tp.cert("g0", raw2)},
	}); o.State != wire.TxCommitted {
		t.Fatalf("t2 commit: %+v", o)
	}
	// A status probe of an unknown transaction pins it aborted.
	if o := statusTx(t, src, "ghost:1:zz"); o.State != wire.TxAborted {
		t.Fatalf("ghost status: %+v", o)
	}
	// Abort t1, justified by a forged g1 aborted record.
	g1Aborted := wire.EncodeTxOutcome(wire.TxOutcome{TxID: "c1:1:aa", State: wire.TxAborted})
	if o := decideTx(t, src, wire.TxDecision{
		TxID: "c1:1:aa", Certs: []wire.VoteCert{tp.cert("g1", g1Aborted)},
	}); o.State != wire.TxAborted {
		t.Fatalf("t1 abort: %+v", o)
	}
	// The copy t1's dropped reservation held is free again.
	if res := execOp(t, src, "c3", wire.SpaceOp{Op: policy.OpInp, Template: v}); !res.Found {
		t.Fatalf("post-abort inp: %+v", res)
	}
	ship("second interval")

	a, b := src.Snapshot(), mir.Snapshot()
	if !bytes.Equal(a, b) {
		t.Fatalf("mirror diverged: source snapshot %d bytes, mirror %d bytes", len(a), len(b))
	}
}
