package bft

import "sync/atomic"

// Byzantine service wrappers: a faulty replica runs the same protocol
// code but executes a corrupted state machine, modelling compromised
// replicas that lie about results. (Silent and partitioned replicas are
// modelled at the transport layer; an equivocating primary is exercised
// through the protocol's equivocation detection.)

// CorruptService wraps a Service and corrupts every Execute result —
// the replica participates correctly in ordering but lies to clients.
// Client-side f+1 voting must mask it.
type CorruptService struct {
	inner    Service
	corrupts atomic.Int64
}

var _ Service = (*CorruptService)(nil)

// NewCorruptService returns a service that flips the bytes of every
// result produced by inner.
func NewCorruptService(inner Service) *CorruptService {
	return &CorruptService{inner: inner}
}

// Corruptions returns how many results were corrupted.
func (s *CorruptService) Corruptions() int64 { return s.corrupts.Load() }

// Execute implements Service, corrupting the result.
func (s *CorruptService) Execute(client string, op []byte) []byte {
	res := s.inner.Execute(client, op)
	s.corrupts.Add(1)
	bad := make([]byte, len(res))
	for i, b := range res {
		bad[i] = ^b
	}
	return bad
}

// Snapshot implements Service (uncorrupted, so checkpoints still match;
// a corrupt checkpoint would only slow the group down further).
func (s *CorruptService) Snapshot() []byte { return s.inner.Snapshot() }

// Restore implements Service.
func (s *CorruptService) Restore(snapshot []byte) error { return s.inner.Restore(snapshot) }
