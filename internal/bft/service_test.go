package bft

import (
	"bytes"
	"testing"

	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

func execOp(t *testing.T, svc Service, client string, op wire.SpaceOp) wire.SpaceResult {
	t.Helper()
	raw := svc.Execute(client, wire.EncodeSpaceOp(op))
	res, err := wire.DecodeSpaceResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpaceServiceExecute(t *testing.T) {
	svc := NewSpaceService(policy.AllowAll())

	res := execOp(t, svc, "c1", wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("A"), tuple.Int(1)),
	})
	if res.Status != wire.StatusOK {
		t.Fatalf("out: %+v", res)
	}

	res = execOp(t, svc, "c1", wire.SpaceOp{
		Op: policy.OpRdp, Template: tuple.T(tuple.Str("A"), tuple.Formal("v")),
	})
	if res.Status != wire.StatusOK || !res.Found {
		t.Fatalf("rdp: %+v", res)
	}
	if v, _ := res.Tuple.Field(1).IntValue(); v != 1 {
		t.Errorf("rdp tuple = %v", res.Tuple)
	}

	res = execOp(t, svc, "c1", wire.SpaceOp{
		Op:       policy.OpCas,
		Template: tuple.T(tuple.Str("D"), tuple.Formal("d")),
		Entry:    tuple.T(tuple.Str("D"), tuple.Int(9)),
	})
	if res.Status != wire.StatusOK || !res.Inserted {
		t.Fatalf("cas: %+v", res)
	}

	res = execOp(t, svc, "c1", wire.SpaceOp{
		Op: policy.OpInp, Template: tuple.T(tuple.Str("A"), tuple.Any()),
	})
	if res.Status != wire.StatusOK || !res.Found {
		t.Fatalf("inp: %+v", res)
	}
	if svc.Space().Len() != 1 {
		t.Errorf("space len = %d, want 1 (the decision)", svc.Space().Len())
	}
}

func TestSpaceServiceDenial(t *testing.T) {
	// Deny-all policy: operations return StatusDenied and leave state
	// untouched.
	svc := NewSpaceService(policy.New())
	res := execOp(t, svc, "evil", wire.SpaceOp{
		Op: policy.OpOut, Entry: tuple.T(tuple.Str("X")),
	})
	if res.Status != wire.StatusDenied {
		t.Fatalf("status = %v, want denied", res.Status)
	}
	if svc.Space().Len() != 0 {
		t.Error("denied op mutated state")
	}
}

func TestSpaceServiceMalformedOp(t *testing.T) {
	svc := NewSpaceService(policy.AllowAll())
	raw := svc.Execute("c1", []byte{0xde, 0xad})
	res, err := wire.DecodeSpaceResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != wire.StatusError {
		t.Errorf("status = %v, want error", res.Status)
	}
	// Nil op (the view-change no-op) is also a deterministic error.
	raw = svc.Execute("", nil)
	if _, err := wire.DecodeSpaceResult(raw); err != nil {
		t.Errorf("no-op execution must still produce a decodable result: %v", err)
	}
}

func TestSpaceServiceDeterminism(t *testing.T) {
	// Two replicas fed the same operation sequence produce identical
	// results and snapshots.
	mkOps := func() [][]byte {
		return [][]byte{
			wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut, Entry: tuple.T(tuple.Str("K"), tuple.Int(1))}),
			wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut, Entry: tuple.T(tuple.Str("K"), tuple.Int(2))}),
			wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpInp, Template: tuple.T(tuple.Str("K"), tuple.Any())}),
			wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpCas,
				Template: tuple.T(tuple.Str("K"), tuple.Formal("x")),
				Entry:    tuple.T(tuple.Str("K"), tuple.Int(3))}),
			{0xff}, // malformed, still deterministic
		}
	}
	a, b := NewSpaceService(policy.AllowAll()), NewSpaceService(policy.AllowAll())
	for i, op := range mkOps() {
		ra := a.Execute("c", op)
		rb := b.Execute("c", op)
		if !bytes.Equal(ra, rb) {
			t.Errorf("op %d: results diverge", i)
		}
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Error("snapshots diverge")
	}
}

func TestSpaceServiceSnapshotRestore(t *testing.T) {
	a := NewSpaceService(policy.AllowAll())
	for i := int64(0); i < 5; i++ {
		execOp(t, a, "c", wire.SpaceOp{Op: policy.OpOut, Entry: tuple.T(tuple.Str("S"), tuple.Int(i))})
	}
	snap := a.Snapshot()

	b := NewSpaceService(policy.AllowAll())
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Error("restored snapshot differs")
	}
	// Restored replica continues deterministically.
	ra := a.Execute("c", wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpInp, Template: tuple.T(tuple.Str("S"), tuple.Any())}))
	rb := b.Execute("c", wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpInp, Template: tuple.T(tuple.Str("S"), tuple.Any())}))
	if !bytes.Equal(ra, rb) {
		t.Error("post-restore execution diverges")
	}

	if err := b.Restore([]byte{0xff, 0xff}); err == nil {
		t.Error("malformed snapshot accepted")
	}
}

func TestCorruptServiceLies(t *testing.T) {
	inner := NewSpaceService(policy.AllowAll())
	corrupt := NewCorruptService(inner)
	op := wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut, Entry: tuple.T(tuple.Str("X"))})
	honest := inner.Execute("c", op)
	// Fresh service so the state matches.
	corruptInner := NewSpaceService(policy.AllowAll())
	bad := NewCorruptService(corruptInner).Execute("c", op)
	if bytes.Equal(honest, bad) {
		t.Error("corrupt service returned honest bytes")
	}
	if corrupt.Corruptions() != 0 {
		t.Error("corruption counter should start at 0")
	}
}
