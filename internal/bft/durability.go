package bft

import (
	"fmt"
	"sort"

	"peats/internal/auth"
	"peats/internal/durable"
	"peats/internal/wire"
)

// This file holds the durability and incremental-checkpoint plumbing:
// the optional service interfaces the replica drives, the chained
// checkpoint digest, the checkpoint-delta blob (service delta plus
// client-table updates), and the state-transfer pack that carries
// either a full snapshot or a base-plus-deltas chain.

// DeltaSnapshotter is an optional Service extension backing incremental
// checkpoints: the service journals the mutations each executed
// request commits and surrenders them at checkpoint time. Deltas are
// deterministic across replicas (they journal the same executed
// sequence), so a checkpoint digest can be chained over them instead of
// re-serializing the whole state every interval.
type DeltaSnapshotter interface {
	// CheckpointDelta drains the mutation journal accumulated since the
	// previous call, encoded as a wire.Delta. ok=false means the
	// journal cannot stand in for the state (a Restore interrupted it,
	// or it overflowed); the caller must fall back to a full snapshot.
	// The journal restarts at this point either way.
	CheckpointDelta() (delta []byte, ok bool)
	// ApplyDelta applies a checkpoint delta produced by a peer's
	// CheckpointDelta to the current state (state-transfer install).
	ApplyDelta(delta []byte) error
	// ResetJournal marks the current state as a valid journal base —
	// called after a completed state-transfer install, whose end state
	// is exactly the checkpoint the chain digests describe.
	ResetJournal()
}

// DurableService is an optional Service extension for engines that
// persist state locally (package durable): the replica frames each
// agreement batch as one atomic unit in the write-ahead log, compacts
// the log at full checkpoints, and recovers executed position and
// client table from the data directory at construction.
type DurableService interface {
	// Durable reports whether persistence is actually wired (the
	// methods below are no-ops otherwise).
	Durable() bool
	// BeginUnit opens the WAL frame for the batch at agreement seq.
	BeginUnit(seq uint64)
	// CommitUnit seals the frame, attaching the replica's per-batch
	// extra blob (its client-table updates), making the batch durable
	// per the engine's fsync policy.
	CommitUnit(extra []byte)
	// CompactTo snapshots the full state as of agreement seq (with the
	// full client table as extra) and prunes the log behind it.
	CompactTo(seq uint64, extra []byte) error
	// BeginStateLoad enters load mode for a state-transfer install:
	// mutations keep the engine current but are not logged.
	BeginStateLoad()
	// EndStateLoad leaves load mode and persists the installed state as
	// a fresh snapshot at agreement seq, resetting the WAL.
	EndStateLoad(seq uint64, extra []byte) error
	// AbortStateLoad leaves load mode without persisting anything — the
	// install failed, and the disk must keep the last good state rather
	// than snapshot a partially-installed one.
	AbortStateLoad()
	// RecoveredState reports what the engine recovered at startup: the
	// last durable agreement seq, the client table at the recovery
	// snapshot, and the per-unit updates to fold forward.
	RecoveredState() (unitSeq uint64, baseExtra []byte, units []durable.UnitExtra)
}

// cpChainDomain separates chained checkpoint digests from every other
// digest preimage in the protocol.
var cpChainDomain = []byte{0xff, 0x01, 'p', 'e', 'a', 't', 's', '-', 'c', 'p', '-', 'c', 'h', 'a', 'i', 'n'}

// chainCheckpointDigest extends a checkpoint digest chain by one delta
// blob: digest_k = H(domain || digest_{k-1} || blob_k). A full
// checkpoint re-bases the chain at H(stateSnapshot), so a chain digest
// commits to the base snapshot and every delta since — which is what
// lets a state-transfer receiver verify a base-plus-deltas response
// against the checkpoint quorum digest alone.
func chainCheckpointDigest(prev [32]byte, blob []byte) [32]byte {
	buf := make([]byte, 0, len(cpChainDomain)+32+len(blob))
	buf = append(buf, cpChainDomain...)
	buf = append(buf, prev[:]...)
	buf = append(buf, blob...)
	return auth.Digest(buf)
}

// ---- Client-table encoding ----

// clientUpdate is one decoded client record.
type clientUpdate struct {
	id  string
	rec clientRecord
}

// appendClientRecords encodes the records of ids (which must be
// sorted) from the table — the shared shape of per-batch updates,
// checkpoint-delta updates, and the full table.
func appendClientRecords(w *wire.Writer, clients map[string]*clientRecord, ids []string) {
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		rec := clients[id]
		if rec == nil {
			rec = &clientRecord{}
		}
		w.String(id)
		w.Uvarint(rec.lastReqID)
		w.Bytes(rec.lastReply)
	}
}

// encodeClientRecords is appendClientRecords as a fresh blob.
func encodeClientRecords(clients map[string]*clientRecord, ids []string) []byte {
	w := wire.NewWriter()
	appendClientRecords(w, clients, ids)
	return w.Data()
}

// encodeFullClientTable encodes every record, sorted by id.
func encodeFullClientTable(clients map[string]*clientRecord) []byte {
	ids := make([]string, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return encodeClientRecords(clients, ids)
}

// readClientRecords decodes a client-record list from r.
func readClientRecords(r *wire.Reader) ([]clientUpdate, error) {
	count := r.Uvarint()
	if count > maxBatch {
		return nil, fmt.Errorf("client table with %d records", count)
	}
	ups := make([]clientUpdate, 0, min(count, 1024))
	for i := uint64(0); i < count; i++ {
		u := clientUpdate{id: r.String()}
		u.rec = clientRecord{lastReqID: r.Uvarint(), lastReply: r.Bytes()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		ups = append(ups, u)
	}
	return ups, nil
}

// decodeClientTable decodes a full-table blob (empty blob = empty
// table) into a fresh map.
func decodeClientTable(blob []byte) (map[string]*clientRecord, error) {
	clients := make(map[string]*clientRecord)
	if len(blob) == 0 {
		return clients, nil
	}
	r := wire.NewReader(blob)
	ups, err := readClientRecords(r)
	if err == nil {
		r.ExpectEOF()
		err = r.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("bft: decode client table: %w", err)
	}
	applyClientUpdates(clients, ups)
	return clients, nil
}

// decodeClientUpdates decodes an update blob (empty = no updates).
func decodeClientUpdates(blob []byte) ([]clientUpdate, error) {
	if len(blob) == 0 {
		return nil, nil
	}
	r := wire.NewReader(blob)
	ups, err := readClientRecords(r)
	if err == nil {
		r.ExpectEOF()
		err = r.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("bft: decode client updates: %w", err)
	}
	return ups, nil
}

// applyClientUpdates folds updates over a table.
func applyClientUpdates(clients map[string]*clientRecord, ups []clientUpdate) {
	for _, u := range ups {
		rec := u.rec
		clients[u.id] = &rec
	}
}

// ---- Checkpoint-delta blob ----

// encodeCheckpointDelta composes the blob a delta checkpoint digests
// and ships: the service's mutation delta plus the client-table
// updates of the interval.
func encodeCheckpointDelta(svcDelta, clientUpdates []byte) []byte {
	w := wire.NewWriter()
	w.Bytes(svcDelta)
	w.Bytes(clientUpdates)
	return w.Data()
}

// decodeCheckpointDelta splits a checkpoint-delta blob.
func decodeCheckpointDelta(blob []byte) (svcDelta []byte, ups []clientUpdate, err error) {
	r := wire.NewReader(blob)
	svcDelta = r.Bytes()
	upBlob := r.Bytes()
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("bft: decode checkpoint delta: %w", err)
	}
	ups, err = decodeClientUpdates(upBlob)
	if err != nil {
		return nil, nil, err
	}
	return svcDelta, ups, nil
}

// ---- State-transfer packs ----

// A StateResponse carries a state pack: either the full stateSnapshot
// bytes of the checkpoint (available at full checkpoints), or a chain —
// the last full snapshot plus every checkpoint delta up to the
// requested sequence number. The receiver folds the chain digest and
// verifies it against the checkpoint quorum, so a chain is exactly as
// trustworthy as a full snapshot.
const (
	statePackFull  = 1
	statePackChain = 2
)

// maxChainDeltas bounds decoded chains (CompactEvery checkpoints per
// chain in honest responses).
const maxChainDeltas = 1 << 12

// seqDelta is one chained checkpoint delta.
type seqDelta struct {
	seq   uint64
	delta []byte
}

// chainPack is a decoded chain response.
type chainPack struct {
	baseSeq uint64
	base    []byte
	cps     []seqDelta
}

// digest folds the chain into the digest the quorum must have voted.
func (c chainPack) digest() [32]byte {
	d := auth.Digest(c.base)
	for _, cd := range c.cps {
		d = chainCheckpointDigest(d, cd.delta)
	}
	return d
}

func encodeFullPack(snap []byte) []byte {
	w := wire.NewWriter()
	w.Byte(statePackFull)
	w.Bytes(snap)
	return w.Data()
}

func encodeChainPack(baseSeq uint64, base []byte, cps []seqDelta) []byte {
	w := wire.NewWriter()
	w.Byte(statePackChain)
	w.Uvarint(baseSeq)
	w.Bytes(base)
	w.Uvarint(uint64(len(cps)))
	for _, cd := range cps {
		w.Uvarint(cd.seq)
		w.Bytes(cd.delta)
	}
	return w.Data()
}

// decodeStatePack parses a state pack; exactly one of full/chain is
// meaningful, discriminated by isChain.
func decodeStatePack(b []byte) (full []byte, chain chainPack, isChain bool, err error) {
	r := wire.NewReader(b)
	switch tag := r.Byte(); tag {
	case statePackFull:
		full = r.Bytes()
	case statePackChain:
		isChain = true
		chain.baseSeq = r.Uvarint()
		chain.base = r.Bytes()
		count := r.Uvarint()
		if count > maxChainDeltas {
			return nil, chainPack{}, false, fmt.Errorf("bft: state pack with %d deltas", count)
		}
		for i := uint64(0); i < count; i++ {
			cd := seqDelta{seq: r.Uvarint()}
			cd.delta = r.Bytes()
			chain.cps = append(chain.cps, cd)
		}
	default:
		return nil, chainPack{}, false, fmt.Errorf("bft: unknown state pack tag %d", tag)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, chainPack{}, false, fmt.Errorf("bft: decode state pack: %w", err)
	}
	return full, chain, isChain, nil
}
