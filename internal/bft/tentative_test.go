package bft

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"peats/internal/durable"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/transport"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// TestViewChangeMidTentativeRollsBackAndReexecutes is the acceptance
// pin for tentative execution under view changes: a batch prepared (and
// tentatively executed, with tentative replies observed) at only part
// of the group cannot commit in view 0; the view change must re-propose
// it under the SAME digest, every request must execute exactly once,
// the committed results must match the tentative ones byte for byte,
// and the replicas' published checkpoint digests must agree — proving
// the rolled-back overlays left no trace in checkpointed state.
func TestViewChangeMidTentativeRollsBackAndReexecutes(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)

	var reps []*Replica
	for _, id := range ids[1:] {
		rep, err := NewReplica(ReplicaConfig{
			ID: id, Replicas: ids, F: 1,
			Transport:             net.Endpoint(id),
			Service:               NewSpaceService(policy.AllowAll()),
			ViewChangeTimeout:     200 * time.Millisecond,
			CheckpointInterval:    4,
			KeepCheckpointHistory: true,
			Logger:                testLogger,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		reps = append(reps, rep)
	}
	stopped := false
	stopAll := func() {
		if !stopped {
			stopped = true
			for _, r := range reps {
				r.Stop()
			}
		}
	}
	t.Cleanup(stopAll)

	client := net.Endpoint("c")
	mkReq := func(id uint64, v int64) Request {
		return Request{Client: "c", ReqID: id, Op: wire.EncodeSpaceOp(wire.SpaceOp{
			Op: policy.OpOut, Entry: tuple.T(tuple.Str("TVC"), tuple.Int(v))})}
	}
	req1, req2 := mkReq(1, 1), mkReq(2, 2)
	for _, req := range []Request{req1, req2} {
		payload, err := Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids[1:] {
			_ = client.Send(id, payload)
		}
	}

	newViews := make(chan NewView, 4)
	fp := startFakePrimary(net, "r0", func(fp *fakePrimary, m transport.Inbound) {
		msg, err := Unmarshal(m.Payload)
		if err != nil {
			return
		}
		if nv, ok := msg.(NewView); ok {
			newViews <- nv
		}
	})
	defer fp.halt()

	// Propose to r1 and r2 only: with the pre-prepare's implicit primary
	// vote both reach a prepare quorum and execute TENTATIVELY, but the
	// commit quorum of 3 can never form — the batch is stuck prepared
	// (its overlay unpromoted) when the view-change timers fire.
	reqs := []Request{req1, req2}
	batch := Batch{View: 0, Seq: 1, Digest: BatchDigest(reqs), Reqs: reqs}
	fp.send(t, "r1", batch)
	fp.send(t, "r2", batch)

	// Observe the client's inbox directly: tentative replies must arrive
	// before the view change, committed replies after it, and every
	// reply for a request — tentative or committed, either view — must
	// carry identical result bytes.
	tentBeforeNV := 0
	sawNewView := false
	results := make(map[uint64][]byte)
	committed := make(map[string]bool) // "replica/reqID" pairs

	deadline := time.After(30 * time.Second)
	for len(committed) < 2*len(reps) {
		select {
		case <-deadline:
			t.Fatalf("timed out: %d/%d committed replies, %d tentative seen",
				len(committed), 2*len(reps), tentBeforeNV)
		case nv := <-newViews:
			if nv.View != 1 {
				t.Fatalf("NEW-VIEW for view %d, want 1", nv.View)
			}
			found := false
			for _, b := range nv.Batches {
				if b.Seq == 1 {
					found = true
					if b.Digest != batch.Digest {
						t.Errorf("batch re-proposed under digest %x, want %x", b.Digest[:4], batch.Digest[:4])
					}
				}
			}
			if !found {
				t.Error("NEW-VIEW does not re-propose the tentatively executed batch")
			}
			sawNewView = true
		case m, ok := <-client.Inbox():
			if !ok {
				t.Fatal("client transport closed")
			}
			msg, err := Unmarshal(m.Payload)
			if err != nil {
				continue
			}
			rep, ok := msg.(Reply)
			if !ok || rep.Replica != m.From || rep.Client != "c" {
				continue
			}
			if prev, seen := results[rep.ReqID]; seen && !bytes.Equal(prev, rep.Result) {
				t.Fatalf("req %d: reply from %s (tentative=%v) diverges from earlier replies",
					rep.ReqID, rep.Replica, rep.Tentative)
			}
			results[rep.ReqID] = rep.Result
			if rep.Tentative {
				if !sawNewView {
					tentBeforeNV++
				}
				continue
			}
			committed[fmt.Sprintf("%s/%d", rep.Replica, rep.ReqID)] = true
		}
	}
	if tentBeforeNV == 0 {
		t.Fatal("no tentative replies observed before the view change — tentative execution never ran")
	}
	if !sawNewView {
		t.Fatal("batch committed without a view change — the adversary scenario did not hold")
	}

	// Exactly-once: the rolled-back overlays must not have leaked a
	// second execution of either request.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reader := NewRemoteSpace(NewClient(net.Endpoint("reader"), ids, 1))
	all, err := reader.RdAll(ctx, tuple.T(tuple.Str("TVC"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("%d TVC tuples, want 2 (lost or double execution): %v", len(all), all)
	}

	// Drive past a checkpoint so every surviving replica publishes a
	// digest over state that includes the re-executed batch.
	for i := int64(0); i < 4; i++ {
		if err := reader.Out(ctx, tuple.T(tuple.Str("PAD"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	for wait := time.Now().Add(10 * time.Second); ; {
		done := 0
		for _, r := range reps {
			if r.Executed() >= 4 {
				done++
			}
		}
		if done == len(reps) {
			break
		}
		if time.Now().After(wait) {
			t.Fatal("replicas never crossed the checkpoint interval")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopAll()

	digests := make([]map[uint64][32]byte, len(reps))
	for i, r := range reps {
		digests[i] = r.CheckpointDigests()
	}
	compared := 0
	for seq, want := range digests[0] {
		for i := 1; i < len(digests); i++ {
			if got, ok := digests[i][seq]; ok {
				compared++
				if got != want {
					t.Errorf("checkpoint %d: replica %s diverges from r1", seq, ids[1+i])
				}
			}
		}
	}
	if compared == 0 {
		t.Fatal("no common checkpoint digests to compare")
	}
}

// TestTentativeReplicaKilledBeforePromotionRecoversToCommittedUnit: a
// durable replica killed while holding an unpromoted tentative overlay
// must recover to the last COMMITTED unit — nothing tentative may have
// reached the WAL.
func TestTentativeReplicaKilledBeforePromotionRecoversToCommittedUnit(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3"}
	net := transport.NewNetwork(7)
	t.Cleanup(net.Close)

	dir := filepath.Join(t.TempDir(), "r1")
	db, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncAlways, AutoCompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewDurableSpaceService(policy.AllowAll(), db, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ReplicaConfig{
		ID: "r1", Replicas: ids, F: 1,
		Transport:         net.Endpoint("r1"),
		Service:           svc,
		ViewChangeTimeout: time.Hour,
		Logger:            testLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			rep.Stop()
		}
	}
	t.Cleanup(stop)

	peers := map[string]*transport.Endpoint{}
	for _, id := range []string{"r0", "r2", "r3"} {
		peers[id] = net.Endpoint(id)
	}
	send := func(from string, msg any) {
		payload, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		_ = peers[from].Send("r1", payload)
	}
	client := net.Endpoint("c")
	// Replicas only vouch for batches whose requests they saw first-hand
	// (verifiableReq): deliver the client's own copy before the batch.
	sendReq := func(req Request) {
		payload, err := Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = client.Send("r1", payload)
	}
	awaitReply := func(reqID uint64, tentative bool) {
		t.Helper()
		deadline := time.After(20 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("no reply for req %d (tentative=%v)", reqID, tentative)
			case m := <-client.Inbox():
				msg, err := Unmarshal(m.Payload)
				if err != nil {
					continue
				}
				if rep, ok := msg.(Reply); ok && rep.ReqID == reqID && rep.Tentative == tentative {
					return
				}
			}
		}
	}
	mkReq := func(id uint64, v int64) Request {
		return Request{Client: "c", ReqID: id, Op: wire.EncodeSpaceOp(wire.SpaceOp{
			Op: policy.OpOut, Entry: tuple.T(tuple.Str("DUR"), tuple.Int(v))})}
	}

	// Unit 1: full three-phase quorum — r1 promotes it into the WAL.
	req1 := mkReq(1, 1)
	sendReq(req1)
	b1 := Batch{View: 0, Seq: 1, Digest: BatchDigest([]Request{req1}), Reqs: []Request{req1}}
	send("r0", b1)
	for _, p := range []string{"r2", "r3"} {
		send(p, Prepare{View: 0, Seq: 1, Digest: b1.Digest, Replica: p})
	}
	for _, p := range []string{"r2", "r3"} {
		send(p, Commit{View: 0, Seq: 1, Digest: b1.Digest, Replica: p})
	}
	awaitReply(1, false)

	// Unit 2: prepares only — r1 executes it tentatively (the tentative
	// reply proves it) but the commit quorum never forms, so the overlay
	// is unpromoted when the crash hits.
	req2 := mkReq(2, 2)
	sendReq(req2)
	b2 := Batch{View: 0, Seq: 2, Digest: BatchDigest([]Request{req2}), Reqs: []Request{req2}}
	send("r0", b2)
	for _, p := range []string{"r2", "r3"} {
		send(p, Prepare{View: 0, Seq: 2, Digest: b2.Digest, Replica: p})
	}
	awaitReply(2, true)

	db.Crash() // SIGKILL stand-in: the disk dies with the overlay unpromoted
	stop()

	db2, err := durable.Open(durable.Options{Dir: dir, AutoCompactBytes: -1})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db2.Close()
	if got := db2.Recovered().UnitSeq; got != 1 {
		t.Fatalf("recovered to unit %d, want 1 (tentative unit leaked into the WAL)", got)
	}
	svc2, err := NewDurableSpaceService(policy.AllowAll(), db2, 2)
	if err != nil {
		t.Fatal(err)
	}
	raw := svc2.Execute("probe", wire.EncodeSpaceOp(wire.SpaceOp{
		Op: policy.OpRdAll, Template: tuple.T(tuple.Str("DUR"), tuple.Any())}))
	res, err := wire.DecodeSpaceResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("recovered %d DUR tuples, want exactly the committed one: %v", len(res.Tuples), res.Tuples)
	}
	if v, _ := res.Tuples[0].Field(1).IntValue(); v != 1 {
		t.Fatalf("recovered tuple %v, want the committed <DUR,1>", res.Tuples[0])
	}
}

// TestClusterSubmitTentativeParity runs one randomized Submit sequence
// against a tentative-execution cluster and a committed-reply cluster,
// for both in-memory engines at shard counts {1, 4, 16}: the clients
// must observe byte-identical results and the clusters must converge on
// byte-identical space snapshots — tentative execution is a latency
// optimization, never an observable semantic change.
func TestClusterSubmitTentativeParity(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, e := range space.Engines() {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/%d", e, shards), func(t *testing.T) {
				mk := func(tentative bool) (*Cluster, []*SpaceService) {
					services := make([]Service, 4)
					svcs := make([]*SpaceService, 4)
					for i := range services {
						svc, err := NewSpaceServiceWithConfig(policy.AllowAll(), e, shards)
						if err != nil {
							t.Fatal(err)
						}
						svcs[i] = svc
						services[i] = svc
					}
					cl, err := NewCluster(1, services, WithTentativeExecution(tentative))
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(cl.Stop)
					return cl, svcs
				}
				tentCl, tentSvcs := mk(true)
				commCl, commSvcs := mk(false)
				tent := NewRemoteSpace(tentCl.Client("p"))
				comm := NewRemoteSpace(commCl.Client("p"))
				// Force reads through ordering so both clusters see the
				// identical ordered request sequence (the read-only fast
				// path's fallback behaviour is timing-dependent).
				tent.OrderedReads, comm.OrderedReads = true, true

				r := rand.New(rand.NewSource(int64(29 + shards)))
				randOp := func() peats.Op {
					entry := tuple.T(tuple.Str(string(rune('A'+r.Intn(2)))), tuple.Int(int64(r.Intn(3))))
					tmpl := entry
					if r.Intn(2) == 0 {
						tmpl = tuple.T(tuple.Any(), tuple.Int(int64(r.Intn(3))))
					}
					switch r.Intn(5) {
					case 0:
						return peats.OutOp(entry)
					case 1:
						return peats.RdpOp(tmpl)
					case 2:
						return peats.InpOp(tmpl)
					case 3:
						return peats.CasOp(tmpl, entry)
					default:
						return peats.RdAllOp(tmpl)
					}
				}
				for i := 0; i < 20; i++ {
					ops := make([]peats.Op, 1+r.Intn(3))
					for k := range ops {
						ops[k] = randOp()
					}
					resA, errA := tent.Submit(ctx, ops...)
					resB, errB := comm.Submit(ctx, ops...)
					a, b := fmt.Sprint(resA, errA), fmt.Sprint(resB, errB)
					if a != b {
						t.Fatalf("step %d: tentative %q vs committed %q", i, a, b)
					}
				}

				snapshot := func(cl *Cluster, svcs []*SpaceService) []byte {
					t.Helper()
					deadline := time.Now().Add(15 * time.Second)
					for time.Now().Before(deadline) {
						var top uint64
						for _, r := range cl.Replicas {
							if e := r.Executed(); e > top {
								top = e
							}
						}
						var snaps [][]byte
						for i, r := range cl.Replicas {
							if r.Executed() >= top {
								snaps = append(snaps, svcs[i].Snapshot())
							}
						}
						if len(snaps) >= 3 {
							agree := true
							for i := 1; i < len(snaps); i++ {
								agree = agree && bytes.Equal(snaps[0], snaps[i])
							}
							if agree {
								return snaps[0]
							}
						}
						time.Sleep(10 * time.Millisecond)
					}
					t.Fatal("cluster never converged on a snapshot")
					return nil
				}
				if !bytes.Equal(snapshot(tentCl, tentSvcs), snapshot(commCl, commSvcs)) {
					t.Fatal("tentative and committed clusters converged on different spaces")
				}
			})
		}
	}
}

// TestSubmitAsyncFlushSharesAgreementBatch: k independent pipelined
// submissions must cost fewer agreement rounds than k sequential
// Submits (the primary packs the simultaneously-arriving requests into
// shared batches), resolve every handle correctly, and execute each
// submission exactly once.
func TestSubmitAsyncFlushSharesAgreementBatch(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}, WithBatchSize(32), WithBatchDelay(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts := NewRemoteSpace(cl.Client("p"))

	const k = 14
	before := cl.Replicas[0].BatchesProposed()
	pends := make([]*PendingSubmit, k)
	for i := range pends {
		pends[i] = ts.SubmitAsync(peats.OutOp(tuple.T(tuple.Str("PIPE"), tuple.Int(int64(i)))))
	}
	// A multi-op unit pipelines like any other submission…
	txp := ts.SubmitAsync(
		peats.OutOp(tuple.T(tuple.Str("PIPE"), tuple.Int(100))),
		peats.OutOp(tuple.T(tuple.Str("PIPE"), tuple.Int(101))),
	)
	// …and a malformed one fails on its own handle without poisoning
	// the flush.
	bad := ts.SubmitAsync()
	if _, err := pends[0].Results(); err == nil {
		t.Error("Results before Flush reported no error")
	}
	if err := ts.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for i, p := range pends {
		res, err := p.Results()
		if err != nil || len(res) != 1 {
			t.Fatalf("pipelined submission %d: %v %v", i, res, err)
		}
	}
	if res, err := txp.Results(); err != nil || len(res) != 2 {
		t.Fatalf("pipelined tx: %v %v", res, err)
	}
	if _, err := bad.Results(); err == nil {
		t.Error("empty submission resolved without error")
	}
	rounds := cl.Replicas[0].BatchesProposed() - before
	if rounds >= k {
		t.Errorf("pipelined flush used %d agreement rounds for %d submissions — no batch sharing", rounds, k+1)
	}

	all, err := ts.RdAll(ctx, tuple.T(tuple.Str("PIPE"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != k+2 {
		t.Fatalf("%d PIPE tuples, want %d (lost or double execution)", len(all), k+2)
	}

	// An idle flush is a no-op.
	if err := ts.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}
