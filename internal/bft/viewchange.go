package bft

// View changes: a backup that suspects the primary (a pending request
// did not commit before its timer fired, or the primary equivocated)
// broadcasts VIEW-CHANGE for the next view with the pre-prepares of the
// requests it prepared. The primary of the new view installs it with
// NEW-VIEW once it holds 2f+1 view-change messages, re-issuing
// pre-prepares for every request prepared by any quorum member; holes in
// the sequence space are filled with no-op requests so execution never
// stalls. A replica that sees f+1 view-changes for a higher view joins
// the change even if its own timer has not fired (the PBFT liveness
// rule).

// armTimer starts (or restarts) the view-change timer.
func (r *Replica) armTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
	r.timer.Reset(r.nextTimeout)
}

func (r *Replica) disarmTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
}

func (r *Replica) onTimeout() {
	if r.inViewChange {
		// The view change itself stalled: move to the next view.
		r.startViewChange(r.view + 1)
		return
	}
	if len(r.pending) == 0 {
		return
	}
	r.logf("request timer expired, suspecting primary %s", r.primary(r.view))
	r.startViewChange(r.view + 1)
}

// preparedProofs collects the pre-prepares of entries prepared above the
// stable checkpoint (the P set of PBFT, with channel MACs standing in
// for per-message proofs).
func (r *Replica) preparedProofs() []PrePrepare {
	var out []PrePrepare
	for seq, e := range r.entries {
		if seq <= r.lowWater || e.prePrepare == nil {
			continue
		}
		if len(e.prepares) >= r.quorum() {
			out = append(out, *e.prePrepare)
		}
	}
	return out
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	r.inViewChange = true
	r.view = newView
	vc := ViewChange{
		NewView:    newView,
		LastStable: r.lowWater,
		Prepared:   r.preparedProofs(),
		Replica:    r.cfg.ID,
	}
	r.logf("starting view change to %d (%d prepared)", newView, len(vc.Prepared))
	r.recordViewChange(vc)
	r.broadcast(vc)
	// Exponential backoff prevents view-change livelock under asynchrony.
	r.nextTimeout *= 2
	r.armTimer()
}

func (r *Replica) onViewChange(vc ViewChange) {
	if vc.NewView <= r.view && !(vc.NewView == r.view && r.inViewChange) {
		return
	}
	r.recordViewChange(vc)

	// Liveness rule: join a view change supported by f+1 replicas even
	// if our own timer has not fired.
	if vc.NewView > r.view && len(r.viewChanges[vc.NewView]) >= r.cfg.F+1 {
		r.startViewChange(vc.NewView)
	}
	r.maybeInstallView(vc.NewView)
}

func (r *Replica) recordViewChange(vc ViewChange) {
	byReplica, ok := r.viewChanges[vc.NewView]
	if !ok {
		byReplica = make(map[string]ViewChange)
		r.viewChanges[vc.NewView] = byReplica
	}
	byReplica[vc.Replica] = vc
}

// maybeInstallView runs at the would-be primary: with 2f+1 view-change
// messages for the target view it composes and broadcasts NEW-VIEW.
func (r *Replica) maybeInstallView(view uint64) {
	if r.primary(view) != r.cfg.ID || view != r.view || !r.inViewChange {
		return
	}
	vcs := r.viewChanges[view]
	if len(vcs) < r.quorum() {
		return
	}

	// Merge the prepared sets: highest-view pre-prepare wins per seq.
	merged := make(map[uint64]PrePrepare)
	maxSeq := r.lowWater
	for _, vc := range vcs {
		for _, pp := range vc.Prepared {
			if pp.Seq <= r.lowWater {
				continue
			}
			if cur, ok := merged[pp.Seq]; !ok || pp.View > cur.View {
				merged[pp.Seq] = pp
			}
			if pp.Seq > maxSeq {
				maxSeq = pp.Seq
			}
		}
	}
	// Re-stamp into the new view, filling holes with no-ops so the
	// execution pipeline cannot stall on a gap.
	pps := make([]PrePrepare, 0, maxSeq-r.lowWater)
	for seq := r.lowWater + 1; seq <= maxSeq; seq++ {
		pp, ok := merged[seq]
		if !ok {
			noop := Request{Client: "", ReqID: 0, Op: nil}
			pp = PrePrepare{View: view, Seq: seq, Digest: noop.Digest(), Req: noop}
		} else {
			pp = PrePrepare{View: view, Seq: seq, Digest: pp.Digest, Req: pp.Req}
		}
		pps = append(pps, pp)
	}

	nv := NewView{View: view, PrePrepares: pps, Replica: r.cfg.ID}
	r.logf("installing view %d with %d pre-prepares", view, len(pps))
	r.broadcast(nv)
	r.installView(view, pps)
}

func (r *Replica) onNewView(nv NewView) {
	if nv.View < r.view || (nv.View == r.view && !r.inViewChange) {
		return
	}
	// Validate the re-issued pre-prepares minimally: correct view and
	// digests matching their requests.
	for _, pp := range nv.PrePrepares {
		if pp.View != nv.View || pp.Req.Digest() != pp.Digest {
			r.logf("invalid NEW-VIEW from %s", nv.Replica)
			return
		}
	}
	r.installView(nv.View, nv.PrePrepares)
	// Backups vote for the re-issued pre-prepares.
	for _, pp := range nv.PrePrepares {
		if pp.Seq <= r.lowWater {
			continue
		}
		prep := Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.cfg.ID}
		r.broadcast(prep)
	}
}

// installView switches to the view and reseeds the log with the
// re-issued pre-prepares.
func (r *Replica) installView(view uint64, pps []PrePrepare) {
	r.view = view
	r.inViewChange = false
	r.nextTimeout = r.cfg.ViewChangeTimeout

	// Reset per-view voting state above the stable checkpoint, keeping
	// executed entries.
	for seq, e := range r.entries {
		if seq > r.lowWater && !e.executed {
			delete(r.entries, seq)
		}
	}
	r.assigned = make(map[[32]byte]uint64)
	r.unverified = make(map[uint64]PrePrepare)
	// Continue assigning after the view's re-issued pre-prepares, not
	// after the stale counter of the previous view — otherwise a hole
	// at an abandoned sequence number would stall execution forever.
	r.seq = r.lowWater
	if r.executed > r.seq {
		r.seq = r.executed
	}
	for _, pp := range pps {
		if pp.Seq > r.seq {
			r.seq = pp.Seq
		}
	}
	for seq := range r.viewChanges {
		if seq <= view {
			delete(r.viewChanges, seq)
		}
	}
	for _, pp := range pps {
		if pp.Seq <= r.lowWater {
			continue
		}
		if e, ok := r.entries[pp.Seq]; ok && e.executed {
			continue
		}
		if !r.verifiable(pp) {
			// A Byzantine view-change participant may have smuggled a
			// forged "prepared" request into the NEW-VIEW; only vouch
			// for requests we saw first-hand (the client retransmits).
			r.unverified[pp.Seq] = pp
			continue
		}
		r.acceptPrePrepare(pp)
		r.tryPrepared(pp.Seq)
	}
	if len(r.pending) > 0 {
		r.armTimer()
		// The new primary re-proposes pending requests that did not make
		// it into the view's pre-prepares; backups wait for the client's
		// retransmission (see onRequest for why replicas never forward).
		if r.isPrimary() {
			for digest, req := range r.pending {
				if _, ok := r.assigned[digest]; ok {
					continue
				}
				r.onRequest(req)
			}
		}
	} else {
		r.disarmTimer()
	}
	r.logf("entered view %d", view)
}
