package bft

import "math/bits"

// View changes: a backup that suspects the primary (a pending request
// did not commit before its timer fired, or the primary equivocated)
// broadcasts VIEW-CHANGE for the next view with the batches it
// prepared. The primary of the new view installs it with NEW-VIEW once
// it holds 2f+1 view-change messages, re-issuing — under their original
// digests — the batches prepared by any quorum member; holes in the
// sequence space are filled with no-op batches so execution never
// stalls. A replica that sees f+1 view-changes for a higher view joins
// the change even if its own timer has not fired (the PBFT liveness
// rule).

// armTimer starts (or restarts) the view-change timer.
func (r *Replica) armTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
	r.timer.Reset(r.nextTimeout)
}

func (r *Replica) disarmTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C:
		default:
		}
	}
}

func (r *Replica) onTimeout() {
	if r.inViewChange {
		// The view change itself stalled: move to the next view.
		r.startViewChange(r.view + 1)
		return
	}
	if len(r.pending) == 0 {
		return
	}
	r.logf("request timer expired, suspecting primary %s", r.primary(r.view))
	r.startViewChange(r.view + 1)
}

// preparedProofs collects the batches of entries prepared above the
// stable checkpoint (the P set of PBFT, with channel MACs standing in
// for per-message proofs).
func (r *Replica) preparedProofs() []Batch {
	var out []Batch
	for seq, e := range r.entries {
		if seq <= r.lowWater || e.batch == nil {
			continue
		}
		if bits.OnesCount64(e.prepares) >= r.quorum() {
			out = append(out, *e.batch)
		}
	}
	return out
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	r.inViewChange = true
	r.view = newView
	r.disarmBatchTimer()
	vc := ViewChange{
		NewView:    newView,
		LastStable: r.lowWater,
		Prepared:   r.preparedProofs(),
		Replica:    r.cfg.ID,
	}
	r.logf("starting view change to %d (%d prepared)", newView, len(vc.Prepared))
	r.recordViewChange(vc)
	r.broadcast(vc)
	// Exponential backoff prevents view-change livelock under asynchrony.
	r.nextTimeout *= 2
	r.armTimer()
}

func (r *Replica) onViewChange(vc ViewChange) {
	if vc.NewView <= r.view && !(vc.NewView == r.view && r.inViewChange) {
		return
	}
	r.recordViewChange(vc)

	// Liveness rule: join a view change supported by f+1 replicas even
	// if our own timer has not fired.
	if vc.NewView > r.view && len(r.viewChanges[vc.NewView]) >= r.cfg.F+1 {
		r.startViewChange(vc.NewView)
	}
	r.maybeInstallView(vc.NewView)
}

func (r *Replica) recordViewChange(vc ViewChange) {
	byReplica, ok := r.viewChanges[vc.NewView]
	if !ok {
		byReplica = make(map[string]ViewChange)
		r.viewChanges[vc.NewView] = byReplica
	}
	byReplica[vc.Replica] = vc
}

// maybeInstallView runs at the would-be primary: with 2f+1 view-change
// messages for the target view it composes and broadcasts NEW-VIEW.
func (r *Replica) maybeInstallView(view uint64) {
	if r.primary(view) != r.cfg.ID || view != r.view || !r.inViewChange {
		return
	}
	vcs := r.viewChanges[view]
	if len(vcs) < r.quorum() {
		return
	}

	// Merge the prepared sets: highest-view batch wins per seq.
	merged := make(map[uint64]Batch)
	maxSeq := r.lowWater
	for _, vc := range vcs {
		for _, b := range vc.Prepared {
			if b.Seq <= r.lowWater {
				continue
			}
			if cur, ok := merged[b.Seq]; !ok || b.View > cur.View {
				merged[b.Seq] = b
			}
			if b.Seq > maxSeq {
				maxSeq = b.Seq
			}
		}
	}
	// Re-stamp into the new view — keeping each prepared batch's
	// original digest and request list, so a batch prepared in view v
	// re-proposes under the same digest in view v+1 — and fill holes
	// with no-ops so the execution pipeline cannot stall on a gap.
	batches := make([]Batch, 0, maxSeq-r.lowWater)
	for seq := r.lowWater + 1; seq <= maxSeq; seq++ {
		b, ok := merged[seq]
		if !ok {
			noopReq := Request{Client: "", ReqID: 0, Op: nil}
			b = Batch{View: view, Seq: seq, Digest: noopReq.Digest(), Reqs: []Request{noopReq}}
		} else {
			b = Batch{View: view, Seq: seq, Digest: b.Digest, Reqs: b.Reqs}
		}
		batches = append(batches, b)
	}

	nv := NewView{View: view, Batches: batches, Replica: r.cfg.ID}
	r.logf("installing view %d with %d batches", view, len(batches))
	r.broadcast(nv)
	r.installView(view, batches)
}

func (r *Replica) onNewView(nv NewView) {
	if nv.View < r.view || (nv.View == r.view && !r.inViewChange) {
		return
	}
	// Validate the re-issued batches minimally: correct view and
	// digests matching their request lists.
	for _, b := range nv.Batches {
		if b.View != nv.View || !b.wellFormed() {
			r.logf("invalid NEW-VIEW from %s", nv.Replica)
			return
		}
	}
	r.installView(nv.View, nv.Batches)
	// Backups vote for the re-issued batches.
	for _, b := range nv.Batches {
		if b.Seq <= r.lowWater {
			continue
		}
		prep := Prepare{View: b.View, Seq: b.Seq, Digest: b.Digest, Replica: r.cfg.ID}
		r.broadcast(prep)
	}
}

// installView switches to the view and reseeds the log with the
// re-issued batches.
func (r *Replica) installView(view uint64, batches []Batch) {
	r.view = view
	r.inViewChange = false
	r.nextTimeout = r.cfg.ViewChangeTimeout

	// A prepared batch the new view does not re-issue must not leave
	// effects behind: discard every tentative overlay before reseeding.
	// Batches that survived re-execute tentatively below, on identical
	// committed state, so surviving results are byte-identical.
	r.rollbackTentative()

	// Reset per-view voting state above the stable checkpoint, keeping
	// executed entries.
	for seq, e := range r.entries {
		if seq > r.lowWater && !e.executed {
			delete(r.entries, seq)
		}
	}
	r.assigned = make(map[[32]byte]uint64)
	r.unverified = make(map[uint64]unverifiedBatch)
	r.queue = nil
	r.queued = make(map[[32]byte]struct{})
	r.disarmBatchTimer()
	// Continue assigning after the view's re-issued batches, not after
	// the stale counter of the previous view — otherwise a hole at an
	// abandoned sequence number would stall execution forever.
	r.seq = r.lowWater
	if r.executed > r.seq {
		r.seq = r.executed
	}
	for _, b := range batches {
		if b.Seq > r.seq {
			r.seq = b.Seq
		}
	}
	for seq := range r.viewChanges {
		if seq <= view {
			delete(r.viewChanges, seq)
		}
	}
	for _, b := range batches {
		if b.Seq <= r.lowWater {
			continue
		}
		if e, ok := r.entries[b.Seq]; ok && e.executed {
			continue
		}
		ds, ok := b.digests()
		if !ok {
			continue // malformed batch cannot be accepted
		}
		if !r.batchVerifiable(b, ds) {
			// A Byzantine view-change participant may have smuggled a
			// forged "prepared" request into the NEW-VIEW; only vouch
			// for requests we saw first-hand (the client retransmits)
			// or that carry a valid authenticator.
			r.unverified[b.Seq] = unverifiedBatch{b: b, ds: ds}
			continue
		}
		r.acceptBatch(b, ds)
		r.tryPrepared(b.Seq)
	}
	r.tryExecute()
	if len(r.pending) > 0 {
		r.armTimer()
		// The new primary re-proposes pending requests that did not make
		// it into the view's batches; backups wait for the client's
		// retransmission (see onRequest for why replicas never forward).
		if r.isPrimary() {
			for digest, req := range r.pending {
				if _, ok := r.assigned[digest]; ok {
					continue
				}
				if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
					continue // already executed in an earlier view
				}
				r.enqueue(req, digest)
			}
			r.flushQueue(true)
		}
	} else {
		r.disarmTimer()
	}
	r.logf("entered view %d", view)
}
