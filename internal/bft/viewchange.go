package bft

import (
	"bytes"
	"sort"

	"peats/internal/auth"
)

// View changes: a backup that suspects the primary (a pending request
// did not commit before its timer fired, or the primary equivocated)
// broadcasts VIEW-CHANGE for the next view with the batches it
// prepared. The primary of the new view installs it with NEW-VIEW once
// it holds 2f+1 view-change messages, re-issuing — under their original
// digests — the batches prepared by any quorum member; holes in the
// sequence space are filled with no-op batches so execution never
// stalls. A replica that sees f+1 view-changes for a higher view joins
// the change even if its own timer has not fired (the PBFT liveness
// rule).

// armTimer starts (or restarts) the view-change timer.
func (r *Replica) armTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C():
		default:
		}
	}
	r.timer.Reset(r.nextTimeout)
}

func (r *Replica) disarmTimer() {
	if !r.timer.Stop() {
		select {
		case <-r.timer.C():
		default:
		}
	}
}

func (r *Replica) onTimeout() {
	if r.inViewChange {
		// The view change itself stalled: move to the next view.
		r.startViewChange(r.view + 1)
		return
	}
	if len(r.pending) == 0 {
		return
	}
	r.logf("request timer expired, suspecting primary %s", r.primary(r.view))
	r.startViewChange(r.view + 1)
}

// preparedProofs collects the batches this replica prepared above the
// stable checkpoint (the P set of PBFT, with channel MACs standing in
// for per-message proofs). It reads the persistent certificate map,
// not the live entries: entries are reseeded on every view install,
// and a proof lost that way could let a later merge replace a batch —
// committed on another replica, acked to its client — with a no-op.
func (r *Replica) preparedProofs() []Batch {
	out := make([]Batch, 0, len(r.prepCerts))
	for seq, b := range r.prepCerts {
		if seq <= r.lowWater {
			continue
		}
		out = append(out, b)
	}
	// Map order would vary the VIEW-CHANGE message bytes run to run.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	r.inViewChange = true
	r.view = newView
	r.disarmBatchTimer()
	r.m.viewChanges.Inc()
	r.emit(EventViewChangeStart, 0, 0)
	vc := ViewChange{
		NewView:    newView,
		LastStable: r.lowWater,
		Prepared:   r.preparedProofs(),
		Replica:    r.cfg.ID,
	}
	r.logf("starting view change to %d (%d prepared)", newView, len(vc.Prepared))
	r.recordViewChange(vc)
	r.broadcast(vc)
	// Exponential backoff prevents view-change livelock under asynchrony.
	r.nextTimeout *= 2
	r.armTimer()
}

// recordedVC is a received VIEW-CHANGE plus the digest of its canonical
// encoding — the value VIEW-CHANGE-ACKs attest to.
type recordedVC struct {
	vc     ViewChange
	digest [32]byte
}

func (r *Replica) onViewChange(vc ViewChange) {
	if vc.NewView <= r.view && !(vc.NewView == r.view && r.inViewChange) {
		return
	}
	r.recordViewChange(vc)

	// Liveness rule: join a view change supported by f+1 replicas even
	// if our own timer has not fired.
	if vc.NewView > r.view && len(r.viewChanges[vc.NewView]) >= r.cfg.F+1 {
		r.startViewChange(vc.NewView)
	}
	r.maybeInstallView(vc.NewView)
}

func (r *Replica) recordViewChange(vc ViewChange) {
	byReplica, ok := r.viewChanges[vc.NewView]
	if !ok {
		byReplica = make(map[string]recordedVC)
		r.viewChanges[vc.NewView] = byReplica
	}
	rec := recordedVC{vc: vc, digest: viewChangeDigest(vc)}
	byReplica[vc.Replica] = rec
	// Confirm the contents to the view's primary: channel MACs protect
	// hops, not the claims inside, so the primary only merges a
	// VIEW-CHANGE whose bytes 2f-1 other replicas also saw (otherwise a
	// faulty sender could feed the primary a fabricated prepared batch
	// that overrides — or conflicts with — a legitimately prepared one).
	if p := r.primary(vc.NewView); p != r.cfg.ID && vc.Replica != r.cfg.ID {
		r.sendTo(p, ViewChangeAck{
			View: vc.NewView, Origin: vc.Replica, Digest: rec.digest, Replica: r.cfg.ID,
		})
	}
}

// viewChangeDigest digests a VIEW-CHANGE's canonical encoding.
func viewChangeDigest(vc ViewChange) [32]byte {
	payload, err := Marshal(vc)
	if err != nil {
		return [32]byte{}
	}
	return auth.Digest(payload)
}

func (r *Replica) onViewChangeAck(a ViewChangeAck) {
	if r.primary(a.View) != r.cfg.ID || a.View < r.view || a.Replica == a.Origin {
		return
	}
	byOrigin, ok := r.vcAcks[a.View]
	if !ok {
		byOrigin = make(map[string]map[[32]byte]map[string]struct{})
		r.vcAcks[a.View] = byOrigin
	}
	byDigest, ok := byOrigin[a.Origin]
	if !ok {
		byDigest = make(map[[32]byte]map[string]struct{})
		byOrigin[a.Origin] = byDigest
	}
	ackers, ok := byDigest[a.Digest]
	if !ok {
		ackers = make(map[string]struct{})
		byDigest[a.Digest] = ackers
	}
	ackers[a.Replica] = struct{}{}
	r.maybeInstallView(a.View)
}

// validatedViewChanges returns the VIEW-CHANGEs of the view whose
// contents are confirmed: the primary's own, and those of any origin
// where 2f-1 other replicas acked the same digest the primary received
// (together with the origin and the primary that is 2f+1 parties, so at
// least one correct replica vouches for the bytes end-to-end).
func (r *Replica) validatedViewChanges(view uint64) map[string]ViewChange {
	out := make(map[string]ViewChange)
	acks := r.vcAcks[view]
	for origin, rec := range r.viewChanges[view] {
		if origin == r.cfg.ID {
			out[origin] = rec.vc
			continue
		}
		need := 2*r.cfg.F - 1
		if len(acks[origin][rec.digest]) >= need {
			out[origin] = rec.vc
		}
	}
	return out
}

// maybeInstallView runs at the would-be primary: with 2f+1 view-change
// messages for the target view it composes and broadcasts NEW-VIEW.
func (r *Replica) maybeInstallView(view uint64) {
	if r.primary(view) != r.cfg.ID || view != r.view || !r.inViewChange {
		return
	}
	vcs := r.validatedViewChanges(view)
	if len(vcs) < r.quorum() {
		return
	}

	// Merge the prepared sets: highest-view batch wins per seq. The
	// drop-floor is groupStable — the highest seq this replica SAW a
	// 2f+1 checkpoint quorum for — never the personal lowWater: after a
	// crash-recovery or state transfer, lowWater covers sequences the
	// group may still need re-issued (a batch committed on one replica
	// and acked to a client can live there), and dropping them here
	// replaces them with no-ops, permanently losing the requests to
	// client-table duplicate suppression once later requests execute.
	floor := r.groupStable
	merged := make(map[uint64]Batch)
	maxSeq := floor
	for _, vc := range vcs {
		for _, b := range vc.Prepared {
			if b.Seq <= floor {
				continue
			}
			// Tie-break equal views on the digest so the merge result
			// does not depend on the view-change map's iteration order
			// (a Byzantine participant can claim a conflicting batch at
			// the same seq and view).
			if cur, ok := merged[b.Seq]; !ok || b.View > cur.View ||
				(b.View == cur.View && bytes.Compare(b.Digest[:], cur.Digest[:]) < 0) {
				merged[b.Seq] = b
			}
			if b.Seq > maxSeq {
				maxSeq = b.Seq
			}
		}
	}
	// Re-stamp into the new view — keeping each prepared batch's
	// original digest and request list, so a batch prepared in view v
	// re-proposes under the same digest in view v+1 — and fill holes
	// with no-ops so the execution pipeline cannot stall on a gap.
	batches := make([]Batch, 0, maxSeq-floor)
	for seq := floor + 1; seq <= maxSeq; seq++ {
		b, ok := merged[seq]
		if !ok {
			noopReq := Request{Client: "", ReqID: 0, Op: nil}
			b = Batch{View: view, Seq: seq, Digest: noopReq.Digest(), Reqs: []Request{noopReq}}
		} else {
			b = Batch{View: view, Seq: seq, Digest: b.Digest, Reqs: b.Reqs}
		}
		batches = append(batches, b)
	}

	nv := NewView{View: view, Batches: batches, Replica: r.cfg.ID}
	r.logf("installing view %d with %d batches", view, len(batches))
	r.broadcast(nv)
	r.installView(view, batches)
}

func (r *Replica) onNewView(nv NewView) {
	if nv.View < r.view || (nv.View == r.view && !r.inViewChange) {
		return
	}
	// Validate the re-issued batches minimally: correct view and
	// digests matching their request lists.
	for _, b := range nv.Batches {
		if b.View != nv.View || !b.wellFormed() {
			r.logf("invalid NEW-VIEW from %s", nv.Replica)
			return
		}
	}
	r.installView(nv.View, nv.Batches)
	// Backups vote for the re-issued batches.
	for _, b := range nv.Batches {
		if b.Seq <= r.lowWater {
			continue
		}
		prep := Prepare{View: b.View, Seq: b.Seq, Digest: b.Digest, Replica: r.cfg.ID}
		r.broadcast(prep)
	}
}

// cpVote is one replica's checkpoint announcement: the state digest it
// published and the view it was operating in when it published it.
type cpVote struct {
	digest [32]byte
	view   uint64
}

// syncViewWithQuorum realigns this replica's view with the view the
// group demonstrably operates in, using a just-assembled checkpoint
// quorum as evidence. Each CHECKPOINT carries its sender's view; among
// the 2f+1 matching voters at most f are Byzantine, so the (f+1)-th
// smallest reported view is bracketed by honest views — it cannot be
// forged past the group in either direction.
//
// Jumping FORWARD covers a replica that missed a NEW-VIEW entirely
// (state transfer only fixes that when the replica is also behind on
// state). Falling BACK covers the runaway straggler: a replica whose
// timer fired alone keeps view-changing into ever-higher views that no
// one joins (the f+1 join rule protects the group from exactly that),
// while the healthy quorum — pending queues empty — never times out.
// Stuck in a view it never installed, the straggler rejects all
// current-view traffic and would stay wedged forever. Rejoining is safe
// precisely because nothing was installed above the target: a replica
// casts votes only in installed views, so it abandons views it never
// spoke in and resumes as if the timeouts had not happened.
// installedView guards the induction — a replica never falls back below
// a view it installed, so a view that committed anything is only ever
// left forward.
func (r *Replica) syncViewWithQuorum(seq uint64, digest [32]byte) {
	views := make([]uint64, 0, r.n)
	for _, v := range r.checkpoints[seq] {
		if v.digest == digest {
			views = append(views, v.view)
		}
	}
	if len(views) < r.quorum() {
		return
	}
	sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
	w := views[r.cfg.F]
	switch {
	case w > r.view:
		// The group moved past us.
	case w == r.view && r.inViewChange:
		// Our own NEW-VIEW was lost; the group installed the view.
	case w < r.view && r.inViewChange && w >= r.installedView:
		// Runaway straggler: rejoin the view the group still works in.
	default:
		return
	}
	r.adoptView(w)
}

// adoptView switches to a view the group is known to operate in,
// without a NEW-VIEW: protocol records of the abandoned views are
// discarded (checkpoints and state transfer re-cover anything that
// committed meanwhile) and the replica resumes as an ordinary backup.
func (r *Replica) adoptView(view uint64) {
	r.logf("adopting group view %d (was %d)", view, r.view)
	r.view = view
	r.installedView = view
	r.inViewChange = false
	r.nextTimeout = r.cfg.ViewChangeTimeout
	r.m.viewsInstalled.Inc()
	r.emit(EventViewInstalled, 0, 0)
	r.rollbackTentative()
	for seq, e := range r.entries {
		if seq > r.lowWater && !e.executed {
			delete(r.entries, seq)
		}
	}
	r.assigned = make(map[[32]byte]uint64)
	r.unverified = make(map[uint64]unverifiedBatch)
	r.queue = nil
	r.queued = make(map[[32]byte]struct{})
	r.disarmBatchTimer()
	if r.executed > r.seq {
		r.seq = r.executed
	}
	for v := range r.viewChanges {
		if v <= view {
			delete(r.viewChanges, v)
		}
	}
	for v := range r.vcAcks {
		if v <= view {
			delete(r.vcAcks, v)
		}
	}
	if len(r.pending) > 0 {
		r.armTimer()
	} else {
		r.disarmTimer()
	}
}

// installView switches to the view and reseeds the log with the
// re-issued batches.
func (r *Replica) installView(view uint64, batches []Batch) {
	r.view = view
	r.installedView = view
	r.inViewChange = false
	r.nextTimeout = r.cfg.ViewChangeTimeout

	// A prepared batch the new view does not re-issue must not leave
	// effects behind: discard every tentative overlay before reseeding.
	// Batches that survived re-execute tentatively below, on identical
	// committed state, so surviving results are byte-identical.
	r.rollbackTentative()

	// Reset per-view voting state above the stable checkpoint, keeping
	// executed entries.
	for seq, e := range r.entries {
		if seq > r.lowWater && !e.executed {
			delete(r.entries, seq)
		}
	}
	r.assigned = make(map[[32]byte]uint64)
	r.unverified = make(map[uint64]unverifiedBatch)
	r.queue = nil
	r.queued = make(map[[32]byte]struct{})
	r.disarmBatchTimer()
	// Continue assigning after the view's re-issued batches, not after
	// the stale counter of the previous view — otherwise a hole at an
	// abandoned sequence number would stall execution forever.
	r.seq = r.lowWater
	if r.executed > r.seq {
		r.seq = r.executed
	}
	for _, b := range batches {
		if b.Seq > r.seq {
			r.seq = b.Seq
		}
	}
	for seq := range r.viewChanges {
		if seq <= view {
			delete(r.viewChanges, seq)
		}
	}
	for v := range r.vcAcks {
		if v <= view {
			delete(r.vcAcks, v)
		}
	}
	for _, b := range batches {
		if b.Seq <= r.lowWater {
			continue
		}
		if e, ok := r.entries[b.Seq]; ok && e.executed {
			// Already executed here, but a peer that has not may need a
			// fresh commit quorum: its vote records died with the old
			// view, and an executed replica never re-enters the prepare
			// phase (tryPrepared short-circuits on sentCommit). Re-issue
			// our commit vote — onCommit accepts commits across views —
			// so stragglers can finish batches the group already settled.
			// Only for the same digest we executed: a NEW-VIEW no-op
			// filler at an executed sequence must not collect our vote
			// for conflicting contents.
			if e.batch != nil && e.batch.Digest == b.Digest {
				r.broadcast(Commit{View: view, Seq: b.Seq, Digest: b.Digest, Replica: r.cfg.ID})
			}
			continue
		}
		ds, ok := b.digests()
		if !ok {
			continue // malformed batch cannot be accepted
		}
		if !r.batchVerifiable(b, ds) {
			// A Byzantine view-change participant may have smuggled a
			// forged "prepared" request into the NEW-VIEW; only vouch
			// for requests we saw first-hand (the client retransmits)
			// or that carry a valid authenticator.
			r.unverified[b.Seq] = unverifiedBatch{b: b, ds: ds}
			continue
		}
		r.acceptBatch(b, ds)
		r.tryPrepared(b.Seq)
	}
	r.tryExecute()
	if len(r.pending) > 0 {
		r.armTimer()
		// The new primary re-proposes pending requests that did not make
		// it into the view's batches; backups wait for the client's
		// retransmission (see onRequest for why replicas never forward).
		if r.isPrimary() {
			// Deterministic proposal order for the carried-over requests.
			digests := make([][32]byte, 0, len(r.pending))
			for digest := range r.pending {
				digests = append(digests, digest)
			}
			sort.Slice(digests, func(i, j int) bool {
				return bytes.Compare(digests[i][:], digests[j][:]) < 0
			})
			for _, digest := range digests {
				req := r.pending[digest]
				if _, ok := r.assigned[digest]; ok {
					continue
				}
				if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
					continue // already executed in an earlier view
				}
				r.enqueue(req, digest)
			}
			r.flushQueue(true)
		}
	} else {
		r.disarmTimer()
	}
	r.logf("entered view %d", view)
}
