package bft

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"peats/internal/auth"
	"peats/internal/consensus"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/transport"
	"peats/internal/tuple"
	"peats/internal/universal"
)

// startTCPCluster runs a 3f+1 replica group over real TCP loopback with
// HMAC-authenticated frames — the cmd/peats-server deployment, in-process.
func startTCPCluster(t *testing.T, f int, pol policy.Policy, clients []string) ([]string, map[string]string, []byte) {
	t.Helper()
	n := 3*f + 1
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("r%d", i)
	}
	master := []byte("tcp-test-master")
	everyone := append(append([]string{}, ids...), clients...)

	addrs := make(map[string]string)
	var trs []*transport.TCP
	for _, id := range ids {
		kr := auth.NewKeyringFromMaster(master, id, everyone)
		tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
		if err != nil {
			t.Fatal(err)
		}
		trs = append(trs, tr)
		addrs[id] = tr.Addr()
	}
	for _, tr := range trs {
		for id, addr := range addrs {
			tr.SetPeerAddr(id, addr)
		}
	}
	var reps []*Replica
	for i, id := range ids {
		rep, err := NewReplica(ReplicaConfig{
			ID: id, Replicas: ids, F: f,
			Transport: trs[i],
			Service:   NewSpaceService(pol),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		reps = append(reps, rep)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
		for _, tr := range trs {
			_ = tr.Close()
		}
	})
	return ids, addrs, master
}

func tcpClient(t *testing.T, ids []string, addrs map[string]string, master []byte, id string, f int) *RemoteSpace {
	t.Helper()
	kr := auth.NewKeyringFromMaster(master, id, ids)
	tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return NewRemoteSpace(NewClient(tr, ids, f))
}

func TestReplicatedOverTCP(t *testing.T) {
	procs := []policy.ProcessID{"p0", "p1", "p2", "p3"}
	pol := consensus.StrongPolicy(procs, 1, []int64{0, 1})
	ids, addrs, master := startTCPCluster(t, 1, pol, []string{"p0", "p1", "p2", "p3"})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Policy enforced across TCP: an impersonated proposal is denied by
	// every replica's monitor.
	evil := tcpClient(t, ids, addrs, master, "p3", 1)
	err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p0"), tuple.Int(1)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Fatalf("impersonation over TCP err = %v, want denial", err)
	}

	// Strong consensus across TCP clients.
	type result struct {
		v   int64
		err error
	}
	results := make(chan result, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			me := procs[i]
			ts := tcpClient(t, ids, addrs, master, string(me), 1)
			c, err := consensus.NewStrong(ts, consensus.StrongConfig{
				Self: me, Procs: procs, T: 1, Domain: []int64{0, 1},
				PollInterval: 5 * time.Millisecond,
			})
			if err != nil {
				results <- result{err: err}
				return
			}
			v, err := c.Propose(ctx, 1)
			results <- result{v: v, err: err}
		}(i)
	}
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.v != 1 {
			t.Errorf("decided %d, want 1", r.v)
		}
	}
}

func TestUniversalConstructionOverReplicatedSpace(t *testing.T) {
	// The wait-free universal construction (Alg. 4) over the replicated
	// PEATS: a FIFO queue emulated on top of a BFT cluster — the full
	// stack of the paper in one test.
	procs := []policy.ProcessID{"u0", "u1"}
	pol := universal.WaitFreePolicy(procs)
	services := []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}
	cl, err := NewCluster(1, services)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	mk := func(id policy.ProcessID) *universal.WaitFree {
		ts := NewRemoteSpace(cl.Client(string(id)))
		u, err := universal.NewWaitFree(ts, universal.QueueType{}, id, procs)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	producer, consumer := mk("u0"), mk("u1")
	for i := int64(1); i <= 3; i++ {
		if _, err := producer.Invoke(ctx, universal.Enqueue(i*7)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	for i := int64(1); i <= 3; i++ {
		r, err := consumer.Invoke(ctx, universal.Dequeue())
		if err != nil {
			t.Fatalf("dequeue: %v", err)
		}
		if v, ok := universal.ReplyValue(r); !ok || v != i*7 {
			t.Errorf("dequeue #%d = %d, want %d", i, v, i*7)
		}
	}
	r, err := consumer.Invoke(ctx, universal.Dequeue())
	if err != nil {
		t.Fatal(err)
	}
	if !universal.ReplyEmpty(r) {
		t.Error("queue should be empty")
	}
}
