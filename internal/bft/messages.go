// Package bft implements the replication substrate of Fig. 2: a
// PBFT-style Byzantine fault-tolerant state machine replication
// protocol, built from scratch on the transport and auth packages, that
// turns the deterministic PEATS-plus-reference-monitor state machine
// into a single dependable linearizable shared object for an open set
// of (possibly Byzantine) client processes.
//
// The protocol follows Castro-Liskov PBFT with MAC-authenticated
// channels: n = 3f+1 replicas, a primary per view, the three-phase
// pre-prepare/prepare/commit agreement with 2f+1 quorums, periodic
// checkpoints with state transfer for laggards, view changes driven by
// request timers, and clients that accept a result once f+1 distinct
// replicas report the same bytes.
//
// Simplifications relative to the full PBFT paper, none of which affect
// the experiments: view-change messages carry the pre-prepares of
// prepared requests directly (channel MACs stand in for the per-message
// proof sets), and the low/high water mark window is a fixed constant.
package bft

import (
	"fmt"

	"peats/internal/auth"
	"peats/internal/wire"
)

// MsgType discriminates protocol messages on the wire.
type MsgType uint8

// Protocol message types.
const (
	MsgRequest MsgType = iota + 1
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgReply
	MsgCheckpoint
	MsgViewChange
	MsgNewView
	MsgStateRequest
	MsgStateResponse
)

// String returns the PBFT name of the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgPrePrepare:
		return "PRE-PREPARE"
	case MsgPrepare:
		return "PREPARE"
	case MsgCommit:
		return "COMMIT"
	case MsgReply:
		return "REPLY"
	case MsgCheckpoint:
		return "CHECKPOINT"
	case MsgViewChange:
		return "VIEW-CHANGE"
	case MsgNewView:
		return "NEW-VIEW"
	case MsgStateRequest:
		return "STATE-REQUEST"
	case MsgStateResponse:
		return "STATE-RESPONSE"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// Request is a client operation submitted for ordering.
type Request struct {
	Client string
	ReqID  uint64
	Op     []byte
}

// Digest returns the canonical digest identifying the request.
func (r Request) Digest() [32]byte { return auth.Digest(encodeRequest(r)) }

func encodeRequest(r Request) []byte {
	w := wire.NewWriter()
	w.String(r.Client)
	w.Uvarint(r.ReqID)
	w.Bytes(r.Op)
	return w.Data()
}

func decodeRequest(r *wire.Reader) Request {
	return Request{Client: r.String(), ReqID: r.Uvarint(), Op: r.Bytes()}
}

// PrePrepare is the primary's ordering proposal for a request.
type PrePrepare struct {
	View   uint64
	Seq    uint64
	Digest [32]byte
	Req    Request
}

// Prepare is a replica's vote that it accepted a pre-prepare.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica string
}

// Commit is a replica's vote that the request is prepared network-wide.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica string
}

// Reply carries one replica's execution result back to the client.
type Reply struct {
	View    uint64
	Client  string
	ReqID   uint64
	Replica string
	Result  []byte
}

// Checkpoint announces a replica's state digest at a checkpoint.
type Checkpoint struct {
	Seq     uint64
	Digest  [32]byte
	Replica string
}

// ViewChange asks to install view NewView. Prepared carries the
// pre-prepares of requests the sender prepared above its stable
// checkpoint.
type ViewChange struct {
	NewView    uint64
	LastStable uint64
	Prepared   []PrePrepare
	Replica    string
}

// NewView installs a view: the new primary re-issues pre-prepares for
// every request prepared by any member of the view-change quorum.
type NewView struct {
	View        uint64
	PrePrepares []PrePrepare
	Replica     string
}

// StateRequest asks a peer for the checkpointed state at Seq.
type StateRequest struct {
	Seq     uint64
	Replica string
}

// StateResponse carries a checkpointed state snapshot.
type StateResponse struct {
	Seq      uint64
	View     uint64
	Snapshot []byte
	Replica  string
}

// Marshal encodes any protocol message with its type tag.
func Marshal(msg any) ([]byte, error) {
	w := wire.NewWriter()
	switch m := msg.(type) {
	case Request:
		w.Byte(byte(MsgRequest))
		w.Bytes(encodeRequest(m))
	case PrePrepare:
		w.Byte(byte(MsgPrePrepare))
		encodePrePrepare(w, m)
	case Prepare:
		w.Byte(byte(MsgPrepare))
		encodeVote(w, m.View, m.Seq, m.Digest, m.Replica)
	case Commit:
		w.Byte(byte(MsgCommit))
		encodeVote(w, m.View, m.Seq, m.Digest, m.Replica)
	case Reply:
		w.Byte(byte(MsgReply))
		w.Uvarint(m.View)
		w.String(m.Client)
		w.Uvarint(m.ReqID)
		w.String(m.Replica)
		w.Bytes(m.Result)
	case Checkpoint:
		w.Byte(byte(MsgCheckpoint))
		w.Uvarint(m.Seq)
		w.Bytes(m.Digest[:])
		w.String(m.Replica)
	case ViewChange:
		w.Byte(byte(MsgViewChange))
		w.Uvarint(m.NewView)
		w.Uvarint(m.LastStable)
		w.Uvarint(uint64(len(m.Prepared)))
		for _, pp := range m.Prepared {
			encodePrePrepare(w, pp)
		}
		w.String(m.Replica)
	case NewView:
		w.Byte(byte(MsgNewView))
		w.Uvarint(m.View)
		w.Uvarint(uint64(len(m.PrePrepares)))
		for _, pp := range m.PrePrepares {
			encodePrePrepare(w, pp)
		}
		w.String(m.Replica)
	case StateRequest:
		w.Byte(byte(MsgStateRequest))
		w.Uvarint(m.Seq)
		w.String(m.Replica)
	case StateResponse:
		w.Byte(byte(MsgStateResponse))
		w.Uvarint(m.Seq)
		w.Uvarint(m.View)
		w.Bytes(m.Snapshot)
		w.String(m.Replica)
	default:
		return nil, fmt.Errorf("bft: cannot marshal %T", msg)
	}
	return w.Data(), nil
}

// Unmarshal decodes a protocol message.
func Unmarshal(b []byte) (any, error) {
	r := wire.NewReader(b)
	t := MsgType(r.Byte())
	var msg any
	switch t {
	case MsgRequest:
		body := wire.NewReader(r.Bytes())
		req := decodeRequest(body)
		body.ExpectEOF()
		if err := body.Err(); err != nil {
			return nil, fmt.Errorf("bft: decode request: %w", err)
		}
		msg = req
	case MsgPrePrepare:
		msg = decodePrePrepare(r)
	case MsgPrepare:
		v, s, d, rep := decodeVote(r)
		msg = Prepare{View: v, Seq: s, Digest: d, Replica: rep}
	case MsgCommit:
		v, s, d, rep := decodeVote(r)
		msg = Commit{View: v, Seq: s, Digest: d, Replica: rep}
	case MsgReply:
		msg = Reply{
			View: r.Uvarint(), Client: r.String(), ReqID: r.Uvarint(),
			Replica: r.String(), Result: r.Bytes(),
		}
	case MsgCheckpoint:
		cp := Checkpoint{Seq: r.Uvarint()}
		copy(cp.Digest[:], r.BytesView())
		cp.Replica = r.String()
		msg = cp
	case MsgViewChange:
		vc := ViewChange{NewView: r.Uvarint(), LastStable: r.Uvarint()}
		count := r.Uvarint()
		if count > maxBatch {
			return nil, fmt.Errorf("bft: view-change with %d pre-prepares", count)
		}
		for i := uint64(0); i < count; i++ {
			vc.Prepared = append(vc.Prepared, decodePrePrepare(r))
		}
		vc.Replica = r.String()
		msg = vc
	case MsgNewView:
		nv := NewView{View: r.Uvarint()}
		count := r.Uvarint()
		if count > maxBatch {
			return nil, fmt.Errorf("bft: new-view with %d pre-prepares", count)
		}
		for i := uint64(0); i < count; i++ {
			nv.PrePrepares = append(nv.PrePrepares, decodePrePrepare(r))
		}
		nv.Replica = r.String()
		msg = nv
	case MsgStateRequest:
		msg = StateRequest{Seq: r.Uvarint(), Replica: r.String()}
	case MsgStateResponse:
		msg = StateResponse{Seq: r.Uvarint(), View: r.Uvarint(), Snapshot: r.Bytes(), Replica: r.String()}
	default:
		return nil, fmt.Errorf("bft: unknown message type %d", t)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bft: decode %v: %w", t, err)
	}
	return msg, nil
}

// maxBatch bounds decoded pre-prepare lists so malformed messages cannot
// force huge allocations.
const maxBatch = 1 << 16

func encodePrePrepare(w *wire.Writer, pp PrePrepare) {
	w.Uvarint(pp.View)
	w.Uvarint(pp.Seq)
	w.Bytes(pp.Digest[:])
	w.Bytes(encodeRequest(pp.Req))
}

func decodePrePrepare(r *wire.Reader) PrePrepare {
	pp := PrePrepare{View: r.Uvarint(), Seq: r.Uvarint()}
	copy(pp.Digest[:], r.BytesView())
	body := wire.NewReader(r.Bytes())
	pp.Req = decodeRequest(body)
	return pp
}

func encodeVote(w *wire.Writer, view, seq uint64, digest [32]byte, replica string) {
	w.Uvarint(view)
	w.Uvarint(seq)
	w.Bytes(digest[:])
	w.String(replica)
}

func decodeVote(r *wire.Reader) (view, seq uint64, digest [32]byte, replica string) {
	view = r.Uvarint()
	seq = r.Uvarint()
	copy(digest[:], r.BytesView())
	replica = r.String()
	return
}
