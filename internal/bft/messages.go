// Package bft implements the replication substrate of Fig. 2: a
// PBFT-style Byzantine fault-tolerant state machine replication
// protocol, built from scratch on the transport and auth packages, that
// turns the deterministic PEATS-plus-reference-monitor state machine
// into a single dependable linearizable shared object for an open set
// of (possibly Byzantine) client processes.
//
// The protocol follows Castro-Liskov PBFT with MAC-authenticated
// channels: n = 3f+1 replicas, a primary per view, the three-phase
// pre-prepare/prepare/commit agreement with 2f+1 quorums, periodic
// checkpoints with state transfer for laggards, view changes driven by
// request timers, and clients that accept a result once 2f+1 distinct
// replicas report the same bytes (the threshold that keeps the
// read-only optimization linearizable; see Client).
//
// Two Castro-Liskov throughput optimizations are implemented on top of
// the base protocol:
//
//   - Batching and pipelining: the unit of agreement is a Batch — an
//     ordered list of client requests under a single digest and
//     sequence number. The primary accumulates concurrently arriving
//     requests and assigns sequence numbers without waiting for earlier
//     batches to commit, pipelined up to the water-mark window.
//     A single-request batch travels as the classic PRE-PREPARE.
//
//   - Read-only fast path: clients send non-mutating operations as
//     READ-ONLY messages; replicas execute them against their current
//     committed state without ordering and reply with a read-only flag;
//     the client accepts once 2f+1 distinct replicas report
//     byte-identical results, falling back to ordered execution
//     otherwise.
//
// Simplifications relative to the full PBFT paper, none of which affect
// the experiments: view-change messages carry the batches of prepared
// requests directly (channel MACs stand in for the per-message
// proof sets), and the low/high water mark window is a fixed constant.
package bft

import (
	"encoding/binary"
	"fmt"

	"peats/internal/auth"
	"peats/internal/wire"
)

// MsgType discriminates protocol messages on the wire.
type MsgType uint8

// Protocol message types.
const (
	MsgRequest MsgType = iota + 1
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgReply
	MsgCheckpoint
	MsgViewChange
	MsgNewView
	MsgStateRequest
	MsgStateResponse
	MsgBatch
	MsgReadOnly
	MsgSeqRequest
	MsgViewChangeAck
)

// String returns the PBFT name of the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgPrePrepare:
		return "PRE-PREPARE"
	case MsgPrepare:
		return "PREPARE"
	case MsgCommit:
		return "COMMIT"
	case MsgReply:
		return "REPLY"
	case MsgCheckpoint:
		return "CHECKPOINT"
	case MsgViewChange:
		return "VIEW-CHANGE"
	case MsgNewView:
		return "NEW-VIEW"
	case MsgStateRequest:
		return "STATE-REQUEST"
	case MsgStateResponse:
		return "STATE-RESPONSE"
	case MsgBatch:
		return "BATCH"
	case MsgReadOnly:
		return "READ-ONLY"
	case MsgSeqRequest:
		return "SEQ-REQUEST"
	case MsgViewChangeAck:
		return "VIEW-CHANGE-ACK"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// Request is a client operation submitted for ordering.
//
// Auth is an optional authenticator vector: Auth[i] is the HMAC of the
// request digest under the pairwise key the client shares with the i-th
// replica of the group. It lets a backup vouch for a request it only
// saw inside the primary's batch (the client sent it to the primary
// alone), closing the forgery window that hop-by-hop channel MACs leave
// open. Requests without a vector fall back to first-hand verification
// (the client broadcasts and retransmits). The vector is excluded from
// the digest: the digest identifies the operation, not its transport
// proof.
type Request struct {
	Client string
	ReqID  uint64
	Op     []byte
	Auth   [][]byte
	// Group names the replica group the request is addressed to in a
	// partitioned deployment. It is part of the digest, so a request
	// MAC-bound to one group cannot be replayed against another;
	// replicas configured with a group identity drop requests addressed
	// elsewhere. Empty in single-group deployments.
	Group string
}

// Digest returns the canonical digest identifying the request. The
// encoding is assembled in a stack buffer: digests are recomputed on
// every hot-path hop, so this must not allocate for typical requests.
func (r Request) Digest() [32]byte {
	var arr [192]byte
	buf := appendRequest(arr[:0], r)
	return auth.Digest(buf)
}

// appendRequest appends the canonical (digest) encoding: the
// authenticator vector is deliberately not part of it.
func appendRequest(buf []byte, r Request) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r.Client)))
	buf = append(buf, r.Client...)
	buf = binary.AppendUvarint(buf, r.ReqID)
	buf = binary.AppendUvarint(buf, uint64(len(r.Op)))
	buf = append(buf, r.Op...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Group)))
	buf = append(buf, r.Group...)
	return buf
}

// encodeRequest is the canonical (digest) encoding as a fresh slice.
func encodeRequest(r Request) []byte {
	return appendRequest(make([]byte, 0, 64+len(r.Client)+len(r.Op)), r)
}

func decodeRequest(r *wire.Reader) Request {
	return Request{Client: r.String(), ReqID: r.Uvarint(), Op: r.Bytes(), Group: r.String()}
}

// maxAuth bounds decoded authenticator vectors (one entry per replica).
const maxAuth = 1 << 10

// encodeRequestWire writes the full wire form: canonical encoding plus
// the authenticator vector.
func encodeRequestWire(w *wire.Writer, r Request) {
	w.Bytes(encodeRequest(r))
	w.Uvarint(uint64(len(r.Auth)))
	for _, a := range r.Auth {
		w.Bytes(a)
	}
}

func decodeRequestWire(r *wire.Reader) (Request, error) {
	// The nested body is parsed in place: decodeRequest copies what it
	// retains (Op, Client), so no defensive copy of the body is needed.
	body := wire.NewReader(r.BytesView())
	req := decodeRequest(body)
	body.ExpectEOF()
	if err := body.Err(); err != nil {
		return Request{}, fmt.Errorf("decode request: %w", err)
	}
	count := r.Uvarint()
	if count > maxAuth {
		return Request{}, fmt.Errorf("request with %d authenticators", count)
	}
	if count > 0 {
		// The authenticators alias the receiver-owned payload: each
		// replica ever reads only its own slot, so copying the whole
		// vector per hop would be pure overhead.
		req.Auth = make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			req.Auth = append(req.Auth, r.BytesView())
		}
	}
	return req, nil
}

// PrePrepare is the primary's ordering proposal for a single request —
// the wire form of a one-request batch.
type PrePrepare struct {
	View   uint64
	Seq    uint64
	Digest [32]byte
	Req    Request
}

// Batch is the unit of agreement: an ordered list of client requests
// proposed under a single digest and sequence number. A one-request
// batch has the digest of its request (and travels as a PRE-PREPARE);
// larger batches are digested over the concatenated request encodings.
type Batch struct {
	View   uint64
	Seq    uint64
	Digest [32]byte
	Reqs   []Request
}

// BatchDigest returns the canonical digest of an ordered request list:
// the digest of the concatenated request digests. For a single request
// it coincides with the request digest, so the PRE-PREPARE and BATCH
// forms of the same proposal agree.
func BatchDigest(reqs []Request) [32]byte {
	ds := make([][32]byte, len(reqs))
	for i, r := range reqs {
		ds[i] = r.Digest()
	}
	return batchDigestFrom(ds)
}

// batchDomain separates the multi-request batch-digest preimage from
// the request-digest preimage space. A request preimage begins with a
// canonical uvarint (the client-name length), and no canonical uvarint
// byte can be 0xff in terminal position — so no encodeRequest output
// ever starts with 0xff 0x00, and a crafted request can never collide
// with a batch digest (which would let a Byzantine primary smuggle two
// different proposals past the same-digest equivocation check).
var batchDomain = []byte{0xff, 0x00, 'p', 'e', 'a', 't', 's', '-', 'b', 'a', 't', 'c', 'h'}

// batchDigestFrom folds precomputed per-request digests into the batch
// digest — every consumer needs the request digests anyway, so the
// batch digest costs one extra hash over 32·k bytes instead of
// re-encoding every request.
func batchDigestFrom(ds [][32]byte) [32]byte {
	if len(ds) == 1 {
		return ds[0]
	}
	buf := make([]byte, 0, 32+33*len(ds))
	buf = append(buf, batchDomain...)
	buf = binary.AppendUvarint(buf, uint64(len(ds)))
	for _, d := range ds {
		buf = binary.AppendUvarint(buf, 32)
		buf = append(buf, d[:]...)
	}
	return auth.Digest(buf)
}

// asBatch lifts a pre-prepare into the batch form the replica works on.
func (pp PrePrepare) asBatch() Batch {
	return Batch{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Reqs: []Request{pp.Req}}
}

// digests returns the per-request digests of the batch and whether the
// batch digest matches its contents.
func (b Batch) digests() ([][32]byte, bool) {
	if len(b.Reqs) == 0 {
		return nil, false
	}
	ds := make([][32]byte, len(b.Reqs))
	for i, r := range b.Reqs {
		ds[i] = r.Digest()
	}
	return ds, batchDigestFrom(ds) == b.Digest
}

// wellFormed reports whether the batch's digest matches its contents.
func (b Batch) wellFormed() bool {
	_, ok := b.digests()
	return ok
}

// Prepare is a replica's vote that it accepted a batch proposal.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica string
}

// Commit is a replica's vote that the batch is prepared network-wide.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  [32]byte
	Replica string
}

// Reply carries one replica's execution result back to the client.
// ReadOnly marks results of the unordered read-only fast path; clients
// never mix read-only and ordered replies in one vote (a lagging
// replica's read-only reply must not help an ordered quorum).
// Tentative marks results executed at *prepared*, before the commit
// quorum (Castro–Liskov tentative execution); clients likewise keep
// tentative and committed replies in separate vote camps — 2f+1
// matching tentative replies prove the batch prepared at 2f+1 replicas,
// which is exactly what makes it survive any view change.
type Reply struct {
	View      uint64
	Client    string
	ReqID     uint64
	Replica   string
	Result    []byte
	ReadOnly  bool
	Tentative bool
	// Group echoes the replica's group identity in a partitioned
	// deployment; empty otherwise.
	Group string
	// Attest, when present, is the replica's signature over
	// wire.AttestPayload(Group, Result): transferable evidence, beyond
	// the pairwise channel MAC, that this replica reported this agreed
	// result. Replies to partition 2PC operations carry it so clients
	// can assemble vote certificates. It is deliberately outside Result
	// — clients vote on result bytes, and per-replica signatures must
	// not split the vote.
	Attest []byte
}

// ReadOnly asks a replica to execute a non-mutating operation against
// its current committed state, without ordering. The reply is only
// meaningful in a 2f+1 byte-identical vote at the client.
type ReadOnly struct {
	Client string
	ReqID  uint64
	Op     []byte
}

// Checkpoint announces a replica's state digest at a checkpoint. View
// is the view the sender was operating in: a quorum of matching
// checkpoints doubles as Byzantine-robust evidence of the view the
// group is actively working in (see syncViewWithQuorum).
type Checkpoint struct {
	Seq     uint64
	View    uint64
	Digest  [32]byte
	Replica string
}

// ViewChange asks to install view NewView. Prepared carries the
// batches the sender prepared above its stable checkpoint.
type ViewChange struct {
	NewView    uint64
	LastStable uint64
	Prepared   []Batch
	Replica    string
}

// ViewChangeAck confirms to the new primary that the sender received
// Origin's VIEW-CHANGE for View with the given content digest (the
// digest of the message's canonical encoding). Channel MACs only
// authenticate hops, so a VIEW-CHANGE's prepared-batch claims reach the
// primary unprotected end-to-end; the primary uses a VIEW-CHANGE only
// once 2f-1 other replicas acknowledge byte-identical contents, which
// keeps one faulty replica from smuggling a fabricated prepared batch
// into the NEW-VIEW merge (the PBFT MAC-authenticated view-change ack).
type ViewChangeAck struct {
	View    uint64
	Origin  string
	Digest  [32]byte
	Replica string
}

// NewView installs a view: the new primary re-issues, under their
// original digests, the batches prepared by any member of the
// view-change quorum.
type NewView struct {
	View    uint64
	Batches []Batch
	Replica string
}

// SeqRequest asks peers to re-send their commit vote for a sequence
// number the sender is stuck on (its protocol messages were lost —
// the asynchronous network drops messages and votes are not otherwise
// retransmitted). Client request retransmissions trigger it.
type SeqRequest struct {
	Seq     uint64
	Replica string
}

// StateRequest asks a peer for the checkpointed state at Seq.
type StateRequest struct {
	Seq     uint64
	Replica string
}

// StateResponse carries a checkpointed state snapshot.
type StateResponse struct {
	Seq      uint64
	View     uint64
	Snapshot []byte
	Replica  string
}

// Marshal encodes any protocol message with its type tag.
func Marshal(msg any) ([]byte, error) {
	w := wire.NewWriter()
	switch m := msg.(type) {
	case Request:
		w.Byte(byte(MsgRequest))
		encodeRequestWire(w, m)
	case PrePrepare:
		w.Byte(byte(MsgPrePrepare))
		encodePrePrepare(w, m)
	case Batch:
		w.Byte(byte(MsgBatch))
		encodeBatch(w, m)
	case Prepare:
		w.Byte(byte(MsgPrepare))
		encodeVote(w, m.View, m.Seq, m.Digest, m.Replica)
	case Commit:
		w.Byte(byte(MsgCommit))
		encodeVote(w, m.View, m.Seq, m.Digest, m.Replica)
	case Reply:
		w.Byte(byte(MsgReply))
		w.Uvarint(m.View)
		w.String(m.Client)
		w.Uvarint(m.ReqID)
		w.String(m.Replica)
		w.Bytes(m.Result)
		w.Bool(m.ReadOnly)
		w.Bool(m.Tentative)
		w.String(m.Group)
		w.Bytes(m.Attest)
	case ReadOnly:
		w.Byte(byte(MsgReadOnly))
		w.String(m.Client)
		w.Uvarint(m.ReqID)
		w.Bytes(m.Op)
	case Checkpoint:
		w.Byte(byte(MsgCheckpoint))
		w.Uvarint(m.Seq)
		w.Uvarint(m.View)
		w.Bytes(m.Digest[:])
		w.String(m.Replica)
	case ViewChange:
		w.Byte(byte(MsgViewChange))
		w.Uvarint(m.NewView)
		w.Uvarint(m.LastStable)
		w.Uvarint(uint64(len(m.Prepared)))
		for _, b := range m.Prepared {
			encodeBatch(w, b)
		}
		w.String(m.Replica)
	case NewView:
		w.Byte(byte(MsgNewView))
		w.Uvarint(m.View)
		w.Uvarint(uint64(len(m.Batches)))
		for _, b := range m.Batches {
			encodeBatch(w, b)
		}
		w.String(m.Replica)
	case SeqRequest:
		w.Byte(byte(MsgSeqRequest))
		w.Uvarint(m.Seq)
		w.String(m.Replica)
	case ViewChangeAck:
		w.Byte(byte(MsgViewChangeAck))
		w.Uvarint(m.View)
		w.String(m.Origin)
		w.Bytes(m.Digest[:])
		w.String(m.Replica)
	case StateRequest:
		w.Byte(byte(MsgStateRequest))
		w.Uvarint(m.Seq)
		w.String(m.Replica)
	case StateResponse:
		w.Byte(byte(MsgStateResponse))
		w.Uvarint(m.Seq)
		w.Uvarint(m.View)
		w.Bytes(m.Snapshot)
		w.String(m.Replica)
	default:
		return nil, fmt.Errorf("bft: cannot marshal %T", msg)
	}
	return w.Data(), nil
}

// Unmarshal decodes a protocol message.
func Unmarshal(b []byte) (any, error) {
	r := wire.NewReader(b)
	t := MsgType(r.Byte())
	var msg any
	switch t {
	case MsgRequest:
		req, err := decodeRequestWire(r)
		if err != nil {
			return nil, fmt.Errorf("bft: %w", err)
		}
		msg = req
	case MsgPrePrepare:
		pp, err := decodePrePrepare(r)
		if err != nil {
			return nil, fmt.Errorf("bft: %w", err)
		}
		msg = pp
	case MsgBatch:
		bt, err := decodeBatch(r)
		if err != nil {
			return nil, fmt.Errorf("bft: %w", err)
		}
		msg = bt
	case MsgPrepare:
		v, s, d, rep := decodeVote(r)
		msg = Prepare{View: v, Seq: s, Digest: d, Replica: rep}
	case MsgCommit:
		v, s, d, rep := decodeVote(r)
		msg = Commit{View: v, Seq: s, Digest: d, Replica: rep}
	case MsgReply:
		msg = Reply{
			View: r.Uvarint(), Client: r.String(), ReqID: r.Uvarint(),
			Replica: r.String(), Result: r.Bytes(), ReadOnly: r.Bool(),
			Tentative: r.Bool(), Group: r.String(), Attest: r.Bytes(),
		}
	case MsgReadOnly:
		msg = ReadOnly{Client: r.String(), ReqID: r.Uvarint(), Op: r.Bytes()}
	case MsgCheckpoint:
		cp := Checkpoint{Seq: r.Uvarint(), View: r.Uvarint()}
		copy(cp.Digest[:], r.BytesView())
		cp.Replica = r.String()
		msg = cp
	case MsgViewChange:
		vc := ViewChange{NewView: r.Uvarint(), LastStable: r.Uvarint()}
		count := r.Uvarint()
		if count > maxBatch {
			return nil, fmt.Errorf("bft: view-change with %d batches", count)
		}
		for i := uint64(0); i < count; i++ {
			bt, err := decodeBatch(r)
			if err != nil {
				return nil, fmt.Errorf("bft: view-change: %w", err)
			}
			vc.Prepared = append(vc.Prepared, bt)
		}
		vc.Replica = r.String()
		msg = vc
	case MsgNewView:
		nv := NewView{View: r.Uvarint()}
		count := r.Uvarint()
		if count > maxBatch {
			return nil, fmt.Errorf("bft: new-view with %d batches", count)
		}
		for i := uint64(0); i < count; i++ {
			bt, err := decodeBatch(r)
			if err != nil {
				return nil, fmt.Errorf("bft: new-view: %w", err)
			}
			nv.Batches = append(nv.Batches, bt)
		}
		nv.Replica = r.String()
		msg = nv
	case MsgSeqRequest:
		msg = SeqRequest{Seq: r.Uvarint(), Replica: r.String()}
	case MsgViewChangeAck:
		a := ViewChangeAck{View: r.Uvarint(), Origin: r.String()}
		copy(a.Digest[:], r.BytesView())
		a.Replica = r.String()
		msg = a
	case MsgStateRequest:
		msg = StateRequest{Seq: r.Uvarint(), Replica: r.String()}
	case MsgStateResponse:
		msg = StateResponse{Seq: r.Uvarint(), View: r.Uvarint(), Snapshot: r.Bytes(), Replica: r.String()}
	default:
		return nil, fmt.Errorf("bft: unknown message type %d", t)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bft: decode %v: %w", t, err)
	}
	return msg, nil
}

// maxBatch bounds decoded request and batch lists so malformed messages
// cannot force huge allocations.
const maxBatch = 1 << 16

func encodePrePrepare(w *wire.Writer, pp PrePrepare) {
	w.Uvarint(pp.View)
	w.Uvarint(pp.Seq)
	w.Bytes(pp.Digest[:])
	encodeRequestWire(w, pp.Req)
}

func decodePrePrepare(r *wire.Reader) (PrePrepare, error) {
	pp := PrePrepare{View: r.Uvarint(), Seq: r.Uvarint()}
	copy(pp.Digest[:], r.BytesView())
	req, err := decodeRequestWire(r)
	if err != nil {
		return PrePrepare{}, err
	}
	pp.Req = req
	return pp, nil
}

func encodeBatch(w *wire.Writer, b Batch) {
	w.Uvarint(b.View)
	w.Uvarint(b.Seq)
	w.Bytes(b.Digest[:])
	w.Uvarint(uint64(len(b.Reqs)))
	for _, req := range b.Reqs {
		encodeRequestWire(w, req)
	}
}

func decodeBatch(r *wire.Reader) (Batch, error) {
	b := Batch{View: r.Uvarint(), Seq: r.Uvarint()}
	copy(b.Digest[:], r.BytesView())
	count := r.Uvarint()
	if count > maxBatch {
		return Batch{}, fmt.Errorf("batch with %d requests", count)
	}
	for i := uint64(0); i < count; i++ {
		req, err := decodeRequestWire(r)
		if err != nil {
			return Batch{}, err
		}
		b.Reqs = append(b.Reqs, req)
	}
	return b, nil
}

func encodeVote(w *wire.Writer, view, seq uint64, digest [32]byte, replica string) {
	w.Uvarint(view)
	w.Uvarint(seq)
	w.Bytes(digest[:])
	w.String(replica)
}

func decodeVote(r *wire.Reader) (view, seq uint64, digest [32]byte, replica string) {
	view = r.Uvarint()
	seq = r.Uvarint()
	copy(digest[:], r.BytesView())
	replica = r.String()
	return
}
