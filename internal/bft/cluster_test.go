package bft

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/consensus"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

func newPEATSCluster(t *testing.T, f int, pol policy.Policy, opts ...ClusterOption) *Cluster {
	t.Helper()
	n := 3*f + 1
	services := make([]Service, n)
	for i := range services {
		services[i] = NewSpaceService(pol)
	}
	cl, err := NewCluster(f, services, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func TestClusterBasicOps(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("alice"))
	if err := ts.Out(ctx, tuple.T(tuple.Str("X"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("X"), tuple.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("rdp: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Errorf("rdp = %v", got)
	}

	// cas through the replicated space.
	ins, _, err := ts.Cas(ctx,
		tuple.T(tuple.Str("D"), tuple.Formal("d")),
		tuple.T(tuple.Str("D"), tuple.Int(7)))
	if err != nil || !ins {
		t.Fatalf("cas: %v %v", ins, err)
	}
	ins, matched, err := ts.Cas(ctx,
		tuple.T(tuple.Str("D"), tuple.Formal("d")),
		tuple.T(tuple.Str("D"), tuple.Int(8)))
	if err != nil || ins {
		t.Fatalf("second cas: %v %v", ins, err)
	}
	if v, _ := matched.Field(1).IntValue(); v != 7 {
		t.Errorf("cas matched %v", matched)
	}

	// inp removes.
	if _, ok, err := ts.Inp(ctx, tuple.T(tuple.Str("X"), tuple.Any())); err != nil || !ok {
		t.Fatalf("inp: %v %v", ok, err)
	}
	if _, ok, _ := ts.Rdp(ctx, tuple.T(tuple.Str("X"), tuple.Any())); ok {
		t.Error("inp did not remove")
	}
}

func TestClusterMultipleClientsLinearizable(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Concurrent cas: exactly one winner, everyone reads the same value.
	const clients = 5
	wins := make(chan int64, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			ts := NewRemoteSpace(cl.Client(fmt.Sprintf("c%d", v)))
			ins, _, err := ts.Cas(ctx,
				tuple.T(tuple.Str("W"), tuple.Formal("x")),
				tuple.T(tuple.Str("W"), tuple.Int(v)))
			if err != nil {
				t.Errorf("c%d: %v", v, err)
				return
			}
			if ins {
				wins <- v
			}
		}(int64(i))
	}
	wg.Wait()
	close(wins)
	var winners []int64
	for v := range wins {
		winners = append(winners, v)
	}
	if len(winners) != 1 {
		t.Fatalf("%d cas winners, want 1", len(winners))
	}
	ts := NewRemoteSpace(cl.Client("reader"))
	got, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("W"), tuple.Formal("x")))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if v, _ := got.Field(1).IntValue(); v != winners[0] {
		t.Errorf("stored %v, winner %d", got, winners[0])
	}
}

func TestClusterBlockingRd(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	reader := NewRemoteSpace(cl.Client("reader"))
	reader.PollInterval = time.Millisecond
	writer := NewRemoteSpace(cl.Client("writer"))

	done := make(chan error, 1)
	go func() {
		_, err := reader.Rd(ctx, tuple.T(tuple.Str("LATE"), tuple.Any()))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := writer.Out(ctx, tuple.T(tuple.Str("LATE"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocking rd: %v", err)
	}
}

func TestClusterPolicyEnforcedAtReplicas(t *testing.T) {
	// The monitor runs inside every replica: a Byzantine *client* is
	// powerless even with full network access.
	procs := []policy.ProcessID{"p0", "p1", "p2", "p3"}
	cl := newPEATSCluster(t, 1, consensus.StrongPolicy(procs, 1, []int64{0, 1}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	evil := NewRemoteSpace(cl.Client("p3"))
	// Impersonation: the transport identity is p3, so a PROPOSE for p0
	// is rejected by the Rout rule at every correct replica.
	err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p0"), tuple.Int(1)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("impersonated propose err = %v, want denial", err)
	}
	// Unjustified decision.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("DECISION"), tuple.Formal("d"), tuple.Any()),
		tuple.T(tuple.Str("DECISION"), tuple.Int(1),
			consensus.PIDSetField([]policy.ProcessID{"p3"})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("unjustified cas err = %v, want denial", err)
	}
	// Legal operation still works.
	if err := evil.Out(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p3"), tuple.Int(1))); err != nil {
		t.Errorf("legal propose rejected: %v", err)
	}
}

func TestClusterToleratesSilentReplica(t *testing.T) {
	// f=1, 4 replicas, one never started (crashed from the outset).
	pol := policy.AllowAll()
	services := []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), nil,
	}
	cl, err := NewCluster(1, services)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	for i := int64(0); i < 5; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("K"), tuple.Int(i))); err != nil {
			t.Fatalf("out %d: %v", i, err)
		}
	}
	if _, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("K"), tuple.Int(4))); err != nil || !ok {
		t.Fatalf("rdp: %v %v", ok, err)
	}
}

func TestClusterToleratesCorruptReplica(t *testing.T) {
	// One replica lies about every result; client voting (f+1 matching)
	// masks it.
	pol := policy.AllowAll()
	services := []Service{
		NewSpaceService(pol),
		NewCorruptService(NewSpaceService(pol)),
		NewSpaceService(pol),
		NewSpaceService(pol),
	}
	cl, err := NewCluster(1, services)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	for i := int64(0); i < 5; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("K"), tuple.Int(i))); err != nil {
			t.Fatalf("out: %v", err)
		}
	}
	got, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("K"), tuple.Int(3)))
	if err != nil || !ok {
		t.Fatalf("rdp: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 3 {
		t.Errorf("read %v despite voting", got)
	}
}

func TestClusterViewChangeOnSilentPrimary(t *testing.T) {
	// The primary (r0 in view 0) is partitioned away after startup; the
	// remaining replicas must elect a new primary and keep serving.
	cl := newPEATSCluster(t, 1, policy.AllowAll(),
		WithViewChangeTimeout(200*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	// Normal operation first.
	if err := ts.Out(ctx, tuple.T(tuple.Str("BEFORE"))); err != nil {
		t.Fatal(err)
	}
	// Cut the primary off (clients included: they reach r1..r3 only).
	cl.Net.Partition([]string{"r0"})

	if err := ts.Out(ctx, tuple.T(tuple.Str("AFTER"))); err != nil {
		t.Fatalf("out after primary failure: %v", err)
	}
	got, ok, err := ts.Rdp(ctx, tuple.T(tuple.Str("AFTER")))
	if err != nil || !ok {
		t.Fatalf("rdp after view change: %v %v %v", got, ok, err)
	}
}

func TestClusterCheckpointStateTransfer(t *testing.T) {
	// A replica partitioned during a burst of operations catches up via
	// state transfer after healing.
	cl := newPEATSCluster(t, 1, policy.AllowAll(),
		WithCheckpointInterval(8),
		WithViewChangeTimeout(time.Hour)) // isolate checkpointing from view changes
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	cl.Net.Partition([]string{"r3"}) // r3 misses everything

	for i := int64(0); i < 20; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("N"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Net.HealPartitions()
	// Trigger more checkpoints so r3 learns a stable quorum and fetches
	// state.
	for i := int64(20); i < 40; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("N"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	r3 := cl.Replicas[3]
	for time.Now().Before(deadline) {
		if r3.Executed() >= 32 { // past several checkpoints
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("r3 never caught up: executed=%d", r3.Executed())
}

func TestClusterDuplicateRequestsExecuteOnce(t *testing.T) {
	// Client retransmissions must not double-execute: out is not
	// idempotent, so the client table is load-bearing.
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	cli := cl.Client("c")
	cli.RetransmitInterval = 5 * time.Millisecond // aggressive resends
	ts := NewRemoteSpace(cli)
	for i := 0; i < 10; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("DUP"))); err != nil {
			t.Fatal(err)
		}
	}
	// Count via a fresh reader: must be exactly 10 DUP tuples.
	reader := NewRemoteSpace(cl.Client("r"))
	count := 0
	for {
		_, ok, err := reader.Inp(ctx, tuple.T(tuple.Str("DUP")))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Errorf("%d DUP tuples, want 10 (duplicate execution)", count)
	}
}

func TestReplicaConfigValidation(t *testing.T) {
	if _, err := NewReplica(ReplicaConfig{ID: "r0", Replicas: []string{"r0", "r1", "r2"}, F: 1}); err == nil {
		t.Error("3 replicas accepted for f=1")
	}
	if _, err := NewReplica(ReplicaConfig{ID: "rX", Replicas: []string{"r0", "r1", "r2", "r3"}, F: 1}); err == nil {
		t.Error("unknown replica id accepted")
	}
	if _, err := NewCluster(1, []Service{nil}); err == nil {
		t.Error("wrong service count accepted")
	}
}

func TestRemoteSpaceDecodesDenialAsErrDenied(t *testing.T) {
	res := wire.SpaceResult{Status: wire.StatusDenied, Detail: "x"}
	if err := resultToError(res); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
	if err := resultToError(wire.SpaceResult{Status: wire.StatusOK}); err != nil {
		t.Errorf("ok err = %v", err)
	}
	if err := resultToError(wire.SpaceResult{Status: wire.StatusError, Detail: "bad"}); err == nil {
		t.Error("error status should map to error")
	}
}

func TestClusterRdAll(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	ts := NewRemoteSpace(cl.Client("c"))
	for i := int64(0); i < 4; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("BULK"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ts.RdAll(ctx, tuple.T(tuple.Str("BULK"), tuple.Any()))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("RdAll over cluster = %d tuples, want 4", len(all))
	}
	for i, tu := range all {
		if v, _ := tu.Field(1).IntValue(); v != int64(i) {
			t.Errorf("tuple %d = %v (order broken)", i, tu)
		}
	}
}
