package bft

import (
	"context"
	"runtime"
	"testing"
	"time"

	"peats/internal/policy"
	"peats/internal/tuple"
)

// TestClusterShutdownLeaksNothing is the leak check behind the clock
// audit: every timer and ticker in the replica (view-change and batch
// timers), the client (retransmission ticker), and the RemoteSpace
// polling loop comes from the injected clock, and stopping the cluster
// must release every goroutine they parked. A lingering goroutine here
// means a timer escaped the clock abstraction — exactly the kind of
// leak the deterministic simulator cannot tolerate, since it must own
// all scheduling.
func TestClusterShutdownLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	func() {
		cl, err := NewCluster(1, []Service{
			NewSpaceService(policy.AllowAll()), NewSpaceService(policy.AllowAll()),
			NewSpaceService(policy.AllowAll()), NewSpaceService(policy.AllowAll()),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()

		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		ts := NewRemoteSpace(cl.Client("leakcheck"))
		if err := ts.Out(ctx, tuple.T(tuple.Str("L"), tuple.Int(1))); err != nil {
			t.Fatal(err)
		}
		// A blocking Rd against an absent tuple spins the clock-driven
		// polling path until its context expires — the loop most likely
		// to pin a timer goroutine past shutdown.
		short, scancel := context.WithTimeout(ctx, 150*time.Millisecond)
		defer scancel()
		if _, err := ts.Rd(short, tuple.T(tuple.Str("absent"), tuple.Any())); err == nil {
			t.Fatal("Rd of an absent tuple returned without its deadline expiring")
		}
	}()

	// Goroutine teardown is asynchronous; poll instead of sleeping a
	// fixed (and race-detector-dependent) amount.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after cluster stop: %d before, %d after\n%s",
				baseline, n, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
