package bft

import (
	"bytes"
	"testing"
	"testing/quick"

	"peats/internal/auth"
)

func TestMessageRoundTrips(t *testing.T) {
	req := Request{Client: "c1", ReqID: 7, Op: []byte{1, 2, 3}}
	authed := Request{Client: "c2", ReqID: 3, Op: []byte{4},
		Auth: [][]byte{{0xaa}, {0xbb}, {0xcc}, {0xdd}}}
	d := req.Digest()
	batch := []Request{req, {Client: "c2", ReqID: 4, Op: []byte{5}}}
	msgs := []any{
		req,
		authed,
		PrePrepare{View: 1, Seq: 9, Digest: d, Req: req},
		Batch{View: 1, Seq: 10, Digest: BatchDigest(batch), Reqs: batch},
		Prepare{View: 1, Seq: 9, Digest: d, Replica: "r2"},
		Commit{View: 1, Seq: 9, Digest: d, Replica: "r0"},
		Reply{View: 1, Client: "c1", ReqID: 7, Replica: "r3", Result: []byte{9}},
		Reply{View: 1, Client: "c1", ReqID: 8, Replica: "r3", Result: []byte{9}, ReadOnly: true},
		ReadOnly{Client: "c1", ReqID: 9, Op: []byte{7}},
		Checkpoint{Seq: 128, Digest: d, Replica: "r1"},
		ViewChange{NewView: 2, LastStable: 64,
			Prepared: []Batch{{View: 1, Seq: 65, Digest: BatchDigest(batch), Reqs: batch}},
			Replica:  "r2"},
		NewView{View: 2,
			Batches: []Batch{{View: 2, Seq: 65, Digest: d, Reqs: []Request{req}}},
			Replica: "r2"},
		SeqRequest{Seq: 66, Replica: "r0"},
		StateRequest{Seq: 128, Replica: "r3"},
		StateResponse{Seq: 128, View: 2, Snapshot: []byte{4, 5}, Replica: "r1"},
	}
	for _, msg := range msgs {
		enc, err := Marshal(msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		dec, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		// Compare via re-marshal (structs contain slices).
		enc2, err := Marshal(dec)
		if err != nil {
			t.Fatalf("remarshal %T: %v", dec, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("%T: round trip not canonical", msg)
		}
	}
}

func TestMarshalUnknownType(t *testing.T) {
	if _, err := Marshal(42); err == nil {
		t.Error("marshalling an int should fail")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xee},                   // unknown type
		{byte(MsgRequest)},       // truncated
		{byte(MsgPrePrepare), 1}, // truncated
		{byte(MsgViewChange), 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}, // huge count
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
	// Trailing bytes rejected.
	enc, err := Marshal(StateRequest{Seq: 1, Replica: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(enc, 0xaa)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRequestDigestDistinguishes(t *testing.T) {
	base := Request{Client: "c", ReqID: 1, Op: []byte{1}}
	variants := []Request{
		{Client: "d", ReqID: 1, Op: []byte{1}},
		{Client: "c", ReqID: 2, Op: []byte{1}},
		{Client: "c", ReqID: 1, Op: []byte{2}},
	}
	for _, v := range variants {
		if v.Digest() == base.Digest() {
			t.Errorf("digest collision: %+v vs %+v", v, base)
		}
	}
	if base.Digest() != base.Digest() {
		t.Error("digest not deterministic")
	}
}

func TestRequestDigestMatchesEncoding(t *testing.T) {
	req := Request{Client: "c", ReqID: 3, Op: []byte("op")}
	if req.Digest() != auth.Digest(encodeRequest(req)) {
		t.Error("Digest() must hash the canonical encoding")
	}
	// The authenticator vector is transport proof, not identity: it
	// must not perturb the digest (a Byzantine primary flipping MAC
	// bytes must not mint a "different" request).
	withAuth := req
	withAuth.Auth = [][]byte{{1}, {2}, {3}, {4}}
	if withAuth.Digest() != req.Digest() {
		t.Error("authenticator vector must be excluded from the digest")
	}
}

func TestBatchDigest(t *testing.T) {
	r1 := Request{Client: "a", ReqID: 1, Op: []byte{1}}
	r2 := Request{Client: "b", ReqID: 1, Op: []byte{2}}
	if BatchDigest([]Request{r1}) != r1.Digest() {
		t.Error("single-request batch digest must equal the request digest")
	}
	if BatchDigest([]Request{r1, r2}) == BatchDigest([]Request{r2, r1}) {
		t.Error("batch digest must be order-sensitive")
	}
	if BatchDigest([]Request{r1, r2}) == BatchDigest([]Request{r1}) {
		t.Error("batch digest must cover every request")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(client string, reqID uint64, op []byte, view, seq uint64) bool {
		req := Request{Client: client, ReqID: reqID, Op: op}
		pp := PrePrepare{View: view, Seq: seq, Digest: req.Digest(), Req: req}
		enc, err := Marshal(pp)
		if err != nil {
			return false
		}
		dec, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		got, ok := dec.(PrePrepare)
		return ok && got.View == view && got.Seq == seq &&
			got.Digest == pp.Digest && got.Req.Client == client &&
			got.Req.ReqID == reqID && bytes.Equal(got.Req.Op, op)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
