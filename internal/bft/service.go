package bft

import (
	"errors"
	"fmt"

	"peats/internal/durable"
	"peats/internal/metrics"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// Service is the deterministic state machine a replica executes. The
// replication layer guarantees every correct replica applies the same
// (client, op) sequence; the service must therefore be a pure function
// of that sequence (paper §4: "both the augmented tuple space and the
// reference monitor are deterministic objects").
type Service interface {
	// Execute applies one operation invoked by the authenticated client
	// and returns the canonical result bytes.
	Execute(client string, op []byte) []byte
	// Snapshot returns the canonical encoding of the current state.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// BatchExecutor is an optional Service extension: a service that can
// apply a committed batch of operations in one atomic step (one
// critical section instead of one per operation). The results must be
// identical to executing the operations one by one in order — the
// replica falls back to sequential Execute when the extension is
// absent, and the two paths must not be distinguishable.
type BatchExecutor interface {
	// ExecuteBatch applies ops[i] as clients[i] for every i, in order,
	// atomically, returning one result per operation.
	ExecuteBatch(clients []string, ops [][]byte) [][]byte
}

// TentativeService is an optional Service extension backing tentative
// execution (Castro–Liskov): the replica executes a batch into an
// overlay as soon as it is *prepared* (BeginTentativeUnit /
// TentativeExecute / EndTentativeUnit), applies the overlay to real
// state once the commit quorum lands (PromoteTentative, always in
// sequence order), and discards every unpromoted overlay when a view
// change may have dropped prepared batches (RollbackTentative).
// TentativeExecute must return exactly the bytes Execute would return
// once every earlier unit commits, and PromoteTentative must leave
// state and checkpoint journal byte-identical to direct execution. All
// methods run on the replica event loop.
type TentativeService interface {
	BeginTentativeUnit(seq uint64)
	TentativeExecute(client string, op []byte) []byte
	EndTentativeUnit()
	PromoteTentative()
	RollbackTentative()
}

// TentativeFilter is an optional Service extension restricting
// tentative execution: the replica must not execute a batch containing
// an operation for which SkipTentative reports true before its commit
// quorum lands — and must not execute any later batch tentatively
// either, because overlay units stack in sequence order. SpaceService
// filters the partition 2PC operations, whose pending-transaction
// table mutations no overlay can roll back.
type TentativeFilter interface {
	SkipTentative(op []byte) bool
}

// ReadOnlyExecutor is an optional Service extension backing the
// read-only fast path: executing a non-mutating operation against the
// current state, outside the ordered sequence. Implementations must
// return ok=false for any operation that would mutate state — the
// replica then stays silent and the client falls back to ordering.
//
// ExecuteReadOnly is called from the replica's read worker pool,
// concurrently with itself and with Execute/ExecuteBatch on the event
// loop, so implementations must synchronise internally (SpaceService
// uses the space's shard read locks).
type ReadOnlyExecutor interface {
	ExecuteReadOnly(client string, op []byte) (result []byte, ok bool)
}

// SpaceService is the PEATS state machine: an augmented tuple space
// guarded by the reference monitor, executing wire.SpaceOp operations
// and wire.SpaceTx atomic multi-operation transactions. This is the box
// marked "interceptor + tuple space" in Fig. 2.
//
// Every request — single op or transaction — runs through one staged
// executor: operations execute against a deferred-update view inside
// one scoped critical section, the monitor vetting each against the
// state its predecessors produced, and the staged effects commit only
// if no operation was denied or malformed and every inp found a match
// (otherwise the transaction aborts and the space is untouched). A
// single-operation request is simply a one-op transaction that travels
// in the legacy wire form.
//
// The space's store engine and shard count are pluggable
// (NewSpaceServiceWithConfig). Replicas running different engines or
// shard counts stay consistent: the Store determinism contract and the
// space's merge-by-sequence iteration guarantee identical match order
// for identical operation sequences, and Snapshot/Restore exchange
// engine-neutral tuple lists, so checkpoints and state transfers
// install cleanly on any configuration.
//
// Ordered execution write-locks only the shards a request's operations
// route to (read-locking the rest for the monitor), and the read-only
// fast path takes shared locks everywhere — so fast-path reads run
// concurrently with each other and with ordered execution on other
// shards.
type SpaceService struct {
	inner *space.Space
	pol   policy.Policy

	// Mutation journal backing incremental checkpoints: every committed
	// unit appends its net effects (value-addressed, see wire.Delta).
	// Only ordered execution appends — the event-loop goroutine — so no
	// lock is needed; read-only execution never stages mutations.
	// journalBroken marks a journal that cannot stand in for the state
	// (a Restore replaced the state wholesale, or the journal
	// overflowed): the next checkpoint must be a full snapshot.
	journal       []wire.DeltaOp
	journalBroken bool

	// db, when set, is the durability engine behind the space's stores
	// (NewDurableSpaceService).
	db *durable.DB

	// ptx, when set (EnablePartition), holds the cross-partition 2PC
	// state: this group's identity, the deployment directory, and the
	// pending/decided transaction tables.
	ptx *partitionState

	// metricsReg and metricsLabels remember the EnableMetrics
	// arguments so EnablePartition can register the 2PC metrics in
	// either call order.
	metricsReg    *metrics.Registry
	metricsLabels []metrics.Label

	// tentative is the overlay stack of units executed at *prepared*
	// but not yet committed (Castro–Liskov tentative execution). Only
	// the replica event loop touches it. Lazily allocated; nil and
	// empty are equivalent. Nothing tentative reaches the stores — or,
	// on a durable service, the WAL — until PromoteTentative, so
	// recovery can never resurface un-agreed state.
	tentative *space.Overlay
}

var (
	_ Service          = (*SpaceService)(nil)
	_ BatchExecutor    = (*SpaceService)(nil)
	_ ReadOnlyExecutor = (*SpaceService)(nil)
	_ DeltaSnapshotter = (*SpaceService)(nil)
	_ DurableService   = (*SpaceService)(nil)
	_ TentativeService = (*SpaceService)(nil)
	_ TentativeFilter  = (*SpaceService)(nil)
)

// NewSpaceService returns a PEATS service protected by the given
// policy, backed by the default store engine.
func NewSpaceService(pol policy.Policy) *SpaceService {
	return &SpaceService{inner: space.New(), pol: pol}
}

// NewSpaceServiceWithEngine returns a PEATS service whose space uses
// the named store engine, with a single shard.
func NewSpaceServiceWithEngine(pol policy.Policy, e space.Engine) (*SpaceService, error) {
	return NewSpaceServiceWithConfig(pol, e, 1)
}

// NewSpaceServiceWithConfig returns a PEATS service whose space uses
// the named store engine partitioned into the given number of shards
// (shards ≤ 0 selects 1).
func NewSpaceServiceWithConfig(pol policy.Policy, e space.Engine, shards int) (*SpaceService, error) {
	if shards <= 0 {
		shards = 1
	}
	inner, err := space.NewSharded(e, shards)
	if err != nil {
		return nil, err
	}
	return &SpaceService{inner: inner, pol: pol}, nil
}

// NewDurableSpaceService returns a PEATS service whose space is backed
// by the durability engine: every shard's store journals into db's
// write-ahead log, and the state db recovered from disk is installed
// into the space (under its original sequence numbers) before the
// service is handed out. The replica layer detects the durable service
// and frames agreement batches as atomic WAL units, compacts at full
// checkpoints, and folds the recovered client table forward.
func NewDurableSpaceService(pol policy.Policy, db *durable.DB, shards int) (*SpaceService, error) {
	if shards <= 0 {
		shards = 1
	}
	inner, err := space.NewShardedFactory(shards, func(int) (space.Store, error) {
		return db.NewStore(), nil
	})
	if err != nil {
		return nil, err
	}
	db.StartLoad()
	err = inner.Install(db.Recovered().Tuples)
	db.EndLoad()
	if err != nil {
		return nil, err
	}
	return &SpaceService{inner: inner, pol: pol, db: db}, nil
}

// Space exposes the underlying space for inspection in tests.
func (s *SpaceService) Space() *space.Space { return s.inner }

// Close releases the durability engine, flushing the write-ahead log
// (no-op for in-memory services).
func (s *SpaceService) Close() error {
	if s.db == nil {
		return nil
	}
	return s.db.Close()
}

// decodedReq is one decoded request payload: a single op or a
// transaction, with a deterministic decode error when malformed.
type decodedReq struct {
	ops  []wire.SpaceOp
	isTx bool
	err  error
}

// decodeReq parses a request payload as a SpaceTx or a single SpaceOp.
func decodeReq(op []byte) decodedReq {
	if wire.IsSpaceTx(op) {
		tx, err := wire.DecodeSpaceTx(op)
		return decodedReq{ops: tx.Ops, isTx: true, err: err}
	}
	decoded, err := wire.DecodeSpaceOp(op)
	return decodedReq{ops: []wire.SpaceOp{decoded}, err: err}
}

// encode renders a result vector in the wire form the client expects
// for this request shape: a bare SpaceResult for a single op, a result
// vector for a transaction.
func (d decodedReq) encode(results []wire.SpaceResult) []byte {
	if d.isTx {
		return wire.EncodeSpaceResults(results)
	}
	return wire.EncodeSpaceResult(results[0])
}

// encodeErr renders d's decode error deterministically in the matching
// wire form.
func (d decodedReq) encodeErr() []byte {
	res := wire.SpaceResult{Status: wire.StatusError, Detail: d.err.Error()}
	if d.isTx {
		return wire.EncodeSpaceResults([]wire.SpaceResult{res})
	}
	return wire.EncodeSpaceResult(res)
}

// addWrites adds the shards the request's operations may mutate to ws.
func (s *SpaceService) addWrites(ws *space.ShardSet, d decodedReq) {
	if d.err != nil {
		return
	}
	for _, op := range d.ops {
		// Unsupported codes never survive decoding, so the error return
		// is vacuous here.
		_, _ = peats.SubmitWrites(s.inner, ws, op.Op, op.Template, op.Entry)
	}
}

// Execute implements Service. Malformed operations yield StatusError;
// operations rejected by the monitor yield StatusDenied. Both are
// deterministic results, so replicas never diverge on bad input.
func (s *SpaceService) Execute(client string, op []byte) []byte {
	if wire.IsPartitionOp(op) {
		return s.executePartition(client, op)
	}
	d := decodeReq(op)
	if d.err != nil {
		return d.encodeErr()
	}
	var ws space.ShardSet
	s.addWrites(&ws, d)
	var res []byte
	s.inner.DoScoped(ws, func(tx *space.Tx) {
		res = d.encode(s.executeTxIn(tx, client, d.ops))
	})
	return res
}

// ExecuteBatch implements BatchExecutor: every request of a committed
// batch executes inside one space critical section scoped to the shards
// the batch writes, amortizing the locks and making the batch atomic
// with respect to concurrent read-only execution on those shards.
// Fast-path reads routed to shards the batch does not write proceed in
// parallel with the batch. Each request remains its own atomic unit:
// a transaction that aborts discards only its own staged effects.
// Partition 2PC operations manage their own locking (a prepare opens a
// read section, a commit decision a scoped write section), so a batch
// splits into runs of ordinary requests — each run one critical
// section — with partition operations executed between runs, in order.
func (s *SpaceService) ExecuteBatch(clients []string, ops [][]byte) [][]byte {
	results := make([][]byte, len(ops))
	decoded := make([]decodedReq, len(ops))
	for i := 0; i < len(ops); {
		if wire.IsPartitionOp(ops[i]) {
			results[i] = s.executePartition(clients[i], ops[i])
			i++
			continue
		}
		j := i
		var ws space.ShardSet
		for j < len(ops) && !wire.IsPartitionOp(ops[j]) {
			decoded[j] = decodeReq(ops[j])
			if decoded[j].err != nil {
				results[j] = decoded[j].encodeErr()
			} else {
				s.addWrites(&ws, decoded[j])
			}
			j++
		}
		s.inner.DoScoped(ws, func(tx *space.Tx) {
			for k := i; k < j; k++ {
				if results[k] != nil {
					continue // malformed: deterministic error already encoded
				}
				results[k] = decoded[k].encode(s.executeTxIn(tx, clients[k], decoded[k].ops))
			}
		})
		i = j
	}
	return results
}

// ExecuteReadOnly implements ReadOnlyExecutor: rdp and rdAll (the
// non-mutating operations) — alone or as an all-read-only transaction —
// execute against current state without ordering, still passing through
// the reference monitor. Every other request — and any malformed one,
// whose deterministic error result per-replica voting would mask
// anyway — reports ok=false so the client falls back to the ordered
// path.
//
// The section holds only shard read locks (DoRead), so fast-path reads
// run concurrently with each other and with ordered execution on
// shards the current batch does not write.
func (s *SpaceService) ExecuteReadOnly(client string, op []byte) ([]byte, bool) {
	d := decodeReq(op)
	if d.err != nil {
		return nil, false
	}
	for _, decoded := range d.ops {
		switch decoded.Op {
		case policy.OpRdp, policy.OpRdAll:
		default:
			return nil, false
		}
	}
	var res []byte
	s.inner.DoRead(func(tx *space.Tx) {
		res = d.encode(s.executeTxIn(tx, client, d.ops))
	})
	return res, true
}

// executeTxIn applies one request's operations as an atomic unit inside
// an open critical section: each op is vetted and executed against a
// staged view reflecting its predecessors, and the staged effects
// commit only if no op aborts (denial, malformed argument, or an inp
// that found no match). Aborted units leave the space untouched, with
// the unexecuted tail marked StatusSkipped.
func (s *SpaceService) executeTxIn(tx *space.Tx, client string, ops []wire.SpaceOp) []wire.SpaceResult {
	st := tx.Stage()
	s.freezeReservations(st)
	results := make([]wire.SpaceResult, len(ops))
	for i, op := range ops {
		res, abort := s.applyStaged(st, client, op, i, len(ops))
		results[i] = res
		if abort {
			for j := i + 1; j < len(ops); j++ {
				results[j] = wire.SpaceResult{Status: wire.StatusSkipped}
			}
			return results
		}
	}
	s.journalEffects(st)
	st.Commit()
	return results
}

// ---- Tentative execution ----
//
// The replica calls BeginTentativeUnit / TentativeExecute /
// EndTentativeUnit when a batch reaches prepared, PromoteTentative when
// its commit quorum lands (always in sequence order), and
// RollbackTentative when a view change may have dropped prepared
// batches. All five run on the replica event loop.

// BeginTentativeUnit opens an overlay segment for the prepared batch at
// agreement sequence seq.
func (s *SpaceService) BeginTentativeUnit(seq uint64) {
	if s.tentative == nil {
		s.tentative = s.inner.NewOverlay()
	}
	s.tentative.BeginUnit(seq)
}

// TentativeExecute applies one request of the open tentative unit
// against the overlay view — committed state plus every tentative unit
// below — and returns the canonical result bytes, byte-identical to
// what Execute would return after the preceding units commit. The
// stores are not touched: effects fold into the overlay, under shard
// read locks only.
func (s *SpaceService) TentativeExecute(client string, op []byte) []byte {
	d := decodeReq(op)
	if d.err != nil {
		return d.encodeErr()
	}
	var res []byte
	s.inner.DoRead(func(tx *space.Tx) {
		st := tx.StageOn(s.tentative)
		s.freezeReservations(st)
		results := make([]wire.SpaceResult, len(d.ops))
		aborted := false
		for i, op := range d.ops {
			r, abort := s.applyStaged(st, client, op, i, len(d.ops))
			results[i] = r
			if abort {
				for j := i + 1; j < len(d.ops); j++ {
					results[j] = wire.SpaceResult{Status: wire.StatusSkipped}
				}
				aborted = true
				break
			}
		}
		if aborted {
			st.AbortTentative()
		} else {
			st.CommitTentative()
		}
		res = d.encode(results)
	})
	return res
}

// EndTentativeUnit closes the open overlay segment.
func (s *SpaceService) EndTentativeUnit() { s.tentative.EndUnit() }

// PromoteTentative applies the oldest tentative unit to the stores —
// its commit quorum landed — and journals its effects for the
// incremental checkpoint exactly as direct execution would have
// (journalEffects ordering: per request, removals by value then
// inserts). On a durable service the caller brackets this with
// BeginUnit/CommitUnit, so the whole unit lands in one WAL frame.
func (s *SpaceService) PromoteTentative() {
	for _, eff := range s.tentative.PromoteBottom() {
		for _, t := range eff.Removed {
			s.journalOp(wire.DeltaOp{Kind: wire.DeltaRemove, T: t})
		}
		for _, t := range eff.Inserted {
			s.journalOp(wire.DeltaOp{Kind: wire.DeltaInsert, T: t})
		}
	}
}

// RollbackTentative discards every unpromoted tentative unit: a view
// change may drop prepared batches, and whatever survives re-executes
// after the new view re-proposes it.
func (s *SpaceService) RollbackTentative() {
	if s.tentative != nil {
		s.tentative.Rollback(0)
	}
}

// TentativeDepth reports how many tentative units are stacked (test
// hook).
func (s *SpaceService) TentativeDepth() int {
	if s.tentative == nil {
		return 0
	}
	return s.tentative.Depth()
}

// maxJournalOps caps the mutation journal. Checkpoints drain it every
// CheckpointInterval executions, so the cap only triggers when nothing
// checkpoints (a service driven outside a replica); overflowing marks
// the journal broken, deterministically — every replica executes the
// same sequence, so all of them overflow on the same unit and fall
// back to a full checkpoint together.
const maxJournalOps = 1 << 17

// journalOp appends one op to the mutation journal, marking the
// journal broken on overflow. No-op while the journal is broken. Event
// loop only.
func (s *SpaceService) journalOp(op wire.DeltaOp) {
	if s.journalBroken {
		return
	}
	s.journal = append(s.journal, op)
	if len(s.journal) > maxJournalOps {
		s.journal = nil
		s.journalBroken = true
	}
}

// journalEffects records a unit's net effects for the incremental
// checkpoint, in the exact order Commit applies them (removals, then
// inserts). Removals are journaled by value: applying "remove the
// first stored tuple equal to v" consumes exactly the tuple the staged
// executor consumed (see Staged.Commit), on any replica, regardless of
// its internal sequence numbering.
func (s *SpaceService) journalEffects(st *space.Staged) {
	removed, inserted := st.Effects()
	for _, r := range removed {
		s.journalOp(wire.DeltaOp{Kind: wire.DeltaRemove, T: r.T})
	}
	for _, t := range inserted {
		s.journalOp(wire.DeltaOp{Kind: wire.DeltaInsert, T: t})
	}
}

// CheckpointDelta implements DeltaSnapshotter.
func (s *SpaceService) CheckpointDelta() ([]byte, bool) {
	if s.journalBroken {
		s.journal, s.journalBroken = nil, false
		return nil, false
	}
	blob := wire.EncodeDelta(wire.Delta{Ops: s.journal})
	s.journal = nil
	return blob, true
}

// ApplyDelta implements DeltaSnapshotter: the delta's mutations apply
// to the current state in order, inside one critical section. A
// removal that finds no equal tuple means the delta does not follow
// from this state — the install aborts with an error (the caller
// verified the chain digest, so this is corruption, not divergence).
//
// Tuple mutations run through a staged view with the current
// reservations frozen, exactly like the source execution: a delta
// removal must consume the same copy the source consumed, and with
// equal-valued tuples split between free and reserved copies only a
// freeze-aware selection lands on the free one. Partition 2PC events
// flush the staged run before them (the event's table transition must
// observe the stores the source's did) and replay through the same
// transitions ordered execution performs, so the pending/decided
// tables, the reservation freezes, and the stores all advance in
// lockstep with the source replica.
func (s *SpaceService) ApplyDelta(delta []byte) error {
	d, err := wire.DecodeDelta(delta)
	if err != nil {
		return err
	}
	s.journal, s.journalBroken = nil, true
	var applyErr error
	s.inner.Do(func(tx *space.Tx) {
		var st *space.Staged
		view := func() *space.Staged {
			if st == nil {
				st = tx.Stage()
				s.freezeReservations(st)
			}
			return st
		}
		flush := func() {
			if st != nil {
				st.Commit()
				st = nil
			}
		}
		for i, op := range d.Ops {
			switch op.Kind {
			case wire.DeltaRemove:
				if _, ok := view().Inp(op.T); !ok {
					applyErr = fmt.Errorf("bft: delta op %d removes an absent tuple", i)
					return
				}
			case wire.DeltaInsert:
				if err := view().Out(op.T); err != nil {
					applyErr = fmt.Errorf("bft: delta op %d: %w", i, err)
					return
				}
			default:
				flush()
				if err := s.applyPartitionDelta(tx, op); err != nil {
					applyErr = fmt.Errorf("bft: delta op %d: %w", i, err)
					return
				}
			}
		}
		flush()
	})
	return applyErr
}

// ResetJournal implements DeltaSnapshotter.
func (s *SpaceService) ResetJournal() {
	s.journal, s.journalBroken = nil, false
}

// Durable implements DurableService.
func (s *SpaceService) Durable() bool { return s.db != nil }

// BeginUnit implements DurableService.
func (s *SpaceService) BeginUnit(seq uint64) {
	if s.db != nil {
		s.db.BeginUnit(seq)
	}
}

// CommitUnit implements DurableService.
func (s *SpaceService) CommitUnit(extra []byte) {
	if s.db != nil {
		s.db.CommitUnit(extra)
	}
}

// CompactTo implements DurableService.
func (s *SpaceService) CompactTo(seq uint64, extra []byte) error {
	if s.db == nil {
		return nil
	}
	return s.db.Compact(seq, extra)
}

// BeginStateLoad implements DurableService.
func (s *SpaceService) BeginStateLoad() {
	if s.db != nil {
		s.db.StartLoad()
	}
}

// EndStateLoad implements DurableService.
func (s *SpaceService) EndStateLoad(seq uint64, extra []byte) error {
	if s.db == nil {
		return nil
	}
	s.db.EndLoad()
	return s.db.Compact(seq, extra)
}

// AbortStateLoad implements DurableService.
func (s *SpaceService) AbortStateLoad() {
	if s.db != nil {
		s.db.EndLoad()
	}
}

// RecoveredState implements DurableService.
func (s *SpaceService) RecoveredState() (uint64, []byte, []durable.UnitExtra) {
	if s.db == nil {
		return 0, nil, nil
	}
	rec := s.db.Recovered()
	return rec.UnitSeq, rec.BaseExtra, rec.Units
}

// applyStaged vets and executes one operation against the staged view,
// reporting whether it aborts the unit. An inp miss aborts: for a
// one-op unit that is indistinguishable from the legacy not-found
// result (nothing was staged), and for a longer one it is what makes
// consume-then-act patterns atomic.
func (s *SpaceService) applyStaged(st *space.Staged, client string, op wire.SpaceOp, idx, txLen int) (wire.SpaceResult, bool) {
	inv := policy.Invocation{
		Invoker:  policy.ProcessID(client),
		Op:       op.Op,
		Template: op.Template,
		Entry:    op.Entry,
		TxIndex:  idx,
		TxLen:    txLen,
	}
	if d := s.pol.Evaluate(inv, st); !d.Allowed {
		return wire.SpaceResult{Status: wire.StatusDenied, Detail: inv.String()}, true
	}
	switch op.Op {
	case policy.OpOut:
		if err := st.Out(op.Entry); err != nil {
			return wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}, true
		}
		return wire.SpaceResult{Status: wire.StatusOK}, false
	case policy.OpRdp:
		t, ok := st.Rdp(op.Template)
		return wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}, false
	case policy.OpInp:
		t, ok := st.Inp(op.Template)
		return wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}, !ok
	case policy.OpRdAll:
		all := st.RdAll(op.Template)
		return wire.SpaceResult{Status: wire.StatusOK, Found: len(all) > 0, Tuples: all}, false
	case policy.OpCas:
		ins, matched, err := st.Cas(op.Template, op.Entry)
		if err != nil {
			return wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}, true
		}
		return wire.SpaceResult{Status: wire.StatusOK, Inserted: ins, Tuple: matched}, false
	default:
		return wire.SpaceResult{Status: wire.StatusError,
			Detail: fmt.Sprintf("unsupported op %v", op.Op)}, true
	}
}

// Snapshot implements Service: the canonical encoding of the tuple
// list, followed — on a partitioned service — by the pending and
// decided cross-partition transaction tables (they shape what every
// later operation observes, so they are checkpoint state).
func (s *SpaceService) Snapshot() []byte {
	tuples := s.inner.Snapshot()
	w := wire.NewWriter()
	w.Uvarint(uint64(len(tuples)))
	for _, t := range tuples {
		w.Tuple(t)
	}
	s.appendPartitionSnapshot(w)
	return w.Data()
}

// Restore implements Service. The mutation journal cannot describe a
// wholesale state replacement, so Restore breaks it: the next
// checkpoint falls back to a full snapshot (unless a state-transfer
// install completes the picture and calls ResetJournal).
func (s *SpaceService) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	count := r.Uvarint()
	if count > maxBatch {
		return fmt.Errorf("bft: snapshot with %d tuples", count)
	}
	tuples := make([]tuple.Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		tuples = append(tuples, r.Tuple())
	}
	if s.ptx == nil {
		r.ExpectEOF()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("bft: restore space: %w", err)
	}
	s.journal, s.journalBroken = nil, true
	s.inner.Restore(tuples)
	if s.ptx != nil {
		return s.restorePartitionSnapshot(r)
	}
	return nil
}

// resultToError converts a decoded SpaceResult status into the error
// the local PEATS would return, so the two realisations are
// interchangeable behind peats.TupleSpace.
func resultToError(res wire.SpaceResult) error {
	switch res.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusDenied:
		return &peats.DeniedError{Detail: res.Detail}
	default:
		return errors.New("peats service: " + res.Detail)
	}
}
