package bft

import (
	"errors"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// Service is the deterministic state machine a replica executes. The
// replication layer guarantees every correct replica applies the same
// (client, op) sequence; the service must therefore be a pure function
// of that sequence (paper §4: "both the augmented tuple space and the
// reference monitor are deterministic objects").
type Service interface {
	// Execute applies one operation invoked by the authenticated client
	// and returns the canonical result bytes.
	Execute(client string, op []byte) []byte
	// Snapshot returns the canonical encoding of the current state.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// SpaceService is the PEATS state machine: an augmented tuple space
// guarded by the reference monitor, executing wire.SpaceOp operations.
// This is the box marked "interceptor + tuple space" in Fig. 2.
//
// The space's store engine is pluggable (NewSpaceServiceWithEngine).
// Replicas running different engines stay consistent: the Store
// determinism contract guarantees identical match order for identical
// operation sequences, and Snapshot/Restore exchange engine-neutral
// tuple lists, so checkpoints and state transfers install cleanly on
// any engine.
type SpaceService struct {
	inner *space.Space
	pol   policy.Policy
}

var _ Service = (*SpaceService)(nil)

// NewSpaceService returns a PEATS service protected by the given
// policy, backed by the default store engine.
func NewSpaceService(pol policy.Policy) *SpaceService {
	return &SpaceService{inner: space.New(), pol: pol}
}

// NewSpaceServiceWithEngine returns a PEATS service whose space uses
// the named store engine.
func NewSpaceServiceWithEngine(pol policy.Policy, e space.Engine) (*SpaceService, error) {
	inner, err := space.NewWithEngine(e)
	if err != nil {
		return nil, err
	}
	return &SpaceService{inner: inner, pol: pol}, nil
}

// Space exposes the underlying space for inspection in tests.
func (s *SpaceService) Space() *space.Space { return s.inner }

// Execute implements Service. Malformed operations yield StatusError;
// operations rejected by the monitor yield StatusDenied. Both are
// deterministic results, so replicas never diverge on bad input.
func (s *SpaceService) Execute(client string, op []byte) []byte {
	decoded, err := wire.DecodeSpaceOp(op)
	if err != nil {
		return wire.EncodeSpaceResult(wire.SpaceResult{
			Status: wire.StatusError, Detail: err.Error(),
		})
	}
	inv := policy.Invocation{
		Invoker:  policy.ProcessID(client),
		Op:       decoded.Op,
		Template: decoded.Template,
		Entry:    decoded.Entry,
	}
	var res wire.SpaceResult
	s.inner.Do(func(tx *space.Tx) {
		if d := s.pol.Evaluate(inv, tx); !d.Allowed {
			res = wire.SpaceResult{Status: wire.StatusDenied, Detail: inv.String()}
			return
		}
		switch decoded.Op {
		case policy.OpOut:
			if err := tx.Out(decoded.Entry); err != nil {
				res = wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}
				return
			}
			res = wire.SpaceResult{Status: wire.StatusOK}
		case policy.OpRdp:
			t, ok := tx.Rdp(decoded.Template)
			res = wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}
		case policy.OpInp:
			t, ok := tx.Inp(decoded.Template)
			res = wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}
		case policy.OpRdAll:
			all := tx.RdAll(decoded.Template)
			res = wire.SpaceResult{Status: wire.StatusOK, Found: len(all) > 0, Tuples: all}
		case policy.OpCas:
			ins, matched, err := tx.Cas(decoded.Template, decoded.Entry)
			if err != nil {
				res = wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}
				return
			}
			res = wire.SpaceResult{Status: wire.StatusOK, Inserted: ins, Tuple: matched}
		default:
			res = wire.SpaceResult{Status: wire.StatusError,
				Detail: fmt.Sprintf("unsupported op %v", decoded.Op)}
		}
	})
	return wire.EncodeSpaceResult(res)
}

// Snapshot implements Service: the canonical encoding of the tuple list.
func (s *SpaceService) Snapshot() []byte {
	tuples := s.inner.Snapshot()
	w := wire.NewWriter()
	w.Uvarint(uint64(len(tuples)))
	for _, t := range tuples {
		w.Tuple(t)
	}
	return w.Data()
}

// Restore implements Service.
func (s *SpaceService) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	count := r.Uvarint()
	if count > maxBatch {
		return fmt.Errorf("bft: snapshot with %d tuples", count)
	}
	tuples := make([]tuple.Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		tuples = append(tuples, r.Tuple())
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bft: restore space: %w", err)
	}
	s.inner.Restore(tuples)
	return nil
}

// resultToError converts a decoded SpaceResult status into the error
// the local PEATS would return, so the two realisations are
// interchangeable behind peats.TupleSpace.
func resultToError(res wire.SpaceResult) error {
	switch res.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusDenied:
		return fmt.Errorf("%w: %s", peats.ErrDenied, res.Detail)
	default:
		return errors.New("peats service: " + res.Detail)
	}
}
