package bft

import (
	"errors"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// Service is the deterministic state machine a replica executes. The
// replication layer guarantees every correct replica applies the same
// (client, op) sequence; the service must therefore be a pure function
// of that sequence (paper §4: "both the augmented tuple space and the
// reference monitor are deterministic objects").
type Service interface {
	// Execute applies one operation invoked by the authenticated client
	// and returns the canonical result bytes.
	Execute(client string, op []byte) []byte
	// Snapshot returns the canonical encoding of the current state.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// BatchExecutor is an optional Service extension: a service that can
// apply a committed batch of operations in one atomic step (one
// critical section instead of one per operation). The results must be
// identical to executing the operations one by one in order — the
// replica falls back to sequential Execute when the extension is
// absent, and the two paths must not be distinguishable.
type BatchExecutor interface {
	// ExecuteBatch applies ops[i] as clients[i] for every i, in order,
	// atomically, returning one result per operation.
	ExecuteBatch(clients []string, ops [][]byte) [][]byte
}

// ReadOnlyExecutor is an optional Service extension backing the
// read-only fast path: executing a non-mutating operation against the
// current state, outside the ordered sequence. Implementations must
// return ok=false for any operation that would mutate state — the
// replica then stays silent and the client falls back to ordering.
//
// ExecuteReadOnly is called from the replica's read worker pool,
// concurrently with itself and with Execute/ExecuteBatch on the event
// loop, so implementations must synchronise internally (SpaceService
// uses the space's shard read locks).
type ReadOnlyExecutor interface {
	ExecuteReadOnly(client string, op []byte) (result []byte, ok bool)
}

// SpaceService is the PEATS state machine: an augmented tuple space
// guarded by the reference monitor, executing wire.SpaceOp operations.
// This is the box marked "interceptor + tuple space" in Fig. 2.
//
// The space's store engine and shard count are pluggable
// (NewSpaceServiceWithConfig). Replicas running different engines or
// shard counts stay consistent: the Store determinism contract and the
// space's merge-by-sequence iteration guarantee identical match order
// for identical operation sequences, and Snapshot/Restore exchange
// engine-neutral tuple lists, so checkpoints and state transfers
// install cleanly on any configuration.
//
// Ordered execution write-locks only the shards a batch's operations
// route to (read-locking the rest for the monitor), and the read-only
// fast path takes shared locks everywhere — so fast-path reads run
// concurrently with each other and with ordered execution on other
// shards.
type SpaceService struct {
	inner *space.Space
	pol   policy.Policy
}

var (
	_ Service          = (*SpaceService)(nil)
	_ BatchExecutor    = (*SpaceService)(nil)
	_ ReadOnlyExecutor = (*SpaceService)(nil)
)

// NewSpaceService returns a PEATS service protected by the given
// policy, backed by the default store engine.
func NewSpaceService(pol policy.Policy) *SpaceService {
	return &SpaceService{inner: space.New(), pol: pol}
}

// NewSpaceServiceWithEngine returns a PEATS service whose space uses
// the named store engine, with a single shard.
func NewSpaceServiceWithEngine(pol policy.Policy, e space.Engine) (*SpaceService, error) {
	return NewSpaceServiceWithConfig(pol, e, 1)
}

// NewSpaceServiceWithConfig returns a PEATS service whose space uses
// the named store engine partitioned into the given number of shards
// (shards ≤ 0 selects 1).
func NewSpaceServiceWithConfig(pol policy.Policy, e space.Engine, shards int) (*SpaceService, error) {
	if shards <= 0 {
		shards = 1
	}
	inner, err := space.NewSharded(e, shards)
	if err != nil {
		return nil, err
	}
	return &SpaceService{inner: inner, pol: pol}, nil
}

// Space exposes the underlying space for inspection in tests.
func (s *SpaceService) Space() *space.Space { return s.inner }

// Execute implements Service. Malformed operations yield StatusError;
// operations rejected by the monitor yield StatusDenied. Both are
// deterministic results, so replicas never diverge on bad input.
func (s *SpaceService) Execute(client string, op []byte) []byte {
	decoded, err := wire.DecodeSpaceOp(op)
	if err != nil {
		return encodeOpError(err)
	}
	var ws space.ShardSet
	s.addWrites(&ws, decoded)
	var res []byte
	s.inner.DoScoped(ws, func(tx *space.Tx) {
		res = s.executeIn(tx, client, decoded)
	})
	return res
}

// addWrites adds the shards decoded may mutate to ws. Reads need no
// entry: scoped transactions hold shared locks on every other shard,
// so the reference monitor and the read operations observe the whole
// space consistently.
func (s *SpaceService) addWrites(ws *space.ShardSet, decoded wire.SpaceOp) {
	switch decoded.Op {
	case policy.OpOut:
		ws.Add(s.inner.EntryShard(decoded.Entry))
	case policy.OpCas:
		ws.Add(s.inner.EntryShard(decoded.Entry))
	case policy.OpInp:
		if idx, keyed := s.inner.TemplateShard(decoded.Template); keyed {
			ws.Add(idx)
		} else {
			// A wildcard-first destructive read may remove from any
			// shard.
			ws.AddAll()
		}
	}
}

func encodeOpError(err error) []byte {
	return wire.EncodeSpaceResult(wire.SpaceResult{
		Status: wire.StatusError, Detail: err.Error(),
	})
}

// ExecuteBatch implements BatchExecutor: every operation of a committed
// batch executes inside one space critical section scoped to the shards
// the batch writes, amortizing the locks and making the batch atomic
// with respect to concurrent read-only execution on those shards.
// Fast-path reads routed to shards the batch does not write proceed in
// parallel with the batch.
func (s *SpaceService) ExecuteBatch(clients []string, ops [][]byte) [][]byte {
	results := make([][]byte, len(ops))
	decoded := make([]wire.SpaceOp, len(ops))
	var ws space.ShardSet
	for i, op := range ops {
		d, err := wire.DecodeSpaceOp(op)
		if err != nil {
			results[i] = encodeOpError(err)
			continue
		}
		decoded[i] = d
		s.addWrites(&ws, d)
	}
	s.inner.DoScoped(ws, func(tx *space.Tx) {
		for i := range ops {
			if results[i] != nil {
				continue // malformed: deterministic error already encoded
			}
			results[i] = s.executeIn(tx, clients[i], decoded[i])
		}
	})
	return results
}

// ExecuteReadOnly implements ReadOnlyExecutor: rdp and rdAll (the
// non-mutating operations) execute against current state without
// ordering, still passing through the reference monitor. Every other
// operation — and any malformed one, whose deterministic error result
// per-replica voting would mask anyway — reports ok=false so the
// client falls back to the ordered path.
//
// The section holds only shard read locks (DoRead), so fast-path reads
// run concurrently with each other and with ordered execution on
// shards the current batch does not write.
func (s *SpaceService) ExecuteReadOnly(client string, op []byte) ([]byte, bool) {
	decoded, err := wire.DecodeSpaceOp(op)
	if err != nil {
		return nil, false
	}
	switch decoded.Op {
	case policy.OpRdp, policy.OpRdAll:
	default:
		return nil, false
	}
	var res []byte
	s.inner.DoRead(func(tx *space.Tx) {
		res = s.executeIn(tx, client, decoded)
	})
	return res, true
}

// executeIn applies one decoded operation inside an open critical
// section.
func (s *SpaceService) executeIn(tx *space.Tx, client string, decoded wire.SpaceOp) []byte {
	inv := policy.Invocation{
		Invoker:  policy.ProcessID(client),
		Op:       decoded.Op,
		Template: decoded.Template,
		Entry:    decoded.Entry,
	}
	var res wire.SpaceResult
	if d := s.pol.Evaluate(inv, tx); !d.Allowed {
		res = wire.SpaceResult{Status: wire.StatusDenied, Detail: inv.String()}
		return wire.EncodeSpaceResult(res)
	}
	switch decoded.Op {
	case policy.OpOut:
		if err := tx.Out(decoded.Entry); err != nil {
			res = wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}
			break
		}
		res = wire.SpaceResult{Status: wire.StatusOK}
	case policy.OpRdp:
		t, ok := tx.Rdp(decoded.Template)
		res = wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}
	case policy.OpInp:
		t, ok := tx.Inp(decoded.Template)
		res = wire.SpaceResult{Status: wire.StatusOK, Found: ok, Tuple: t}
	case policy.OpRdAll:
		all := tx.RdAll(decoded.Template)
		res = wire.SpaceResult{Status: wire.StatusOK, Found: len(all) > 0, Tuples: all}
	case policy.OpCas:
		ins, matched, err := tx.Cas(decoded.Template, decoded.Entry)
		if err != nil {
			res = wire.SpaceResult{Status: wire.StatusError, Detail: err.Error()}
			break
		}
		res = wire.SpaceResult{Status: wire.StatusOK, Inserted: ins, Tuple: matched}
	default:
		res = wire.SpaceResult{Status: wire.StatusError,
			Detail: fmt.Sprintf("unsupported op %v", decoded.Op)}
	}
	return wire.EncodeSpaceResult(res)
}

// Snapshot implements Service: the canonical encoding of the tuple list.
func (s *SpaceService) Snapshot() []byte {
	tuples := s.inner.Snapshot()
	w := wire.NewWriter()
	w.Uvarint(uint64(len(tuples)))
	for _, t := range tuples {
		w.Tuple(t)
	}
	return w.Data()
}

// Restore implements Service.
func (s *SpaceService) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	count := r.Uvarint()
	if count > maxBatch {
		return fmt.Errorf("bft: snapshot with %d tuples", count)
	}
	tuples := make([]tuple.Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		tuples = append(tuples, r.Tuple())
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bft: restore space: %w", err)
	}
	s.inner.Restore(tuples)
	return nil
}

// resultToError converts a decoded SpaceResult status into the error
// the local PEATS would return, so the two realisations are
// interchangeable behind peats.TupleSpace.
func resultToError(res wire.SpaceResult) error {
	switch res.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusDenied:
		return fmt.Errorf("%w: %s", peats.ErrDenied, res.Detail)
	default:
		return errors.New("peats service: " + res.Detail)
	}
}
