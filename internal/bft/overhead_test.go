package bft

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
	"time"

	"peats/internal/metrics"
)

// batchWork models the per-batch service work the agreement hot path
// does around the instrumentation sites: digesting each request (the
// replica MACs and hashes every message it orders) and churning the
// tuple map (execution inserts and withdraws entries). reqs matches
// the server's default -batch of 64.
func batchWork(seq uint64, store map[uint64][32]byte, buf []byte) {
	const reqs = 64
	for i := 0; i < reqs; i++ {
		binary.BigEndian.PutUint64(buf, seq+uint64(i))
		store[seq+uint64(i)] = sha256.Sum256(buf)
	}
	for i := 0; i < reqs; i++ {
		delete(store, seq+uint64(i))
	}
}

// hotBatch is one agreement round's worth of instrumentation exactly as
// replica.go places it: propose (counter + queue-delay histogram),
// accept (fill histogram), execute (two counters). With a nil registry
// every handle is nil and each site costs one branch.
func hotBatch(m *replicaMetrics, seq uint64, store map[uint64][32]byte, buf []byte) {
	var queuedAt time.Time
	if m.batchDelay != nil {
		queuedAt = time.Now()
	}
	batchWork(seq, store, buf)
	m.batchesProposed.Inc()
	if m.batchDelay != nil {
		m.batchDelay.Observe(time.Since(queuedAt).Seconds())
	}
	m.batchFill.Observe(64)
	m.batchesExecuted.Inc()
	m.requestsExecuted.Add(64)
}

func benchHotPath(b *testing.B, m *replicaMetrics) {
	store := make(map[uint64][32]byte, 128)
	buf := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hotBatch(m, uint64(i)*64, store, buf)
	}
}

func liveReplicaMetrics() *replicaMetrics {
	reg := metrics.New()
	lbl := metrics.L("replica", "bench")
	return &replicaMetrics{
		batchesProposed:  reg.Counter("peats_bft_batches_proposed_total", "", lbl),
		batchesExecuted:  reg.Counter("peats_bft_batches_executed_total", "", lbl),
		requestsExecuted: reg.Counter("peats_bft_requests_executed_total", "", lbl),
		batchFill:        reg.Histogram("peats_bft_batch_fill", "", metrics.SizeBuckets, lbl),
		batchDelay:       reg.Histogram("peats_bft_batch_delay_seconds", "", metrics.DurationBuckets, lbl),
	}
}

func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchHotPath(b, &replicaMetrics{})
	})
	b.Run("enabled", func(b *testing.B) {
		benchHotPath(b, liveReplicaMetrics())
	})
}

// TestMetricsOverheadBound guards the tentpole's cost contract: the
// instrumented agreement hot path must stay within 3% of the
// uninstrumented one. Best of up to five attempts, since a single
// testing.Benchmark sample can catch a scheduling hiccup.
func TestMetricsOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		off := testing.Benchmark(func(b *testing.B) {
			benchHotPath(b, &replicaMetrics{})
		})
		on := testing.Benchmark(func(b *testing.B) {
			benchHotPath(b, liveReplicaMetrics())
		})
		ratio := float64(on.NsPerOp()) / float64(off.NsPerOp())
		t.Logf("attempt %d: disabled %d ns/op, enabled %d ns/op, ratio %.4f",
			attempt, off.NsPerOp(), on.NsPerOp(), ratio)
		if attempt == 0 || ratio < best {
			best = ratio
		}
		if best <= 1.03 {
			return
		}
	}
	t.Errorf("metrics overhead ratio %.4f, want ≤ 1.03", best)
}
