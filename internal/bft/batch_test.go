package bft

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/wire"
)

func encodeOutOp(t *testing.T, entry tuple.Tuple) []byte {
	t.Helper()
	return wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpOut, Entry: entry})
}

func encodeInpOp(t *testing.T, tmpl tuple.Tuple) []byte {
	t.Helper()
	return wire.EncodeSpaceOp(wire.SpaceOp{Op: policy.OpInp, Template: tmpl})
}

// TestClusterBatchedDuplicateRequestsExecuteOnce generalizes
// TestClusterDuplicateRequestsExecuteOnce to batches: concurrent
// clients with aggressive retransmission on a batching cluster must
// still execute every request exactly once — the at-most-once client
// table applies inside batches exactly as it does per request.
func TestClusterBatchedDuplicateRequestsExecuteOnce(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}, WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const clients, ops = 4, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := cl.Client(fmt.Sprintf("dup%d", c))
			cli.RetransmitInterval = 5 * time.Millisecond // aggressive resends
			ts := NewRemoteSpace(cli)
			for i := 0; i < ops; i++ {
				if err := ts.Out(ctx, tuple.T(tuple.Str("DUP"), tuple.Int(int64(c)))); err != nil {
					t.Errorf("client %d out %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	reader := NewRemoteSpace(cl.Client("reader"))
	for c := 0; c < clients; c++ {
		count := 0
		for {
			_, ok, err := reader.Inp(ctx, tuple.T(tuple.Str("DUP"), tuple.Int(int64(c))))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			count++
		}
		if count != ops {
			t.Errorf("client %d: %d DUP tuples, want %d (lost or duplicated execution)", c, count, ops)
		}
	}
}

// TestBatchingCoalescesConcurrentRequests asserts batching actually
// engages: under concurrent load the primary must issue strictly fewer
// proposals than requests.
func TestBatchingCoalescesConcurrentRequests(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}, WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const writers, ops = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := NewRemoteSpace(cl.Client(fmt.Sprintf("w%d", w)))
			for i := 0; i < ops; i++ {
				if err := ts.Out(ctx, tuple.T(tuple.Str("B"), tuple.Int(int64(w)), tuple.Int(int64(i)))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := uint64(writers * ops)
	proposals := cl.Replicas[0].BatchesProposed()
	if proposals == 0 || proposals >= total {
		t.Errorf("primary proposed %d batches for %d requests — batching never engaged", proposals, total)
	}
	t.Logf("%d requests in %d proposals (avg batch %.1f)", total, proposals, float64(total)/float64(proposals))
}

// TestLogBoundedUnderSustainedLoad asserts the checkpoint garbage
// collection: protocol-log records (entries, pending, assigned, queue,
// unverified) must stay bounded under sustained load instead of
// growing with the request count.
func TestLogBoundedUnderSustainedLoad(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol), NewSpaceService(pol),
	}, WithBatchSize(4), WithCheckpointInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const clients, ops = 4, 60 // 240 requests, far above any allowed log bound
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ts := NewRemoteSpace(cl.Client(fmt.Sprintf("s%d", c)))
			entry := tuple.T(tuple.Str("S"), tuple.Int(int64(c)))
			for i := 0; i < ops; i++ {
				if i%2 == 0 {
					if err := ts.Out(ctx, entry); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
				} else if _, _, err := ts.Inp(ctx, entry); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Give trailing commits and checkpoints a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		worst := int64(0)
		for _, r := range cl.Replicas {
			if lr := r.LogRecords(); lr > worst {
				worst = lr
			}
		}
		if worst <= 64 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i, r := range cl.Replicas {
		t.Logf("r%d: %d log records, executed %d", i, r.LogRecords(), r.Executed())
	}
	t.Errorf("log records not garbage-collected at stable checkpoints")
}

// orderedOnlyService hides the BatchExecutor and ReadOnlyExecutor
// extensions of a SpaceService, modelling a service that can only
// execute ordered, one request at a time.
type orderedOnlyService struct {
	inner *SpaceService
}

func (s orderedOnlyService) Execute(client string, op []byte) []byte {
	return s.inner.Execute(client, op)
}
func (s orderedOnlyService) Snapshot() []byte       { return s.inner.Snapshot() }
func (s orderedOnlyService) Restore(b []byte) error { return s.inner.Restore(b) }

// TestReadOnlyFallsBackToOrdered: when too few replicas can serve the
// read-only fast path (here two replicas whose service cannot execute
// read-only), the 2f+1 vote cannot form and the client must fall back
// to ordered execution — and still return the correct result.
func TestReadOnlyFallsBackToOrdered(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol),
		orderedOnlyService{NewSpaceService(pol)},
		NewSpaceService(pol),
		orderedOnlyService{NewSpaceService(pol)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("w"))
	if err := ts.Out(ctx, tuple.T(tuple.Str("RO"), tuple.Int(7))); err != nil {
		t.Fatal(err)
	}
	cli := cl.Client("r")
	cli.ReadOnlyFallback = 20 * time.Millisecond
	reader := NewRemoteSpace(cli)
	got, ok, err := reader.Rdp(ctx, tuple.T(tuple.Str("RO"), tuple.Any()))
	if err != nil || !ok {
		t.Fatalf("rdp via fallback: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 7 {
		t.Errorf("rdp = %v", got)
	}
}

// TestReadOnlyMatchesOrdered: the fast path and the ordered path must
// agree on results over a settled cluster, found and not-found alike.
func TestReadOnlyMatchesOrdered(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	w := NewRemoteSpace(cl.Client("w"))
	for i := int64(0); i < 5; i++ {
		if err := w.Out(ctx, tuple.T(tuple.Str("M"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	ro := NewRemoteSpace(cl.Client("ro"))
	ordered := NewRemoteSpace(cl.Client("ord"))
	ordered.OrderedReads = true
	for _, tmpl := range []tuple.Tuple{
		tuple.T(tuple.Str("M"), tuple.Int(3)),
		tuple.T(tuple.Str("M"), tuple.Any()),
		tuple.T(tuple.Str("ABSENT"), tuple.Any()),
	} {
		gotRO, okRO, err := ro.Rdp(ctx, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		gotOrd, okOrd, err := ordered.Rdp(ctx, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if okRO != okOrd || gotRO.String() != gotOrd.String() {
			t.Errorf("rdp(%v): read-only %v/%v vs ordered %v/%v", tmpl, gotRO, okRO, gotOrd, okOrd)
		}
		allRO, err := ro.RdAll(ctx, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		allOrd, err := ordered.RdAll(ctx, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if len(allRO) != len(allOrd) {
			t.Errorf("rdAll(%v): read-only %d vs ordered %d", tmpl, len(allRO), len(allOrd))
		}
	}
}

// TestExecuteBatchMatchesSequential holds the BatchExecutor extension
// to its contract: batch execution must be indistinguishable from
// executing the operations one by one in order.
func TestExecuteBatchMatchesSequential(t *testing.T) {
	pol := policy.AllowAll()
	seqSvc := NewSpaceService(pol)
	batSvc := NewSpaceService(pol)

	var clients []string
	var ops [][]byte
	for i := 0; i < 10; i++ {
		clients = append(clients, fmt.Sprintf("c%d", i%3))
		op := encodeOutOp(t, tuple.T(tuple.Str("T"), tuple.Int(int64(i%4))))
		if i%3 == 2 {
			op = encodeInpOp(t, tuple.T(tuple.Str("T"), tuple.Any()))
		}
		ops = append(ops, op)
	}

	var seqResults [][]byte
	for i := range ops {
		seqResults = append(seqResults, seqSvc.Execute(clients[i], ops[i]))
	}
	batResults := batSvc.ExecuteBatch(clients, ops)

	for i := range ops {
		if !bytes.Equal(seqResults[i], batResults[i]) {
			t.Errorf("op %d: sequential %x vs batch %x", i, seqResults[i], batResults[i])
		}
	}
	if !bytes.Equal(seqSvc.Snapshot(), batSvc.Snapshot()) {
		t.Error("state diverged between sequential and batch execution")
	}
}
