package bft

import (
	"fmt"
	"log"
	"sort"
	"sync/atomic"
	"time"

	"peats/internal/auth"
	"peats/internal/transport"
	"peats/internal/wire"
)

// ReplicaConfig configures one replica of the replicated PEATS.
type ReplicaConfig struct {
	// ID is this replica's identity; it must appear in Replicas.
	ID string
	// Replicas is the ordered replica group; the primary of view v is
	// Replicas[v mod n].
	Replicas []string
	// F is the number of Byzantine replicas tolerated; len(Replicas)
	// must be at least 3F+1.
	F int
	// Transport carries protocol messages; its identity must equal ID.
	Transport transport.Transport
	// Service is the deterministic state machine to replicate.
	Service Service
	// CheckpointInterval is the number of executions between
	// checkpoints (default 64).
	CheckpointInterval uint64
	// ViewChangeTimeout is how long a backup waits for a pending request
	// to commit before suspecting the primary (default 500ms). Each
	// unsuccessful view change doubles it.
	ViewChangeTimeout time.Duration
	// Logger receives protocol diagnostics; nil disables logging.
	Logger *log.Logger
}

// logEntry tracks one sequence number through the three phases.
type logEntry struct {
	prePrepare *PrePrepare
	prepares   map[string]struct{} // replicas that vouched (incl. primary via pre-prepare)
	commits    map[string]struct{}
	sentCommit bool
	executed   bool
}

// clientRecord implements at-most-once execution per client.
type clientRecord struct {
	lastReqID uint64
	lastReply []byte
	lastView  uint64
}

// Replica is one member of the replicated PEATS group. Start launches
// its event loop; Stop shuts it down.
type Replica struct {
	cfg     ReplicaConfig
	n       int
	index   int
	logger  *log.Logger
	tr      transport.Transport
	service Service

	// Protocol state, owned by the event loop goroutine.
	view        uint64
	seq         uint64 // highest sequence assigned (primary)
	executed    uint64 // highest sequence executed
	lowWater    uint64 // last stable checkpoint
	entries     map[uint64]*logEntry
	clients     map[string]*clientRecord
	pending     map[[32]byte]Request  // awaiting commit (view-change timer)
	assigned    map[[32]byte]uint64   // primary: digest → assigned seq (current view)
	unverified  map[uint64]PrePrepare // pre-prepares awaiting the client's first-hand request
	checkpoints map[uint64]map[string][32]byte
	snapshots   map[uint64][]byte

	inViewChange bool
	nextTimeout  time.Duration
	viewChanges  map[uint64]map[string]ViewChange

	timer *time.Timer
	stop  chan struct{}
	done  chan struct{}

	// Atomic mirrors of loop-owned state for external observation.
	viewMirror     atomic.Uint64
	executedMirror atomic.Uint64
}

// window is the high-water offset: sequence numbers beyond
// lowWater+window are refused until a checkpoint advances.
const window = 1024

// NewReplica validates the configuration and returns a stopped replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if len(cfg.Replicas) < 3*cfg.F+1 {
		return nil, fmt.Errorf("bft: %d replicas cannot tolerate f=%d (need ≥ %d)",
			len(cfg.Replicas), cfg.F, 3*cfg.F+1)
	}
	index := -1
	for i, id := range cfg.Replicas {
		if id == cfg.ID {
			index = i
			break
		}
	}
	if index < 0 {
		return nil, fmt.Errorf("bft: replica %q not in group", cfg.ID)
	}
	if cfg.Transport == nil || cfg.Service == nil {
		return nil, fmt.Errorf("bft: transport and service are required")
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 64
	}
	if cfg.ViewChangeTimeout <= 0 {
		cfg.ViewChangeTimeout = 500 * time.Millisecond
	}
	r := &Replica{
		cfg:         cfg,
		n:           len(cfg.Replicas),
		index:       index,
		logger:      cfg.Logger,
		tr:          cfg.Transport,
		service:     cfg.Service,
		entries:     make(map[uint64]*logEntry),
		clients:     make(map[string]*clientRecord),
		pending:     make(map[[32]byte]Request),
		assigned:    make(map[[32]byte]uint64),
		unverified:  make(map[uint64]PrePrepare),
		checkpoints: make(map[uint64]map[string][32]byte),
		snapshots:   make(map[uint64][]byte),
		viewChanges: make(map[uint64]map[string]ViewChange),
		nextTimeout: cfg.ViewChangeTimeout,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	return r, nil
}

// Start launches the replica's event loop.
func (r *Replica) Start() {
	r.timer = time.NewTimer(time.Hour)
	r.timer.Stop()
	go r.run()
}

// Stop terminates the event loop and waits for it to exit.
func (r *Replica) Stop() {
	close(r.stop)
	<-r.done
}

// View returns the replica's current view.
func (r *Replica) View() uint64 { return r.viewMirror.Load() }

// Executed returns the highest executed sequence number.
func (r *Replica) Executed() uint64 { return r.executedMirror.Load() }

func (r *Replica) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf("[%s v=%d] "+format, append([]any{r.cfg.ID, r.view}, args...)...)
	}
}

func (r *Replica) primary(view uint64) string {
	return r.cfg.Replicas[view%uint64(r.n)]
}

func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.cfg.ID }

// quorum is the prepare/commit quorum: 2f+1 distinct replicas.
func (r *Replica) quorum() int { return 2*r.cfg.F + 1 }

func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case m, ok := <-r.tr.Inbox():
			if !ok {
				return
			}
			r.dispatch(m)
			r.sync()
		case <-r.timer.C:
			r.onTimeout()
			r.sync()
		}
	}
}

// sync refreshes the externally visible mirrors; the loop calls it
// after every event.
func (r *Replica) sync() {
	r.viewMirror.Store(r.view)
	r.executedMirror.Store(r.executed)
}

func (r *Replica) dispatch(m transport.Inbound) {
	msg, err := Unmarshal(m.Payload)
	if err != nil {
		r.logf("drop malformed message from %s: %v", m.From, err)
		return
	}
	switch msg := msg.(type) {
	case Request:
		// Requests come from clients; the transport authenticated the
		// sender, so a Byzantine client cannot submit ops under another
		// client's identity.
		if msg.Client != m.From {
			r.logf("drop request claiming %q from %q", msg.Client, m.From)
			return
		}
		r.onRequest(msg)
	case PrePrepare:
		if m.From != r.primary(msg.View) {
			r.logf("drop pre-prepare from non-primary %s", m.From)
			return
		}
		r.onPrePrepare(msg)
	case Prepare:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onPrepare(msg)
	case Commit:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onCommit(msg)
	case Checkpoint:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onCheckpoint(msg)
	case ViewChange:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onViewChange(msg)
	case NewView:
		if msg.Replica != m.From || m.From != r.primary(msg.View) {
			return
		}
		r.onNewView(msg)
	case StateRequest:
		if !r.isReplica(m.From) {
			return
		}
		r.onStateRequest(msg, m.From)
	case StateResponse:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onStateResponse(msg)
	default:
		r.logf("drop unexpected %T from %s", msg, m.From)
	}
}

func (r *Replica) isReplica(id string) bool {
	for _, rid := range r.cfg.Replicas {
		if rid == id {
			return true
		}
	}
	return false
}

func (r *Replica) broadcast(msg any) {
	payload, err := Marshal(msg)
	if err != nil {
		r.logf("marshal %T: %v", msg, err)
		return
	}
	for _, id := range r.cfg.Replicas {
		if id == r.cfg.ID {
			continue
		}
		if err := r.tr.Send(id, payload); err != nil {
			r.logf("send to %s: %v", id, err)
		}
	}
}

func (r *Replica) sendTo(id string, msg any) {
	payload, err := Marshal(msg)
	if err != nil {
		r.logf("marshal %T: %v", msg, err)
		return
	}
	if err := r.tr.Send(id, payload); err != nil {
		r.logf("send to %s: %v", id, err)
	}
}

// ---- Normal case ----

func (r *Replica) onRequest(req Request) {
	// At-most-once: answer duplicates from the client table.
	if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
		if req.ReqID == rec.lastReqID && rec.lastReply != nil {
			r.sendTo(req.Client, Reply{
				View: rec.lastView, Client: req.Client, ReqID: req.ReqID,
				Replica: r.cfg.ID, Result: rec.lastReply,
			})
		}
		return
	}
	if r.inViewChange {
		return
	}
	digest := req.Digest()
	if r.isPrimary() {
		if _, dup := r.assigned[digest]; dup {
			return // already assigned a sequence number
		}
		if r.seq+1 > r.lowWater+window {
			r.logf("window full, dropping request %x", digest[:4])
			return
		}
		r.seq++
		pp := PrePrepare{View: r.view, Seq: r.seq, Digest: digest, Req: req}
		r.pending[digest] = req
		r.acceptPrePrepare(pp)
		r.broadcast(pp)
		r.armTimer()
		return
	}
	// Backup: clients broadcast requests to every replica, so the
	// primary has (or will get, via client retransmission) its own copy.
	// Track the request and suspect the primary if nothing commits
	// before the timer fires. Requests are deliberately never forwarded
	// replica-to-replica: channel MACs authenticate only hop-by-hop, so
	// a forwarded request would let a Byzantine replica forge client
	// operations.
	//
	// The timer is armed only when the request FIRST becomes pending:
	// client retransmissions must not keep pushing it back, or a faulty
	// primary would never be suspected.
	if _, dup := r.pending[digest]; dup {
		return
	}
	r.pending[digest] = req
	if len(r.pending) == 1 {
		r.armTimer()
	}
	r.retryUnverified(digest)
}

// verifiable reports whether the replica may vouch for a pre-prepared
// request: either the view-change no-op, or a request it received
// first-hand from the authenticated client. Without this check a
// Byzantine primary could alter a client's operation in its pre-prepare
// (requests are only channel-authenticated hop by hop, unlike PBFT's
// per-request authenticators) and the forgery could prepare and survive
// a view change.
func (r *Replica) verifiable(pp PrePrepare) bool {
	if pp.Req.Client == "" && len(pp.Req.Op) == 0 {
		return true // no-op filler from a NEW-VIEW
	}
	_, firsthand := r.pending[pp.Digest]
	if firsthand {
		return true
	}
	// Already-executed requests re-appear after view changes; the
	// client table proves we saw them first-hand before.
	if rec, ok := r.clients[pp.Req.Client]; ok && pp.Req.ReqID <= rec.lastReqID {
		return true
	}
	return false
}

// retryUnverified re-processes buffered pre-prepares once the client's
// first-hand copy of a request arrives.
func (r *Replica) retryUnverified(digest [32]byte) {
	for seq, pp := range r.unverified {
		if pp.Digest == digest {
			delete(r.unverified, seq)
			if pp.View == r.view {
				r.processPrePrepare(pp)
			}
		}
	}
}

func (r *Replica) entry(seq uint64) *logEntry {
	e, ok := r.entries[seq]
	if !ok {
		e = &logEntry{
			prepares: make(map[string]struct{}),
			commits:  make(map[string]struct{}),
		}
		r.entries[seq] = e
	}
	return e
}

func (r *Replica) onPrePrepare(pp PrePrepare) {
	if r.inViewChange || pp.View != r.view {
		return
	}
	if pp.Seq <= r.lowWater || pp.Seq > r.lowWater+window {
		return
	}
	if pp.Req.Digest() != pp.Digest {
		r.logf("pre-prepare digest mismatch at seq %d", pp.Seq)
		return
	}
	e := r.entry(pp.Seq)
	if e.prePrepare != nil {
		if e.prePrepare.Digest != pp.Digest {
			r.logf("conflicting pre-prepare at seq %d — primary equivocates", pp.Seq)
			r.startViewChange(r.view + 1)
		}
		return
	}
	if buffered, dup := r.unverified[pp.Seq]; dup && buffered.Digest != pp.Digest {
		r.logf("conflicting pre-prepare at seq %d — primary equivocates", pp.Seq)
		r.startViewChange(r.view + 1)
		return
	}
	if !r.verifiable(pp) {
		// Wait for the client's own broadcast (it retransmits) before
		// vouching; see verifiable. The view-change timer is already
		// armed by the pending request — deliberately NOT re-armed here,
		// or a primary could stall us forever with unverifiable
		// pre-prepares.
		r.unverified[pp.Seq] = pp
		return
	}
	r.processPrePrepare(pp)
}

// processPrePrepare accepts a verified pre-prepare and votes for it.
func (r *Replica) processPrePrepare(pp PrePrepare) {
	if r.isPrimary() {
		return
	}
	e := r.entry(pp.Seq)
	if e.prePrepare != nil {
		return
	}
	r.acceptPrePrepare(pp)
	prep := Prepare{View: pp.View, Seq: pp.Seq, Digest: pp.Digest, Replica: r.cfg.ID}
	r.broadcast(prep)
	r.tryPrepared(pp.Seq)
}

// acceptPrePrepare records the pre-prepare and the issuing primary's
// implicit prepare vote, plus our own.
func (r *Replica) acceptPrePrepare(pp PrePrepare) {
	e := r.entry(pp.Seq)
	ppCopy := pp
	e.prePrepare = &ppCopy
	e.prepares[r.primary(pp.View)] = struct{}{}
	e.prepares[r.cfg.ID] = struct{}{}
	if pp.Seq > r.seq {
		r.seq = pp.Seq
	}
	r.pending[pp.Digest] = pp.Req
	r.assigned[pp.Digest] = pp.Seq
}

func (r *Replica) onPrepare(p Prepare) {
	if r.inViewChange || p.View != r.view {
		return
	}
	if p.Seq <= r.lowWater || p.Seq > r.lowWater+window {
		return
	}
	e := r.entry(p.Seq)
	if e.prePrepare != nil && e.prePrepare.Digest != p.Digest {
		return // vote for a different request: ignore
	}
	e.prepares[p.Replica] = struct{}{}
	r.tryPrepared(p.Seq)
}

func (r *Replica) tryPrepared(seq uint64) {
	e := r.entries[seq]
	if e == nil || e.prePrepare == nil || e.sentCommit {
		return
	}
	if len(e.prepares) < r.quorum() {
		return
	}
	e.sentCommit = true
	c := Commit{View: r.view, Seq: seq, Digest: e.prePrepare.Digest, Replica: r.cfg.ID}
	e.commits[r.cfg.ID] = struct{}{}
	r.broadcast(c)
	r.tryExecute()
}

func (r *Replica) onCommit(c Commit) {
	if c.Seq <= r.lowWater || c.Seq > r.lowWater+window {
		return
	}
	// Commits are accepted across views: a commit quorum is meaningful
	// as long as the digest matches the accepted pre-prepare.
	e := r.entry(c.Seq)
	if e.prePrepare != nil && e.prePrepare.Digest != c.Digest {
		return
	}
	e.commits[c.Replica] = struct{}{}
	r.tryExecute()
}

// committed reports whether entry e has a commit quorum and is safe to
// execute.
func (r *Replica) committed(e *logEntry) bool {
	return e != nil && e.prePrepare != nil && e.sentCommit && len(e.commits) >= r.quorum()
}

// tryExecute applies committed requests in sequence order.
func (r *Replica) tryExecute() {
	for {
		next := r.executed + 1
		e := r.entries[next]
		if !r.committed(e) {
			return
		}
		req := e.prePrepare.Req
		result := r.executeOnce(req)
		e.executed = true
		r.executed = next
		delete(r.pending, e.prePrepare.Digest)
		delete(r.assigned, e.prePrepare.Digest)
		if result != nil {
			r.sendTo(req.Client, Reply{
				View: r.view, Client: req.Client, ReqID: req.ReqID,
				Replica: r.cfg.ID, Result: result,
			})
		}
		if len(r.pending) == 0 {
			r.disarmTimer()
		} else {
			r.armTimer()
		}
		if r.executed%r.cfg.CheckpointInterval == 0 {
			r.makeCheckpoint(r.executed)
		}
	}
}

// executeOnce applies a request unless the client table shows it was
// already executed (possible across view changes). It returns the
// result to send, or nil to stay silent.
func (r *Replica) executeOnce(req Request) []byte {
	rec, ok := r.clients[req.Client]
	if !ok {
		rec = &clientRecord{}
		r.clients[req.Client] = rec
	}
	if req.ReqID <= rec.lastReqID {
		if req.ReqID == rec.lastReqID {
			return rec.lastReply
		}
		return nil // old request re-ordered: never re-execute
	}
	result := r.service.Execute(req.Client, req.Op)
	rec.lastReqID = req.ReqID
	rec.lastReply = result
	rec.lastView = r.view
	return result
}

// ---- Checkpoints and state transfer ----

// stateSnapshot captures service state plus the client table (the
// client table is part of replicated state: without it a restored
// replica would re-execute old requests).
func (r *Replica) stateSnapshot() []byte {
	w := wire.NewWriter()
	w.Bytes(r.service.Snapshot())
	w.Uvarint(uint64(len(r.clients)))
	ids := make([]string, 0, len(r.clients))
	for id := range r.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := r.clients[id]
		w.String(id)
		w.Uvarint(rec.lastReqID)
		w.Bytes(rec.lastReply)
		w.Uvarint(rec.lastView)
	}
	return w.Data()
}

func (r *Replica) restoreState(snapshot []byte) error {
	rd := wire.NewReader(snapshot)
	svc := rd.Bytes()
	count := rd.Uvarint()
	if count > maxBatch {
		return fmt.Errorf("bft: snapshot with %d client records", count)
	}
	clients := make(map[string]*clientRecord, count)
	for i := uint64(0); i < count; i++ {
		id := rd.String()
		clients[id] = &clientRecord{
			lastReqID: rd.Uvarint(),
			lastReply: rd.Bytes(),
			lastView:  rd.Uvarint(),
		}
	}
	rd.ExpectEOF()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("bft: decode snapshot: %w", err)
	}
	if err := r.service.Restore(svc); err != nil {
		return err
	}
	r.clients = clients
	return nil
}

func (r *Replica) makeCheckpoint(seq uint64) {
	snap := r.stateSnapshot()
	r.snapshots[seq] = snap
	digest := auth.Digest(snap)
	cp := Checkpoint{Seq: seq, Digest: digest, Replica: r.cfg.ID}
	r.recordCheckpoint(cp)
	r.broadcast(cp)
}

func (r *Replica) onCheckpoint(cp Checkpoint) {
	r.recordCheckpoint(cp)
}

func (r *Replica) recordCheckpoint(cp Checkpoint) {
	if cp.Seq <= r.lowWater {
		return
	}
	byReplica, ok := r.checkpoints[cp.Seq]
	if !ok {
		byReplica = make(map[string][32]byte)
		r.checkpoints[cp.Seq] = byReplica
	}
	byReplica[cp.Replica] = cp.Digest
	// Count matching digests.
	counts := make(map[[32]byte]int)
	for _, d := range byReplica {
		counts[d]++
	}
	for d, c := range counts {
		if c < r.quorum() {
			continue
		}
		if cp.Seq <= r.executed {
			r.stabilize(cp.Seq)
		} else {
			// We are behind a stable checkpoint: fetch state from a
			// replica that has it.
			r.requestState(cp.Seq, d)
		}
		return
	}
}

// stabilize makes seq the low water mark and garbage-collects.
func (r *Replica) stabilize(seq uint64) {
	if seq <= r.lowWater {
		return
	}
	r.lowWater = seq
	for s := range r.entries {
		if s <= seq {
			delete(r.entries, s)
		}
	}
	for s := range r.checkpoints {
		if s < seq {
			delete(r.checkpoints, s)
		}
	}
	for s := range r.snapshots {
		if s < seq {
			delete(r.snapshots, s)
		}
	}
	r.logf("checkpoint stable at %d", seq)
}

func (r *Replica) requestState(seq uint64, digest [32]byte) {
	for id, d := range r.checkpoints[seq] {
		if d == digest && id != r.cfg.ID {
			r.sendTo(id, StateRequest{Seq: seq, Replica: r.cfg.ID})
			return
		}
	}
}

func (r *Replica) onStateRequest(req StateRequest, from string) {
	snap, ok := r.snapshots[req.Seq]
	if !ok {
		return
	}
	r.sendTo(from, StateResponse{Seq: req.Seq, View: r.view, Snapshot: snap, Replica: r.cfg.ID})
}

func (r *Replica) onStateResponse(resp StateResponse) {
	if resp.Seq <= r.executed {
		return
	}
	// Verify against a checkpoint quorum before installing.
	byReplica := r.checkpoints[resp.Seq]
	digest := auth.Digest(resp.Snapshot)
	matching := 0
	for _, d := range byReplica {
		if d == digest {
			matching++
		}
	}
	if matching < r.quorum() {
		r.logf("state response at %d lacks a digest quorum", resp.Seq)
		return
	}
	if err := r.restoreState(resp.Snapshot); err != nil {
		r.logf("restore at %d: %v", resp.Seq, err)
		return
	}
	r.executed = resp.Seq
	if resp.Seq > r.seq {
		r.seq = resp.Seq
	}
	r.snapshots[resp.Seq] = resp.Snapshot
	r.stabilize(resp.Seq)
	if resp.View > r.view {
		r.view = resp.View
		r.inViewChange = false
	}
	r.logf("state transfer installed seq %d", resp.Seq)
	r.tryExecute()
}
