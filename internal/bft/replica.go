package bft

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"log"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peats/internal/auth"
	"peats/internal/metrics"
	"peats/internal/transport"
	"peats/internal/vclock"
	"peats/internal/wire"
)

// ReplicaConfig configures one replica of the replicated PEATS.
type ReplicaConfig struct {
	// ID is this replica's identity; it must appear in Replicas.
	ID string
	// Replicas is the ordered replica group; the primary of view v is
	// Replicas[v mod n].
	Replicas []string
	// F is the number of Byzantine replicas tolerated; len(Replicas)
	// must be at least 3F+1.
	F int
	// Transport carries protocol messages; its identity must equal ID.
	Transport transport.Transport
	// Service is the deterministic state machine to replicate.
	Service Service
	// CheckpointInterval is the number of executions between
	// checkpoints (default 64).
	CheckpointInterval uint64
	// CompactEvery is the number of checkpoints between full state
	// snapshots (default 4). When the service supports incremental
	// checkpoints (DeltaSnapshotter), only one checkpoint in
	// CompactEvery serializes the whole state — re-basing the chained
	// checkpoint digest and, on a durable service, compacting the
	// write-ahead log; the checkpoints between publish deltas digested
	// over the chain, costing O(changes) instead of O(space). 1 makes
	// every checkpoint a full snapshot (the pre-delta behaviour).
	CompactEvery int
	// KeepCheckpointHistory retains every checkpoint digest this
	// replica publishes, for tests and diagnostics (CheckpointDigests).
	// Off by default so long-running replicas stay bounded.
	KeepCheckpointHistory bool
	// ViewChangeTimeout is how long a backup waits for a pending request
	// to commit before suspecting the primary (default 500ms). Each
	// unsuccessful view change doubles it.
	ViewChangeTimeout time.Duration
	// BatchSize is the maximum number of client requests the primary
	// proposes under one sequence number. At 1 (the default) every
	// request is proposed individually the moment it arrives — the
	// classic per-request protocol. Above 1 the primary accumulates
	// requests that arrive while earlier batches are in flight and
	// proposes them together, amortizing the three-phase round.
	BatchSize int
	// BatchDelay bounds how long the primary holds a non-full batch
	// open while earlier batches are in flight (default 2ms). It only
	// matters when BatchSize > 1: an idle pipeline always proposes
	// immediately, so the delay is never paid at low load.
	BatchDelay time.Duration
	// DisableTentative turns off tentative execution: the replica then
	// executes and replies only once the commit quorum lands. By
	// default, a service supporting TentativeService executes every
	// batch the moment it is locally prepared, replying tentatively one
	// protocol round early (Castro–Liskov).
	DisableTentative bool
	// Group names the replica group in a partitioned deployment. A
	// replica with a group identity stamps it into every reply and
	// drops client requests addressed to another group (requests with
	// an empty group are accepted for single-group compatibility).
	Group string
	// AttestKey, when set, lets the replica sign agreed results of
	// partition 2PC operations (wire.AttestPayload over Group and the
	// result bytes). Clients assemble 2f+1 such signatures into vote
	// certificates that other groups verify against the deployment
	// topology — the mechanism that makes cross-partition decisions
	// safe under an untrusted coordinator.
	AttestKey ed25519.PrivateKey
	// Keyring optionally holds the pairwise keys this replica shares
	// with clients. When set, the replica can vouch for a request it
	// only saw inside the primary's batch by verifying the client's
	// authenticator vector; without it, verification falls back to
	// first-hand copies broadcast by the client.
	Keyring *auth.Keyring
	// Logger receives protocol diagnostics; nil disables logging.
	Logger *log.Logger
	// Clock supplies the view-change and batch timers; nil means real
	// time. The simulator injects a virtual clock whose timers fire
	// synchronously on its event loop, so it owns all scheduling.
	Clock vclock.Clock
	// Metrics, when set, registers this replica's protocol metrics
	// (labelled replica=<ID>) and — when the service implements
	// MetricsEnabler — the service, store, durability and 2PC metrics
	// beneath it. Purely observational: metric state is never part of
	// checkpoint digests or any replicated state, and a nil registry
	// costs one predictable branch per instrumented site.
	Metrics *metrics.Registry
	// EventSink receives structured protocol events (see events.go).
	// Events fire on the event loop: the sink must be fast and must
	// never call back into the replica.
	EventSink EventSink
}

// logEntry tracks one sequence number through the three phases. Vote
// sets are bitmasks over replica group indexes (NewReplica bounds the
// group at 64), so recording a vote is a bit-or instead of a map
// insert — votes are the highest-volume messages in the protocol.
//
// prepares and commits only ever hold votes for the accepted batch's
// digest. Votes that arrive before the proposal (reordered networks,
// repair retransmissions) park in early, keyed by the digest they were
// cast for, and merge on accept — counting a digest-unchecked vote
// toward a quorum would let an equivocating primary get one fork
// executed with the other fork's votes.
type logEntry struct {
	batch      *Batch
	digests    [][32]byte // per-request digests, computed once on accept
	prepares   uint64     // replicas that vouched for batch.Digest (incl. primary via proposal)
	commits    uint64
	early      map[[32]byte]*earlyVotes // votes received before the proposal, by digest
	sentCommit bool
	executed   bool
}

// earlyVotes holds votes for one digest at a sequence number whose
// proposal has not arrived yet.
type earlyVotes struct {
	prepares uint64
	commits  uint64
}

// clientRecord implements at-most-once execution per client. It is
// replicated state (checkpoint digests cover it), so it must be a pure
// function of the committed history: the view a request happened to
// execute in is deliberately NOT recorded — replicas legitimately
// execute the same batch in different views after view changes, and a
// view stamp here would make their checkpoint digests dissent forever.
type clientRecord struct {
	lastReqID uint64
	lastReply []byte
}

// tentSeg is the replica-layer residue of one tentatively executed
// unit: the client records it will install and the replies it produced,
// held aside until the commit quorum promotes the unit into committed
// state — or a view change discards it. The committed client table and
// the service's real state stay untouched in the meantime, so rollback
// is simply dropping the segment.
type tentSeg struct {
	seq     uint64
	clients map[string]*clientRecord
	results [][]byte // aligned with the batch's requests; nil = silent
}

// queuedReq is one request awaiting a sequence number at the primary.
type queuedReq struct {
	req    Request
	digest [32]byte
}

// unverifiedBatch buffers a batch awaiting request verification, with
// its per-request digests computed once — re-verification runs on
// every client-request arrival, so it must not re-hash the batch.
type unverifiedBatch struct {
	b  Batch
	ds [][32]byte
}

// Replica is one member of the replicated PEATS group. Start launches
// its event loop; Stop shuts it down.
type Replica struct {
	cfg     ReplicaConfig
	n       int
	index   int
	indexes map[string]int // replica id → group index
	logger  *log.Logger
	tr      transport.Transport
	service Service

	// Protocol state, owned by the event loop goroutine.
	view        uint64
	seq         uint64 // highest sequence assigned (primary)
	executed    uint64 // highest sequence executed
	lowWater    uint64 // last stable checkpoint
	entries     map[uint64]*logEntry
	clients     map[string]*clientRecord
	pending     map[[32]byte]Request       // awaiting commit (view-change timer)
	assigned    map[[32]byte]uint64        // request digest → seq of its batch (current view)
	queue       []queuedReq                // primary: requests awaiting a sequence number
	queued      map[[32]byte]struct{}      // primary: digests in queue
	unverified  map[uint64]unverifiedBatch // batches awaiting request verification
	checkpoints map[uint64]map[string]cpVote
	snapshots   map[uint64][]byte
	// prepCerts holds, per sequence, the batch this replica most
	// recently prepared there (the PBFT P-set). Kept outside entries so
	// view installs cannot destroy it; GC'd only by stabilize.
	prepCerts map[uint64]Batch

	// Incremental-checkpoint chain state. cpBase holds the last full
	// stateSnapshot (the chain's base) and cpDeltas the delta blob of
	// every chained checkpoint since, so the replica can serve
	// verifiable base-plus-deltas state transfers; cpDigest is the
	// running chain digest. dirtyClients tracks the client records
	// touched since the last checkpoint — the client-table half of a
	// delta. durable is non-nil when the service persists state.
	cpHave       bool
	cpDigest     [32]byte
	cpBase       []byte
	cpBaseSeq    uint64
	cpDeltas     map[uint64][]byte
	dirtyClients map[string]struct{}
	cpHistory    map[uint64][32]byte
	durable      DurableService
	// lastCP is our latest checkpoint announcement, re-sent to peers
	// that ask (SEQ-REQUEST) about sequences we have stabilized past —
	// checkpoint messages are otherwise broadcast exactly once, and a
	// laggard needs f+1 matching announcements to trust a state
	// transfer.
	lastCP Checkpoint
	// groupStable is the highest seq at which this replica observed a
	// full 2f+1 matching checkpoint quorum. It can lag lowWater: WAL
	// recovery and state transfer raise lowWater to the recovered seq
	// (this replica can no longer vote below it) without any proof the
	// GROUP stabilized that prefix. The NEW-VIEW merge must drop
	// prepared batches only below groupStable — dropping below a merely
	// personal lowWater discards batches other replicas still need,
	// possibly committed elsewhere and acked to clients.
	groupStable uint64

	// Tentative execution state. tentSvc is non-nil when the service
	// supports it and the config does not disable it. tentExecuted is
	// the highest tentatively executed sequence (always ≥ executed);
	// tentSegs holds, oldest first, the replica-layer residue of the
	// unpromoted units executed+1 .. tentExecuted.
	tentSvc      TentativeService
	tentFilter   TentativeFilter
	tentExecuted uint64
	tentSegs     []tentSeg

	inViewChange bool
	nextTimeout  time.Duration
	viewChanges  map[uint64]map[string]recordedVC
	// vcAcks collects VIEW-CHANGE-ACKs at the would-be primary:
	// view → origin replica → content digest → acknowledging replicas.
	vcAcks map[uint64]map[string]map[[32]byte]map[string]struct{}
	// installedView is the highest view this replica actually installed
	// (NEW-VIEW processed, or adopted from quorum evidence) — as opposed
	// to views merely entered by a failed view-change attempt. A replica
	// only casts votes in installed views, so syncViewWithQuorum may
	// safely fall back to any view ≥ installedView.
	installedView uint64

	timer           vclock.Timer
	batchTimer      vclock.Timer
	batchTimerArmed bool
	driven          bool                // simulation mode: no goroutines, caller delivers events
	scratchSeen     map[string]struct{} // batchResults duplicate scan, reused
	stop            chan struct{}
	done            chan struct{}

	// Read-only fast path: reads execute on a worker pool, off the
	// event loop, synchronised with ordered execution only by the
	// space's shard read locks — so they run concurrently with each
	// other and with batches writing other shards.
	roCh chan ReadOnly
	roWG sync.WaitGroup

	// Atomic mirrors of loop-owned state for external observation.
	viewMirror      atomic.Uint64
	executedMirror  atomic.Uint64
	recordsMirror   atomic.Int64
	batchesMirror   atomic.Uint64
	lowWaterMirror  atomic.Uint64
	tentDepthMirror atomic.Int64

	// m holds the protocol metric handles — all nil without
	// cfg.Metrics, and every operation on a nil handle no-ops.
	m replicaMetrics
	// queuedAt stamps the queue's empty-to-nonempty transition for the
	// batch-delay histogram; only touched when that histogram is live.
	queuedAt time.Time
}

// window is the high-water offset: sequence numbers beyond
// lowWater+window are refused until a checkpoint advances.
const window = 1024

// pipelineDepth is how many non-full batches the primary keeps in
// flight before holding further proposals open to accumulate. Depth 1
// self-clocks proposals on the commit stream — requests arriving
// during a round coalesce into the next batch — which measures best on
// the in-proc transport; full batches always propose immediately, so
// the pipeline still deepens under saturation.
const pipelineDepth = 1

// NewReplica validates the configuration and returns a stopped replica.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if len(cfg.Replicas) < 3*cfg.F+1 {
		return nil, fmt.Errorf("bft: %d replicas cannot tolerate f=%d (need ≥ %d)",
			len(cfg.Replicas), cfg.F, 3*cfg.F+1)
	}
	if len(cfg.Replicas) > 64 {
		return nil, fmt.Errorf("bft: %d replicas exceed the group bound of 64", len(cfg.Replicas))
	}
	index := -1
	indexes := make(map[string]int, len(cfg.Replicas))
	for i, id := range cfg.Replicas {
		indexes[id] = i
		if id == cfg.ID {
			index = i
		}
	}
	if index < 0 {
		return nil, fmt.Errorf("bft: replica %q not in group", cfg.ID)
	}
	if cfg.Transport == nil || cfg.Service == nil {
		return nil, fmt.Errorf("bft: transport and service are required")
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 64
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4
	}
	if cfg.ViewChangeTimeout <= 0 {
		cfg.ViewChangeTimeout = 500 * time.Millisecond
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.BatchSize > maxBatch {
		cfg.BatchSize = maxBatch
	}
	if cfg.BatchDelay <= 0 {
		cfg.BatchDelay = 2 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	r := &Replica{
		cfg:         cfg,
		n:           len(cfg.Replicas),
		index:       index,
		indexes:     indexes,
		logger:      cfg.Logger,
		tr:          cfg.Transport,
		service:     cfg.Service,
		entries:     make(map[uint64]*logEntry),
		clients:     make(map[string]*clientRecord),
		pending:     make(map[[32]byte]Request),
		assigned:    make(map[[32]byte]uint64),
		queued:      make(map[[32]byte]struct{}),
		unverified:  make(map[uint64]unverifiedBatch),
		checkpoints: make(map[uint64]map[string]cpVote),
		snapshots:   make(map[uint64][]byte),
		prepCerts:   make(map[uint64]Batch),
		viewChanges: make(map[uint64]map[string]recordedVC),
		vcAcks:      make(map[uint64]map[string]map[[32]byte]map[string]struct{}),
		nextTimeout: cfg.ViewChangeTimeout,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),

		cpDeltas:     make(map[uint64][]byte),
		dirtyClients: make(map[string]struct{}),
		cpHistory:    make(map[uint64][32]byte),
	}
	if err := r.initDurable(); err != nil {
		return nil, err
	}
	if ts, ok := cfg.Service.(TentativeService); ok && !cfg.DisableTentative {
		r.tentSvc = ts
	}
	if tf, ok := cfg.Service.(TentativeFilter); ok {
		r.tentFilter = tf
	}
	r.tentExecuted = r.executed
	r.lowWaterMirror.Store(r.lowWater)
	r.initMetrics()
	return r, nil
}

// misrouted reports whether a request is addressed to another group.
// Requests without a group identity are accepted everywhere, so
// single-group deployments are unaffected.
func (r *Replica) misrouted(req Request) bool {
	return req.Group != "" && req.Group != r.cfg.Group
}

// attest signs the agreed result of a partition 2PC operation with the
// replica's attestation key; it returns nil for every other request.
// Only committed results are ever attested — a tentative result is not
// yet this group's agreed word (and 2PC operations are excluded from
// tentative execution anyway).
func (r *Replica) attest(op, result []byte) []byte {
	if r.cfg.AttestKey == nil || !wire.IsPartitionOp(op) {
		return nil
	}
	return ed25519.Sign(r.cfg.AttestKey, wire.AttestPayload(r.cfg.Group, result))
}

// initDurable detects a persistent service and resumes from its data
// directory: the recovered agreement position becomes the replica's
// executed/assigned sequence and local stable checkpoint (everything
// at or below it is already applied), and the client table is the
// recovery snapshot's table with every recovered unit's updates folded
// forward — so at-most-once semantics survive the restart. The first
// checkpoint after a recovery is always a full snapshot (no chain base
// exists), which re-joins the cluster's digest chain at the next
// compaction boundary.
func (r *Replica) initDurable() error {
	d, ok := r.cfg.Service.(DurableService)
	if !ok || !d.Durable() {
		return nil
	}
	r.durable = d
	unitSeq, baseExtra, units := d.RecoveredState()
	if unitSeq == 0 {
		return nil
	}
	clients, err := decodeClientTable(baseExtra)
	if err != nil {
		return fmt.Errorf("bft: recover %s: %w", r.cfg.ID, err)
	}
	for _, u := range units {
		ups, err := decodeClientUpdates(u.Extra)
		if err != nil {
			return fmt.Errorf("bft: recover %s unit %d: %w", r.cfg.ID, u.Seq, err)
		}
		applyClientUpdates(clients, ups)
	}
	r.clients = clients
	r.executed = unitSeq
	r.seq = unitSeq
	r.lowWater = unitSeq
	r.executedMirror.Store(unitSeq)
	return nil
}

// roWorkers is the size of the read-only execution pool and roBacklog
// its queue depth. Reads beyond the backlog are dropped — the
// asynchronous model permits loss, and the client falls back to the
// ordered path.
var roWorkers = runtime.GOMAXPROCS(0)

const roBacklog = 256

// Start launches the replica's event loop and its read-only worker
// pool.
func (r *Replica) Start() {
	r.initTimers()
	r.roCh = make(chan ReadOnly, roBacklog)
	for i := 0; i < roWorkers; i++ {
		r.roWG.Add(1)
		go func() {
			defer r.roWG.Done()
			for {
				select {
				case ro := <-r.roCh:
					r.serveReadOnly(ro)
				case <-r.stop:
					return
				}
			}
		}()
	}
	go r.run()
}

// initTimers creates the view-change and batch timers on the config
// clock. A real clock's timers deliver on C() into run's select; a
// virtual clock invokes the fire callbacks synchronously from the
// simulation loop instead, so both modes share the same handling.
func (r *Replica) initTimers() {
	r.timer = r.cfg.Clock.NewTimer(func() {
		r.onTimeout()
		r.sync()
	})
	r.batchTimer = r.cfg.Clock.NewTimer(func() {
		r.batchTimerArmed = false
		r.flushQueue(true)
		r.sync()
	})
}

// StartDriven puts the replica in driven (simulation) mode: no
// goroutines are launched. The caller owns the single thread of
// control — it delivers inbound messages via Deliver, and timer fires
// arrive synchronously through the virtual clock's callbacks.
// Requires a virtual ReplicaConfig.Clock.
func (r *Replica) StartDriven() {
	r.driven = true
	r.initTimers()
}

// Deliver hands one inbound message to a driven replica and refreshes
// its mirrors. Only valid after StartDriven, on the driving thread.
func (r *Replica) Deliver(m transport.Inbound) {
	r.dispatch(m)
	r.sync()
}

// Stop terminates the event loop and the read-only pool, and waits for
// both to exit. A driven replica has neither: Stop just disarms its
// timers, after which the virtual clock will not call back into it.
func (r *Replica) Stop() {
	if r.driven {
		r.disarmTimer()
		r.disarmBatchTimer()
		return
	}
	close(r.stop)
	<-r.done
	r.roWG.Wait()
}

// View returns the replica's current view.
func (r *Replica) View() uint64 { return r.viewMirror.Load() }

// Executed returns the highest executed sequence number.
func (r *Replica) Executed() uint64 { return r.executedMirror.Load() }

// LogRecords returns the number of protocol-log records currently held
// (log entries, pending requests, sequence assignments, queued
// requests, and unverified batches). Checkpoint garbage collection must
// keep it bounded under sustained load.
func (r *Replica) LogRecords() int64 { return r.recordsMirror.Load() }

// BatchesProposed returns how many batch proposals this replica has
// issued as primary (for tests and diagnostics).
func (r *Replica) BatchesProposed() uint64 { return r.batchesMirror.Load() }

// LowWater returns the last stable checkpoint sequence number. Safe
// from any goroutine.
func (r *Replica) LowWater() uint64 { return r.lowWaterMirror.Load() }

func (r *Replica) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf("[%s v=%d] "+format, append([]any{r.cfg.ID, r.view}, args...)...)
	}
}

func (r *Replica) primary(view uint64) string {
	return r.cfg.Replicas[view%uint64(r.n)]
}

func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.cfg.ID }

// quorum is the prepare/commit quorum: 2f+1 distinct replicas.
func (r *Replica) quorum() int { return 2*r.cfg.F + 1 }

func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case m, ok := <-r.tr.Inbox():
			if !ok {
				return
			}
			r.dispatch(m)
			r.sync()
		case <-r.timer.C():
			r.onTimeout()
			r.sync()
		case <-r.batchTimer.C():
			r.batchTimerArmed = false
			r.flushQueue(true)
			r.sync()
		}
	}
}

// sync refreshes the externally visible mirrors; the loop calls it
// after every event.
func (r *Replica) sync() {
	r.viewMirror.Store(r.view)
	r.executedMirror.Store(r.executed)
	r.recordsMirror.Store(int64(len(r.entries) + len(r.pending) +
		len(r.assigned) + len(r.queue) + len(r.unverified)))
	r.lowWaterMirror.Store(r.lowWater)
	r.tentDepthMirror.Store(int64(len(r.tentSegs)))
}

func (r *Replica) dispatch(m transport.Inbound) {
	msg, err := Unmarshal(m.Payload)
	if err != nil {
		r.logf("drop malformed message from %s: %v", m.From, err)
		return
	}
	switch msg := msg.(type) {
	case Request:
		// Requests come from clients; the transport authenticated the
		// sender, so a Byzantine client cannot submit ops under another
		// client's identity.
		if msg.Client != m.From {
			r.logf("drop request claiming %q from %q", msg.Client, m.From)
			return
		}
		r.onRequest(msg)
	case ReadOnly:
		if msg.Client != m.From {
			r.logf("drop read-only claiming %q from %q", msg.Client, m.From)
			return
		}
		r.onReadOnly(msg)
	case PrePrepare:
		if m.From != r.primary(msg.View) {
			r.logf("drop pre-prepare from non-primary %s", m.From)
			return
		}
		r.onBatch(msg.asBatch())
	case Batch:
		if m.From != r.primary(msg.View) {
			r.logf("drop batch from non-primary %s", m.From)
			return
		}
		r.onBatch(msg)
	case Prepare:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onPrepare(msg)
	case Commit:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onCommit(msg)
	case Checkpoint:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onCheckpoint(msg)
	case ViewChange:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onViewChange(msg)
	case ViewChangeAck:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onViewChangeAck(msg)
	case NewView:
		if msg.Replica != m.From || m.From != r.primary(msg.View) {
			return
		}
		r.onNewView(msg)
	case SeqRequest:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onSeqRequest(msg, m.From)
	case StateRequest:
		if !r.isReplica(m.From) {
			return
		}
		r.onStateRequest(msg, m.From)
	case StateResponse:
		if msg.Replica != m.From || !r.isReplica(m.From) {
			return
		}
		r.onStateResponse(msg)
	default:
		r.logf("drop unexpected %T from %s", msg, m.From)
	}
}

func (r *Replica) isReplica(id string) bool {
	_, ok := r.indexes[id]
	return ok
}

// voteBit returns the bitmask bit of a replica's group index.
func (r *Replica) voteBit(id string) uint64 {
	return 1 << uint(r.indexes[id])
}

// broadcast sends a protocol message to every other replica and
// reports how many peer links signalled backpressure — the batcher
// uses the count to pace proposals; everyone else ignores it (protocol
// traffic is admitted drop-oldest even under pressure, and the repair
// machinery retransmits).
func (r *Replica) broadcast(msg any) int {
	payload, err := Marshal(msg)
	if err != nil {
		r.logf("marshal %T: %v", msg, err)
		return 0
	}
	pressured := 0
	for _, id := range r.cfg.Replicas {
		if id == r.cfg.ID {
			continue
		}
		switch err := r.tr.Send(id, payload); {
		case err == nil:
		case errors.Is(err, transport.ErrBackpressure):
			pressured++
		default:
			r.logf("send to %s: %v", id, err)
		}
	}
	return pressured
}

func (r *Replica) sendTo(id string, msg any) {
	r.sendToClass(id, msg, transport.ClassProtocol)
}

// sendReply sends a client-facing reply on the request lane, so reply
// bursts queue behind protocol traffic rather than ahead of it. A
// backpressured reply is simply dropped — the client retransmits and
// its vote machinery tolerates missing replies.
func (r *Replica) sendReply(client string, msg any) {
	r.sendToClass(client, msg, transport.ClassRequest)
}

func (r *Replica) sendToClass(id string, msg any, class transport.Class) {
	payload, err := Marshal(msg)
	if err != nil {
		r.logf("marshal %T: %v", msg, err)
		return
	}
	switch err := r.tr.SendClass(id, payload, class); {
	case err == nil:
	case errors.Is(err, transport.ErrBackpressure):
		// Lossy-network semantics: the receiver retransmits its request.
	default:
		r.logf("send to %s: %v", id, err)
	}
}

// ---- Normal case ----

func (r *Replica) onRequest(req Request) {
	if r.misrouted(req) {
		return // addressed to another group of a partitioned deployment
	}
	// At-most-once: answer duplicates from the client table.
	if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
		if req.ReqID == rec.lastReqID && rec.lastReply != nil {
			// Reply.View is only the client's primary-guess hint; the
			// current view is the freshest value we can offer.
			r.sendReply(req.Client, Reply{
				View: r.view, Client: req.Client, ReqID: req.ReqID,
				Replica: r.cfg.ID, Result: rec.lastReply,
				Group: r.cfg.Group, Attest: r.attest(req.Op, rec.lastReply),
			})
		}
		return
	}
	if r.inViewChange {
		// No proposals mid-view-change, but still track the request: its
		// pending record keeps the view-change timer armed (a stabilize
		// may have disarmed it) and carries the request into the new
		// view's re-proposal, instead of waiting another client
		// retransmission interval after install.
		digest := req.Digest()
		if _, dup := r.pending[digest]; !dup {
			r.pending[digest] = req
			if len(r.pending) == 1 {
				r.armTimer()
			}
		}
		return
	}
	digest := req.Digest()
	if r.isPrimary() {
		if seq, dup := r.assigned[digest]; dup {
			// The client is retransmitting a request we already
			// proposed: protocol messages were probably lost.
			r.repairSeq(seq)
			return
		}
		if _, dup := r.queued[digest]; dup {
			return // already awaiting a sequence number
		}
		r.pending[digest] = req
		r.enqueue(req, digest)
		r.flushQueue(false)
		r.armTimer()
		return
	}
	// Backup: the client sends requests to the primary first (or
	// broadcasts, without a keyring) and broadcasts on retransmit, so
	// the primary has (or will get) its own copy. Track the request and
	// suspect the primary if nothing commits before the timer fires.
	// Requests are deliberately never forwarded replica-to-replica:
	// channel MACs authenticate only hop-by-hop, so a forwarded request
	// would let a Byzantine replica forge client operations.
	//
	// The timer is armed only when the request FIRST becomes pending:
	// client retransmissions must not keep pushing it back, or a faulty
	// primary would never be suspected.
	if _, dup := r.pending[digest]; dup {
		if seq, ok := r.assigned[digest]; ok {
			r.repairSeq(seq)
		}
		return
	}
	r.pending[digest] = req
	if len(r.pending) == 1 {
		r.armTimer()
	}
	r.retryUnverified()
}

// repairSeq recovers a sequence number the client is still waiting on:
// votes are not otherwise retransmitted (the network may drop them),
// so a replica stuck mid-protocol would hold the 2f+1 reply quorum
// below threshold forever. The primary re-sends the proposal (for
// peers that lost it), everyone re-sends its own highest vote, and a
// SEQ-REQUEST solicits the commit votes we may have lost ourselves.
// Client retransmissions pace the repair, so it is naturally
// rate-limited and touches only sequences someone still waits on.
func (r *Replica) repairSeq(seq uint64) {
	r.repairOne(seq)
	if next := r.executed + 1; next < seq {
		// A hole below blocks execution of seq no matter how seq's own
		// quorum completes. Holes with no client attached — a NEW-VIEW
		// no-op whose commit votes were lost — have no retransmission of
		// their own, so every client-paced repair above also repairs the
		// execution frontier.
		r.repairOne(next)
	}
}

// repairOne re-sends our protocol state for one sequence number and
// solicits the votes we may have lost.
func (r *Replica) repairOne(seq uint64) {
	e := r.entries[seq]
	if e == nil || e.batch == nil || e.executed {
		return
	}
	if r.isPrimary() {
		r.sendProposal(*e.batch)
	}
	if e.sentCommit {
		r.broadcast(Commit{View: r.view, Seq: seq, Digest: e.batch.Digest, Replica: r.cfg.ID})
	} else if !r.isPrimary() {
		r.broadcast(Prepare{View: e.batch.View, Seq: seq, Digest: e.batch.Digest, Replica: r.cfg.ID})
	}
	r.broadcast(SeqRequest{Seq: seq, Replica: r.cfg.ID})
}

// onSeqRequest re-sends our commit vote for a sequence a peer is stuck
// on. The primary also re-sends the proposal itself (the asker may
// never have received the batch), and a request for a sequence we have
// stabilized past is answered with our latest checkpoint announcement —
// the asker is behind our stable state and needs checkpoint evidence to
// trigger a state transfer, not votes we no longer hold.
func (r *Replica) onSeqRequest(sr SeqRequest, from string) {
	e := r.entries[sr.Seq]
	if e == nil || e.batch == nil {
		if sr.Seq <= r.lowWater && r.lastCP.Seq > 0 {
			r.sendTo(from, r.lastCP)
		}
		return
	}
	if r.isPrimary() && e.batch.View == r.view {
		r.sendTo(from, *e.batch)
	}
	if e.sentCommit || e.executed {
		r.sendTo(from, Commit{View: r.view, Seq: sr.Seq, Digest: e.batch.Digest, Replica: r.cfg.ID})
	}
}

// enqueue appends a request to the primary's batch queue.
func (r *Replica) enqueue(req Request, digest [32]byte) {
	if r.m.batchDelay != nil && len(r.queue) == 0 {
		r.queuedAt = r.cfg.Clock.Now()
	}
	r.queue = append(r.queue, queuedReq{req: req, digest: digest})
	r.queued[digest] = struct{}{}
}

// flushQueue proposes queued requests as batches. The primary proposes
// immediately when a full batch is queued or when nothing it proposed
// is still uncommitted (an idle pipeline must never wait); otherwise it
// holds the partial batch open — accumulating requests that arrive
// while earlier batches run the three phases — until the batch fills,
// the pipeline drains, or the batch timer forces it out. Sequence
// numbers are assigned without waiting for earlier batches to commit,
// pipelined up to the water-mark window.
func (r *Replica) flushQueue(force bool) {
	if !r.isPrimary() || r.inViewChange {
		return
	}
	max := r.cfg.BatchSize
	for len(r.queue) > 0 {
		if r.seq+1 > r.lowWater+window {
			r.logf("window full, holding %d queued requests", len(r.queue))
			return // stabilize will flush once the window advances
		}
		if !force && len(r.queue) < max && r.seq >= r.executed+pipelineDepth {
			r.armBatchTimer()
			return
		}
		force = false
		n := len(r.queue)
		if n > max {
			n = max
		}
		reqs := make([]Request, n)
		ds := make([][32]byte, n)
		for i, q := range r.queue[:n] {
			reqs[i] = q.req
			ds[i] = q.digest
			delete(r.queued, q.digest)
		}
		if n == len(r.queue) {
			r.queue = r.queue[:0] // keep the backing array for the next wave
		} else {
			r.queue = append([]queuedReq(nil), r.queue[n:]...)
		}
		r.seq++
		b := Batch{View: r.view, Seq: r.seq, Digest: batchDigestFrom(ds), Reqs: reqs}
		r.acceptBatch(b, ds)
		// The primary's own vote (merged with any early votes) can
		// already be a prepare quorum — always in an f=0 group, whose
		// liveness depends on this check; with f>0 only when peers voted
		// before the proposal, which acceptBatch merged in.
		r.tryPrepared(b.Seq)
		r.tryExecute()
		pressured := r.sendProposal(b)
		r.batchesMirror.Add(1)
		r.m.batchesProposed.Inc()
		if r.m.batchDelay != nil {
			now := r.cfg.Clock.Now()
			r.m.batchDelay.Observe(now.Sub(r.queuedAt).Seconds())
			r.queuedAt = now
		}
		r.emit(EventBatchProposed, b.Seq, n)
		r.armTimer()
		if pressured > r.cfg.F && len(r.queue) > 0 {
			// More than f peer links are congested, so the proposal may
			// not reach a quorum promptly. Hold the rest of the queue
			// for one batch-delay instead of piling more proposals onto
			// full lanes; the batch timer's force-flush keeps liveness.
			r.armBatchTimer()
			return
		}
	}
	r.disarmBatchTimer()
}

// sendProposal broadcasts a batch proposal, using the classic
// PRE-PREPARE wire form for single-request batches. It returns the
// number of peer links that reported backpressure, for the batcher's
// pacing decision.
func (r *Replica) sendProposal(b Batch) int {
	if len(b.Reqs) == 1 {
		return r.broadcast(PrePrepare{View: b.View, Seq: b.Seq, Digest: b.Digest, Req: b.Reqs[0]})
	}
	return r.broadcast(b)
}

func (r *Replica) armBatchTimer() {
	if r.batchTimerArmed {
		return
	}
	r.batchTimerArmed = true
	r.batchTimer.Reset(r.cfg.BatchDelay)
}

func (r *Replica) disarmBatchTimer() {
	if !r.batchTimerArmed {
		return
	}
	r.batchTimerArmed = false
	if !r.batchTimer.Stop() {
		select {
		case <-r.batchTimer.C():
		default:
		}
	}
}

// noop reports whether req is the view-change no-op filler.
func noop(req Request) bool { return req.Client == "" && len(req.Op) == 0 }

// verifiableReq reports whether the replica may vouch for a request
// proposed in a batch: the view-change no-op, a request it received
// first-hand from the authenticated client, one the client table
// proves it saw before, or one carrying a valid authenticator for this
// replica. Without this check a Byzantine primary could alter a
// client's operation in its proposal (requests are only
// channel-authenticated hop by hop) and the forgery could prepare and
// survive a view change.
func (r *Replica) verifiableReq(req Request, digest [32]byte) bool {
	if noop(req) {
		return true
	}
	if _, firsthand := r.pending[digest]; firsthand {
		return true
	}
	// Already-executed requests re-appear after view changes; the
	// client table proves we saw them first-hand before.
	if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
		return true
	}
	return r.authValid(req, digest)
}

// authValid verifies the client's authenticator for this replica.
func (r *Replica) authValid(req Request, digest [32]byte) bool {
	kr := r.cfg.Keyring
	if kr == nil || len(req.Auth) != r.n {
		return false
	}
	return kr.Verify(req.Client, digest[:], req.Auth[r.index])
}

// batchVerifiable reports whether every request in the batch may be
// vouched for.
func (r *Replica) batchVerifiable(b Batch, ds [][32]byte) bool {
	for i, req := range b.Reqs {
		if !r.verifiableReq(req, ds[i]) {
			return false
		}
	}
	return true
}

// retryUnverified re-processes buffered batches once more first-hand
// requests arrive.
func (r *Replica) retryUnverified() {
	if len(r.unverified) == 0 {
		return
	}
	// Ascending sequence order: processing order affects which batches
	// prepare first, and map order would make replays diverge.
	seqs := make([]uint64, 0, len(r.unverified))
	for seq := range r.unverified {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		ub := r.unverified[seq]
		if r.batchVerifiable(ub.b, ub.ds) {
			delete(r.unverified, seq)
			if ub.b.View == r.view {
				r.processBatch(ub.b, ub.ds)
			}
		}
	}
}

func (r *Replica) entry(seq uint64) *logEntry {
	e, ok := r.entries[seq]
	if !ok {
		e = &logEntry{}
		r.entries[seq] = e
	}
	return e
}

func (r *Replica) onBatch(b Batch) {
	if r.inViewChange || b.View != r.view {
		return
	}
	if b.Seq <= r.lowWater || b.Seq > r.lowWater+window {
		return
	}
	ds, ok := b.digests()
	if !ok {
		r.logf("batch digest mismatch at seq %d", b.Seq)
		return
	}
	e := r.entry(b.Seq)
	if e.batch != nil {
		if e.batch.Digest != b.Digest {
			r.logf("conflicting proposal at seq %d — primary equivocates", b.Seq)
			r.startViewChange(r.view + 1)
		}
		return
	}
	if buffered, dup := r.unverified[b.Seq]; dup && buffered.b.Digest != b.Digest {
		r.logf("conflicting proposal at seq %d — primary equivocates", b.Seq)
		r.startViewChange(r.view + 1)
		return
	}
	if !r.batchVerifiable(b, ds) {
		// Wait for the client's own copy (it retransmits) before
		// vouching; see verifiableReq. The view-change timer is already
		// armed by the pending request — deliberately NOT re-armed here,
		// or a primary could stall us forever with unverifiable
		// proposals.
		r.unverified[b.Seq] = unverifiedBatch{b: b, ds: ds}
		return
	}
	r.processBatch(b, ds)
}

// processBatch accepts a verified batch and votes for it.
func (r *Replica) processBatch(b Batch, ds [][32]byte) {
	if r.isPrimary() {
		return
	}
	e := r.entry(b.Seq)
	if e.batch != nil {
		return
	}
	r.acceptBatch(b, ds)
	prep := Prepare{View: b.View, Seq: b.Seq, Digest: b.Digest, Replica: r.cfg.ID}
	r.broadcast(prep)
	r.tryPrepared(b.Seq)
	// Early commit votes merged by acceptBatch may already form a
	// quorum (committed does not require our own prepared state).
	r.tryExecute()
}

// acceptBatch records the batch and the issuing primary's implicit
// prepare vote, plus our own; votes that arrived before the proposal
// merge in if — and only if — they were cast for this digest. Every
// request in the batch becomes pending (so the view-change timer
// guards it) and assigned.
func (r *Replica) acceptBatch(b Batch, ds [][32]byte) {
	e := r.entry(b.Seq)
	bCopy := b
	e.batch = &bCopy
	e.digests = ds
	if ev, ok := e.early[b.Digest]; ok {
		e.prepares |= ev.prepares
		e.commits |= ev.commits
	}
	e.early = nil
	e.prepares |= r.voteBit(r.primary(b.View))
	e.prepares |= r.voteBit(r.cfg.ID)
	r.m.batchFill.Observe(float64(len(b.Reqs)))
	r.emit(EventBatchAccepted, b.Seq, len(b.Reqs))
	if b.Seq > r.seq {
		r.seq = b.Seq
	}
	wasEmpty := len(r.pending) == 0
	for i, req := range b.Reqs {
		if noop(req) {
			continue
		}
		r.pending[ds[i]] = req
		r.assigned[ds[i]] = b.Seq
	}
	if wasEmpty && len(r.pending) > 0 {
		// The first pending request arrived inside the proposal itself
		// (the client sent it to the primary alone): arm the suspicion
		// timer exactly as if the client had broadcast it.
		r.armTimer()
	}
}

func (r *Replica) onPrepare(p Prepare) {
	if r.inViewChange || p.View != r.view {
		return
	}
	if p.Seq <= r.lowWater || p.Seq > r.lowWater+window {
		return
	}
	e := r.entry(p.Seq)
	if e.batch == nil {
		if ev := r.earlyVote(e, p.Digest); ev != nil {
			ev.prepares |= r.voteBit(p.Replica)
		}
		return
	}
	if e.batch.Digest != p.Digest {
		return // vote for a different proposal: ignore
	}
	e.prepares |= r.voteBit(p.Replica)
	r.tryPrepared(p.Seq)
}

// maxEarlyDigests bounds distinct digests buffered per sequence number
// before its proposal arrives: honest executions produce at most a
// couple (the proposal's digest, a re-proposal across views, a no-op
// filler), so the bound only discards garbage a Byzantine replica
// streams under fresh random digests — which would otherwise grow
// memory without limit on sequences that never get a proposal.
const maxEarlyDigests = 4

// earlyVote returns the pre-proposal vote bucket for a digest, or nil
// when the per-entry digest bound is exhausted.
func (r *Replica) earlyVote(e *logEntry, digest [32]byte) *earlyVotes {
	if e.early == nil {
		e.early = make(map[[32]byte]*earlyVotes, 1)
	}
	ev, ok := e.early[digest]
	if !ok {
		if len(e.early) >= maxEarlyDigests {
			return nil
		}
		ev = &earlyVotes{}
		e.early[digest] = ev
	}
	return ev
}

func (r *Replica) tryPrepared(seq uint64) {
	e := r.entries[seq]
	if e == nil || e.batch == nil || e.sentCommit {
		return
	}
	if bits.OnesCount64(e.prepares) < r.quorum() {
		return
	}
	e.sentCommit = true
	r.emit(EventPrepared, seq, 0)
	// Record the prepared certificate independently of the log entry:
	// view installs reseed entries (resetting their vote bitmasks), but
	// the certificate must survive until the sequence stabilizes — the
	// view-change safety argument needs every honest replica that
	// prepared a batch to keep carrying the proof, or a batch committed
	// elsewhere can be merged away into a no-op.
	r.prepCerts[seq] = *e.batch
	c := Commit{View: r.view, Seq: seq, Digest: e.batch.Digest, Replica: r.cfg.ID}
	e.commits |= r.voteBit(r.cfg.ID)
	r.broadcast(c)
	r.tryExecute()
}

func (r *Replica) onCommit(c Commit) {
	if c.Seq <= r.lowWater || c.Seq > r.lowWater+window {
		return
	}
	// Commits are accepted across views: a commit quorum is meaningful
	// as long as the digest matches the accepted proposal.
	e := r.entry(c.Seq)
	if e.batch == nil {
		if ev := r.earlyVote(e, c.Digest); ev != nil {
			ev.commits |= r.voteBit(c.Replica)
		}
		return
	}
	if e.batch.Digest != c.Digest {
		return
	}
	e.commits |= r.voteBit(c.Replica)
	r.tryExecute()
}

// committed reports whether entry e has a commit quorum and is safe to
// execute. Our own prepared state (sentCommit) is deliberately not
// required: 2f+1 commit votes for the accepted batch prove the batch
// prepared at f+1 correct replicas, which is exactly the property view
// changes preserve — so executing on the commit quorum alone is safe,
// and it lets a replica that lost prepare traffic catch up from
// repaired commits without re-running the prepare round.
func (r *Replica) committed(e *logEntry) bool {
	return e != nil && e.batch != nil && bits.OnesCount64(e.commits) >= r.quorum()
}

// tryExecute applies committed batches in sequence order, each batch
// atomically. A batch already executed tentatively (its overlay is the
// oldest segment of the stack) is promoted rather than re-executed.
func (r *Replica) tryExecute() {
	for {
		next := r.executed + 1
		e := r.entries[next]
		if !r.committed(e) {
			break
		}
		switch {
		case len(r.tentSegs) > 0 && r.tentSegs[0].seq == next:
			r.promoteTentative(next, e)
		default:
			if len(r.tentSegs) > 0 {
				// The stack cannot start above executed+1: segments are
				// created consecutively from executed+1 and promoted in
				// order. Reaching here means the invariant broke —
				// discard the tentative state and take the direct path.
				r.logf("tentative stack out of sync at %d (head %d), rolling back",
					next, r.tentSegs[0].seq)
				r.rollbackTentative()
			}
			if r.durable != nil {
				// The batch is one atomic WAL unit: its store mutations
				// frame together with the client-table updates it causes,
				// so a crash recovers to a batch boundary or not at all.
				r.durable.BeginUnit(next)
				r.executeBatch(e)
				r.durable.CommitUnit(r.unitExtra(e))
			} else {
				r.executeBatch(e)
			}
		}
		r.m.batchesExecuted.Inc()
		r.m.requestsExecuted.Add(uint64(len(e.batch.Reqs)))
		r.emit(EventExecuted, next, len(e.batch.Reqs))
		e.executed = true
		r.executed = next
		if r.tentExecuted < r.executed {
			r.tentExecuted = r.executed
		}
		if len(r.pending) == 0 {
			r.disarmTimer()
		} else {
			r.armTimer()
		}
		if r.executed%r.cfg.CheckpointInterval == 0 {
			r.makeCheckpoint(r.executed)
		}
	}
	// The pipeline advanced (or stalled): give the primary a chance to
	// propose what queued up meanwhile.
	r.flushQueue(false)
	// Newly prepared batches (or batches re-accepted by a view change)
	// may be ready for tentative execution.
	r.tryTentative()
}

// ---- Tentative execution (Castro–Liskov) ----
//
// A batch the replica has locally prepared (sentCommit) is proven to be
// prepared at this replica; once 2f+1 replicas reply tentatively, the
// client knows the batch prepared at 2f+1 replicas, so any view-change
// quorum intersects it in a correct replica that carries the batch
// forward under the same digest — the result can never be revoked.
// The replica therefore executes at prepared into an overlay
// (TentativeService), replies with the Tentative flag one protocol
// round early, and applies the overlay to real state when the commit
// quorum lands. Nothing tentative touches the committed client table,
// the stores or the WAL, so a view change that drops a prepared batch
// rolls back by discarding overlays.

// tryTentative executes prepared-but-uncommitted batches into the
// overlay stack, in sequence order directly above the committed prefix.
func (r *Replica) tryTentative() {
	if r.tentSvc == nil || r.inViewChange {
		return
	}
	if r.tentExecuted < r.executed {
		r.tentExecuted = r.executed
	}
	for {
		next := r.tentExecuted + 1
		e := r.entries[next]
		if e == nil || e.batch == nil || !e.sentCommit || e.executed {
			return
		}
		if r.filteredBatch(e.batch) {
			// The batch holds an operation the service must execute on
			// committed state (partition 2PC mutates bookkeeping no
			// overlay can roll back). Stop here — skipping past it would
			// break the overlay chain's ordering contract — and let the
			// commit quorum drive this and all later batches.
			return
		}
		r.executeTentative(next, e)
		r.tentExecuted = next
	}
}

// filteredBatch reports whether any request of the batch is excluded
// from tentative execution by the service.
func (r *Replica) filteredBatch(b *Batch) bool {
	if r.tentFilter == nil {
		return false
	}
	for _, req := range b.Reqs {
		if !noop(req) && r.tentFilter.SkipTentative(req.Op) {
			return true
		}
	}
	return false
}

// tentLookup resolves a client's at-most-once record through the
// tentative overlays (newest first), falling back to the committed
// table — the record state a direct execution would see once every
// tentative unit commits.
func (r *Replica) tentLookup(client string) *clientRecord {
	for i := len(r.tentSegs) - 1; i >= 0; i-- {
		if rec, ok := r.tentSegs[i].clients[client]; ok {
			return rec
		}
	}
	return r.clients[client]
}

// executeTentative runs one prepared batch into a fresh overlay unit
// and sends tentative replies. The at-most-once bookkeeping lands in
// the unit's segment, not the committed client table; pending and
// assigned records survive untouched so client retransmissions keep
// driving repair until the batch actually commits.
func (r *Replica) executeTentative(seq uint64, e *logEntry) {
	b := e.batch
	seg := tentSeg{
		seq:     seq,
		clients: make(map[string]*clientRecord),
		results: make([][]byte, len(b.Reqs)),
	}
	r.tentSvc.BeginTentativeUnit(seq)
	for i, req := range b.Reqs {
		if noop(req) {
			continue
		}
		// Within-batch duplicates consult this unit's own records first
		// — the same order sequential direct execution observes.
		rec, ok := seg.clients[req.Client]
		if !ok {
			rec = r.tentLookup(req.Client)
		}
		if rec != nil && req.ReqID <= rec.lastReqID {
			if req.ReqID == rec.lastReqID {
				seg.results[i] = rec.lastReply
			}
			continue
		}
		result := r.tentSvc.TentativeExecute(req.Client, req.Op)
		seg.clients[req.Client] = &clientRecord{lastReqID: req.ReqID, lastReply: result}
		seg.results[i] = result
	}
	r.tentSvc.EndTentativeUnit()
	r.tentSegs = append(r.tentSegs, seg)
	r.m.tentativeExecuted.Inc()
	r.emit(EventTentativeExecuted, seq, len(b.Reqs))
	for i, req := range b.Reqs {
		if noop(req) || seg.results[i] == nil {
			continue
		}
		r.sendReply(req.Client, Reply{
			View: r.view, Client: req.Client, ReqID: req.ReqID,
			Replica: r.cfg.ID, Result: seg.results[i], Tentative: true,
			Group: r.cfg.Group,
		})
	}
}

// promoteTentative lands the oldest tentative unit in committed state:
// the service applies its overlay (journaling checkpoint effects
// exactly as direct execution would), the unit's client records fold
// into the committed table, and committed replies confirm the
// tentative ones. On a durable service the whole promotion is one WAL
// unit, so recovery still lands on a committed-batch boundary.
func (r *Replica) promoteTentative(next uint64, e *logEntry) {
	seg := r.tentSegs[0]
	promote := func() {
		r.tentSvc.PromoteTentative()
		for id, rec := range seg.clients {
			cur, ok := r.clients[id]
			if !ok {
				cur = &clientRecord{}
				r.clients[id] = cur
			}
			cur.lastReqID = rec.lastReqID
			cur.lastReply = rec.lastReply
		}
	}
	if r.durable != nil {
		r.durable.BeginUnit(next)
		promote()
		r.durable.CommitUnit(r.unitExtra(e))
	} else {
		promote()
	}
	r.tentSegs = r.tentSegs[1:]
	b := e.batch
	r.m.tentativePromoted.Inc()
	r.emit(EventTentativePromoted, next, len(b.Reqs))
	for i, req := range b.Reqs {
		if noop(req) {
			continue
		}
		r.dirtyClients[req.Client] = struct{}{}
		d := e.digests[i]
		delete(r.pending, d)
		delete(r.assigned, d)
		delete(r.queued, d)
		if seg.results[i] != nil {
			r.sendReply(req.Client, Reply{
				View: r.view, Client: req.Client, ReqID: req.ReqID,
				Replica: r.cfg.ID, Result: seg.results[i],
				Group: r.cfg.Group, Attest: r.attest(req.Op, seg.results[i]),
			})
		}
	}
}

// rollbackTentative discards every unpromoted tentative unit — called
// when a view change or state transfer may invalidate the prepared
// suffix. Re-proposed batches re-execute tentatively (byte-identically:
// committed state was never touched) after the new view installs.
func (r *Replica) rollbackTentative() {
	if len(r.tentSegs) == 0 && r.tentExecuted == r.executed {
		return
	}
	r.m.tentativeRollbacks.Inc()
	r.emit(EventTentativeRollback, r.executed, len(r.tentSegs))
	if r.tentSvc != nil {
		r.tentSvc.RollbackTentative()
	}
	r.tentSegs = nil
	r.tentExecuted = r.executed
}

// executeBatch applies every request of a committed batch in order and
// replies to the clients. When the service supports atomic batch
// execution and the batch holds several fresh requests from distinct
// clients, they execute in one service critical section.
//
// Every replica replies: the client waits for 2f+1 byte-identical
// replies (the threshold the read-only optimization needs), so all
// 3f+1 must send for the vote to survive f faulty or slow replicas
// without falling back to retransmission.
func (r *Replica) executeBatch(e *logEntry) {
	b := e.batch
	results := r.batchResults(b.Reqs)
	for i, req := range b.Reqs {
		if noop(req) {
			continue
		}
		// Every client the batch names is dirty for the next checkpoint
		// delta (re-encoding an unchanged duplicate record is harmless
		// and keeps the set identical on every replica).
		r.dirtyClients[req.Client] = struct{}{}
		d := e.digests[i]
		delete(r.pending, d)
		delete(r.assigned, d)
		delete(r.queued, d)
		if results[i] != nil {
			r.sendReply(req.Client, Reply{
				View: r.view, Client: req.Client, ReqID: req.ReqID,
				Replica: r.cfg.ID, Result: results[i],
				Group: r.cfg.Group, Attest: r.attest(req.Op, results[i]),
			})
		}
	}
}

// batchResults computes the reply for every request of a batch,
// updating the client table. Fresh requests execute; duplicates are
// answered from the table (or silently skipped) exactly as in the
// per-request protocol.
func (r *Replica) batchResults(reqs []Request) [][]byte {
	results := make([][]byte, len(reqs))
	// Fast path: hand all fresh requests to the service in one atomic
	// step. Only safe when no client appears twice in the batch (a
	// Byzantine-primary corner): within-batch duplicates need the
	// sequential at-most-once bookkeeping. The duplicate scan shares
	// one pass with the gather, using a reusable scratch set.
	if be, ok := r.service.(BatchExecutor); ok && len(reqs) > 1 {
		if r.scratchSeen == nil {
			r.scratchSeen = make(map[string]struct{}, len(reqs))
		} else {
			clear(r.scratchSeen)
		}
		idx := make([]int, 0, len(reqs))
		clients := make([]string, 0, len(reqs))
		ops := make([][]byte, 0, len(reqs))
		clientTwice := false
		for i, req := range reqs {
			if noop(req) {
				continue
			}
			if _, dup := r.scratchSeen[req.Client]; dup {
				clientTwice = true
				break
			}
			r.scratchSeen[req.Client] = struct{}{}
			rec := r.clients[req.Client]
			if rec != nil && req.ReqID <= rec.lastReqID {
				continue // duplicate: answered below via executeOnce
			}
			idx = append(idx, i)
			clients = append(clients, req.Client)
			ops = append(ops, req.Op)
		}
		if !clientTwice && len(idx) > 1 {
			out := be.ExecuteBatch(clients, ops)
			for j, i := range idx {
				req := reqs[i]
				rec, ok := r.clients[req.Client]
				if !ok {
					rec = &clientRecord{}
					r.clients[req.Client] = rec
				}
				rec.lastReqID = req.ReqID
				rec.lastReply = out[j]
				results[i] = out[j]
			}
			// Duplicates (and anything else) fall through below.
			for i, req := range reqs {
				if results[i] == nil && !noop(req) {
					results[i] = r.executeOnce(req)
				}
			}
			return results
		}
	}
	for i, req := range reqs {
		if noop(req) {
			continue
		}
		results[i] = r.executeOnce(req)
	}
	return results
}

// executeOnce applies a request unless the client table shows it was
// already executed (possible across view changes). It returns the
// result to send, or nil to stay silent.
func (r *Replica) executeOnce(req Request) []byte {
	rec, ok := r.clients[req.Client]
	if !ok {
		rec = &clientRecord{}
		r.clients[req.Client] = rec
	}
	if req.ReqID <= rec.lastReqID {
		if req.ReqID == rec.lastReqID {
			return rec.lastReply
		}
		return nil // old request re-ordered: never re-execute
	}
	result := r.service.Execute(req.Client, req.Op)
	rec.lastReqID = req.ReqID
	rec.lastReply = result
	return result
}

// ---- Read-only fast path ----

// onReadOnly hands a read to the worker pool, keeping the event loop
// free to order writes. A full backlog drops the read (the client
// falls back to ordering), so the loop never blocks on readers.
func (r *Replica) onReadOnly(ro ReadOnly) {
	if r.driven {
		// Simulation mode has no worker pool; serve inline so the read
		// lands deterministically at its delivery point in virtual time.
		r.serveReadOnly(ro)
		return
	}
	select {
	case r.roCh <- ro:
	default:
		r.m.roDropped.Inc()
	}
}

// serveReadOnly executes a non-mutating operation against the current
// committed state, without ordering, on a pool worker. The space
// serialises it against ordered execution with shard read locks only,
// so reads proceed concurrently with each other and with batches
// writing other shards. The reply carries the read-only flag so the
// client votes it separately (2f+1 byte-identical); a replica whose
// service cannot serve the operation read-only stays silent and the
// client falls back to the ordered path.
//
// Runs outside the event loop: it must touch only immutable replica
// fields, atomics, and the (internally synchronised) service and
// transport.
func (r *Replica) serveReadOnly(ro ReadOnly) {
	roe, ok := r.service.(ReadOnlyExecutor)
	if !ok {
		return
	}
	result, ok := roe.ExecuteReadOnly(ro.Client, ro.Op)
	if !ok {
		return
	}
	payload, err := Marshal(Reply{
		View: r.viewMirror.Load(), Client: ro.Client, ReqID: ro.ReqID,
		Replica: r.cfg.ID, Result: result, ReadOnly: true,
		Group: r.cfg.Group,
	})
	if err != nil {
		return
	}
	// Best-effort on the request lane: a failed send is
	// indistinguishable from loss, and the client's vote machinery
	// already handles missing replies.
	_ = r.tr.SendClass(ro.Client, payload, transport.ClassRequest)
	r.m.roServed.Inc()
}

// ---- Checkpoints and state transfer ----

// stateSnapshot captures service state plus the client table (the
// client table is part of replicated state: without it a restored
// replica would re-execute old requests).
func (r *Replica) stateSnapshot() []byte {
	w := wire.NewWriter()
	w.Bytes(r.service.Snapshot())
	w.Uvarint(uint64(len(r.clients)))
	ids := make([]string, 0, len(r.clients))
	for id := range r.clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := r.clients[id]
		w.String(id)
		w.Uvarint(rec.lastReqID)
		w.Bytes(rec.lastReply)
	}
	return w.Data()
}

func (r *Replica) restoreState(snapshot []byte) error {
	rd := wire.NewReader(snapshot)
	svc := rd.Bytes()
	count := rd.Uvarint()
	if count > maxBatch {
		return fmt.Errorf("bft: snapshot with %d client records", count)
	}
	clients := make(map[string]*clientRecord, count)
	for i := uint64(0); i < count; i++ {
		id := rd.String()
		clients[id] = &clientRecord{
			lastReqID: rd.Uvarint(),
			lastReply: rd.Bytes(),
		}
	}
	rd.ExpectEOF()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("bft: decode snapshot: %w", err)
	}
	if err := r.service.Restore(svc); err != nil {
		return err
	}
	r.clients = clients
	return nil
}

// makeCheckpoint publishes the state digest at seq. With a
// delta-capable service, only one checkpoint in CompactEvery pays for
// a full stateSnapshot (re-basing the digest chain, and compacting the
// durable engine's log); the checkpoints between digest the interval's
// delta blob over the chain — O(changes this interval), however large
// the resident space is.
func (r *Replica) makeCheckpoint(seq uint64) {
	var digest [32]byte
	full := 0
	if blob, ok := r.tryDeltaCheckpoint(seq); ok {
		digest = chainCheckpointDigest(r.cpDigest, blob)
		r.cpDeltas[seq] = blob
		r.cpDigest = digest
		r.m.checkpointsDelta.Inc()
	} else {
		full = 1
		snap := r.stateSnapshot()
		r.snapshots[seq] = snap
		digest = auth.Digest(snap)
		r.rebase(seq, snap, digest)
		if r.durable != nil {
			if err := r.durable.CompactTo(seq, encodeFullClientTable(r.clients)); err != nil {
				r.logf("compact at %d: %v", seq, err)
			}
		}
	}
	if r.cfg.KeepCheckpointHistory {
		r.cpHistory[seq] = digest
	}
	if full == 1 {
		r.m.checkpointsFull.Inc()
	}
	r.emit(EventCheckpoint, seq, full)
	cp := Checkpoint{Seq: seq, View: r.view, Digest: digest, Replica: r.cfg.ID}
	r.lastCP = cp
	r.recordCheckpoint(cp)
	r.broadcast(cp)
}

// tryDeltaCheckpoint drains the service journal and, when a delta
// checkpoint is due and possible, returns the delta blob to chain.
// Full checkpoints are due on a deterministic schedule (every
// CompactEvery-th interval by sequence number), so every replica picks
// the same mode and the digests vote — a replica whose journal broke
// (Restore, recovery, overflow: all deterministic or self-affecting
// events) dissents with a full digest until the next scheduled full
// checkpoint re-bases everyone.
func (r *Replica) tryDeltaCheckpoint(seq uint64) ([]byte, bool) {
	ds, ok := r.service.(DeltaSnapshotter)
	if !ok {
		return nil, false
	}
	every := r.cfg.CheckpointInterval * uint64(r.cfg.CompactEvery)
	if !r.cpHave || r.cfg.CompactEvery <= 1 || seq%every == 0 {
		// A full checkpoint is due: the journal restarts here, but its
		// contents are not needed — skip the encode.
		ds.ResetJournal()
		return nil, false
	}
	svcDelta, jok := ds.CheckpointDelta()
	if !jok {
		return nil, false
	}
	return encodeCheckpointDelta(svcDelta, r.drainClientUpdates()), true
}

// drainClientUpdates encodes and clears the dirty client records.
func (r *Replica) drainClientUpdates() []byte {
	if len(r.dirtyClients) == 0 {
		return encodeClientRecords(r.clients, nil)
	}
	ids := make([]string, 0, len(r.dirtyClients))
	for id := range r.dirtyClients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	clear(r.dirtyClients)
	return encodeClientRecords(r.clients, ids)
}

// rebase installs a full snapshot as the digest chain's new base.
func (r *Replica) rebase(seq uint64, snap []byte, digest [32]byte) {
	r.cpHave = true
	r.cpBase = snap
	r.cpBaseSeq = seq
	r.cpDigest = digest
	clear(r.cpDeltas)
	clear(r.dirtyClients) // the full snapshot carries the whole table
}

// unitExtra encodes the client records a just-executed batch touched —
// the replication half of the batch's WAL unit.
func (r *Replica) unitExtra(e *logEntry) []byte {
	var ids []string
	seen := make(map[string]struct{}, len(e.batch.Reqs))
	for _, req := range e.batch.Reqs {
		if noop(req) {
			continue
		}
		if _, dup := seen[req.Client]; dup {
			continue
		}
		seen[req.Client] = struct{}{}
		ids = append(ids, req.Client)
	}
	sort.Strings(ids)
	return encodeClientRecords(r.clients, ids)
}

// StateDigest returns the digest of the replica's current full state
// snapshot (service state plus client table) — the value a full
// checkpoint here would publish. It reads loop-owned state: call it
// only before Start or after Stop (crash-recovery tests compare it to
// the digests healthy replicas published).
func (r *Replica) StateDigest() [32]byte { return auth.Digest(r.stateSnapshot()) }

// CheckpointDigests returns the checkpoint digests this replica
// published, by sequence number (requires
// ReplicaConfig.KeepCheckpointHistory). Loop-owned: call after Stop.
func (r *Replica) CheckpointDigests() map[uint64][32]byte {
	out := make(map[uint64][32]byte, len(r.cpHistory))
	for s, d := range r.cpHistory {
		out[s] = d
	}
	return out
}

func (r *Replica) onCheckpoint(cp Checkpoint) {
	r.recordCheckpoint(cp)
}

func (r *Replica) recordCheckpoint(cp Checkpoint) {
	if cp.Seq <= r.lowWater {
		return
	}
	byReplica, ok := r.checkpoints[cp.Seq]
	if !ok {
		byReplica = make(map[string]cpVote)
		r.checkpoints[cp.Seq] = byReplica
	}
	byReplica[cp.Replica] = cpVote{digest: cp.Digest, view: cp.View}
	// Count matching digests.
	counts := make(map[[32]byte]int)
	for _, v := range byReplica {
		counts[v.digest]++
	}
	for d, c := range counts {
		if c < r.quorum() {
			continue
		}
		if cp.Seq > r.groupStable {
			r.groupStable = cp.Seq
		}
		// A quorum of checkpoints is also live proof of the view the
		// group operates in — realign before acting on the checkpoint,
		// so a replica wedged in a view nobody joined can rejoin.
		r.syncViewWithQuorum(cp.Seq, d)
		if cp.Seq <= r.executed {
			r.stabilize(cp.Seq)
		} else {
			// We are behind a stable checkpoint: fetch state from a
			// replica that has it.
			r.requestState(cp.Seq, d)
		}
		return
	}
	// Weak certificate: f+1 matching digests above our execution point
	// include at least one honest replica, whose checkpoint digest is
	// committed state by construction — enough to trust a transfer.
	// (Only one digest can ever reach f+1: honest replicas agree, so a
	// second camp holds at most the f faulty.) This matters when fewer
	// than 2f+1 replicas are still advancing: the full quorum above can
	// never assemble, and without this path two laggards each below the
	// survivors' low-water mark would deadlock the group forever.
	if cp.Seq > r.executed {
		for d, c := range counts {
			if c >= r.cfg.F+1 {
				r.requestState(cp.Seq, d)
				return
			}
		}
	}
}

// stabilize makes seq the low water mark and garbage-collects every
// protocol record the stable checkpoint subsumes: log entries,
// checkpoint votes, snapshots, sequence assignments, buffered batches,
// and pending requests the client table proves executed. This is what
// keeps the log bounded under sustained load.
func (r *Replica) stabilize(seq uint64) {
	if seq <= r.lowWater {
		return
	}
	r.lowWater = seq
	for s := range r.entries {
		if s <= seq {
			delete(r.entries, s)
		}
	}
	for s := range r.checkpoints {
		if s < seq {
			delete(r.checkpoints, s)
		}
	}
	for s := range r.prepCerts {
		if s <= seq {
			delete(r.prepCerts, s)
		}
	}
	for s := range r.snapshots {
		if s < seq {
			delete(r.snapshots, s)
		}
	}
	for d, s := range r.assigned {
		if s <= seq {
			delete(r.assigned, d)
		}
	}
	for s := range r.unverified {
		if s <= seq {
			delete(r.unverified, s)
		}
	}
	for d, req := range r.pending {
		if rec, ok := r.clients[req.Client]; ok && req.ReqID <= rec.lastReqID {
			delete(r.pending, d)
		}
	}
	if len(r.pending) == 0 && !r.inViewChange {
		// Mid-view-change the timer is the only way forward (it escalates
		// to the next view if the NEW-VIEW never arrives); disarming it
		// here would deadlock a group whose pending queues drained.
		r.disarmTimer()
	}
	r.logf("checkpoint stable at %d", seq)
	// The window may have re-opened for held batches.
	r.flushQueue(false)
}

func (r *Replica) requestState(seq uint64, digest [32]byte) {
	// Deterministic peer choice (group order starting after ourselves):
	// map order would pick a different server on every replay, and the
	// offset spreads transfer load when several replicas lag at once.
	byReplica := r.checkpoints[seq]
	for i := 1; i < r.n; i++ {
		id := r.cfg.Replicas[(r.index+i)%r.n]
		if v, ok := byReplica[id]; ok && v.digest == digest {
			r.sendTo(id, StateRequest{Seq: seq, Replica: r.cfg.ID})
			return
		}
	}
}

// onStateRequest serves checkpointed state: the full stateSnapshot
// when the requested sequence is a full checkpoint still held, or a
// chain pack — the last full snapshot plus every checkpoint delta up
// to the requested sequence — whose folded digest the requester checks
// against the checkpoint quorum.
func (r *Replica) onStateRequest(req StateRequest, from string) {
	if snap, ok := r.snapshots[req.Seq]; ok {
		r.m.stateServed.Inc()
		r.sendBulk(from, StateResponse{Seq: req.Seq, View: r.view, Snapshot: encodeFullPack(snap), Replica: r.cfg.ID})
		return
	}
	pack, ok := r.chainPackFor(req.Seq)
	if !ok {
		return
	}
	r.m.stateServed.Inc()
	r.sendBulk(from, StateResponse{Seq: req.Seq, View: r.view, Snapshot: pack, Replica: r.cfg.ID})
}

// sendBulk ships a state pack on the bulk lane, where the transport
// chunks it so it cannot head-of-line-block votes. A pack rejected by
// backpressure is logged and dropped whole — the requester re-sends
// its STATE-REQUEST (to a rotating peer) until one lands.
func (r *Replica) sendBulk(id string, msg any) {
	payload, err := Marshal(msg)
	if err != nil {
		r.logf("marshal %T: %v", msg, err)
		return
	}
	switch err := r.tr.SendClass(id, payload, transport.ClassBulk); {
	case err == nil:
	case errors.Is(err, transport.ErrBackpressure):
		r.logf("bulk lane to %s full, dropping %d-byte state pack", id, len(payload))
	default:
		r.logf("send to %s: %v", id, err)
	}
}

// chainPackFor assembles base + deltas covering every checkpoint in
// (base, seq], if this replica still holds them all.
func (r *Replica) chainPackFor(seq uint64) ([]byte, bool) {
	if !r.cpHave || seq <= r.cpBaseSeq {
		return nil, false
	}
	interval := r.cfg.CheckpointInterval
	var cps []seqDelta
	for s := r.cpBaseSeq + interval; s <= seq; s += interval {
		d, ok := r.cpDeltas[s]
		if !ok {
			return nil, false
		}
		cps = append(cps, seqDelta{seq: s, delta: d})
	}
	if len(cps) == 0 || cps[len(cps)-1].seq != seq {
		return nil, false // seq is not checkpoint-aligned with our chain
	}
	return encodeChainPack(r.cpBaseSeq, r.cpBase, cps), true
}

func (r *Replica) onStateResponse(resp StateResponse) {
	if resp.Seq <= r.executed {
		return
	}
	full, chain, isChain, err := decodeStatePack(resp.Snapshot)
	if err != nil {
		r.logf("state response at %d: %v", resp.Seq, err)
		return
	}
	// Verify against a checkpoint quorum before installing. A chain
	// pack folds to the chained digest the quorum voted, which commits
	// to the base snapshot and every delta — so tampering with any part
	// of either pack breaks the match.
	digest := auth.Digest(full)
	if isChain {
		digest = chain.digest()
	}
	matching := 0
	for _, v := range r.checkpoints[resp.Seq] {
		if v.digest == digest {
			matching++
		}
	}
	if matching < r.cfg.F+1 {
		// f+1 matching announcements form a weak certificate: at least
		// one is honest, and an honest replica only announces committed
		// state. A full 2f+1 quorum may never assemble when fewer than
		// 2f+1 replicas are still advancing, so demanding it here would
		// wedge laggards permanently.
		r.logf("state response at %d lacks a weak digest certificate", resp.Seq)
		return
	}
	// The incoming snapshot replaces local state wholesale; tentative
	// overlays stacked on the old state are meaningless on top of it.
	r.rollbackTentative()
	if r.durable != nil {
		// The install is covered by the snapshot EndStateLoad writes,
		// not by the WAL: load mode for the whole sequence.
		r.durable.BeginStateLoad()
	}
	if isChain {
		err = r.installChain(chain)
	} else {
		err = r.restoreState(full)
	}
	if err != nil {
		if r.durable != nil {
			// Never snapshot a partially-installed state: leave the disk
			// at the last good state and fail loudly here.
			r.durable.AbortStateLoad()
		}
		r.logf("restore at %d: %v", resp.Seq, err)
		return
	}
	if ds, ok := r.service.(DeltaSnapshotter); ok {
		// The installed state IS the checkpoint the chain describes:
		// the journal restarts here, so this replica's next delta
		// checkpoint chains consistently with everyone else's.
		ds.ResetJournal()
	}
	if r.durable != nil {
		if lerr := r.durable.EndStateLoad(resp.Seq, encodeFullClientTable(r.clients)); lerr != nil {
			r.logf("persist state transfer at %d: %v", resp.Seq, lerr)
		}
	}
	if isChain {
		r.cpHave = true
		r.cpBase = chain.base
		r.cpBaseSeq = chain.baseSeq
		r.cpDigest = digest
		clear(r.cpDeltas)
		for _, cd := range chain.cps {
			r.cpDeltas[cd.seq] = cd.delta
		}
		clear(r.dirtyClients)
	} else {
		r.snapshots[resp.Seq] = full
		r.rebase(resp.Seq, full, digest)
	}
	r.executed = resp.Seq
	if resp.Seq > r.seq {
		r.seq = resp.Seq
	}
	r.stabilize(resp.Seq)
	if resp.Seq > r.lastCP.Seq {
		r.lastCP = Checkpoint{Seq: resp.Seq, View: r.view, Digest: digest, Replica: r.cfg.ID}
	}
	// Realign with the view the checkpoint quorum reported, rather than
	// trusting the single responder's View field (one Byzantine server
	// could otherwise strand us in a fictitious far-future view).
	r.syncViewWithQuorum(resp.Seq, digest)
	r.m.stateInstalled.Inc()
	r.emit(EventStateTransferInstalled, resp.Seq, 0)
	r.logf("state transfer installed seq %d", resp.Seq)
	r.tryExecute()
}

// installChain restores the chain's base snapshot and replays its
// checkpoint deltas — service mutations through ApplyDelta, client
// records folded over the base's table.
func (r *Replica) installChain(chain chainPack) error {
	ds, ok := r.service.(DeltaSnapshotter)
	if !ok {
		return fmt.Errorf("bft: chain state response but service has no delta support")
	}
	if err := r.restoreState(chain.base); err != nil {
		return err
	}
	for _, cd := range chain.cps {
		svcDelta, ups, err := decodeCheckpointDelta(cd.delta)
		if err != nil {
			return fmt.Errorf("bft: checkpoint %d: %w", cd.seq, err)
		}
		if err := ds.ApplyDelta(svcDelta); err != nil {
			return fmt.Errorf("bft: checkpoint %d: %w", cd.seq, err)
		}
		applyClientUpdates(r.clients, ups)
	}
	return nil
}
