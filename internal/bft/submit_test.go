package bft

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peats/internal/metrics"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

func TestClusterSubmitMultiOpTx(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("mover"))
	task := tuple.T(tuple.Str("pending"), tuple.Str("job1"))
	if err := ts.Out(ctx, task); err != nil {
		t.Fatal(err)
	}
	// One round trip moves the tuple between queues atomically.
	res, err := ts.Submit(ctx,
		peats.InpOp(task),
		peats.OutOp(tuple.T(tuple.Str("active"), tuple.Str("job1"), tuple.Str("mover"))),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !res[0].Found || !res[0].Tuple.Equal(task) {
		t.Fatalf("results = %+v", res)
	}
	if _, ok, _ := ts.Rdp(ctx, tuple.T(tuple.Str("pending"), tuple.Any())); ok {
		t.Error("pending tuple survived the move")
	}
	if _, ok, _ := ts.Rdp(ctx, tuple.T(tuple.Str("active"), tuple.Any(), tuple.Any())); !ok {
		t.Error("active tuple missing")
	}

	// Replaying the move aborts without effect: ErrAborted, and the
	// active queue still holds exactly one tuple.
	res, err = ts.Submit(ctx,
		peats.InpOp(task),
		peats.OutOp(tuple.T(tuple.Str("active"), tuple.Str("job1"), tuple.Str("mover"))),
	)
	if !errors.Is(err, peats.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if len(res) != 1 || res[0].Found {
		t.Fatalf("aborted prefix = %+v", res)
	}
	all, err := ts.RdAll(ctx, tuple.T(tuple.Str("active"), tuple.Any(), tuple.Any()))
	if err != nil || len(all) != 1 {
		t.Fatalf("active tuples = %v (%v), want exactly 1", all, err)
	}
}

// TestClusterSubmitConflictingTxsAtomic is the acceptance pin for tx
// atomicity and determinism: concurrent conflicting transactions from
// many clients race to consume the same resource; exactly one may win,
// losers must see a clean abort, and every correct replica must end
// with an identical space (one critical section per replica, identical
// SpaceResult vectors — otherwise reply votes could not have formed and
// snapshots would diverge).
func TestClusterSubmitConflictingTxsAtomic(t *testing.T) {
	pol := policy.AllowAll()
	services := make([]Service, 4)
	spaceSvcs := make([]*SpaceService, 4)
	for i := range services {
		spaceSvcs[i] = NewSpaceService(pol)
		services[i] = spaceSvcs[i]
	}
	cl, err := NewCluster(1, services, WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	seeder := NewRemoteSpace(cl.Client("seed"))
	const resources = 3
	for i := int64(0); i < resources; i++ {
		if err := seeder.Out(ctx, tuple.T(tuple.Str("RES"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 9
	var wg sync.WaitGroup
	claims := make(chan string, workers*resources)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			ts := NewRemoteSpace(cl.Client(id))
			for i := int64(0); i < resources; i++ {
				_, err := ts.Submit(ctx,
					peats.InpOp(tuple.T(tuple.Str("RES"), tuple.Int(i))),
					peats.OutOp(tuple.T(tuple.Str("CLAIM"), tuple.Int(i), tuple.Str(id))),
				)
				switch {
				case err == nil:
					claims <- fmt.Sprintf("%d:%s", i, id)
				case errors.Is(err, peats.ErrAborted):
					// Lost the race: clean abort, no partial effects.
				default:
					t.Errorf("worker %s res %d: %v", id, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(claims)
	won := 0
	for range claims {
		won++
	}
	if won != resources {
		t.Errorf("%d claims for %d resources (double or lost claims)", won, resources)
	}

	reader := NewRemoteSpace(cl.Client("reader"))
	left, err := reader.RdAll(ctx, tuple.T(tuple.Str("RES"), tuple.Any()))
	if err != nil || len(left) != 0 {
		t.Errorf("unconsumed resources: %v (%v)", left, err)
	}
	claimed, err := reader.RdAll(ctx, tuple.T(tuple.Str("CLAIM"), tuple.Any(), tuple.Any()))
	if err != nil || len(claimed) != resources {
		t.Errorf("claims = %v (%v), want %d", claimed, err, resources)
	}

	// Every replica that has executed everything holds identical state.
	var top uint64
	for _, r := range cl.Replicas {
		if e := r.Executed(); e > top {
			top = e
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	var snaps [][]byte
	for time.Now().Before(deadline) {
		snaps = snaps[:0]
		for i, r := range cl.Replicas {
			if r.Executed() >= top {
				snaps = append(snaps, spaceSvcs[i].Snapshot())
			}
		}
		if len(snaps) >= 3 { // 2f+1 is the agreement threshold
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(snaps) < 3 {
		t.Fatal("fewer than 2f+1 replicas caught up")
	}
	for i := 1; i < len(snaps); i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Fatal("caught-up replicas diverge after concurrent conflicting txs")
		}
	}
}

// TestServiceTxDeterminismAcrossConfigs feeds one interleaved sequence
// of single ops, transactions (committing and aborting), and batches to
// services on both engines at shard counts {1,4,16}: every configuration
// must produce byte-identical result vectors and snapshots.
func TestServiceTxDeterminismAcrossConfigs(t *testing.T) {
	type cfg struct {
		e      space.Engine
		shards int
	}
	var cfgs []cfg
	for _, e := range space.Engines() {
		for _, sh := range []int{1, 4, 16} {
			cfgs = append(cfgs, cfg{e, sh})
		}
	}
	svcs := make([]*SpaceService, len(cfgs))
	for i, c := range cfgs {
		svc, err := NewSpaceServiceWithConfig(policy.AllowAll(), c.e, c.shards)
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}

	r := rand.New(rand.NewSource(11))
	randOp := func() wire.SpaceOp {
		tags := []string{"A", "B"}
		entry := tuple.T(tuple.Str(tags[r.Intn(2)]), tuple.Int(int64(r.Intn(3))))
		tmplChoice := []tuple.Tuple{
			entry,
			tuple.T(tuple.Str(tags[r.Intn(2)]), tuple.Any()),
			tuple.T(tuple.Any(), tuple.Int(int64(r.Intn(3)))),
		}
		tmpl := tmplChoice[r.Intn(len(tmplChoice))]
		switch r.Intn(5) {
		case 0:
			return wire.SpaceOp{Op: policy.OpOut, Entry: entry}
		case 1:
			return wire.SpaceOp{Op: policy.OpRdp, Template: tmpl}
		case 2:
			return wire.SpaceOp{Op: policy.OpInp, Template: tmpl}
		case 3:
			return wire.SpaceOp{Op: policy.OpCas, Template: tmpl, Entry: entry}
		default:
			return wire.SpaceOp{Op: policy.OpRdAll, Template: tmpl}
		}
	}

	for round := 0; round < 40; round++ {
		var payloads [][]byte
		var clients []string
		for j := 0; j < 1+r.Intn(4); j++ {
			clients = append(clients, fmt.Sprintf("c%d", r.Intn(3)))
			if r.Intn(2) == 0 {
				payloads = append(payloads, wire.EncodeSpaceOp(randOp()))
			} else {
				ops := make([]wire.SpaceOp, 1+r.Intn(4))
				for k := range ops {
					ops[k] = randOp()
				}
				payloads = append(payloads, wire.EncodeSpaceTx(wire.SpaceTx{Ops: ops}))
			}
		}
		var ref [][]byte
		for i, svc := range svcs {
			var out [][]byte
			if round%2 == 0 && len(payloads) > 1 {
				out = svc.ExecuteBatch(clients, payloads)
			} else {
				for k := range payloads {
					out = append(out, svc.Execute(clients[k], payloads[k]))
				}
			}
			if i == 0 {
				ref = out
				continue
			}
			for k := range out {
				if !bytes.Equal(ref[k], out[k]) {
					t.Fatalf("round %d req %d: %v/%d diverges from %v/%d",
						round, k, cfgs[i].e, cfgs[i].shards, cfgs[0].e, cfgs[0].shards)
				}
			}
		}
		base := svcs[0].Snapshot()
		for i := 1; i < len(svcs); i++ {
			if !bytes.Equal(base, svcs[i].Snapshot()) {
				t.Fatalf("round %d: snapshots diverge at %v/%d", round, cfgs[i].e, cfgs[i].shards)
			}
		}
	}
}

// TestServiceTxAbortSkipsTail pins the wire-level abort shape: the
// failing op keeps its own status and everything after it is
// StatusSkipped, with no staged effect committed.
func TestServiceTxAbortSkipsTail(t *testing.T) {
	svc := NewSpaceService(policy.AllowAll())
	raw := svc.Execute("c", wire.EncodeSpaceTx(wire.SpaceTx{Ops: []wire.SpaceOp{
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("A"))},
		{Op: policy.OpInp, Template: tuple.T(tuple.Str("MISSING"))},
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("B"))},
	}}))
	rs, err := wire.DecodeSpaceResults(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d results, want 3", len(rs))
	}
	if rs[0].Status != wire.StatusOK || rs[1].Status != wire.StatusOK || rs[1].Found {
		t.Fatalf("head results: %+v", rs[:2])
	}
	if rs[2].Status != wire.StatusSkipped {
		t.Fatalf("tail status = %v, want skipped", rs[2].Status)
	}
	if svc.Space().Len() != 0 {
		t.Error("aborted tx left effects behind")
	}

	// Denial aborts the same way, carrying the tx position in Detail.
	denySvc := NewSpaceService(policy.New(policy.Rule{Name: "Rout", Op: policy.OpOut}))
	raw = denySvc.Execute("c", wire.EncodeSpaceTx(wire.SpaceTx{Ops: []wire.SpaceOp{
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("A"))},
		{Op: policy.OpRdp, Template: tuple.T(tuple.Str("A"))},
		{Op: policy.OpOut, Entry: tuple.T(tuple.Str("B"))},
	}}))
	rs, err = wire.DecodeSpaceResults(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Status != wire.StatusDenied || rs[2].Status != wire.StatusSkipped {
		t.Fatalf("denied tx vector: %+v", rs)
	}
	if want := "[tx 2/3]"; !bytes.Contains([]byte(rs[1].Detail), []byte(want)) {
		t.Errorf("denial detail %q lacks %q", rs[1].Detail, want)
	}
	if denySvc.Space().Len() != 0 {
		t.Error("denied tx left effects behind")
	}
}

// TestClusterSubmitReadOnlyFastPath asserts all-read-only submissions
// skip ordering: the replicas' executed-sequence counters (the ordered
// rounds) must not advance for them, and must advance once a mutating
// op joins the unit.
func TestClusterSubmitReadOnlyFastPath(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	for i := int64(0); i < 3; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("RO"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Let every replica execute the writes so the read-only quorum forms.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range cl.Replicas {
		for r.Executed() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	before := make([]uint64, len(cl.Replicas))
	for i, r := range cl.Replicas {
		before[i] = r.Executed()
	}

	for i := 0; i < 5; i++ {
		res, err := ts.Submit(ctx,
			peats.RdpOp(tuple.T(tuple.Str("RO"), tuple.Int(0))),
			peats.RdAllOp(tuple.T(tuple.Str("RO"), tuple.Any())),
		)
		if err != nil {
			t.Fatal(err)
		}
		if !res[0].Found || len(res[1].Tuples) != 3 {
			t.Fatalf("read results = %+v", res)
		}
	}
	for i, r := range cl.Replicas {
		if got := r.Executed(); got != before[i] {
			t.Errorf("replica %d ordered %d rounds during all-read-only submissions", i, got-before[i])
		}
	}

	// A mixed submission must order.
	if _, err := ts.Submit(ctx,
		peats.RdpOp(tuple.T(tuple.Str("RO"), tuple.Int(0))),
		peats.OutOp(tuple.T(tuple.Str("RO"), tuple.Int(9))),
	); err != nil {
		t.Fatal(err)
	}
	advanced := 0
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && advanced < 3 {
		advanced = 0
		for i, r := range cl.Replicas {
			if r.Executed() > before[i] {
				advanced++
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if advanced < 3 {
		t.Error("mixed submission never went through ordering")
	}
}

// TestClusterSubmitReadOnlyTxOrderedFallback: an all-read-only tx on a
// cluster where too few replicas serve the fast path must fall back to
// ordering and still return correct vectors.
func TestClusterSubmitReadOnlyTxOrderedFallback(t *testing.T) {
	pol := policy.AllowAll()
	cl, err := NewCluster(1, []Service{
		NewSpaceService(pol),
		orderedOnlyService{NewSpaceService(pol)},
		NewSpaceService(pol),
		orderedOnlyService{NewSpaceService(pol)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	w := NewRemoteSpace(cl.Client("w"))
	if err := w.Out(ctx, tuple.T(tuple.Str("F"), tuple.Int(7))); err != nil {
		t.Fatal(err)
	}
	cli := cl.Client("r")
	cli.ReadOnlyFallback = 20 * time.Millisecond
	reader := NewRemoteSpace(cli)
	res, err := reader.Submit(ctx,
		peats.RdpOp(tuple.T(tuple.Str("F"), tuple.Any())),
		peats.RdAllOp(tuple.T(tuple.Str("F"), tuple.Any())),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Found || len(res[1].Tuples) != 1 {
		t.Fatalf("fallback results = %+v", res)
	}
}

// TestClusterDenialDetailAcrossWire: a StatusDenied reply surfaces as
// errors.Is(err, peats.ErrDenied) with the monitor's Detail attached,
// on the single-op and the tx path alike.
func TestClusterDenialDetailAcrossWire(t *testing.T) {
	pol := policy.New(policy.Rule{Name: "Rout", Op: policy.OpOut,
		When: policy.EntryFieldIsInvoker(0)})
	cl := newPEATSCluster(t, 1, pol)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("mallory"))
	// Single-op path.
	err := ts.Out(ctx, tuple.T(tuple.Str("victim"), tuple.Int(1)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Fatalf("single-op err = %v, want ErrDenied", err)
	}
	var denied *peats.DeniedError
	if !errors.As(err, &denied) || denied.Detail == "" {
		t.Fatalf("single-op denial lost its detail: %v", err)
	}
	if !bytes.Contains([]byte(denied.Detail), []byte("mallory")) {
		t.Errorf("detail %q does not name the invoker", denied.Detail)
	}

	// Tx path: allowed op first, denial mid-unit.
	res, err := ts.Submit(ctx,
		peats.OutOp(tuple.T(tuple.Str("mallory"), tuple.Int(1))),
		peats.OutOp(tuple.T(tuple.Str("victim"), tuple.Int(2))),
	)
	if !errors.Is(err, peats.ErrDenied) {
		t.Fatalf("tx err = %v, want ErrDenied", err)
	}
	denied = nil
	if !errors.As(err, &denied) || !bytes.Contains([]byte(denied.Detail), []byte("[tx 2/2]")) {
		t.Fatalf("tx denial detail = %v", err)
	}
	if len(res) != 1 {
		t.Errorf("tx denial prefix = %+v", res)
	}
	// The allowed first op must not have executed (abort).
	if _, ok, _ := ts.Rdp(ctx, tuple.T(tuple.Str("mallory"), tuple.Any())); ok {
		t.Error("denied tx committed its allowed prefix")
	}
}

// TestClusterSubmitSingleOpParity runs the same randomized op sequence
// through the legacy methods and through one-op Submit against two
// equally-configured clusters, for both engines at shard counts
// {1, 4, 16}: results must match pairwise — over the wire exactly as
// locally, the legacy methods are wrappers over Submit.
func TestClusterSubmitSingleOpParity(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, e := range space.Engines() {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/%d", e, shards), func(t *testing.T) {
				mk := func() *Cluster {
					services := make([]Service, 4)
					for i := range services {
						svc, err := NewSpaceServiceWithConfig(policy.AllowAll(), e, shards)
						if err != nil {
							t.Fatal(err)
						}
						services[i] = svc
					}
					// Instrument the cluster and scrape the shared registry
					// while the randomized workload runs: snapshots must
					// never perturb replica state (the parity assertions
					// below are the oracle), and the race detector covers
					// every update/scrape interleaving.
					reg := metrics.New()
					var events atomic.Uint64
					cl, err := NewCluster(1, services,
						WithMetrics(reg),
						WithEventSink(func(Event) { events.Add(1) }))
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(cl.Stop)
					stop := make(chan struct{})
					go func() {
						for {
							select {
							case <-stop:
								return
							case <-time.After(200 * time.Microsecond):
								reg.Snapshot()
							}
						}
					}()
					t.Cleanup(func() {
						close(stop)
						if events.Load() == 0 {
							t.Error("event sink saw no protocol events")
						}
						executed := false
						for _, f := range reg.Snapshot().Families {
							if f.Name != "peats_bft_batches_executed_total" {
								continue
							}
							for _, s := range f.Series {
								executed = executed || s.Value > 0
							}
						}
						if !executed {
							t.Error("no replica recorded executed batches")
						}
					})
					return cl
				}
				legacy := NewRemoteSpace(mk().Client("p"))
				viaSubmit := NewRemoteSpace(mk().Client("p"))
				r := rand.New(rand.NewSource(int64(13 + shards)))
				for i := 0; i < 25; i++ {
					kind := r.Intn(5)
					entry := tuple.T(tuple.Str("K"), tuple.Int(int64(r.Intn(3))))
					tmpl := entry
					if r.Intn(2) == 0 {
						tmpl = tuple.T(tuple.Str("K"), tuple.Any())
					}
					var a, b string
					switch kind {
					case 0:
						a = fmt.Sprint(legacy.Out(ctx, entry))
						res, err := viaSubmit.Submit(ctx, peats.OutOp(entry))
						b = fmt.Sprint(err)
						_ = res
					case 1:
						u, ok, err := legacy.Rdp(ctx, tmpl)
						a = fmt.Sprint(u, ok, err)
						res, err := viaSubmit.Submit(ctx, peats.RdpOp(tmpl))
						b = fmt.Sprint(res[0].Tuple, res[0].Found, err)
					case 2:
						u, ok, err := legacy.Inp(ctx, tmpl)
						a = fmt.Sprint(u, ok, err)
						res, err := viaSubmit.Submit(ctx, peats.InpOp(tmpl))
						b = fmt.Sprint(res[0].Tuple, res[0].Found, err)
					case 3:
						ins, m, err := legacy.Cas(ctx, tmpl, entry)
						a = fmt.Sprint(ins, m, err)
						res, err := viaSubmit.Submit(ctx, peats.CasOp(tmpl, entry))
						b = fmt.Sprint(res[0].Inserted, res[0].Tuple, err)
					default:
						all, err := legacy.RdAll(ctx, tmpl)
						a = fmt.Sprint(all, err)
						res, err := viaSubmit.Submit(ctx, peats.RdAllOp(tmpl))
						b = fmt.Sprint(res[0].Tuples, err)
					}
					if a != b {
						t.Fatalf("step %d kind %d: legacy %q vs submit %q", i, kind, a, b)
					}
				}
			})
		}
	}
}

// TestPollDelayBackoff pins the backoff schedule: delays start at the
// floor, grow exponentially, jitter within [base, 1.5·base], and never
// exceed the cap.
func TestPollDelayBackoff(t *testing.T) {
	floor, max := 4*time.Millisecond, 50*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		base := floor
		for i := 0; i < attempt && base < max; i++ {
			base *= 2
		}
		if base > max {
			base = max
		}
		hi := base + base/2
		if hi > max {
			hi = max
		}
		for trial := 0; trial < 20; trial++ {
			d := pollDelay(floor, max, attempt)
			if d < base || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, hi)
			}
		}
	}
	// A floor at (or above) the cap degenerates to constant-interval
	// polling at the floor.
	if d := pollDelay(max, max, 5); d != max {
		t.Errorf("saturated delay = %v, want exactly %v", d, max)
	}
}

// TestPollFloorAtOrAboveCapDegenerates drives the poll loop itself
// (no cluster) with a floor above the cap: the effective schedule is
// constant at the floor with zero jitter headroom, so two misses cost
// exactly two floor-length sleeps before the hit returns.
func TestPollFloorAtOrAboveCapDegenerates(t *testing.T) {
	s := &RemoteSpace{PollInterval: 30 * time.Millisecond, PollMaxInterval: 10 * time.Millisecond}
	calls := 0
	start := time.Now()
	got, err := s.poll(context.Background(), tuple.T(tuple.Str("X")),
		func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error) {
			calls++
			return tuple.T(tuple.Int(int64(calls))), calls >= 3, nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("poll: calls=%d err=%v", calls, err)
	}
	if v, _ := got.Field(0).IntValue(); v != 3 {
		t.Fatalf("poll returned %v, want the third attempt's tuple", got)
	}
	if elapsed := time.Since(start); elapsed < 2*s.PollInterval {
		t.Errorf("two misses slept %v, want ≥ %v (floor must win over a lower cap)",
			elapsed, 2*s.PollInterval)
	}
}

// TestPollCancellationAndErrorPropagation: cancelling the context while
// the poll loop is parked in backoff unblocks it promptly, and an
// operation error aborts the loop immediately without a retry.
func TestPollCancellationAndErrorPropagation(t *testing.T) {
	s := &RemoteSpace{PollInterval: 20 * time.Millisecond, PollMaxInterval: time.Second}
	miss := func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error) {
		return tuple.Tuple{}, false, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond) // poll is parked in its second backoff
		cancel()
	}()
	start := time.Now()
	if _, err := s.poll(ctx, tuple.T(tuple.Str("X")), miss); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled poll err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancellation took %v to unblock a parked poller", elapsed)
	}

	// A context cancelled before the first attempt still runs the
	// operation once (matching Rdp/Inp, which surface their own ctx
	// error) and then stops in the select.
	calls := 0
	if _, err := s.poll(ctx, tuple.T(tuple.Str("X")),
		func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error) {
			calls++
			return tuple.Tuple{}, false, nil
		}); !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("pre-cancelled poll: calls=%d err=%v", calls, err)
	}

	boom := errors.New("replica unreachable")
	calls = 0
	if _, err := s.poll(context.Background(), tuple.T(tuple.Str("X")),
		func(context.Context, tuple.Tuple) (tuple.Tuple, bool, error) {
			calls++
			return tuple.Tuple{}, false, boom
		}); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("error propagation: calls=%d err=%v", calls, err)
	}
}

// TestRemoteSpacePollBackoffStillDelivers: a blocking Rd with an
// aggressive floor finds a late tuple and respects cancellation.
func TestRemoteSpacePollBackoffStillDelivers(t *testing.T) {
	cl := newPEATSCluster(t, 1, policy.AllowAll())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reader := NewRemoteSpace(cl.Client("reader"))
	reader.PollInterval = time.Millisecond
	reader.PollMaxInterval = 10 * time.Millisecond
	writer := NewRemoteSpace(cl.Client("writer"))

	done := make(chan error, 1)
	go func() {
		_, err := reader.Rd(ctx, tuple.T(tuple.Str("LATE"), tuple.Any()))
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // several backoff doublings pass
	if err := writer.Out(ctx, tuple.T(tuple.Str("LATE"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocking rd under backoff: %v", err)
	}

	// Cancellation interrupts a parked poller.
	cctx, ccancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		ccancel()
	}()
	if _, err := reader.Rd(cctx, tuple.T(tuple.Str("NEVER"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rd err = %v", err)
	}
}
