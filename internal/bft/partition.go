package bft

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"peats/internal/metrics"
	"peats/internal/space"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// Partitioned deployments run M independent replica groups, each owning
// the slice of the tuple key space the canonical FNV-1a(arity,
// first-field) rule routes to it. Cross-partition submissions reach a
// group as partition 2PC operations (wire.TxPrepare / TxDecision /
// TxStatus) carried through ordinary agreement, so every prepare vote
// and every decision application is itself BFT-agreed — the box the
// coordinator (an untrusted client) cannot subvert.
//
// The prepare of a transaction executes the group's op slice against a
// staged view but commits nothing: a YES vote parks the net effects as
// a *reservation* (removed tuples + pending inserts) in the service's
// pending table. Reserved tuples are frozen — invisible to every other
// operation, exactly as if already consumed — so the commit's removal
// targets cannot be stolen during the in-doubt window; pending inserts
// stay invisible until commit. A decision applies or drops the
// reservation; either way the original stores were never touched by an
// aborted transaction, which is what keeps a partitioned space
// observationally identical to a single-group one.
//
// A decision is honoured only with a valid justification: COMMIT needs
// vote certificates (2f+1 replica attestations over the agreed vote
// bytes) proving a YES from every participant the group's own agreed
// prepare named; ABORT needs a certificate proving some such
// participant voted NO or is pinned aborted. All-YES makes abort
// evidence unobtainable and any-NO makes commit evidence unobtainable,
// so conflicting decisions from a Byzantine coordinator cannot diverge
// outcomes across groups.

// GroupKeys is one group's verification material in the deployment
// topology: its fault bound and its replicas' attestation public keys.
type GroupKeys struct {
	F    int
	Keys map[string]ed25519.PublicKey
}

// AttestKeyFor derives a replica's attestation signing key from the
// deployment's attestation master secret. Deterministic derivation
// means topology descriptions need no public keys: any party holding
// the master (the trusted setup) reconstructs the whole directory.
// Fields are length-framed so no two (master, group, replica) triples
// collide.
func AttestKeyFor(master []byte, group, replica string) ed25519.PrivateKey {
	h := sha256.New()
	h.Write([]byte("peats-attest-key\x00"))
	var buf [8]byte
	for _, f := range []string{string(master), group, replica} {
		binary.BigEndian.PutUint64(buf[:], uint64(len(f)))
		h.Write(buf[:])
		h.Write([]byte(f))
	}
	return ed25519.NewKeyFromSeed(h.Sum(nil))
}

// Directory maps group identities to their verification material. It
// is part of the trusted setup (like the pairwise key master) and must
// be identical on every replica: certificate verification is a pure
// function of the directory and the certificate bytes, so verdicts are
// deterministic across a group.
type Directory map[string]GroupKeys

// pendingRes is one prepared-but-undecided transaction's reservation.
type pendingRes struct {
	parts   []string // sorted participant groups, fixed by the agreed prepare
	removed []space.SeqTuple
	inserts []tuple.Tuple
	outcome []byte // encoded YES TxOutcome, returned verbatim to duplicates and status queries
}

// decidedTx records a transaction's final state (and, for commits, its
// participant set, so a Committed status answer remains usable as YES
// evidence). The stamp orders entries by decision time for the aborted
// GC; it is part of the replicated state (snapshots carry it), so every
// replica evicts the same entries at the same execution point.
type decidedTx struct {
	state uint8 // wire.TxCommitted or wire.TxAborted
	parts []string
	stamp uint64
}

// partitionState is the 2PC half of a SpaceService. The pending and
// decided tables are touched only by ordered execution and
// Snapshot/Restore — all on the replica event loop, so they need no
// lock. The read-only worker pool observes reservations through the
// frozen cache, an atomically swapped slice: refreshFrozen publishes a
// new slice after every pending-table change, inside the scoped commit
// section when the stores change too, so readers always see freezes
// and store contents move together.
type partitionState struct {
	group string
	dir   Directory

	pending map[string]*pendingRes
	decided map[string]decidedTx
	frozen  atomic.Value // []space.SeqTuple

	stamp   uint64 // next decision stamp; deterministic across replicas
	aborted int    // count of decided entries in state TxAborted

	// Atomic size mirrors of the loop-owned tables, refreshed on every
	// mutation, so scrape-time gauges never read the maps themselves.
	pendingN atomic.Int64
	decidedN atomic.Int64

	// 2PC counters, nil until enableMetrics; nil handles no-op.
	mPrepares *metrics.Counter
	mCommits  *metrics.Counter
	mAborts   *metrics.Counter
	mStatus   *metrics.Counter
}

// EnablePartition gives the service a group identity and the
// deployment directory, turning on execution of partition 2PC
// operations. Call before the replica starts executing.
func (s *SpaceService) EnablePartition(group string, dir Directory) {
	s.ptx = &partitionState{
		group:   group,
		dir:     dir,
		pending: make(map[string]*pendingRes),
		decided: make(map[string]decidedTx),
	}
	s.ptx.frozen.Store([]space.SeqTuple(nil))
	s.ptx.enableMetrics(s.metricsReg, s.metricsLabels...)
}

// SkipTentative implements TentativeFilter: partition 2PC operations
// mutate the pending-transaction table, which no overlay can roll
// back, so batches carrying them must wait for the commit quorum.
func (s *SpaceService) SkipTentative(op []byte) bool {
	return wire.IsPartitionOp(op)
}

// refreshFrozen republishes the reserved tuples of every pending
// transaction for the read-only worker pool. Event loop only.
// syncSizes refreshes the atomic table-size mirrors. Event loop only.
func (p *partitionState) syncSizes() {
	p.pendingN.Store(int64(len(p.pending)))
	p.decidedN.Store(int64(len(p.decided)))
}

// enableMetrics registers the 2PC counters and table-size gauges.
func (p *partitionState) enableMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	p.mPrepares = reg.Counter("peats_2pc_prepares_total",
		"TX-PREPARE operations executed (votes cast, YES or NO).", labels...)
	p.mCommits = reg.Counter("peats_2pc_commits_total",
		"Transactions committed by a valid certificate.", labels...)
	p.mAborts = reg.Counter("peats_2pc_aborts_total",
		"Transactions decided aborted (certificate or presumed-abort pin).", labels...)
	p.mStatus = reg.Counter("peats_2pc_status_queries_total",
		"TX-STATUS recovery queries answered.", labels...)
	reg.GaugeFunc("peats_2pc_pending",
		"Prepared transactions awaiting a decision (reservation table size).",
		func() float64 { return float64(p.pendingN.Load()) }, labels...)
	reg.GaugeFunc("peats_2pc_decided",
		"Decided transactions retained for recovery answers.",
		func() float64 { return float64(p.decidedN.Load()) }, labels...)
}

func (p *partitionState) refreshFrozen() {
	var frozen []space.SeqTuple
	for _, res := range p.pending {
		frozen = append(frozen, res.removed...)
	}
	// Stable order: the pending table is a map, and the cache feeds
	// Freeze whose scan order must not vary between replay runs.
	sort.Slice(frozen, func(i, j int) bool { return frozen[i].Seq < frozen[j].Seq })
	p.syncSizes()
	p.frozen.Store(frozen)
}

// freezeReservations hides every pending reservation from a staged
// view. Lock-free; safe from the read-only worker pool.
func (s *SpaceService) freezeReservations(st *space.Staged) {
	if s.ptx == nil {
		return
	}
	if frozen, _ := s.ptx.frozen.Load().([]space.SeqTuple); len(frozen) > 0 {
		st.Freeze(frozen)
	}
}

// partitionErr renders a deterministic error for a malformed or
// inapplicable partition operation.
func partitionErr(detail string) []byte {
	return wire.EncodeSpaceResult(wire.SpaceResult{Status: wire.StatusError, Detail: detail})
}

func encodeOutcome(txID string, state uint8, parts []string, results []wire.SpaceResult) []byte {
	return wire.EncodeTxOutcome(wire.TxOutcome{
		TxID: txID, State: state, Participants: parts, Results: results,
	})
}

// maxAbortedDecided bounds how many aborted decision records the
// decided table retains. Aborted entries are the unbounded class — any
// client can mint them by probing unknown txIDs — and presumed abort
// makes them safely evictable: re-probing an evicted ID pins it
// aborted again with the identical answer. Committed entries are kept
// forever; evicting one could let a replayed prepare resurrect a
// transaction whose commit evidence still circulates. The one cost of
// eviction is that an aborted txID's at-most-once window expires: a
// party reusing the ID after eviction runs a fresh transaction under
// it. Honest coordinators never reuse IDs (they carry a random nonce),
// and a dishonest party gains nothing it could not get with a new ID.
const maxAbortedDecided = 1 << 14

// pin records a transaction's final state, stamping it into the
// decision order and garbage-collecting old aborted entries. Callers
// guarantee txID is not already decided (every execution path answers
// from the decided table first). Event loop only.
func (p *partitionState) pin(txID string, state uint8, parts []string) {
	p.decided[txID] = decidedTx{state: state, parts: parts, stamp: p.stamp}
	p.stamp++
	if state == wire.TxAborted {
		p.aborted++
		p.gcAborted()
	}
	p.syncSizes()
}

// gcAborted evicts the oldest aborted decision records once the table
// holds more than maxAbortedDecided of them, keeping the newest half —
// amortized batch eviction, so the sort runs once per ~cap/2 pins.
// Stamps are replicated state, so every replica evicts the same
// entries on the same pin.
func (p *partitionState) gcAborted() {
	if p.aborted <= maxAbortedDecided {
		return
	}
	type aged struct {
		id    string
		stamp uint64
	}
	olds := make([]aged, 0, p.aborted)
	for id, dec := range p.decided {
		if dec.state == wire.TxAborted {
			olds = append(olds, aged{id, dec.stamp})
		}
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].stamp < olds[j].stamp })
	for _, a := range olds[:len(olds)-maxAbortedDecided/2] {
		delete(p.decided, a.id)
		p.aborted--
	}
}

// reserveDeltaOp renders a parked reservation as its checkpoint-delta
// event: removals by value (sequence numbers are replica-local), plus
// everything a replaying replica needs to reconstruct the pendingRes.
func reserveDeltaOp(txID string, res *pendingRes) wire.DeltaOp {
	removed := make([]tuple.Tuple, len(res.removed))
	for i, r := range res.removed {
		removed[i] = r.T
	}
	return wire.DeltaOp{
		Kind: wire.DeltaReserve, TxID: txID, Parts: res.parts,
		Removed: removed, Inserts: res.inserts, Outcome: res.outcome,
	}
}

// applyPartitionDelta replays one partition 2PC event from an
// incremental checkpoint, inside the caller's full critical section.
// Events replay through the same table transitions ordered execution
// performs — pin stamps included — so the replaying replica's tables,
// freezes, and stores advance exactly as the source's did.
func (s *SpaceService) applyPartitionDelta(tx *space.Tx, op wire.DeltaOp) error {
	if s.ptx == nil {
		return fmt.Errorf("partition event on a non-partitioned service")
	}
	switch op.Kind {
	case wire.DeltaReserve:
		if _, ok := s.ptx.pending[op.TxID]; ok {
			return fmt.Errorf("reserve for already-pending tx %s", op.TxID)
		}
		// Bind the reserved values to concrete stored tuples with the
		// current reservations frozen — the same selection the source's
		// prepare performed, so per-value reserved counts match.
		st := tx.Stage()
		s.freezeReservations(st)
		for _, v := range op.Removed {
			if _, ok := st.Inp(v); !ok {
				return fmt.Errorf("reservation of tx %s lost its target", op.TxID)
			}
		}
		bound, _ := st.Effects()
		s.ptx.pending[op.TxID] = &pendingRes{
			parts:   op.Parts,
			removed: append([]space.SeqTuple(nil), bound...),
			inserts: op.Inserts,
			outcome: op.Outcome,
		}
		// The staged view is dropped: binding consumed nothing.
		s.ptx.refreshFrozen()
	case wire.DeltaDecide:
		if op.Commit {
			res, ok := s.ptx.pending[op.TxID]
			if !ok {
				return fmt.Errorf("commit event for unprepared tx %s", op.TxID)
			}
			s.commitReservation(tx, op.TxID, res)
			return nil
		}
		delete(s.ptx.pending, op.TxID)
		s.ptx.pin(op.TxID, wire.TxAborted, nil)
		s.ptx.refreshFrozen()
	case wire.DeltaPin:
		s.ptx.pin(op.TxID, wire.TxAborted, nil)
	default:
		return fmt.Errorf("unknown partition event kind %d", op.Kind)
	}
	return nil
}

// executePartition dispatches one agreed partition 2PC operation. It
// runs on the replica event loop, like every ordered execution, and
// outside any space critical section.
func (s *SpaceService) executePartition(client string, op []byte) []byte {
	if s.ptx == nil {
		return partitionErr("partitioning not enabled on this group")
	}
	switch {
	case wire.IsTxPrepare(op):
		return s.executePrepare(client, op)
	case wire.IsTxDecision(op):
		return s.executeDecision(op)
	case wire.IsTxStatus(op):
		return s.executeStatus(op)
	}
	return partitionErr("unknown partition operation")
}

// executePrepare votes on this group's slice of a cross-partition
// transaction: the ops run against a staged view (predecessor
// reservations frozen), and a clean run parks the staged effects as a
// reservation without committing — the YES vote. Any abort condition
// votes NO and pins the transaction aborted, so no later certificate
// set can commit it here.
func (s *SpaceService) executePrepare(client string, op []byte) []byte {
	p, err := wire.DecodeTxPrepare(op)
	if err != nil {
		return partitionErr("bad prepare: " + err.Error())
	}
	s.ptx.mPrepares.Inc()
	parts := append([]string(nil), p.Participants...)
	sort.Strings(parts)
	parts = dedupSorted(parts)

	if dec, ok := s.ptx.decided[p.TxID]; ok {
		return encodeOutcome(p.TxID, dec.state, dec.parts, nil)
	}
	if res, ok := s.ptx.pending[p.TxID]; ok {
		return res.outcome
	}

	selfIn := false
	for _, g := range parts {
		if g == s.ptx.group {
			selfIn = true
		}
	}
	if !selfIn {
		// A prepare that does not name this group as a participant is
		// misrouted; vote NO so the transaction can only abort.
		s.ptx.pin(p.TxID, wire.TxAborted, nil)
		s.journalOp(wire.DeltaOp{Kind: wire.DeltaPin, TxID: p.TxID})
		return encodeOutcome(p.TxID, wire.TxVoteNo, parts, nil)
	}

	var outcome []byte
	s.inner.DoRead(func(tx *space.Tx) {
		st := tx.Stage()
		s.freezeReservations(st)
		results := make([]wire.SpaceResult, len(p.Ops))
		for i, o := range p.Ops {
			r, abort := s.applyStaged(st, client, o, i, len(p.Ops))
			results[i] = r
			if abort {
				for j := i + 1; j < len(p.Ops); j++ {
					results[j] = wire.SpaceResult{Status: wire.StatusSkipped}
				}
				outcome = encodeOutcome(p.TxID, wire.TxVoteNo, parts, results)
				s.ptx.pin(p.TxID, wire.TxAborted, nil)
				return
			}
		}
		removed, inserts := st.Effects()
		outcome = encodeOutcome(p.TxID, wire.TxVoteYes, parts, results)
		s.ptx.pending[p.TxID] = &pendingRes{
			parts: parts, removed: removed, inserts: inserts, outcome: outcome,
		}
		// The staged view is dropped without Commit: nothing touches the
		// stores until the decision.
	})
	s.ptx.refreshFrozen()
	if res, ok := s.ptx.pending[p.TxID]; ok {
		s.journalOp(reserveDeltaOp(p.TxID, res))
	} else {
		s.journalOp(wire.DeltaOp{Kind: wire.DeltaPin, TxID: p.TxID})
	}
	return outcome
}

// executeDecision validates and applies a coordinator's decision. An
// unjustified decision leaves the reservation untouched and reports the
// current state — the coordinator gains nothing by lying, and a correct
// recovery client can still deliver the unique valid decision later.
func (s *SpaceService) executeDecision(op []byte) []byte {
	d, err := wire.DecodeTxDecision(op)
	if err != nil {
		return partitionErr("bad decision: " + err.Error())
	}
	if dec, ok := s.ptx.decided[d.TxID]; ok {
		return encodeOutcome(d.TxID, dec.state, dec.parts, nil)
	}
	res, prepared := s.ptx.pending[d.TxID]
	if d.Commit {
		if !prepared {
			// No agreed YES vote exists here, so no valid commit
			// certificate can name this group; refuse deterministically.
			return partitionErr("commit for a transaction this group never prepared")
		}
		if !s.validCommit(d, res.parts) {
			return res.outcome // unjustified: still prepared
		}
		s.applyReservation(d.TxID, res)
		s.journalOp(wire.DeltaOp{Kind: wire.DeltaDecide, TxID: d.TxID, Commit: true})
		s.ptx.mCommits.Inc()
		return encodeOutcome(d.TxID, wire.TxCommitted, res.parts, nil)
	}
	if prepared && !s.validAbort(d, res.parts) {
		return res.outcome // unjustified: still prepared
	}
	delete(s.ptx.pending, d.TxID)
	s.ptx.pin(d.TxID, wire.TxAborted, nil)
	s.ptx.refreshFrozen()
	s.journalOp(wire.DeltaOp{Kind: wire.DeltaDecide, TxID: d.TxID})
	s.ptx.mAborts.Inc()
	return encodeOutcome(d.TxID, wire.TxAborted, nil, nil)
}

// executeStatus answers a group's agreed record of a transaction,
// pinning unknown transactions aborted (presumed abort — the pin gives
// coordinator recovery a terminating protocol). The answer for a
// still-prepared transaction is the stored YES vote, byte-identical to
// the prepare reply — so attested status replies reassemble into the
// same certificates a crashed coordinator lost.
//
// Pinning is open to any authenticated client by design (recovery must
// terminate without the coordinator's cooperation), which would be a
// denial-of-service lever if txIDs were guessable — a rival could pin
// a victim's next transaction aborted before it prepares. The defense
// is unpredictability, not authorization: coordinators embed a random
// nonce in every txID (see partition.Space), so there is no "next ID"
// to aim at, and the aborted-pin GC (maxAbortedDecided) keeps the spam
// an attacker can mint from inflating replica memory.
func (s *SpaceService) executeStatus(op []byte) []byte {
	q, err := wire.DecodeTxStatus(op)
	if err != nil {
		return partitionErr("bad status: " + err.Error())
	}
	s.ptx.mStatus.Inc()
	if dec, ok := s.ptx.decided[q.TxID]; ok {
		return encodeOutcome(q.TxID, dec.state, dec.parts, nil)
	}
	if res, ok := s.ptx.pending[q.TxID]; ok {
		return res.outcome
	}
	s.ptx.pin(q.TxID, wire.TxAborted, nil)
	s.journalOp(wire.DeltaOp{Kind: wire.DeltaPin, TxID: q.TxID})
	return encodeOutcome(q.TxID, wire.TxAborted, nil, nil)
}

// applyReservation commits a reservation: value-addressed removals and
// fresh-sequence inserts through the usual staged Commit path (and
// therefore through the durable store journal when one backs the
// space). The pending-table update and the frozen-cache swap happen
// inside the scoped section — the write locks keep the read-only pool
// out of the touched shards, so no reader can observe the stores and
// the freeze list disagreeing.
func (s *SpaceService) applyReservation(txID string, res *pendingRes) {
	var ws space.ShardSet
	for _, r := range res.removed {
		ws.Add(s.inner.EntryShard(r.T))
	}
	for _, t := range res.inserts {
		ws.Add(s.inner.EntryShard(t))
	}
	s.inner.DoScoped(ws, func(tx *space.Tx) {
		s.commitReservation(tx, txID, res)
	})
}

// commitReservation applies a reservation's effects inside an open
// critical section covering every touched shard.
//
// Commit consumes the earliest stored tuple equal to each reserved
// value. When another pending transaction reserved an equal value, the
// consumed copy may be the one *that* reservation's frozen sequence
// names — value-interchangeable for the store multiset, but it would
// leave the other reservation freezing a dead sequence while its
// surviving copy sits exposed: a concurrent inp could steal the copy,
// and the other transaction's later justified commit would find its
// target gone. rebindEqual repairs this immediately, re-binding every
// pending reservation of a just-committed value onto the surviving
// copies before the frozen cache is republished.
func (s *SpaceService) commitReservation(tx *space.Tx, txID string, res *pendingRes) {
	st := tx.Stage()
	st.Seed(res.removed, res.inserts)
	st.Commit()
	delete(s.ptx.pending, txID)
	s.ptx.pin(txID, wire.TxCommitted, res.parts)
	s.rebindEqual(tx, res.removed)
	s.ptx.refreshFrozen()
}

// rebindEqual re-binds, onto currently stored copies, every pending
// reservation holding a value equal to one just committed. All copies
// of an affected value held by any pending reservation are rebound in
// one pass (canonical txID order, earliest stored copy first), so no
// freezing is needed: the pass itself assigns distinct copies.
//
// The binding always succeeds: each prepare matched with every earlier
// reservation frozen and ordinary execution never consumes frozen
// tuples, so per value the reserved count never exceeds the stored
// count — an invariant the commit preserved by consuming exactly its
// own reserved copies, count-wise. Equal values route to one shard, so
// every lookup stays inside the commit's write scope.
func (s *SpaceService) rebindEqual(tx *space.Tx, committed []space.SeqTuple) {
	affected := make(map[string][]int) // txID → indices of removals to re-bind
	var ids []string
	for id, res := range s.ptx.pending {
		for i, r := range res.removed {
			for _, c := range committed {
				if r.T.Equal(c.T) {
					if len(affected[id]) == 0 {
						ids = append(ids, id)
					}
					affected[id] = append(affected[id], i)
					break
				}
			}
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	st := tx.Stage()
	for _, id := range ids {
		res := s.ptx.pending[id]
		for _, i := range affected[id] {
			if _, ok := st.Inp(res.removed[i].T); !ok {
				panic("bft: pending reservation lost every equal copy")
			}
		}
	}
	bound, _ := st.Effects()
	k := 0
	for _, id := range ids {
		res := s.ptx.pending[id]
		for _, i := range affected[id] {
			res.removed[i] = bound[k]
			k++
		}
	}
	// The staged view is dropped: re-binding consumed nothing.
}

// validCommit reports whether d carries, for every participant of this
// group's agreed prepare, a verified certificate of a YES vote (or an
// already-committed state) naming exactly the same participant set.
// Requiring the identical set defeats a coordinator that tells
// different groups different participant lists: the vote bytes pin the
// set each group agreed to, so mismatched views can never both reach a
// justified commit.
func (s *SpaceService) validCommit(d wire.TxDecision, parts []string) bool {
	for _, g := range parts {
		ok := false
		for _, c := range d.Certs {
			if c.Group != g {
				continue
			}
			o, err := wire.DecodeTxOutcome(c.Outcome)
			if err != nil || o.TxID != d.TxID {
				continue
			}
			if o.State != wire.TxVoteYes && o.State != wire.TxCommitted {
				continue
			}
			if !equalStrings(o.Participants, parts) {
				continue
			}
			if s.certSigned(c) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// validAbort reports whether d carries a verified certificate showing
// some participant of this group's agreed prepare voted NO or is
// pinned aborted. Certificates from groups outside the participant set
// are ignored: any stranger group can be pinned aborted by a status
// probe, and accepting its word would let a Byzantine coordinator
// abort a fully-prepared transaction at some groups while committing
// it at others.
func (s *SpaceService) validAbort(d wire.TxDecision, parts []string) bool {
	for _, c := range d.Certs {
		in := false
		for _, g := range parts {
			if c.Group == g {
				in = true
				break
			}
		}
		if !in {
			continue
		}
		o, err := wire.DecodeTxOutcome(c.Outcome)
		if err != nil || o.TxID != d.TxID {
			continue
		}
		if o.State != wire.TxVoteNo && o.State != wire.TxAborted {
			continue
		}
		if s.certSigned(c) {
			return true
		}
	}
	return false
}

// certSigned verifies a certificate's attestations against the
// directory: 2f+1 distinct replicas of the named group must have
// signed the outcome bytes. With at most f Byzantine replicas per
// group, a verified certificate proves the group's agreement produced
// these bytes.
func (s *SpaceService) certSigned(c wire.VoteCert) bool {
	gk, ok := s.ptx.dir[c.Group]
	if !ok {
		return false
	}
	payload := wire.AttestPayload(c.Group, c.Outcome)
	seen := make(map[string]struct{}, len(c.Atts))
	valid := 0
	for _, a := range c.Atts {
		if _, dup := seen[a.Replica]; dup {
			continue
		}
		pub, ok := gk.Keys[a.Replica]
		if !ok || len(a.Sig) != ed25519.SignatureSize {
			continue
		}
		if !ed25519.Verify(pub, payload, a.Sig) {
			continue
		}
		seen[a.Replica] = struct{}{}
		valid++
	}
	return valid >= 2*gk.F+1
}

// ---- Snapshot integration ----
//
// Reservations and decision records are replicated state: they decide
// what every operation after them observes, so they are part of the
// checkpoint digest and of state transfers. Reserved removals are
// encoded by value (like delta removals) and re-bound to concrete
// stored tuples on restore — sequence numbers are replica-local.

// appendPartitionSnapshot appends the pending and decided tables in
// canonical (txID-sorted) order. Event loop only.
func (s *SpaceService) appendPartitionSnapshot(w *wire.Writer) {
	if s.ptx == nil {
		return
	}
	ids := make([]string, 0, len(s.ptx.pending))
	for id := range s.ptx.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		res := s.ptx.pending[id]
		w.String(id)
		w.Uvarint(uint64(len(res.parts)))
		for _, g := range res.parts {
			w.String(g)
		}
		w.Uvarint(uint64(len(res.removed)))
		for _, r := range res.removed {
			w.Tuple(r.T)
		}
		w.Uvarint(uint64(len(res.inserts)))
		for _, t := range res.inserts {
			w.Tuple(t)
		}
		w.Bytes(res.outcome)
	}
	ids = ids[:0]
	for id := range s.ptx.decided {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		dec := s.ptx.decided[id]
		w.String(id)
		w.Byte(dec.state)
		w.Uvarint(dec.stamp)
		w.Uvarint(uint64(len(dec.parts)))
		for _, g := range dec.parts {
			w.String(g)
		}
	}
}

// restorePartitionSnapshot reads the tables back and re-binds each
// reservation's removed values to the earliest stored tuples equal to
// them — the same value-addressed selection Staged.Commit performs, so
// a state-transferred replica freezes exactly the tuples its peers do.
// A snapshot without the partition section (single-group peer) clears
// the tables. Event loop only; the space must already hold the
// snapshot's tuples.
func (s *SpaceService) restorePartitionSnapshot(r *wire.Reader) error {
	s.ptx.pending = make(map[string]*pendingRes)
	s.ptx.decided = make(map[string]decidedTx)
	s.ptx.stamp = 0
	s.ptx.aborted = 0
	if r.Remaining() == 0 {
		s.ptx.refreshFrozen()
		return nil
	}
	np := r.Uvarint()
	if np > maxBatch {
		return fmt.Errorf("bft: snapshot with %d pending transactions", np)
	}
	type rawPending struct {
		id      string
		parts   []string
		removed []tuple.Tuple
		inserts []tuple.Tuple
		outcome []byte
	}
	raws := make([]rawPending, 0, np)
	for i := uint64(0); i < np && r.Err() == nil; i++ {
		var rp rawPending
		rp.id = r.String()
		ng := r.Uvarint()
		if ng > wire.MaxTxParticipants {
			return fmt.Errorf("bft: pending tx with %d participants", ng)
		}
		for j := uint64(0); j < ng && r.Err() == nil; j++ {
			rp.parts = append(rp.parts, r.String())
		}
		nr := r.Uvarint()
		if nr > wire.MaxTxOps {
			return fmt.Errorf("bft: pending tx with %d removals", nr)
		}
		for j := uint64(0); j < nr && r.Err() == nil; j++ {
			rp.removed = append(rp.removed, r.Tuple())
		}
		ni := r.Uvarint()
		if ni > wire.MaxTxOps {
			return fmt.Errorf("bft: pending tx with %d inserts", ni)
		}
		for j := uint64(0); j < ni && r.Err() == nil; j++ {
			rp.inserts = append(rp.inserts, r.Tuple())
		}
		rp.outcome = r.Bytes()
		raws = append(raws, rp)
	}
	nd := r.Uvarint()
	if nd > maxBatch {
		return fmt.Errorf("bft: snapshot with %d decided transactions", nd)
	}
	for i := uint64(0); i < nd && r.Err() == nil; i++ {
		id := r.String()
		state := r.Byte()
		stamp := r.Uvarint()
		ng := r.Uvarint()
		if ng > wire.MaxTxParticipants {
			return fmt.Errorf("bft: decided tx with %d participants", ng)
		}
		var parts []string
		for j := uint64(0); j < ng && r.Err() == nil; j++ {
			parts = append(parts, r.String())
		}
		s.ptx.decided[id] = decidedTx{state: state, parts: parts, stamp: stamp}
		// Recompute the stamp counter and the aborted census. The GC
		// never evicts the newest entry (eviction drops oldest aborted
		// entries, keeping the most recent half), so max(stamp)+1 is
		// exactly the counter the source replica holds.
		if stamp >= s.ptx.stamp {
			s.ptx.stamp = stamp + 1
		}
		if state == wire.TxAborted {
			s.ptx.aborted++
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return fmt.Errorf("bft: restore partition state: %w", err)
	}
	// Re-bind reservations against the freshly restored stores. One
	// staged view across all transactions (txID order): identical values
	// reserved by different transactions bind to successive copies,
	// never the same one.
	var bindErr error
	s.inner.DoRead(func(tx *space.Tx) {
		st := tx.Stage()
		counts := make([]int, len(raws))
		for i, rp := range raws {
			for _, v := range rp.removed {
				if _, ok := st.Inp(v); !ok {
					bindErr = fmt.Errorf("bft: reservation of tx %s lost its target", rp.id)
					return
				}
			}
			counts[i] = len(rp.removed)
		}
		bound, _ := st.Effects()
		off := 0
		for i, rp := range raws {
			removed := append([]space.SeqTuple(nil), bound[off:off+counts[i]]...)
			off += counts[i]
			s.ptx.pending[rp.id] = &pendingRes{
				parts:   rp.parts,
				removed: removed,
				inserts: rp.inserts,
				outcome: rp.outcome,
			}
		}
		// The staged view is dropped: binding consumed nothing.
	})
	s.ptx.refreshFrozen()
	return bindErr
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
