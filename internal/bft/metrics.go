package bft

import (
	"peats/internal/metrics"
)

// MetricsEnabler is implemented by services that can register their
// own metric series (SpaceService instruments its tuple space, the
// durability engine, and the partition 2PC state). NewReplica invokes
// it with the replica's registry and identity label, so one knob —
// ReplicaConfig.Metrics — instruments the whole stack beneath a
// replica.
type MetricsEnabler interface {
	EnableMetrics(reg *metrics.Registry, labels ...metrics.Label)
}

// replicaMetrics holds the protocol-layer metric handles. Every handle
// is nil when the replica runs without a registry, and every operation
// on a nil handle no-ops — the agreement hot path pays one branch per
// site when metrics are off, a few uncontended atomic adds when on.
type replicaMetrics struct {
	batchesProposed  *metrics.Counter
	batchesExecuted  *metrics.Counter
	requestsExecuted *metrics.Counter
	batchFill        *metrics.Histogram
	batchDelay       *metrics.Histogram

	viewChanges    *metrics.Counter
	viewsInstalled *metrics.Counter

	tentativeExecuted  *metrics.Counter
	tentativePromoted  *metrics.Counter
	tentativeRollbacks *metrics.Counter

	checkpointsFull  *metrics.Counter
	checkpointsDelta *metrics.Counter
	stateServed      *metrics.Counter
	stateInstalled   *metrics.Counter

	roServed  *metrics.Counter
	roDropped *metrics.Counter
}

// initMetrics registers the replica's protocol metrics and wires
// scrape-time gauges over the atomic mirrors. Registration happens
// once, before Start; nothing here runs on the event loop. Metric
// values are observation only — they are never part of checkpoint
// digests or any replicated state, so two replicas may disagree on
// them freely.
func (r *Replica) initMetrics() {
	reg := r.cfg.Metrics
	if reg == nil {
		return
	}
	lbl := metrics.L("replica", r.cfg.ID)
	m := &r.m
	m.batchesProposed = reg.Counter("peats_bft_batches_proposed_total",
		"Batch proposals issued while primary.", lbl)
	m.batchesExecuted = reg.Counter("peats_bft_batches_executed_total",
		"Committed batches applied to the service.", lbl)
	m.requestsExecuted = reg.Counter("peats_bft_requests_executed_total",
		"Client requests inside committed batches (including duplicates).", lbl)
	m.batchFill = reg.Histogram("peats_bft_batch_fill",
		"Requests per accepted batch.", metrics.SizeBuckets, lbl)
	m.batchDelay = reg.Histogram("peats_bft_batch_delay_seconds",
		"Queue time from first enqueued request to proposal, while primary.",
		metrics.DurationBuckets, lbl)
	m.viewChanges = reg.Counter("peats_bft_view_changes_total",
		"VIEW-CHANGE messages this replica initiated or joined.", lbl)
	m.viewsInstalled = reg.Counter("peats_bft_views_installed_total",
		"Views installed (NEW-VIEW processed or quorum-adopted).", lbl)
	m.tentativeExecuted = reg.Counter("peats_bft_tentative_executed_total",
		"Prepared batches executed tentatively, one round before commit.", lbl)
	m.tentativePromoted = reg.Counter("peats_bft_tentative_promoted_total",
		"Tentative units promoted to committed state.", lbl)
	m.tentativeRollbacks = reg.Counter("peats_bft_tentative_rollbacks_total",
		"Rollbacks discarding the unpromoted tentative overlay stack.", lbl)
	m.checkpointsFull = reg.Counter("peats_bft_checkpoints_full_total",
		"Full-snapshot checkpoints published.", lbl)
	m.checkpointsDelta = reg.Counter("peats_bft_checkpoints_delta_total",
		"Chained delta checkpoints published.", lbl)
	m.stateServed = reg.Counter("peats_bft_state_transfers_served_total",
		"State packs shipped to lagging peers.", lbl)
	m.stateInstalled = reg.Counter("peats_bft_state_transfers_installed_total",
		"Verified state packs installed over local state.", lbl)
	m.roServed = reg.Counter("peats_bft_readonly_served_total",
		"Read-only operations answered on the fast path.", lbl)
	m.roDropped = reg.Counter("peats_bft_readonly_dropped_total",
		"Read-only operations dropped at a full pool backlog (client falls back to ordered).", lbl)

	reg.GaugeFunc("peats_bft_view",
		"Current view number.",
		func() float64 { return float64(r.viewMirror.Load()) }, lbl)
	reg.GaugeFunc("peats_bft_executed_seq",
		"Highest committed sequence number executed.",
		func() float64 { return float64(r.executedMirror.Load()) }, lbl)
	reg.GaugeFunc("peats_bft_low_water_seq",
		"Last stable checkpoint sequence (log garbage-collection floor).",
		func() float64 { return float64(r.lowWaterMirror.Load()) }, lbl)
	reg.GaugeFunc("peats_bft_log_records",
		"Live protocol records (log entries, pending, assignments, queue, unverified).",
		func() float64 { return float64(r.recordsMirror.Load()) }, lbl)
	reg.GaugeFunc("peats_bft_tentative_depth",
		"Unpromoted tentative overlay units stacked above committed state.",
		func() float64 { return float64(r.tentDepthMirror.Load()) }, lbl)

	if me, ok := r.cfg.Service.(MetricsEnabler); ok {
		me.EnableMetrics(reg, lbl)
	}
}

// EnableMetrics implements MetricsEnabler: it instruments the tuple
// space, the durability engine (when present), and the partition 2PC
// state (when enabled, in either call order) under the given labels.
func (s *SpaceService) EnableMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	s.metricsReg = reg
	s.metricsLabels = append([]metrics.Label(nil), labels...)
	s.inner.EnableMetrics(reg, labels...)
	if s.db != nil {
		s.db.EnableMetrics(reg, labels...)
	}
	if s.ptx != nil {
		s.ptx.enableMetrics(reg, labels...)
	}
}
