package bft

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"peats/internal/durable"
	"peats/internal/policy"
	"peats/internal/transport"
	"peats/internal/tuple"
	"peats/internal/wire"
)

// durableCluster builds an in-proc cluster whose replicas all persist
// to per-replica temp data directories.
func durableCluster(t *testing.T, f, shards int, dbOpts func(*durable.Options), opts ...ClusterOption) (*Cluster, []*durable.DB, []string) {
	t.Helper()
	n := 3*f + 1
	dirs := make([]string, n)
	dbs := make([]*durable.DB, n)
	services := make([]Service, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("r%d", i))
		o := durable.Options{Dir: dirs[i], AutoCompactBytes: -1}
		if dbOpts != nil {
			dbOpts(&o)
		}
		db, err := durable.Open(o)
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
		svc, err := NewDurableSpaceService(policy.AllowAll(), db, shards)
		if err != nil {
			t.Fatal(err)
		}
		services[i] = svc
	}
	cl, err := NewCluster(f, services, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl, dbs, dirs
}

// reopenReplica recovers a data directory into a fresh (stopped)
// replica, the way a restarted peats-server would.
func reopenReplica(t *testing.T, dir, id string, ids []string, f, shards int) (*Replica, *SpaceService, *durable.DB) {
	t.Helper()
	db, err := durable.Open(durable.Options{Dir: dir, AutoCompactBytes: -1})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	svc, err := NewDurableSpaceService(policy.AllowAll(), db, shards)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ReplicaConfig{
		ID: id, Replicas: ids, F: f,
		Transport: transport.NewNetwork(99).Endpoint(id),
		Service:   svc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, svc, db
}

// TestDurableReplicaKilledMidLoadRecoversToStableCheckpointDigest is
// the crash-recovery acceptance property: a replica whose durability
// engine dies mid-load (the in-process stand-in for SIGKILL — group
// commit loses its unsynced window) recovers from its data directory
// alone to a state whose full snapshot digest equals a checkpoint
// digest the healthy replicas published for that sequence number.
func TestDurableReplicaKilledMidLoadRecoversToStableCheckpointDigest(t *testing.T) {
	// Every sequence number is a full checkpoint, so every recovery
	// point has a published digest to compare against.
	cl, dbs, dirs := durableCluster(t, 1, 2, nil,
		WithCheckpointInterval(1), WithCompactEvery(1), WithCheckpointHistory())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("alice"))
	for i := int64(0); i < 60; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("K"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if _, _, err := ts.Inp(ctx, tuple.T(tuple.Str("K"), tuple.Int(i-2))); err != nil {
				t.Fatal(err)
			}
		}
		if i == 30 {
			dbs[3].Crash() // SIGKILL r3's disk mid-load; the replica itself keeps running
		}
	}
	cl.Stop()
	digests := cl.Replicas[0].CheckpointDigests()
	if len(digests) == 0 {
		t.Fatal("healthy replica recorded no checkpoints")
	}

	rep, _, db := reopenReplica(t, dirs[3], "r3", cl.IDs, 1, 2)
	defer db.Close()
	k := rep.Executed()
	if k == 0 {
		t.Fatal("r3 recovered nothing despite 30+ committed operations")
	}
	want, ok := digests[k]
	if !ok {
		t.Fatalf("no healthy checkpoint digest at recovered seq %d", k)
	}
	if got := rep.StateDigest(); got != want {
		t.Fatalf("recovered state digest at seq %d diverges from the stable checkpoint", k)
	}
}

// TestDurableClusterRestartServesAndBoundsDisk stops a durable cluster
// cleanly, reopens every data directory, and checks (a) all replicas
// recovered to the same state digest at the same sequence, (b) a fresh
// cluster over the recovered services serves reads of the old data and
// accepts new writes, and (c) compaction kept every data directory's
// segment count and size bounded during the sustained load.
func TestDurableClusterRestartServesAndBoundsDisk(t *testing.T) {
	cl, dbs, dirs := durableCluster(t, 1, 2,
		func(o *durable.Options) { o.SegmentBytes = 1 << 12 },
		WithCheckpointInterval(4), WithCompactEvery(2))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("alice"))
	const ops = 200
	for i := int64(0); i < ops; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("D"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, _, err := ts.Inp(ctx, tuple.T(tuple.Str("D"), tuple.Int(i-1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Replicas execute asynchronously: let everyone reach the last
	// committed unit before stopping, so the recovered positions are
	// comparable.
	converged := func() bool {
		want := cl.Replicas[0].Executed()
		for _, r := range cl.Replicas {
			if r.Executed() != want {
				return false
			}
		}
		return true
	}
	for deadline := time.Now().Add(20 * time.Second); !converged(); {
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged on executed seq")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Compaction at full checkpoints must have pruned dead segments:
	// 200 mutations at 4KiB segments without pruning would pile up
	// many, while the live set is ~100 small tuples.
	for i, db := range dbs {
		segs, bytes, err := db.DiskUsage()
		if err != nil {
			t.Fatal(err)
		}
		if segs > 3 || bytes > 64<<10 {
			t.Fatalf("replica %d disk unbounded: %d segments, %d bytes", i, segs, bytes)
		}
	}
	cl.Stop()

	// Reopen all four directories: everyone must land on one digest.
	services := make([]Service, 4)
	var wantDigest [32]byte
	var wantSeq uint64
	for i := 0; i < 4; i++ {
		rep, svc, db := reopenReplica(t, dirs[i], fmt.Sprintf("r%d", i), cl.IDs, 1, 2)
		defer db.Close()
		if i == 0 {
			wantDigest, wantSeq = rep.StateDigest(), rep.Executed()
		} else {
			if rep.Executed() != wantSeq {
				t.Fatalf("replica %d recovered seq %d, others %d", i, rep.Executed(), wantSeq)
			}
			if rep.StateDigest() != wantDigest {
				t.Fatalf("replica %d recovered a diverging state digest", i)
			}
		}
		services[i] = svc
	}
	if wantSeq == 0 {
		t.Fatal("clean shutdown recovered nothing")
	}

	cl2, err := NewCluster(1, services)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Stop()
	ts2 := NewRemoteSpace(cl2.Client("bob")) // fresh identity: at-most-once state survived for "alice"
	got, ok, err := ts2.Rdp(ctx, tuple.T(tuple.Str("D"), tuple.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("read of pre-restart data: ok=%v err=%v", ok, err)
	}
	// Odd values survive the Inp churn; the first in insertion order is 1.
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Fatalf("recovered first match %v, want value 1", got)
	}
	if err := ts2.Out(ctx, tuple.T(tuple.Str("post"), tuple.Int(1))); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	if _, ok, err := ts2.Rdp(ctx, tuple.T(tuple.Str("post"), tuple.Any())); err != nil || !ok {
		t.Fatalf("read-back after restart: ok=%v err=%v", ok, err)
	}
}

// TestDeltaCheckpointsEquivalentToFullRestores pins the incremental
// checkpoint's core equivalence: applying the journal deltas one
// checkpoint at a time reproduces, byte for byte, the full snapshot of
// the producing service — across different engines and shard counts,
// since deltas are value-addressed.
func TestDeltaCheckpointsEquivalentToFullRestores(t *testing.T) {
	producer, err := NewSpaceServiceWithConfig(policy.AllowAll(), "indexed", 1)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := NewSpaceServiceWithConfig(policy.AllowAll(), "slice", 4)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSpaceService(policy.AllowAll())

	rng := rand.New(rand.NewSource(7))
	entry := func() tuple.Tuple {
		return tuple.T(tuple.Str(string(rune('A'+rng.Intn(3)))), tuple.Int(int64(rng.Intn(5))))
	}
	for step := 0; step < 400; step++ {
		var op wire.SpaceOp
		switch rng.Intn(3) {
		case 0:
			op = wire.SpaceOp{Op: policy.OpOut, Entry: entry()}
		case 1:
			op = wire.SpaceOp{Op: policy.OpInp, Template: entry()}
		default:
			op = wire.SpaceOp{Op: policy.OpCas, Template: entry(), Entry: entry()}
		}
		producer.Execute("c", wire.EncodeSpaceOp(op))
		if step%20 != 19 {
			continue
		}
		delta, ok := producer.CheckpointDelta()
		if !ok {
			t.Fatalf("step %d: journal unexpectedly broken", step)
		}
		if err := follower.ApplyDelta(delta); err != nil {
			t.Fatalf("step %d: apply delta: %v", step, err)
		}
		full := producer.Snapshot()
		if !bytes.Equal(full, follower.Snapshot()) {
			t.Fatalf("step %d: delta-following state diverged from producer", step)
		}
		if err := restored.Restore(full); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full, restored.Snapshot()) {
			t.Fatalf("step %d: full restore diverged", step)
		}
	}
}

// TestChainStateTransferCatchesUpLaggard pins the base-plus-deltas
// state transfer: a replica partitioned across several delta
// checkpoints (no full checkpoint in between would be available at the
// delta sequences) heals and catches up to the cluster's state.
func TestChainStateTransferCatchesUpLaggard(t *testing.T) {
	cl, _, _ := durableCluster(t, 1, 2, nil,
		WithCheckpointInterval(4), WithCompactEvery(8), // full only every 32 seqs
		WithViewChangeTimeout(time.Hour))
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ts := NewRemoteSpace(cl.Client("c"))
	cl.Net.Partition([]string{"r3"})
	for i := int64(0); i < 20; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("N"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Net.HealPartitions()
	for i := int64(20); i < 40; i++ {
		if err := ts.Out(ctx, tuple.T(tuple.Str("N"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	r3 := cl.Replicas[3]
	for time.Now().Before(deadline) {
		if r3.Executed() >= 36 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("r3 never caught up through chain state transfer: executed=%d", r3.Executed())
}
