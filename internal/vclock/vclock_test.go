package vclock

import (
	"testing"
	"time"
)

func TestRealTimerStartsStopped(t *testing.T) {
	tm := Real().NewTimer(nil)
	select {
	case <-tm.C():
		t.Fatal("new timer fired without Reset")
	case <-time.After(20 * time.Millisecond):
	}
	tm.Reset(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("reset timer did not fire")
	}
}

func TestRealTickerFires(t *testing.T) {
	tk := Real().NewTicker(time.Millisecond, nil)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("ticker did not fire")
	}
}

func TestRealNow(t *testing.T) {
	before := time.Now()
	now := Real().Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real().Now() = %v, too far before %v", now, before)
	}
}
