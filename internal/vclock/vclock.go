// Package vclock abstracts wall-clock time behind an injectable interface so
// the BFT replica, clients, and pollers can run either on real time (production)
// or on a virtual, single-threaded event loop (internal/sim).
//
// The contract has two delivery modes. A real Timer/Ticker delivers fires on
// its C() channel, exactly like time.Timer/time.Ticker, and ignores the fire
// callback. A virtual implementation returns a nil C() channel (which blocks
// forever in a select) and instead invokes the fire callback synchronously on
// the event-loop thread. Code that owns a run loop selects on C() and also
// exposes the same handling via the callback, so it works in both modes.
package vclock

import "time"

// Clock creates timers and tickers and reports the current time.
type Clock interface {
	// Now returns the current time (virtual time under simulation).
	Now() time.Time
	// NewTimer returns a stopped timer. fire is invoked by virtual clocks
	// when the timer expires; real clocks deliver on C() instead and ignore
	// fire. fire may be nil if the caller only ever selects on C().
	NewTimer(fire func()) Timer
	// NewTicker returns a ticker firing every d. Same fire contract as NewTimer.
	NewTicker(d time.Duration, fire func()) Ticker
}

// Timer is a resettable one-shot timer.
type Timer interface {
	// C returns the fire channel, or nil for virtual timers (nil blocks in select).
	C() <-chan time.Time
	// Reset arms the timer to fire after d, replacing any pending fire.
	Reset(d time.Duration)
	// Stop disarms the timer. It reports whether a fire was pending. For real
	// timers the caller must drain C() when Stop returns false and the fire
	// has not been consumed (the usual time.Timer dance); virtual timers never
	// need draining.
	Stop() bool
}

// Ticker is a repeating timer.
type Ticker interface {
	C() <-chan time.Time
	Reset(d time.Duration)
	Stop()
}

// Real returns a Clock backed by the time package.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTimer(func()) Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &realTimer{t: t}
}

func (realClock) NewTicker(d time.Duration, _ func()) Ticker {
	return &realTicker{t: time.NewTicker(d)}
}

type realTimer struct{ t *time.Timer }

func (r *realTimer) C() <-chan time.Time  { return r.t.C }
func (r *realTimer) Reset(d time.Duration) { r.t.Reset(d) }
func (r *realTimer) Stop() bool            { return r.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (r *realTicker) C() <-chan time.Time  { return r.t.C }
func (r *realTicker) Reset(d time.Duration) { r.t.Reset(d) }
func (r *realTicker) Stop()                 { r.t.Stop() }
