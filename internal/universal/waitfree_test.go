package universal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func wfProcs(n int) []policy.ProcessID {
	ps := make([]policy.ProcessID, n)
	for i := range ps {
		ps[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
	}
	return ps
}

func TestWaitFreeSingleProcess(t *testing.T) {
	procs := wfProcs(3)
	s := peats.New(WaitFreePolicy(procs))
	u, err := NewWaitFree(s.Handle("p0"), CounterType{}, "p0", procs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 5; i++ {
		r, err := u.Invoke(ctx, CounterInc())
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := ReplyValue(r); v != i {
			t.Errorf("inc #%d = %d", i, v)
		}
	}
	// Announcements are withdrawn after each invocation.
	if n := s.Inner().CountMatching(tuple.T(tuple.Str("ANN"), tuple.Any(), tuple.Any())); n != 0 {
		t.Errorf("%d dangling announcements", n)
	}
}

func TestWaitFreeRejectsUnknownProcess(t *testing.T) {
	procs := wfProcs(3)
	s := peats.New(WaitFreePolicy(procs))
	if _, err := NewWaitFree(s.Handle("stranger"), CounterType{}, "stranger", procs); err == nil {
		t.Error("unknown process accepted")
	}
}

func TestWaitFreeTotalOrder(t *testing.T) {
	const procs, perProc = 6, 8
	ids := wfProcs(procs)
	s := peats.New(WaitFreePolicy(ids))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	seen := make(map[int64]int)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			u, err := NewWaitFree(s.Handle(ids[p]), CounterType{}, ids[p], ids)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perProc; i++ {
				r, err := u.Invoke(ctx, CounterInc())
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				v, ok := ReplyValue(r)
				if !ok {
					t.Errorf("p%d: bad reply", p)
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	if len(seen) != procs*perProc {
		t.Fatalf("saw %d distinct values, want %d", len(seen), procs*perProc)
	}
	for v := int64(0); v < procs*perProc; v++ {
		if seen[v] != 1 {
			t.Errorf("value %d seen %d times", v, seen[v])
		}
	}
}

func TestWaitFreeHelpingDefeatsStarvation(t *testing.T) {
	// A slow process competes with a flood of fast invocations. With the
	// helping mechanism its single invocation must complete while the
	// fast processes keep threading — bounded steps (Lemma 5: at most a
	// full rotation of positions).
	ids := wfProcs(3)
	s := peats.New(WaitFreePolicy(ids))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var floodWg sync.WaitGroup
	floodWg.Add(1)
	go func() {
		defer floodWg.Done()
		u, err := NewWaitFree(s.Handle(ids[1]), CounterType{}, ids[1], ids)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := u.Invoke(ctx, CounterInc()); err != nil {
				return
			}
		}
	}()

	slow, err := NewWaitFree(s.Handle(ids[0]), CounterType{}, ids[0], ids)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Invoke(ctx, CounterInc()); err != nil {
		t.Fatalf("slow process starved: %v", err)
	}
	close(stop)
	floodWg.Wait()
}

func TestWaitFreePolicyEnforcesHelping(t *testing.T) {
	ids := wfProcs(2) // positions alternate p1 (pos 1), p0 (pos 2), ...
	s := peats.New(WaitFreePolicy(ids))
	ctx := context.Background()
	h0, h1 := s.Handle(ids[0]), s.Handle(ids[1])

	// p1 announces an invocation.
	ann := wrapUnique(1, 1, CounterInc())
	if err := h1.Out(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(1), tuple.Bytes(ann))); err != nil {
		t.Fatal(err)
	}
	// Position 1's preferred process is 1 (1 mod 2). p0 may not thread
	// its own invocation there while p1's is announced and unthreaded.
	mine := wrapUnique(0, 1, CounterInc())
	_, _, err := h0.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes(mine)))
	if !errors.Is(err, peats.ErrDenied) {
		t.Fatalf("selfish cas err = %v, want denial (helping violated)", err)
	}
	// But p0 may thread p1's announced invocation (condition 3).
	ins, _, err := h0.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes(ann)))
	if err != nil || !ins {
		t.Fatalf("helping cas: ins=%v err=%v", ins, err)
	}
	// Once threaded, position 3 (preferred 1 again) is free for p0
	// because p1's announcement is already threaded (condition 2) —
	// first fill position 2.
	ins, _, err = h0.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(2), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(2), tuple.Bytes(mine)))
	if err != nil || !ins {
		t.Fatalf("pos 2 cas: ins=%v err=%v", ins, err)
	}
	mine2 := wrapUnique(0, 2, CounterInc())
	ins, _, err = h0.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(3), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(3), tuple.Bytes(mine2)))
	if err != nil || !ins {
		t.Fatalf("pos 3 cas after threading: ins=%v err=%v", ins, err)
	}
}

func TestWaitFreePolicyAnnouncementRules(t *testing.T) {
	ids := wfProcs(2)
	s := peats.New(WaitFreePolicy(ids))
	ctx := context.Background()
	h0, h1 := s.Handle(ids[0]), s.Handle(ids[1])

	// Cannot announce under another index.
	err := h0.Out(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(1), tuple.Bytes([]byte{1})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("forged announcement err = %v, want denial", err)
	}
	// Valid announcement.
	if err := h0.Out(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(0), tuple.Bytes([]byte{1}))); err != nil {
		t.Fatal(err)
	}
	// No second concurrent announcement.
	err = h0.Out(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(0), tuple.Bytes([]byte{2})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("second announcement err = %v, want denial", err)
	}
	// Another process cannot withdraw it.
	_, _, err = h1.Inp(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(0), tuple.Any()))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("foreign inp err = %v, want denial", err)
	}
	// The owner can.
	if _, ok, err := h0.Inp(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(0), tuple.Any())); err != nil || !ok {
		t.Errorf("own inp: ok=%v err=%v", ok, err)
	}
	// Outsiders can do nothing.
	err = s.Handle("evil").Out(ctx, tuple.T(tuple.Str("ANN"), tuple.Int(0), tuple.Bytes([]byte{3})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("outsider announcement err = %v, want denial", err)
	}
}

func TestWaitFreeReplicasConvergeWithQueue(t *testing.T) {
	ids := wfProcs(3)
	s := peats.New(WaitFreePolicy(ids))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			u, err := NewWaitFree(s.Handle(ids[p]), QueueType{}, ids[p], ids)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 5; i++ {
				if _, err := u.Invoke(ctx, Enqueue(int64(p*10+i))); err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	// A late consumer drains the queue: 15 elements, each process's
	// values in its own program order (FIFO of a linearizable queue).
	u, err := NewWaitFree(s.Handle(ids[0]), QueueType{}, ids[0], ids)
	if err != nil {
		t.Fatal(err)
	}
	lastOf := map[int64]int64{0: -1, 1: -1, 2: -1}
	for i := 0; i < 15; i++ {
		r, err := u.Invoke(ctx, Dequeue())
		if err != nil {
			t.Fatal(err)
		}
		v, ok := ReplyValue(r)
		if !ok {
			t.Fatalf("dequeue #%d: bad reply", i)
		}
		p, off := v/10, v%10
		if off <= lastOf[p] {
			t.Errorf("process %d values out of order: %d after %d", p, off, lastOf[p])
		}
		lastOf[p] = off
	}
	r, err := u.Invoke(ctx, Dequeue())
	if err != nil {
		t.Fatal(err)
	}
	if !ReplyEmpty(r) {
		t.Error("queue should be empty after 15 dequeues")
	}
}

func TestWaitFreeStepsBounded(t *testing.T) {
	// With no contention, an invocation threads in O(1) positions.
	ids := wfProcs(4)
	s := peats.New(WaitFreePolicy(ids))
	u, err := NewWaitFree(s.Handle(ids[0]), CounterType{}, ids[0], ids)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Invoke(context.Background(), CounterInc()); err != nil {
		t.Fatal(err)
	}
	if u.Steps() > int64(len(ids)) {
		t.Errorf("uncontended invoke took %d steps, want ≤ n", u.Steps())
	}
}

func TestUniqueWrapRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3}
	w := wrapUnique(3, 17, payload)
	got, ok := unwrapUnique(w)
	if !ok || string(got) != string(payload) {
		t.Errorf("unwrap = % x, %v", got, ok)
	}
	// Distinct (index, counter) give distinct wrappers.
	if string(wrapUnique(1, 1, payload)) == string(wrapUnique(1, 2, payload)) {
		t.Error("wrappers not unique across counters")
	}
	if string(wrapUnique(1, 1, payload)) == string(wrapUnique(2, 1, payload)) {
		t.Error("wrappers not unique across processes")
	}
	if _, ok := unwrapUnique(nil); ok {
		t.Error("unwrap of empty should fail")
	}
}

func TestWaitFreeEmulatesStickyBit(t *testing.T) {
	// The universal construction emulates the ACL model's own universal
	// object: a sticky bit shared by Byzantine processes. First set
	// wins across processes; conflicting sets fail.
	ids := wfProcs(3)
	s := peats.New(WaitFreePolicy(ids))
	ctx := context.Background()

	mk := func(i int) *WaitFree {
		u, err := NewWaitFree(s.Handle(ids[i]), StickyBitType{}, ids[i], ids)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk(0), mk(1)
	r, err := a.Invoke(ctx, StickySet(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ReplyBool(r); !ok {
		t.Fatal("first set failed")
	}
	r, err = b.Invoke(ctx, StickySet(0))
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := ReplyBool(r); ok {
		t.Error("conflicting set succeeded — emulated bit is not sticky")
	}
	r, err = b.Invoke(ctx, StickyRead())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ReplyValue(r); v != 1 {
		t.Errorf("emulated bit reads %d, want 1", v)
	}
}
