package universal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRegister(t *testing.T) {
	r := RegisterType{}.New()
	if v, ok := ReplyValue(r.Apply(RegRead())); !ok || v != 0 {
		t.Errorf("initial read = %d %v", v, ok)
	}
	if !ReplyOK(r.Apply(RegWrite(42))) {
		t.Error("write not acknowledged")
	}
	if v, _ := ReplyValue(r.Apply(RegRead())); v != 42 {
		t.Errorf("read after write = %d", v)
	}
	if !IsErrReply(r.Apply([]byte{0xff})) {
		t.Error("garbage invocation not rejected")
	}
	if !IsErrReply(r.Apply(nil)) {
		t.Error("empty invocation not rejected")
	}
}

func TestStickyBit(t *testing.T) {
	s := StickyBitType{}.New()
	if v, _ := ReplyValue(s.Apply(StickyRead())); v != -1 {
		t.Errorf("initial sticky read = %d, want -1 (unset)", v)
	}
	if ok, valid := ReplyBool(s.Apply(StickySet(1))); !valid || !ok {
		t.Error("first set failed")
	}
	// Setting the same value again succeeds; the opposite fails.
	if ok, _ := ReplyBool(s.Apply(StickySet(1))); !ok {
		t.Error("idempotent set failed")
	}
	if ok, _ := ReplyBool(s.Apply(StickySet(0))); ok {
		t.Error("conflicting set succeeded — bit is not sticky")
	}
	if v, _ := ReplyValue(s.Apply(StickyRead())); v != 1 {
		t.Errorf("sticky value = %d, want 1", v)
	}
	if !IsErrReply(s.Apply(StickySet(7))) {
		t.Error("non-binary set not rejected")
	}
}

func TestCounter(t *testing.T) {
	c := CounterType{}.New()
	for i := int64(0); i < 5; i++ {
		if v, ok := ReplyValue(c.Apply(CounterInc())); !ok || v != i {
			t.Errorf("inc #%d returned %d", i, v)
		}
	}
	if v, _ := ReplyValue(c.Apply(CounterRead())); v != 5 {
		t.Errorf("read = %d, want 5", v)
	}
	if !IsErrReply(c.Apply([]byte{opEnq, 1})) {
		t.Error("foreign invocation not rejected")
	}
}

func TestQueue(t *testing.T) {
	q := QueueType{}.New()
	if !ReplyEmpty(q.Apply(Dequeue())) {
		t.Error("dequeue on empty queue should reply empty")
	}
	for i := int64(1); i <= 3; i++ {
		if !ReplyOK(q.Apply(Enqueue(i * 10))) {
			t.Errorf("enqueue %d failed", i)
		}
	}
	for i := int64(1); i <= 3; i++ {
		v, ok := ReplyValue(q.Apply(Dequeue()))
		if !ok || v != i*10 {
			t.Errorf("dequeue #%d = %d, want %d (FIFO)", i, v, i*10)
		}
	}
	if !ReplyEmpty(q.Apply(Dequeue())) {
		t.Error("drained queue should reply empty")
	}
}

func TestCASRegister(t *testing.T) {
	c := CASRegisterType{}.New()
	if ok, _ := ReplyBool(c.Apply(CSwap(0, 5))); !ok {
		t.Error("cswap from initial value failed")
	}
	if ok, _ := ReplyBool(c.Apply(CSwap(0, 9))); ok {
		t.Error("cswap with stale expected value succeeded")
	}
	if v, _ := ReplyValue(c.Apply(CASRead())); v != 5 {
		t.Errorf("value = %d, want 5", v)
	}
	if !IsErrReply(c.Apply([]byte{opCSwap})) {
		t.Error("truncated cswap not rejected")
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Equal invocation sequences produce equal replies on fresh objects —
	// the applyT determinism the constructions depend on.
	f := func(writes []int64) bool {
		a, b := RegisterType{}.New(), RegisterType{}.New()
		for _, w := range writes {
			ra := a.Apply(RegWrite(w))
			rb := b.Apply(RegWrite(w))
			if !bytes.Equal(ra, rb) {
				return false
			}
		}
		return bytes.Equal(a.Apply(RegRead()), b.Apply(RegRead()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGarbageInvocationsNeverPanic(t *testing.T) {
	types := []Type{RegisterType{}, StickyBitType{}, CounterType{}, QueueType{}, CASRegisterType{}}
	f := func(raw []byte) bool {
		for _, typ := range types {
			obj := typ.New()
			_ = obj.Apply(raw) // must not panic
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeNames(t *testing.T) {
	names := map[string]Type{
		"register": RegisterType{}, "stickybit": StickyBitType{},
		"counter": CounterType{}, "queue": QueueType{}, "casregister": CASRegisterType{},
	}
	for want, typ := range names {
		if typ.Name() != want {
			t.Errorf("Name() = %q, want %q", typ.Name(), want)
		}
	}
}
