package universal

import (
	"context"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

const (
	tagSeq = "SEQ"
	tagAnn = "ANN"
)

// LockFree is the paper's Algorithm 3: a uniform lock-free universal
// construction. Every invocation on the emulated object is threaded
// into a totally ordered list of <SEQ, pos, inv> tuples; each process
// replays the list against its local copy of the state.
//
// The construction is uniform: processes need not know each other, so
// it works for an unknown and dynamic set of processes. It is lock-free
// but not wait-free — a process can starve if others keep winning the
// cas race (see WaitFree for the helping construction).
//
// A LockFree instance is one process's handle on the emulated object;
// it is not safe for concurrent use by multiple goroutines (the model's
// well-formedness assumption: one pending invocation per process).
type LockFree struct {
	ts    peats.TupleSpace
	obj   Object
	pos   int64
	steps int64 // cas attempts by the last Invoke, for benches
}

// NewLockFree returns a process-local replica of an emulated object of
// the given type over ts, which should be protected by LockFreePolicy.
func NewLockFree(ts peats.TupleSpace, typ Type) *LockFree {
	return &LockFree{ts: ts, obj: typ.New()}
}

// Steps returns the number of cas attempts made by the last Invoke.
func (u *LockFree) Steps() int64 { return u.steps }

// Invoke executes inv on the emulated object and returns its reply.
// All correct processes observe the same total order of invocations
// (Lemma 1 + Theorem 6: the construction is linearizable).
func (u *LockFree) Invoke(ctx context.Context, inv []byte) ([]byte, error) {
	u.steps = 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lock-free universal: %w", err)
		}
		u.pos++
		u.steps++
		inserted, matched, err := u.ts.Cas(ctx,
			tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos), tuple.Formal("einv")),
			tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos), tuple.Bytes(inv)))
		if err != nil {
			return nil, fmt.Errorf("lock-free universal: thread: %w", err)
		}
		if inserted {
			return u.obj.Apply(inv), nil
		}
		einv, ok := matched.Field(2).BytesValue()
		if !ok {
			return nil, fmt.Errorf("lock-free universal: malformed SEQ tuple %v", matched)
		}
		u.obj.Apply(einv)
	}
}

// Sync replays all operations threaded since the last Invoke or Sync
// without threading anything, bringing the local replica of the state
// up to date. Read-only observers use it to refresh their view without
// consuming a list position. The Fig. 7 policy does not admit rdp, so
// Sync works over a space protected by the Fig. 8 (wait-free) policy or
// any policy that allows reads; over a Fig. 7 space use Invoke, whose
// failed cas calls replay implicitly.
func (u *LockFree) Sync(ctx context.Context) error {
	for {
		t, ok, err := u.ts.Rdp(ctx, tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos+1), tuple.Formal("inv")))
		if err != nil {
			return fmt.Errorf("lock-free universal: sync: %w", err)
		}
		if !ok {
			return nil
		}
		u.pos++
		if inv, isBytes := t.Field(2).BytesValue(); isBytes {
			u.obj.Apply(inv)
		}
	}
}

// LockFreePolicy is the access policy of Fig. 7: only cas is allowed,
// the template must be <SEQ, pos, x> with formal x, the entry must be
// <SEQ, pos, inv> for the same pos, and position pos may only be filled
// when position pos−1 already is (pos = 1 opens the list). These rules
// enforce the Lemma 1 invariants: at most one tuple per position and no
// gaps, i.e. a consistent totally ordered operation list even against
// Byzantine processes.
func LockFreePolicy() policy.Policy {
	return policy.New(policy.Rule{
		Name: "Rcas",
		Op:   policy.OpCas,
		When: policy.And(
			policy.TemplateArity(3),
			policy.TemplateField(0, tuple.Str(tagSeq)),
			policy.TemplateFieldFormal(2),
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str(tagSeq)),
			policy.Check(samePosAndContiguous),
		),
	})
}

// samePosAndContiguous checks pos(template) == pos(entry) ≥ 1 and the
// contiguity condition pos = 1 ∨ ∃y: <SEQ, pos−1, y> ∈ TS.
func samePosAndContiguous(inv policy.Invocation, st policy.StateView) bool {
	tp, ok1 := inv.Template.Field(1).IntValue()
	ep, ok2 := inv.Entry.Field(1).IntValue()
	if !ok1 || !ok2 || tp != ep || ep < 1 {
		return false
	}
	if _, isBytes := inv.Entry.Field(2).BytesValue(); !isBytes {
		return false
	}
	if ep == 1 {
		return true
	}
	_, prev := st.Rdp(tuple.T(tuple.Str(tagSeq), tuple.Int(ep-1), tuple.Any()))
	return prev
}
