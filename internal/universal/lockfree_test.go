package universal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestLockFreeSingleProcessCounter(t *testing.T) {
	s := peats.New(LockFreePolicy())
	u := NewLockFree(s.Handle("p1"), CounterType{})
	ctx := context.Background()
	for i := int64(0); i < 10; i++ {
		r, err := u.Invoke(ctx, CounterInc())
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := ReplyValue(r); v != i {
			t.Errorf("inc #%d = %d", i, v)
		}
	}
}

func TestLockFreeTotalOrderAcrossProcesses(t *testing.T) {
	// N processes each fetch-and-increment the shared counter K times.
	// Linearizability of the emulation means the N*K replies are exactly
	// the values 0..N*K-1, each exactly once.
	const procs, perProc = 8, 10
	s := peats.New(LockFreePolicy())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	seen := make(map[int64]int)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := policy.ProcessID(fmt.Sprintf("p%d", p))
			u := NewLockFree(s.Handle(id), CounterType{})
			for i := 0; i < perProc; i++ {
				r, err := u.Invoke(ctx, CounterInc())
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				v, ok := ReplyValue(r)
				if !ok {
					t.Errorf("p%d: bad reply", p)
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	if len(seen) != procs*perProc {
		t.Fatalf("saw %d distinct counter values, want %d", len(seen), procs*perProc)
	}
	for v := int64(0); v < procs*perProc; v++ {
		if seen[v] != 1 {
			t.Errorf("value %d returned %d times, want exactly once", v, seen[v])
		}
	}
}

func TestLockFreeReplicasConverge(t *testing.T) {
	// Two processes interleave register writes; afterwards both replicas
	// report the same final value (they replayed the same list).
	s := peats.New(LockFreePolicy())
	ctx := context.Background()
	a := NewLockFree(s.Handle("a"), RegisterType{})
	b := NewLockFree(s.Handle("b"), RegisterType{})

	if _, err := a.Invoke(ctx, RegWrite(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(ctx, RegWrite(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Invoke(ctx, RegWrite(3)); err != nil {
		t.Fatal(err)
	}

	ra, err := a.Invoke(ctx, RegRead())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Invoke(ctx, RegRead())
	if err != nil {
		t.Fatal(err)
	}
	va, _ := ReplyValue(ra)
	vb, _ := ReplyValue(rb)
	// b's read is threaded after a's read; both reads see write 3 (the
	// last write) since reads do not modify the register.
	if va != 3 || vb != 3 {
		t.Errorf("replicas diverged: a=%d b=%d, want 3", va, vb)
	}
}

func TestLockFreeListInvariants(t *testing.T) {
	// Lemma 1: at most one tuple per position, and positions contiguous
	// from 1.
	const procs, perProc = 6, 5
	s := peats.New(LockFreePolicy())
	ctx := context.Background()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			u := NewLockFree(s.Handle(policy.ProcessID(fmt.Sprintf("p%d", p))), QueueType{})
			for i := 0; i < perProc; i++ {
				if _, err := u.Invoke(ctx, Enqueue(int64(p*100+i))); err != nil {
					t.Errorf("p%d: %v", p, err)
				}
			}
		}(p)
	}
	wg.Wait()

	total := s.Inner().Len()
	if total != procs*perProc {
		t.Fatalf("%d SEQ tuples, want %d", total, procs*perProc)
	}
	for pos := 1; pos <= total; pos++ {
		n := s.Inner().CountMatching(tuple.T(tuple.Str("SEQ"), tuple.Int(int64(pos)), tuple.Any()))
		if n != 1 {
			t.Errorf("position %d holds %d tuples, want exactly 1", pos, n)
		}
	}
}

func TestLockFreePolicyRejectsByzantineThreading(t *testing.T) {
	s := peats.New(LockFreePolicy())
	evil := s.Handle("byz")
	ctx := context.Background()

	// Gap: threading position 5 with an empty list.
	_, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(5), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(5), tuple.Bytes([]byte{1})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("gap cas err = %v, want denial", err)
	}
	// Mismatched template/entry positions.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(2), tuple.Bytes([]byte{1})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("mismatched pos err = %v, want denial", err)
	}
	// Non-formal template (could overwrite-by-duplicate).
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes([]byte{2})),
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes([]byte{1})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("non-formal cas err = %v, want denial", err)
	}
	// Position 0 or negative.
	_, _, err = evil.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(0), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(0), tuple.Bytes([]byte{1})))
	if !errors.Is(err, peats.ErrDenied) {
		t.Errorf("pos 0 err = %v, want denial", err)
	}
	// out/in/inp/rd/rdp are not in the Fig. 7 policy at all.
	if err := evil.Out(ctx, tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes([]byte{1}))); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("out err = %v, want denial", err)
	}
	if _, _, err := evil.Inp(ctx, tuple.T(tuple.Str("SEQ"), tuple.Any(), tuple.Any())); !errors.Is(err, peats.ErrDenied) {
		t.Errorf("inp err = %v, want denial", err)
	}
	// A Byzantine process CAN thread garbage invocations in order — the
	// policy cannot read minds — but correct replicas skip/err them
	// deterministically.
	ins, _, err := evil.Cas(ctx,
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Formal("x")),
		tuple.T(tuple.Str("SEQ"), tuple.Int(1), tuple.Bytes([]byte{0xde, 0xad})))
	if err != nil || !ins {
		t.Fatalf("in-order garbage cas: ins=%v err=%v", ins, err)
	}
	u := NewLockFree(s.Handle("good"), CounterType{})
	r, err := u.Invoke(ctx, CounterInc())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ReplyValue(r); v != 0 {
		t.Errorf("counter affected by garbage: %d", v)
	}
}

func TestLockFreeUniform(t *testing.T) {
	// Uniformity: late joiners with no knowledge of the others catch up
	// purely from the list.
	s := peats.New(LockFreePolicy())
	ctx := context.Background()
	a := NewLockFree(s.Handle("a"), QueueType{})
	for i := int64(1); i <= 4; i++ {
		if _, err := a.Invoke(ctx, Enqueue(i)); err != nil {
			t.Fatal(err)
		}
	}
	late := NewLockFree(s.Handle("late-joiner"), QueueType{})
	r, err := late.Invoke(ctx, Dequeue())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ReplyValue(r); v != 1 {
		t.Errorf("late joiner dequeued %d, want 1", v)
	}
}

func TestLockFreeContextCancellation(t *testing.T) {
	s := peats.New(LockFreePolicy())
	u := NewLockFree(s.Handle("p"), CounterType{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := u.Invoke(ctx, CounterInc()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestLockFreeSync(t *testing.T) {
	// Sync needs a policy admitting rdp; the wait-free policy extends
	// the lock-free rules with reads, so the list semantics are the same.
	ids := wfProcs(2)
	s := peats.New(WaitFreePolicy(ids))
	ctx := context.Background()

	writer := NewLockFree(s.Handle(ids[0]), CounterType{})
	for i := 0; i < 5; i++ {
		if _, err := writer.Invoke(ctx, CounterInc()); err != nil {
			t.Fatal(err)
		}
	}
	observer := NewLockFree(s.Handle(ids[1]), CounterType{})
	if err := observer.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// The observer's next invocation sees the synced state: the counter
	// is at 5, so its fetch-and-increment returns 5.
	r, err := observer.Invoke(ctx, CounterInc())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ReplyValue(r); v != 5 {
		t.Errorf("post-sync inc returned %d, want 5", v)
	}
	// Sync on an up-to-date replica is a no-op.
	if err := observer.Sync(ctx); err != nil {
		t.Fatal(err)
	}
}
