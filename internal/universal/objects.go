// Package universal implements the paper's §6: PEATS-based universal
// constructions that emulate arbitrary deterministic shared objects for
// Byzantine processes — the uniform lock-free construction (Alg. 3) and
// the wait-free construction with helping (Alg. 4), with the access
// policies of Figs. 7 and 8.
//
// An emulated type T is given by its initial state and a deterministic
// transition function applyT(state, invocation) → (state, reply)
// (paper §6). Here a Type produces fresh Objects; invocations and
// replies are canonical byte strings so every replica of the state
// evolves identically.
package universal

import (
	"encoding/binary"
	"fmt"
)

// Type describes an emulable deterministic object type T =
// ⟨STATE, S0, INVOKE, REPLY, applyT⟩. New returns an object in the
// initial state S0; the Object's Apply method is applyT.
type Type interface {
	// Name identifies the type (diagnostics only).
	Name() string
	// New returns a fresh object in the initial state.
	New() Object
}

// Object is one copy of the emulated object's state. Apply executes an
// invocation, mutating the state and returning the reply. Apply must be
// deterministic: equal invocation sequences yield equal states and
// replies. Unknown invocations must return an error reply (not panic),
// because Byzantine processes can thread arbitrary bytes.
type Object interface {
	Apply(inv []byte) (reply []byte)
}

// Invocation and reply encodings are single-byte opcodes followed by
// optional operands; replies reuse the same helpers.
const (
	opRead  = 0x01
	opWrite = 0x02
	opInc   = 0x03
	opEnq   = 0x04
	opDeq   = 0x05
	opSet   = 0x06
	opCSwap = 0x07

	replyOK    = 0x20
	replyValue = 0x21
	replyEmpty = 0x22
	replyFail  = 0x23
	replyErr   = 0x2f
)

func encInt(op byte, v int64) []byte {
	return binary.AppendVarint([]byte{op}, v)
}

func decInt(b []byte) (int64, bool) {
	if len(b) < 1 {
		return 0, false
	}
	v, n := binary.Varint(b[1:])
	return v, n > 0 && 1+n == len(b)
}

func errReply(format string, args ...any) []byte {
	return append([]byte{replyErr}, fmt.Sprintf(format, args...)...)
}

// IsErrReply reports whether a reply encodes an invalid-invocation error.
func IsErrReply(b []byte) bool { return len(b) > 0 && b[0] == replyErr }

// ReplyValue extracts the integer carried by a value reply.
func ReplyValue(b []byte) (int64, bool) {
	if len(b) < 1 || b[0] != replyValue {
		return 0, false
	}
	v, n := binary.Varint(b[1:])
	return v, n > 0
}

// ReplyOK reports whether the reply is the plain acknowledgement.
func ReplyOK(b []byte) bool { return len(b) == 1 && b[0] == replyOK }

// ReplyBool decodes a success/failure reply (used by sticky bit set and
// compare-and-swap).
func ReplyBool(b []byte) (bool, bool) {
	if len(b) != 1 {
		return false, false
	}
	switch b[0] {
	case replyOK:
		return true, true
	case replyFail:
		return false, true
	}
	return false, false
}

// ReplyEmpty reports whether the reply is the queue's "empty" answer.
func ReplyEmpty(b []byte) bool { return len(b) == 1 && b[0] == replyEmpty }

// ---- Register ----

// RegisterType is a read/write integer register.
type RegisterType struct{}

// Name implements Type.
func (RegisterType) Name() string { return "register" }

// New implements Type.
func (RegisterType) New() Object { return &register{} }

type register struct{ v int64 }

func (r *register) Apply(inv []byte) []byte {
	if len(inv) == 1 && inv[0] == opRead {
		return encInt(replyValue, r.v)
	}
	if v, ok := decInt(inv); ok && inv[0] == opWrite {
		r.v = v
		return []byte{replyOK}
	}
	return errReply("register: bad invocation % x", inv)
}

// RegRead encodes a register read invocation.
func RegRead() []byte { return []byte{opRead} }

// RegWrite encodes a register write invocation.
func RegWrite(v int64) []byte { return encInt(opWrite, v) }

// ---- Sticky bit ----

// StickyBitType is Plotkin's sticky bit: a three-state object (⊥, 0, 1)
// whose first set wins and sticks forever — the universal object of the
// ACL model this paper improves on.
type StickyBitType struct{}

// Name implements Type.
func (StickyBitType) Name() string { return "stickybit" }

// New implements Type.
func (StickyBitType) New() Object { return &stickyBit{val: -1} }

type stickyBit struct{ val int64 } // -1 = unset

func (s *stickyBit) Apply(inv []byte) []byte {
	if len(inv) == 1 && inv[0] == opRead {
		return encInt(replyValue, s.val)
	}
	if v, ok := decInt(inv); ok && inv[0] == opSet && (v == 0 || v == 1) {
		if s.val == -1 {
			s.val = v
			return []byte{replyOK}
		}
		if s.val == v {
			return []byte{replyOK}
		}
		return []byte{replyFail}
	}
	return errReply("stickybit: bad invocation % x", inv)
}

// StickySet encodes a sticky-bit set invocation (v must be 0 or 1).
func StickySet(v int64) []byte { return encInt(opSet, v) }

// StickyRead encodes a sticky-bit read invocation (-1 means unset).
func StickyRead() []byte { return []byte{opRead} }

// ---- Counter ----

// CounterType is a fetch-and-increment counter.
type CounterType struct{}

// Name implements Type.
func (CounterType) Name() string { return "counter" }

// New implements Type.
func (CounterType) New() Object { return &counter{} }

type counter struct{ v int64 }

func (c *counter) Apply(inv []byte) []byte {
	switch {
	case len(inv) == 1 && inv[0] == opInc:
		old := c.v
		c.v++
		return encInt(replyValue, old)
	case len(inv) == 1 && inv[0] == opRead:
		return encInt(replyValue, c.v)
	}
	return errReply("counter: bad invocation % x", inv)
}

// CounterInc encodes fetch-and-increment (reply carries the old value).
func CounterInc() []byte { return []byte{opInc} }

// CounterRead encodes a counter read.
func CounterRead() []byte { return []byte{opRead} }

// ---- FIFO queue ----

// QueueType is a FIFO queue of integers.
type QueueType struct{}

// Name implements Type.
func (QueueType) Name() string { return "queue" }

// New implements Type.
func (QueueType) New() Object { return &queue{} }

type queue struct{ items []int64 }

func (q *queue) Apply(inv []byte) []byte {
	if v, ok := decInt(inv); ok && inv[0] == opEnq {
		q.items = append(q.items, v)
		return []byte{replyOK}
	}
	if len(inv) == 1 && inv[0] == opDeq {
		if len(q.items) == 0 {
			return []byte{replyEmpty}
		}
		v := q.items[0]
		q.items = q.items[1:]
		return encInt(replyValue, v)
	}
	return errReply("queue: bad invocation % x", inv)
}

// Enqueue encodes a queue enqueue invocation.
func Enqueue(v int64) []byte { return encInt(opEnq, v) }

// Dequeue encodes a queue dequeue invocation.
func Dequeue() []byte { return []byte{opDeq} }

// ---- Compare-and-swap register ----

// CASRegisterType is a compare-and-swap register: cswap(old, new) sets
// the value to new iff it currently equals old (the classical register
// compare&swap, dual of the tuple-space cas — see paper footnote 2).
type CASRegisterType struct{}

// Name implements Type.
func (CASRegisterType) Name() string { return "casregister" }

// New implements Type.
func (CASRegisterType) New() Object { return &casRegister{} }

type casRegister struct{ v int64 }

func (c *casRegister) Apply(inv []byte) []byte {
	if len(inv) == 1 && inv[0] == opRead {
		return encInt(replyValue, c.v)
	}
	if len(inv) > 1 && inv[0] == opCSwap {
		old, n := binary.Varint(inv[1:])
		if n <= 0 {
			return errReply("casregister: bad invocation")
		}
		newV, m := binary.Varint(inv[1+n:])
		if m <= 0 || 1+n+m != len(inv) {
			return errReply("casregister: bad invocation")
		}
		if c.v != old {
			return []byte{replyFail}
		}
		c.v = newV
		return []byte{replyOK}
	}
	return errReply("casregister: bad invocation % x", inv)
}

// CSwap encodes a compare-and-swap invocation.
func CSwap(old, newV int64) []byte {
	b := binary.AppendVarint([]byte{opCSwap}, old)
	return binary.AppendVarint(b, newV)
}

// CASRead encodes a compare-and-swap register read.
func CASRead() []byte { return []byte{opRead} }
